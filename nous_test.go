package nous

import (
	"strings"
	"testing"
	"time"
)

func buildSystem(t testing.TB, nArticles int) (*Pipeline, *World) {
	wcfg := DefaultWorldConfig()
	wcfg.Companies = 15
	wcfg.People = 15
	wcfg.Products = 15
	wcfg.Events = 100
	w := GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(kg, DefaultConfig())
	p.IngestAll(GenerateArticles(w, DefaultArticleConfig(nArticles)))
	return p, w
}

func TestPipelineEndToEnd(t *testing.T) {
	p, _ := buildSystem(t, 100)
	st := p.Stats()
	if st.Accepted == 0 {
		t.Fatalf("no facts accepted: %+v", st)
	}
	kgStats := p.KG().Stats()
	if kgStats.ExtractedFacts == 0 || kgStats.CuratedFacts == 0 {
		t.Fatalf("fused KG missing a layer: %+v", kgStats)
	}
}

func TestAllFiveQueryClasses(t *testing.T) {
	p, _ := buildSystem(t, 120)
	p.BuildTopics()

	questions := []string{
		"What is trending?",
		"Tell me about DJI",
		"How is DJI related to Shenzhen?",
		"What patterns are emerging?",
		"What does DJI manufacture?",
	}
	for _, q := range questions {
		a, err := p.Ask(q)
		if err != nil {
			t.Fatalf("Ask(%q): %v", q, err)
		}
		if strings.TrimSpace(a.Text) == "" {
			t.Fatalf("Ask(%q) returned empty text", q)
		}
	}
	if len(QueryClasses()) != 5 {
		t.Fatal("query class listing broken")
	}
}

func TestEntityQueryFig6(t *testing.T) {
	p, _ := buildSystem(t, 100)
	a, err := p.About("DJI")
	if err != nil {
		t.Fatal(err)
	}
	if a.Entity == nil || a.Entity.Name != "DJI" || len(a.Entity.Facts) == 0 {
		t.Fatalf("About(DJI) = %+v", a)
	}
	if !strings.Contains(a.Text, "Shenzhen") {
		t.Fatalf("DJI summary lacks curated anchor: %s", a.Text)
	}
}

func TestExplainWithTopics(t *testing.T) {
	p, _ := buildSystem(t, 100)
	p.BuildTopics()
	a, err := p.Explain("DJI", "Shenzhen", "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Paths) == 0 {
		t.Fatalf("no explanation paths: %s", a.Text)
	}
}

func TestPatternsSpanCuratedAndExtracted(t *testing.T) {
	p, _ := buildSystem(t, 150)
	ps := p.Patterns(10)
	if len(ps) == 0 {
		t.Fatal("no closed patterns over fused graph")
	}
}

func TestScoreIsProbability(t *testing.T) {
	p, _ := buildSystem(t, 60)
	s := p.Score("DJI", "acquired", "Parrot")
	if s <= 0 || s >= 1 {
		t.Fatalf("score = %v", s)
	}
}

func TestWindowedPipelineKeepsCurated(t *testing.T) {
	wcfg := DefaultWorldConfig()
	wcfg.Companies = 10
	wcfg.People = 10
	wcfg.Products = 10
	wcfg.Events = 80
	w := GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Stream.Window = 60 * 24 * time.Hour
	p := NewPipeline(kg, cfg)
	st := p.IngestAll(GenerateArticles(w, DefaultArticleConfig(120)))
	if st.FactsEvicted == 0 {
		t.Fatalf("windowed run evicted nothing: %+v", st)
	}
	if got := p.KG().Stats().CuratedFacts; got != len(w.Curated) {
		t.Fatalf("curated facts = %d, want %d", got, len(w.Curated))
	}
}

func TestPatternTransitions(t *testing.T) {
	p, _ := buildSystem(t, 100)
	entered, _ := p.PatternTransitions()
	if len(entered) == 0 {
		t.Fatal("no patterns entered the frequent set after ingestion")
	}
	// second call without changes: no transitions
	entered, left := p.PatternTransitions()
	if len(entered) != 0 || len(left) != 0 {
		t.Fatalf("spurious transitions: %d entered, %d left", len(entered), len(left))
	}
}
