package nous

import (
	"strings"
	"testing"
	"time"
)

func buildSystem(t testing.TB, nArticles int) (*Pipeline, *World) {
	wcfg := DefaultWorldConfig()
	wcfg.Companies = 15
	wcfg.People = 15
	wcfg.Products = 15
	wcfg.Events = 100
	w := GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(kg, DefaultConfig())
	p.IngestAll(GenerateArticles(w, DefaultArticleConfig(nArticles)))
	return p, w
}

func TestPipelineEndToEnd(t *testing.T) {
	p, _ := buildSystem(t, 100)
	st := p.Stats()
	if st.Accepted == 0 {
		t.Fatalf("no facts accepted: %+v", st)
	}
	kgStats := p.KG().Stats()
	if kgStats.ExtractedFacts == 0 || kgStats.CuratedFacts == 0 {
		t.Fatalf("fused KG missing a layer: %+v", kgStats)
	}
}

func TestAllFiveQueryClasses(t *testing.T) {
	p, _ := buildSystem(t, 120)
	p.BuildTopics()

	questions := []string{
		"What is trending?",
		"Tell me about DJI",
		"How is DJI related to Shenzhen?",
		"What patterns are emerging?",
		"What does DJI manufacture?",
	}
	for _, q := range questions {
		a, err := p.Ask(q)
		if err != nil {
			t.Fatalf("Ask(%q): %v", q, err)
		}
		if strings.TrimSpace(a.Text) == "" {
			t.Fatalf("Ask(%q) returned empty text", q)
		}
	}
	// Fig 5's five classes plus the planner's diff class.
	if len(QueryClasses()) != 6 {
		t.Fatal("query class listing broken")
	}
}

func TestEntityQueryFig6(t *testing.T) {
	p, _ := buildSystem(t, 100)
	a, err := p.About("DJI")
	if err != nil {
		t.Fatal(err)
	}
	if a.Entity == nil || a.Entity.Name != "DJI" || len(a.Entity.Facts) == 0 {
		t.Fatalf("About(DJI) = %+v", a)
	}
	if !strings.Contains(a.Text, "Shenzhen") {
		t.Fatalf("DJI summary lacks curated anchor: %s", a.Text)
	}
}

func TestExplainWithTopics(t *testing.T) {
	p, _ := buildSystem(t, 100)
	p.BuildTopics()
	a, err := p.Explain("DJI", "Shenzhen", "", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Paths) == 0 {
		t.Fatalf("no explanation paths: %s", a.Text)
	}
}

func TestPatternsSpanCuratedAndExtracted(t *testing.T) {
	p, _ := buildSystem(t, 150)
	ps := p.Patterns(10)
	if len(ps) == 0 {
		t.Fatal("no closed patterns over fused graph")
	}
}

func TestScoreIsProbability(t *testing.T) {
	p, _ := buildSystem(t, 60)
	s := p.Score("DJI", "acquired", "Parrot")
	if s <= 0 || s >= 1 {
		t.Fatalf("score = %v", s)
	}
}

func TestWindowedPipelineKeepsCurated(t *testing.T) {
	wcfg := DefaultWorldConfig()
	wcfg.Companies = 10
	wcfg.People = 10
	wcfg.Products = 10
	wcfg.Events = 80
	w := GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Stream.Window = 60 * 24 * time.Hour
	p := NewPipeline(kg, cfg)
	st := p.IngestAll(GenerateArticles(w, DefaultArticleConfig(120)))
	if st.FactsEvicted == 0 {
		t.Fatalf("windowed run evicted nothing: %+v", st)
	}
	if got := p.KG().Stats().CuratedFacts; got != len(w.Curated) {
		t.Fatalf("curated facts = %d, want %d", got, len(w.Curated))
	}
}

func TestPatternTransitions(t *testing.T) {
	p, _ := buildSystem(t, 100)
	entered, _ := p.PatternTransitions()
	if len(entered) == 0 {
		t.Fatal("no patterns entered the frequent set after ingestion")
	}
	// second call without changes: no transitions
	entered, left := p.PatternTransitions()
	if len(entered) != 0 || len(left) != 0 {
		t.Fatalf("spurious transitions: %d entered, %d left", len(entered), len(left))
	}
}

// TestDiffAndBackfillEndToEnd drives the two planner-enabled temporal
// workloads through the public facade: Diff (temporal join) and
// TrendingWindow (windowed trend backfill), both against a generated corpus.
func TestDiffAndBackfillEndToEnd(t *testing.T) {
	p, w := buildSystem(t, 200)
	var lo, hi time.Time
	for _, a := range GenerateArticles(w, DefaultArticleConfig(200)) {
		if lo.IsZero() || a.Date.Before(lo) {
			lo = a.Date
		}
		if a.Date.After(hi) {
			hi = a.Date
		}
	}
	span := hi.Sub(lo)
	early := Window{Since: lo.Unix(), Until: lo.Add(span / 3).Unix()}
	late := Window{Since: lo.Add(2 * span / 3).Unix(), Until: hi.Unix() + 1}

	// Whole-stream diff between the first and last third of the corpus.
	a, err := p.Diff("", early, late)
	if err != nil {
		t.Fatal(err)
	}
	if a.Diff == nil {
		t.Fatalf("no diff payload: %s", a.Text)
	}
	if len(a.Diff.Added)+len(a.Diff.Removed) == 0 {
		t.Fatalf("a two-thirds-apart stream diff found no changes:\n%s", a.Text)
	}
	for _, f := range append(append([]Fact{}, a.Diff.Added...), a.Diff.Removed...) {
		if f.Curated {
			t.Fatalf("curated fact in stream diff: %+v", f)
		}
	}

	// Windowed trend backfill over the full corpus span: must find bursts
	// and must NOT be the live detector's end-bucket view.
	full := Window{Since: lo.Unix(), Until: hi.Unix() + 1}
	tr, err := p.TrendingWindow(full, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Trends) == 0 {
		t.Fatalf("backfill over the whole corpus found nothing:\n%s", tr.Text)
	}
	if !strings.Contains(tr.Text, "windowed backfill") {
		t.Fatalf("TrendingWindow did not use backfill:\n%s", tr.Text)
	}
	// The unbounded window stays the live detector path.
	live, err := p.TrendingWindow(Window{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(live.Text, "Trending now:") {
		t.Fatalf("unbounded TrendingWindow text:\n%s", live.Text)
	}

	// Ask-path diff question + plan stats accounting.
	if _, err := p.Ask("What changed between 2011 and 2014?"); err != nil {
		t.Fatal(err)
	}
	st := p.PlanStats()
	if st.Plans == 0 || st.ByClass["diff"] == 0 {
		t.Fatalf("plan stats = %+v", st)
	}

	// PlanFor compiles without executing.
	pl, err := p.PlanFor("Tell me about DJI in 2014", Window{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Class != "entity" || !strings.Contains(pl.Explain(), "WindowFilter") {
		t.Fatalf("PlanFor explain:\n%s", pl.Explain())
	}
}
