package nous

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestFullRangeWindowReferenceIdentical is the PR's acceptance reference: a
// full-range windowed query must return byte-identical answers to the
// unwindowed query across the whole pipeline — entity summaries,
// relationship paths, fact lookups, trending and graph exports.
func TestFullRangeWindowReferenceIdentical(t *testing.T) {
	p, _ := buildSystem(t, 120)
	p.BuildTopics()

	questions := []string{
		"What is trending?",
		"Tell me about DJI",
		"How is Windermere related to DJI?",
		"What does DJI manufacture?",
		"Did Amazon acquire Parrot?",
	}
	for _, q := range questions {
		plain, err := p.Ask(q)
		if err != nil {
			t.Fatalf("Ask(%q): %v", q, err)
		}
		windowed, err := p.AskWindow(q, Window{})
		if err != nil {
			t.Fatalf("AskWindow(%q): %v", q, err)
		}
		if plain.Text != windowed.Text {
			t.Fatalf("full-range text for %q diverges:\n%q\nvs\n%q", q, plain.Text, windowed.Text)
		}
		if !reflect.DeepEqual(plain, windowed) {
			t.Fatalf("full-range structured answer for %q diverges", q)
		}
	}

	// About/Explain full-range equivalence.
	plain, err := p.About("DJI")
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := p.AboutWindow("DJI", Window{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Text != windowed.Text {
		t.Fatal("AboutWindow(all) diverges from About")
	}
	pe, err := p.Explain("Windermere", "DJI", "", 3)
	if err != nil {
		t.Fatal(err)
	}
	we, err := p.ExplainWindow("Windermere", "DJI", "", 3, Window{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pe.Paths, we.Paths) {
		t.Fatal("ExplainWindow(all) diverges from Explain")
	}

	// Export full-range equivalence, byte for byte.
	var a, b bytes.Buffer
	if err := p.KG().ExportJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.KG().ExportJSONWindow(&b, Window{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("full-range export diverges from unwindowed export")
	}
}

// TestWideBoundedWindowSameAnswers drives the *windowed* code path (bounded
// window covering every timestamp) and checks the structured results match
// the unwindowed ones: same facts, same paths — only the rendered window
// line may differ.
func TestWideBoundedWindowSameAnswers(t *testing.T) {
	p, _ := buildSystem(t, 120)
	p.BuildTopics()
	wide := Window{Since: math.MinInt64 + 1, Until: math.MaxInt64 - 1}

	plain, err := p.About("DJI")
	if err != nil {
		t.Fatal(err)
	}
	windowed, err := p.AboutWindow("DJI", wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Entity.Facts, windowed.Entity.Facts) {
		t.Fatal("wide bounded window changed the entity fact set")
	}
	pe, _ := p.Explain("Windermere", "DJI", "", 3)
	we, _ := p.ExplainWindow("Windermere", "DJI", "", 3, wide)
	if !reflect.DeepEqual(pe.Paths, we.Paths) {
		t.Fatal("wide bounded window changed the path set")
	}
}

// TestTemporalQuestionsEndToEnd exercises the temporal question forms the
// parser learns against a generated corpus with real article dates.
func TestTemporalQuestionsEndToEnd(t *testing.T) {
	p, w := buildSystem(t, 150)
	var lo, hi time.Time
	for _, a := range GenerateArticles(w, DefaultArticleConfig(150)) {
		if lo.IsZero() || a.Date.Before(lo) {
			lo = a.Date
		}
		if a.Date.After(hi) {
			hi = a.Date
		}
	}
	year := lo.Year()

	a, err := p.Ask("Tell me about DJI in " + time.Date(year, 1, 1, 0, 0, 0, 0, time.UTC).Format("2006"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Entity == nil {
		t.Fatalf("windowed entity answer empty: %s", a.Text)
	}
	if !strings.Contains(a.Text, "window:") {
		t.Fatalf("windowed answer lacks window annotation:\n%s", a.Text)
	}
	// A window before the corpus keeps only curated facts.
	b, err := p.AskWindow("Tell me about DJI", Window{Since: math.MinInt64, Until: lo.AddDate(-10, 0, 0).Unix()})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range b.Entity.Facts {
		if !f.Curated {
			t.Fatalf("pre-corpus window leaked extracted fact %+v", f)
		}
	}

	// The temporal index tracks exactly the KG's facts and spans the stream.
	st := p.TemporalStats()
	if st.Edges != p.KG().NumFacts() {
		t.Fatalf("index edges %d != facts %d", st.Edges, p.KG().NumFacts())
	}
	if st.MaxTimestamp < lo.Unix() {
		t.Fatalf("index span %d..%d does not reach the corpus dates", st.MinTimestamp, st.MaxTimestamp)
	}
}

// TestAskWindowParseErrors pins the sentinel error contract the server's
// status mapping depends on.
func TestAskWindowParseErrors(t *testing.T) {
	p, _ := buildSystem(t, 30)
	for _, q := range []string{"", "gibberish flarp", "Tell me about DJI between 2016 and 2015"} {
		_, err := p.Ask(q)
		if err == nil {
			t.Fatalf("Ask(%q) succeeded", q)
		}
		if !errors.Is(err, ErrParse) {
			t.Fatalf("Ask(%q) error %v does not match ErrParse", q, err)
		}
	}
}

// TestOpenRebuildsTemporalIndex verifies the index is rebuilt from a
// recovered graph: a durable pipeline reopened from disk answers windowed
// queries identically to the pipeline that wrote the data.
func TestOpenRebuildsTemporalIndex(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	wcfg := DefaultWorldConfig()
	wcfg.Companies, wcfg.People, wcfg.Products, wcfg.Events = 10, 10, 10, 60
	w := GenerateWorld(wcfg)

	p1, err := Open(dir, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SeedKG(p1.KG()); err != nil {
		t.Fatal(err)
	}
	p1.IngestAll(GenerateArticles(w, DefaultArticleConfig(40)))
	before := p1.TemporalStats()
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := Open(dir, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	after := p2.TemporalStats()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("recovered temporal index diverges: %+v vs %+v", before, after)
	}
	if after.Edges == 0 || after.Edges != p2.KG().NumFacts() {
		t.Fatalf("recovered index edges %d, facts %d", after.Edges, p2.KG().NumFacts())
	}
}
