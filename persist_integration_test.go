package nous_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"nous"
)

// smallPersistConfig keeps the integration corpus quick.
func smallPersistConfig() (nous.Config, *nous.World, []nous.Article) {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Seed = 7
	w := nous.GenerateWorld(wcfg)
	arts := nous.GenerateArticles(w, nous.DefaultArticleConfig(60))
	cfg := nous.DefaultConfig()
	cfg.LDAIters = 5
	return cfg, w, arts
}

// quickPersist avoids timer-driven flushes in tests; everything is made
// durable by explicit Checkpoint/Close.
func quickPersist() nous.PersistOptions {
	return nous.PersistOptions{
		GroupCommitBytes:      1 << 20,
		FlushInterval:         time.Hour,
		DisableAutoCheckpoint: true,
	}
}

// TestDurableRoundTrip locks in the acceptance invariant: ingest a corpus,
// checkpoint, reopen in a fresh pipeline (a stand-in for a fresh process —
// nothing is shared but the directory), and observe the identical epoch,
// vertex/edge counts and byte-identical /api/graph export.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg, w, arts := smallPersistConfig()

	p, err := nous.OpenWithOptions(dir, w.Ontology, cfg, quickPersist())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SeedKG(p.KG()); err != nil {
		t.Fatal(err)
	}
	p.IngestAll(arts)
	wantEpoch := p.KG().Graph().Epoch()
	wantVertices := p.KG().Graph().NumVertices()
	wantEdges := p.KG().Graph().NumEdges()
	wantEntities := p.KG().Entities()
	var wantExport bytes.Buffer
	if err := p.KG().ExportJSON(&wantExport); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := nous.OpenWithOptions(dir, w.Ontology, cfg, quickPersist())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.KG().Graph().Epoch(); got != wantEpoch {
		t.Errorf("epoch after reopen = %d, want %d", got, wantEpoch)
	}
	if got := p2.KG().Graph().NumVertices(); got != wantVertices {
		t.Errorf("vertices after reopen = %d, want %d", got, wantVertices)
	}
	if got := p2.KG().Graph().NumEdges(); got != wantEdges {
		t.Errorf("edges after reopen = %d, want %d", got, wantEdges)
	}
	got := p2.KG().Entities()
	if len(got) != len(wantEntities) {
		t.Fatalf("entities after reopen = %d, want %d", len(got), len(wantEntities))
	}
	for i := range got {
		if got[i] != wantEntities[i] {
			t.Fatalf("entity %d = %q, want %q", i, got[i], wantEntities[i])
		}
	}
	var gotExport bytes.Buffer
	if err := p2.KG().ExportJSON(&gotExport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantExport.Bytes(), gotExport.Bytes()) {
		t.Error("/api/graph export differs after recovery")
	}

	// The recovered pipeline must stay fully queryable.
	if _, err := p2.Ask("Tell me about DJI"); err != nil {
		t.Errorf("query after recovery: %v", err)
	}
	st, ok := p2.PersistStats()
	if !ok {
		t.Fatal("PersistStats: not durable after OpenWithOptions")
	}
	if st.SnapshotEpoch != wantEpoch {
		t.Errorf("snapshot epoch = %d, want %d", st.SnapshotEpoch, wantEpoch)
	}
}

// TestDurableWALOnlyRecovery reopens without any checkpoint: the whole
// corpus must come back from the write-ahead log alone.
func TestDurableWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg, w, arts := smallPersistConfig()

	p, err := nous.OpenWithOptions(dir, w.Ontology, cfg, quickPersist())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SeedKG(p.KG()); err != nil {
		t.Fatal(err)
	}
	p.IngestAll(arts[:30])
	wantEpoch := p.KG().Graph().Epoch()
	wantFacts := p.KG().NumFacts()
	if err := p.Close(); err != nil { // flushes the WAL; no snapshot exists
		t.Fatal(err)
	}

	p2, err := nous.OpenWithOptions(dir, w.Ontology, cfg, quickPersist())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.KG().Graph().Epoch(); got != wantEpoch {
		t.Errorf("epoch = %d, want %d", got, wantEpoch)
	}
	if got := p2.KG().NumFacts(); got != wantFacts {
		t.Errorf("facts = %d, want %d", got, wantFacts)
	}
	st, _ := p2.PersistStats()
	if st.ReplayedRecords == 0 {
		t.Error("expected WAL replay, got none")
	}

	// Ingestion must resume cleanly on the recovered graph.
	p2.IngestAll(arts[30:])
	if p2.KG().NumFacts() < wantFacts {
		t.Errorf("facts shrank after resumed ingest: %d < %d", p2.KG().NumFacts(), wantFacts)
	}
}

// TestIngestWhileCheckpointing runs the durable pipeline's full write path
// concurrently with repeated checkpoints (the race test from the issue:
// `go test -race` exercises ingest-during-snapshot), then proves the final
// state recovers exactly.
func TestIngestWhileCheckpointing(t *testing.T) {
	dir := t.TempDir()
	cfg, w, arts := smallPersistConfig()

	p, err := nous.OpenWithOptions(dir, w.Ontology, cfg, quickPersist())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SeedKG(p.KG()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < len(arts); i += 10 {
			p.IngestAll(arts[i:min(i+10, len(arts))])
		}
	}()
	for checkpointing := true; checkpointing; {
		select {
		case <-done:
			checkpointing = false
		default:
			if err := p.Checkpoint(); err != nil {
				t.Error(err)
				checkpointing = false
			}
		}
	}
	wg.Wait()
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantEpoch := p.KG().Graph().Epoch()
	wantFacts := p.KG().NumFacts()
	var wantExport bytes.Buffer
	if err := p.KG().ExportJSON(&wantExport); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if st, _ := p.PersistStats(); st.LastError != "" {
		t.Fatalf("persistence error during concurrent run: %s", st.LastError)
	}

	p2, err := nous.OpenWithOptions(dir, w.Ontology, cfg, quickPersist())
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.KG().Graph().Epoch(); got != wantEpoch {
		t.Errorf("epoch = %d, want %d", got, wantEpoch)
	}
	if got := p2.KG().NumFacts(); got != wantFacts {
		t.Errorf("facts = %d, want %d", got, wantFacts)
	}
	var gotExport bytes.Buffer
	if err := p2.KG().ExportJSON(&gotExport); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantExport.Bytes(), gotExport.Bytes()) {
		t.Error("export differs after concurrent checkpointing run")
	}
}
