package nous

import (
	"strings"
	"testing"
	"time"

	"nous/internal/corpus"
)

// TestInsiderExfiltrationDetection is the §3.1 insider-threat scenario as a
// test: the exfiltration motif (user accesses a resource which is copied to
// the removable-media sink) must become frequent in the detection window.
func TestInsiderExfiltrationDetection(t *testing.T) {
	world := corpus.GenerateInsiderWorld(11, 20, 12, 1500)
	kg, err := world.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Miner.MinSupport = 4
	p := NewPipeline(kg, cfg)

	verb := map[string]string{
		"accessed": "accessed", "loggedInto": "logged into",
		"emailed": "emailed", "copiedTo": "copied to",
	}
	var articles []Article
	for i, e := range world.Events {
		v := verb[e.Predicate]
		if v == "" {
			continue
		}
		articles = append(articles, Article{
			ID: string(rune('a'+i%26)) + "-log", Source: "auditd", Date: e.Date,
			Text: e.Subject + " " + v + " " + e.Object + ".",
		})
	}
	p.IngestAll(articles)

	found := false
	for _, pat := range p.Patterns(0) {
		if strings.Contains(pat.Code, "accessed") && strings.Contains(pat.Code, "copiedTo") {
			found = true
			// Fig 7 also demands validating instances.
			if ins := p.Miner().FindInstances(pat, 3); len(ins) == 0 {
				t.Fatalf("no instances for detected motif %s", pat)
			}
		}
	}
	if !found {
		t.Fatal("exfiltration motif not surfaced by the miner")
	}
}

// TestCitationDomain runs the §3.1 citation-analytics domain end to end.
func TestCitationDomain(t *testing.T) {
	world := corpus.GenerateCitationWorld(7, 30, 50)
	kg, err := world.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(kg, DefaultConfig())
	var articles []Article
	for i, e := range world.Events {
		v := map[string]string{"authorOf": "authored", "cites": "cites", "publishedAt": "appeared at"}[e.Predicate]
		if v == "" {
			continue
		}
		articles = append(articles, Article{
			ID: "bib", Source: "dblp", Date: e.Date,
			Text: e.Subject + " " + v + " " + e.Object + ".",
		})
		if i > 150 {
			break
		}
	}
	st := p.IngestAll(articles)
	if st.Accepted == 0 {
		t.Fatalf("citation stream produced nothing: %+v", st)
	}
	// The KG should now answer citation fact queries.
	hasCites := false
	for _, f := range p.KG().AllFacts() {
		if f.Predicate == "cites" && !f.Curated {
			hasCites = true
		}
	}
	if !hasCites {
		t.Fatal("no extracted citation facts")
	}
}

// TestMalformedArticlesDontCrash injects broken inputs into the pipeline.
func TestMalformedArticlesDontCrash(t *testing.T) {
	w := GenerateWorld(DefaultWorldConfig())
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(kg, DefaultConfig())
	bad := []Article{
		{ID: "empty", Text: ""},
		{ID: "whitespace", Text: "   \n\t "},
		{ID: "punct", Text: "!!! ??? ..."},
		{ID: "nodate", Text: "DJI acquired Parrot.", Source: "wsj"}, // zero Date
		{ID: "unicode", Text: "DJI acquired Pärrot for ¥500 million. 株式会社 was involved."},
		{ID: "huge-token", Text: strings.Repeat("a", 5000) + " acquired DJI."},
	}
	st := p.IngestAll(bad)
	if st.Documents != len(bad) {
		t.Fatalf("documents = %d", st.Documents)
	}
}

// TestOutOfOrderTimestamps: eviction is by event time, not arrival order.
func TestOutOfOrderTimestamps(t *testing.T) {
	w := GenerateWorld(DefaultWorldConfig())
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Stream.Window = 30 * 24 * time.Hour
	p := NewPipeline(kg, cfg)

	newer := Article{ID: "n", Source: "wsj", Date: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC),
		Text: "DJI acquired Parrot."}
	older := Article{ID: "o", Source: "wsj", Date: time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC),
		Text: "GoPro acquired Yuneec."}
	p.Ingest(newer)
	p.Ingest(older) // arrives later but is far outside the window
	if p.KG().HasFact("GoPro", "acquired", "Yuneec") {
		t.Fatal("stale out-of-order fact survived the window")
	}
	if !p.KG().HasFact("DJI", "acquired", "Parrot") {
		t.Fatal("in-window fact lost")
	}
}

// TestSourceTrustExposed: the §3.4 trust tracking is visible through the
// public API and ranks the pinned curated source highest.
func TestSourceTrustExposed(t *testing.T) {
	p, _ := buildSystem(t, 80)
	ss := p.SourceTrust()
	if len(ss) == 0 {
		t.Fatal("no sources tracked")
	}
	if ss[0].Source != "curated-kb" {
		t.Fatalf("pinned curated source not on top: %+v", ss)
	}
	for _, s := range ss {
		if s.Trust < 0 || s.Trust > 1 {
			t.Fatalf("trust out of range: %+v", s)
		}
	}
}

// TestDeterministicFacade: two identical pipeline runs agree exactly.
func TestDeterministicFacade(t *testing.T) {
	run := func() (StreamStats, int) {
		w := GenerateWorld(DefaultWorldConfig())
		kg, err := w.LoadKG()
		if err != nil {
			t.Fatal(err)
		}
		p := NewPipeline(kg, DefaultConfig())
		st := p.IngestAll(GenerateArticles(w, DefaultArticleConfig(60)))
		return st, len(p.Patterns(0))
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 || p1 != p2 {
		t.Fatalf("runs diverged: %+v/%d vs %+v/%d", s1, p1, s2, p2)
	}
}
