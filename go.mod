module nous

go 1.22
