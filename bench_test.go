// Benchmarks regenerating the paper's evaluation artifacts. The paper (a
// 3-page demo) has no numbered tables; its evaluation content is Figures
// 1–7 plus quantitative claims in the text (see DESIGN.md §3 for the
// mapping). Every figure and claim has a benchmark here; `go run
// ./cmd/nousbench` prints the corresponding human-readable artifacts.
package nous

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"nous/internal/corpus"
	"nous/internal/disambig"
	"nous/internal/extract"
	"nous/internal/fgm"
	"nous/internal/graph"
	"nous/internal/linkpred"
	"nous/internal/ner"
	"nous/internal/ontology"
	"nous/internal/pathsearch"
)

// benchWorld caches a world across benchmarks (generation itself is
// benchmarked separately).
var benchWorld = func() *World {
	cfg := corpus.DefaultConfig()
	cfg.Events = 600
	return corpus.Generate(cfg)
}()

func benchArticles(n int) []Article {
	return corpus.GenerateArticles(benchWorld, corpus.DefaultArticleConfig(n))
}

func newBenchPipeline(b *testing.B) *Pipeline {
	b.Helper()
	kg, err := benchWorld.LoadKG()
	if err != nil {
		b.Fatal(err)
	}
	return NewPipeline(kg, DefaultConfig())
}

// BenchmarkFig1_PipelineEndToEnd drives the full Figure-1 component chain:
// extraction → mapping → disambiguation → confidence → dynamic KG.
func BenchmarkFig1_PipelineEndToEnd(b *testing.B) {
	articles := benchArticles(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := newBenchPipeline(b)
		b.StartTimer()
		p.IngestAll(articles)
	}
}

// BenchmarkFig2_FusedKGConstruction measures fused (curated + extracted)
// KG assembly plus the Figure-2 subgraph export.
func BenchmarkFig2_FusedKGConstruction(b *testing.B) {
	articles := benchArticles(100)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := newBenchPipeline(b)
		b.StartTimer()
		p.IngestAll(articles)
		var sink discardWriter
		if err := p.KG().ExportDOT(&sink, "DJI", "Windermere"); err != nil {
			b.Fatal(err)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFig3_TripleExtraction measures the OpenIE stage alone
// (sentences → dated raw triples).
func BenchmarkFig3_TripleExtraction(b *testing.B) {
	kg, err := benchWorld.LoadKG()
	if err != nil {
		b.Fatal(err)
	}
	rec := ner.NewRecognizer()
	kg.ForEachAlias(func(alias, canonical string, typ ontology.EntityType) {
		rec.AddGazetteer(alias, typ)
	})
	ex := extract.New(rec, kg.Ontology())
	articles := benchArticles(50)
	b.ReportAllocs()
	b.ResetTimer()
	triples := 0
	for i := 0; i < b.N; i++ {
		for _, a := range articles {
			triples += len(ex.Extract(extract.Document{ID: a.ID, Source: a.Source, Date: a.Date, Text: a.Text}))
		}
	}
	b.ReportMetric(float64(triples)/float64(b.N), "triples/op")
}

// BenchmarkFig5_QueryClasses measures each of the five query classes on a
// built KG.
func BenchmarkFig5_QueryClasses(b *testing.B) {
	p := newBenchPipeline(b)
	p.IngestAll(benchArticles(300))
	p.BuildTopics()
	queries := map[string]string{
		"trending":     "What is trending?",
		"entity":       "Tell me about DJI",
		"relationship": "How is Windermere related to DJI?",
		"pattern":      "What patterns are emerging?",
		"fact":         "What does DJI manufacture?",
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Ask(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6_EntityQuery measures the "Tell me about DJI" summary.
func BenchmarkFig6_EntityQuery(b *testing.B) {
	p := newBenchPipeline(b)
	p.IngestAll(benchArticles(300))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.About("DJI"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_PatternDiscovery measures closed-pattern reporting over
// the live window.
func BenchmarkFig7_PatternDiscovery(b *testing.B) {
	p := newBenchPipeline(b)
	p.IngestAll(benchArticles(300))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Patterns(10)
	}
}

// benchEdges renders the world's events as typed stream edges.
func benchEdges(n int) []fgm.Edge {
	ids := map[string]int64{}
	idOf := func(name string) int64 {
		if id, ok := ids[name]; ok {
			return id
		}
		id := int64(len(ids))
		ids[name] = id
		return id
	}
	var out []fgm.Edge
	for i := 0; len(out) < n; i++ {
		e := benchWorld.Events[i%len(benchWorld.Events)]
		st, ot := "Any", "Any"
		if ent, ok := benchWorld.Entity(e.Subject); ok {
			st = string(ent.Type)
		}
		if ent, ok := benchWorld.Entity(e.Object); ok {
			ot = string(ent.Type)
		}
		out = append(out, fgm.Edge{
			Src: idOf(e.Subject), Dst: idOf(e.Object),
			SrcLabel: st, DstLabel: ot, Label: e.Predicate, Time: int64(i),
		})
	}
	return out
}

// BenchmarkC1_StreamingFGM: incremental mining per window slide.
func BenchmarkC1_StreamingFGM(b *testing.B) {
	const window, slide = 400, 50
	stream := benchEdges(window + 10*slide)
	cfg := fgm.Config{MaxEdges: 3, MinSupport: 3, WindowSize: window}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := fgm.NewMiner(cfg)
		for j := 0; j < window; j++ {
			m.Add(stream[j])
		}
		b.StartTimer()
		for j := window; j+slide <= len(stream); j += slide {
			for k := j; k < j+slide; k++ {
				m.Add(stream[k])
			}
			m.FrequentPatterns()
		}
	}
}

// BenchmarkC1_ArabesqueBaseline: from-scratch re-enumeration per slide —
// the system class the paper reports ~3× speedup against.
func BenchmarkC1_ArabesqueBaseline(b *testing.B) {
	const window, slide = 400, 50
	stream := benchEdges(window + 10*slide)
	cfg := fgm.Config{MaxEdges: 3, MinSupport: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := window; j+slide <= len(stream); j += slide {
			fgm.MineWindow(stream[j+slide-window:j+slide], cfg)
		}
	}
}

// BenchmarkC2_ClosedPatternReporting covers the closed-set computation
// that backs the reconstruction claim.
func BenchmarkC2_ClosedPatternReporting(b *testing.B) {
	m := fgm.NewMiner(fgm.Config{MaxEdges: 3, MinSupport: 3, WindowSize: 600})
	for _, e := range benchEdges(600) {
		m.Add(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ClosedPatterns()
	}
}

// linkpredData builds train/test positives for the "acquired" predicate.
func linkpredData() (train []Triple, test [][2]string) {
	var pairs [][2]string
	for _, e := range benchWorld.Events {
		if e.Predicate == "acquired" && !e.Rumor {
			pairs = append(pairs, [2]string{e.Subject, e.Object})
		}
	}
	cut := len(pairs) * 4 / 5
	for _, p := range pairs[:cut] {
		train = append(train, Triple{Subject: p[0], Predicate: "acquired", Object: p[1], Confidence: 1})
	}
	return train, pairs[cut:]
}

// BenchmarkC3_LinkPredictionTrain measures BPR training.
func BenchmarkC3_LinkPredictionTrain(b *testing.B) {
	train, _ := linkpredData()
	cfg := linkpred.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linkpred.Train(train, cfg)
	}
}

// BenchmarkC3_LinkPredictionScore measures per-triple confidence scoring.
func BenchmarkC3_LinkPredictionScore(b *testing.B) {
	train, test := linkpredData()
	m := linkpred.Train(train, linkpred.DefaultConfig())
	if len(test) == 0 {
		b.Skip("no held-out pairs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := test[i%len(test)]
		m.Score(p[0], "acquired", p[1])
	}
}

// pathBenchGraph plants the C4 scenario at a larger scale: an on-topic
// 3-hop path and an off-topic high-degree hub shortcut plus noise.
func pathBenchGraph() (*pathsearch.Searcher, graph.VertexID, graph.VertexID) {
	rng := rand.New(rand.NewSource(21))
	g := graph.New()
	topicOf := map[graph.VertexID][]float64{}
	addV := func(topic []float64) graph.VertexID {
		id := g.AddVertex("Company")
		topicOf[id] = topic
		return id
	}
	on := []float64{0.9, 0.1}
	off := []float64{0.1, 0.9}
	src := addV(on)
	dst := addV(on)
	a := addV(on)
	mid := addV(on)
	hub := addV(off)
	mustEdge := func(u, v graph.VertexID) {
		if _, err := g.AddEdge(u, v, "relatedTo"); err != nil {
			panic(err)
		}
	}
	mustEdge(src, a)
	mustEdge(a, mid)
	mustEdge(mid, dst)
	mustEdge(src, hub)
	mustEdge(hub, dst)
	var noise []graph.VertexID
	for i := 0; i < 400; i++ {
		v := addV(off)
		noise = append(noise, v)
		mustEdge(hub, v)
		if len(noise) > 1 && rng.Intn(3) == 0 {
			mustEdge(v, noise[rng.Intn(len(noise)-1)])
		}
	}
	return pathsearch.New(g, topicOf), src, dst
}

// BenchmarkC4_PathSearchCoherence measures coherence-guided top-K search.
func BenchmarkC4_PathSearchCoherence(b *testing.B) {
	s, src, dst := pathBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TopK(src, dst, pathsearch.Options{K: 3, MaxDepth: 4})
	}
}

// BenchmarkC4_PathSearchBFS measures the uninformed baseline.
func BenchmarkC4_PathSearchBFS(b *testing.B) {
	s, src, dst := pathBenchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.BFSPaths(src, dst, pathsearch.Options{K: 3, MaxDepth: 4})
	}
}

// BenchmarkC5_Disambiguation measures joint mention resolution.
func BenchmarkC5_Disambiguation(b *testing.B) {
	kg, err := benchWorld.LoadKG()
	if err != nil {
		b.Fatal(err)
	}
	l := disambig.NewLinker(kg, disambig.DefaultConfig())
	ms := []disambig.Mention{
		{Surface: "Apex", Context: []string{"drone", "inspection", "robotics"}},
		{Surface: "Titan", Context: []string{"solar", "aerospace"}},
		{Surface: "DJI", Context: []string{"drone"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Link(ms)
	}
}

// BenchmarkC6_IngestThroughput measures articles/sec toward the 342,411-
// article WSJ corpus scale.
func BenchmarkC6_IngestThroughput(b *testing.B) {
	articles := benchArticles(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := newBenchPipeline(b)
		b.StartTimer()
		start := time.Now()
		p.IngestAll(articles)
		b.ReportMetric(float64(len(articles))/time.Since(start).Seconds(), "articles/s")
	}
}

// BenchmarkAblation_SupportMetric compares embedding-count vs MNI support
// accounting (DESIGN.md decision 1).
func BenchmarkAblation_SupportMetric(b *testing.B) {
	stream := benchEdges(600)
	for _, mni := range []bool{false, true} {
		name := "embedding-count"
		if mni {
			name = "mni"
		}
		b.Run(name, func(b *testing.B) {
			cfg := fgm.Config{MaxEdges: 3, MinSupport: 3, WindowSize: 400, TrackMNI: mni}
			for i := 0; i < b.N; i++ {
				m := fgm.NewMiner(cfg)
				for _, e := range stream {
					m.Add(e)
				}
				m.FrequentPatterns()
			}
		})
	}
}

// BenchmarkAblation_LookaheadWidth sweeps the beam width of the coherence
// look-ahead (DESIGN.md decision 3).
func BenchmarkAblation_LookaheadWidth(b *testing.B) {
	s, src, dst := pathBenchGraph()
	for _, beam := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("beam=%d", beam), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.TopK(src, dst, pathsearch.Options{K: 3, MaxDepth: 4, Beam: beam})
			}
		})
	}
}

// BenchmarkAblation_ConfidenceGate sweeps the admission threshold τ and
// reports the precision of admitted facts against world ground truth
// (DESIGN.md decision 4).
func BenchmarkAblation_ConfidenceGate(b *testing.B) {
	articles := benchArticles(150)
	for _, tau := range []float64{0.15, 0.35, 0.55} {
		b.Run(fmt.Sprintf("tau=%.2f", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				kg, err := benchWorld.LoadKG()
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.Stream.ConfidenceThreshold = tau
				p := NewPipeline(kg, cfg)
				b.StartTimer()
				p.IngestAll(articles)
				b.StopTimer()
				good, bad := 0, 0
				for _, f := range kg.AllFacts() {
					if f.Curated {
						continue
					}
					if benchWorld.TrueFact(f.Subject, f.Predicate, f.Object) {
						good++
					} else {
						bad++
					}
				}
				if good+bad > 0 {
					b.ReportMetric(float64(good)/float64(good+bad), "precision")
					b.ReportMetric(float64(good+bad), "facts")
				}
				b.StartTimer()
			}
		})
	}
}
