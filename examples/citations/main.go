// Citations demonstrates the citation-analytics domain from §3.1: the same
// pipeline, miner and query layer run unchanged over a bibliography event
// stream (authorship, citation, venue publication).
package main

import (
	"fmt"
	"log"

	"nous"
	"nous/internal/corpus"
)

func main() {
	world := corpus.GenerateCitationWorld(7, 80, 150)
	kg, err := world.LoadKG()
	if err != nil {
		log.Fatal(err)
	}
	pipeline := nous.NewPipeline(kg, nous.DefaultConfig())

	// Bibliography databases arrive as structured event logs; render each
	// event as a minimal sentence so the same extraction stack applies.
	var articles []nous.Article
	for i, e := range world.Events {
		verb := map[string]string{
			"authorOf": "authored", "cites": "cites", "publishedAt": "appeared at",
		}[e.Predicate]
		if verb == "" {
			continue
		}
		articles = append(articles, nous.Article{
			ID: fmt.Sprintf("bib-%05d", i), Source: "dblp", Date: e.Date,
			Text: fmt.Sprintf("%s %s %s.", e.Subject, verb, e.Object),
		})
	}
	stats := pipeline.IngestAll(articles)
	fmt.Printf("ingested %d bibliography records; %d facts accepted\n", stats.Documents, stats.Accepted)

	// Frequent collaboration motifs across the citation graph.
	fmt.Println("\n== Frequent patterns in the citation graph ==")
	for _, p := range pipeline.Patterns(6) {
		fmt.Printf("  support=%-4d %s\n", p.Support, p)
	}

	// Who is the most cited paper about? Entity query over a paper.
	papers := world.EntitiesOfType("Paper")
	if len(papers) > 0 {
		ans, err := pipeline.About(papers[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n%s", papers[0], ans.Text)
	}

	// Explanatory query: how are two authors connected through the
	// literature?
	people := world.EntitiesOfType("Person")
	if len(people) >= 2 {
		pipeline.BuildTopics()
		ans, err := pipeline.Explain(people[0], people[1], "", 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== How are %s and %s connected? ==\n%s", people[0], people[1], ans.Text)
	}
}
