// Dronewatch reproduces the paper's motivating use case (§1.2): an analyst
// tracks the emerging civilian-drone industry from a news stream. The
// example shows the three analyst workflows the paper describes — spotting
// acquisition targets, explaining why a non-military company (Windermere)
// employs drones, and checking a hypothesis with a plausibility score —
// plus the Figure 2 style fused-subgraph export.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"nous"
)

func main() {
	world := nous.GenerateWorld(nous.DefaultWorldConfig())
	kg, err := world.LoadKG()
	if err != nil {
		log.Fatal(err)
	}
	cfg := nous.DefaultConfig()
	// The analyst tracks a rolling one-year window of news.
	cfg.Stream.Window = 365 * 24 * time.Hour
	pipeline := nous.NewPipeline(kg, cfg)
	pipeline.IngestAll(nous.GenerateArticles(world, nous.DefaultArticleConfig(800)))
	pipeline.BuildTopics()

	// Workflow 1 — the finance analyst: who is being acquired, what is
	// bursting this window?
	fmt.Println("== What is moving in the drone market? ==")
	for _, t := range pipeline.Trending(8) {
		fmt.Printf("  %-28s %-9s burst=%.1fx (%d mentions)\n", t.Name, t.Kind, t.Score, t.Current)
	}
	ans, err := pipeline.Ask("Who acquired Parrot?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== Acquisition check ==\n%s", ans.Text)

	// Workflow 2 — the security analyst: why would a real-estate firm
	// employ drones? Explanatory path query (the paper's Windermere
	// example).
	fmt.Println("\n== Why is Windermere involved with drones? ==")
	ans, err = pipeline.Explain("Windermere", "DJI", "", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ans.Text)

	// Workflow 3 — hypothesis scoring: is this startup an acquisition
	// target? Link prediction gives a probability from the prior KG state.
	fmt.Println("\n== Hypothesis plausibility (BPR link prediction) ==")
	for _, candidate := range []string{"Parrot", "Yuneec", "3D Robotics"} {
		score := pipeline.Score("Amazon", "acquired", candidate)
		fmt.Printf("  P(Amazon acquired %s) ≈ %.2f\n", candidate, score)
	}

	// Figure 2: export the fused subgraph around the drone cast. Curated
	// facts render red, extracted facts blue with their confidence.
	f, err := os.Create("dronewatch.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := pipeline.KG().ExportDOT(f, "DJI", "Windermere", "FAA"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote dronewatch.dot (render with: dot -Tpng dronewatch.dot)")
}
