// Quickstart: build a dynamic knowledge graph from a curated KB plus a
// stream of news articles, then ask one question from each of the five
// query classes.
package main

import (
	"fmt"
	"log"

	"nous"
)

func main() {
	// 1. A world = curated KB (the YAGO2 stand-in) + hidden event stream.
	world := nous.GenerateWorld(nous.DefaultWorldConfig())
	kg, err := world.LoadKG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("curated KB: %d entities, %d facts\n", kg.NumEntities(), kg.NumFacts())

	// 2. Assemble the pipeline and ingest 500 WSJ-style articles.
	pipeline := nous.NewPipeline(kg, nous.DefaultConfig())
	articles := nous.GenerateArticles(world, nous.DefaultArticleConfig(500))
	stats := pipeline.IngestAll(articles)
	fmt.Printf("ingested %d articles: %d raw triples, %d facts accepted, %d rejected\n",
		stats.Documents, stats.RawTriples, stats.Accepted, stats.Rejected)

	// 3. Fit LDA topics so relationship queries rank paths by coherence.
	pipeline.BuildTopics()

	// 4. One question per query class.
	for _, q := range []string{
		"What is trending?",
		"Tell me about DJI",
		"How is Windermere related to DJI?",
		"What patterns are emerging?",
		"Did Amazon acquire Parrot?",
	} {
		answer, err := pipeline.Ask(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQ: %s\n%s", q, answer.Text)
	}
}
