// Insider demonstrates the insider-threat domain from §3.1: enterprise log
// events (file access, logins, email, copies) stream into the dynamic KG,
// and the streaming frequent-graph miner surfaces the planted exfiltration
// motif (access → copy-to-removable-media) as it becomes frequent in the
// window — the paper's "discover trends in streaming data" capability on a
// security workload.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"nous"
	"nous/internal/corpus"
)

func main() {
	world := corpus.GenerateInsiderWorld(11, 30, 18, 3000)
	kg, err := world.LoadKG()
	if err != nil {
		log.Fatal(err)
	}
	cfg := nous.DefaultConfig()
	cfg.Stream.Window = 14 * 24 * time.Hour // two-week detection window
	cfg.Miner.MinSupport = 4
	pipeline := nous.NewPipeline(kg, cfg)

	// Render log records as minimal sentences for the shared pipeline.
	verb := map[string]string{
		"accessed": "accessed", "loggedInto": "logged into",
		"emailed": "emailed", "copiedTo": "copied to",
	}
	var articles []nous.Article
	for i, e := range world.Events {
		v := verb[e.Predicate]
		if v == "" {
			continue
		}
		articles = append(articles, nous.Article{
			ID: fmt.Sprintf("log-%06d", i), Source: "auditd", Date: e.Date,
			Text: fmt.Sprintf("%s %s %s.", e.Subject, v, e.Object),
		})
	}

	// Stream in two phases to show the pattern transition: baseline
	// activity first, then the tail where exfiltration was planted.
	split := len(articles) * 3 / 4
	pipeline.IngestAll(articles[:split])
	pipeline.PatternTransitions() // reset the baseline

	pipeline.IngestAll(articles[split:])
	entered, left := pipeline.PatternTransitions()

	fmt.Printf("events streamed: %d (baseline %d + detection window %d)\n",
		len(articles), split, len(articles)-split)
	fmt.Printf("\n== Patterns that BECAME frequent in the detection window ==\n")
	exfil := false
	for _, p := range entered {
		fmt.Printf("  support=%-4d %s\n", p.Support, p)
		if strings.Contains(p.Code, "copiedTo") && strings.Contains(p.Code, "accessed") {
			exfil = true
		}
	}
	if len(left) > 0 {
		fmt.Printf("\n== Patterns that dropped out ==\n")
		for _, p := range left {
			fmt.Printf("  %s\n", p)
		}
	}
	if exfil {
		fmt.Println("\nALERT: access→copy exfiltration motif crossed the support threshold.")
	}

	// Drill-down: who is touching the removable-media sink?
	resources := world.EntitiesOfType("Resource")
	usb := resources[len(resources)-1]
	for _, r := range resources {
		if strings.HasPrefix(r, "usb-drive") {
			usb = r
		}
	}
	ans, err := pipeline.About(usb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== %s ==\n%s", usb, ans.Text)
}
