// Package nous is a from-scratch Go reproduction of NOUS (Choudhury et al.,
// ICDE 2017): construction and querying of dynamic knowledge graphs. It
// fuses a curated knowledge base with knowledge continuously extracted from
// streaming text, estimates per-fact confidence with BPR link prediction,
// mines closed frequent graph patterns over a sliding window, and answers
// five classes of questions — trending, entity, relationship (explanatory),
// pattern and fact queries — over the fused, dynamic graph.
//
// The graph substrate is a lock-striped sharded store (see internal/graph)
// and ingestion is concurrent end to end: IngestAll fans the per-article
// extraction stage out across a worker pool and batches each document's KG
// writes, while queries stay safe to run against the live graph.
//
// Quickstart:
//
//	world := nous.GenerateWorld(nous.DefaultWorldConfig())
//	kg, _ := world.LoadKG()
//	p := nous.NewPipeline(kg, nous.DefaultConfig())
//	p.IngestAll(nous.GenerateArticles(world, nous.DefaultArticleConfig(500)))
//	p.BuildTopics()
//	ans, _ := p.Ask("Tell me about DJI")
//	fmt.Println(ans.Text)
package nous

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"nous/internal/analytics"
	"nous/internal/core"
	"nous/internal/corpus"
	"nous/internal/disambig"
	"nous/internal/fgm"
	"nous/internal/graph"
	"nous/internal/linkpred"
	"nous/internal/nlp"
	"nous/internal/ontology"
	"nous/internal/pathsearch"
	"nous/internal/persist"
	"nous/internal/plan"
	"nous/internal/qa"
	"nous/internal/repl"
	"nous/internal/stream"
	"nous/internal/temporal"
	"nous/internal/topics"
	"nous/internal/trends"
	"nous/internal/trust"
)

// Re-exported core types: the public API surface for building and querying
// dynamic knowledge graphs.
type (
	// Triple is one (subject, predicate, object) fact with provenance.
	Triple = core.Triple
	// Fact is a stored triple.
	Fact = core.Fact
	// Provenance records a fact's origin.
	Provenance = core.Provenance
	// KG is the dynamic knowledge graph.
	KG = core.KG
	// Ontology is the typed predicate vocabulary.
	Ontology = ontology.Ontology
	// EntityType names a node type.
	EntityType = ontology.EntityType
	// Pattern is a mined graph pattern.
	Pattern = fgm.Pattern
	// Trend is a burst-scored trending item.
	Trend = trends.Trend
	// Answer is a structured query answer.
	Answer = qa.Answer
	// Query is a parsed question.
	Query = qa.Query
	// Article is one input document.
	Article = corpus.Article
	// World is a generated evaluation domain.
	World = corpus.World
	// WorldConfig controls world generation.
	WorldConfig = corpus.Config
	// ArticleConfig controls article generation.
	ArticleConfig = corpus.ArticleConfig
	// StreamStats counts pipeline outcomes.
	StreamStats = stream.Stats
	// KGStats summarises knowledge-graph quality statistics.
	KGStats = core.Stats
	// QueryStats reports the epoch-versioned read layer's cache behaviour:
	// mutation epoch, artifact hits/misses/recomputes and topic-model lag.
	QueryStats = analytics.Stats
	// PersistStats reports a durable pipeline's on-disk state: snapshot
	// epoch, live WAL segment and checkpoint counters.
	PersistStats = persist.Stats
	// PersistOptions tunes a durable pipeline's store (group-commit
	// threshold, WAL size budget, snapshot retention).
	PersistOptions = persist.Options
	// Window is a half-open [Since, Until) unix-seconds time range scoping a
	// query to a slice of the stream. The zero Window is unbounded; curated
	// facts are always in scope regardless of the window.
	Window = temporal.Window
	// TemporalStats reports the time index's state (indexed edges and
	// timestamp span).
	TemporalStats = temporal.Stats
	// QueryPlan is a compiled logical query plan — the operator tree a
	// question lowers into before execution (GET /api/plan renders it).
	QueryPlan = plan.Plan
	// PlanNode is the JSON-able shape of one plan operator.
	PlanNode = plan.NodeDesc
	// PlanStats reports the planner's execution counters (plans by class,
	// operators by kind) and the plan-result cache's counters.
	PlanStats = plan.Stats
	// PlanReport is one executed explain: the cost-annotated optimized plan
	// with per-operator estimated vs actual rows, and whether the answer was
	// served from the plan-result cache.
	PlanReport = qa.PlanReport
	// DiffAnswer is the payload of a temporal diff query: facts visible only
	// in the second window (added) or only in the first (removed).
	DiffAnswer = qa.DiffAnswer
	// ReplicationStatus is a follower's replication state: leader URL, the
	// leader's newest known epoch, the locally applied epoch, the lag
	// between them, and the stream's connection health.
	ReplicationStatus = repl.Status
)

// ErrParse marks questions Ask could not parse (or whose temporal qualifiers
// are invalid) — client errors, as opposed to execution failures. Match with
// errors.Is.
var ErrParse = qa.ErrParse

// NewKG returns an empty dynamic KG over the given ontology (nil for the
// default news/business ontology).
func NewKG(ont *Ontology) *KG { return core.NewKG(ont) }

// DefaultOntology returns the built-in ontology covering the paper's three
// domains (news, citations, insider threat).
func DefaultOntology() *Ontology { return ontology.Default() }

// GenerateWorld builds a deterministic synthetic drone-domain world (the
// YAGO2 + WSJ stand-in).
func GenerateWorld(cfg WorldConfig) *World { return corpus.Generate(cfg) }

// DefaultWorldConfig is a medium world.
func DefaultWorldConfig() WorldConfig { return corpus.DefaultConfig() }

// GenerateArticles renders n dated articles from a world's event stream.
func GenerateArticles(w *World, cfg ArticleConfig) []Article {
	return corpus.GenerateArticles(w, cfg)
}

// DefaultArticleConfig generates n articles with default noise levels.
func DefaultArticleConfig(n int) ArticleConfig { return corpus.DefaultArticleConfig(n) }

// Config tunes the full pipeline.
type Config struct {
	// Stream configures extraction → mapping → confidence → KG.
	Stream stream.Config
	// Miner configures the streaming frequent-graph miner.
	Miner fgm.Config
	// Trends configures burst detection.
	Trends trends.Config
	// TopicCount is the LDA topic count for path-search coherence.
	TopicCount int
	// LDAIters is the Gibbs sweep count for BuildTopics.
	LDAIters int
	// Seed drives every stochastic component.
	Seed int64
}

// DefaultConfig mirrors the experiment setup in EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Stream:     stream.DefaultConfig(),
		Miner:      fgm.DefaultConfig(),
		Trends:     trends.DefaultConfig(),
		TopicCount: 8,
		LDAIters:   100,
		Seed:       1,
	}
}

// Pipeline is the end-to-end NOUS system: ingestion, mining, trends,
// topics, search and question answering over one dynamic KG.
type Pipeline struct {
	cfg       Config
	kg        *core.KG
	stream    *stream.Pipeline
	miner     *fgm.Miner
	detector  *trends.Detector
	analytics *analytics.Cache
	searcher  *pathsearch.Searcher
	exec      *qa.Executor
	tindex    *temporal.Index
	store     *persist.Store // nil for an in-memory pipeline
	leader    *repl.Leader   // non-nil iff durable: serves WAL + snapshots to replicas
	follower  *repl.Follower // non-nil iff assembled by Follow: read replica

	// clock is the pipeline clock in unix nanoseconds (0 = unset, fall back
	// to the wall clock). Atomic because ingestion advances it while query
	// handlers read it.
	clock atomic.Int64
}

// NewPipeline assembles the system over a KG pre-loaded with curated
// knowledge. The miner is seeded with the existing curated facts, so mined
// patterns span both curated and extracted structure.
func NewPipeline(kg *KG, cfg Config) *Pipeline {
	if cfg.TopicCount <= 0 {
		cfg = DefaultConfig()
	}
	p := &Pipeline{cfg: cfg, kg: kg}
	p.miner = fgm.NewMiner(cfg.Miner)
	p.detector = trends.NewDetector(cfg.Trends)

	// The epoch-versioned read layer: one cache memoizes PageRank
	// importance, the disambiguation prior and topic vectors for every
	// consumer — the QA executor, the linker and the path searcher.
	p.analytics = analytics.New(kg)
	p.analytics.SetTopicsFn(p.computeTopics)

	// Seed the miner with pre-existing (curated) facts, then subscribe to
	// live updates. Curated facts get an infinite timestamp so windowed
	// eviction never removes them — the curated substrate persists.
	var seed []fgm.Edge
	for _, f := range kg.AllFacts() {
		seed = append(seed, p.minerEdge(f))
	}
	p.miner.AddBatch(seed)
	kg.Subscribe(func(ev core.Event) {
		p.detector.OnEvent(ev)
		if ev.Kind == core.FactAdded {
			p.miner.Add(p.minerEdge(ev.Fact))
		}
	})

	// The temporal index is owned by the KG (attached at construction,
	// re-scanned by Rebuild after recovery) and shared here. It powers the
	// windowed read paths — "tell me about X last week", windowed exports,
	// windowed PageRank — plus index-driven eviction, windowed trend
	// backfill and whole-stream diffs.
	p.tindex = kg.TemporalIndex()

	p.stream = stream.NewWith(kg, cfg.Stream, p.analytics)
	p.searcher = pathsearch.New(kg.Graph(), nil)
	p.exec = &qa.Executor{
		KG:        kg,
		Trends:    p.detector,
		Miner:     p.miner,
		Searcher:  p.searcher,
		Model:     p.stream.Model(),
		Linker:    p.stream.Linker(),
		Analytics: p.analytics,
		TIndex:    p.tindex,
		Now:       p.now,
	}
	return p
}

// Open assembles a durable pipeline over a data directory with the default
// persistence options: it recovers the knowledge graph from the newest
// snapshot plus the write-ahead-log tail, rebuilds the entity/fact indexes,
// and logs every subsequent mutation. A fresh or empty directory yields an
// empty KG — check KG().NumFacts() and seed the curated substrate if needed.
// Close the pipeline when done.
func Open(dir string, ont *Ontology, cfg Config) (*Pipeline, error) {
	return OpenWithOptions(dir, ont, cfg, persist.DefaultOptions())
}

// OpenWithOptions is Open with explicit persistence tuning.
func OpenWithOptions(dir string, ont *Ontology, cfg Config, opt PersistOptions) (*Pipeline, error) {
	kg := core.NewKG(ont)
	st, err := persist.Open(dir, kg.Graph(), opt)
	if err != nil {
		return nil, err
	}
	if err := kg.Rebuild(); err != nil {
		st.Close()
		return nil, err
	}
	p := NewPipeline(kg, cfg)
	p.store = st
	p.leader = repl.NewLeader(kg.Graph(), st)
	return p, nil
}

// Follow assembles a read replica over a leader's replication endpoints: it
// bootstraps the KG from the leader's newest snapshot, rebuilds the index
// layer, then tails the leader's WAL so every derived structure — temporal
// index, miner, trend detector, analytics epoch cache — stays live. The
// replica serves every read path; writes must go to the leader (the server
// rejects them with read_only_replica). The replica keeps no local disk
// state: a restart re-bootstraps. Close stops the tailing loop.
func Follow(ctx context.Context, leaderURL string, ont *Ontology, cfg Config) (*Pipeline, error) {
	kg := core.NewKG(ont)
	f := repl.NewFollower(leaderURL, kg)
	if err := f.Bootstrap(ctx); err != nil {
		return nil, err
	}
	p := NewPipeline(kg, cfg)
	p.follower = f
	// Resolve relative time ("last week") against stream time, not the wall
	// clock: adopt the newest replicated timestamp now and on every applied
	// edge batch. The curated sentinel (MaxInt64) and the timeless sentinel
	// never advance the clock.
	if ts := p.tindex.Stats().MaxTimestamp; ts > temporal.Timeless && ts != math.MaxInt64 {
		p.advance(time.Unix(ts, 0))
	}
	f.OnApply = func(m graph.Mutation) {
		if m.Kind != graph.MutAddEdges {
			return
		}
		var latest int64
		for _, e := range m.Edges {
			if e.Timestamp > latest && e.Timestamp != math.MaxInt64 {
				latest = e.Timestamp
			}
		}
		if latest > temporal.Timeless {
			p.advance(time.Unix(latest, 0))
		}
	}
	f.Start()
	return p, nil
}

// WALSource exposes the replication leader serving this pipeline's WAL and
// snapshots to followers; nil for in-memory (non-durable) pipelines.
func (p *Pipeline) WALSource() *repl.Leader { return p.leader }

// Follower exposes the replication follower keeping this pipeline
// converged with a leader; nil unless assembled by Follow.
func (p *Pipeline) Follower() *repl.Follower { return p.follower }

// ReadOnly reports whether this pipeline is a read replica: its state is
// owned by a leader and local writes are rejected at the API surface.
func (p *Pipeline) ReadOnly() bool { return p.follower != nil }

// Durable reports whether the pipeline persists its graph to disk.
func (p *Pipeline) Durable() bool { return p.store != nil }

// Checkpoint rolls the durable state forward: it snapshots the current
// graph and truncates the write-ahead log back to the new cut. Safe to call
// while ingestion and queries run; a no-op on an in-memory pipeline.
func (p *Pipeline) Checkpoint() error {
	if p.store == nil {
		return nil
	}
	return p.store.Checkpoint()
}

// Close flushes and detaches the durable store (a no-op on an in-memory
// pipeline) and stops a replica's tailing loop. Stop ingesting before
// calling Close; queries may continue against the in-memory graph
// afterwards, but nothing further is logged or replicated.
func (p *Pipeline) Close() error {
	if p.follower != nil {
		p.follower.Close()
	}
	if p.store == nil {
		return nil
	}
	return p.store.Close()
}

// PersistStats reports the durable store's state (snapshot epoch, live WAL
// segment size, checkpoints). The second result is false for an in-memory
// pipeline.
func (p *Pipeline) PersistStats() (PersistStats, bool) {
	if p.store == nil {
		return PersistStats{}, false
	}
	return p.store.Stats(), true
}

func (p *Pipeline) minerEdge(f Fact) fgm.Edge {
	ts := int64(math.MaxInt64) // curated: never evict
	if !f.Curated {
		ts = f.Provenance.Time.Unix()
	}
	return fgm.Edge{
		Src: int64(f.Src), Dst: int64(f.Dst),
		SrcLabel: string(f.SubjectType), DstLabel: string(f.ObjectType),
		Label: f.Predicate, Time: ts,
	}
}

func (p *Pipeline) now() time.Time {
	if ns := p.clock.Load(); ns != 0 {
		return time.Unix(0, ns)
	}
	return time.Now()
}

// Ingest processes one article through extraction, mapping, confidence
// estimation and KG update.
func (p *Pipeline) Ingest(a Article) {
	p.stream.Process(a)
	p.advance(a.Date)
}

// IngestAll processes a batch through the concurrent ingestion path:
// extraction fans out across a bounded worker pool (Config.Stream.Workers,
// default GOMAXPROCS) while integration consumes completed extractions in
// document order, writing each document's accepted facts to the sharded
// graph store as one batch. Results are identical to ingesting the articles
// one at a time. It returns the cumulative stream statistics.
func (p *Pipeline) IngestAll(articles []Article) StreamStats {
	st := p.stream.Run(articles)
	var latest time.Time
	for _, a := range articles {
		if a.Date.After(latest) {
			latest = a.Date
		}
	}
	p.advance(latest)
	return st
}

// advance moves the pipeline clock forward (never back) and synchronizes
// the miner's window with the KG's. Safe to call while queries read the
// clock.
func (p *Pipeline) advance(t time.Time) {
	ns := t.UnixNano()
	for {
		cur := p.clock.Load()
		if ns <= cur || t.IsZero() {
			break
		}
		if p.clock.CompareAndSwap(cur, ns) {
			break
		}
	}
	if w := p.cfg.Stream.Window; w > 0 {
		if cur := p.clock.Load(); cur != 0 {
			p.miner.EvictBefore(time.Unix(0, cur).Add(-w).Unix())
		}
	}
}

// BuildTopics fits the LDA model over per-entity profile documents (name,
// neighborhood, supporting sentences) and attaches topic vectors to the
// path searcher. Call after ingestion (and again after large updates).
// Concurrent calls coalesce into one fit through the analytics cache; the
// built vectors stay memoized (with their epoch reported in QueryStats)
// until the next call. Safe to call while queries are being served: the
// searcher swaps its topic map atomically, so in-flight path queries keep
// the vectors they started with.
func (p *Pipeline) BuildTopics() {
	p.searcher.SetTopics(p.analytics.RefreshTopics())
}

// computeTopics is the LDA fit the analytics cache memoizes.
func (p *Pipeline) computeTopics() map[graph.VertexID][]float64 {
	names := p.kg.Entities()
	docs := make([][]string, len(names))
	for i, n := range names {
		docs[i] = p.entityDoc(n)
	}
	cfg := topics.DefaultConfig(p.cfg.TopicCount)
	cfg.Iters = p.cfg.LDAIters
	cfg.Seed = p.cfg.Seed
	model := topics.Fit(docs, cfg)
	topicOf := make(map[graph.VertexID][]float64, len(names))
	for i, n := range names {
		if id, ok := p.kg.Entity(n); ok {
			topicOf[id] = model.DocTopics(i)
		}
	}
	return topicOf
}

// Analytics exposes the epoch-versioned artifact cache shared by the query
// engine (for benchmarks and diagnostics).
func (p *Pipeline) Analytics() *analytics.Cache { return p.analytics }

// TemporalIndex exposes the per-shard time-ordered edge index (for
// benchmarks and diagnostics).
func (p *Pipeline) TemporalIndex() *temporal.Index { return p.tindex }

// TemporalStats reports the time index's state: indexed edge count and the
// timestamp span it covers.
func (p *Pipeline) TemporalStats() TemporalStats { return p.tindex.Stats() }

// RecentFacts returns the newest k facts whose timestamps fall inside the
// window, oldest first — the "what just happened" feed over the dynamic
// stream. It is answered from the per-shard time index (tail reads only),
// not by scanning the fact set.
func (p *Pipeline) RecentFacts(w Window, k int) []Fact {
	ids := p.tindex.LatestIn(w, k)
	out := make([]Fact, 0, len(ids))
	for _, id := range ids {
		if f, ok := p.kg.Fact(id); ok {
			out = append(out, f)
		}
	}
	return out
}

// QueryStats reports the read layer's cache behaviour: current mutation
// epoch, artifact hits/misses/recomputes and the topic model's epoch lag.
func (p *Pipeline) QueryStats() QueryStats { return p.analytics.Stats() }

// entityDoc builds the "document" of an entity for LDA: its name, its
// type, the predicates and neighbor names around it, and the content words
// of supporting sentences.
func (p *Pipeline) entityDoc(name string) []string {
	var words []string
	add := func(text string) {
		for _, s := range nlp.Process(text) {
			words = append(words, nlp.ContentWords(s)...)
		}
	}
	add(name)
	for _, f := range p.kg.FactsAbout(name) {
		words = append(words, f.Predicate)
		if f.Subject == name {
			add(f.Object)
		} else {
			add(f.Subject)
		}
		if f.Provenance.Sentence != "" {
			add(f.Provenance.Sentence)
		}
	}
	return words
}

// Ask parses and answers a natural-language-like question (the five query
// classes of the paper's Fig 5). Temporal qualifiers in the question ("last
// week", "in 2015", "between 2014 and 2016", "as of 2015-06-30") scope the
// answer to that slice of the stream; relative forms resolve against the
// pipeline clock.
func (p *Pipeline) Ask(question string) (Answer, error) {
	return p.exec.Ask(question)
}

// AskWindow is Ask with an explicit window (the API's since/until
// parameters), intersected with any window the question itself carries. The
// unbounded window makes it exactly Ask.
func (p *Pipeline) AskWindow(question string, w Window) (Answer, error) {
	return p.exec.AskWindow(question, w)
}

// Run executes a pre-parsed query.
func (p *Pipeline) Run(q Query) (Answer, error) {
	return p.exec.Run(q)
}

// Trending returns the top-k bursting entities and predicates at the
// pipeline clock.
func (p *Pipeline) Trending(k int) []Trend {
	return p.detector.Trending(p.now(), k)
}

// TrendingWindow answers "what was trending in this window": a bounded
// window runs the planner's TrendScan backfill, scoring bursts in every
// bucket the window covers straight off the temporal index (history before
// the window feeds the baselines); the unbounded window is the live
// detector's view, exactly Trending.
func (p *Pipeline) TrendingWindow(w Window, k int) (Answer, error) {
	return p.exec.Run(Query{Class: qa.ClassTrending, K: k, Window: w})
}

// Diff answers the temporal join "what changed about entity between A and
// B": facts visible in window B but not A (added) and vice versa (removed),
// matched by (subject, predicate, object). An empty entity diffs the whole
// extracted stream off the temporal index. Curated facts are visible in
// every window and therefore never appear as changes.
func (p *Pipeline) Diff(entity string, a, b Window) (Answer, error) {
	return p.exec.Run(Query{Class: qa.ClassDiff, Subject: entity, Window: a, WindowB: b})
}

// PlanFor parses a question and compiles it into its logical plan without
// executing it — the explain view of the query planner. The window
// intersects like AskWindow's.
func (p *Pipeline) PlanFor(question string, w Window) (*QueryPlan, error) {
	return p.exec.Plan(question, w)
}

// ExplainPlan compiles, optimizes and executes a question, reporting the
// costed plan with per-operator estimated and actual rows — the engine
// behind GET /api/plan. Cacheable questions go through the plan-result
// cache; an explain of an already-cached question reports Cached and skips
// execution entirely (so it carries no actual rows).
func (p *Pipeline) ExplainPlan(question string, w Window) (*PlanReport, error) {
	return p.exec.ExplainQuery(question, w)
}

// PlanStats reports the query planner's execution counters.
func (p *Pipeline) PlanStats() PlanStats {
	return p.exec.PlanStats()
}

// Patterns returns the top-k closed frequent patterns in the current
// window.
func (p *Pipeline) Patterns(k int) []Pattern {
	ps := p.miner.ClosedPatterns()
	if k > 0 && len(ps) > k {
		ps = ps[:k]
	}
	return ps
}

// PatternTransitions reports patterns entering and leaving the frequent
// set since the last call.
func (p *Pipeline) PatternTransitions() (entered, left []Pattern) {
	return p.miner.Transitions()
}

// Explain returns up to k coherence-ranked paths between two entities,
// optionally constrained to traverse a predicate.
func (p *Pipeline) Explain(src, dst, predicate string, k int) (Answer, error) {
	return p.ExplainWindow(src, dst, predicate, k, Window{})
}

// ExplainWindow is Explain restricted to paths whose extracted edges fall in
// the window (curated edges always qualify).
func (p *Pipeline) ExplainWindow(src, dst, predicate string, k int, w Window) (Answer, error) {
	return p.exec.Run(Query{Class: qa.ClassRelationship, Subject: src, Object: dst, Predicate: predicate, K: k, Window: w})
}

// About returns the entity summary answer for a name (Fig 6).
func (p *Pipeline) About(name string) (Answer, error) {
	return p.AboutWindow(name, Window{})
}

// AboutWindow is About scoped to the window: the summary's facts and
// importance reflect only the curated substrate plus the extracted facts
// inside [Since, Until).
func (p *Pipeline) AboutWindow(name string, w Window) (Answer, error) {
	return p.exec.Run(Query{Class: qa.ClassEntity, Subject: name, K: 10, Window: w})
}

// Score returns the link-prediction confidence of a candidate triple.
func (p *Pipeline) Score(subject, predicate, object string) float64 {
	return p.stream.Model().Score(subject, predicate, object)
}

// KG exposes the underlying dynamic knowledge graph.
func (p *Pipeline) KG() *KG { return p.kg }

// Stats returns the stream statistics so far.
func (p *Pipeline) Stats() StreamStats { return p.stream.Stats() }

// Linker exposes the entity disambiguator (AIDA variant).
func (p *Pipeline) Linker() *disambig.Linker { return p.stream.Linker() }

// SourceTrust returns the current per-source trust scores (§3.4's source-
// level trust tracking), sorted by descending trust.
func (p *Pipeline) SourceTrust() []trust.SourceTrust {
	return p.stream.Trust().Sources()
}

// LinkPredictor exposes the BPR confidence model.
func (p *Pipeline) LinkPredictor() *linkpred.Model { return p.stream.Model() }

// Miner exposes the streaming frequent-graph miner.
func (p *Pipeline) Miner() *fgm.Miner { return p.miner }

// QueryClasses lists the five supported query classes with examples.
func QueryClasses() []string { return qa.Classes() }
