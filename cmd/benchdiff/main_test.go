package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, artifact string, metrics map[string]float64) string {
	t.Helper()
	raw, err := json.Marshal(benchFile{Artifact: artifact, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// diff runs benchdiff against the given metric maps and returns the exit
// code plus captured stdout and stderr.
func diff(t *testing.T, baseline, current map[string]float64, extraArgs ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	b := writeBench(t, dir, "base.json", "query", baseline)
	c := writeBench(t, dir, "cur.json", "query", current)
	var out, errOut strings.Builder
	args := append([]string{"-baseline", b, "-current", c}, extraArgs...)
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestWithinBudgetPasses(t *testing.T) {
	code, out, _ := diff(t,
		map[string]float64{"qps": 100},
		map[string]float64{"qps": 95}) // -5%: inside the default 20% budget
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "within budget") {
		t.Errorf("output missing within-budget verdict:\n%s", out)
	}
}

func TestRegressionBeyondThresholdFails(t *testing.T) {
	code, out, errOut := diff(t,
		map[string]float64{"qps": 100},
		map[string]float64{"qps": 79}) // -21%: past the default 20% budget
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("output missing REGRESSED verdict:\n%s", out)
	}
	if !strings.Contains(errOut, "regressed more than 20%") {
		t.Errorf("stderr missing gate message: %q", errOut)
	}
}

func TestExactThresholdBoundaryPasses(t *testing.T) {
	// current == baseline*(1-threshold) is not strictly below the floor.
	code, out, _ := diff(t,
		map[string]float64{"qps": 100},
		map[string]float64{"qps": 80})
	if code != 0 {
		t.Fatalf("exit = %d, want 0 at the exact boundary; output:\n%s", code, out)
	}
}

func TestCustomThreshold(t *testing.T) {
	code, _, _ := diff(t,
		map[string]float64{"qps": 100},
		map[string]float64{"qps": 95},
		"-threshold", "0.02") // -5% against a 2% budget
	if code != 1 {
		t.Fatalf("exit = %d, want 1 with tightened threshold", code)
	}
}

func TestRatioMath(t *testing.T) {
	_, out, _ := diff(t,
		map[string]float64{"qps": 200},
		map[string]float64{"qps": 300})
	if !strings.Contains(out, "1.50x") {
		t.Errorf("output missing computed 1.50x ratio:\n%s", out)
	}
	if !strings.Contains(out, "improved") {
		t.Errorf("output missing improved verdict:\n%s", out)
	}
}

func TestMissingMetricFails(t *testing.T) {
	code, out, _ := diff(t,
		map[string]float64{"qps": 100, "p50": 10},
		map[string]float64{"qps": 100})
	if code != 1 {
		t.Fatalf("exit = %d, want 1 when a baseline metric disappears", code)
	}
	if !strings.Contains(out, "MISSING") {
		t.Errorf("output missing MISSING verdict:\n%s", out)
	}
}

func TestNewMetricNotGated(t *testing.T) {
	code, out, _ := diff(t,
		map[string]float64{"qps": 100},
		map[string]float64{"qps": 100, "p50": 10})
	if code != 0 {
		t.Fatalf("exit = %d, want 0: new metrics are reported, not gated", code)
	}
	if !strings.Contains(out, "not gated") {
		t.Errorf("output missing new-metric note:\n%s", out)
	}
}

func TestArtifactMismatchFails(t *testing.T) {
	dir := t.TempDir()
	b := writeBench(t, dir, "base.json", "query", map[string]float64{"qps": 1})
	c := writeBench(t, dir, "cur.json", "ingest", map[string]float64{"qps": 1})
	var out, errOut strings.Builder
	code := run([]string{"-baseline", b, "-current", c}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 on artifact mismatch", code)
	}
	if !strings.Contains(errOut.String(), "artifact mismatch") {
		t.Errorf("stderr missing mismatch message: %q", errOut.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 with no flags", code)
	}
	dir := t.TempDir()
	b := writeBench(t, dir, "base.json", "query", map[string]float64{"qps": 1})
	if code := run([]string{"-baseline", b, "-current", b, "-threshold", "1.5"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 for threshold outside [0,1)", code)
	}
}

func TestLoadFailures(t *testing.T) {
	dir := t.TempDir()
	good := writeBench(t, dir, "base.json", "query", map[string]float64{"qps": 1})

	var out, errOut strings.Builder
	if code := run([]string{"-baseline", good, "-current", filepath.Join(dir, "absent.json")}, &out, &errOut); code != 1 {
		t.Errorf("exit = %d, want 1 for a missing current file", code)
	}

	empty := writeBench(t, dir, "empty.json", "query", nil)
	if code := run([]string{"-baseline", empty, "-current", good}, &out, &errOut); code != 1 {
		t.Errorf("exit = %d, want 1 for a baseline with no metrics", code)
	}
}
