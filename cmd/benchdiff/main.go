// Command benchdiff gates benchmark regressions in CI. It compares a
// freshly-generated BENCH_<artifact>.json (from `nousbench -artifact X
// -json`) against the committed baseline and exits non-zero when any metric
// regressed beyond the allowed fraction.
//
// Every metric is higher-is-better by convention (throughputs, speedups), so
// a regression is current < baseline * (1 - threshold). Improvements never
// fail the gate — refresh the committed baseline when they should become the
// new floor.
//
// Usage:
//
//	benchdiff -baseline bench/BENCH_query.json -current BENCH_query.json [-threshold 0.20]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type benchFile struct {
	Artifact string             `json:"artifact"`
	Metrics  map[string]float64 `json:"metrics"`
}

func load(path string) (benchFile, error) {
	var bf benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(raw, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	if len(bf.Metrics) == 0 {
		return bf, fmt.Errorf("%s: no metrics", path)
	}
	return bf, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges injected: exit code 0 within budget,
// 1 on regression/missing metric/load failure, 2 on usage errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "committed baseline BENCH_<artifact>.json (required)")
	currentPath := fs.String("current", "", "freshly generated BENCH_<artifact>.json (required)")
	threshold := fs.Float64("threshold", 0.20, "allowed regression fraction: fail when current < baseline*(1-threshold)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baselinePath == "" || *currentPath == "" {
		fs.Usage()
		return 2
	}
	if *threshold < 0 || *threshold >= 1 {
		fmt.Fprintf(stderr, "benchdiff: threshold %v outside [0,1)\n", *threshold)
		return 2
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	cur, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	if base.Artifact != cur.Artifact {
		fmt.Fprintf(stderr, "benchdiff: artifact mismatch: baseline %q vs current %q\n", base.Artifact, cur.Artifact)
		return 1
	}

	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(stdout, "artifact %q, regression threshold %.0f%%\n", base.Artifact, *threshold*100)
	fmt.Fprintf(stdout, "%-36s %14s %14s %8s  %s\n", "metric", "baseline", "current", "ratio", "verdict")
	failed := false
	for _, name := range names {
		b := base.Metrics[name]
		c, ok := cur.Metrics[name]
		if !ok {
			fmt.Fprintf(stdout, "%-36s %14.1f %14s %8s  MISSING\n", name, b, "-", "-")
			failed = true
			continue
		}
		ratio := 0.0
		if b != 0 {
			ratio = c / b
		}
		verdict := "ok"
		if c < b*(1-*threshold) {
			verdict = "REGRESSED"
			failed = true
		} else if ratio > 1 {
			verdict = "improved"
		}
		fmt.Fprintf(stdout, "%-36s %14.1f %14.1f %7.2fx  %s\n", name, b, c, ratio, verdict)
	}
	extra := make([]string, 0)
	for name := range cur.Metrics {
		if _, ok := base.Metrics[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(stdout, "%-36s %14s %14.1f %8s  new (not gated; add to baseline)\n", name, "-", cur.Metrics[name], "-")
	}
	if failed {
		fmt.Fprintf(stderr, "benchdiff: throughput regressed more than %.0f%% vs %s\n", *threshold*100, *baselinePath)
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: within budget")
	return 0
}
