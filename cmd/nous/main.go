// Command nous is the demo CLI (§4): it builds a custom knowledge graph
// from a curated KB plus a stream of articles and answers the five query
// classes from the command line.
//
// Subcommands:
//
//	nous build  [-world drone|citations|insider] [-articles N] [-out kg.json]
//	nous query  [-articles N] -q "Tell me about DJI"
//	nous mine   [-articles N] [-minsup K] [-maxedges L]
//	nous trends [-articles N] [-k K]
//	nous export [-articles N] [-format dot|json] [-entity NAME]...
//
// Without external data the synthetic drone world drives everything; point
// -kb/-corpus at TSV/JSON files to use real data.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nous"

	"nous/internal/corpus"
	"nous/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// One signal context for every command: ingestion checkpoints partial
	// progress on SIGINT/SIGTERM (when a -data-dir is attached) and serve
	// drains in-flight requests before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "build":
		cmdBuild(ctx, args)
	case "query":
		cmdQuery(ctx, args)
	case "mine":
		cmdMine(ctx, args)
	case "trends":
		cmdTrends(ctx, args)
	case "diff":
		cmdDiff(ctx, args)
	case "export":
		cmdExport(ctx, args)
	case "serve":
		cmdServe(ctx, args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nous: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `nous — construction and querying of dynamic knowledge graphs

commands:
  build    ingest a corpus into a knowledge graph and print statistics
  query    answer a question (trending/entity/relationship/pattern/fact/diff);
           -plan prints the compiled logical plan alongside the answer
  mine     report closed frequent patterns over the stream window
  trends   report bursting entities and predicates
  diff     temporal join: what changed (about an entity) between two periods
  export   dump the KG (or an entity neighborhood) as DOT or JSON
  serve    start the web console + JSON API (the demo's web interface)

common flags: -world drone|citations|insider, -articles N, -seed S,
              -kb triples.tsv, -corpus articles.json,
              -data-dir DIR (durable graph: resume from disk, persist as you go)
`)
}

// buildFlags holds the flags shared by all subcommands.
type buildFlags struct {
	world    string
	articles int
	seed     int64
	kbPath   string
	corpus   string
	window   time.Duration
	workers  int
	dataDir  string
}

func addCommonFlags(fs *flag.FlagSet) *buildFlags {
	bf := &buildFlags{}
	fs.StringVar(&bf.world, "world", "drone", "synthetic world: drone, citations or insider")
	fs.IntVar(&bf.articles, "articles", 400, "number of synthetic articles to ingest")
	fs.Int64Var(&bf.seed, "seed", 42, "world seed")
	fs.StringVar(&bf.kbPath, "kb", "", "curated KB TSV file (overrides synthetic KB)")
	fs.StringVar(&bf.corpus, "corpus", "", "articles JSON file (overrides synthetic corpus)")
	fs.DurationVar(&bf.window, "window", 0, "sliding window for extracted facts (0 = keep all)")
	fs.IntVar(&bf.workers, "workers", 0, "extraction worker goroutines (0 = GOMAXPROCS)")
	fs.StringVar(&bf.dataDir, "data-dir", "", "durable graph directory: resume from its snapshot+WAL if present, persist every mutation while running")
	return bf
}

// assemble builds the pipeline per flags. With -data-dir it opens the
// durable store first: a non-empty store resumes from disk and skips
// seeding/ingest entirely; an empty one seeds and ingests through the
// store so every write is persisted as it happens, then checkpoints.
// Ingestion watches ctx and stops at a chunk boundary when a shutdown
// signal arrives, so partial progress still reaches the final checkpoint.
func assemble(ctx context.Context, bf *buildFlags) (*nous.Pipeline, *nous.World) {
	w := worldFor(bf)

	cfg := nous.DefaultConfig()
	cfg.Stream.Window = bf.window
	cfg.Stream.Workers = bf.workers

	var p *nous.Pipeline
	if bf.dataDir != "" {
		var err error
		p, err = nous.Open(bf.dataDir, w.Ontology, cfg)
		fatalIf(err)
		if p.KG().NumFacts() > 0 {
			ps, _ := p.PersistStats()
			fmt.Fprintf(os.Stderr, "nous: resumed from %s: %d entities, %d facts, epoch %d (replayed %d WAL records)\n",
				bf.dataDir, p.KG().NumEntities(), p.KG().NumFacts(), p.KG().Graph().Epoch(), ps.ReplayedRecords)
			if bf.kbPath != "" || bf.corpus != "" {
				fmt.Fprintln(os.Stderr, "nous: warning: -kb/-corpus ignored when resuming from a non-empty -data-dir (point at a fresh directory to re-ingest)")
			}
			return p, w
		}
		fatalIf(w.SeedKG(p.KG()))
	} else {
		kg, err := w.LoadKG()
		fatalIf(err)
		p = nous.NewPipeline(kg, cfg)
	}

	if bf.kbPath != "" {
		f, err := os.Open(bf.kbPath)
		fatalIf(err)
		triples, err := corpus.ReadTriplesTSV(f)
		f.Close()
		fatalIf(err)
		for _, t := range triples {
			if _, err := p.KG().AddFact(t); err != nil {
				fmt.Fprintln(os.Stderr, "warning:", err)
			}
		}
	}

	var articles []nous.Article
	if bf.corpus != "" {
		f, err := os.Open(bf.corpus)
		fatalIf(err)
		articles, err = corpus.ReadArticlesJSON(f)
		f.Close()
		fatalIf(err)
	} else if bf.world == "drone" {
		articles = nous.GenerateArticles(w, nous.DefaultArticleConfig(bf.articles))
	} else {
		// Event-only worlds ingest their event streams as curated-style
		// updates: emit one short article per event.
		articles = eventArticles(w, bf.articles)
	}
	ingestChunked(ctx, p, articles)
	if p.Durable() {
		fatalIf(p.Checkpoint())
	}
	return p, w
}

// worldFor resolves the -world flag to a synthetic world; its ontology is
// used even in modes that skip the world's KB and corpus (a read replica
// needs the same ontology as its leader to admit replicated facts).
func worldFor(bf *buildFlags) *nous.World {
	switch bf.world {
	case "drone":
		cfg := nous.DefaultWorldConfig()
		cfg.Seed = bf.seed
		return nous.GenerateWorld(cfg)
	case "citations":
		return corpus.GenerateCitationWorld(bf.seed, 60, 120)
	case "insider":
		return corpus.GenerateInsiderWorld(bf.seed, 25, 18, 1500)
	default:
		fatal(fmt.Errorf("unknown world %q", bf.world))
		return nil
	}
}

// ingestChunked feeds articles through the pipeline in slices, checking for
// shutdown between chunks: on SIGINT/SIGTERM mid-corpus the current chunk
// finishes, the remainder is skipped, and the caller's checkpoint captures
// everything ingested so far instead of throwing it away.
func ingestChunked(ctx context.Context, p *nous.Pipeline, articles []nous.Article) {
	const chunk = 64
	for done := 0; done < len(articles); {
		select {
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "nous: interrupted after %d/%d articles; flushing partial progress\n",
				done, len(articles))
			return
		default:
		}
		end := min(done+chunk, len(articles))
		p.IngestAll(articles[done:end])
		done = end
	}
}

// eventArticles renders generic one-sentence articles for worlds without
// news templates (citations, insider threat).
func eventArticles(w *nous.World, limit int) []nous.Article {
	var out []nous.Article
	for i, e := range w.Events {
		if limit > 0 && i >= limit {
			break
		}
		out = append(out, nous.Article{
			ID: fmt.Sprintf("ev-%06d", i), Source: "log", Date: e.Date,
			Text: fmt.Sprintf("%s %s %s.", e.Subject, verbFor(e.Predicate), e.Object),
		})
	}
	return out
}

func verbFor(pred string) string {
	switch pred {
	case "authorOf":
		return "authored"
	case "cites":
		return "cites"
	case "publishedAt":
		return "appeared at"
	case "accessed":
		return "accessed"
	case "loggedInto":
		return "logged into"
	case "emailed":
		return "emailed"
	case "copiedTo":
		return "copied to"
	default:
		return pred
	}
}

func cmdBuild(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	bf := addCommonFlags(fs)
	out := fs.String("out", "", "write the resulting KG as JSON to this file")
	fs.Parse(args)

	start := time.Now()
	p, _ := assemble(ctx, bf)
	defer func() { fatalIf(p.Close()) }()
	st := p.Stats()
	kgStats := p.KG().Stats()
	fmt.Printf("ingested %d documents in %s\n", st.Documents, time.Since(start).Round(time.Millisecond))
	fmt.Printf("raw triples %d → mapped %d → accepted %d (rejected %d)\n",
		st.RawTriples, st.Mapped, st.Accepted, st.Rejected)
	fmt.Printf("knowledge graph: %d entities, %d facts (%d curated, %d extracted)\n",
		kgStats.Entities, kgStats.Facts, kgStats.CuratedFacts, kgStats.ExtractedFacts)
	fmt.Printf("mean extracted confidence: %.2f\n", kgStats.MeanConfidence)
	fmt.Printf("confidence histogram: %v\n", kgStats.ConfidenceHistogram)
	if ps, ok := p.PersistStats(); ok {
		fmt.Printf("durable store: snapshot epoch %d, wal seq %d (%d records, %d bytes), %d checkpoints\n",
			ps.SnapshotEpoch, ps.WALSeq, ps.WALRecords, ps.WALBytes, ps.Checkpoints)
	}
	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		defer f.Close()
		fatalIf(p.KG().ExportJSON(f))
		fmt.Printf("wrote %s\n", *out)
	}
}

func cmdQuery(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	bf := addCommonFlags(fs)
	q := fs.String("q", "", "the question (required)")
	topicsOn := fs.Bool("topics", true, "build LDA topics for coherence-ranked paths")
	showPlan := fs.Bool("plan", false, "print the compiled logical plan before the answer")
	fs.Parse(args)
	if *q == "" {
		fmt.Fprintln(os.Stderr, "query: -q is required; the query classes are:")
		for _, c := range nous.QueryClasses() {
			fmt.Fprintln(os.Stderr, "  ", c)
		}
		os.Exit(2)
	}
	p, _ := assemble(ctx, bf)
	defer func() { fatalIf(p.Close()) }()
	if *topicsOn {
		p.BuildTopics()
	}
	if *showPlan {
		pl, err := p.PlanFor(*q, nous.Window{})
		fatalIf(err)
		fmt.Print(pl.Explain())
		fmt.Println()
	}
	a, err := p.Ask(*q)
	fatalIf(err)
	fmt.Println(a.Text)
}

// cmdDiff answers "what changed (about an entity) between two periods" by
// routing through the question language, so the CLI and the parser share
// one code path.
func cmdDiff(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	bf := addCommonFlags(fs)
	entity := fs.String("entity", "", "entity to diff (empty = the whole extracted stream)")
	a := fs.String("a", "", "first period: a year (2015) or a day (2015-06-12); required")
	b := fs.String("b", "", "second period, after the first; required")
	fs.Parse(args)
	if *a == "" || *b == "" {
		fmt.Fprintln(os.Stderr, "diff: -a and -b are required (a year or YYYY-MM-DD each)")
		os.Exit(2)
	}
	p, _ := assemble(ctx, bf)
	defer func() { fatalIf(p.Close()) }()
	question := fmt.Sprintf("What changed between %s and %s?", *a, *b)
	if *entity != "" {
		question = fmt.Sprintf("What changed about %s between %s and %s?", *entity, *a, *b)
	}
	ans, err := p.Ask(question)
	fatalIf(err)
	fmt.Println(ans.Text)
}

func cmdMine(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	bf := addCommonFlags(fs)
	k := fs.Int("k", 15, "patterns to show")
	fs.Parse(args)
	p, _ := assemble(ctx, bf)
	defer func() { fatalIf(p.Close()) }()
	fmt.Println("closed frequent patterns in the current window:")
	for _, pat := range p.Patterns(*k) {
		fmt.Printf("  support=%-4d %s\n", pat.Support, pat)
	}
}

func cmdTrends(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("trends", flag.ExitOnError)
	bf := addCommonFlags(fs)
	k := fs.Int("k", 15, "trends to show")
	fs.Parse(args)
	p, _ := assemble(ctx, bf)
	defer func() { fatalIf(p.Close()) }()
	for _, t := range p.Trending(*k) {
		fmt.Printf("  %-30s %-9s burst=%.1fx (%d mentions, baseline %.1f)\n",
			t.Name, t.Kind, t.Score, t.Current, t.Baseline)
	}
}

func cmdExport(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	bf := addCommonFlags(fs)
	format := fs.String("format", "dot", "dot or json")
	entity := fs.String("entity", "", "restrict to one entity's neighborhood (comma-separated for several)")
	fs.Parse(args)
	p, _ := assemble(ctx, bf)
	defer func() { fatalIf(p.Close()) }()
	var names []string
	if *entity != "" {
		names = splitComma(*entity)
	}
	switch *format {
	case "dot":
		fatalIf(p.KG().ExportDOT(os.Stdout, names...))
	case "json":
		fatalIf(p.KG().ExportJSON(os.Stdout, names...))
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func cmdServe(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	bf := addCommonFlags(fs)
	addr := fs.String("addr", ":8080", "listen address")
	topicsOn := fs.Bool("topics", true, "build LDA topics for coherence-ranked paths")
	reqTimeout := fs.Duration("request-timeout", server.DefaultRequestTimeout, "per-request handler timeout (0 disables)")
	follow := fs.String("follow", "", "run as a read replica of this leader's base URL (e.g. http://leader:8080): bootstrap from its snapshot, tail its WAL, reject writes; -world selects the shared ontology and the ingest flags are ignored")
	fs.Parse(args)
	var p *nous.Pipeline
	if *follow != "" {
		if bf.dataDir != "" {
			fatal(fmt.Errorf("-follow and -data-dir are mutually exclusive: a replica keeps no local disk state (it re-bootstraps from the leader on restart)"))
		}
		cfg := nous.DefaultConfig()
		cfg.Stream.Window = bf.window
		var err error
		p, err = nous.Follow(ctx, *follow, worldFor(bf).Ontology, cfg)
		fatalIf(err)
		st := p.Follower().Status()
		fmt.Fprintf(os.Stderr, "nous: read replica of %s: bootstrapped at epoch %d (%d entities, %d facts), tailing WAL\n",
			*follow, st.AppliedEpoch, p.KG().NumEntities(), p.KG().NumFacts())
	} else {
		p, _ = assemble(ctx, bf)
	}
	// With -data-dir, leave a fresh snapshot behind and flush the WAL on
	// every exit path, so the next serve resumes instantly from disk.
	finish := func() {
		if p.Durable() {
			fatalIf(p.Checkpoint())
		}
		fatalIf(p.Close())
	}
	if ctx.Err() != nil {
		// Interrupted during the initial build: persist what we have
		// instead of starting a server that is already shutting down.
		finish()
		return
	}
	if *topicsOn {
		p.BuildTopics()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewWithTimeout(p, *reqTimeout),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("nous: serving web console on http://localhost%s\n", *addr)

	select {
	case err := <-errc:
		fatalIf(err)
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nous: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatalIf(err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalIf(err)
		}
		finish()
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nous:", err)
	os.Exit(1)
}
