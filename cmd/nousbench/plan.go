package main

import (
	"fmt"
	"os"
	"time"

	"nous"
)

// claimPlan — the cost-based planner: whole-result caching of diff and
// bounded-trending queries at an unchanged graph epoch, and the optimizer's
// histogram-driven TrendScan skip on windows the statistics prove empty.
// Cold throughput is measured with a distinct window per iteration (every
// normalized plan string is new, so every lookup misses); cached throughput
// repeats one window at one epoch, so after the first miss every answer is
// a memo read.
func claimPlan(n int, seed int64) {
	header("Claim C11 — cost-based planner: epoch-keyed plan cache, skew-aware rewrites")
	p, _, arts := buildSystem(n, seed)

	// The query window: the middle half of the article date range, split at
	// its midpoint for the diff's two sides.
	lo, hi := arts[0].Date, arts[0].Date
	for _, a := range arts {
		if a.Date.Before(lo) {
			lo = a.Date
		}
		if a.Date.After(hi) {
			hi = a.Date
		}
	}
	span := hi.Sub(lo)
	win := nous.Window{
		Since: lo.Add(span / 4).Unix(),
		Until: lo.Add(3 * span / 4).Unix(),
	}
	mid := (win.Since + win.Until) / 2
	winA := nous.Window{Since: win.Since, Until: mid}
	winB := nous.Window{Since: mid, Until: win.Until}
	fmt.Printf("graph: %d entities, %d facts; window %v (%d dated facts)\n",
		p.KG().NumEntities(), p.KG().NumFacts(), win, p.TemporalIndex().Count(win))

	// Sanity: the cached repeat must be byte-identical to the cold answer.
	cold, err := p.Diff("", winA, winB)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	warm, err := p.Diff("", winA, winB)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if cold.Text != warm.Text {
		fmt.Fprintln(os.Stderr, "CACHE MISMATCH: cached diff answer diverges from cold")
		return
	}
	fmt.Println("cached repeat == cold answer: ok")

	measure := func(label string, iters int, fn func() error) (perSec float64, ok bool) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				fmt.Fprintln(os.Stderr, label+":", err)
				return 0, false
			}
		}
		dur := time.Since(start)
		perSec = float64(iters) / dur.Seconds()
		fmt.Printf("%-48s %12s/query  (%8.0f queries/s)\n", label, (dur / time.Duration(iters)).Round(time.Microsecond), perSec)
		return perSec, true
	}

	// Diff: cold (a never-repeated split point per iteration — each plan
	// normalizes to a fresh cache key) vs cached (one split, one epoch).
	var shift int64
	coldDiff, ok := measure("stream diff, distinct windows (cold)", 200, func() error {
		shift++
		a := nous.Window{Since: win.Since, Until: mid + shift}
		b := nous.Window{Since: mid + shift, Until: win.Until}
		_, err := p.Diff("", a, b)
		return err
	})
	if !ok {
		return
	}
	record("cold_diff_queries_per_sec", coldDiff)
	cachedDiff, ok := measure("stream diff, repeated window (cached)", 4000, func() error {
		_, err := p.Diff("", winA, winB)
		return err
	})
	if !ok {
		return
	}
	record("cached_diff_queries_per_sec", cachedDiff)
	record("diff_cache_speedup", cachedDiff/coldDiff)

	// Bounded trending (TrendScan backfill): same cold/cached split.
	if _, err := p.TrendingWindow(win, 10); err != nil { // prime
		fmt.Fprintln(os.Stderr, err)
		return
	}
	coldTrend, ok := measure("windowed trending, distinct windows (cold)", 200, func() error {
		shift++
		_, err := p.TrendingWindow(nous.Window{Since: win.Since + shift, Until: win.Until}, 10)
		return err
	})
	if !ok {
		return
	}
	record("cold_trending_queries_per_sec", coldTrend)
	cachedTrend, ok := measure("windowed trending, repeated window (cached)", 4000, func() error {
		_, err := p.TrendingWindow(win, 10)
		return err
	})
	if !ok {
		return
	}
	record("cached_trending_queries_per_sec", cachedTrend)
	record("trending_cache_speedup", cachedTrend/coldTrend)

	// The skew case: a bounded window entirely after the stream. The
	// histogram proves it empty, so the optimizer skips the TrendScan —
	// no backfill bucketing at all. Distinct windows keep every iteration
	// cold; the win is pure rewrite, not caching.
	year := int64(365 * 24 * 3600)
	base := hi.Unix() + year
	emptyTrend, ok := measure("windowed trending, provably-empty window (cold)", 200, func() error {
		shift++
		_, err := p.TrendingWindow(nous.Window{Since: base + shift, Until: base + year + shift}, 10)
		return err
	})
	if !ok {
		return
	}
	record("empty_window_trend_queries_per_sec", emptyTrend)
	record("empty_window_skip_win", emptyTrend/coldTrend)

	st := p.PlanStats()
	if st.Cache != nil {
		fmt.Printf("\nplan cache: hits=%d misses=%d coalesced=%d evictions=%d entries=%d\n",
			st.Cache.Hits, st.Cache.Misses, st.Cache.Coalesced, st.Cache.Evictions, st.Cache.Entries)
	}
	fmt.Printf("\nspeedups: diff cached %.0fx cold, trending cached %.0fx cold, empty-window skip %.0fx dense cold\n",
		cachedDiff/coldDiff, cachedTrend/coldTrend, emptyTrend/coldTrend)
	fmt.Println("\nshape target: cached repeats >= 10x cold; histogram-empty windows answer without a scan")
}
