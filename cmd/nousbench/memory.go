package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"nous/internal/graph"
	"nous/internal/persist"
)

// claimMemory — the memory-lean graph core: resident bytes per fact for the
// interned, columnar slab layout; sequential edge-scan bandwidth against an
// in-artifact pointer-chasing baseline; and cold-restore throughput (snapshot
// to a fully rebuilt graph).
//
// Facts are prop-less edges, the dominant population of a corpus-built KG.
// The targets come from the storage-layout budget: <= 64 bytes/fact, and a
// sequential slab scan >= 2x a heap-of-Edge-structs traversal.
func claimMemory(n int, seed int64) {
	header("Claim C10 — memory-lean graph core: bytes/fact, scan bandwidth, cold restore")

	// Corpus shape: a fixed vertex population with an edge stream over a
	// small predicate vocabulary, like an ingested article corpus. Scale the
	// edge count with -n (default n=800 -> 1M edges).
	edges := n * 1250
	if edges < 100_000 {
		edges = 100_000
	}
	const vertices = 20_000
	labels := []string{"acquired", "partnersWith", "invests", "manufactures", "employs", "suppliesTo"}
	rng := rand.New(rand.NewSource(seed))

	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	before := heap()
	g := graph.New()
	ids := make([]graph.VertexID, vertices)
	for i := range ids {
		ids[i] = g.AddVertex("Company")
	}
	const perBatch = 512
	specs := make([]graph.EdgeSpec, perBatch)
	buildStart := time.Now()
	for done := 0; done < edges; done += perBatch {
		b := perBatch
		if edges-done < b {
			b = edges - done
		}
		for j := 0; j < b; j++ {
			specs[j] = graph.EdgeSpec{
				Src:       ids[rng.Intn(vertices)],
				Dst:       ids[rng.Intn(vertices)],
				Label:     labels[rng.Intn(len(labels))],
				Weight:    1,
				Timestamp: int64(done + j),
			}
		}
		if _, err := g.AddEdges(specs[:b]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
	}
	buildDur := time.Since(buildStart)
	after := heap()

	facts := g.NumEdges()
	bytesPerFact := float64(after-before) / float64(facts)
	fmt.Printf("graph: %d vertices, %d facts, built in %s (%.0f facts/s)\n",
		g.NumVertices(), facts, buildDur.Round(time.Millisecond), float64(facts)/buildDur.Seconds())
	fmt.Printf("resident:       %8.1f MiB  (%5.1f bytes/fact, budget <= 64)\n",
		float64(after-before)/(1<<20), bytesPerFact)
	record("facts_per_mib", float64(facts)/(float64(after-before)/(1<<20)))

	// Sequential slab scan: every live edge via the zero-copy view. The
	// byte figure counts the columnar payload a scan actually reads per edge
	// (src, dst, label, weight, timestamp, liveness).
	const scanBytesPerEdge = 4 + 4 + 4 + 8 + 8 + 1
	scan := func() (float64, int) {
		sum, count := 0.0, 0
		g.ScanEdges(func(e *graph.EdgeScan) bool {
			sum += e.Weight
			count++
			return true
		})
		return sum, count
	}
	scan() // warm
	const scanIters = 5
	start := time.Now()
	var visited int
	for i := 0; i < scanIters; i++ {
		_, visited = scan()
	}
	scanDur := time.Since(start) / scanIters
	scanRate := float64(visited) / scanDur.Seconds()
	fmt.Printf("slab scan:      %10s  (%8.1f Medges/s, %6.2f GB/s columnar payload)\n",
		scanDur.Round(time.Microsecond), scanRate/1e6, scanRate*scanBytesPerEdge/1e9)
	record("edge_scan_edges_per_sec", scanRate)

	// Pointer-chasing baseline: the pre-slab layout — a map from edge ID to
	// an individually heap-allocated record — traversed the way the old scan
	// paths did, by map iteration plus a pointer dereference per edge.
	heapEdges := make(map[graph.EdgeID]*graph.Edge, visited)
	g.ScanEdges(func(e *graph.EdgeScan) bool {
		m := e.Materialize()
		heapEdges[m.ID] = &m
		return true
	})
	chase := func() float64 {
		sum := 0.0
		for _, e := range heapEdges {
			sum += e.Weight
		}
		return sum
	}
	chase() // warm
	start = time.Now()
	for i := 0; i < scanIters; i++ {
		chase()
	}
	chaseDur := time.Since(start) / scanIters
	chaseRate := float64(len(heapEdges)) / chaseDur.Seconds()
	speedup := scanRate / chaseRate
	fmt.Printf("pointer chase:  %10s  (%8.1f Medges/s, map + per-edge dereference)\n", chaseDur.Round(time.Microsecond), chaseRate/1e6)
	fmt.Printf("scan speedup:   %9.1fx  (target >= 2x)\n", speedup)
	record("scan_speedup_vs_pointer_chasing", speedup)
	heapEdges = nil
	runtime.GC() // drop the baseline's heap before timing restores under normal GC pressure

	// Cold restore: snapshot the graph, then rebuild a fresh one from disk —
	// the parallel per-stripe slab reconstruction path.
	dir, err := os.MkdirTemp("", "nous-memory-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(dir)
	quiet := persist.Options{DisableAutoCheckpoint: true, FlushInterval: time.Hour}
	st, err := persist.Open(dir, g, quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if err := st.Checkpoint(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	const restoreIters = 3
	var g2 *graph.Graph
	start = time.Now()
	for i := 0; i < restoreIters; i++ {
		g2 = graph.New()
		st2, err := persist.Open(dir, g2, quiet)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		st2.Close()
	}
	restoreDur := time.Since(start) / restoreIters
	if g2.NumEdges() != facts {
		fmt.Fprintf(os.Stderr, "cold restore lost facts: %d != %d\n", g2.NumEdges(), facts)
		return
	}
	restoreRate := float64(facts) / restoreDur.Seconds()
	fmt.Printf("cold restore:   %10s  (%8.0f facts/s, snapshot -> live slabs)\n",
		restoreDur.Round(time.Millisecond), restoreRate)
	record("cold_restore_facts_per_sec", restoreRate)

	fmt.Println("\nshape target: <= 64 bytes/fact resident; sequential scan >= 2x pointer chasing")
	runtime.KeepAlive(g)
}
