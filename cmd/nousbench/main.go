// Command nousbench regenerates every evaluation artifact of the NOUS
// paper: the seven figures (as text/DOT renderings) and the quantitative
// claims (the ~3× streaming-mining speedup, closed-pattern reconstruction,
// BPR link-prediction quality, coherence-ranked path search, AIDA-variant
// disambiguation accuracy and WSJ-scale ingest throughput). EXPERIMENTS.md
// records the outputs side by side with what the paper states.
//
// Usage:
//
//	nousbench -artifact all
//	nousbench -artifact fig6
//	nousbench -artifact 3x
//	nousbench -artifact scale -n 20000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"nous"
	"nous/internal/analytics"
	"nous/internal/disambig"
	"nous/internal/fgm"
	"nous/internal/graph"
	"nous/internal/linkpred"
	"nous/internal/pathsearch"
	"nous/internal/persist"
	"nous/internal/temporal"
)

func main() {
	artifact := flag.String("artifact", "all", "artifact to regenerate: all, fig1..fig7, 3x, closed, bpr, coherence, aida, scale, query, persist, temporal, memory, repl, plan")
	n := flag.Int("n", 800, "number of articles for corpus-driven artifacts")
	seed := flag.Int64("seed", 42, "world seed")
	jsonOut := flag.String("json", "", "write the artifact's machine-readable metrics (BENCH_<artifact>.json shape) to this file; supported by query, persist, temporal, memory, repl and plan")
	flag.Parse()

	runners := map[string]func(int, int64){
		"fig1": fig1, "fig2": fig2, "fig3": fig3, "fig4": fig4,
		"fig5": fig5, "fig6": fig6, "fig7": fig7,
		"3x": claim3x, "closed": claimClosed, "bpr": claimBPR,
		"coherence": claimCoherence, "aida": claimAIDA, "scale": claimScale,
		"query": claimQuery, "persist": claimPersist, "temporal": claimTemporal,
		"memory": claimMemory, "repl": claimRepl, "plan": claimPlan,
	}
	if *artifact == "all" {
		if *jsonOut != "" {
			fmt.Fprintln(os.Stderr, "-json needs a single metric artifact (query, persist, temporal or memory), not all")
			os.Exit(2)
		}
		for _, name := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
			"3x", "closed", "bpr", "coherence", "aida", "scale", "query", "persist", "temporal", "memory", "repl", "plan"} {
			runners[name](*n, *seed)
		}
		return
	}
	run, ok := runners[*artifact]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown artifact %q\n", *artifact)
		os.Exit(2)
	}
	run(*n, *seed)
	if *jsonOut != "" {
		if err := writeBenchJSON(*jsonOut, *artifact, *n, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "writing bench JSON:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
}

// benchMetrics collects the named throughput numbers an artifact run
// produced. Every metric is higher-is-better by convention; cmd/benchdiff
// relies on that when gating regressions.
var benchMetrics = map[string]float64{}

func record(name string, value float64) { benchMetrics[name] = value }

// benchJSON is the BENCH_<artifact>.json wire shape shared with
// cmd/benchdiff.
type benchJSON struct {
	Artifact string             `json:"artifact"`
	Metrics  map[string]float64 `json:"metrics"`
	Meta     map[string]any     `json:"meta"`
}

func writeBenchJSON(path, artifact string, n int, seed int64) error {
	if len(benchMetrics) == 0 {
		return fmt.Errorf("artifact %q records no metrics (query, persist and temporal do)", artifact)
	}
	b, err := json.MarshalIndent(benchJSON{
		Artifact: artifact,
		Metrics:  benchMetrics,
		Meta: map[string]any{
			"articles":   n,
			"seed":       seed,
			"goos":       runtime.GOOS,
			"goarch":     runtime.GOARCH,
			"gomaxprocs": runtime.GOMAXPROCS(0),
		},
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func header(title string) {
	fmt.Printf("\n================================================================\n%s\n================================================================\n", title)
}

// buildSystem assembles world + pipeline, shared by figure artifacts.
func buildSystem(nArticles int, seed int64) (*nous.Pipeline, *nous.World, []nous.Article) {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Seed = seed
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		fmt.Fprintln(os.Stderr, "loading curated KB:", err)
		os.Exit(1)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	arts := nous.GenerateArticles(w, nous.DefaultArticleConfig(nArticles))
	p.IngestAll(arts)
	return p, w, arts
}

// fig1 — the component architecture exercised end to end, with per-stage
// counters standing in for the block diagram.
func fig1(n int, seed int64) {
	header("Figure 1 — NOUS components (end-to-end pipeline run)")
	start := time.Now()
	p, _, _ := buildSystem(n, seed)
	st := p.Stats()
	kgStats := p.KG().Stats()
	fmt.Printf("documents ingested        %8d\n", st.Documents)
	fmt.Printf("sentences processed       %8d\n", st.Sentences)
	fmt.Printf("raw triples (OpenIE)      %8d\n", st.RawTriples)
	fmt.Printf("mapped to ontology        %8d\n", st.Mapped)
	fmt.Printf("accepted into KG          %8d\n", st.Accepted)
	fmt.Printf("rejected by confidence    %8d\n", st.Rejected)
	fmt.Printf("rules learned (dist.sup.) %8d\n", st.RulesLearned)
	fmt.Printf("KG entities               %8d\n", kgStats.Entities)
	fmt.Printf("KG facts (curated+extr.)  %8d = %d + %d\n", kgStats.Facts, kgStats.CuratedFacts, kgStats.ExtractedFacts)
	fmt.Printf("wall time                 %8s\n", time.Since(start).Round(time.Millisecond))
}

// fig2 — fused drone KG: curated (red) and extracted (blue) facts with
// per-fact probability, around DJI and Windermere.
func fig2(n int, seed int64) {
	header("Figure 2 — fused knowledge graph around the drone cast")
	p, _, _ := buildSystem(n, seed)
	for _, name := range []string{"DJI", "Windermere"} {
		fmt.Printf("\n--- %s ---\n", name)
		facts := p.KG().FactsAbout(name)
		if len(facts) > 12 {
			facts = facts[:12]
		}
		for _, f := range facts {
			layer := "extracted(blue)"
			if f.Curated {
				layer = "curated(red)  "
			}
			fmt.Printf("  %s  p=%.2f  %s -[%s]-> %s\n", layer, f.Confidence, f.Subject, f.Predicate, f.Object)
		}
	}
}

// fig3 — dated triples extracted from WSJ-style sentences.
func fig3(_ int, seed int64) {
	header("Figure 3 — dated triples extracted from article sentences")
	p, _, _ := buildSystem(25, seed)
	fmt.Printf("%-12s %-22s %-18s %-22s\n", "date", "subject", "predicate", "object")
	count := 0
	for _, f := range p.KG().AllFacts() {
		if f.Curated || count >= 15 {
			continue
		}
		count++
		fmt.Printf("%-12s %-22s %-18s %-22s\n",
			f.Provenance.Time.Format("2006-01-02"), trunc(f.Subject, 22), f.Predicate, trunc(f.Object, 22))
	}
}

// fig4 — DOT visualization of a drone-themed subgraph.
func fig4(n int, seed int64) {
	header("Figure 4 — drone-themed subgraph (Graphviz DOT)")
	p, _, _ := buildSystem(n/4+50, seed)
	if err := p.KG().ExportDOT(os.Stdout, "DJI", "Windermere", "FAA"); err != nil {
		fmt.Fprintln(os.Stderr, "export:", err)
	}
}

// fig5 — the five query classes, each executed.
func fig5(n int, seed int64) {
	header("Figure 5 — five classes of natural-language-like queries")
	p, _, _ := buildSystem(n, seed)
	p.BuildTopics()
	for _, q := range []string{
		"What is trending?",
		"Tell me about DJI",
		"How is Windermere related to DJI?",
		"What patterns are emerging?",
		"What does DJI manufacture?",
	} {
		fmt.Printf("\nQ: %s\n", q)
		a, err := p.Ask(q)
		if err != nil {
			fmt.Println("  error:", err)
			continue
		}
		fmt.Println(indent(a.Text, "  "))
	}
}

// fig6 — the entity query "Tell me about DJI".
func fig6(n int, seed int64) {
	header(`Figure 6 — entity query: "Tell me about DJI"`)
	p, _, _ := buildSystem(n, seed)
	a, err := p.About("DJI")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Println(a.Text)
}

// fig7 — patterns discovered from updates, with a validating instance.
func fig7(n int, seed int64) {
	header("Figure 7 — patterns discovered from knowledge-graph updates")
	p, _, _ := buildSystem(n, seed)
	entered, left := p.PatternTransitions()
	fmt.Printf("patterns that entered the frequent set: %d (showing top 8)\n", len(entered))
	for i, pat := range entered {
		if i >= 8 {
			break
		}
		fmt.Printf("  support=%-4d %s\n", pat.Support, pat)
	}
	if len(left) > 0 {
		fmt.Printf("patterns that left the frequent set: %d\n", len(left))
	}
	fmt.Println("\nclosed frequent patterns in the current window:")
	for i, pat := range p.Patterns(8) {
		if i >= 8 {
			break
		}
		fmt.Printf("  support=%-4d %s\n", pat.Support, pat)
	}
}

// claim3x — streaming miner vs Arabesque-style re-enumeration per slide.
func claim3x(_ int, seed int64) {
	header("Claim C1 — streaming FGM vs from-scratch re-enumeration (~3x in paper)")
	fmt.Printf("%-8s %-8s %-8s %-12s %-12s %-8s\n", "window", "slide", "minsup", "stream", "rescan", "speedup")
	for _, window := range []int{200, 400, 800} {
		slide := 50
		stream := eventEdges(seed, window+10*slide)
		cfg := fgm.Config{MaxEdges: 3, MinSupport: 3, WindowSize: window}

		// Streaming: per slide, add `slide` edges incrementally.
		m := fgm.NewMiner(cfg)
		for i := 0; i < window; i++ {
			m.Add(stream[i])
		}
		startS := time.Now()
		slides := 0
		for i := window; i+slide <= len(stream); i += slide {
			for j := i; j < i+slide; j++ {
				m.Add(stream[j])
			}
			m.FrequentPatterns()
			slides++
		}
		streamDur := time.Since(startS)

		// Baseline: per slide, re-enumerate the whole window.
		startB := time.Now()
		for i := window; i+slide <= len(stream); i += slide {
			fgm.MineWindow(stream[i+slide-window:i+slide], cfg)
		}
		rescanDur := time.Since(startB)

		speedup := float64(rescanDur) / float64(streamDur)
		fmt.Printf("%-8d %-8d %-8d %-12s %-12s %.1fx\n",
			window, slide, cfg.MinSupport,
			streamDur.Round(time.Millisecond), rescanDur.Round(time.Millisecond), speedup)
	}
	fmt.Println("\nshape target: streaming >= ~3x faster, and the gap grows with window size")
}

// claimClosed — closed patterns and reconstruction on infrequency.
func claimClosed(_ int, seed int64) {
	header("Claim C2 — closed patterns and frequent→infrequent reconstruction")
	cfg := fgm.Config{MaxEdges: 2, MinSupport: 3}
	m := fgm.NewMiner(cfg)
	for i := int64(0); i < 3; i++ {
		m.Add(fgm.Edge{Src: i * 10, Dst: i*10 + 1, SrcLabel: "Company", DstLabel: "Company", Label: "acquired", Time: i})
		m.Add(fgm.Edge{Src: i*10 + 1, Dst: i*10 + 2, SrcLabel: "Company", DstLabel: "Product", Label: "manufactures", Time: i})
	}
	m.Add(fgm.Edge{Src: 200, Dst: 201, SrcLabel: "Company", DstLabel: "Company", Label: "acquired", Time: 6})
	m.Add(fgm.Edge{Src: 300, Dst: 301, SrcLabel: "Company", DstLabel: "Company", Label: "acquired", Time: 6})
	fmt.Println("before eviction, closed patterns:")
	for _, p := range m.ClosedPatterns() {
		fmt.Printf("  support=%-3d %s\n", p.Support, p)
	}
	m.Transitions()
	m.EvictBefore(1)
	_, left := m.Transitions()
	fmt.Println("\nafter evicting the oldest chain instance:")
	for _, p := range left {
		fmt.Printf("  LEFT frequent set: %s\n", p)
	}
	for _, p := range m.ClosedPatterns() {
		fmt.Printf("  closed now: support=%-3d %s\n", p.Support, p)
	}
	fmt.Println("\nshape target: 2-edge chain leaves; its frequent 1-edge sub-pattern is reconstructed as closed")
}

// claimBPR — link prediction AUC vs baselines.
func claimBPR(_ int, seed int64) {
	header("Claim C3 — BPR link-prediction confidence vs baselines (AUC)")
	wcfg := nous.DefaultWorldConfig()
	wcfg.Seed = seed
	wcfg.Events = 5000 // dense stream: every subject has several positives to learn from
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}

	// Assemble positives for the three densest predicates.
	byPred := map[string][][2]string{}
	var all []nous.Triple
	for _, t := range w.Curated {
		all = append(all, t)
		byPred[t.Predicate] = append(byPred[t.Predicate], [2]string{t.Subject, t.Object})
	}
	for _, e := range w.Events {
		if e.Rumor {
			continue
		}
		t := nous.Triple{Subject: e.Subject, Predicate: e.Predicate, Object: e.Object, Confidence: 1}
		all = append(all, t)
		byPred[e.Predicate] = append(byPred[e.Predicate], [2]string{e.Subject, e.Object})
	}
	rng := rand.New(rand.NewSource(seed))

	fmt.Printf("%-16s %-6s %-8s %-8s %-8s\n", "predicate", "test", "BPR", "freq", "common-nb")
	preds := []string{"acquired", "partnersWith", "invests"}
	for _, pred := range preds {
		pairs := byPred[pred]
		if len(pairs) < 20 {
			continue
		}
		rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
		cut := len(pairs) * 4 / 5
		test := pairs[cut:]
		testSet := map[[2]string]bool{}
		for _, p := range test {
			testSet[p] = true
		}
		var train []nous.Triple
		for _, t := range all {
			if t.Predicate == pred && testSet[[2]string{t.Subject, t.Object}] {
				continue
			}
			train = append(train, t)
		}
		posSet := map[[2]string]bool{}
		var pool []string
		seen := map[string]bool{}
		for _, p := range pairs {
			posSet[p] = true
			if !seen[p[1]] {
				seen[p[1]] = true
				pool = append(pool, p[1])
			}
		}
		sort.Strings(pool)
		isPos := func(s, o string) bool { return posSet[[2]string{s, o}] }

		lcfg := linkpred.DefaultConfig()
		lcfg.Epochs = 60
		model := linkpred.Train(train, lcfg)
		freq := linkpred.NewFrequencyBaseline(train)
		cn := linkpred.NewCommonNeighborBaseline(kg)
		aucB := linkpred.EvalAUC(model, pred, test, pool, isPos, 20, seed)
		aucF := linkpred.EvalAUC(freq, pred, test, pool, isPos, 20, seed)
		aucC := linkpred.EvalAUC(cn, pred, test, pool, isPos, 20, seed)
		fmt.Printf("%-16s %-6d %-8.3f %-8.3f %-8.3f\n", pred, len(test), aucB, aucF, aucC)
	}
	fmt.Println("\nshape target: BPR column >= baselines; scores usable as fact confidence in (0,1)")
}

// claimCoherence — coherence-ranked path search vs BFS on a planted task.
func claimCoherence(_ int, seed int64) {
	header("Claim C4 — coherence-ranked paths vs shortest-path baseline")
	rng := rand.New(rand.NewSource(seed))
	trials, coherenceWins, bfsHubPicks := 50, 0, 0
	for trial := 0; trial < trials; trial++ {
		g := graph.New()
		topicOf := map[graph.VertexID][]float64{}
		onTopic := func() []float64 { return []float64{0.85 + rng.Float64()*0.1, 0.05} }
		offTopic := func() []float64 { return []float64{0.05, 0.85 + rng.Float64()*0.1} }
		src := g.AddVertex("Company")
		dst := g.AddVertex("Company")
		a := g.AddVertex("Company")
		b := g.AddVertex("Company")
		hub := g.AddVertex("Company")
		topicOf[src], topicOf[dst] = onTopic(), onTopic()
		topicOf[a], topicOf[b] = onTopic(), onTopic()
		topicOf[hub] = offTopic()
		g.AddEdge(src, a, "partnersWith")
		g.AddEdge(a, b, "suppliesTo")
		g.AddEdge(b, dst, "acquired")
		g.AddEdge(src, hub, "invests")
		g.AddEdge(hub, dst, "invests")
		for i := 0; i < 8; i++ {
			v := g.AddVertex("Company")
			topicOf[v] = offTopic()
			g.AddEdge(hub, v, "invests")
		}
		s := pathsearch.New(g, topicOf)
		cp := s.TopK(src, dst, pathsearch.Options{K: 1, MaxDepth: 4})
		bp := s.BFSPaths(src, dst, pathsearch.Options{K: 1, MaxDepth: 4})
		if len(cp) > 0 && len(cp[0].Vertices) == 4 {
			coherenceWins++
		}
		if len(bp) > 0 && containsVertex(bp[0].Vertices, hub) {
			bfsHubPicks++
		}
	}
	fmt.Printf("planted on-topic 3-hop path vs off-topic 2-hop hub shortcut, %d trials\n", trials)
	fmt.Printf("  coherence search picks planted path: %d/%d\n", coherenceWins, trials)
	fmt.Printf("  BFS baseline picks hub shortcut:     %d/%d\n", bfsHubPicks, trials)
	fmt.Println("\nshape target: coherence ~always prefers the explanatory path; BFS ~always takes the hub")
}

// claimAIDA — disambiguation accuracy: KG-neighborhood AIDA variant vs
// popularity prior.
func claimAIDA(n int, seed int64) {
	header("Claim C5 — AIDA-variant disambiguation vs popularity-only baseline")
	wcfg := nous.DefaultWorldConfig()
	wcfg.Seed = seed
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	acfg := nous.DefaultArticleConfig(n)
	acfg.AliasRate = 0.9 // force ambiguous mentions
	arts := nous.GenerateArticles(w, acfg)
	linker := disambig.NewLinker(kg, disambig.DefaultConfig())

	total, aidaHit, priorHit := 0, 0, 0
	for _, a := range arts {
		for _, ml := range a.Mentions {
			if len(kg.Candidates(ml.Surface)) < 2 {
				continue // only grade genuinely ambiguous mentions
			}
			total++
			ctx := strings.Fields(strings.ToLower(a.Text))
			if r := linker.LinkOne(disambig.Mention{Surface: ml.Surface, Context: ctx}); r.Entity == ml.Entity {
				aidaHit++
			}
			if r := linker.LinkPriorOnly(ml.Surface); r.Entity == ml.Entity {
				priorHit++
			}
		}
	}
	if total == 0 {
		fmt.Println("no ambiguous mentions generated; increase -n")
		return
	}
	fmt.Printf("ambiguous mentions graded: %d\n", total)
	fmt.Printf("  AIDA variant (context+coherence+prior): %.1f%%\n", 100*float64(aidaHit)/float64(total))
	fmt.Printf("  popularity prior only:                  %.1f%%\n", 100*float64(priorHit)/float64(total))
	fmt.Println("\nshape target: AIDA variant above prior-only")
}

// claimScale — ingest throughput toward the paper's 342,411-article corpus,
// swept over extraction worker-pool sizes to show the parallel scaling of
// the sharded ingestion path.
func claimScale(n int, seed int64) {
	header("Claim C6 — ingest throughput (paper corpus: 342,411 WSJ articles)")
	wcfg := nous.DefaultWorldConfig()
	wcfg.Seed = seed
	wcfg.Events = 2000
	w := nous.GenerateWorld(wcfg)
	arts := nous.GenerateArticles(w, nous.DefaultArticleConfig(n))

	maxWorkers := runtime.GOMAXPROCS(0)
	workerSweep := []int{1}
	for wk := 2; wk < maxWorkers; wk *= 2 {
		workerSweep = append(workerSweep, wk)
	}
	if maxWorkers > 1 {
		workerSweep = append(workerSweep, maxWorkers)
	}
	fmt.Printf("%-9s %-10s %-14s %s\n", "workers", "wall", "articles/s", "projected 342,411-article corpus")
	for _, wk := range workerSweep {
		kg, err := w.LoadKG()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		cfg := nous.DefaultConfig()
		cfg.Stream.Workers = wk
		p := nous.NewPipeline(kg, cfg)
		start := time.Now()
		st := p.IngestAll(arts)
		dur := time.Since(start)
		rate := float64(n) / dur.Seconds()
		fmt.Printf("%-9d %-10s %-14.0f %s   (raw %d, accepted %d)\n",
			wk, dur.Round(time.Millisecond), rate,
			(time.Duration(float64(342411)/rate) * time.Second).Round(time.Second),
			st.RawTriples, st.Accepted)
	}
}

// claimQuery — the epoch-versioned read layer: repeated entity-summary
// latency at an unchanged epoch (cached PageRank) vs the seed's per-query
// PageRank, then mixed-class query throughput during concurrent ingest.
func claimQuery(n int, seed int64) {
	header("Claim C7 — epoch-cached query engine vs per-query recomputation")
	p, w, _ := buildSystem(n, seed)
	kg := p.KG()

	// Part 1: entity-summary latency at an unchanged epoch. The seed
	// recomputed whole-graph PageRank inside every entity query; the cache
	// computes once per epoch and serves map reads thereafter.
	const warmIters = 500
	if _, err := p.About("DJI"); err != nil { // prime the cache
		fmt.Fprintln(os.Stderr, err)
		return
	}
	epochBefore := p.QueryStats().Epoch
	start := time.Now()
	for i := 0; i < warmIters; i++ {
		if _, err := p.About("DJI"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
	}
	cached := time.Since(start) / warmIters

	const coldIters = 15
	id, _ := kg.Entity("DJI")
	start = time.Now()
	for i := 0; i < coldIters; i++ {
		// A fresh cache per query forces the full recomputation the seed
		// paid on every request (plus the summary assembly itself). The
		// seed's entity path ran 15 PageRank iterations; match it so the
		// baseline is what the seed actually paid, not a pessimized one.
		fresh := analytics.New(kg)
		fresh.Iters = 15
		_ = fresh.Importance(id)
		if _, err := p.About("DJI"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
	}
	uncached := time.Since(start) / coldIters

	fmt.Printf("graph: %d entities, %d facts, epoch %d\n", kg.NumEntities(), kg.NumFacts(), epochBefore)
	fmt.Printf("entity summary, unchanged epoch (cached):   %12s/query\n", cached)
	fmt.Printf("entity summary, per-query PageRank (seed):  %12s/query\n", uncached)
	if cached > 0 {
		fmt.Printf("speedup: %.0fx (target >= 10x)\n", float64(uncached)/float64(cached))
		record("cached_entity_queries_per_sec", 1/cached.Seconds())
		record("speedup_vs_per_query_pagerank", float64(uncached)/float64(cached))
	}

	// Part 2: mixed-class throughput while the stream keeps mutating the
	// graph — the paper's core scenario, querying during construction.
	extra := nous.GenerateArticles(w, nous.DefaultArticleConfig(n/2+50))
	queries := []string{
		"Tell me about DJI",
		"What is trending?",
		"What does DJI manufacture?",
		"How is Windermere related to DJI?",
		"What patterns are emerging?",
	}
	done := make(chan struct{})
	ingestStart := time.Now()
	go func() {
		defer close(done)
		p.IngestAll(extra)
	}()
	served := 0
	var qerr error
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			if _, err := p.Ask(queries[served%len(queries)]); err != nil && qerr == nil {
				qerr = err
			}
			served++
		}
	}
	ingestDur := time.Since(ingestStart)
	st := p.QueryStats()
	fmt.Printf("\nconcurrent serving: %d mixed-class queries during a %s ingest of %d articles (%.0f queries/s)\n",
		served, ingestDur.Round(time.Millisecond), len(extra), float64(served)/ingestDur.Seconds())
	record("concurrent_mixed_queries_per_sec", float64(served)/ingestDur.Seconds())
	fmt.Printf("query cache: epoch=%d hits=%d misses=%d recomputes=%d topics_lag=%d\n",
		st.Epoch, st.Hits, st.Misses, st.Computes, st.TopicsLag)
	if qerr != nil {
		fmt.Println("query error during concurrent ingest:", qerr)
	}
	fmt.Println("\nshape target: cached entity queries >= 10x faster; queries keep flowing during ingest")
}

// claimPersist — the persistence subsystem: snapshot write/load throughput
// over a corpus-built graph, then WAL append and replay rates over a
// synthetic mutation stream.
func claimPersist(n int, seed int64) {
	header("Claim C8 — durable graph: snapshot write/load throughput, WAL replay rate")
	quiet := persist.Options{DisableAutoCheckpoint: true, FlushInterval: time.Hour}

	// Part 1: snapshot a corpus-shaped graph (the state `nous build
	// -data-dir` checkpoints) and load it back.
	p, _, _ := buildSystem(n, seed)
	g := p.KG().Graph()
	dir, err := os.MkdirTemp("", "nous-persist-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(dir)
	st, err := persist.Open(dir, g, quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	facts := g.NumEdges()
	// Repeat until a steady-state window has elapsed: a single small
	// snapshot is dominated by fsync jitter.
	const minWindow = time.Second
	writes := 0
	start := time.Now()
	for time.Since(start) < minWindow {
		if err := st.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		writes++
	}
	writeDur := time.Since(start) / time.Duration(writes)
	if err := st.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	// Checkpoints of an unchanged graph share one epoch and hence one file.
	snapBytes := dirGlobSize(dir, "snap-")

	loads := 0
	var g2 *graph.Graph
	start = time.Now()
	for time.Since(start) < minWindow {
		g2 = graph.New()
		st2, err := persist.Open(dir, g2, quiet)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		st2.Close()
		loads++
	}
	loadDur := time.Since(start) / time.Duration(loads)
	if g2.NumEdges() != facts {
		fmt.Fprintf(os.Stderr, "snapshot round trip lost edges: %d != %d\n", g2.NumEdges(), facts)
		return
	}

	mb := float64(snapBytes) / (1 << 20)
	fmt.Printf("graph: %d vertices, %d facts; snapshot %.2f MiB\n", g.NumVertices(), facts, mb)
	fmt.Printf("snapshot write: %10s  (%8.0f facts/s, %6.1f MiB/s)\n",
		writeDur.Round(time.Millisecond), float64(facts)/writeDur.Seconds(), mb/writeDur.Seconds())
	fmt.Printf("snapshot load:  %10s  (%8.0f facts/s, %6.1f MiB/s)\n",
		loadDur.Round(time.Millisecond), float64(facts)/loadDur.Seconds(), mb/loadDur.Seconds())
	record("snapshot_write_facts_per_sec", float64(facts)/writeDur.Seconds())
	record("snapshot_load_facts_per_sec", float64(facts)/loadDur.Seconds())

	// Part 2: WAL append throughput with group commit, then replay rate.
	// Batched edge writes mirror the ingest path: one WAL record per batch.
	dir2, err := os.MkdirTemp("", "nous-wal-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer os.RemoveAll(dir2)
	g3 := graph.New()
	st3, err := persist.Open(dir2, g3, quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	const vertices, batches, perBatch = 2000, 6000, 12
	start = time.Now()
	ids := make([]graph.VertexID, vertices)
	for i := range ids {
		ids[i] = g3.AddVertexWithProps("Company", map[string]string{"name": fmt.Sprintf("v%05d", i)})
	}
	specs := make([]graph.EdgeSpec, perBatch)
	for b := 0; b < batches; b++ {
		for j := range specs {
			k := b*perBatch + j
			specs[j] = graph.EdgeSpec{
				Src: ids[k%vertices], Dst: ids[(k*7+1)%vertices],
				Label: "acquired", Weight: 0.5, Timestamp: int64(k),
				Props: map[string]string{"source": "bench"},
			}
		}
		if _, err := g3.AddEdges(specs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
	}
	if err := st3.Sync(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	appendDur := time.Since(start)
	walStats := st3.Stats()
	if err := st3.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}

	g4 := graph.New()
	start = time.Now()
	st4, err := persist.Open(dir2, g4, quiet)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	replayDur := time.Since(start)
	replayed := st4.Stats().ReplayedRecords
	st4.Close()

	muts := vertices + batches // one record per vertex, one per batch
	fmt.Printf("\nWAL: %d mutations (%d edges in %d-edge batches), %d records, %.2f MiB\n",
		muts, batches*perBatch, perBatch, walStats.WALRecords, float64(walStats.WALBytes)/(1<<20))
	fmt.Printf("logged append:  %10s  (%8.0f mutations/s, group commit %d KiB)\n",
		appendDur.Round(time.Millisecond), float64(muts)/appendDur.Seconds(),
		persist.DefaultOptions().GroupCommitBytes>>10)
	fmt.Printf("replay:         %10s  (%8.0f records/s, %d records)\n",
		replayDur.Round(time.Millisecond), float64(replayed)/replayDur.Seconds(), replayed)
	record("wal_append_mutations_per_sec", float64(muts)/appendDur.Seconds())
	record("wal_replay_records_per_sec", float64(replayed)/replayDur.Seconds())

	fmt.Println("\nshape target: load >= write throughput; replay comfortably outruns live ingest")
}

// claimTemporal — the temporal query layer: windowed entity summaries and
// path queries at a repeated window (hitting the (epoch, window)-keyed
// PageRank artifact), unwindowed queries alongside for regression context,
// and raw time-index window scans.
func claimTemporal(n int, seed int64) {
	header("Claim C9 — temporal query layer: windowed reads over the dynamic KG")
	p, _, arts := buildSystem(n, seed)
	p.BuildTopics()

	// The query window: the middle half of the article date range — a
	// realistic "what happened in that stretch" slice of the stream.
	lo, hi := arts[0].Date, arts[0].Date
	for _, a := range arts {
		if a.Date.Before(lo) {
			lo = a.Date
		}
		if a.Date.After(hi) {
			hi = a.Date
		}
	}
	span := hi.Sub(lo)
	win := nous.Window{
		Since: lo.Add(span / 4).Unix(),
		Until: lo.Add(3 * span / 4).Unix(),
	}
	st := p.TemporalStats()
	fmt.Printf("graph: %d entities, %d facts; index %d edges spanning %s..%s\n",
		p.KG().NumEntities(), p.KG().NumFacts(), st.Edges,
		time.Unix(st.MinTimestamp, 0).UTC().Format("2006-01-02"),
		time.Unix(st.MaxTimestamp, 0).UTC().Format("2006-01-02"))
	fmt.Printf("query window: %v (%d of %d edges by timestamp)\n",
		win, p.TemporalIndex().Count(win), st.Edges)

	// Sanity: the full-range window returns exactly the unwindowed answer.
	plain, err := p.About("DJI")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	full, err := p.AboutWindow("DJI", nous.Window{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if plain.Text != full.Text {
		fmt.Fprintln(os.Stderr, "FULL-RANGE MISMATCH: windowed answer diverges from unwindowed")
		return
	}
	fmt.Println("full-range window == unwindowed answer: ok")

	measure := func(label string, iters int, fn func() error) (perSec float64, ok bool) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				fmt.Fprintln(os.Stderr, label+":", err)
				return 0, false
			}
		}
		dur := time.Since(start)
		perSec = float64(iters) / dur.Seconds()
		fmt.Printf("%-44s %12s/query  (%8.0f queries/s)\n", label, (dur / time.Duration(iters)).Round(time.Microsecond), perSec)
		return perSec, true
	}

	// Windowed entity summaries at a repeated window: after the first
	// request the (epoch, window) PageRank artifact is cached, so steady
	// state is the serving cost of a windowed Fig-6 query.
	if _, err := p.AboutWindow("DJI", win); err != nil { // prime the artifact
		fmt.Fprintln(os.Stderr, err)
		return
	}
	rate, ok := measure("windowed entity summary (cached artifact)", 400, func() error {
		_, err := p.AboutWindow("DJI", win)
		return err
	})
	if !ok {
		return
	}
	record("windowed_entity_queries_per_sec", rate)

	if rate, ok = measure("unwindowed entity summary (hot path)", 400, func() error {
		_, err := p.About("DJI")
		return err
	}); !ok {
		return
	}
	record("unwindowed_entity_queries_per_sec", rate)

	if rate, ok = measure("windowed relationship paths", 100, func() error {
		_, err := p.ExplainWindow("Windermere", "DJI", "", 3, win)
		return err
	}); !ok {
		return
	}
	record("windowed_path_queries_per_sec", rate)

	ix := p.TemporalIndex()
	if rate, ok = measure("time-index window scan (EdgesIn)", 2000, func() error {
		if len(ix.EdgesIn(win)) == 0 {
			return fmt.Errorf("empty window scan")
		}
		return nil
	}); !ok {
		return
	}
	record("index_window_scans_per_sec", rate)

	// The planner's temporal workloads: windowed trend backfill (burst
	// scoring across every bucket the window covers, off the index) and
	// whole-stream diff queries (temporal join of two windows).
	if _, err := p.TrendingWindow(win, 10); err != nil { // prime
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if rate, ok = measure("windowed trend backfill (TrendScan)", 100, func() error {
		_, err := p.TrendingWindow(win, 10)
		return err
	}); !ok {
		return
	}
	record("windowed_trend_backfill_per_sec", rate)

	mid := (win.Since + win.Until) / 2
	winA := nous.Window{Since: win.Since, Until: mid}
	winB := nous.Window{Since: mid, Until: win.Until}
	if rate, ok = measure("stream diff query (Diff of two windows)", 100, func() error {
		_, err := p.Diff("", winA, winB)
		return err
	}); !ok {
		return
	}
	record("diff_queries_per_sec", rate)

	// Reverse-chronological backfill into a fresh index: the worst case of
	// the old memmove-per-insert path (every edge lands in front of all
	// prior entries). The lazy per-stripe sort makes this an O(1) append;
	// per-insert cost must stay flat as the import grows, not scale with
	// the entries already indexed.
	reverseRate := func(n int) float64 {
		g := graph.New()
		rix := temporal.Attach(g)
		defer rix.Detach()
		a := g.AddVertex("Company")
		b := g.AddVertex("Company")
		const perBatch = 64
		specs := make([]graph.EdgeSpec, perBatch)
		start := time.Now()
		for done := 0; done < n; done += perBatch {
			for j := range specs {
				specs[j] = graph.EdgeSpec{Src: a, Dst: b, Label: "acquired",
					Weight: 1, Timestamp: int64(n - done - j)}
			}
			if _, err := g.AddEdges(specs); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 0
			}
		}
		// One read pays the deferred per-stripe sort; include it in the cost.
		if got := len(rix.EdgesIn(nous.Window{})); got < n {
			fmt.Fprintf(os.Stderr, "reverse backfill lost edges: %d < %d\n", got, n)
			return 0
		}
		return float64(n) / time.Since(start).Seconds()
	}
	small, large := 20000, 80000
	rSmall := reverseRate(small)
	rLarge := reverseRate(large)
	if rSmall == 0 || rLarge == 0 {
		return
	}
	fmt.Printf("%-44s %8.0f inserts/s at n=%d, %8.0f inserts/s at n=%d (ratio %.2fx)\n",
		"reverse-chronological index backfill", rSmall, small, rLarge, large, rSmall/rLarge)
	record("reverse_backfill_inserts_per_sec", rLarge)

	fmt.Println("\nshape target: windowed summaries within ~2x of unwindowed; scans are microsecond-scale;")
	fmt.Println("reverse backfill throughput stays flat as the import grows (append + lazy sort, not quadratic)")
}

// dirGlobSize sums the sizes of files in dir whose names start with prefix.
func dirGlobSize(dir, prefix string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), prefix) {
			if fi, err := e.Info(); err == nil {
				total += fi.Size()
			}
		}
	}
	return total
}

// eventEdges converts a seeded world's event stream to typed miner edges.
func eventEdges(seed int64, n int) []fgm.Edge {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Seed = seed
	wcfg.Events = n
	w := nous.GenerateWorld(wcfg)
	ids := map[string]int64{}
	idOf := func(name string) int64 {
		if id, ok := ids[name]; ok {
			return id
		}
		id := int64(len(ids))
		ids[name] = id
		return id
	}
	var out []fgm.Edge
	for i, e := range w.Events {
		st, ot := "Any", "Any"
		if ent, ok := w.Entity(e.Subject); ok {
			st = string(ent.Type)
		}
		if ent, ok := w.Entity(e.Object); ok {
			ot = string(ent.Type)
		}
		out = append(out, fgm.Edge{
			Src: idOf(e.Subject), Dst: idOf(e.Object),
			SrcLabel: st, DstLabel: ot, Label: e.Predicate, Time: int64(i),
		})
	}
	return out
}

func containsVertex(vs []graph.VertexID, x graph.VertexID) bool {
	for _, v := range vs {
		if v == x {
			return true
		}
	}
	return false
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
