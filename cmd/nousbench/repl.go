package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nous"
	"nous/internal/ontology"
	"nous/internal/server"
)

// claimRepl — WAL-shipping replication: a fresh follower bootstrapping from
// a 100k+-fact leader (snapshot restore + WAL tail), steady-state tail lag
// under concurrent leader ingest, and read fan-out across in-process
// replicas serving the v1 API.
func claimRepl(_ int, seed int64) {
	header("Claim C10 — WAL-shipping replication: catch-up, tail lag, read fan-out")

	wcfg := nous.DefaultWorldConfig()
	wcfg.Seed = seed
	w := nous.GenerateWorld(wcfg)

	dir, err := os.MkdirTemp("", "nous-repl-bench-")
	replCheck(err)
	defer os.RemoveAll(dir)
	leader, err := nous.OpenWithOptions(dir, w.Ontology, nous.DefaultConfig(), nous.PersistOptions{
		FlushInterval:         time.Hour,
		DisableAutoCheckpoint: true,
	})
	replCheck(err)
	defer leader.Close()
	replCheck(w.SeedKG(leader.KG()))

	// Synthetic acquisition facts over vertex-disjoint company pairs: each
	// triple lands as a fresh edge between two fresh entities, with
	// monotonically increasing provenance times feeding the temporal index.
	// Disjoint pairs keep the leader's streaming pattern miner linear —
	// reusing a small company pool gives every vertex hundreds of incident
	// edges and the 2-edge pattern joins turn quadratic, which would bench
	// the miner, not replication.
	base := time.Date(2017, 4, 1, 0, 0, 0, 0, time.UTC)
	addFacts := func(start, count int) {
		const batch = 512
		buf := make([]nous.Triple, 0, batch)
		flush := func() {
			if len(buf) == 0 {
				return
			}
			_, errs := leader.KG().AddFacts(buf)
			for _, e := range errs {
				replCheck(e)
			}
			buf = buf[:0]
		}
		for i := start; i < start+count; i++ {
			buf = append(buf, nous.Triple{
				Subject:     fmt.Sprintf("BenchCo %06d", 2*i),
				Predicate:   "acquired",
				Object:      fmt.Sprintf("BenchCo %06d", 2*i+1),
				SubjectType: ontology.TypeCompany,
				ObjectType:  ontology.TypeCompany,
				Confidence:  0.9,
				Provenance:  nous.Provenance{Source: "bench", Time: base.Add(time.Duration(i) * time.Second)},
			})
			if len(buf) == batch {
				flush()
			}
		}
		flush()
	}

	// Part 1: catch-up. Load the leader past the 100k-fact mark, roll a
	// snapshot, then time a fresh follower from empty to converged — the
	// bootstrap download, bulk restore, index rebuild and WAL tail together.
	const catchupFacts = 100_000
	loadStart := time.Now()
	addFacts(0, catchupFacts)
	replCheck(leader.Checkpoint())
	totalFacts := leader.KG().NumFacts()
	fmt.Printf("leader: %d entities, %d facts, epoch %d (loaded in %s)\n",
		leader.KG().NumEntities(), totalFacts, leader.KG().Graph().Epoch(),
		time.Since(loadStart).Round(time.Millisecond))

	// A generous request timeout: the first query at a fresh epoch computes
	// the per-epoch analytics artifacts, and on a small CI machine that cold
	// path can brush the 15s production default — this bench measures
	// replication, not the serving timeout.
	const benchTimeout = 2 * time.Minute
	lts := httptest.NewServer(server.NewWithTimeout(leader, benchTimeout))
	defer lts.Close()
	src := leader.WALSource()
	src.Poll = 2 * time.Millisecond
	src.Heartbeat = 50 * time.Millisecond

	follow := func() *nous.Pipeline {
		f, err := nous.Follow(context.Background(), lts.URL, w.Ontology, nous.DefaultConfig())
		replCheck(err)
		return f
	}
	waitConverged := func(f *nous.Pipeline) {
		target := leader.KG().Graph().Epoch()
		deadline := time.Now().Add(2 * time.Minute)
		for time.Now().Before(deadline) {
			if f.Follower().Status().AppliedEpoch >= target {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		st := f.Follower().Status()
		fmt.Fprintf(os.Stderr, "follower never converged: applied=%d leader=%d lastErr=%q\n",
			st.AppliedEpoch, target, st.LastError)
		os.Exit(1)
	}

	start := time.Now()
	f := follow()
	defer f.Close()
	waitConverged(f)
	catchup := time.Since(start)
	fmt.Printf("catch-up: empty follower to %d facts in %s (%8.0f facts/s)\n",
		f.KG().NumFacts(), catchup.Round(time.Millisecond), float64(totalFacts)/catchup.Seconds())
	record("catchup_facts_per_sec", float64(totalFacts)/catchup.Seconds())

	// Part 2: steady-state tail. Keep writing on the leader while the
	// follower is connected; sample replication lag and time how long the
	// follower trails the final write.
	const tailFacts = 20_000
	var maxLag uint64
	stopSampling := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
				if lag := f.Follower().Status().Lag; lag > maxLag {
					maxLag = lag
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	start = time.Now()
	addFacts(catchupFacts, tailFacts)
	waitConverged(f)
	tailDur := time.Since(start)
	close(stopSampling)
	sampler.Wait()
	st := f.Follower().Status()
	fmt.Printf("tail: %d live facts replicated in %s (%8.0f facts/s); peak lag %d mutations, final lag %d\n",
		tailFacts, tailDur.Round(time.Millisecond), float64(tailFacts)/tailDur.Seconds(), maxLag, st.Lag)
	record("tail_facts_per_sec", float64(tailFacts)/tailDur.Seconds())

	// Part 3: read fan-out. Three more in-process replicas join, every one
	// serving the full v1 read surface; aggregate query throughput for one
	// replica vs four, mixed read classes over HTTP.
	replicas := []*nous.Pipeline{f}
	for len(replicas) < 4 {
		r := follow()
		defer r.Close()
		waitConverged(r)
		replicas = append(replicas, r)
	}
	var servers []*httptest.Server
	for _, r := range replicas {
		ts := httptest.NewServer(server.NewWithTimeout(r, benchTimeout))
		defer ts.Close()
		servers = append(servers, ts)
	}
	paths := []string{
		"/api/v1/ask?q=Tell+me+about+DJI",
		"/api/v1/entity?entity=DJI",
		"/api/v1/recent?k=10",
		"/api/v1/trending?k=5",
	}
	// A dedicated client with a deep idle pool: the default transport keeps
	// two idle connections per host, so a worker pool against one replica
	// would churn TCP connections and bench the dialer instead.
	client := &http.Client{Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 64}}
	get := func(url string) bool {
		res, err := client.Get(url)
		if err != nil {
			return false
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return res.StatusCode == http.StatusOK
	}
	for _, ts := range servers { // warm the per-epoch query caches
		for _, p := range paths {
			res, err := client.Get(ts.URL + p)
			replCheck(err)
			body, _ := io.ReadAll(res.Body)
			res.Body.Close()
			if res.StatusCode != http.StatusOK {
				fmt.Fprintf(os.Stderr, "replica warm-up failed: %s%s -> %s: %s\n", ts.URL, p, res.Status, body)
				os.Exit(1)
			}
		}
	}
	measure := func(pool []*httptest.Server) float64 {
		const workers = 16
		window := time.Second
		deadline := time.Now().Add(window)
		var served atomic.Int64
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				for i := wk; time.Now().Before(deadline); i++ {
					if get(pool[i%len(pool)].URL + paths[i%len(paths)]) {
						served.Add(1)
					}
				}
			}(wk)
		}
		wg.Wait()
		return float64(served.Load()) / window.Seconds()
	}
	single := measure(servers[:1])
	fanned := measure(servers)
	fmt.Printf("fan-out: 1 replica %8.0f queries/s; %d replicas %8.0f queries/s (%.2fx)\n",
		single, len(servers), fanned, fanned/single)
	record("fanout_queries_per_sec", fanned)

	fmt.Println("\nshape target: catch-up outruns live ingest; lag returns to zero after a write burst;")
	fmt.Println("fan-out sustains aggregate reads across replicas (scales with the cores available)")
}

func replCheck(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
