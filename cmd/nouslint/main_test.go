package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nous/internal/analysis"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// The -V handshake is the vet cache key: it must fold in the fact schema
// fingerprint so a changed fact shape evicts every cached vetx.
func TestVersionIncludesSchemaFingerprint(t *testing.T) {
	out := capture(t, func() {
		if code := run([]string{"-V=full"}); code != 0 {
			t.Errorf("run(-V=full) = %d, want 0", code)
		}
	})
	if !strings.HasPrefix(out, "nouslint version v1.1.0-") {
		t.Errorf("version output %q lacks the name/version prefix cmd/go parses", out)
	}
	if fp := analysis.SchemaFingerprint(allAnalyzers); !strings.Contains(out, fp) {
		t.Errorf("version output %q does not embed schema fingerprint %s", out, fp)
	}
}

func TestModuleOwned(t *testing.T) {
	tests := []struct {
		importPath, modulePath string
		want                   bool
	}{
		{"nous", "nous", true},
		{"nous/internal/graph", "nous", true},
		{"nous/internal/graph [nous/internal/graph.test]", "nous", true},
		{"nous/internal/graph", "", true}, // older go versions omit ModulePath
		{"fmt", "nous", false},
		{"nousuffix/pkg", "nous", false},
		{"golang.org/x/tools", "nous", false},
	}
	for _, tt := range tests {
		cfg := &vetConfig{ImportPath: tt.importPath, ModulePath: tt.modulePath}
		if got := moduleOwned(cfg); got != tt.want {
			t.Errorf("moduleOwned(%q in module %q) = %v, want %v", tt.importPath, tt.modulePath, got, tt.want)
		}
	}
}

// The parallel standalone schedule must be observationally identical to the
// serial one: same findings, same facts, same ordering, byte for byte. Run
// the driver over a real dependency slice of this module both ways and
// compare stdout.
func TestStandaloneParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks real packages")
	}
	// A slice with real cross-package fact flow: plan imports temporal and
	// graph (via core), and qa imports plan.
	patterns := []string{"nous/internal/temporal", "nous/internal/plan", "nous/internal/qa"}
	runWith := func(parallel string) string {
		return capture(t, func() {
			code := run(append([]string{"-json", "-parallel", parallel}, patterns...))
			if code != 0 && code != 2 {
				t.Errorf("run(-parallel %s) = %d, want 0 or 2", parallel, code)
			}
		})
	}
	serial := runWith("1")
	par := runWith("8")
	if serial != par {
		t.Fatalf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
	if !strings.Contains(serial, "\"suppressed\":") {
		t.Fatalf("missing suppression summary in output:\n%s", serial)
	}
}

// With -json, a named package's exported object facts are emitted alongside
// findings, keyed "analyzer" (not "rule") so finding consumers are
// unaffected. windowthread's windowedSiblings facts on nous/internal/core
// are stable fixtures.
func TestStandaloneJSONEmitsObjectFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks real packages")
	}
	out := capture(t, func() {
		if code := run([]string{"-json", "nous/internal/core"}); code != 0 && code != 2 {
			t.Errorf("run = %d, want 0 or 2", code)
		}
	})
	var sawFact bool
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("non-JSON line %q: %v", line, err)
		}
		if _, isFact := obj["analyzer"]; !isFact {
			continue
		}
		sawFact = true
		if _, hasRule := obj["rule"]; hasRule {
			t.Fatalf("fact line %q carries a rule key", line)
		}
		for _, k := range []string{"package", "object", "fact"} {
			if _, ok := obj[k]; !ok {
				t.Fatalf("fact line %q missing %q", line, k)
			}
		}
	}
	if !sawFact {
		t.Fatalf("no object-fact lines in output:\n%s", out)
	}
}

// writeVetx output must round-trip through DecodeFacts — it is the file the
// go command hands to every dependent package's analysis.
func TestWriteVetxRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pkg.vetx")
	if code := writeVetx(analysis.NewFactStore(), allAnalyzers, out); code != 0 {
		t.Fatalf("writeVetx = %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.DecodeFacts(data, allAnalyzers, analysis.NewFactStore()); err != nil {
		t.Fatalf("DecodeFacts(writeVetx output): %v", err)
	}
}
