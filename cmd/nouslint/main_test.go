package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nous/internal/analysis"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// The -V handshake is the vet cache key: it must fold in the fact schema
// fingerprint so a changed fact shape evicts every cached vetx.
func TestVersionIncludesSchemaFingerprint(t *testing.T) {
	out := capture(t, func() {
		if code := run([]string{"-V=full"}); code != 0 {
			t.Errorf("run(-V=full) = %d, want 0", code)
		}
	})
	if !strings.HasPrefix(out, "nouslint version v1.1.0-") {
		t.Errorf("version output %q lacks the name/version prefix cmd/go parses", out)
	}
	if fp := analysis.SchemaFingerprint(allAnalyzers); !strings.Contains(out, fp) {
		t.Errorf("version output %q does not embed schema fingerprint %s", out, fp)
	}
}

func TestModuleOwned(t *testing.T) {
	tests := []struct {
		importPath, modulePath string
		want                   bool
	}{
		{"nous", "nous", true},
		{"nous/internal/graph", "nous", true},
		{"nous/internal/graph [nous/internal/graph.test]", "nous", true},
		{"nous/internal/graph", "", true}, // older go versions omit ModulePath
		{"fmt", "nous", false},
		{"nousuffix/pkg", "nous", false},
		{"golang.org/x/tools", "nous", false},
	}
	for _, tt := range tests {
		cfg := &vetConfig{ImportPath: tt.importPath, ModulePath: tt.modulePath}
		if got := moduleOwned(cfg); got != tt.want {
			t.Errorf("moduleOwned(%q in module %q) = %v, want %v", tt.importPath, tt.modulePath, got, tt.want)
		}
	}
}

// writeVetx output must round-trip through DecodeFacts — it is the file the
// go command hands to every dependent package's analysis.
func TestWriteVetxRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pkg.vetx")
	if code := writeVetx(analysis.NewFactStore(), allAnalyzers, out); code != 0 {
		t.Fatalf("writeVetx = %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.DecodeFacts(data, allAnalyzers, analysis.NewFactStore()); err != nil {
		t.Fatalf("DecodeFacts(writeVetx output): %v", err)
	}
}
