// Command nouslint is the multichecker for NOUS's invariant suite: six
// analyzers that mechanically enforce the concurrency and architecture
// rules the codebase depends on but ordinary tests cannot pin down
// (deadlock-free shard-lock ordering, mutation-stream emission under held
// locks, the PageRank cache gate, time-window threading, plan determinism,
// and symbol-interned graph index keys). See internal/analysis/<rule> for
// what each rule guards and why.
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/bin/nouslint ./...   # the vet unit-checker protocol
//	nouslint ./...                              # standalone, loads packages itself
//
// The vet protocol (config files, export data, -V/-flags handshake) is
// implemented here directly against cmd/go's contract, because this module
// is deliberately dependency-free and cannot vendor
// golang.org/x/tools/go/analysis/unitchecker; the protocol is small and
// stable, and implementing it keeps `go vet` integration (build caching,
// test packages, per-package export data) for free.
//
// Findings are suppressed line-by-line with
//
//	//nouslint:allow <rule> -- <reason>
//
// on the flagged line or the line above; the reason is mandatory and
// suppression counts are reported in standalone mode.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"nous/internal/analysis"
	"nous/internal/analysis/hookunderlock"
	"nous/internal/analysis/internedkeys"
	"nous/internal/analysis/noclock"
	"nous/internal/analysis/prgate"
	"nous/internal/analysis/shardorder"
	"nous/internal/analysis/windowthread"
)

var allAnalyzers = []*analysis.Analyzer{
	shardorder.Analyzer,
	hookunderlock.Analyzer,
	prgate.Analyzer,
	windowthread.Analyzer,
	noclock.Analyzer,
	internedkeys.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("nouslint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (vet protocol handshake)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (vet protocol handshake)")
	printPath := fs.Bool("print-path", false, "print the path of this executable and exit")
	enabled := make(map[string]*bool, len(allAnalyzers))
	for _, a := range allAnalyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *versionFlag != "":
		// cmd/go parses this as "<name> version <version>"; the version
		// carries a content hash of the binary so vet's result cache
		// invalidates when the analyzers change.
		fmt.Printf("nouslint version v1.0.0-%s\n", selfHash())
		return 0
	case *flagsFlag:
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range allAnalyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, _ := json.Marshal(out)
		fmt.Println(string(data))
		return 0
	case *printPath:
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "nouslint:", err)
			return 1
		}
		fmt.Println(exe)
		return 0
	}

	var analyzers []*analysis.Analyzer
	for _, a := range allAnalyzers {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnitchecker(analyzers, rest[0])
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(analyzers, rest)
}

// selfHash fingerprints the running binary for the vet build cache.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// --- vet unit-checker protocol ---------------------------------------------

// vetConfig mirrors cmd/go/internal/work.vetConfig, the JSON the go command
// hands a -vettool for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(analyzers []*analysis.Analyzer, cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nouslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The tool computes no cross-package facts, but writing the output file
	// lets the go command cache this run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("nouslint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "nouslint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency package analyzed only for facts; nothing to do.
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint:", err)
		return 1
	}
	gc := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := &mappedImporter{underlying: gc, importMap: cfg.ImportMap}
	pkg, info, err := typecheck(fset, cfg.ImportPath, cfg.GoVersion, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "nouslint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, _, err := runAnalyzers(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint:", err)
		return 1
	}
	if len(diags) > 0 {
		printDiags(fset, diags)
		return 2
	}
	return 0
}

// mappedImporter applies a vet config's ImportMap before delegating to the
// export-data importer, and short-circuits "unsafe".
type mappedImporter struct {
	underlying types.Importer
	importMap  map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.underlying.Import(path)
}

// --- standalone driver ------------------------------------------------------

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Module     *struct{ Path string }
	DepOnly    bool
	Error      *struct{ Err string }
}

// runStandalone loads the requested packages (and their export data) through
// `go list -deps -export` and analyzes every non-dependency package in the
// main module. Test files are not loaded in this mode; the vet protocol path
// covers them.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string) int {
	cmd := exec.Command("go", append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint: go list:", err)
		return 1
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "nouslint: decoding go list output:", err)
			return 1
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "nouslint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && p.Module != nil {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := &mappedImporter{underlying: gc}

	exit := 0
	totalSuppressed := 0
	for _, p := range targets {
		var names []string
		names = append(names, p.GoFiles...)
		names = append(names, p.CgoFiles...)
		for i, n := range names {
			names[i] = p.Dir + string(os.PathSeparator) + n
		}
		files, err := parseFiles(fset, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nouslint:", err)
			return 1
		}
		pkg, info, err := typecheck(fset, p.ImportPath, "", files, imp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nouslint: %s: %v\n", p.ImportPath, err)
			return 1
		}
		diags, suppressed, err := runAnalyzers(analyzers, fset, files, pkg, info)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nouslint:", err)
			return 1
		}
		totalSuppressed += suppressed
		if len(diags) > 0 {
			printDiags(fset, diags)
			exit = 2
		}
	}
	if totalSuppressed > 0 {
		fmt.Fprintf(os.Stderr, "nouslint: %d finding(s) suppressed by //nouslint:allow\n", totalSuppressed)
	}
	return exit
}

// --- shared core ------------------------------------------------------------

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func typecheck(fset *token.FileSet, path, goVersion string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	if strings.HasPrefix(goVersion, "go") {
		conf.GoVersion = goVersion
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, int, error) {
	var diags []analysis.Diagnostic
	suppressed := 0
	for _, a := range analyzers {
		d, s, err := analysis.Run(a, fset, files, pkg, info)
		if err != nil {
			return nil, 0, err
		}
		for i := range d {
			d[i].Message = d[i].Message + " (" + a.Name + ")"
		}
		diags = append(diags, d...)
		suppressed += s
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, suppressed, nil
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
}
