// Command nouslint is the multichecker for NOUS's invariant suite: seven
// analyzers that mechanically enforce the concurrency and architecture
// rules the codebase depends on but ordinary tests cannot pin down
// (deadlock-free shard-lock ordering, mutation-stream emission under held
// locks, the PageRank cache gate, time-window threading, plan determinism,
// symbol-interned graph index keys, and the zero-copy EdgeScan lifetime
// contract). See internal/analysis/<rule> for what each rule guards and why.
//
// It runs two ways:
//
//	go vet -vettool=$(pwd)/bin/nouslint ./...   # the vet unit-checker protocol
//	nouslint ./...                              # standalone, loads packages itself
//
// The vet protocol (config files, export data, -V/-flags handshake) is
// implemented here directly against cmd/go's contract, because this module
// is deliberately dependency-free and cannot vendor
// golang.org/x/tools/go/analysis/unitchecker; the protocol is small and
// stable, and implementing it keeps `go vet` integration (build caching,
// test packages, per-package export data) for free.
//
// Both drivers propagate cross-package facts (internal/analysis/facts.go).
// Under go vet each module package is analyzed in its own process, facts
// from direct dependencies arriving as gob-encoded .vetx files named in the
// config's PackageVetx map and this package's union (its own facts plus its
// deps', so one hop always suffices) written to VetxOutput. The -V=full
// version string folds in the analyzers' fact schema fingerprint, so
// changing a fact type's shape invalidates every cached vetx. Standalone
// mode analyzes the whole module in one process: packages are scheduled in
// dependency order against a shared in-memory fact store.
//
// Findings are suppressed line-by-line with
//
//	//nouslint:allow <rule> -- <reason>
//
// on the flagged line or the line above; the reason is mandatory and
// suppression counts are reported in standalone mode. With -json each
// finding is printed to stdout as one JSON object per line
// ({"file","line","col","rule","message"}) followed by a trailing
// {"suppressed":N} summary, for CI annotation tooling.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"

	"nous/internal/analysis"
	"nous/internal/analysis/hookunderlock"
	"nous/internal/analysis/internedkeys"
	"nous/internal/analysis/noclock"
	"nous/internal/analysis/prgate"
	"nous/internal/analysis/scanescape"
	"nous/internal/analysis/shardorder"
	"nous/internal/analysis/windowthread"
)

var allAnalyzers = []*analysis.Analyzer{
	shardorder.Analyzer,
	hookunderlock.Analyzer,
	prgate.Analyzer,
	windowthread.Analyzer,
	noclock.Analyzer,
	internedkeys.Analyzer,
	scanescape.Analyzer,
}

func init() {
	// Gob needs the concrete fact types registered before any vetx is
	// encoded or decoded, in every mode (including tests calling run).
	analysis.RegisterFactTypes(allAnalyzers)
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("nouslint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (vet protocol handshake)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (vet protocol handshake)")
	printPath := fs.Bool("print-path", false, "print the path of this executable and exit")
	jsonOut := fs.Bool("json", false, "print findings as one JSON object per line on stdout")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "packages analyzed concurrently in standalone mode (1 = serial)")
	enabled := make(map[string]*bool, len(allAnalyzers))
	for _, a := range allAnalyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *versionFlag != "":
		// cmd/go parses this as "<name> version <version>"; the version
		// carries the fact schema fingerprint plus a content hash of the
		// binary, so vet's result cache — and every cached .vetx fact
		// file keyed by it — invalidates when an analyzer or the shape
		// of any fact type changes.
		fmt.Printf("nouslint version v1.1.0-%s-%s\n", analysis.SchemaFingerprint(allAnalyzers), selfHash())
		return 0
	case *flagsFlag:
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range allAnalyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, _ := json.Marshal(out)
		fmt.Println(string(data))
		return 0
	case *printPath:
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "nouslint:", err)
			return 1
		}
		fmt.Println(exe)
		return 0
	}

	var analyzers []*analysis.Analyzer
	for _, a := range allAnalyzers {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnitchecker(analyzers, rest[0], *jsonOut)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	return runStandalone(analyzers, rest, *jsonOut, *parallel)
}

// selfHash fingerprints the running binary for the vet build cache.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// --- vet unit-checker protocol ---------------------------------------------

// vetConfig mirrors cmd/go/internal/work.vetConfig, the JSON the go command
// hands a -vettool for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(analyzers []*analysis.Analyzer, cfgPath string, jsonOut bool) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nouslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Every rule's facts concern this module's own declarations, so for
	// packages outside it (the go command runs the vettool over stdlib
	// dependencies too) the vetx is an empty fact stream, written without
	// parsing a single file.
	if !moduleOwned(&cfg) {
		return writeVetx(analysis.NewFactStore(), analyzers, cfg.VetxOutput)
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint:", err)
		return 1
	}
	gc := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := &mappedImporter{underlying: gc, importMap: cfg.ImportMap}
	pkg, info, err := typecheck(fset, cfg.ImportPath, cfg.GoVersion, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "nouslint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Seed the fact store from the direct dependencies' vetx files. Each
	// vetx is a self-contained union (a package re-exports its deps'
	// facts alongside its own), so one hop reaches everything reachable.
	// A schema mismatch means a vetx from a different build of the tool —
	// the -V fingerprint handshake should have evicted it, so treat the
	// file as empty rather than failing the build.
	store := analysis.NewFactStore()
	for depPath, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nouslint: reading facts of %s: %v\n", depPath, err)
			return 1
		}
		if err := analysis.DecodeFacts(data, analyzers, store); err != nil && !errors.Is(err, analysis.ErrSchemaMismatch) {
			fmt.Fprintf(os.Stderr, "nouslint: decoding facts of %s: %v\n", depPath, err)
			return 1
		}
	}

	findings, suppressed, err := runAnalyzers(analyzers, fset, files, pkg, info, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint:", err)
		return 1
	}
	if code := writeVetx(store, analyzers, cfg.VetxOutput); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		// Dependency package: facts are the only deliverable.
		return 0
	}
	if len(findings) > 0 {
		printFindings(fset, findings, suppressed, jsonOut)
		return 2
	}
	return 0
}

// moduleOwned reports whether the configured package belongs to this module
// (including its test variants, whose ImportPaths extend the package path).
func moduleOwned(cfg *vetConfig) bool {
	mod := cfg.ModulePath
	if mod == "" {
		mod = "nous"
	}
	return cfg.ImportPath == mod || strings.HasPrefix(cfg.ImportPath, mod+"/")
}

// writeVetx gob-encodes the fact store to the vetx output file the go
// command asked for. Skipped silently when no output was requested.
func writeVetx(store *analysis.FactStore, analyzers []*analysis.Analyzer, output string) int {
	if output == "" {
		return 0
	}
	data, err := analysis.EncodeFacts(store, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint: encoding facts:", err)
		return 1
	}
	if err := os.WriteFile(output, data, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, "nouslint:", err)
		return 1
	}
	return 0
}

// mappedImporter applies a vet config's ImportMap before delegating to the
// export-data importer, and short-circuits "unsafe".
type mappedImporter struct {
	underlying types.Importer
	importMap  map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.underlying.Import(path)
}

// --- standalone driver ------------------------------------------------------

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Module     *struct{ Path string }
	DepOnly    bool
	Error      *struct{ Err string }
}

// runStandalone loads the requested packages (and their export data) through
// `go list -deps -export` and analyzes every module package — dependencies
// included, scheduled against one shared in-memory fact store, so facts flow
// exactly as they do through vetx files under go vet. Packages with no
// unanalyzed module imports run concurrently, up to parallel workers; a
// package is dispatched only after every module package it imports has
// completed, which preserves the fact-flow guarantees of the serial
// schedule. Each imported dependency is type-checked from its export data
// (never from a sibling's in-progress source check), so packages only
// couple through the mutex-guarded fact store and importer. Results are
// buffered and printed in the serial dependency order, making the output
// byte-identical to -parallel=1. Diagnostics are reported only for the
// packages the patterns named; dependencies pulled in for fact computation
// stay silent — except that with -json each named package's exported object
// facts are also emitted (lines carrying "analyzer" instead of "rule").
// Test files are not loaded in this mode; the vet protocol path covers them.
func runStandalone(analyzers []*analysis.Analyzer, patterns []string, jsonOut bool, parallel int) int {
	cmd := exec.Command("go", append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nouslint: go list:", err)
		return 1
	}
	exports := make(map[string]string)
	modPkgs := make(map[string]*listedPackage)
	var listOrder []string
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "nouslint: decoding go list output:", err)
			return 1
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "nouslint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			cp := p
			modPkgs[p.ImportPath] = &cp
			listOrder = append(listOrder, p.ImportPath)
		}
	}

	// Dependency-order schedule over the module packages: a package runs
	// only after every module package it imports has, so its pass can
	// import the facts theirs exported.
	var order []string
	visited := make(map[string]bool, len(modPkgs))
	var visit func(path string)
	visit = func(path string) {
		p, ok := modPkgs[path]
		if !ok || visited[path] {
			return
		}
		visited[path] = true
		for _, imp := range p.Imports {
			visit(imp)
		}
		order = append(order, path)
	}
	for _, path := range listOrder {
		visit(path)
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	// The gc export-data importer mutates its package cache per Import; the
	// workers share it behind a mutex (token.FileSet locks internally).
	imp := &lockedImporter{underlying: &mappedImporter{underlying: gc}}

	store := analysis.NewFactStore()
	results := analyzePackages(analyzers, fset, imp, store, modPkgs, order, parallel)

	exit := 0
	totalSuppressed := 0
	for _, path := range order {
		res := results[path]
		if res.errMsg != "" {
			// Same contract as the serial loop: the first (dependency-order)
			// failure aborts the run; nothing past it is reported.
			fmt.Fprintln(os.Stderr, res.errMsg)
			return 1
		}
		if modPkgs[path].DepOnly {
			continue // analyzed for facts alone
		}
		totalSuppressed += res.suppressed
		if len(res.findings) > 0 {
			printFindings(fset, res.findings, 0, jsonOut)
			exit = 2
		}
		if jsonOut {
			printFacts(analyzers, store, path)
		}
	}
	if jsonOut {
		fmt.Printf("{\"suppressed\":%d}\n", totalSuppressed)
	} else if totalSuppressed > 0 {
		fmt.Fprintf(os.Stderr, "nouslint: %d finding(s) suppressed by //nouslint:allow\n", totalSuppressed)
	}
	return exit
}

// pkgResult is one package's buffered analysis outcome.
type pkgResult struct {
	findings   []finding
	suppressed int
	errMsg     string // pre-formatted; non-empty aborts reporting at this package
}

// analyzePackages runs every package in order through parse → typecheck →
// analyzers, dispatching a package as soon as all module packages it imports
// have completed (not merely started — an importer must see its dependencies'
// full fact sets). A failed dependency still releases its dependents: their
// type checks read export data, not the failed source pass, and the reporter
// stops at the first failure anyway.
func analyzePackages(analyzers []*analysis.Analyzer, fset *token.FileSet, imp types.Importer, store *analysis.FactStore, modPkgs map[string]*listedPackage, order []string, parallel int) map[string]*pkgResult {
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(order) {
		parallel = len(order)
	}

	indeg := make(map[string]int, len(order))
	dependents := make(map[string][]string)
	for _, path := range order {
		for _, im := range modPkgs[path].Imports {
			if _, ok := modPkgs[im]; ok {
				indeg[path]++
				dependents[im] = append(dependents[im], path)
			}
		}
	}

	results := make(map[string]*pkgResult, len(order))
	for _, path := range order {
		results[path] = &pkgResult{}
	}

	// Buffered to the package count, so completion-time enqueues never block
	// and workers drain to channel close with no separate done signal.
	ready := make(chan string, len(order))
	pending := len(order)
	var mu sync.Mutex
	for _, path := range order {
		if indeg[path] == 0 {
			ready <- path
		}
	}
	if pending == 0 {
		close(ready)
	}

	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range ready {
				analyzeOne(analyzers, fset, imp, store, modPkgs[path], results[path])
				mu.Lock()
				pending--
				for _, d := range dependents[path] {
					if indeg[d]--; indeg[d] == 0 {
						ready <- d
					}
				}
				if pending == 0 {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return results
}

// analyzeOne fills res with one package's findings (or its first error,
// formatted exactly as the serial driver printed it).
func analyzeOne(analyzers []*analysis.Analyzer, fset *token.FileSet, imp types.Importer, store *analysis.FactStore, p *listedPackage, res *pkgResult) {
	var names []string
	names = append(names, p.GoFiles...)
	names = append(names, p.CgoFiles...)
	for i, n := range names {
		names[i] = p.Dir + string(os.PathSeparator) + n
	}
	files, err := parseFiles(fset, names)
	if err != nil {
		res.errMsg = fmt.Sprintf("nouslint: %v", err)
		return
	}
	pkg, info, err := typecheck(fset, p.ImportPath, "", files, imp)
	if err != nil {
		res.errMsg = fmt.Sprintf("nouslint: %s: %v", p.ImportPath, err)
		return
	}
	res.findings, res.suppressed, err = runAnalyzers(analyzers, fset, files, pkg, info, store)
	if err != nil {
		res.errMsg = fmt.Sprintf("nouslint: %v", err)
	}
}

// lockedImporter serializes a non-concurrency-safe importer shared by the
// parallel workers.
type lockedImporter struct {
	mu         sync.Mutex
	underlying types.Importer
}

func (l *lockedImporter) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.underlying.Import(path)
}

// --- shared core ------------------------------------------------------------

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func typecheck(fset *token.FileSet, path, goVersion string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	if strings.HasPrefix(goVersion, "go") {
		conf.GoVersion = goVersion
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// finding is one diagnostic tagged with the rule that produced it.
type finding struct {
	pos  token.Pos
	rule string
	msg  string
}

func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, store *analysis.FactStore) ([]finding, int, error) {
	var findings []finding
	suppressed := 0
	for _, a := range analyzers {
		d, s, err := analysis.RunFacts(a, fset, files, pkg, info, store)
		if err != nil {
			return nil, 0, err
		}
		for _, diag := range d {
			findings = append(findings, finding{pos: diag.Pos, rule: a.Name, msg: diag.Message})
		}
		suppressed += s
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	return findings, suppressed, nil
}

// jsonFinding is the -json wire form of one finding: one object per line on
// stdout, ready for GitHub annotation tooling.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonFact is the -json wire form of one exported object fact — the
// cross-package claims (e.g. scanescape's retainsScanArg, windowthread's
// dropsWindow) a package's analysis proved about its declarations. Fact
// lines carry "analyzer" where findings carry "rule", so finding consumers
// filtering on .rule are unaffected.
type jsonFact struct {
	Package  string `json:"package"`
	Object   string `json:"object"`
	Analyzer string `json:"analyzer"`
	Fact     string `json:"fact"`
}

// printFacts emits one JSON line per object fact the analyzers exported for
// the package, in (analyzer, object, fact type) order.
func printFacts(analyzers []*analysis.Analyzer, store *analysis.FactStore, pkgPath string) {
	enc := json.NewEncoder(os.Stdout)
	for _, a := range analyzers {
		for _, of := range store.ObjectFacts(a.Name, pkgPath) {
			enc.Encode(jsonFact{Package: of.PkgPath, Object: of.ObjPath, Analyzer: a.Name, Fact: fmt.Sprint(of.Fact)})
		}
	}
}

func printFindings(fset *token.FileSet, findings []finding, suppressed int, jsonOut bool) {
	if !jsonOut {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(f.pos), f.msg, f.rule)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	for _, f := range findings {
		pos := fset.Position(f.pos)
		enc.Encode(jsonFinding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Rule: f.rule, Message: f.msg})
	}
	if suppressed > 0 {
		fmt.Printf("{\"suppressed\":%d}\n", suppressed)
	}
}
