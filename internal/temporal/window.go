// Package temporal makes the dynamic knowledge graph queryable *in time*.
// Every edge in the graph already carries a timestamp (the provenance time
// of the fact it stores); this package adds the two pieces the paper's
// "querying a dynamic KG" claim needs on the read side:
//
//   - Window, a half-open [Since, Until) unix-seconds interval that the
//     traversal consumers (pathsearch, the QA executor, the entity-summary
//     and export paths) accept as a read view. The zero Window is unbounded,
//     so every pre-existing call site keeps its exact semantics.
//   - Index, a per-shard time-ordered edge index kept in sync with the graph
//     through its mutation stream and rebuilt from graph state on recovery,
//     answering "which edges fall inside this window" without a full scan.
//
// Windowing follows the paper's fusion model: curated facts are the
// persistent background substrate and are always in scope; a window scopes
// the *extracted* stream by provenance time. A full-range window is required
// to behave byte-identically to an unwindowed read — consumers gate their
// filtering on Window.IsAll so the unwindowed hot path stays untouched.
package temporal

import (
	"math"
	"time"

	"nous/internal/graph"
	"nous/internal/graph/symtab"
)

// Window is a half-open time range [Since, Until) in unix seconds. The zero
// Window is unbounded (it contains every timestamp), as is the explicit
// {math.MinInt64, math.MaxInt64} form.
type Window struct {
	Since int64 `json:"since"`
	Until int64 `json:"until"`
}

// All returns the unbounded window.
func All() Window { return Window{} }

// Between returns the window [since, until).
func Between(since, until time.Time) Window {
	return Window{Since: since.Unix(), Until: until.Unix()}
}

// SinceTime returns the window [t, +inf).
func SinceTime(t time.Time) Window { return Window{Since: t.Unix(), Until: math.MaxInt64} }

// UntilTime returns the window (-inf, t) — "as of" semantics when t is the
// exclusive end of the period of interest.
func UntilTime(t time.Time) Window { return Window{Since: math.MinInt64, Until: t.Unix()} }

// IsAll reports whether the window is unbounded on both sides.
func (w Window) IsAll() bool {
	return (w.Since == 0 && w.Until == 0) ||
		(w.Since == math.MinInt64 && w.Until == math.MaxInt64)
}

// Bounded reports whether the window constrains at least one side.
func (w Window) Bounded() bool { return !w.IsAll() }

// IsEmpty reports whether the window can contain no timestamp at all (a
// degenerate or inverted bounded range, e.g. the result of intersecting
// disjoint windows).
func (w Window) IsEmpty() bool { return !w.IsAll() && w.Since >= w.Until }

// Contains reports whether ts lies inside the window. The unbounded window
// contains every timestamp.
func (w Window) Contains(ts int64) bool {
	if w.IsAll() {
		return true
	}
	return ts >= w.Since && ts < w.Until
}

// ContainsEdge is the read-view membership rule for graph traversals: an
// edge is visible when its timestamp falls inside the window, or when it
// stores a curated fact — curated knowledge is timeless background, only the
// extracted stream is windowed. The unbounded window admits everything
// without inspecting the edge.
func (w Window) ContainsEdge(e graph.Edge) bool {
	if w.IsAll() {
		return true
	}
	if w.Contains(e.Timestamp) {
		return true
	}
	return e.Props["curated"] == "true"
}

// curatedKey is the interned form of the "curated" provenance prop, looked
// up once so the scan-path membership test does no string hashing per edge.
var curatedKey = symtab.Intern("curated")

// ContainsScan is ContainsEdge for slab views: the same membership rule
// applied to a graph.EdgeScan without materializing the edge. Hot paths
// (windowed PageRank, beam expansion) call this once per scanned edge.
func (w Window) ContainsScan(e *graph.EdgeScan) bool {
	if w.IsAll() {
		return true
	}
	if w.Contains(e.Timestamp) {
		return true
	}
	return e.PropEquals(curatedKey, "true")
}

// Empty returns a canonical window containing no timestamp. (A zero-value
// Window is unbounded, so "nothing" needs an explicit inverted range.)
func Empty() Window { return Window{Since: math.MaxInt64, Until: math.MinInt64} }

// Intersect returns the overlap of two windows. Intersecting with the
// unbounded window returns the other window unchanged; a disjoint pair
// yields an empty (nothing-matching) bounded window — never the zero
// value, which would read as unbounded.
func (w Window) Intersect(o Window) Window {
	if w.IsAll() {
		return o
	}
	if o.IsAll() {
		return w
	}
	out := w
	if o.Since > out.Since {
		out.Since = o.Since
	}
	if o.Until < out.Until {
		out.Until = o.Until
	}
	// Canonicalize every disjoint result to one empty window: the exact
	// {0, 0} case would otherwise read as the unbounded zero value, and
	// distinct inverted ranges would pollute (epoch, window)-keyed caches
	// with useless per-request keys.
	if out == (Window{}) || out.IsEmpty() {
		return Empty()
	}
	return out
}

// String renders the window for answer texts and logs: dates for bounded
// ends, an ellipsis for unbounded ones.
func (w Window) String() string {
	if w.IsAll() {
		return "[all time]"
	}
	if w.IsEmpty() {
		return "[empty window]"
	}
	end := func(ts int64) string {
		if ts == math.MinInt64 || ts == math.MaxInt64 {
			return "…"
		}
		return time.Unix(ts, 0).UTC().Format("2006-01-02")
	}
	return "[" + end(w.Since) + ", " + end(w.Until) + ")"
}
