package temporal

import (
	"math"
	"testing"

	"nous/internal/graph"
)

// histCorpus populates g with n dated edges whose timestamps are spread over
// spanDays with a deterministic skew (bursty weekdays, quiet stretches), and
// returns the timestamps used. Deterministic: no clock, no rand.
func histCorpus(t *testing.T, g *graph.Graph, n, spanDays int) []int64 {
	t.Helper()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	const day = int64(86400)
	base := int64(1420070400) // 2015-01-01T00:00:00Z
	var tss []int64
	state := uint64(42)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		d := int64(state>>33) % int64(spanDays)
		// Skew: fold the second half of the span onto its first week so
		// some buckets are hot and most are cold.
		if d > int64(spanDays)/2 {
			d = d % 7
		}
		sec := int64(state>>17) % day
		ts := base + d*day + sec
		if _, err := g.AddEdgeFull(a, b, "mentions", 1, ts, nil); err != nil {
			t.Fatal(err)
		}
		tss = append(tss, ts)
	}
	return tss
}

func exactIn(tss []int64, w Window) int {
	n := 0
	for _, ts := range tss {
		if w.Contains(ts) {
			n++
		}
	}
	return n
}

func TestEstimateInWithinTwoXOfCount(t *testing.T) {
	g := graph.New()
	ix := Attach(g)
	defer ix.Detach()
	tss := histCorpus(t, g, 4000, 60)

	const day = int64(86400)
	base := int64(1420070400)
	windows := []Window{
		{Since: base, Until: base + day},                   // one aligned day
		{Since: base + 2*day, Until: base + 9*day},         // one aligned week
		{Since: base + day/2, Until: base + 3*day + day/3}, // unaligned ends
		{Since: base + 10*day, Until: base + 40*day},       // wide, mixed hot/cold
		{Since: base + 5*day, Until: math.MaxInt64},        // since-only
		{Since: math.MinInt64, Until: base + 20*day},       // until-only
		All(),
	}
	for _, w := range windows {
		want := exactIn(tss, w)
		got := ix.EstimateIn(w)
		if n := ix.Count(w); n != want {
			t.Fatalf("Count(%v) = %d, corpus says %d", w, n, want)
		}
		if want == 0 {
			if got != 0 {
				t.Fatalf("EstimateIn(%v) = %g, want exactly 0", w, got)
			}
			continue
		}
		if got < float64(want)/2 || got > float64(want)*2 {
			t.Fatalf("EstimateIn(%v) = %g, actual %d — outside the 2x band", w, got, want)
		}
	}
}

func TestEstimateInExactZeroOnlyWhenEmpty(t *testing.T) {
	g := graph.New()
	ix := Attach(g)
	defer ix.Detach()
	tss := histCorpus(t, g, 500, 30)

	const day = int64(86400)
	base := int64(1420070400)
	// Far future, far past, and inverted windows hold nothing.
	for _, w := range []Window{
		{Since: base + 400*day, Until: base + 500*day},
		{Since: base - 500*day, Until: base - 400*day},
		Empty(),
	} {
		if got := ix.EstimateIn(w); got != 0 {
			t.Fatalf("EstimateIn(%v) = %g, want 0", w, got)
		}
	}
	// Conversely: any window with a real edge must estimate > 0 (the
	// optimizer's skip-proof relies on this direction too).
	for _, ts := range tss[:20] {
		w := Window{Since: ts, Until: ts + 1}
		if got := ix.EstimateIn(w); got <= 0 {
			t.Fatalf("EstimateIn(%v) = %g with an edge at %d", w, got, ts)
		}
	}
}

func TestEstimateInExcludesTimeless(t *testing.T) {
	g := graph.New()
	ix := Attach(g)
	defer ix.Detach()
	a := g.AddVertex("E")
	b := g.AddVertex("F")
	for i := 0; i < 10; i++ {
		if _, err := g.AddEdgeFull(a, b, "curated_rel", 1, Timeless, map[string]string{"curated": "true"}); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 10 {
		t.Fatalf("Len = %d, want 10", ix.Len())
	}
	if got := ix.EstimateIn(All()); got != 0 {
		t.Fatalf("EstimateIn(all) = %g over a purely timeless graph, want 0", got)
	}
}

// TestEstimateInSurvivesRemovalsAndRebuild pins that the incrementally
// maintained histogram matches one rebuilt from scratch after a mix of
// inserts and removals — the recovery path (Rebuild) and the live path
// (insert/remove) must agree bucket for bucket.
func TestEstimateInSurvivesRemovalsAndRebuild(t *testing.T) {
	g := graph.New()
	ix := Attach(g)
	defer ix.Detach()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	const day = int64(86400)
	base := int64(1420070400)
	var ids []graph.EdgeID
	var tss []int64
	for i := 0; i < 300; i++ {
		ts := base + int64(i%30)*day + int64(i)*7
		id, err := g.AddEdgeFull(a, b, "mentions", 1, ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		tss = append(tss, ts)
	}
	// Remove every third edge.
	var left []int64
	for i, id := range ids {
		if i%3 == 0 {
			g.RemoveEdge(id)
		} else {
			left = append(left, tss[i])
		}
	}
	fresh := NewIndex(g)
	windows := []Window{
		{Since: base, Until: base + 3*day},
		{Since: base + day/2, Until: base + 11*day},
		{Since: base + 29*day, Until: math.MaxInt64},
		All(),
	}
	for _, w := range windows {
		live, rebuilt := ix.EstimateIn(w), fresh.EstimateIn(w)
		if live != rebuilt {
			t.Fatalf("EstimateIn(%v): live %g != rebuilt %g", w, live, rebuilt)
		}
		if want := exactIn(left, w); want > 0 && (live < float64(want)/2 || live > float64(want)*2) {
			t.Fatalf("EstimateIn(%v) = %g, actual %d after removals", w, live, want)
		}
	}
	ix.Rebuild()
	for _, w := range windows {
		if got, want := ix.EstimateIn(w), fresh.EstimateIn(w); got != want {
			t.Fatalf("post-Rebuild EstimateIn(%v) = %g, want %g", w, got, want)
		}
	}
}

func TestEdgesWithLabelCountsLive(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	var ids []graph.EdgeID
	for i := 0; i < 8; i++ {
		id, err := g.AddEdgeFull(a, b, "acquired", 1, int64(1000+i), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := g.AddEdgeFull(a, b, "mentions", 1, 2000, nil); err != nil {
		t.Fatal(err)
	}
	if n := g.EdgesWithLabel("acquired"); n != 8 {
		t.Fatalf("EdgesWithLabel(acquired) = %d, want 8", n)
	}
	g.RemoveEdge(ids[0])
	g.RemoveEdge(ids[1])
	if n := g.EdgesWithLabel("acquired"); n != 6 {
		t.Fatalf("EdgesWithLabel(acquired) after removals = %d, want 6", n)
	}
	if n := g.EdgesWithLabel("never_seen"); n != 0 {
		t.Fatalf("EdgesWithLabel(never_seen) = %d, want 0", n)
	}
}
