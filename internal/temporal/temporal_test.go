package temporal

import (
	"math"
	"sync"
	"testing"

	"nous/internal/graph"
)

func TestWindowZeroValueIsUnbounded(t *testing.T) {
	var w Window
	if !w.IsAll() || w.Bounded() {
		t.Fatal("zero window must be unbounded")
	}
	for _, ts := range []int64{math.MinInt64, -62135596800, 0, 1, math.MaxInt64} {
		if !w.Contains(ts) {
			t.Fatalf("unbounded window rejected %d", ts)
		}
	}
	if !(Window{Since: math.MinInt64, Until: math.MaxInt64}).IsAll() {
		t.Fatal("explicit full-range window must be IsAll")
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Since: 10, Until: 20}
	for ts, want := range map[int64]bool{9: false, 10: true, 19: true, 20: false, -5: false} {
		if got := w.Contains(ts); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", ts, got, want)
		}
	}
}

func TestWindowContainsEdgeCuratedAlwaysPasses(t *testing.T) {
	w := Window{Since: 100, Until: 200}
	curated := graph.Edge{Timestamp: -62135596800, Props: map[string]string{"curated": "true"}}
	extractedIn := graph.Edge{Timestamp: 150}
	extractedOut := graph.Edge{Timestamp: 50}
	if !w.ContainsEdge(curated) {
		t.Fatal("curated edge must pass any window")
	}
	if !w.ContainsEdge(extractedIn) || w.ContainsEdge(extractedOut) {
		t.Fatal("extracted edges must be scoped by timestamp")
	}
	if !All().ContainsEdge(extractedOut) {
		t.Fatal("unbounded window must pass everything")
	}
}

func TestWindowIntersect(t *testing.T) {
	a := Window{Since: 10, Until: 100}
	b := Window{Since: 50, Until: 200}
	got := a.Intersect(b)
	if got.Since != 50 || got.Until != 100 {
		t.Fatalf("intersect = %+v", got)
	}
	if x := All().Intersect(a); x != a {
		t.Fatalf("All ∩ a = %+v", x)
	}
	if x := a.Intersect(All()); x != a {
		t.Fatalf("a ∩ All = %+v", x)
	}
	empty := (Window{Since: 10, Until: 20}).Intersect(Window{Since: 30, Until: 40})
	if empty.Contains(15) || empty.Contains(35) {
		t.Fatal("disjoint intersection must contain nothing")
	}
	// A disjoint pair straddling ts=0 must not collapse to the zero value
	// (which would read as unbounded): (-inf, 0) ∩ [0, +inf) = nothing.
	zeroish := (Window{Since: math.MinInt64, Until: 0}).Intersect(Window{Since: 0, Until: math.MaxInt64})
	if zeroish.IsAll() {
		t.Fatal("disjoint intersection at ts=0 flipped to unbounded")
	}
	for _, ts := range []int64{-1, 0, 1} {
		if zeroish.Contains(ts) {
			t.Fatalf("empty intersection contains %d", ts)
		}
	}
	if Empty().Contains(0) || Empty().IsAll() {
		t.Fatal("Empty() must contain nothing and not be unbounded")
	}
}

func TestIndexTracksAddsAndRemoves(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()

	var ids []graph.EdgeID
	for _, ts := range []int64{30, 10, 20, 40} {
		id, err := g.AddEdgeFull(a, b, "acquired", 1, ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	in := ix.EdgesIn(Window{Since: 10, Until: 31})
	if len(in) != 3 {
		t.Fatalf("EdgesIn = %v, want 3 edges", in)
	}
	// Ordered by (ts, id): ts 10, 20, 30 → ids[1], ids[2], ids[0].
	if in[0] != ids[1] || in[1] != ids[2] || in[2] != ids[0] {
		t.Fatalf("EdgesIn order = %v", in)
	}
	if n := ix.Count(Window{Since: 35, Until: 100}); n != 1 {
		t.Fatalf("Count = %d, want 1", n)
	}

	g.RemoveEdge(ids[2]) // ts 20
	if ix.Len() != 3 {
		t.Fatalf("Len after remove = %d, want 3", ix.Len())
	}
	if n := ix.Count(Window{Since: 15, Until: 25}); n != 0 {
		t.Fatalf("removed edge still indexed (count %d)", n)
	}
	min, max, ok := ix.Span()
	if !ok || min != 10 || max != 40 {
		t.Fatalf("Span = (%d, %d, %v)", min, max, ok)
	}
}

func TestLatestIn(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()
	var ids []graph.EdgeID
	for ts := int64(0); ts < 20; ts++ {
		id, err := g.AddEdgeFull(a, b, "acquired", 1, ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	got := ix.LatestIn(All(), 3)
	if len(got) != 3 || got[0] != ids[17] || got[1] != ids[18] || got[2] != ids[19] {
		t.Fatalf("LatestIn(All, 3) = %v, want newest three oldest-first", got)
	}
	got = ix.LatestIn(Window{Since: 5, Until: 10}, 2)
	if len(got) != 2 || got[0] != ids[8] || got[1] != ids[9] {
		t.Fatalf("LatestIn(window, 2) = %v", got)
	}
	if got := ix.LatestIn(Empty(), 5); len(got) != 0 {
		t.Fatalf("LatestIn(Empty) = %v", got)
	}
	if got := ix.LatestIn(All(), 0); got != nil {
		t.Fatalf("LatestIn(k=0) = %v", got)
	}
	if got := ix.LatestIn(All(), 100); len(got) != 20 {
		t.Fatalf("LatestIn(k>len) returned %d", len(got))
	}
}

func TestIndexEmptyWindowQueries(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()
	for _, ts := range []int64{10, 20, 30} {
		if _, err := g.AddEdgeFull(a, b, "acquired", 1, ts, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Empty and inverted windows (disjoint intersections produce them) must
	// return nothing — not panic or go negative.
	for _, w := range []Window{Empty(), {Since: 25, Until: 15}, {Since: 15, Until: 15}} {
		if n := ix.Count(w); n != 0 {
			t.Fatalf("Count(%+v) = %d, want 0", w, n)
		}
		if ids := ix.EdgesIn(w); len(ids) != 0 {
			t.Fatalf("EdgesIn(%+v) = %v, want none", w, ids)
		}
	}
}

func TestSpanExcludesTimelessSubstrate(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()
	// A curated fact's edge carries the zero-provenance-time sentinel; it
	// must not drag the reported span back to year 1.
	if _, err := g.AddEdgeFull(a, b, "manufactures", 1, Timeless, map[string]string{"curated": "true"}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ix.Span(); ok {
		t.Fatal("timeless-only index reported a dated span")
	}
	if _, err := g.AddEdgeFull(a, b, "acquired", 1, 1000, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdgeFull(a, b, "acquired", 1, 2000, nil); err != nil {
		t.Fatal(err)
	}
	min, max, ok := ix.Span()
	if !ok || min != 1000 || max != 2000 {
		t.Fatalf("Span = (%d, %d, %v), want dated range (1000, 2000)", min, max, ok)
	}
	st := ix.Stats()
	if st.Edges != 3 || st.MinTimestamp != 1000 || st.MaxTimestamp != 2000 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestDatedInSkipsTimelessSubstrate(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()
	if _, err := g.AddEdgeFull(a, b, "manufactures", 1, Timeless, map[string]string{"curated": "true"}); err != nil {
		t.Fatal(err)
	}
	e1, err := g.AddEdgeFull(a, b, "acquired", 1, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := g.AddEdgeFull(a, b, "acquired", 1, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A window unbounded below spans the timeless sentinel; DatedIn must
	// skip the substrate where EdgesIn would materialize it.
	below := Window{Since: math.MinInt64, Until: 1500}
	if ids := ix.DatedIn(below); len(ids) != 1 || ids[0] != e1 {
		t.Fatalf("DatedIn(unbounded below) = %v, want just the dated edge %v", ids, e1)
	}
	if ids := ix.EdgesIn(below); len(ids) != 2 {
		t.Fatalf("EdgesIn(unbounded below) = %v, want sentinel + dated", ids)
	}
	if ids := ix.DatedIn(Window{}); len(ids) != 2 || ids[0] != e1 || ids[1] != e2 {
		t.Fatalf("DatedIn(all) = %v, want both dated edges in order", ids)
	}
	if ids := ix.DatedIn(Window{Since: 1500, Until: 2500}); len(ids) != 1 || ids[0] != e2 {
		t.Fatalf("DatedIn(bounded) = %v, want %v", ids, e2)
	}
}

func TestIndexScansPreexistingEdges(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	if _, err := g.AddEdgeFull(a, b, "acquired", 1, 7, nil); err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(g)
	if ix.Len() != 1 || ix.Count(Window{Since: 7, Until: 8}) != 1 {
		t.Fatal("pre-existing edge not indexed")
	}
}

func TestIndexRebuildMatchesGraph(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	var ids []graph.EdgeID
	for ts := int64(0); ts < 10; ts++ {
		id, err := g.AddEdgeFull(a, b, "acquired", 1, ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	g.RemoveEdge(ids[3])
	ix := NewIndex(g)
	if ix.Len() != g.NumEdges() {
		t.Fatalf("index %d edges, graph %d", ix.Len(), g.NumEdges())
	}
	ix.Rebuild()
	if ix.Len() != g.NumEdges() {
		t.Fatalf("after rebuild: index %d edges, graph %d", ix.Len(), g.NumEdges())
	}
	// Every indexed edge must exist with the indexed timestamp order.
	prev := int64(math.MinInt64)
	for _, id := range ix.EdgesIn(All()) {
		e, ok := g.Edge(id)
		if !ok {
			t.Fatalf("index holds removed edge %d", id)
		}
		if e.Timestamp < prev {
			t.Fatalf("EdgesIn out of time order at edge %d", id)
		}
		prev = e.Timestamp
	}
}

func TestIndexDetachStopsTracking(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	if _, err := g.AddEdgeFull(a, b, "acquired", 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	ix.Detach()
	if _, err := g.AddEdgeFull(a, b, "acquired", 1, 2, nil); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 {
		t.Fatalf("detached index tracked a write (len %d)", ix.Len())
	}
}

// TestIndexNoGhostEntriesUnderScavenging pins the mutation-ordering
// contract: a remover that *discovers* edges through graph reads (not
// through the writer's return value) must never get its MutRemoveEdge
// delivered before the edge's MutAddEdges — otherwise the index would
// permanently hold a ghost entry for a deleted edge.
func TestIndexNoGhostEntriesUnderScavenging(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()

	stop := make(chan struct{})
	var scav sync.WaitGroup
	scav.Add(1)
	go func() {
		defer scav.Done()
		for {
			for _, e := range g.EdgesByLabel("acquired") {
				g.RemoveEdge(e.ID)
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for i := 0; i < 500; i++ {
		if _, err := g.AddEdgeFull(a, b, "acquired", 1, int64(i), nil); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if _, err := g.AddEdges([]graph.EdgeSpec{
				{Src: a, Dst: b, Label: "acquired", Weight: 1, Timestamp: int64(i)},
				{Src: b, Dst: a, Label: "acquired", Weight: 1, Timestamp: int64(i)},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	scav.Wait()
	// Drain whatever the scavenger did not reach.
	for _, e := range g.EdgesByLabel("acquired") {
		g.RemoveEdge(e.ID)
	}
	if ix.Len() != g.NumEdges() {
		t.Fatalf("index %d entries, graph %d edges (ghost entries)", ix.Len(), g.NumEdges())
	}
	for _, id := range ix.EdgesIn(All()) {
		if _, ok := g.Edge(id); !ok {
			t.Fatalf("index holds removed edge %d", id)
		}
	}
}

// TestIndexConcurrentAddRemove races writers, removers and window readers
// against one index; run under -race it exercises the stripe locking, and
// the final reconciliation asserts index == graph.
func TestIndexConcurrentAddRemove(t *testing.T) {
	g := graph.New()
	var verts []graph.VertexID
	for i := 0; i < 8; i++ {
		verts = append(verts, g.AddVertex("Company"))
	}
	ix := Attach(g)
	defer ix.Detach()

	const perWorker = 200
	var wg sync.WaitGroup
	idCh := make(chan graph.EdgeID, 4*perWorker)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id, err := g.AddEdgeFull(verts[i%len(verts)], verts[(i+1)%len(verts)],
					"acquired", 1, int64(w*perWorker+i), nil)
				if err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					idCh <- id
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for id := range idCh {
			g.RemoveEdge(id)
		}
	}()
	// Concurrent readers.
	stop := make(chan struct{})
	var qg sync.WaitGroup
	qg.Add(1)
	go func() {
		defer qg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ix.Count(Window{Since: 100, Until: 500})
				ix.EdgesIn(Window{Since: 0, Until: 50})
				ix.Span()
			}
		}
	}()
	wg.Wait()
	close(idCh)
	rg.Wait()
	close(stop)
	qg.Wait()

	if ix.Len() != g.NumEdges() {
		t.Fatalf("index %d edges, graph %d", ix.Len(), g.NumEdges())
	}
	for _, id := range ix.EdgesIn(All()) {
		if _, ok := g.Edge(id); !ok {
			t.Fatalf("index holds removed edge %d", id)
		}
	}
}

// TestIndexReverseChronologicalBackfill drives the worst case of the old
// insertion-sort path — every insert lands in front of everything already
// indexed — and checks reads still see a fully (ts, id)-ordered index. The
// live path appends and defers sorting to the next read, so this is also the
// correctness gate for the lazy per-stripe flush.
func TestIndexReverseChronologicalBackfill(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()

	const n = 500
	ids := make([]graph.EdgeID, n)
	for i := 0; i < n; i++ {
		id, err := g.AddEdgeFull(a, b, "acquired", 1, int64(n-i), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	got := ix.EdgesIn(All())
	if len(got) != n {
		t.Fatalf("EdgesIn = %d edges, want %d", len(got), n)
	}
	// Timestamps n..1 were inserted in reverse; sorted order is ids[n-1..0].
	for i, id := range got {
		if id != ids[n-1-i] {
			t.Fatalf("EdgesIn[%d] = %v, want %v", i, id, ids[n-1-i])
		}
	}
	if c := ix.Count(Window{Since: 1, Until: 11}); c != 10 {
		t.Fatalf("Count = %d, want 10", c)
	}
	min, max, ok := ix.Span()
	if !ok || min != 1 || max != int64(n) {
		t.Fatalf("Span = (%d, %d, %v)", min, max, ok)
	}
}

// TestIndexInterleavedOutOfOrderInsertAndRead alternates out-of-order writes
// with reads so every read finds a fresh unsorted tail to flush.
func TestIndexInterleavedOutOfOrderInsertAndRead(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()

	want := 0
	for i := 0; i < 100; i++ {
		ts := int64(1000 - i) // strictly decreasing: always out of order
		if _, err := g.AddEdgeFull(a, b, "acquired", 1, ts, nil); err != nil {
			t.Fatal(err)
		}
		want++
		if got := ix.Count(Window{Since: ts, Until: 2000}); got != want {
			t.Fatalf("after %d inserts Count = %d, want %d", want, got, want)
		}
	}
}

// TestIndexRemoveWithPendingTail removes an edge whose entry is still parked
// in the unsorted append tail; the removal must flush and splice correctly.
func TestIndexRemoveWithPendingTail(t *testing.T) {
	g := graph.New()
	a := g.AddVertex("Company")
	b := g.AddVertex("Company")
	ix := Attach(g)
	defer ix.Detach()

	var ids []graph.EdgeID
	for _, ts := range []int64{50, 10, 40, 20, 30} {
		id, err := g.AddEdgeFull(a, b, "acquired", 1, ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	g.RemoveEdge(ids[3]) // ts 20, never read since insertion
	if ix.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ix.Len())
	}
	if c := ix.Count(Window{Since: 15, Until: 25}); c != 0 {
		t.Fatalf("removed tail edge still counted (%d)", c)
	}
	in := ix.EdgesIn(All())
	if len(in) != 4 || in[0] != ids[1] || in[1] != ids[4] || in[2] != ids[2] || in[3] != ids[0] {
		t.Fatalf("EdgesIn after tail removal = %v", in)
	}
}
