package temporal

import (
	"math"
	"sort"
	"sync"
	"time"

	"nous/internal/graph"
)

// Timeless is the edge timestamp a zero provenance time maps to
// (time.Time{}.Unix(), year 1) — what curated facts carry. Span and Stats
// exclude timestamps at or before it so the reported span describes the
// dated stream, not the background substrate.
var Timeless = time.Time{}.Unix()

// histBucketSec is the width of one time-bucket of the selectivity
// histogram: one day. Wide enough that a year of stream holds ~365 buckets
// per stripe, narrow enough that the planner's window estimates stay within
// the 2× band the optimizer tests pin for day-or-wider windows.
const histBucketSec int64 = 86400

// histBucket maps a timestamp to its histogram bucket index with floor
// division, so pre-epoch timestamps land in well-ordered negative buckets
// instead of sharing bucket 0 with the first epoch day.
func histBucket(ts int64) int64 {
	b := ts / histBucketSec
	if ts%histBucketSec != 0 && ts < 0 {
		b--
	}
	return b
}

// entry is one indexed edge: its timestamp and ID. Entries within a shard
// are kept sorted by (ts, id).
type entry struct {
	ts int64
	id graph.EdgeID
}

// entryLess is the (ts, id) order every shard maintains.
func entryLess(a, b entry) bool {
	if a.ts != b.ts {
		return a.ts < b.ts
	}
	return a.id < b.id
}

// ishard is one lock stripe of the index. Edges are assigned to the stripe
// of their edge ID with the same mapping the graph's own shards use, so
// contention under concurrent ingestion spreads the same way.
//
// entries[:sorted] is in (ts, id) order; entries[sorted:] is an unsorted
// append tail. The live insert path only ever appends — in-order entries
// (the roughly-chronological stream) extend the sorted run for free, while
// out-of-order entries (reverse-chronological backfill) park in the tail and
// are merged in one batch sort at the next read. That keeps the work done
// under the writer's held shard lock O(1) instead of an O(stripe) memmove,
// which made historical bulk import quadratic.
type ishard struct {
	mu      sync.RWMutex
	entries []entry
	sorted  int
	byID    map[graph.EdgeID]int64 // id -> indexed timestamp, for removal
	// hist counts *dated* entries (ts > Timeless) per histBucketSec-wide
	// time bucket. It is maintained incrementally by insert/remove under
	// the shard lock — never derived from entries on read — which is what
	// lets EstimateIn answer window-selectivity questions in O(buckets
	// touched) instead of materializing a range.
	hist map[int64]int
}

// histAdd counts one dated timestamp into the bucket histogram. Timeless
// entries (the curated substrate) are not windowed reads' concern and are
// excluded, mirroring DatedIn/Span.
func (s *ishard) histAdd(ts int64) {
	if ts <= Timeless {
		return
	}
	s.hist[histBucket(ts)]++
}

// histSub removes one dated timestamp from the bucket histogram, deleting
// drained buckets so map size tracks the populated span, not history.
func (s *ishard) histSub(ts int64) {
	if ts <= Timeless {
		return
	}
	b := histBucket(ts)
	if c := s.hist[b]; c <= 1 {
		delete(s.hist, b)
	} else {
		s.hist[b] = c - 1
	}
}

// Index is a per-shard time-ordered edge index over one graph. It is kept in
// sync through the graph's mutation stream (Attach) and can be rebuilt from
// graph state after recovery, when restores bypass the mutation hooks. All
// methods are safe for concurrent use.
type Index struct {
	g      *graph.Graph
	shards []ishard
	detach func()
}

// Stats is a snapshot of the index for /api/stats.
type Stats struct {
	// Edges is the number of indexed edges, timeless ones included.
	Edges int `json:"edges"`
	// MinTimestamp/MaxTimestamp span the *dated* indexed timestamps —
	// edges whose provenance time was zero (the curated substrate) are
	// excluded. Both are 0 when no dated edge is indexed.
	MinTimestamp int64 `json:"min_timestamp"`
	MaxTimestamp int64 `json:"max_timestamp"`
}

// NewIndex builds an index of g's current edges without subscribing to
// future mutations. Most callers want Attach.
func NewIndex(g *graph.Graph) *Index {
	ix := &Index{g: g, shards: make([]ishard, graph.ShardCount())}
	for i := range ix.shards {
		ix.shards[i].byID = make(map[graph.EdgeID]int64)
		ix.shards[i].hist = make(map[int64]int)
	}
	ix.scan()
	return ix
}

// Attach builds an index of g's current edges and subscribes to the graph's
// mutation stream so every subsequent AddEdge/AddEdges/RemoveEdge keeps the
// index in sync. The hook is installed before the initial scan and inserts
// are idempotent, so edges added concurrently with the scan are indexed
// exactly once; attach before concurrent *removals* begin (the pipeline
// attaches at construction, ahead of ingestion). Call Detach to unsubscribe.
func Attach(g *graph.Graph) *Index {
	ix := &Index{g: g, shards: make([]ishard, graph.ShardCount())}
	for i := range ix.shards {
		ix.shards[i].byID = make(map[graph.EdgeID]int64)
		ix.shards[i].hist = make(map[int64]int)
	}
	ix.detach = g.AddMutationHook(ix.OnMutation)
	ix.scan()
	return ix
}

// Detach unsubscribes the index from the graph's mutation stream. The index
// remains readable but no longer tracks new writes.
func (ix *Index) Detach() {
	if ix.detach != nil {
		ix.detach()
		ix.detach = nil
	}
}

// Rebuild clears the index and re-scans the graph. Recovery calls it (via
// NewIndex/Attach) because snapshot loads and WAL replay restore edges
// without emitting mutations. The graph must be quiescent for the rebuild to
// be a consistent cut.
func (ix *Index) Rebuild() {
	for i := range ix.shards {
		s := &ix.shards[i]
		s.mu.Lock()
		s.entries = s.entries[:0]
		s.sorted = 0
		s.byID = make(map[graph.EdgeID]int64)
		s.hist = make(map[int64]int)
		s.mu.Unlock()
	}
	ix.scan()
}

// scan back-fills the index from the graph's current edges with one
// slab-native pass (graph.ScanEdges): no per-edge materialization, no
// ID-list sort — just the (timestamp, id) columns the index needs. Entries
// are bucketed per shard and each shard is sorted once — O(E log E) total —
// rather than insertion-sorted edge by edge, which would make recovery of a
// large graph quadratic. Edges the mutation hook indexed concurrently are
// deduplicated through byID.
func (ix *Index) scan() {
	buckets := make([][]entry, len(ix.shards))
	ix.g.ScanEdges(func(e *graph.EdgeScan) bool {
		si := int(uint64(e.ID) % uint64(len(ix.shards)))
		buckets[si] = append(buckets[si], entry{ts: e.Timestamp, id: e.ID})
		return true
	})
	for si, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		s := &ix.shards[si]
		s.mu.Lock()
		for _, en := range bucket {
			if _, dup := s.byID[en.id]; dup {
				continue
			}
			s.byID[en.id] = en.ts
			s.histAdd(en.ts)
			s.entries = append(s.entries, en)
		}
		s.flushLocked()
		s.mu.Unlock()
	}
}

// OnMutation consumes one graph mutation. Only edge insertions and removals
// move the index; property and weight updates do not change timestamps.
func (ix *Index) OnMutation(m graph.Mutation) {
	switch m.Kind {
	case graph.MutAddEdges:
		for i := range m.Edges {
			ix.insert(m.Edges[i].ID, m.Edges[i].Timestamp)
		}
	case graph.MutRemoveEdge:
		ix.remove(m.EdgeID)
	}
}

func (ix *Index) shardOf(id graph.EdgeID) *ishard {
	return &ix.shards[uint64(id)%uint64(len(ix.shards))]
}

// insert indexes one edge. Inserting an already-indexed ID is a no-op, which
// makes the attach-time scan idempotent against concurrently hooked inserts.
// The write is an O(1) append: in-order entries extend the sorted run, and
// out-of-order entries land in the unsorted tail flushed lazily by the next
// read — a reverse-chronological backfill of n edges costs one O(n log n)
// sort instead of n stripe-wide memmoves under the held lock.
func (ix *Index) insert(id graph.EdgeID, ts int64) {
	s := ix.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[id]; dup {
		return
	}
	s.byID[id] = ts
	s.histAdd(ts)
	en := entry{ts: ts, id: id}
	s.entries = append(s.entries, en)
	if s.sorted == len(s.entries)-1 && (s.sorted == 0 || !entryLess(en, s.entries[s.sorted-1])) {
		s.sorted = len(s.entries)
	}
}

// flushLocked merges the unsorted append tail into the sorted run. The tail
// is sorted on its own (t log t) and merged with the prefix in one linear
// pass; the caller holds the shard's write lock.
func (s *ishard) flushLocked() {
	if s.sorted == len(s.entries) {
		return
	}
	tail := s.entries[s.sorted:]
	sort.Slice(tail, func(i, j int) bool { return entryLess(tail[i], tail[j]) })
	if s.sorted > 0 {
		merged := make([]entry, 0, len(s.entries))
		i, j := 0, s.sorted
		for i < s.sorted && j < len(s.entries) {
			if entryLess(s.entries[j], s.entries[i]) {
				merged = append(merged, s.entries[j])
				j++
			} else {
				merged = append(merged, s.entries[i])
				i++
			}
		}
		merged = append(merged, s.entries[i:s.sorted]...)
		merged = append(merged, s.entries[j:]...)
		s.entries = merged
	}
	s.sorted = len(s.entries)
}

// view runs fn with the shard locked and its entries fully sorted. The fast
// path (no pending append tail) runs fn under the read lock so concurrent
// readers proceed in parallel; when a flush is needed, fn runs under the
// write lock taken to flush — re-downgrading to a read lock would open an
// unbounded retry loop against a steady out-of-order writer appending
// between the unlock and re-lock.
func (s *ishard) view(fn func()) {
	s.mu.RLock()
	if s.sorted == len(s.entries) {
		fn()
		s.mu.RUnlock()
		return
	}
	s.mu.RUnlock()
	s.mu.Lock()
	s.flushLocked()
	fn()
	s.mu.Unlock()
}

// remove drops one edge from the index. Removing an unindexed ID is a no-op.
func (ix *Index) remove(id graph.EdgeID) {
	s := ix.shardOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.byID[id]
	if !ok {
		return
	}
	delete(s.byID, id)
	s.histSub(ts)
	s.flushLocked()
	i := sort.Search(len(s.entries), func(i int) bool {
		e := s.entries[i]
		return e.ts > ts || (e.ts == ts && e.id >= id)
	})
	if i < len(s.entries) && s.entries[i].id == id {
		s.entries = append(s.entries[:i], s.entries[i+1:]...)
		s.sorted = len(s.entries)
	}
}

// Len returns the number of indexed edges.
func (ix *Index) Len() int {
	n := 0
	for i := range ix.shards {
		s := &ix.shards[i]
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// rangeOf returns the half-open entry range of w within a shard's sorted
// entries. The caller holds the shard's read lock with the tail flushed
// (view).
func (s *ishard) rangeOf(w Window) (lo, hi int) {
	if w.IsAll() {
		return 0, len(s.entries)
	}
	lo = sort.Search(len(s.entries), func(i int) bool { return s.entries[i].ts >= w.Since })
	hi = sort.Search(len(s.entries), func(i int) bool { return s.entries[i].ts >= w.Until })
	if hi < lo {
		// An empty/inverted window (e.g. a disjoint intersection) searches
		// to hi < lo; clamp so callers get an empty range, not a panic.
		hi = lo
	}
	return lo, hi
}

// Count returns the number of edges whose timestamp lies in w. It is a pure
// timestamp query — the curated-pass rule of Window.ContainsEdge applies to
// read views, not to the raw index.
func (ix *Index) Count(w Window) int {
	n := 0
	for i := range ix.shards {
		s := &ix.shards[i]
		s.view(func() {
			lo, hi := s.rangeOf(w)
			n += hi - lo
		})
	}
	return n
}

// EstimateIn estimates the number of *dated* edges whose timestamps lie in w
// from the per-stripe time-bucket histograms: full buckets contribute their
// exact counts, the two boundary buckets contribute a uniform fraction of
// theirs. The cost is O(buckets touched) per stripe — no entry range is
// materialized and no flush of the append tail is forced. Two properties the
// planner relies on:
//
//   - counts are exact per bucket, so the estimate is exactly 0 only when no
//     dated edge can lie in w (the proof TrendScan's skip rewrite needs);
//   - for windows a day or wider the boundary-fraction error is bounded by
//     the two edge buckets, keeping estimates within ~2× of Count.
//
// Timeless entries (the curated substrate) are excluded, mirroring DatedIn.
func (ix *Index) EstimateIn(w Window) float64 {
	if w.IsEmpty() {
		return 0
	}
	est := 0.0
	for i := range ix.shards {
		s := &ix.shards[i]
		s.mu.RLock()
		est += s.estimateLocked(w)
		s.mu.RUnlock()
	}
	return est
}

// estimateLocked sums w's overlap with one stripe's histogram. The caller
// holds the shard lock (read suffices: hist is never lazily rebuilt). When
// the window spans fewer buckets than the stripe has populated, the bucket
// indexes are walked directly; otherwise the populated buckets are.
func (s *ishard) estimateLocked(w Window) float64 {
	if len(s.hist) == 0 {
		return 0
	}
	if w.IsAll() {
		n := 0
		for _, c := range s.hist {
			n += c
		}
		return float64(n)
	}
	total := 0.0
	add := func(b int64, c int) {
		lo, hi := b*histBucketSec, (b+1)*histBucketSec
		if w.Since > lo {
			lo = w.Since
		}
		if w.Until < hi {
			hi = w.Until
		}
		if hi <= lo {
			return
		}
		total += float64(c) * float64(hi-lo) / float64(histBucketSec)
	}
	// Walk bucket indexes directly only for finite, narrow windows; the
	// half-bounded sentinels would overflow the index arithmetic.
	if w.Since != math.MinInt64 && w.Until != math.MaxInt64 {
		bLo, bHi := histBucket(w.Since), histBucket(w.Until-1)
		if span := bHi - bLo; span >= 0 && span+1 < int64(len(s.hist)) {
			for b := bLo; b <= bHi; b++ {
				if c, ok := s.hist[b]; ok {
					add(b, c)
				}
			}
			return total
		}
	}
	for b, c := range s.hist {
		add(b, c)
	}
	return total
}

// EdgesIn returns the IDs of edges whose timestamp lies in w, ordered by
// (timestamp, ID).
func (ix *Index) EdgesIn(w Window) []graph.EdgeID {
	var all []entry
	for i := range ix.shards {
		s := &ix.shards[i]
		s.view(func() {
			lo, hi := s.rangeOf(w)
			all = append(all, s.entries[lo:hi]...)
		})
	}
	sort.Slice(all, func(i, j int) bool { return entryLess(all[i], all[j]) })
	ids := make([]graph.EdgeID, len(all))
	for i, e := range all {
		ids[i] = e.id
	}
	return ids
}

// DatedIn is EdgesIn restricted to dated edges: entries at or before the
// timeless sentinel (zero provenance time, i.e. the curated substrate) are
// skipped via the same sorted-prefix search Span uses, so a window unbounded
// below never materializes the curated substrate. It is the right read for
// stream-shaped consumers (eviction, whole-stream scans) for which curated
// knowledge is timeless background, not part of the stream.
func (ix *Index) DatedIn(w Window) []graph.EdgeID {
	var all []entry
	for i := range ix.shards {
		s := &ix.shards[i]
		s.view(func() {
			lo, hi := s.rangeOf(w)
			if dated := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].ts > Timeless }); dated > lo {
				lo = dated
			}
			if lo < hi {
				all = append(all, s.entries[lo:hi]...)
			}
		})
	}
	sort.Slice(all, func(i, j int) bool { return entryLess(all[i], all[j]) })
	ids := make([]graph.EdgeID, len(all))
	for i, e := range all {
		ids[i] = e.id
	}
	return ids
}

// LatestIn returns the IDs of the newest k edges whose timestamps lie in w,
// ordered oldest-to-newest. Only the tail of each shard's in-window range
// is read — O(shards·(log n + k)) — which is what makes the index cheaper
// than a full edge scan for feed-style "what just happened" queries.
func (ix *Index) LatestIn(w Window, k int) []graph.EdgeID {
	if k <= 0 {
		return nil
	}
	var all []entry
	for i := range ix.shards {
		s := &ix.shards[i]
		s.view(func() {
			lo, hi := s.rangeOf(w)
			if hi-lo > k {
				lo = hi - k
			}
			all = append(all, s.entries[lo:hi]...)
		})
	}
	sort.Slice(all, func(i, j int) bool { return entryLess(all[i], all[j]) })
	if len(all) > k {
		all = all[len(all)-k:]
	}
	ids := make([]graph.EdgeID, len(all))
	for i, e := range all {
		ids[i] = e.id
	}
	return ids
}

// Span returns the minimum and maximum *dated* indexed timestamps — edges
// at or before the timeless sentinel (zero provenance time, i.e. the
// curated substrate) are skipped, so the span describes the stream. ok is
// false when no dated edge is indexed.
func (ix *Index) Span() (min, max int64, ok bool) {
	min, max = math.MaxInt64, math.MinInt64
	for i := range ix.shards {
		s := &ix.shards[i]
		s.view(func() {
			// Entries are sorted by timestamp; skip the timeless prefix.
			lo := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].ts > Timeless })
			if lo < len(s.entries) {
				ok = true
				if first := s.entries[lo].ts; first < min {
					min = first
				}
				if last := s.entries[len(s.entries)-1].ts; last > max {
					max = last
				}
			}
		})
	}
	if !ok {
		return 0, 0, false
	}
	return min, max, true
}

// Stats snapshots the index state.
func (ix *Index) Stats() Stats {
	st := Stats{Edges: ix.Len()}
	if min, max, ok := ix.Span(); ok {
		st.MinTimestamp, st.MaxTimestamp = min, max
	}
	return st
}
