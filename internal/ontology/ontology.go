// Package ontology defines the target ontology NOUS maps raw extracted
// triples onto: a set of typed predicates (with domain and range
// constraints) over a small type taxonomy with subsumption. The paper's
// pipeline maps OpenIE relation phrases to these predicates (§3.3); the
// curated KB (the YAGO2 stand-in) is expressed directly in this vocabulary.
package ontology

import (
	"fmt"
	"sort"
)

// EntityType names a node type in the taxonomy, e.g. "Company".
type EntityType string

// Common entity types. The taxonomy below relates them.
const (
	TypeAny          EntityType = "Any"
	TypeAgent        EntityType = "Agent"
	TypePerson       EntityType = "Person"
	TypeOrganization EntityType = "Organization"
	TypeCompany      EntityType = "Company"
	TypeAgency       EntityType = "Agency"
	TypeUniversity   EntityType = "University"
	TypeLocation     EntityType = "Location"
	TypeCity         EntityType = "City"
	TypeCountry      EntityType = "Country"
	TypeProduct      EntityType = "Product"
	TypeTechnology   EntityType = "Technology"
	TypeEvent        EntityType = "Event"
	TypePaper        EntityType = "Paper"
	TypeTopic        EntityType = "Topic"
	TypeResource     EntityType = "Resource" // files/hosts in the insider-threat domain
)

// Predicate is a typed relation in the target ontology.
type Predicate struct {
	Name   string
	Domain EntityType // subject type
	Range  EntityType // object type
	// Functional predicates admit at most one object per subject
	// (e.g. headquarteredIn); used as a quality-control rule.
	Functional bool
	// Symmetric predicates imply their own inverse (e.g. partnersWith).
	Symmetric bool
}

// Ontology is a set of predicates plus a type taxonomy.
type Ontology struct {
	predicates map[string]Predicate
	parent     map[EntityType]EntityType
}

// New returns an empty ontology with the default taxonomy.
func New() *Ontology {
	o := &Ontology{
		predicates: make(map[string]Predicate),
		parent:     make(map[EntityType]EntityType),
	}
	// default taxonomy
	o.AddType(TypeAgent, TypeAny)
	o.AddType(TypePerson, TypeAgent)
	o.AddType(TypeOrganization, TypeAgent)
	o.AddType(TypeCompany, TypeOrganization)
	o.AddType(TypeAgency, TypeOrganization)
	o.AddType(TypeUniversity, TypeOrganization)
	o.AddType(TypeLocation, TypeAny)
	o.AddType(TypeCity, TypeLocation)
	o.AddType(TypeCountry, TypeLocation)
	o.AddType(TypeProduct, TypeAny)
	o.AddType(TypeTechnology, TypeAny)
	o.AddType(TypeEvent, TypeAny)
	o.AddType(TypePaper, TypeAny)
	o.AddType(TypeTopic, TypeAny)
	o.AddType(TypeResource, TypeAny)
	return o
}

// Default returns the ontology used by the news/business-intelligence
// domain, covering the predicates the demo's drone use case needs, plus the
// citation-analytics and insider-threat domains from §3.1.
func Default() *Ontology {
	o := New()
	for _, p := range []Predicate{
		// business / drone domain
		{Name: "acquired", Domain: TypeCompany, Range: TypeCompany},
		{Name: "manufactures", Domain: TypeCompany, Range: TypeProduct},
		{Name: "develops", Domain: TypeCompany, Range: TypeTechnology},
		{Name: "headquarteredIn", Domain: TypeOrganization, Range: TypeLocation, Functional: true},
		{Name: "locatedIn", Domain: TypeLocation, Range: TypeLocation, Functional: true},
		{Name: "worksFor", Domain: TypePerson, Range: TypeOrganization},
		{Name: "ceoOf", Domain: TypePerson, Range: TypeCompany},
		{Name: "foundedBy", Domain: TypeCompany, Range: TypePerson},
		{Name: "invests", Domain: TypeAgent, Range: TypeCompany},
		{Name: "partnersWith", Domain: TypeOrganization, Range: TypeOrganization, Symmetric: true},
		{Name: "competesWith", Domain: TypeCompany, Range: TypeCompany, Symmetric: true},
		{Name: "suppliesTo", Domain: TypeCompany, Range: TypeCompany},
		{Name: "uses", Domain: TypeAgent, Range: TypeProduct},
		{Name: "deploys", Domain: TypeOrganization, Range: TypeProduct},
		{Name: "tests", Domain: TypeOrganization, Range: TypeProduct},
		{Name: "sells", Domain: TypeCompany, Range: TypeProduct},
		{Name: "regulates", Domain: TypeAgency, Range: TypeTechnology},
		{Name: "bans", Domain: TypeAgency, Range: TypeProduct},
		{Name: "approves", Domain: TypeAgency, Range: TypeProduct},
		{Name: "subsidiaryOf", Domain: TypeCompany, Range: TypeCompany, Functional: true},
		{Name: "ownerOf", Domain: TypeAgent, Range: TypeCompany},
		{Name: "type", Domain: TypeAny, Range: TypeTopic},
		{Name: "relatedTo", Domain: TypeAny, Range: TypeAny, Symmetric: true},
		// citation analytics
		{Name: "authorOf", Domain: TypePerson, Range: TypePaper},
		{Name: "cites", Domain: TypePaper, Range: TypePaper},
		{Name: "affiliatedWith", Domain: TypePerson, Range: TypeOrganization},
		{Name: "publishedAt", Domain: TypePaper, Range: TypeEvent},
		// insider threat
		{Name: "accessed", Domain: TypePerson, Range: TypeResource},
		{Name: "copiedTo", Domain: TypeResource, Range: TypeResource},
		{Name: "emailed", Domain: TypePerson, Range: TypePerson},
		{Name: "loggedInto", Domain: TypePerson, Range: TypeResource},
	} {
		if err := o.AddPredicate(p); err != nil {
			panic(err) // static predicate list: must be well-formed
		}
	}
	return o
}

// AddType registers child as a subtype of parent.
func (o *Ontology) AddType(child, parent EntityType) {
	o.parent[child] = parent
}

// AddPredicate registers a predicate. Domain and range types must exist in
// the taxonomy.
func (o *Ontology) AddPredicate(p Predicate) error {
	if p.Name == "" {
		return fmt.Errorf("ontology: predicate with empty name")
	}
	if !o.HasType(p.Domain) {
		return fmt.Errorf("ontology: predicate %q: unknown domain type %q", p.Name, p.Domain)
	}
	if !o.HasType(p.Range) {
		return fmt.Errorf("ontology: predicate %q: unknown range type %q", p.Name, p.Range)
	}
	o.predicates[p.Name] = p
	return nil
}

// HasType reports whether t is in the taxonomy.
func (o *Ontology) HasType(t EntityType) bool {
	if t == TypeAny {
		return true
	}
	_, ok := o.parent[t]
	return ok
}

// Predicate looks up a predicate by name.
func (o *Ontology) Predicate(name string) (Predicate, bool) {
	p, ok := o.predicates[name]
	return p, ok
}

// Predicates returns all predicate names, sorted.
func (o *Ontology) Predicates() []string {
	names := make([]string, 0, len(o.predicates))
	for n := range o.predicates {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsSubtype reports whether a is b or a descendant of b in the taxonomy.
func (o *Ontology) IsSubtype(a, b EntityType) bool {
	if b == TypeAny {
		return true
	}
	for t := a; ; {
		if t == b {
			return true
		}
		p, ok := o.parent[t]
		if !ok || p == t {
			return false
		}
		t = p
	}
}

// Compatible reports whether subject/object types satisfy the predicate's
// domain/range (with subsumption). Unknown predicates are incompatible.
func (o *Ontology) Compatible(pred string, subj, obj EntityType) bool {
	p, ok := o.predicates[pred]
	if !ok {
		return false
	}
	return o.IsSubtype(subj, p.Domain) && o.IsSubtype(obj, p.Range)
}

// CommonAncestor returns the most specific common ancestor of two types.
func (o *Ontology) CommonAncestor(a, b EntityType) EntityType {
	seen := map[EntityType]bool{}
	for t := a; ; {
		seen[t] = true
		p, ok := o.parent[t]
		if !ok || p == t {
			break
		}
		t = p
	}
	for t := b; ; {
		if seen[t] {
			return t
		}
		p, ok := o.parent[t]
		if !ok || p == t {
			break
		}
		t = p
	}
	return TypeAny
}
