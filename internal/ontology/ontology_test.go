package ontology

import "testing"

func TestDefaultOntologyWellFormed(t *testing.T) {
	o := Default()
	if len(o.Predicates()) < 20 {
		t.Fatalf("expected a rich default ontology, got %d predicates", len(o.Predicates()))
	}
	for _, name := range o.Predicates() {
		p, ok := o.Predicate(name)
		if !ok {
			t.Fatalf("Predicate(%q) missing", name)
		}
		if !o.HasType(p.Domain) || !o.HasType(p.Range) {
			t.Errorf("predicate %q has unknown types %q/%q", name, p.Domain, p.Range)
		}
	}
}

func TestSubtypeChain(t *testing.T) {
	o := Default()
	cases := []struct {
		a, b EntityType
		want bool
	}{
		{TypeCompany, TypeOrganization, true},
		{TypeCompany, TypeAgent, true},
		{TypeCompany, TypeAny, true},
		{TypeCompany, TypeCompany, true},
		{TypeOrganization, TypeCompany, false},
		{TypePerson, TypeOrganization, false},
		{TypeCity, TypeLocation, true},
		{TypeLocation, TypeAgent, false},
	}
	for _, c := range cases {
		if got := o.IsSubtype(c.a, c.b); got != c.want {
			t.Errorf("IsSubtype(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompatible(t *testing.T) {
	o := Default()
	cases := []struct {
		pred       string
		subj, obj  EntityType
		compatible bool
	}{
		{"acquired", TypeCompany, TypeCompany, true},
		{"acquired", TypePerson, TypeCompany, false},
		{"worksFor", TypePerson, TypeCompany, true}, // Company ⊑ Organization
		{"worksFor", TypeCompany, TypePerson, false},
		{"headquarteredIn", TypeCompany, TypeCity, true},
		{"nosuch", TypeCompany, TypeCompany, false},
		{"relatedTo", TypeEvent, TypePaper, true}, // Any/Any
	}
	for _, c := range cases {
		if got := o.Compatible(c.pred, c.subj, c.obj); got != c.compatible {
			t.Errorf("Compatible(%s,%s,%s) = %v, want %v", c.pred, c.subj, c.obj, got, c.compatible)
		}
	}
}

func TestAddPredicateValidation(t *testing.T) {
	o := New()
	if err := o.AddPredicate(Predicate{Name: "", Domain: TypeAny, Range: TypeAny}); err == nil {
		t.Error("empty name accepted")
	}
	if err := o.AddPredicate(Predicate{Name: "x", Domain: "Bogus", Range: TypeAny}); err == nil {
		t.Error("unknown domain accepted")
	}
	if err := o.AddPredicate(Predicate{Name: "x", Domain: TypeAny, Range: "Bogus"}); err == nil {
		t.Error("unknown range accepted")
	}
	if err := o.AddPredicate(Predicate{Name: "x", Domain: TypePerson, Range: TypeCompany}); err != nil {
		t.Errorf("valid predicate rejected: %v", err)
	}
}

func TestCommonAncestor(t *testing.T) {
	o := Default()
	cases := []struct {
		a, b, want EntityType
	}{
		{TypeCompany, TypeAgency, TypeOrganization},
		{TypeCompany, TypePerson, TypeAgent},
		{TypeCity, TypeCountry, TypeLocation},
		{TypeCompany, TypeCity, TypeAny},
		{TypeCompany, TypeCompany, TypeCompany},
	}
	for _, c := range cases {
		if got := o.CommonAncestor(c.a, c.b); got != c.want {
			t.Errorf("CommonAncestor(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestFunctionalAndSymmetricFlags(t *testing.T) {
	o := Default()
	hq, _ := o.Predicate("headquarteredIn")
	if !hq.Functional {
		t.Error("headquarteredIn should be functional")
	}
	pw, _ := o.Predicate("partnersWith")
	if !pw.Symmetric {
		t.Error("partnersWith should be symmetric")
	}
	acq, _ := o.Predicate("acquired")
	if acq.Functional || acq.Symmetric {
		t.Error("acquired should be neither functional nor symmetric")
	}
}
