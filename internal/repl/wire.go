// Package repl implements WAL-shipping replication for the NOUS knowledge
// graph: a leader streams its write-ahead log over HTTP and read replicas
// apply it through the graph's replicated-apply path, keeping every derived
// index (entity maps, temporal index, analytics epoch cache) live.
//
// The wire protocol reuses the WAL's on-disk record framing — a uint32
// little-endian length, a CRC-32C checksum, then the encoded mutation — so
// the leader ships stored bytes without re-encoding and the follower
// validates each frame with the same checksum the recovery path trusts. One
// extra record kind exists only on the wire: a progress record (kind byte 0,
// below every real mutation kind) carrying the leader's current epoch, sent
// when a stream opens and as a heartbeat while the follower is caught up.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nous/internal/persist"
)

// progressKind is the wire-only record kind for leader progress/heartbeat
// frames. Real mutation kinds start at 1, so the zero byte is free.
const progressKind = 0

// progressPayload encodes a progress record: kind byte 0 followed by the
// leader's epoch as a uvarint — the same [kind, epoch] prefix shape every
// WAL record carries, so RecordEpoch works on it too.
func progressPayload(epoch uint64) []byte {
	buf := make([]byte, 1, 1+binary.MaxVarintLen64)
	buf[0] = progressKind
	return binary.AppendUvarint(buf, epoch)
}

// isProgress reports whether a record payload is a wire progress record and,
// if so, the leader epoch it carries.
func isProgress(payload []byte) (uint64, bool) {
	if len(payload) == 0 || payload[0] != progressKind {
		return 0, false
	}
	e, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return 0, false
	}
	return e, true
}

// readFrame reads one length-prefixed, CRC-checked record from the stream.
// Any violation — short read, implausible length, checksum mismatch — is an
// error: unlike the disk tail, a torn wire frame means the connection is
// broken and the follower must reconnect.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var head [8]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(head[0:]))
	crc := binary.LittleEndian.Uint32(head[4:])
	if n > persist.MaxWALRecordSize {
		return nil, fmt.Errorf("repl: frame length %d exceeds record cap", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	if persist.RecordCRC(payload) != crc {
		return nil, fmt.Errorf("repl: frame checksum mismatch")
	}
	return payload, nil
}
