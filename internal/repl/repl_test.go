package repl

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"

	"nous/internal/core"
	"nous/internal/graph"
	"nous/internal/persist"
)

// newLeaderServer stands up a durable KG plus a minimal HTTP front for the
// two replication endpoints, without depending on the full server package.
func newLeaderServer(t *testing.T) (*core.KG, *Leader, *httptest.Server) {
	t.Helper()
	kg := core.NewKG(nil)
	st, err := persist.Open(t.TempDir(), kg.Graph(), persist.Options{
		DisableAutoCheckpoint: true, FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	l := NewLeader(kg.Graph(), st)
	l.Poll = 5 * time.Millisecond
	l.Heartbeat = 20 * time.Millisecond
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		path, _, err := l.SnapshotPath()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		http.ServeFile(w, r, path)
	})
	mux.HandleFunc("GET /api/v1/wal", func(w http.ResponseWriter, r *http.Request) {
		from, _ := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		if err := l.StreamWAL(r.Context(), from, w); err == ErrBelowFloor {
			http.Error(w, err.Error(), http.StatusGone)
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return kg, l, srv
}

func addFact(t *testing.T, kg *core.KG, subj, obj string, ts int64) {
	t.Helper()
	if _, err := kg.AddFact(core.Triple{
		Subject: subj, Predicate: "partnersWith", Object: obj,
		Confidence: 0.8,
		Provenance: core.Provenance{Source: "t", Time: time.Unix(ts, 0)},
	}); err != nil {
		t.Fatal(err)
	}
}

func waitConverged(t *testing.T, f *Follower, leader *core.KG) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f.Status().AppliedEpoch == leader.Graph().Epoch() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never converged: applied=%d leader=%d",
		f.Status().AppliedEpoch, leader.Graph().Epoch())
}

// TestFollowerBootstrapAndTail: a follower starting from nothing catches up
// to a leader's pre-existing state, then tracks live writes.
func TestFollowerBootstrapAndTail(t *testing.T) {
	leaderKG, _, srv := newLeaderServer(t)
	addFact(t, leaderKG, "acme corp", "globex", 100)
	addFact(t, leaderKG, "globex", "initech", 200)

	fkg := core.NewKG(nil)
	f := NewFollower(srv.URL, fkg)
	f.MinBackoff = 5 * time.Millisecond
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()
	waitConverged(t, f, leaderKG)

	// Live writes after the stream is up.
	addFact(t, leaderKG, "initech", "acme corp", 300)
	waitConverged(t, f, leaderKG)

	if got, want := fkg.NumFacts(), leaderKG.NumFacts(); got != want {
		t.Fatalf("follower facts = %d, want %d", got, want)
	}
	if got, want := fkg.Entities(), leaderKG.Entities(); !reflect.DeepEqual(got, want) {
		t.Fatalf("entities = %v, want %v", got, want)
	}
	st := f.Status()
	if !st.Connected || st.Lag != 0 || st.LastError != "" {
		t.Fatalf("status = %+v, want connected, lag 0, no error", st)
	}
}

// TestFollowerReconnects: killing the stream mid-flight makes the follower
// resume from its applied epoch and converge.
func TestFollowerReconnects(t *testing.T) {
	leaderKG, _, srv := newLeaderServer(t)
	addFact(t, leaderKG, "acme corp", "globex", 100)

	fkg := core.NewKG(nil)
	f := NewFollower(srv.URL, fkg)
	f.MinBackoff = 5 * time.Millisecond
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()
	waitConverged(t, f, leaderKG)

	// Drop every open connection; the server keeps listening.
	srv.CloseClientConnections()
	addFact(t, leaderKG, "globex", "initech", 200)
	waitConverged(t, f, leaderKG)
	if got, want := fkg.NumFacts(), leaderKG.NumFacts(); got != want {
		t.Fatalf("facts after reconnect = %d, want %d", got, want)
	}
}

// TestFollowerSnapshotRollWhileTailing: checkpoints (and the pruning they
// trigger) on the leader must not disturb a connected follower.
func TestFollowerSnapshotRollWhileTailing(t *testing.T) {
	leaderKG, l, srv := newLeaderServer(t)
	addFact(t, leaderKG, "acme corp", "globex", 100)

	fkg := core.NewKG(nil)
	f := NewFollower(srv.URL, fkg)
	f.MinBackoff = 5 * time.Millisecond
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()
	waitConverged(t, f, leaderKG)

	for i := 0; i < 4; i++ {
		addFact(t, leaderKG, "globex", "initech", int64(200+i))
		if err := l.st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		waitConverged(t, f, leaderKG)
	}
	if got, want := fkg.NumFacts(), leaderKG.NumFacts(); got != want {
		t.Fatalf("facts across snapshot rolls = %d, want %d", got, want)
	}
}

// TestStreamResumeSkipsApplied: a resumed stream must not redeliver records
// at or below the follower's applied epoch.
func TestStreamResumeSkipsApplied(t *testing.T) {
	leaderKG, _, srv := newLeaderServer(t)
	addFact(t, leaderKG, "acme corp", "globex", 100)

	fkg := core.NewKG(nil)
	f := NewFollower(srv.URL, fkg)
	f.MinBackoff = time.Millisecond
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.Start()
	waitConverged(t, f, leaderKG)
	f.Close()
	resumeEpoch := f.Status().AppliedEpoch

	// Reconnect from the applied epoch: records at or below it are filtered
	// server-side, so only genuinely new epochs arrive.
	var applied []uint64
	f.OnApply = func(m graph.Mutation) { applied = append(applied, m.Epoch) }
	f.Start()
	addFact(t, leaderKG, "globex", "initech", 200)
	waitConverged(t, f, leaderKG)
	f.Close() // stop the stream goroutine before reading its output
	for _, e := range applied {
		if e <= resumeEpoch {
			t.Fatalf("record with epoch %d redelivered at or below resume epoch %d", e, resumeEpoch)
		}
	}
	if len(applied) == 0 {
		t.Fatal("no new records applied after resume")
	}
}
