package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"nous/internal/graph"
	"nous/internal/persist"
)

// ErrBelowFloor is returned by Leader.StreamWAL when the requested resume
// epoch predates the oldest retained WAL: the records between the request
// and the floor have been pruned under a snapshot, so the follower must
// re-bootstrap from a snapshot instead of tailing. The server maps it to
// 410 Gone.
var ErrBelowFloor = errors.New("repl: requested epoch predates the retained WAL")

// Leader serves a store's WAL and snapshots to followers. Streaming is a
// pure disk read (each stream owns an independent cursor over the segment
// files), so follower fan-out costs the leader's write path nothing.
type Leader struct {
	g  *graph.Graph
	st *persist.Store

	// Poll is how often a caught-up stream re-checks the disk tail;
	// Heartbeat is how often it emits a progress record while idle.
	Poll      time.Duration
	Heartbeat time.Duration

	// snapMu serializes checkpoint-on-demand when a bootstrap request finds
	// no snapshot yet.
	snapMu sync.Mutex
}

// NewLeader builds a leader over the graph and its durable store.
func NewLeader(g *graph.Graph, st *persist.Store) *Leader {
	return &Leader{g: g, st: st, Poll: 50 * time.Millisecond, Heartbeat: time.Second}
}

// Epoch returns the leader's current mutation epoch.
func (l *Leader) Epoch() uint64 { return l.g.Epoch() }

// Floor returns the oldest epoch still resumable from the retained WAL (the
// oldest snapshot's epoch); ok is false when nothing has been checkpointed,
// in which case the WAL reaches back to epoch 0.
func (l *Leader) Floor() (uint64, bool, error) {
	return persist.FloorEpoch(l.st.Dir())
}

// SnapshotPath returns the newest snapshot's file path and epoch for a
// bootstrap download, forcing a checkpoint when none exists yet.
func (l *Leader) SnapshotPath() (string, uint64, error) {
	path, epoch, ok, err := persist.NewestSnapshot(l.st.Dir())
	if err != nil {
		return "", 0, err
	}
	if ok {
		return path, epoch, nil
	}
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	// Re-check under the lock: a concurrent bootstrap may have forced one.
	path, epoch, ok, err = persist.NewestSnapshot(l.st.Dir())
	if err != nil || ok {
		return path, epoch, err
	}
	if err := l.st.Checkpoint(); err != nil {
		return "", 0, fmt.Errorf("repl: checkpoint for bootstrap: %w", err)
	}
	path, epoch, ok, err = persist.NewestSnapshot(l.st.Dir())
	if err != nil {
		return "", 0, err
	}
	if !ok {
		return "", 0, errors.New("repl: checkpoint produced no snapshot")
	}
	return path, epoch, nil
}

// StreamWAL streams every WAL record with epoch > from to w, then tails the
// live segment until ctx ends, emitting heartbeat progress records while
// caught up. It returns ErrBelowFloor when from predates the retained WAL,
// and nil when the stream ends cleanly (context done, or the WAL was pruned
// mid-stream — the follower's reconnect resolves which).
func (l *Leader) StreamWAL(ctx context.Context, from uint64, w io.Writer) error {
	if floor, ok, err := l.Floor(); err != nil {
		return err
	} else if ok && from < floor {
		return ErrBelowFloor
	}
	cur, err := persist.OpenWALCursor(l.st.Dir())
	if err != nil {
		return err
	}
	defer cur.Close()

	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	write := func(payload []byte) error {
		_, err := w.Write(persist.AppendFrame(nil, payload))
		return err
	}

	// Open with a progress record so the follower learns the leader's epoch
	// (and its own lag) before the backlog finishes streaming.
	if err := write(progressPayload(l.g.Epoch())); err != nil {
		return nil
	}
	flush()

	lastBeat := time.Now()
	synced := false // whether we already flushed the store at this tail
	for {
		if ctx.Err() != nil {
			return nil
		}
		payload, err := cur.Next()
		switch {
		case err == nil:
			synced = false
			epoch, eerr := persist.RecordEpoch(payload)
			if eerr != nil {
				return eerr
			}
			if epoch <= from {
				continue // the follower already holds this record
			}
			if err := write(payload); err != nil {
				return nil // client went away
			}
		case errors.Is(err, persist.ErrCaughtUp):
			if !synced {
				// Records may be sitting in the store's group-commit buffer;
				// push them to disk once per tail visit, then re-read.
				if serr := l.st.Sync(); serr != nil {
					return serr
				}
				synced = true
				flush()
				continue
			}
			if time.Since(lastBeat) >= l.Heartbeat {
				if err := write(progressPayload(l.g.Epoch())); err != nil {
					return nil
				}
				flush()
				lastBeat = time.Now()
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(l.Poll):
			}
			synced = false
		case errors.Is(err, persist.ErrSegmentGap):
			// Pruning removed the cursor's next segment. End the stream: on
			// reconnect the floor check decides between resume and
			// re-bootstrap.
			return nil
		default:
			return err
		}
	}
}
