package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"nous/internal/core"
	"nous/internal/graph"
	"nous/internal/persist"
)

// Status is a point-in-time view of a follower's replication state.
type Status struct {
	// LeaderURL is the base URL of the leader being followed.
	LeaderURL string `json:"leader_url"`
	// LeaderEpoch is the newest epoch the leader has reported (via data
	// records or heartbeats).
	LeaderEpoch uint64 `json:"leader_epoch"`
	// AppliedEpoch is the newest epoch applied locally.
	AppliedEpoch uint64 `json:"applied_epoch"`
	// Lag is LeaderEpoch - AppliedEpoch: the number of leader mutations not
	// yet applied here.
	Lag uint64 `json:"lag"`
	// Connected reports whether a WAL stream is currently open.
	Connected bool `json:"connected"`
	// Reconnects counts stream re-establishments after the first.
	Reconnects uint64 `json:"reconnects"`
	// LastError is the most recent stream error, empty when healthy.
	LastError string `json:"last_error,omitempty"`
}

// Follower bootstraps a KG from a leader's snapshot and keeps it converged
// by tailing the leader's WAL. The follower's KG is in-memory: a restart
// re-bootstraps from the leader rather than from local disk.
type Follower struct {
	url    string
	kg     *core.KG
	client *http.Client

	// MinBackoff and MaxBackoff bound the exponential reconnect delay.
	MinBackoff time.Duration
	MaxBackoff time.Duration

	// OnApply, when set before Start, is invoked after each replicated
	// mutation is applied (outside the KG lock). Used to advance the
	// follower pipeline's clock from replicated edge timestamps.
	OnApply func(m graph.Mutation)

	mu     sync.Mutex
	st     Status
	cancel context.CancelFunc
	done   chan struct{}
}

// NewFollower builds a follower applying the leader's stream to kg. The URL
// is the leader server's base, e.g. "http://leader:8080".
func NewFollower(leaderURL string, kg *core.KG) *Follower {
	return &Follower{
		url:        leaderURL,
		kg:         kg,
		client:     &http.Client{},
		MinBackoff: 100 * time.Millisecond,
		MaxBackoff: 5 * time.Second,
	}
}

// Status returns the follower's current replication state.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.st
	st.LeaderURL = f.url
	if st.LeaderEpoch > st.AppliedEpoch {
		st.Lag = st.LeaderEpoch - st.AppliedEpoch
	} else {
		st.Lag = 0
	}
	return st
}

// Bootstrap downloads the leader's newest snapshot, restores it through the
// bulk-restore paths and rebuilds the KG's index layer. The KG must be
// fresh. After Bootstrap the follower's applied epoch is the snapshot's.
func (f *Follower) Bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.url+"/api/v1/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: snapshot fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: snapshot fetch: leader returned %s", resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: snapshot download: %w", err)
	}
	epoch, err := persist.RestoreSnapshotBytes(f.kg.Graph(), raw)
	if err != nil {
		return err
	}
	if err := f.kg.Rebuild(); err != nil {
		return err
	}
	f.mu.Lock()
	f.st.AppliedEpoch = epoch
	if epoch > f.st.LeaderEpoch {
		f.st.LeaderEpoch = epoch
	}
	f.mu.Unlock()
	return nil
}

// Start launches the tailing loop in a goroutine. Close stops it.
func (f *Follower) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	f.done = make(chan struct{})
	go f.run(ctx)
}

// Close stops the tailing loop and waits for it to exit.
func (f *Follower) Close() {
	if f.cancel != nil {
		f.cancel()
		<-f.done
		f.cancel = nil
	}
}

// run is the reconnect loop: tail until the stream breaks, back off
// exponentially (reset after any productive stream), repeat.
func (f *Follower) run(ctx context.Context) {
	defer close(f.done)
	backoff := f.MinBackoff
	for ctx.Err() == nil {
		n, err := f.tail(ctx)
		f.mu.Lock()
		f.st.Connected = false
		if err != nil && ctx.Err() == nil {
			f.st.LastError = err.Error()
		}
		f.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		if n > 0 {
			backoff = f.MinBackoff
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > f.MaxBackoff {
			backoff = f.MaxBackoff
		}
		f.mu.Lock()
		f.st.Reconnects++
		f.mu.Unlock()
	}
}

// tail opens one WAL stream from the current applied epoch and applies
// frames until the stream ends, returning how many records it applied.
func (f *Follower) tail(ctx context.Context) (int, error) {
	f.mu.Lock()
	from := f.st.AppliedEpoch
	f.mu.Unlock()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/wal?from=%d", f.url, from), nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// Our resume point predates the leader's retained WAL. A follower
		// that never applied anything can bootstrap from a snapshot; one
		// with live state cannot safely re-seed in place, so it reports the
		// condition and keeps retrying (the gap may close if the leader's
		// floor was transientively wrong, and the operator can restart the
		// follower to force a fresh bootstrap).
		if f.kg.NumEntities() == 0 && from == 0 {
			if err := f.Bootstrap(ctx); err != nil {
				return 0, err
			}
			return 1, nil // made progress; retry immediately
		}
		return 0, fmt.Errorf("repl: leader pruned past our applied epoch %d; restart follower to re-bootstrap", from)
	default:
		return 0, fmt.Errorf("repl: wal stream: leader returned %s", resp.Status)
	}

	f.mu.Lock()
	f.st.Connected = true
	f.st.LastError = ""
	f.mu.Unlock()

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	applied := 0
	for {
		payload, err := readFrame(br)
		if err != nil {
			if err == io.EOF || ctx.Err() != nil {
				return applied, nil // clean end of stream
			}
			return applied, err
		}
		if epoch, ok := isProgress(payload); ok {
			f.mu.Lock()
			if epoch > f.st.LeaderEpoch {
				f.st.LeaderEpoch = epoch
			}
			f.mu.Unlock()
			continue
		}
		m, err := persist.DecodeRecord(payload)
		if err != nil {
			return applied, err
		}
		if err := f.kg.ApplyReplicated(m); err != nil {
			return applied, err
		}
		applied++
		f.mu.Lock()
		if m.Epoch > f.st.AppliedEpoch {
			f.st.AppliedEpoch = m.Epoch
		}
		if m.Epoch > f.st.LeaderEpoch {
			f.st.LeaderEpoch = m.Epoch
		}
		f.mu.Unlock()
		if f.OnApply != nil {
			f.OnApply(m)
		}
	}
}
