package topics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoTopicCorpus builds documents drawn from two disjoint vocabularies:
// "aviation" docs and "finance" docs. A 2-topic LDA should separate them.
func twoTopicCorpus(n int, seed int64) ([][]string, []int) {
	aviation := []string{"drone", "flight", "camera", "aerial", "rotor", "gimbal", "airspace", "pilot"}
	finance := []string{"fund", "stock", "capital", "equity", "dividend", "portfolio", "bond", "yield"}
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]string, n)
	labels := make([]int, n)
	for i := range docs {
		var vocab []string
		if i%2 == 0 {
			vocab = aviation
			labels[i] = 0
		} else {
			vocab = finance
			labels[i] = 1
		}
		L := 20 + rng.Intn(10)
		doc := make([]string, L)
		for j := range doc {
			doc[j] = vocab[rng.Intn(len(vocab))]
		}
		docs[i] = doc
	}
	return docs, labels
}

func TestThetaSumsToOne(t *testing.T) {
	docs, _ := twoTopicCorpus(20, 1)
	m := Fit(docs, DefaultConfig(4))
	for d := 0; d < m.NumDocs(); d++ {
		sum := 0.0
		for _, p := range m.DocTopics(d) {
			if p < 0 {
				t.Fatalf("negative topic probability in doc %d", d)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d theta sums to %v", d, sum)
		}
	}
}

func TestSeparatesTwoTopics(t *testing.T) {
	docs, labels := twoTopicCorpus(40, 2)
	cfg := DefaultConfig(2)
	m := Fit(docs, cfg)

	// Within-class JS divergence must be smaller than between-class.
	var within, between []float64
	for i := 0; i < len(docs); i++ {
		for j := i + 1; j < len(docs); j++ {
			d := JSDivergence(m.DocTopics(i), m.DocTopics(j))
			if labels[i] == labels[j] {
				within = append(within, d)
			} else {
				between = append(between, d)
			}
		}
	}
	if mean(within) >= mean(between) {
		t.Fatalf("LDA failed to separate: within %.4f >= between %.4f", mean(within), mean(between))
	}
}

func TestTopicWordsDisjointVocabularies(t *testing.T) {
	docs, _ := twoTopicCorpus(40, 3)
	m := Fit(docs, DefaultConfig(2))
	top0 := m.TopicWords(0, 5)
	top1 := m.TopicWords(1, 5)
	if len(top0) == 0 || len(top1) == 0 {
		t.Fatal("empty topic words")
	}
	// The top words of the two topics should not overlap for disjoint
	// vocabularies.
	set := map[string]bool{}
	for _, w := range top0 {
		set[w] = true
	}
	overlap := 0
	for _, w := range top1 {
		if set[w] {
			overlap++
		}
	}
	if overlap > 1 {
		t.Fatalf("topics overlap heavily: %v vs %v", top0, top1)
	}
}

func TestInferDocMatchesTraining(t *testing.T) {
	docs, _ := twoTopicCorpus(40, 4)
	m := Fit(docs, DefaultConfig(2))
	aviationTheta := m.InferDoc([]string{"drone", "flight", "aerial", "rotor", "camera", "pilot"}, 50, 9)
	financeTheta := m.InferDoc([]string{"fund", "stock", "equity", "bond", "capital"}, 50, 9)
	if JSDivergence(aviationTheta, financeTheta) < 0.05 {
		t.Fatalf("inferred thetas not separated: %v vs %v", aviationTheta, financeTheta)
	}
	// The inferred aviation doc must be closer to a training aviation doc
	// than to a finance doc.
	av, fin := m.DocTopics(0), m.DocTopics(1)
	if JSDivergence(aviationTheta, av) >= JSDivergence(aviationTheta, fin) {
		t.Fatal("inferred aviation doc closer to finance docs")
	}
}

func TestEmptyAndUnknownDocs(t *testing.T) {
	docs, _ := twoTopicCorpus(10, 5)
	docs = append(docs, nil) // empty doc
	m := Fit(docs, DefaultConfig(3))
	theta := m.DocTopics(len(docs) - 1)
	for _, p := range theta {
		if math.Abs(p-1.0/3.0) > 1e-9 {
			t.Fatalf("empty doc theta not uniform: %v", theta)
		}
	}
	inferred := m.InferDoc([]string{"neverseen", "words"}, 20, 1)
	for _, p := range inferred {
		if math.Abs(p-1.0/3.0) > 1e-9 {
			t.Fatalf("unknown-vocab doc not uniform: %v", inferred)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	docs, _ := twoTopicCorpus(15, 6)
	a := Fit(docs, DefaultConfig(3))
	b := Fit(docs, DefaultConfig(3))
	for d := 0; d < a.NumDocs(); d++ {
		ta, tb := a.DocTopics(d), b.DocTopics(d)
		for k := range ta {
			if ta[k] != tb[k] {
				t.Fatalf("same seed, different theta at doc %d", d)
			}
		}
	}
}

func TestJSDivergenceProperties(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.9, 0.1}
	if d := JSDivergence(p, p); d > 1e-12 {
		t.Errorf("JS(p,p) = %v", d)
	}
	if d1, d2 := JSDivergence(p, q), JSDivergence(q, p); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("JS not symmetric: %v vs %v", d1, d2)
	}
	if d := JSDivergence([]float64{1, 0}, []float64{0, 1}); d > math.Log(2)+1e-9 {
		t.Errorf("JS exceeded ln2: %v", d)
	}
}

// Property: JS divergence of random distributions is within [0, ln2].
func TestJSDivergenceBoundsQuick(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := normalize([]float64{float64(a) + 1, float64(b) + 1})
		q := normalize([]float64{float64(c) + 1, float64(d) + 1})
		js := JSDivergence(p, q)
		return js >= 0 && js <= math.Log(2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJSDivergenceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	JSDivergence([]float64{1}, []float64{0.5, 0.5})
}

func normalize(v []float64) []float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	for i := range v {
		v[i] /= s
	}
	return v
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func BenchmarkFitLDA(b *testing.B) {
	docs, _ := twoTopicCorpus(100, 7)
	cfg := DefaultConfig(8)
	cfg.Iters = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fit(docs, cfg)
	}
}
