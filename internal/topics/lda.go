// Package topics implements Latent Dirichlet Allocation via collapsed Gibbs
// sampling, plus the Jensen–Shannon divergence used to compare topic
// distributions. NOUS (§3.6) assigns a topic distribution to every entity by
// running LDA over "document-term" matrices built from per-entity text; the
// path-search look-ahead then steers toward nodes whose topics diverge least
// from the target's.
package topics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls LDA fitting.
type Config struct {
	K     int     // number of topics
	Alpha float64 // document-topic Dirichlet prior
	Beta  float64 // topic-word Dirichlet prior
	Iters int     // Gibbs sweeps
	Seed  int64
}

// DefaultConfig returns a sensible small-corpus configuration. The sparse
// document-topic prior (α = 0.2) matters: entity profile documents are
// short, and the textbook α = 50/K would swamp their counts.
func DefaultConfig(k int) Config {
	return Config{K: k, Alpha: 0.2, Beta: 0.01, Iters: 150, Seed: 1}
}

// Model is a fitted LDA model.
type Model struct {
	cfg   Config
	vocab map[string]int
	words []string // index -> word

	// counters from the final Gibbs state
	docTopic  [][]int // d -> k
	topicWord [][]int // k -> w
	topicSum  []int   // k
	docLen    []int
	assign    [][]int // d -> position -> topic
	docs      [][]int // d -> position -> word index
}

// Fit runs collapsed Gibbs sampling over the documents (bags of words).
// Empty documents are allowed and receive the uniform distribution.
func Fit(docs [][]string, cfg Config) *Model {
	if cfg.K <= 0 {
		cfg.K = 8
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 100
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.2
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 0.01
	}
	m := &Model{cfg: cfg, vocab: make(map[string]int)}
	m.docs = make([][]int, len(docs))
	for d, doc := range docs {
		ids := make([]int, 0, len(doc))
		for _, w := range doc {
			id, ok := m.vocab[w]
			if !ok {
				id = len(m.words)
				m.vocab[w] = id
				m.words = append(m.words, w)
			}
			ids = append(ids, id)
		}
		m.docs[d] = ids
	}
	V := len(m.words)
	K := cfg.K
	m.docTopic = makeInts(len(docs), K)
	m.topicWord = makeInts(K, V)
	m.topicSum = make([]int, K)
	m.docLen = make([]int, len(docs))
	m.assign = make([][]int, len(docs))

	rng := rand.New(rand.NewSource(cfg.Seed))
	for d, ids := range m.docs {
		m.assign[d] = make([]int, len(ids))
		m.docLen[d] = len(ids)
		for i, w := range ids {
			k := rng.Intn(K)
			m.assign[d][i] = k
			m.docTopic[d][k]++
			m.topicWord[k][w]++
			m.topicSum[k]++
		}
	}

	probs := make([]float64, K)
	for it := 0; it < cfg.Iters; it++ {
		for d, ids := range m.docs {
			for i, w := range ids {
				old := m.assign[d][i]
				m.docTopic[d][old]--
				m.topicWord[old][w]--
				m.topicSum[old]--

				total := 0.0
				for k := 0; k < K; k++ {
					p := (float64(m.docTopic[d][k]) + cfg.Alpha) *
						(float64(m.topicWord[k][w]) + cfg.Beta) /
						(float64(m.topicSum[k]) + cfg.Beta*float64(V))
					probs[k] = p
					total += p
				}
				u := rng.Float64() * total
				next := 0
				for acc := probs[0]; acc < u && next < K-1; {
					next++
					acc += probs[next]
				}
				m.assign[d][i] = next
				m.docTopic[d][next]++
				m.topicWord[next][w]++
				m.topicSum[next]++
			}
		}
	}
	return m
}

// K returns the topic count.
func (m *Model) K() int { return m.cfg.K }

// NumDocs returns the number of training documents.
func (m *Model) NumDocs() int { return len(m.docs) }

// VocabSize returns the vocabulary size.
func (m *Model) VocabSize() int { return len(m.words) }

// DocTopics returns the smoothed topic distribution θ_d of training
// document d. Empty documents get the uniform distribution.
func (m *Model) DocTopics(d int) []float64 {
	K := m.cfg.K
	out := make([]float64, K)
	if d < 0 || d >= len(m.docs) {
		for k := range out {
			out[k] = 1.0 / float64(K)
		}
		return out
	}
	denom := float64(m.docLen[d]) + m.cfg.Alpha*float64(K)
	for k := 0; k < K; k++ {
		out[k] = (float64(m.docTopic[d][k]) + m.cfg.Alpha) / denom
	}
	return out
}

// TopicWords returns the n highest-probability words of topic k.
func (m *Model) TopicWords(k, n int) []string {
	if k < 0 || k >= m.cfg.K {
		return nil
	}
	type wc struct {
		w string
		c int
	}
	all := make([]wc, 0, len(m.words))
	for w, c := range m.topicWord[k] {
		if c > 0 {
			all = append(all, wc{m.words[w], c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}

// InferDoc folds a new document into the fitted model with a short Gibbs
// chain over the document's assignments (topic-word counters frozen) and
// returns its topic distribution.
func (m *Model) InferDoc(doc []string, iters int, seed int64) []float64 {
	K := m.cfg.K
	var ids []int
	for _, w := range doc {
		if id, ok := m.vocab[w]; ok {
			ids = append(ids, id)
		}
	}
	out := make([]float64, K)
	if len(ids) == 0 {
		for k := range out {
			out[k] = 1.0 / float64(K)
		}
		return out
	}
	if iters <= 0 {
		iters = 30
	}
	rng := rand.New(rand.NewSource(seed))
	V := float64(len(m.words))
	counts := make([]int, K)
	assign := make([]int, len(ids))
	for i := range ids {
		k := rng.Intn(K)
		assign[i] = k
		counts[k]++
	}
	probs := make([]float64, K)
	for it := 0; it < iters; it++ {
		for i, w := range ids {
			old := assign[i]
			counts[old]--
			total := 0.0
			for k := 0; k < K; k++ {
				p := (float64(counts[k]) + m.cfg.Alpha) *
					(float64(m.topicWord[k][w]) + m.cfg.Beta) /
					(float64(m.topicSum[k]) + m.cfg.Beta*V)
				probs[k] = p
				total += p
			}
			u := rng.Float64() * total
			next := 0
			for acc := probs[0]; acc < u && next < K-1; {
				next++
				acc += probs[next]
			}
			assign[i] = next
			counts[next]++
		}
	}
	denom := float64(len(ids)) + m.cfg.Alpha*float64(K)
	for k := 0; k < K; k++ {
		out[k] = (float64(counts[k]) + m.cfg.Alpha) / denom
	}
	return out
}

// JSDivergence is the Jensen–Shannon divergence between two distributions
// (symmetric, bounded by ln 2). Mismatched lengths panic: that is a caller
// bug, not a data condition.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("topics: JSDivergence length mismatch %d vs %d", len(p), len(q)))
	}
	kl := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			if a[i] > 0 && b[i] > 0 {
				s += a[i] * math.Log(a[i]/b[i])
			}
		}
		return s
	}
	mid := make([]float64, len(p))
	for i := range p {
		mid[i] = (p[i] + q[i]) / 2
	}
	return kl(p, mid)/2 + kl(q, mid)/2
}

func makeInts(a, b int) [][]int {
	out := make([][]int, a)
	flat := make([]int, a*b)
	for i := range out {
		out[i], flat = flat[:b], flat[b:]
	}
	return out
}
