package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nous/internal/core"
	"nous/internal/ontology"
)

// The paper (§3.1) lists three deployment domains for NOUS: business
// intelligence from news, insider-threat detection from enterprise logs, and
// citation analytics from bibliography databases. GenerateCitationWorld and
// GenerateInsiderWorld build the latter two as event streams in the shared
// ontology, so the same pipeline, miner and query layer run unchanged.

// GenerateCitationWorld builds a citation-analytics domain: authors,
// papers, venues and institutions with authorship/citation events over time.
func GenerateCitationWorld(seed int64, authors, papers int) *World {
	rng := rand.New(rand.NewSource(seed))
	w := &World{Ontology: ontology.Default(), byName: make(map[string]*Entity)}
	add := func(e Entity) *Entity {
		w.Entities = append(w.Entities, e)
		p := &w.Entities[len(w.Entities)-1]
		w.byName[e.Name] = p
		return p
	}

	venues := []string{"ICDE", "VLDB", "SIGMOD", "KDD", "WWW", "EMNLP"}
	for _, v := range venues {
		add(Entity{Name: v, Type: ontology.TypeEvent, Words: []string{"conference", "research"}})
	}
	institutions := []string{"PNNL", "Purdue University", "MIT", "Stanford University", "ETH Zurich", "Tsinghua University"}
	for _, in := range institutions {
		add(Entity{Name: in, Type: ontology.TypeUniversity, Words: []string{"research", "lab"}})
	}

	var authorEnts []*Entity
	for i := 0; i < authors; i++ {
		name := fmt.Sprintf("%s %s", pick(rng, firstNames), pick(rng, lastNames))
		if _, dup := w.byName[name]; dup {
			continue
		}
		authorEnts = append(authorEnts, add(Entity{Name: name, Type: ontology.TypePerson, Aliases: []string{lastOf(name)}, Words: []string{"author", "research"}}))
	}

	topics := []string{"Graph Mining", "Knowledge Graphs", "Stream Processing", "Entity Linking", "Question Answering", "Link Prediction"}
	var paperEnts []*Entity
	for i := 0; i < papers; i++ {
		topic := topics[rng.Intn(len(topics))]
		name := fmt.Sprintf("%s: Paper %d", topic, i)
		paperEnts = append(paperEnts, add(Entity{Name: name, Type: ontology.TypePaper, Words: []string{"paper", topic}}))
	}

	for i := range w.Entities {
		w.Entities[i].Popularity = 1.0 / float64(i+1)
	}

	cur := func(s, p, o string, st, ot ontology.EntityType) {
		w.Curated = append(w.Curated, core.Triple{Subject: s, Predicate: p, Object: o,
			SubjectType: st, ObjectType: ot, Confidence: 1, Curated: true,
			Provenance: core.Provenance{Source: "dblp"}})
	}
	for _, a := range authorEnts {
		inst := institutions[rng.Intn(len(institutions))]
		cur(a.Name, "affiliatedWith", inst, ontology.TypePerson, ontology.TypeUniversity)
	}

	start := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i, p := range paperEnts {
		date := start.AddDate(0, i%72, 0)
		venue := venues[rng.Intn(len(venues))]
		w.Events = append(w.Events, Event{Subject: p.Name, Predicate: "publishedAt", Object: venue, Date: date})
		nAuth := 1 + rng.Intn(3)
		for k := 0; k < nAuth; k++ {
			a := authorEnts[rng.Intn(len(authorEnts))]
			w.Events = append(w.Events, Event{Subject: a.Name, Predicate: "authorOf", Object: p.Name, Date: date})
		}
		// cite up to 3 earlier papers
		for k := 0; k < rng.Intn(4) && i > 0; k++ {
			older := paperEnts[rng.Intn(i)]
			w.Events = append(w.Events, Event{Subject: p.Name, Predicate: "cites", Object: older.Name, Date: date})
		}
	}
	sort.Slice(w.Events, func(i, j int) bool { return w.Events[i].Date.Before(w.Events[j].Date) })
	return w
}

// GenerateInsiderWorld builds an insider-threat domain: employees accessing
// resources, emailing each other and copying files, with a small set of
// planted exfiltration patterns (access -> copy -> email) late in the
// stream — the structural signal the streaming miner should surface.
func GenerateInsiderWorld(seed int64, users, resources, events int) *World {
	rng := rand.New(rand.NewSource(seed))
	w := &World{Ontology: ontology.Default(), byName: make(map[string]*Entity)}
	add := func(e Entity) *Entity {
		w.Entities = append(w.Entities, e)
		p := &w.Entities[len(w.Entities)-1]
		w.byName[e.Name] = p
		return p
	}

	var userEnts []*Entity
	for i := 0; i < users; i++ {
		name := fmt.Sprintf("%s %s", pick(rng, firstNames), pick(rng, lastNames))
		if _, dup := w.byName[name]; dup {
			continue
		}
		userEnts = append(userEnts, add(Entity{Name: name, Type: ontology.TypePerson, Words: []string{"employee"}}))
	}
	var resEnts []*Entity
	kinds := []string{"fileserver", "database", "repo", "share", "laptop", "usb-drive"}
	for i := 0; i < resources; i++ {
		name := fmt.Sprintf("%s-%02d", kinds[i%len(kinds)], i)
		resEnts = append(resEnts, add(Entity{Name: name, Type: ontology.TypeResource, Words: []string{"resource"}}))
	}
	for i := range w.Entities {
		w.Entities[i].Popularity = 1.0 / float64(i+1)
	}

	start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < events; i++ {
		date := start.Add(time.Duration(i) * time.Hour)
		u := userEnts[rng.Intn(len(userEnts))]
		switch rng.Intn(5) {
		case 0, 1:
			w.Events = append(w.Events, Event{Subject: u.Name, Predicate: "accessed", Object: resEnts[rng.Intn(len(resEnts))].Name, Date: date})
		case 2:
			w.Events = append(w.Events, Event{Subject: u.Name, Predicate: "loggedInto", Object: resEnts[rng.Intn(len(resEnts))].Name, Date: date})
		case 3:
			other := userEnts[rng.Intn(len(userEnts))]
			if other.Name != u.Name {
				w.Events = append(w.Events, Event{Subject: u.Name, Predicate: "emailed", Object: other.Name, Date: date})
			}
		case 4:
			a := resEnts[rng.Intn(len(resEnts))]
			b := resEnts[rng.Intn(len(resEnts))]
			if a.Name != b.Name {
				w.Events = append(w.Events, Event{Subject: a.Name, Predicate: "copiedTo", Object: b.Name, Date: date})
			}
		}
		// Plant the exfiltration motif in the last quarter of the stream.
		if i > events*3/4 && rng.Float64() < 0.15 && len(resEnts) >= 2 {
			bad := userEnts[rng.Intn(len(userEnts))]
			src := resEnts[rng.Intn(len(resEnts))]
			usb := resEnts[len(resEnts)-1] // the usb-drive style sink
			w.Events = append(w.Events,
				Event{Subject: bad.Name, Predicate: "accessed", Object: src.Name, Date: date},
				Event{Subject: src.Name, Predicate: "copiedTo", Object: usb.Name, Date: date.Add(time.Minute)},
			)
		}
	}
	sort.Slice(w.Events, func(i, j int) bool { return w.Events[i].Date.Before(w.Events[j].Date) })
	return w
}
