package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"nous/internal/core"
	"nous/internal/ontology"
)

// ReadTriplesTSV parses curated triples from tab-separated lines of the form
//
//	subject \t predicate \t object [\t subjectType \t objectType]
//
// Blank lines and lines starting with '#' are skipped. This is the format
// YAGO-style dumps reduce to.
func ReadTriplesTSV(r io.Reader) ([]core.Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []core.Triple
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 3 {
			return nil, fmt.Errorf("corpus: line %d: want at least 3 tab-separated fields, got %d", line, len(fields))
		}
		t := core.Triple{
			Subject:    strings.TrimSpace(fields[0]),
			Predicate:  strings.TrimSpace(fields[1]),
			Object:     strings.TrimSpace(fields[2]),
			Confidence: 1,
			Curated:    true,
			Provenance: core.Provenance{Source: "tsv"},
		}
		if len(fields) >= 5 {
			t.SubjectType = ontology.EntityType(strings.TrimSpace(fields[3]))
			t.ObjectType = ontology.EntityType(strings.TrimSpace(fields[4]))
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: reading TSV: %w", err)
	}
	return out, nil
}

// WriteTriplesTSV writes triples in the format ReadTriplesTSV parses.
func WriteTriplesTSV(w io.Writer, triples []core.Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\t%s\n",
			t.Subject, t.Predicate, t.Object, t.SubjectType, t.ObjectType); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// jsonArticle is the wire format for article streams.
type jsonArticle struct {
	ID     string `json:"id"`
	Source string `json:"source"`
	Date   string `json:"date"`
	Title  string `json:"title"`
	Text   string `json:"text"`
}

// ReadArticlesJSON parses a JSON array of articles with id/source/date/
// title/text fields (date as YYYY-MM-DD).
func ReadArticlesJSON(r io.Reader) ([]Article, error) {
	var raw []jsonArticle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("corpus: decoding articles: %w", err)
	}
	out := make([]Article, 0, len(raw))
	for i, ja := range raw {
		a := Article{ID: ja.ID, Source: ja.Source, Title: ja.Title, Text: ja.Text}
		if ja.Date != "" {
			t, err := time.Parse("2006-01-02", ja.Date)
			if err != nil {
				return nil, fmt.Errorf("corpus: article %d: bad date %q: %w", i, ja.Date, err)
			}
			a.Date = t
		}
		out = append(out, a)
	}
	return out, nil
}

// WriteArticlesJSON writes articles in the format ReadArticlesJSON parses.
func WriteArticlesJSON(w io.Writer, articles []Article) error {
	raw := make([]jsonArticle, 0, len(articles))
	for _, a := range articles {
		ja := jsonArticle{ID: a.ID, Source: a.Source, Title: a.Title, Text: a.Text}
		if !a.Date.IsZero() {
			ja.Date = a.Date.UTC().Format("2006-01-02")
		}
		raw = append(raw, ja)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(raw)
}
