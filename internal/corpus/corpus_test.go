package corpus

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nous/internal/ontology"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Companies = 10
	cfg.People = 10
	cfg.Products = 10
	cfg.Events = 60
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Entities) != len(b.Entities) || len(a.Curated) != len(b.Curated) || len(a.Events) != len(b.Events) {
		t.Fatalf("same seed produced different worlds: %d/%d/%d vs %d/%d/%d",
			len(a.Entities), len(a.Curated), len(a.Events),
			len(b.Entities), len(b.Curated), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c := smallConfig()
	c.Seed = 99
	d := Generate(c)
	same := len(d.Events) == len(a.Events)
	if same {
		identical := true
		for i := range d.Events {
			if d.Events[i] != a.Events[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical event streams")
		}
	}
}

func TestWorldContainsPaperCast(t *testing.T) {
	w := Generate(smallConfig())
	for _, name := range []string{"DJI", "Parrot", "Windermere", "FAA", "Phantom 3"} {
		if _, ok := w.Entity(name); !ok {
			t.Errorf("fixed cast entity %q missing", name)
		}
	}
	if dji, _ := w.Entity("DJI"); dji.Type != ontology.TypeCompany {
		t.Errorf("DJI type = %s", dji.Type)
	}
}

func TestCuratedFactsLoadIntoKG(t *testing.T) {
	w := Generate(smallConfig())
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	if kg.NumFacts() != len(w.Curated) {
		t.Fatalf("KG facts = %d, curated = %d", kg.NumFacts(), len(w.Curated))
	}
	if !kg.HasFact("DJI", "headquarteredIn", "Shenzhen") {
		t.Error("anchor fact missing from KG")
	}
	st := kg.Stats()
	if st.ExtractedFacts != 0 {
		t.Errorf("curated KG has %d extracted facts", st.ExtractedFacts)
	}
}

func TestEventsSortedAndTyped(t *testing.T) {
	w := Generate(smallConfig())
	if len(w.Events) == 0 {
		t.Fatal("no events generated")
	}
	rumors := 0
	for i, e := range w.Events {
		if i > 0 && e.Date.Before(w.Events[i-1].Date) {
			t.Fatal("events not sorted by date")
		}
		if _, ok := w.Ontology.Predicate(e.Predicate); !ok {
			t.Errorf("event uses unknown predicate %q", e.Predicate)
		}
		if e.Rumor {
			rumors++
		}
	}
	if rumors == 0 {
		t.Error("no rumors planted despite RumorRate > 0")
	}
}

func TestAmbiguousAliasesExist(t *testing.T) {
	w := Generate(smallConfig())
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	cands := kg.Candidates("Apex")
	if len(cands) < 2 {
		t.Fatalf("alias Apex should be ambiguous, got %v", cands)
	}
}

func TestGenerateArticlesGroundTruth(t *testing.T) {
	w := Generate(smallConfig())
	arts := GenerateArticles(w, DefaultArticleConfig(50))
	if len(arts) != 50 {
		t.Fatalf("got %d articles", len(arts))
	}
	pronouns := 0
	for _, a := range arts {
		if a.Text == "" || a.ID == "" {
			t.Fatalf("malformed article %+v", a)
		}
		if len(a.Truth) == 0 {
			t.Errorf("article %s has no ground truth", a.ID)
		}
		for _, ev := range a.Truth {
			if ev.Subject == "" || ev.Object == "" {
				t.Errorf("article %s has malformed truth %+v", a.ID, ev)
			}
		}
		if len(a.Truth) > 1 {
			pronouns++
		}
	}
	if pronouns == 0 {
		t.Error("no multi-fact articles generated despite PronounRate > 0")
	}
}

func TestArticlesDeterministic(t *testing.T) {
	w := Generate(smallConfig())
	a := GenerateArticles(w, DefaultArticleConfig(20))
	b := GenerateArticles(w, DefaultArticleConfig(20))
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("article %d differs across runs", i)
		}
	}
}

func TestTrueFactDistinguishesRumors(t *testing.T) {
	w := Generate(smallConfig())
	var rumor, truth *Event
	for i := range w.Events {
		if w.Events[i].Rumor && rumor == nil {
			rumor = &w.Events[i]
		}
		if !w.Events[i].Rumor && truth == nil {
			truth = &w.Events[i]
		}
	}
	if rumor == nil || truth == nil {
		t.Skip("world lacks a rumor or a truth")
	}
	if w.TrueFact(rumor.Subject, rumor.Predicate, rumor.Object) {
		// A rumor triple may coincide with a real event or a curated fact;
		// only fail when nothing true matches.
		matched := false
		for _, e := range w.Events {
			if !e.Rumor && e.Subject == rumor.Subject && e.Predicate == rumor.Predicate && e.Object == rumor.Object {
				matched = true
			}
		}
		for _, c := range w.Curated {
			if c.Subject == rumor.Subject && c.Predicate == rumor.Predicate && c.Object == rumor.Object {
				matched = true
			}
		}
		if !matched {
			t.Error("TrueFact accepted a pure rumor")
		}
	}
	if !w.TrueFact(truth.Subject, truth.Predicate, truth.Object) {
		t.Error("TrueFact rejected a true event")
	}
}

func TestTriplesTSVRoundtrip(t *testing.T) {
	w := Generate(smallConfig())
	var buf bytes.Buffer
	if err := WriteTriplesTSV(&buf, w.Curated[:10]); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTriplesTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("roundtrip count = %d", len(got))
	}
	for i := range got {
		if got[i].Subject != w.Curated[i].Subject || got[i].Predicate != w.Curated[i].Predicate {
			t.Fatalf("triple %d mismatch: %+v vs %+v", i, got[i], w.Curated[i])
		}
	}
}

func TestTriplesTSVRejectsMalformed(t *testing.T) {
	_, err := ReadTriplesTSV(strings.NewReader("one\ttwo\n"))
	if err == nil {
		t.Fatal("malformed TSV accepted")
	}
	got, err := ReadTriplesTSV(strings.NewReader("# comment\n\nA\tacquired\tB\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("comments/blank lines mishandled: %v %v", got, err)
	}
}

func TestArticlesJSONRoundtrip(t *testing.T) {
	w := Generate(smallConfig())
	arts := GenerateArticles(w, DefaultArticleConfig(5))
	var buf bytes.Buffer
	if err := WriteArticlesJSON(&buf, arts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArticlesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(arts) {
		t.Fatalf("roundtrip count = %d", len(got))
	}
	for i := range got {
		if got[i].Text != arts[i].Text || !got[i].Date.Equal(arts[i].Date.Truncate(24*time.Hour)) {
			t.Fatalf("article %d mismatch", i)
		}
	}
}

func TestCitationWorld(t *testing.T) {
	w := GenerateCitationWorld(3, 20, 30)
	if len(w.Events) == 0 {
		t.Fatal("no citation events")
	}
	preds := map[string]bool{}
	for _, e := range w.Events {
		preds[e.Predicate] = true
	}
	for _, p := range []string{"authorOf", "cites", "publishedAt"} {
		if !preds[p] {
			t.Errorf("citation world missing predicate %s", p)
		}
	}
	if _, err := w.LoadKG(); err != nil {
		t.Fatalf("citation KG load: %v", err)
	}
}

func TestInsiderWorld(t *testing.T) {
	w := GenerateInsiderWorld(3, 15, 12, 300)
	if len(w.Events) < 300 {
		t.Fatalf("insider events = %d", len(w.Events))
	}
	// exfiltration motif must be present late in the stream
	motif := 0
	for _, e := range w.Events {
		if e.Predicate == "copiedTo" {
			motif++
		}
	}
	if motif == 0 {
		t.Error("no copiedTo events planted")
	}
	if _, err := w.LoadKG(); err != nil {
		t.Fatalf("insider KG load: %v", err)
	}
}

func BenchmarkGenerateArticles(b *testing.B) {
	w := Generate(smallConfig())
	cfg := DefaultArticleConfig(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateArticles(w, cfg)
	}
}
