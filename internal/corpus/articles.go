package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Article is one generated news document, with ground-truth labels for
// evaluation: the events its sentences realise and the canonical entity
// behind every ambiguous surface mention.
type Article struct {
	ID     string
	Source string
	Date   time.Time
	Title  string
	Text   string
	// Truth lists the events (true or rumor) this article reports.
	Truth []Event
	// Mentions maps ambiguous/aliased surface forms to canonical entities.
	Mentions []MentionLabel
}

// MentionLabel records that a surface string in this article denotes a
// specific canonical entity.
type MentionLabel struct {
	Surface string
	Entity  string
}

// ArticleConfig controls article generation.
type ArticleConfig struct {
	Seed int64
	// N is the number of articles to generate.
	N int
	// AliasRate is the probability that a company is mentioned by its short
	// alias instead of its canonical name.
	AliasRate float64
	// PronounRate is the probability of adding a pronoun follow-up sentence
	// realising a second fact (exercises coreference resolution).
	PronounRate float64
	// KBReportRate is the fraction of articles that re-report curated facts
	// with varied phrasing (the distant-supervision training signal).
	KBReportRate float64
	// NoiseSentences is the number of fact-free sentences added per article.
	NoiseSentences int
}

// DefaultArticleConfig generates a medium corpus.
func DefaultArticleConfig(n int) ArticleConfig {
	return ArticleConfig{
		Seed:           7,
		N:              n,
		AliasRate:      0.3,
		PronounRate:    0.35,
		KBReportRate:   0.15,
		NoiseSentences: 2,
	}
}

// template realises an event as a sentence. Multiple templates per predicate
// give the extractor realistic phrase variety; some use phrases outside the
// seed lexicon so that distant-supervision expansion has something to learn.
type template func(s, o string, rng *rand.Rand) string

var eventTemplates = map[string][]template{
	"acquired": {
		func(s, o string, rng *rand.Rand) string {
			return fmt.Sprintf("%s announced that it has acquired %s for $%d million.", s, o, 10+rng.Intn(900))
		},
		func(s, o string, rng *rand.Rand) string {
			return fmt.Sprintf("%s bought %s in a deal valued at $%d million.", s, o, 10+rng.Intn(900))
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s was acquired by %s.", o, s)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s snapped up %s last week.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s completed its purchase of %s.", s, o)
		},
	},
	"partnersWith": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s announced a partnership with %s.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s partnered with %s to develop new drones.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s teamed up with %s.", s, o)
		},
	},
	"manufactures": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s unveiled the %s at a trade show.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s makes the %s.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s launched the %s, its newest drone.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("The %s is manufactured by %s.", o, s)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s introduced the %s on Monday.", s, o)
		},
	},
	"deploys": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s is deploying the %s to support its operations.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s now uses the %s for aerial photography.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s employs the %s in daily inspections.", s, o)
		},
	},
	"invests": {
		func(s, o string, rng *rand.Rand) string {
			return fmt.Sprintf("%s invested $%d million in %s.", s, 5+rng.Intn(200), o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s led a funding round in %s.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s backed %s in its latest round.", s, o)
		},
	},
	"develops": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s is developing %s.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s demonstrated %s at the expo.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s showcased %s.", s, o)
		},
	},
	"approves": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("The %s approved the %s for commercial flights.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("The %s granted a license for the %s.", s, o)
		},
	},
	"bans": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("The %s banned the %s from urban airspace.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("The %s grounded the %s after safety complaints.", s, o)
		},
	},
	"worksFor": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s joined %s as chief executive.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s works for %s.", s, o)
		},
		// inverted surface forms: subject and object swap grammatical roles
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s hired %s.", o, s)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s appointed %s to lead its drone division.", o, s)
		},
	},
	// curated-fact re-reports (distant-supervision signal)
	"headquarteredIn": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s is based in %s.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s is headquartered in %s.", s, o)
		},
	},
	"ceoOf": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s is the chief executive of %s.", s, o)
		},
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s runs %s.", s, o)
		},
	},
	"competesWith": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s competes with %s.", s, o)
		},
	},
	"foundedBy": {
		func(s, o string, _ *rand.Rand) string {
			return fmt.Sprintf("%s was founded by %s.", s, o)
		},
	},
}

// pronounTemplates realise a second event whose subject is the same company
// as the first, referring to it with a pronoun or definite nominal.
var pronounTemplates = map[string][]string{
	"acquired":     {"It also acquired %s.", "The company also bought %s."},
	"manufactures": {"It also unveiled the %s.", "The company also launched the %s."},
	"partnersWith": {"It also announced a partnership with %s.", "The company also partnered with %s."},
	"invests":      {"It also invested in %s.", "The company also backed %s."},
	"develops":     {"It is also developing %s.", "The company is also developing %s."},
	"deploys":      {"It is also deploying the %s.", "The company also uses the %s."},
}

var noiseTemplates = []string{
	"Shares rose %d percent in morning trading.",
	"Analysts said the move signals consolidation in the drone market.",
	"The deal is subject to regulatory approval.",
	"Revenue grew %d percent last quarter.",
	"The drone market is expected to reach $%d billion by 2020.",
	"Industry observers were surprised by the announcement.",
	"A spokesman declined to comment on the terms.",
	"Commercial drone adoption continues to accelerate.",
	"The company did not disclose financial details.",
	"Safety concerns remain a topic of debate among regulators.",
}

// GenerateArticles renders cfg.N articles from the world's event stream.
// Events are assigned round-robin so a small N still covers the stream's
// date range; each article reports one or two events.
func GenerateArticles(w *World, cfg ArticleConfig) []Article {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if len(w.Events) == 0 || cfg.N <= 0 {
		return nil
	}
	articles := make([]Article, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if rng.Float64() < cfg.KBReportRate && len(w.Curated) > 0 {
			articles = append(articles, w.kbReportArticle(rng, cfg, i))
			continue
		}
		ev := w.Events[i%len(w.Events)]
		articles = append(articles, w.eventArticle(rng, cfg, i, ev))
	}
	return articles
}

// eventArticle renders an article around one primary event, optionally a
// pronoun-referenced second event by the same subject, noise sentences and
// alias mentions.
func (w *World) eventArticle(rng *rand.Rand, cfg ArticleConfig, idx int, ev Event) Article {
	a := Article{
		ID:     fmt.Sprintf("wsj-%06d", idx),
		Source: "wsj",
		Date:   ev.Date,
	}
	tmpls := eventTemplates[ev.Predicate]
	if len(tmpls) == 0 {
		tmpls = eventTemplates["acquired"]
	}

	subjSurface := w.surfaceFor(rng, cfg, &a, ev.Subject)
	objSurface := w.surfaceFor(rng, cfg, &a, ev.Object)
	first := tmpls[rng.Intn(len(tmpls))](subjSurface, objSurface, rng)
	a.Title = strings.TrimSuffix(first, ".")
	sentences := []string{first}
	a.Truth = append(a.Truth, ev)

	// Context sentences characterising ambiguous mentions (the signal the
	// disambiguator needs).
	if went, ok := w.byName[ev.Subject]; ok && len(went.Words) >= 2 {
		sentences = append(sentences, fmt.Sprintf("Its %s and %s business has grown steadily.", went.Words[0], went.Words[1%len(went.Words)]))
	}
	if oent, ok := w.byName[ev.Object]; ok && objSurface != ev.Object && len(oent.Words) >= 2 {
		sentences = append(sentences, fmt.Sprintf("The latter is known for its %s and %s work.", oent.Words[0], oent.Words[1%len(oent.Words)]))
	}

	// Pronoun follow-up realising a second event with the same subject.
	if rng.Float64() < cfg.PronounRate {
		if second, ok := w.findEventBySubject(rng, ev.Subject, ev.Predicate); ok {
			if pts := pronounTemplates[second.Predicate]; len(pts) > 0 {
				oSurface := w.surfaceFor(rng, cfg, &a, second.Object)
				sentences = append(sentences, fmt.Sprintf(pts[rng.Intn(len(pts))], oSurface))
				second.Date = ev.Date
				a.Truth = append(a.Truth, second)
			}
		}
	}

	for i := 0; i < cfg.NoiseSentences; i++ {
		sentences = append(sentences, noiseSentence(rng))
	}
	a.Text = strings.Join(sentences, " ")
	return a
}

// kbReportArticle re-reports one or two curated facts with natural phrasing.
func (w *World) kbReportArticle(rng *rand.Rand, cfg ArticleConfig, idx int) Article {
	a := Article{
		ID:     fmt.Sprintf("wsj-%06d", idx),
		Source: "wsj",
	}
	t := w.Curated[rng.Intn(len(w.Curated))]
	tmpls := eventTemplates[t.Predicate]
	if len(tmpls) == 0 {
		tmpls = eventTemplates["competesWith"]
	}
	first := tmpls[rng.Intn(len(tmpls))](t.Subject, t.Object, rng)
	a.Title = strings.TrimSuffix(first, ".")
	// KB reports are dated uniformly across the stream's range.
	if len(w.Events) > 0 {
		a.Date = w.Events[rng.Intn(len(w.Events))].Date
	}
	a.Truth = append(a.Truth, Event{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object, Date: a.Date})
	sentences := []string{first, noiseSentence(rng)}
	a.Text = strings.Join(sentences, " ")
	return a
}

// surfaceFor picks the surface form for an entity mention (canonical name or
// alias) and records the label when the surface differs from the name.
func (w *World) surfaceFor(rng *rand.Rand, cfg ArticleConfig, a *Article, name string) string {
	e, ok := w.byName[name]
	if !ok || len(e.Aliases) == 0 || rng.Float64() >= cfg.AliasRate {
		return name
	}
	alias := e.Aliases[rng.Intn(len(e.Aliases))]
	if alias != name {
		a.Mentions = append(a.Mentions, MentionLabel{Surface: alias, Entity: name})
	}
	return alias
}

func (w *World) findEventBySubject(rng *rand.Rand, subject, excludePred string) (Event, bool) {
	var candidates []Event
	for _, e := range w.Events {
		if e.Subject == subject && e.Predicate != excludePred {
			if _, ok := pronounTemplates[e.Predicate]; ok {
				candidates = append(candidates, e)
			}
		}
	}
	if len(candidates) == 0 {
		return Event{}, false
	}
	return candidates[rng.Intn(len(candidates))], true
}

func noiseSentence(rng *rand.Rand) string {
	t := noiseTemplates[rng.Intn(len(noiseTemplates))]
	if strings.Contains(t, "%d") {
		return fmt.Sprintf(t, 1+rng.Intn(30))
	}
	return t
}
