// Package corpus generates the data substrate the paper used but did not
// ship: a curated knowledge base (the YAGO2 stand-in) and a dated stream of
// news articles (the Wall Street Journal stand-in), both drawn from a seeded
// world model. Because articles realise a hidden ground-truth event stream,
// every stage of the pipeline — extraction, disambiguation, confidence
// estimation — can be evaluated exactly, which the original demo could not
// do. Loaders for external TSV/JSON data are also provided so a real KB or
// corpus can be substituted.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"nous/internal/core"
	"nous/internal/ontology"
)

// Entity is a world-model entity: canonical name, type, aliases and the
// topical words that characterise it (used to build context documents).
type Entity struct {
	Name       string
	Type       ontology.EntityType
	Aliases    []string
	Words      []string
	Popularity float64 // Zipf-distributed; drives mention frequency and prior
	// Sector groups companies and technologies: events are
	// sector-assortative (acquirers buy within their sector), giving the
	// world the latent block structure real corporate networks have.
	Sector int
}

// Sectors of the generated economy.
const (
	SectorDrone = iota
	SectorMedia
	SectorFinance
	SectorPharma
	numSectors
)

// Event is one hidden ground-truth happening that articles may report.
type Event struct {
	Subject   string
	Predicate string
	Object    string
	Date      time.Time
	// Rumor marks a planted false fact: articles report it, but it is not
	// true in the world. Confidence estimation should score these low.
	Rumor bool
}

// World is a complete generated domain: entities, a curated KB expressed in
// the ontology, and a dated event stream.
type World struct {
	Ontology *ontology.Ontology
	Entities []Entity
	Curated  []core.Triple
	Events   []Event

	byName map[string]*Entity
}

// Config controls world generation.
type Config struct {
	Seed       int64
	Companies  int // generated companies in addition to the fixed drone-world cast
	People     int
	Products   int
	Events     int     // ground-truth events across the date range
	RumorRate  float64 // fraction of events that are false rumors
	Start, End time.Time
}

// DefaultConfig is a medium-sized drone-domain world.
func DefaultConfig() Config {
	return Config{
		Seed:      42,
		Companies: 40,
		People:    60,
		Products:  50,
		Events:    400,
		RumorRate: 0.1,
		Start:     time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
		End:       time.Date(2015, 12, 31, 0, 0, 0, 0, time.UTC),
	}
}

// Fixed cast from the paper's drone use case. Windermere (a real-estate firm
// employing drones) and DJI appear in the paper's own figures.
var fixedCast = []Entity{
	{Name: "DJI", Type: ontology.TypeCompany, Aliases: []string{"DJI Technology", "Da-Jiang Innovations"}, Words: []string{"drone", "quadcopter", "camera", "consumer", "aerial", "photography"}},
	{Name: "Parrot", Type: ontology.TypeCompany, Aliases: []string{"Parrot SA"}, Words: []string{"drone", "consumer", "wireless", "aerial", "french"}},
	{Name: "Yuneec", Type: ontology.TypeCompany, Aliases: []string{"Yuneec International"}, Words: []string{"drone", "electric", "aviation", "aerial"}},
	{Name: "3D Robotics", Type: ontology.TypeCompany, Aliases: []string{"3DR"}, Words: []string{"drone", "open-source", "autopilot", "aerial"}},
	{Name: "GoPro", Type: ontology.TypeCompany, Aliases: []string{"GoPro Inc."}, Words: []string{"camera", "action", "sports", "video"}},
	{Name: "Amazon", Type: ontology.TypeCompany, Aliases: []string{"Amazon.com"}, Words: []string{"retail", "delivery", "e-commerce", "logistics", "cloud"}},
	{Name: "Windermere", Type: ontology.TypeCompany, Aliases: []string{"Windermere Real Estate"}, Words: []string{"real-estate", "property", "listing", "photography"}},
	{Name: "FAA", Type: ontology.TypeAgency, Aliases: []string{"Federal Aviation Administration"}, Words: []string{"regulation", "airspace", "safety", "federal", "license"}},
	{Name: "Shenzhen", Type: ontology.TypeCity, Words: []string{"china", "manufacturing", "tech"}},
	{Name: "Paris", Type: ontology.TypeCity, Words: []string{"france", "capital"}},
	{Name: "Berkeley", Type: ontology.TypeCity, Words: []string{"california", "university"}},
	{Name: "Seattle", Type: ontology.TypeCity, Words: []string{"washington", "tech", "coffee"}},
	{Name: "Washington D.C.", Type: ontology.TypeCity, Aliases: []string{"Washington"}, Words: []string{"capital", "government", "federal"}},
	{Name: "Phantom 3", Type: ontology.TypeProduct, Aliases: []string{"Phantom"}, Words: []string{"drone", "camera", "quadcopter", "gimbal"}},
	{Name: "Bebop 2", Type: ontology.TypeProduct, Aliases: []string{"Bebop"}, Words: []string{"drone", "lightweight", "fpv"}},
	{Name: "Typhoon H", Type: ontology.TypeProduct, Aliases: []string{"Typhoon"}, Words: []string{"drone", "hexacopter", "camera"}},
	{Name: "Prime Air", Type: ontology.TypeProduct, Words: []string{"delivery", "drone", "package", "logistics"}},
	{Name: "Obstacle Avoidance", Type: ontology.TypeTechnology, Words: []string{"sensor", "vision", "navigation", "safety", "drone"}},
	{Name: "Autonomous Drone Navigation", Type: ontology.TypeTechnology, Aliases: []string{"Autonomous Navigation"}, Words: []string{"autonomy", "software", "gps", "mapping", "drone"}},
	{Name: "Delivery Drones", Type: ontology.TypeTechnology, Aliases: []string{"drone delivery"}, Words: []string{"delivery", "logistics", "package", "drone"}},
	{Name: "Aerial Drone Imaging", Type: ontology.TypeTechnology, Aliases: []string{"Aerial Imaging"}, Words: []string{"camera", "photography", "mapping", "survey", "aerial"}},
	{Name: "Industrial Drone Inspection", Type: ontology.TypeTechnology, Words: []string{"inspection", "industrial", "drone", "survey"}},
	// off-sector technologies anchor the media/finance/pharma sectors; the
	// tech names deliberately share tokens with their sector's companies so
	// KG neighborhoods carry topical signal.
	{Name: "Broadcast Media Analytics", Type: ontology.TypeTechnology, Words: []string{"media", "broadcast", "advertising", "audience"}, Sector: SectorMedia},
	{Name: "Television Advertising Platform", Type: ontology.TypeTechnology, Words: []string{"television", "advertising", "media"}, Sector: SectorMedia},
	{Name: "Investment Banking Platform", Type: ontology.TypeTechnology, Words: []string{"banking", "investment", "capital", "fund"}, Sector: SectorFinance},
	{Name: "Equity Fund Modeling", Type: ontology.TypeTechnology, Words: []string{"equity", "fund", "capital", "risk"}, Sector: SectorFinance},
	{Name: "Clinical Drug Pipeline", Type: ontology.TypeTechnology, Words: []string{"clinical", "drug", "pharmaceutical", "trial"}, Sector: SectorPharma},
	{Name: "Biotech Gene Therapy", Type: ontology.TypeTechnology, Words: []string{"biotech", "gene", "clinical", "therapy"}, Sector: SectorPharma},
}

// Ambiguous pairs: distinct entities sharing a short alias, exercising the
// AIDA-style disambiguation of §3.3. The pairs straddle sectors, so a
// correctly fused KG neighborhood disambiguates them.
var ambiguousCast = []Entity{
	{Name: "Apex Robotics", Type: ontology.TypeCompany, Aliases: []string{"Apex"}, Words: []string{"drone", "robotics", "industrial", "inspection"}, Sector: SectorDrone},
	{Name: "Apex Media Group", Type: ontology.TypeCompany, Aliases: []string{"Apex"}, Words: []string{"media", "advertising", "broadcast", "television"}, Sector: SectorMedia},
	{Name: "Titan Aerospace", Type: ontology.TypeCompany, Aliases: []string{"Titan"}, Words: []string{"solar", "drone", "high-altitude", "aerospace"}, Sector: SectorDrone},
	{Name: "Titan Financial", Type: ontology.TypeCompany, Aliases: []string{"Titan"}, Words: []string{"banking", "investment", "fund", "capital"}, Sector: SectorFinance},
	{Name: "Vertex Labs", Type: ontology.TypeCompany, Aliases: []string{"Vertex"}, Words: []string{"software", "vision", "drone", "mapping"}, Sector: SectorDrone},
	{Name: "Vertex Pharma", Type: ontology.TypeCompany, Aliases: []string{"Vertex"}, Words: []string{"pharmaceutical", "drug", "biotech", "clinical"}, Sector: SectorPharma},
}

var (
	companyPrefixes = []string{"Aero", "Sky", "Quad", "Hover", "Nimbus", "Strato", "Zephyr", "Orbit", "Falcon", "Raven", "Cloud", "Apex", "Vector", "Pulse", "Echo", "Nova", "Atlas", "Luma", "Kestrel", "Swift"}
	companySuffixes = []string{"dyne", "tech", "ics", "ware", "flight", "air", "scan", "lift", "works", "net"}
	companyKinds    = []string{"Systems", "Robotics", "Technologies", "Aviation", "Industries", "Labs", "Dynamics", "Aerial", "Analytics", "Ventures"}
	firstNames      = []string{"James", "Mary", "Wei", "Sofia", "Raj", "Elena", "Frank", "Grace", "Omar", "Lucia", "Chen", "Anna", "David", "Mei", "Paul", "Sara", "Igor", "Nina", "Hugo", "Ava", "Ken", "Lily", "Marco", "Ruth", "Tariq", "Jane"}
	lastNames       = []string{"Smith", "Wang", "Garcia", "Patel", "Kim", "Mueller", "Rossi", "Chen", "Johnson", "Lee", "Brown", "Silva", "Novak", "Sato", "Khan", "Olsen", "Dubois", "Costa", "Haas", "Moreno", "Fischer", "Berg"}
	cities          = []string{"Austin", "Boston", "Denver", "Palo Alto", "Munich", "Toronto", "Singapore", "London", "Tel Aviv", "Sydney", "Zurich", "Oslo", "Dublin", "Lyon", "Osaka", "Taipei"}
	productAdjs     = []string{"Falcon", "Raven", "Condor", "Swift", "Osprey", "Heron", "Kite", "Comet", "Meteor", "Pulse", "Spark", "Vortex", "Glide", "Zenith", "Halo"}
	techWords       = []string{"lidar", "mapping", "sensor", "battery", "gimbal", "camera", "autopilot", "swarm", "tracking", "imaging", "telemetry", "navigation"}
	bizWords        = []string{"enterprise", "consumer", "industrial", "agriculture", "inspection", "survey", "security", "logistics", "insurance", "energy"}

	// sectorWords characterises companies per sector; overlapping tokens
	// with the sector technologies above give KG neighborhoods topical
	// signal for disambiguation.
	sectorWords = [numSectors][]string{
		SectorDrone:   {"drone", "aerial", "quadcopter", "inspection", "mapping", "camera", "autopilot"},
		SectorMedia:   {"media", "advertising", "broadcast", "television", "audience"},
		SectorFinance: {"banking", "investment", "fund", "capital", "equity"},
		SectorPharma:  {"pharmaceutical", "clinical", "drug", "biotech", "trial"},
	}
)

// Generate builds a deterministic world from the config.
func Generate(cfg Config) *World {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{
		Ontology: ontology.Default(),
		byName:   make(map[string]*Entity),
	}
	add := func(e Entity) *Entity {
		if _, dup := w.byName[e.Name]; dup {
			return w.byName[e.Name]
		}
		w.Entities = append(w.Entities, e)
		p := &w.Entities[len(w.Entities)-1]
		w.byName[e.Name] = p
		return p
	}
	for _, e := range fixedCast {
		add(e)
	}
	for _, e := range ambiguousCast {
		add(e)
	}
	for _, c := range cities {
		add(Entity{Name: c, Type: ontology.TypeCity, Words: []string{"city"}})
	}

	// Generated companies: mostly drone-sector (the demo domain), the rest
	// spread across media/finance/pharma so sector structure is non-trivial.
	var companies []*Entity
	for _, e := range w.Entities {
		if e.Type == ontology.TypeCompany {
			companies = append(companies, w.byName[e.Name])
		}
	}
	for i := 0; i < cfg.Companies; i++ {
		base := companyPrefixes[rng.Intn(len(companyPrefixes))] + companySuffixes[rng.Intn(len(companySuffixes))]
		kind := companyKinds[rng.Intn(len(companyKinds))]
		name := fmt.Sprintf("%s %s", base, kind)
		if _, dup := w.byName[name]; dup {
			continue
		}
		sector := SectorDrone
		if rng.Float64() > 0.7 {
			sector = 1 + rng.Intn(numSectors-1)
		}
		words := []string{pick(rng, sectorWords[sector]), pick(rng, bizWords), pick(rng, sectorWords[sector])}
		ent := add(Entity{Name: name, Type: ontology.TypeCompany, Aliases: []string{base}, Words: words, Sector: sector})
		companies = append(companies, ent)
	}

	// People.
	var people []*Entity
	for i := 0; i < cfg.People; i++ {
		name := fmt.Sprintf("%s %s", pick(rng, firstNames), pick(rng, lastNames))
		if _, dup := w.byName[name]; dup {
			continue
		}
		ent := add(Entity{Name: name, Type: ontology.TypePerson, Aliases: []string{lastOf(name)}, Words: []string{"executive"}})
		people = append(people, ent)
	}

	// Products.
	var products []*Entity
	for _, e := range fixedCast {
		if e.Type == ontology.TypeProduct {
			products = append(products, w.byName[e.Name])
		}
	}
	for i := 0; i < cfg.Products; i++ {
		name := fmt.Sprintf("%s %d", pick(rng, productAdjs), 1+rng.Intn(9))
		if _, dup := w.byName[name]; dup {
			continue
		}
		ent := add(Entity{Name: name, Type: ontology.TypeProduct, Words: []string{"drone", pick(rng, techWords)}})
		products = append(products, ent)
	}

	// Technologies from the fixed cast only (they anchor topics).
	var techs []*Entity
	var locations []*Entity
	var agencies []*Entity
	for i := range w.Entities {
		e := &w.Entities[i]
		switch e.Type {
		case ontology.TypeTechnology:
			techs = append(techs, e)
		case ontology.TypeCity, ontology.TypeLocation, ontology.TypeCountry:
			locations = append(locations, e)
		case ontology.TypeAgency:
			agencies = append(agencies, e)
		}
	}

	// Zipf popularity by insertion order with fixed cast boosted.
	for i := range w.Entities {
		w.Entities[i].Popularity = 1.0 / math.Pow(float64(i+1), 0.7)
	}

	// ---- Curated KB (the YAGO2 stand-in) ----
	cur := func(s, p, o string, st, ot ontology.EntityType) {
		w.Curated = append(w.Curated, core.Triple{
			Subject: s, Predicate: p, Object: o,
			SubjectType: st, ObjectType: ot,
			Confidence: 1, Curated: true,
			Provenance: core.Provenance{Source: "curated-kb"},
		})
	}
	// headquarteredIn is functional: fixed anchors claim theirs first.
	hqOf := map[string]bool{"DJI": true, "Parrot": true, "3D Robotics": true, "Amazon": true}
	for i, c := range companies {
		if !hqOf[c.Name] {
			loc := locations[rng.Intn(len(locations))]
			cur(c.Name, "headquarteredIn", loc.Name, c.Type, loc.Type)
		}
		if len(people) > 0 {
			ceo := people[(i*3+rng.Intn(len(people)))%len(people)]
			cur(ceo.Name, "ceoOf", c.Name, ceo.Type, c.Type)
			founder := people[(i*5+rng.Intn(len(people)))%len(people)]
			cur(c.Name, "foundedBy", founder.Name, c.Type, founder.Type)
		}
		// products: fixed pairs for the drone cast, random for the rest
		nProd := 1 + rng.Intn(2)
		for k := 0; k < nProd && len(products) > 0; k++ {
			p := products[(i*2+k*7+rng.Intn(len(products)))%len(products)]
			cur(c.Name, "manufactures", p.Name, c.Type, p.Type)
		}
		// Companies develop technologies of their own sector and compete
		// within it — the KG-neighborhood signal disambiguation needs.
		if own := sectorTechs(techs, c.Sector); len(own) > 0 {
			tch := own[rng.Intn(len(own))]
			cur(c.Name, "develops", tch.Name, c.Type, tch.Type)
		}
		if rng.Float64() < 0.4 {
			if other, ok := pickSameSector(rng, companies, c, 0.9); ok {
				cur(c.Name, "competesWith", other.Name, c.Type, other.Type)
			}
		}
	}
	// Fixed, paper-faithful anchors.
	cur("DJI", "headquarteredIn", "Shenzhen", ontology.TypeCompany, ontology.TypeCity)
	cur("Parrot", "headquarteredIn", "Paris", ontology.TypeCompany, ontology.TypeCity)
	cur("3D Robotics", "headquarteredIn", "Berkeley", ontology.TypeCompany, ontology.TypeCity)
	cur("Amazon", "headquarteredIn", "Seattle", ontology.TypeCompany, ontology.TypeCity)
	cur("DJI", "manufactures", "Phantom 3", ontology.TypeCompany, ontology.TypeProduct)
	cur("Parrot", "manufactures", "Bebop 2", ontology.TypeCompany, ontology.TypeProduct)
	cur("Yuneec", "manufactures", "Typhoon H", ontology.TypeCompany, ontology.TypeProduct)
	cur("Amazon", "develops", "Delivery Drones", ontology.TypeCompany, ontology.TypeTechnology)
	cur("FAA", "regulates", "Delivery Drones", ontology.TypeAgency, ontology.TypeTechnology)
	w.dedupeCurated()

	// ---- Ground-truth event stream ----
	span := cfg.End.Sub(cfg.Start)
	for i := 0; i < cfg.Events; i++ {
		date := cfg.Start.Add(time.Duration(rng.Int63n(int64(span))))
		ev := w.randomEvent(rng, companies, people, products, techs, agencies)
		if ev.Subject == "" {
			continue
		}
		ev.Date = date
		ev.Rumor = rng.Float64() < cfg.RumorRate
		w.Events = append(w.Events, ev)
	}
	sort.Slice(w.Events, func(i, j int) bool { return w.Events[i].Date.Before(w.Events[j].Date) })
	return w
}

// randomEvent draws one plausible event according to the domain mix of the
// paper's use case: acquisitions, partnerships, launches, deployments,
// investments, regulatory actions.
func (w *World) randomEvent(rng *rand.Rand, companies, people, products, techs, agencies []*Entity) Event {
	if len(companies) < 2 {
		return Event{}
	}
	pickC := func() *Entity { return companies[rng.Intn(len(companies))] }
	// pickPair draws an ordered company pair, same-sector with probability
	// 0.75 — the latent block structure link prediction learns.
	pickPair := func() (*Entity, *Entity, bool) {
		a := pickC()
		if b, ok := pickSameSector(rng, companies, a, 0.75); ok {
			return a, b, true
		}
		return nil, nil, false
	}
	switch rng.Intn(10) {
	case 0, 1: // acquisition
		a, b, ok := pickPair()
		if !ok {
			return Event{}
		}
		return Event{Subject: a.Name, Predicate: "acquired", Object: b.Name}
	case 2: // partnership
		a, b, ok := pickPair()
		if !ok {
			return Event{}
		}
		return Event{Subject: a.Name, Predicate: "partnersWith", Object: b.Name}
	case 3, 4: // product launch
		if len(products) == 0 {
			return Event{}
		}
		return Event{Subject: pickC().Name, Predicate: "manufactures", Object: products[rng.Intn(len(products))].Name}
	case 5: // deployment (the Windermere story)
		if len(products) == 0 {
			return Event{}
		}
		return Event{Subject: pickC().Name, Predicate: "deploys", Object: products[rng.Intn(len(products))].Name}
	case 6: // investment
		a, b, ok := pickPair()
		if !ok {
			return Event{}
		}
		return Event{Subject: a.Name, Predicate: "invests", Object: b.Name}
	case 7: // technology development
		c := pickC()
		own := sectorTechs(techs, c.Sector)
		if len(own) == 0 {
			own = techs
		}
		if len(own) == 0 {
			return Event{}
		}
		return Event{Subject: c.Name, Predicate: "develops", Object: own[rng.Intn(len(own))].Name}
	case 8: // regulatory action
		if len(agencies) == 0 || len(products) == 0 {
			return Event{}
		}
		ag := agencies[rng.Intn(len(agencies))]
		if rng.Intn(2) == 0 {
			return Event{Subject: ag.Name, Predicate: "approves", Object: products[rng.Intn(len(products))].Name}
		}
		return Event{Subject: ag.Name, Predicate: "bans", Object: products[rng.Intn(len(products))].Name}
	default: // executive hire
		if len(people) == 0 {
			return Event{}
		}
		return Event{Subject: people[rng.Intn(len(people))].Name, Predicate: "worksFor", Object: pickC().Name}
	}
}

func (w *World) dedupeCurated() {
	seen := map[string]bool{}
	out := w.Curated[:0]
	for _, t := range w.Curated {
		k := t.Subject + "\x00" + t.Predicate + "\x00" + t.Object
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	w.Curated = out
}

// Entity returns the world entity with the given canonical name.
func (w *World) Entity(name string) (Entity, bool) {
	e, ok := w.byName[name]
	if !ok {
		return Entity{}, false
	}
	return *e, true
}

// EntitiesOfType returns the names of entities with the given type, sorted.
func (w *World) EntitiesOfType(t ontology.EntityType) []string {
	var out []string
	for _, e := range w.Entities {
		if e.Type == t {
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return out
}

// LoadKG loads the curated KB (entities with aliases, then curated triples)
// into a fresh dynamic KG.
func (w *World) LoadKG() (*core.KG, error) {
	kg := core.NewKG(w.Ontology)
	if err := w.SeedKG(kg); err != nil {
		return nil, err
	}
	return kg, nil
}

// SeedKG loads the curated KB into an existing KG — the path a durable
// pipeline takes when its store opened empty and the curated substrate must
// be written (and thereby logged) through the already-attached KG.
func (w *World) SeedKG(kg *core.KG) error {
	for _, e := range w.Entities {
		kg.AddEntity(e.Name, e.Type, e.Aliases...)
	}
	_, errs := kg.AddFacts(w.Curated)
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("corpus: loading curated fact: %w", err)
		}
	}
	return nil
}

// TrueFact reports whether (s,p,o) is true in the world: either curated or a
// non-rumor event.
func (w *World) TrueFact(s, p, o string) bool {
	for _, t := range w.Curated {
		if t.Subject == s && t.Predicate == p && t.Object == o {
			return true
		}
	}
	for _, e := range w.Events {
		if !e.Rumor && e.Subject == s && e.Predicate == p && e.Object == o {
			return true
		}
	}
	return false
}

// sectorTechs filters technologies by sector.
func sectorTechs(techs []*Entity, sector int) []*Entity {
	var out []*Entity
	for _, t := range techs {
		if t.Sector == sector {
			out = append(out, t)
		}
	}
	return out
}

// pickSameSector draws a partner for a: with probability sameProb from a's
// sector, otherwise any company. It reports failure when no distinct
// partner exists.
func pickSameSector(rng *rand.Rand, companies []*Entity, a *Entity, sameProb float64) (*Entity, bool) {
	if rng.Float64() < sameProb {
		var same []*Entity
		for _, c := range companies {
			if c.Sector == a.Sector && c.Name != a.Name {
				same = append(same, c)
			}
		}
		if len(same) > 0 {
			return same[rng.Intn(len(same))], true
		}
	}
	for tries := 0; tries < 4; tries++ {
		b := companies[rng.Intn(len(companies))]
		if b.Name != a.Name {
			return b, true
		}
	}
	return nil, false
}

func pick(rng *rand.Rand, xs []string) string { return xs[rng.Intn(len(xs))] }

func lastOf(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == ' ' {
			return name[i+1:]
		}
	}
	return name
}
