package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"nous/internal/graph"
)

// TestSnapshotSymbolTableRoundTrip pins the v2 format: the symbol table is
// the first framed section, holds every distinct string exactly once in
// sorted order, and decoding through it reproduces the graph bit-for-bit.
func TestSnapshotSymbolTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	buildSample(t, g)
	snap := g.Snapshot()

	path, _, err := writeSnapshot(dir, snap, 7)
	if err != nil {
		t.Fatal(err)
	}

	// Crack the file open by hand: header, then the symbol-table section.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(raw[8:]); v != 2 {
		t.Fatalf("version: want 2, got %d", v)
	}
	n := binary.LittleEndian.Uint64(raw[48:])
	d := newDecoder(raw[60 : 60+int(n)])
	count := d.uvarint()
	syms := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		syms = append(syms, d.string())
	}
	if d.err != nil {
		t.Fatalf("decoding symbol table: %v", d.err)
	}
	seen := make(map[string]bool, len(syms))
	for i, s := range syms {
		if seen[s] {
			t.Errorf("symbol %q appears twice in table", s)
		}
		seen[s] = true
		if i > 0 && syms[i-1] >= s {
			t.Errorf("symbol table not strictly sorted at %d: %q >= %q", i, syms[i-1], s)
		}
	}
	for _, want := range []string{"Company", "Person", "acquired", "name", "Apex", "wsj"} {
		if !seen[want] {
			t.Errorf("symbol table missing %q", want)
		}
	}

	// Full round trip through the reader and the bulk restore path.
	got, walSeq, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if walSeq != 7 {
		t.Errorf("walSeq: want 7, got %d", walSeq)
	}
	g2 := graph.New()
	if err := restoreSnapshot(g2, got); err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

// TestSnapshotDeterministic pins that equal graph state encodes to
// byte-identical files: the symbol table is sorted and props are emitted in
// key order, so there is no map-iteration nondeterminism in the output.
func TestSnapshotDeterministic(t *testing.T) {
	g := graph.New()
	buildSample(t, g)
	snap := g.Snapshot()

	read := func() []byte {
		dir := t.TempDir()
		path, _, err := writeSnapshot(dir, snap, 3)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Error("two snapshots of the same state differ byte-wise")
	}
}

// TestSnapshotV1BackwardCompat hand-encodes a version-1 snapshot — inline
// strings, no symbol-table section — and verifies the reader still decodes
// and restores it. Files written before the v2 cut must stay loadable.
func TestSnapshotV1BackwardCompat(t *testing.T) {
	g := graph.New()
	buildSample(t, g)
	snap := g.Snapshot()

	head := make([]byte, 0, 48)
	head = append(head, snapMagic...)
	head = binary.LittleEndian.AppendUint32(head, 1) // version 1
	head = binary.LittleEndian.AppendUint32(head, uint32(len(snap.Vertices)))
	head = binary.LittleEndian.AppendUint64(head, snap.Epoch)
	head = binary.LittleEndian.AppendUint64(head, uint64(snap.NextVertex))
	head = binary.LittleEndian.AppendUint64(head, uint64(snap.NextEdge))
	head = binary.LittleEndian.AppendUint64(head, 5) // walSeq

	var buf bytes.Buffer
	buf.Write(head)
	frame := make([]byte, 12)
	for i := range snap.Vertices {
		c := &codec{}
		c.putUvarint(uint64(len(snap.Vertices[i])))
		for _, v := range snap.Vertices[i] {
			c.putVertex(v)
		}
		c.putUvarint(uint64(len(snap.Edges[i])))
		for _, e := range snap.Edges[i] {
			c.putEdge(e)
		}
		p := c.bytes()
		binary.LittleEndian.PutUint64(frame[0:], uint64(len(p)))
		binary.LittleEndian.PutUint32(frame[8:], crc32.Checksum(p, castagnoli))
		buf.Write(frame)
		buf.Write(p)
	}

	path := filepath.Join(t.TempDir(), snapName(snap.Epoch))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	got, walSeq, err := readSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if walSeq != 5 {
		t.Errorf("walSeq: want 5, got %d", walSeq)
	}
	g2 := graph.New()
	if err := restoreSnapshot(g2, got); err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}
