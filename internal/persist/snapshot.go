package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nous/internal/graph"
)

// Snapshot file layout (version 1, all fixed-width fields little-endian):
//
//	magic    [8]byte  "NOUSNAP1"
//	version  uint32
//	shards   uint32   lock-stripe count at write time
//	epoch    uint64   graph mutation epoch at the cut
//	nextV    uint64   vertex ID allocator
//	nextE    uint64   edge ID allocator
//	walSeq   uint64   first WAL segment whose records may postdate this cut
//	then per shard, in stripe order:
//	  length uint64   payload byte count
//	  crc    uint32   CRC-32C (Castagnoli) of the payload
//	  payload         vcount uvarint, vertices...; ecount uvarint, edges...
//
// Shard payloads are self-contained, so the writer encodes all stripes in
// parallel and the loader decodes them in parallel from their offsets.

const (
	snapMagic   = "NOUSNAP1"
	snapVersion = 1
	snapSuffix  = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// snapName is the file name for a snapshot at the given epoch. Zero-padded
// hex so lexicographic order equals epoch order.
func snapName(epoch uint64) string { return fmt.Sprintf("snap-%016x%s", epoch, snapSuffix) }

// writeSnapshot encodes snap and atomically publishes it into dir, returning
// the file's path and size. The file appears under its final name only after
// its contents and the directory entry are fsynced, so a crash mid-write
// never leaves a partially-written file that could be mistaken for a valid
// snapshot.
func writeSnapshot(dir string, snap *graph.GraphSnapshot, walSeq uint64) (string, int64, error) {
	shards := len(snap.Vertices)
	payloads := make([][]byte, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &codec{b: make([]byte, 0, 1<<12)}
			c.putUvarint(uint64(len(snap.Vertices[i])))
			for _, v := range snap.Vertices[i] {
				c.putVertex(v)
			}
			c.putUvarint(uint64(len(snap.Edges[i])))
			for _, e := range snap.Edges[i] {
				c.putEdge(e)
			}
			payloads[i] = c.bytes()
		}(i)
	}
	wg.Wait()

	head := make([]byte, 0, 48)
	head = append(head, snapMagic...)
	head = binary.LittleEndian.AppendUint32(head, snapVersion)
	head = binary.LittleEndian.AppendUint32(head, uint32(shards))
	head = binary.LittleEndian.AppendUint64(head, snap.Epoch)
	head = binary.LittleEndian.AppendUint64(head, uint64(snap.NextVertex))
	head = binary.LittleEndian.AppendUint64(head, uint64(snap.NextEdge))
	head = binary.LittleEndian.AppendUint64(head, walSeq)

	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	write := func(b []byte) {
		if err == nil {
			_, err = tmp.Write(b)
		}
	}
	write(head)
	frame := make([]byte, 12)
	for _, p := range payloads {
		binary.LittleEndian.PutUint64(frame[0:], uint64(len(p)))
		binary.LittleEndian.PutUint32(frame[8:], crc32.Checksum(p, castagnoli))
		write(frame)
		write(p)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", 0, fmt.Errorf("persist: writing snapshot: %w", err)
	}

	final := filepath.Join(dir, snapName(snap.Epoch))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", 0, err
	}
	if err := syncDir(dir); err != nil {
		return "", 0, err
	}
	fi, err := os.Stat(final)
	if err != nil {
		return "", 0, err
	}
	return final, fi.Size(), nil
}

// readSnapshot decodes a snapshot file into per-shard vertex and edge sets.
// Any framing, CRC or payload error fails the whole file: a snapshot is
// either fully valid or unusable (the caller then falls back to an older one).
func readSnapshot(path string) (*graph.GraphSnapshot, uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < 48 || string(raw[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("persist: %s: not a snapshot file", path)
	}
	if v := binary.LittleEndian.Uint32(raw[8:]); v != snapVersion {
		return nil, 0, fmt.Errorf("persist: %s: unsupported snapshot version %d", path, v)
	}
	shards := int(binary.LittleEndian.Uint32(raw[12:]))
	if shards <= 0 || shards > 1<<10 {
		return nil, 0, fmt.Errorf("persist: %s: implausible shard count %d", path, shards)
	}
	snap := &graph.GraphSnapshot{
		Vertices:   make([][]graph.Vertex, shards),
		Edges:      make([][]graph.Edge, shards),
		Epoch:      binary.LittleEndian.Uint64(raw[16:]),
		NextVertex: int64(binary.LittleEndian.Uint64(raw[24:])),
		NextEdge:   int64(binary.LittleEndian.Uint64(raw[32:])),
	}
	walSeq := binary.LittleEndian.Uint64(raw[40:])

	// Frame pass: locate and CRC-check every section before decoding.
	type section struct{ start, end int }
	sections := make([]section, shards)
	off := 48
	for i := 0; i < shards; i++ {
		if off+12 > len(raw) {
			return nil, 0, fmt.Errorf("persist: %s: truncated at shard %d frame", path, i)
		}
		n := binary.LittleEndian.Uint64(raw[off:])
		crc := binary.LittleEndian.Uint32(raw[off+8:])
		off += 12
		if uint64(len(raw)-off) < n {
			return nil, 0, fmt.Errorf("persist: %s: truncated shard %d payload", path, i)
		}
		end := off + int(n)
		if crc32.Checksum(raw[off:end], castagnoli) != crc {
			return nil, 0, fmt.Errorf("persist: %s: shard %d CRC mismatch", path, i)
		}
		sections[i] = section{off, end}
		off = end
	}

	// Decode pass: sections are independent, decode them in parallel.
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := newDecoder(raw[sections[i].start:sections[i].end])
			nv := d.uvarint()
			if d.err == nil && nv > uint64(sections[i].end-sections[i].start) {
				d.fail("vertex count")
			}
			vs := make([]graph.Vertex, 0, nv)
			for j := uint64(0); j < nv && d.err == nil; j++ {
				vs = append(vs, d.vertex())
			}
			ne := d.uvarint()
			if d.err == nil && ne > uint64(sections[i].end-sections[i].start) {
				d.fail("edge count")
			}
			es := make([]graph.Edge, 0, ne)
			for j := uint64(0); j < ne && d.err == nil; j++ {
				es = append(es, d.edge())
			}
			if d.err != nil {
				errs[i] = fmt.Errorf("persist: %s: shard %d: %w", path, i, d.err)
				return
			}
			snap.Vertices[i] = vs
			snap.Edges[i] = es
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return snap, walSeq, nil
}

// restoreSnapshot loads a decoded snapshot into an empty graph: vertices
// first (parallel across shards — each vertex lands in its own stripe), then
// edges (parallel too; RestoreEdge takes the proper multi-shard locks).
func restoreSnapshot(g *graph.Graph, snap *graph.GraphSnapshot) error {
	var wg sync.WaitGroup
	for i := range snap.Vertices {
		wg.Add(1)
		go func(vs []graph.Vertex) {
			defer wg.Done()
			for _, v := range vs {
				g.RestoreVertex(v)
			}
		}(snap.Vertices[i])
	}
	wg.Wait()
	errs := make([]error, len(snap.Edges))
	for i := range snap.Edges {
		wg.Add(1)
		go func(i int, es []graph.Edge) {
			defer wg.Done()
			for _, e := range es {
				if err := g.RestoreEdge(e); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, snap.Edges[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	g.AdvanceIDs(snap.NextVertex, snap.NextEdge)
	g.SetEpoch(snap.Epoch)
	return nil
}

// listSnapshots returns the snapshot paths in dir, newest (highest epoch)
// first.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, snapSuffix) {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	return out, nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
