package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nous/internal/graph"
)

// Snapshot file layout (all fixed-width fields little-endian):
//
//	magic    [8]byte  "NOUSNAP1"
//	version  uint32   1 or 2
//	shards   uint32   lock-stripe count at write time
//	epoch    uint64   graph mutation epoch at the cut
//	nextV    uint64   vertex ID allocator
//	nextE    uint64   edge ID allocator
//	walSeq   uint64   first WAL segment whose records may postdate this cut
//	[v2 only] one symbol-table section, framed like a shard section:
//	  length uint64   payload byte count
//	  crc    uint32   CRC-32C (Castagnoli) of the payload
//	  payload         count uvarint, then count length-prefixed strings,
//	                  sorted lexicographically (reference = sort rank)
//	then per shard, in stripe order:
//	  length uint64   payload byte count
//	  crc    uint32   CRC-32C (Castagnoli) of the payload
//	  payload         vcount uvarint, vertices...; ecount uvarint, edges...
//
// Version 1 embeds every string inline in the shard payloads. Version 2 —
// the only version written — stores each distinct label, property key and
// property value once in the symbol-table section and encodes elements with
// uvarint references into it. The table is sorted, so equal graph state
// still produces byte-identical files; version 1 files remain readable.
//
// Shard payloads are self-contained given the symbol table, so the writer
// encodes all stripes in parallel and the loader decodes them in parallel
// from their offsets.

const (
	snapMagic   = "NOUSNAP1"
	snapVersion = 2
	snapSuffix  = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// snapName is the file name for a snapshot at the given epoch. Zero-padded
// hex so lexicographic order equals epoch order.
func snapName(epoch uint64) string { return fmt.Sprintf("snap-%016x%s", epoch, snapSuffix) }

// writeSnapshot encodes snap and atomically publishes it into dir, returning
// the file's path and size. The file appears under its final name only after
// its contents and the directory entry are fsynced, so a crash mid-write
// never leaves a partially-written file that could be mistaken for a valid
// snapshot.
func writeSnapshot(dir string, snap *graph.GraphSnapshot, walSeq uint64) (string, int64, error) {
	shards := len(snap.Vertices)

	// Pass one: collect every distinct string per stripe in parallel, then
	// merge and sort into the snapshot's symbol table. Sorting makes ID
	// assignment deterministic regardless of collection order, which keeps
	// equal state encoding to byte-identical files.
	perShard := make([]map[string]struct{}, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			set := make(map[string]struct{})
			addProps := func(p map[string]string) {
				for k, v := range p {
					set[k] = struct{}{}
					set[v] = struct{}{}
				}
			}
			for _, v := range snap.Vertices[i] {
				set[v.Label] = struct{}{}
				addProps(v.Props)
			}
			for _, e := range snap.Edges[i] {
				set[e.Label] = struct{}{}
				addProps(e.Props)
			}
			perShard[i] = set
		}(i)
	}
	wg.Wait()
	merged := make(map[string]struct{})
	for _, set := range perShard {
		for s := range set {
			merged[s] = struct{}{}
		}
	}
	table := make([]string, 0, len(merged))
	for s := range merged {
		table = append(table, s)
	}
	sort.Strings(table)
	index := make(map[string]uint32, len(table))
	for i, s := range table {
		index[s] = uint32(i)
	}
	symc := &codec{b: make([]byte, 0, 1<<12)}
	symc.putUvarint(uint64(len(table)))
	for _, s := range table {
		symc.putString(s)
	}

	// Pass two: encode stripes in parallel against the read-only index.
	payloads := make([][]byte, shards)
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &codec{b: make([]byte, 0, 1<<12)}
			c.putUvarint(uint64(len(snap.Vertices[i])))
			for _, v := range snap.Vertices[i] {
				c.putVertexSym(index, v)
			}
			c.putUvarint(uint64(len(snap.Edges[i])))
			for _, e := range snap.Edges[i] {
				c.putEdgeSym(index, e)
			}
			payloads[i] = c.bytes()
		}(i)
	}
	wg.Wait()
	// The symbol table is the first framed section of a v2 file.
	payloads = append([][]byte{symc.bytes()}, payloads...)

	head := make([]byte, 0, 48)
	head = append(head, snapMagic...)
	head = binary.LittleEndian.AppendUint32(head, snapVersion)
	head = binary.LittleEndian.AppendUint32(head, uint32(shards))
	head = binary.LittleEndian.AppendUint64(head, snap.Epoch)
	head = binary.LittleEndian.AppendUint64(head, uint64(snap.NextVertex))
	head = binary.LittleEndian.AppendUint64(head, uint64(snap.NextEdge))
	head = binary.LittleEndian.AppendUint64(head, walSeq)

	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	write := func(b []byte) {
		if err == nil {
			_, err = tmp.Write(b)
		}
	}
	write(head)
	frame := make([]byte, 12)
	for _, p := range payloads {
		binary.LittleEndian.PutUint64(frame[0:], uint64(len(p)))
		binary.LittleEndian.PutUint32(frame[8:], crc32.Checksum(p, castagnoli))
		write(frame)
		write(p)
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", 0, fmt.Errorf("persist: writing snapshot: %w", err)
	}

	final := filepath.Join(dir, snapName(snap.Epoch))
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", 0, err
	}
	if err := syncDir(dir); err != nil {
		return "", 0, err
	}
	fi, err := os.Stat(final)
	if err != nil {
		return "", 0, err
	}
	return final, fi.Size(), nil
}

// readSnapshot decodes a snapshot file into per-shard vertex and edge sets.
// Any framing, CRC or payload error fails the whole file: a snapshot is
// either fully valid or unusable (the caller then falls back to an older one).
func readSnapshot(path string) (*graph.GraphSnapshot, uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return decodeSnapshot(raw, path)
}

// decodeSnapshot parses an in-memory snapshot image. path only labels errors;
// replication followers decode snapshots fetched over HTTP without touching
// disk.
func decodeSnapshot(raw []byte, path string) (*graph.GraphSnapshot, uint64, error) {
	if len(raw) < 48 || string(raw[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("persist: %s: not a snapshot file", path)
	}
	version := binary.LittleEndian.Uint32(raw[8:])
	if version != 1 && version != 2 {
		return nil, 0, fmt.Errorf("persist: %s: unsupported snapshot version %d", path, version)
	}
	shards := int(binary.LittleEndian.Uint32(raw[12:]))
	if shards <= 0 || shards > 1<<10 {
		return nil, 0, fmt.Errorf("persist: %s: implausible shard count %d", path, shards)
	}
	snap := &graph.GraphSnapshot{
		Vertices:   make([][]graph.Vertex, shards),
		Edges:      make([][]graph.Edge, shards),
		Epoch:      binary.LittleEndian.Uint64(raw[16:]),
		NextVertex: int64(binary.LittleEndian.Uint64(raw[24:])),
		NextEdge:   int64(binary.LittleEndian.Uint64(raw[32:])),
	}
	walSeq := binary.LittleEndian.Uint64(raw[40:])

	// Frame pass: locate and CRC-check every section before decoding. A v2
	// file carries one extra leading section, the symbol table.
	nSections := shards
	if version >= 2 {
		nSections++
	}
	type section struct{ start, end int }
	sections := make([]section, nSections)
	off := 48
	for i := 0; i < nSections; i++ {
		if off+12 > len(raw) {
			return nil, 0, fmt.Errorf("persist: %s: truncated at section %d frame", path, i)
		}
		n := binary.LittleEndian.Uint64(raw[off:])
		crc := binary.LittleEndian.Uint32(raw[off+8:])
		off += 12
		if uint64(len(raw)-off) < n {
			return nil, 0, fmt.Errorf("persist: %s: truncated section %d payload", path, i)
		}
		end := off + int(n)
		if crc32.Checksum(raw[off:end], castagnoli) != crc {
			return nil, 0, fmt.Errorf("persist: %s: section %d CRC mismatch", path, i)
		}
		sections[i] = section{off, end}
		off = end
	}

	// Symbol table first: shard decoding references it.
	var syms []string
	if version >= 2 {
		d := newDecoder(raw[sections[0].start:sections[0].end])
		n := d.uvarint()
		if d.err == nil && n > uint64(sections[0].end-sections[0].start) {
			d.fail("symbol count")
		}
		syms = make([]string, 0, n)
		for j := uint64(0); j < n && d.err == nil; j++ {
			syms = append(syms, d.string())
		}
		if d.err != nil {
			return nil, 0, fmt.Errorf("persist: %s: symbol table: %w", path, d.err)
		}
		sections = sections[1:]
	}

	// Decode pass: shard sections are independent, decode them in parallel.
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := newDecoder(raw[sections[i].start:sections[i].end])
			nv := d.uvarint()
			if d.err == nil && nv > uint64(sections[i].end-sections[i].start) {
				d.fail("vertex count")
			}
			vs := make([]graph.Vertex, 0, nv)
			for j := uint64(0); j < nv && d.err == nil; j++ {
				if version >= 2 {
					vs = append(vs, d.vertexSym(syms))
				} else {
					vs = append(vs, d.vertex())
				}
			}
			ne := d.uvarint()
			if d.err == nil && ne > uint64(sections[i].end-sections[i].start) {
				d.fail("edge count")
			}
			es := make([]graph.Edge, 0, ne)
			for j := uint64(0); j < ne && d.err == nil; j++ {
				if version >= 2 {
					es = append(es, d.edgeSym(syms))
				} else {
					es = append(es, d.edge())
				}
			}
			if d.err != nil {
				errs[i] = fmt.Errorf("persist: %s: shard %d: %w", path, i, d.err)
				return
			}
			snap.Vertices[i] = vs
			snap.Edges[i] = es
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return snap, walSeq, nil
}

// restoreSnapshot loads a decoded snapshot into an empty graph: vertices
// first (parallel across shards — each vertex lands in its own stripe), then
// edges via the bulk RestoreEdges path, which rebuilds each stripe's columnar
// slab with one worker per shard.
func restoreSnapshot(g *graph.Graph, snap *graph.GraphSnapshot) error {
	var wg sync.WaitGroup
	for i := range snap.Vertices {
		wg.Add(1)
		go func(vs []graph.Vertex) {
			defer wg.Done()
			g.RestoreVertices(vs)
		}(snap.Vertices[i])
	}
	wg.Wait()

	// RestoreEdges rebuilds the columnar slabs one stripe per worker, but it
	// needs the edge groups keyed by owning shard. A snapshot written with
	// the current shard count already is; otherwise regroup by edge ID.
	byOwner := snap.Edges
	if len(byOwner) != graph.ShardCount() {
		byOwner = make([][]graph.Edge, graph.ShardCount())
		for _, es := range snap.Edges {
			for _, e := range es {
				si := int(uint64(e.ID) % uint64(graph.ShardCount()))
				byOwner[si] = append(byOwner[si], e)
			}
		}
	}
	if err := g.RestoreEdges(byOwner); err != nil {
		return err
	}
	g.AdvanceIDs(snap.NextVertex, snap.NextEdge)
	g.SetEpoch(snap.Epoch)
	return nil
}

// listSnapshots returns the snapshot paths in dir, newest (highest epoch)
// first.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, snapSuffix) {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	return out, nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
