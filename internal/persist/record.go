// Package persist makes the sharded, epoch-versioned graph durable. It
// combines two artifacts on disk:
//
//   - Snapshots: versioned binary files holding a consistent point-in-time
//     copy of the whole graph — vertices, properties, edges, and the
//     mutation epoch — with each of the store's lock stripes encoded as an
//     independent CRC-protected section, so snapshot encode/decode
//     parallelizes across stripes.
//
//   - A write-ahead log (WAL): an append-only sequence of CRC-framed
//     mutation records (one per graph write, batch writes log one record)
//     with group-commit buffering, so bulk ingest amortizes fsyncs.
//
// Recovery loads the newest valid snapshot and replays the WAL tail on top
// of it. Replay is idempotent (records carry explicit IDs), so the WAL cut
// point does not need to align exactly with the snapshot; a torn or
// bit-flipped final record fails its CRC and truncates cleanly, losing at
// most that record. A background checkpointer rolls a fresh snapshot and
// prunes old log segments once the WAL exceeds a size budget.
package persist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"nous/internal/graph"
)

// codec is a little append-only buffer with the primitive encoders the
// snapshot and WAL formats share. All integers are varint-encoded except
// fixed-width format fields; strings and maps are length-prefixed.
type codec struct{ b []byte }

func (c *codec) bytes() []byte { return c.b }

func (c *codec) putUvarint(v uint64) { c.b = binary.AppendUvarint(c.b, v) }
func (c *codec) putVarint(v int64)   { c.b = binary.AppendVarint(c.b, v) }
func (c *codec) putFloat64(f float64) {
	c.b = binary.LittleEndian.AppendUint64(c.b, math.Float64bits(f))
}

func (c *codec) putString(s string) {
	c.putUvarint(uint64(len(s)))
	c.b = append(c.b, s...)
}

func (c *codec) putProps(p map[string]string) {
	c.putUvarint(uint64(len(p)))
	// Deterministic order is not required for correctness (props restore to
	// a map), but sorted keys make snapshots byte-stable for equal state.
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.putString(k)
		c.putString(p[k])
	}
}

func (c *codec) putVertex(v graph.Vertex) {
	c.putVarint(int64(v.ID))
	c.putString(v.Label)
	c.putProps(v.Props)
}

func (c *codec) putEdge(e graph.Edge) {
	c.putVarint(int64(e.ID))
	c.putVarint(int64(e.Src))
	c.putVarint(int64(e.Dst))
	c.putString(e.Label)
	c.putFloat64(e.Weight)
	c.putVarint(e.Timestamp)
	c.putProps(e.Props)
}

// --- Symbol-referenced encoding (snapshot v2) ------------------------------
//
// Snapshot v2 payloads do not embed strings inline: every label, property
// key and property value is a uvarint reference into the snapshot's symbol
// table section (strings sorted lexicographically, referenced by rank). The
// table is built deterministically from the snapshot contents, so equal
// graph state still encodes to byte-identical files, and repeated strings —
// predicates, type names, provenance values — are stored once per file
// instead of once per element. WAL records keep the inline (v1) string
// encoding: they are written on the mutation path where building a
// per-record table would cost more than it saves.

// putSym appends one symbol reference.
func (c *codec) putSym(tab map[string]uint32, s string) { c.putUvarint(uint64(tab[s])) }

// putPropsSym encodes a props map as (keyRef, valueRef) pairs. Keys are
// emitted in sorted-string order, which — because symbol IDs are assigned in
// lexicographic order — is also ascending reference order.
func (c *codec) putPropsSym(tab map[string]uint32, p map[string]string) {
	c.putUvarint(uint64(len(p)))
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.putSym(tab, k)
		c.putSym(tab, p[k])
	}
}

func (c *codec) putVertexSym(tab map[string]uint32, v graph.Vertex) {
	c.putVarint(int64(v.ID))
	c.putSym(tab, v.Label)
	c.putPropsSym(tab, v.Props)
}

func (c *codec) putEdgeSym(tab map[string]uint32, e graph.Edge) {
	c.putVarint(int64(e.ID))
	c.putVarint(int64(e.Src))
	c.putVarint(int64(e.Dst))
	c.putSym(tab, e.Label)
	c.putFloat64(e.Weight)
	c.putVarint(e.Timestamp)
	c.putPropsSym(tab, e.Props)
}

// decoder walks an encoded payload. Every read validates remaining length;
// the first malformed field poisons the decoder and err reports it.
type decoder struct {
	b   []byte
	off int
	err error
}

func newDecoder(b []byte) *decoder { return &decoder{b: b} }

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("persist: truncated or corrupt %s at offset %d", what, d.off)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)-d.off) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+uint64n(n)])
	d.off += uint64n(n)
	return s
}

func uint64n(v uint64) int { return int(v) }

func (d *decoder) props() map[string]string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.b)-d.off) { // each pair needs >= 2 bytes; cheap sanity bound
		d.fail("props count")
		return nil
	}
	p := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := d.string()
		v := d.string()
		if d.err != nil {
			return nil
		}
		p[k] = v
	}
	return p
}

// sym resolves one symbol reference against the snapshot's decoded table.
func (d *decoder) sym(syms []string) string {
	i := d.uvarint()
	if d.err != nil {
		return ""
	}
	if i >= uint64(len(syms)) {
		d.fail("symbol reference")
		return ""
	}
	return syms[i]
}

func (d *decoder) propsSym(syms []string) map[string]string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.b)-d.off) { // each pair needs >= 2 bytes; cheap sanity bound
		d.fail("props count")
		return nil
	}
	p := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := d.sym(syms)
		v := d.sym(syms)
		if d.err != nil {
			return nil
		}
		p[k] = v
	}
	return p
}

func (d *decoder) vertexSym(syms []string) graph.Vertex {
	return graph.Vertex{
		ID:    graph.VertexID(d.varint()),
		Label: d.sym(syms),
		Props: d.propsSym(syms),
	}
}

func (d *decoder) edgeSym(syms []string) graph.Edge {
	return graph.Edge{
		ID:        graph.EdgeID(d.varint()),
		Src:       graph.VertexID(d.varint()),
		Dst:       graph.VertexID(d.varint()),
		Label:     d.sym(syms),
		Weight:    d.float64(),
		Timestamp: d.varint(),
		Props:     d.propsSym(syms),
	}
}

func (d *decoder) vertex() graph.Vertex {
	return graph.Vertex{
		ID:    graph.VertexID(d.varint()),
		Label: d.string(),
		Props: d.props(),
	}
}

func (d *decoder) edge() graph.Edge {
	return graph.Edge{
		ID:        graph.EdgeID(d.varint()),
		Src:       graph.VertexID(d.varint()),
		Dst:       graph.VertexID(d.varint()),
		Label:     d.string(),
		Weight:    d.float64(),
		Timestamp: d.varint(),
		Props:     d.props(),
	}
}

// --- Mutation record encoding ---------------------------------------------

// encodeMutation serializes one graph mutation as a WAL record payload:
// kind byte, epoch uvarint, then kind-specific fields.
func encodeMutation(m graph.Mutation) []byte {
	c := &codec{b: make([]byte, 0, 64)}
	c.b = append(c.b, byte(m.Kind))
	c.putUvarint(m.Epoch)
	switch m.Kind {
	case graph.MutAddVertex:
		c.putVertex(m.Vertex)
	case graph.MutSetVertexProp:
		c.putVarint(int64(m.VertexID))
		c.putString(m.Key)
		c.putString(m.Value)
	case graph.MutAddEdges:
		c.putUvarint(uint64(len(m.Edges)))
		for _, e := range m.Edges {
			c.putEdge(e)
		}
	case graph.MutRemoveEdge:
		c.putVarint(int64(m.EdgeID))
	case graph.MutSetEdgeProp:
		c.putVarint(int64(m.EdgeID))
		c.putString(m.Key)
		c.putString(m.Value)
	case graph.MutSetEdgeWeight:
		c.putVarint(int64(m.EdgeID))
		c.putFloat64(m.Weight)
	}
	return c.bytes()
}

// decodeMutation parses a WAL record payload.
func decodeMutation(b []byte) (graph.Mutation, error) {
	if len(b) == 0 {
		return graph.Mutation{}, fmt.Errorf("persist: empty mutation record")
	}
	m := graph.Mutation{Kind: graph.MutationKind(b[0])}
	d := newDecoder(b[1:])
	m.Epoch = d.uvarint()
	switch m.Kind {
	case graph.MutAddVertex:
		m.Vertex = d.vertex()
	case graph.MutSetVertexProp:
		m.VertexID = graph.VertexID(d.varint())
		m.Key = d.string()
		m.Value = d.string()
	case graph.MutAddEdges:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(b)) { // records can't hold more edges than bytes
			d.fail("edge count")
		}
		if d.err == nil {
			m.Edges = make([]graph.Edge, 0, n)
			for i := uint64(0); i < n; i++ {
				m.Edges = append(m.Edges, d.edge())
			}
		}
	case graph.MutRemoveEdge:
		m.EdgeID = graph.EdgeID(d.varint())
	case graph.MutSetEdgeProp:
		m.EdgeID = graph.EdgeID(d.varint())
		m.Key = d.string()
		m.Value = d.string()
	case graph.MutSetEdgeWeight:
		m.EdgeID = graph.EdgeID(d.varint())
		m.Weight = d.float64()
	default:
		return m, fmt.Errorf("persist: unknown mutation kind %d", m.Kind)
	}
	if d.err != nil {
		return m, d.err
	}
	return m, nil
}

// applyMutation replays one decoded record onto the graph through the
// restore API. Replay is idempotent: explicit-ID inserts overwrite or skip,
// and set/remove operations on records that no longer exist are no-ops
// (their insertion may predate the snapshot that superseded them).
func applyMutation(g *graph.Graph, m graph.Mutation) error {
	switch m.Kind {
	case graph.MutAddVertex:
		g.RestoreVertex(m.Vertex)
	case graph.MutSetVertexProp:
		g.SetVertexProp(m.VertexID, m.Key, m.Value)
	case graph.MutAddEdges:
		for _, e := range m.Edges {
			if err := g.RestoreEdge(e); err != nil {
				return err
			}
		}
	case graph.MutRemoveEdge:
		g.RemoveEdge(m.EdgeID)
	case graph.MutSetEdgeProp:
		g.SetEdgeProp(m.EdgeID, m.Key, m.Value)
	case graph.MutSetEdgeWeight:
		g.SetEdgeWeight(m.EdgeID, m.Weight)
	default:
		return fmt.Errorf("persist: unknown mutation kind %d", m.Kind)
	}
	return nil
}
