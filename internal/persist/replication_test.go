package persist

import (
	"errors"
	"os"
	"testing"
	"time"

	"nous/internal/graph"
)

// quietOptions keeps the background machinery out of the test's way.
func quietOptions() Options {
	return Options{DisableAutoCheckpoint: true, FlushInterval: time.Hour}
}

// drain reads records until the cursor reports caught-up, returning the
// payload epochs in stream order.
func drain(t *testing.T, cur *WALCursor) []uint64 {
	t.Helper()
	var epochs []uint64
	for {
		payload, err := cur.Next()
		if errors.Is(err, ErrCaughtUp) {
			return epochs
		}
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		e, err := RecordEpoch(payload)
		if err != nil {
			t.Fatalf("record epoch: %v", err)
		}
		if _, err := DecodeRecord(payload); err != nil {
			t.Fatalf("decode: %v", err)
		}
		epochs = append(epochs, e)
	}
}

func TestWALCursorTailsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st, err := Open(dir, g, quietOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	a := g.AddVertex("A")
	b := g.AddVertex("B")
	if _, err := g.AddEdge(a, b, "x"); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	cur, err := OpenWALCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	got := drain(t, cur)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("epochs = %v, want [1 2 3]", got)
	}

	// Roll the segment while the cursor is parked at the live tail; new
	// records land in the next segment and the cursor must follow.
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, a, "y"); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	got = drain(t, cur)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("post-rotation epochs = %v, want [4]", got)
	}
}

// TestWALCursorBufferedTailNotLost: records buffered in the group-commit
// window when a checkpoint rotates must be visible to the cursor before it
// advances to the new segment (the flush-before-rotate ordering).
func TestWALCursorBufferedTailNotLost(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	// Large group-commit threshold: nothing flushes until rotation.
	opt := quietOptions()
	opt.GroupCommitBytes = 1 << 20
	st, err := Open(dir, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	g.AddVertex("A")
	g.AddVertex("B")
	cur, err := OpenWALCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if got := drain(t, cur); len(got) != 0 {
		t.Fatalf("unflushed records visible early: %v", got)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, cur); len(got) != 2 {
		t.Fatalf("epochs after rotation = %v, want the 2 buffered records", got)
	}
}

// TestWALCursorSegmentGap: when pruning removes the next segment in
// sequence mid-stream, the cursor must refuse to skip silently.
func TestWALCursorSegmentGap(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st, err := Open(dir, g, quietOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	g.AddVertex("A")
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	cur, err := OpenWALCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if got := drain(t, cur); len(got) != 1 {
		t.Fatalf("epochs = %v, want 1 record", got)
	}

	// Three checkpoints with a record in each window: retention (2) prunes
	// segment 1 while the cursor still sits on segment 0.
	for i := 0; i < 3; i++ {
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		g.AddVertex("B")
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	_, err = cur.Next()
	if !errors.Is(err, ErrSegmentGap) {
		t.Fatalf("err = %v, want ErrSegmentGap", err)
	}
}

func TestSnapshotDiscoveryAndFloor(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st, err := Open(dir, g, quietOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if _, _, ok, err := NewestSnapshot(dir); err != nil || ok {
		t.Fatalf("NewestSnapshot on empty dir = ok=%v err=%v", ok, err)
	}
	if _, ok, err := FloorEpoch(dir); err != nil || ok {
		t.Fatalf("FloorEpoch on empty dir = ok=%v err=%v", ok, err)
	}

	g.AddVertex("A")
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g.AddVertex("B")
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	path, epoch, ok, err := NewestSnapshot(dir)
	if err != nil || !ok || epoch != 2 {
		t.Fatalf("NewestSnapshot = %q epoch=%d ok=%v err=%v, want epoch 2", path, epoch, ok, err)
	}
	floor, ok, err := FloorEpoch(dir)
	if err != nil || !ok || floor != 1 {
		t.Fatalf("FloorEpoch = %d ok=%v err=%v, want 1", floor, ok, err)
	}

	// The snapshot bytes restore into an empty graph at the same epoch.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g2 := graph.New()
	e, err := RestoreSnapshotBytes(g2, raw)
	if err != nil || e != 2 {
		t.Fatalf("RestoreSnapshotBytes epoch=%d err=%v, want 2", e, err)
	}
	if g2.NumVertices() != 2 {
		t.Fatalf("restored vertices = %d, want 2", g2.NumVertices())
	}
}
