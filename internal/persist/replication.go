package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nous/internal/graph"
)

// Replication exports
//
// A replication leader streams its WAL to followers: the on-disk record
// framing (length + CRC-32C + payload, wal.go) doubles as the wire framing,
// and the follower applies decoded records through graph.ApplyReplicated.
// This file exports the pieces internal/repl needs: a disk-tailing cursor
// over the store's segments, payload helpers (epoch peek, decode, framing),
// and snapshot discovery/restore for follower bootstrap.

// ErrCaughtUp is returned by WALCursor.Next at the live segment's current
// end: every durable record has been consumed. The caller syncs the store
// (to flush group-commit buffers) and polls again.
var ErrCaughtUp = errors.New("persist: WAL cursor caught up")

// ErrSegmentGap is returned by WALCursor.Next when the next segment in
// sequence has been pruned from under the cursor. The records it missed are
// covered by every retained snapshot (that is what makes pruning legal), so
// the stream must end and the consumer reconnect: the leader's floor check
// then decides between resuming and re-bootstrapping.
var ErrSegmentGap = errors.New("persist: WAL segment pruned under cursor")

// MaxWALRecordSize bounds one framed record, matching replay's cap.
const MaxWALRecordSize = maxRecordSize

// Dir returns the directory the store persists into.
func (st *Store) Dir() string { return st.dir }

// RecordCRC is the checksum the WAL framing carries (CRC-32C, Castagnoli).
func RecordCRC(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// AppendFrame appends one record to dst in the WAL's wire framing:
// length uint32 LE, CRC-32C uint32 LE, payload.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, RecordCRC(payload))
	return append(dst, payload...)
}

// RecordEpoch peeks the epoch stamp of an encoded record without a full
// decode; every payload starts with its kind byte and epoch uvarint.
func RecordEpoch(payload []byte) (uint64, error) {
	if len(payload) < 2 {
		return 0, fmt.Errorf("persist: record too short for an epoch stamp")
	}
	e, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return 0, fmt.Errorf("persist: malformed epoch stamp")
	}
	return e, nil
}

// DecodeRecord parses one WAL record payload into the mutation it logs.
func DecodeRecord(payload []byte) (graph.Mutation, error) {
	return decodeMutation(payload)
}

// WALCursor reads a store's WAL segments from disk as one continuous record
// stream, tailing the live segment. It is a read-only observer: it opens
// segment files independently of the store's writer, so a cursor per
// follower costs the leader nothing on the write path.
//
// A segment is considered finished only when a later segment exists — the
// store flushes a retiring segment before creating its successor
// (Checkpoint), so "clean end + later segment" proves completeness. A short
// or CRC-invalid frame on the newest segment is an in-flight group commit,
// reported as ErrCaughtUp and re-read on the next call.
type WALCursor struct {
	dir     string
	seq     uint64
	off     int64
	f       *os.File
	started bool
}

// OpenWALCursor positions a cursor at the oldest retained WAL segment in
// dir. Records the consumer already holds are skipped by the caller via
// their epoch stamps.
func OpenWALCursor(dir string) (*WALCursor, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	return &WALCursor{dir: dir}, nil
}

// Close releases the cursor's open segment.
func (c *WALCursor) Close() error {
	if c.f != nil {
		err := c.f.Close()
		c.f = nil
		return err
	}
	return nil
}

// errFrameTail marks a frame that does not (yet) parse at the current
// offset: a clean end, an in-flight write, or a torn tail. Whether that
// means "caught up" or "segment finished" depends on whether a later
// segment exists.
var errFrameTail = errors.New("persist: frame incomplete at segment tail")

// Next returns the next record payload, ErrCaughtUp at the live tail, or
// ErrSegmentGap when pruning removed the next segment in sequence.
func (c *WALCursor) Next() ([]byte, error) {
	for {
		if c.f == nil {
			if err := c.open(); err != nil {
				return nil, err
			}
		}
		payload, err := c.readFrame()
		if err == nil {
			return payload, nil
		}
		if !errors.Is(err, errFrameTail) {
			return nil, err
		}
		next, ok, err := c.nextSeq()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, ErrCaughtUp // live tail: poll again after a store sync
		}
		c.Close()
		if next != c.seq+1 {
			return nil, ErrSegmentGap
		}
		c.seq = next
	}
}

// open attaches the cursor to segment c.seq (or, on first use, the oldest
// segment present). A segment whose header is not yet fully on disk is
// reported as ErrCaughtUp: createWAL syncs the header before any record, so
// this only happens in the creation window.
func (c *WALCursor) open() error {
	seqs, err := listWALSeqs(c.dir)
	if err != nil {
		return err
	}
	pick, ok := smallestAtLeast(seqs, c.seq)
	if !ok {
		return ErrCaughtUp // no segment yet (store still opening)
	}
	if c.started && pick != c.seq {
		return ErrSegmentGap
	}
	f, err := os.Open(filepath.Join(c.dir, walName(pick)))
	if err != nil {
		if os.IsNotExist(err) {
			return ErrCaughtUp // listed then pruned/renamed; re-list next call
		}
		return err
	}
	head := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(f, head); err != nil {
		f.Close()
		return ErrCaughtUp // header mid-write
	}
	if string(head[:8]) != walMagic {
		f.Close()
		return fmt.Errorf("persist: %s: not a WAL segment", walName(pick))
	}
	if v := binary.LittleEndian.Uint32(head[8:]); v != walVersion {
		f.Close()
		return fmt.Errorf("persist: %s: unsupported WAL version %d", walName(pick), v)
	}
	c.f, c.seq, c.off, c.started = f, pick, walHeaderSize, true
	return nil
}

// readFrame parses one record at the current offset. Any shortfall —
// missing header bytes, implausible length, short payload, CRC mismatch —
// is errFrameTail: on the live segment it is an in-flight group commit and
// resolves on a later read; on a finished segment Next advances.
func (c *WALCursor) readFrame() ([]byte, error) {
	var head [8]byte
	if _, err := c.f.ReadAt(head[:], c.off); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errFrameTail
		}
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(head[0:]))
	crc := binary.LittleEndian.Uint32(head[4:])
	if n > maxRecordSize {
		return nil, errFrameTail
	}
	payload := make([]byte, n)
	if _, err := c.f.ReadAt(payload, c.off+8); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, errFrameTail
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, errFrameTail
	}
	c.off += int64(8 + n)
	return payload, nil
}

// nextSeq reports the smallest on-disk segment sequence greater than the
// cursor's current one.
func (c *WALCursor) nextSeq() (uint64, bool, error) {
	seqs, err := listWALSeqs(c.dir)
	if err != nil {
		return 0, false, err
	}
	next, ok := smallestAtLeast(seqs, c.seq+1)
	return next, ok, nil
}

// listWALSeqs returns the segment sequence numbers present in dir,
// ascending.
func listWALSeqs(dir string) ([]uint64, error) {
	paths, err := listWALs(dir)
	if err != nil {
		return nil, err
	}
	seqs := make([]uint64, 0, len(paths))
	for _, p := range paths {
		if seq, ok := parseWALSeq(p); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

func smallestAtLeast(seqs []uint64, min uint64) (uint64, bool) {
	for _, s := range seqs {
		if s >= min {
			return s, true
		}
	}
	return 0, false
}

// --- Snapshot discovery and follower restore -------------------------------

// parseSnapEpoch extracts the epoch from a snapshot file name
// (snap-%016x.snap — the name snapName writes).
func parseSnapEpoch(path string) (uint64, bool) {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	var epoch uint64
	_, err := fmt.Sscanf(name, "snap-%016x"+snapSuffix, &epoch)
	return epoch, err == nil
}

// NewestSnapshot returns the path and epoch of the newest snapshot in dir;
// ok is false when none exists.
func NewestSnapshot(dir string) (path string, epoch uint64, ok bool, err error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return "", 0, false, err
	}
	for _, p := range snaps { // newest first
		if e, pok := parseSnapEpoch(p); pok {
			return p, e, true, nil
		}
	}
	return "", 0, false, nil
}

// FloorEpoch returns the oldest retained snapshot's epoch — the resume
// floor for WAL streaming. Every record in a pruned segment has an epoch at
// or below this floor, so a consumer whose applied epoch is >= the floor
// loses nothing to pruning; one below it must re-bootstrap. 0 (with ok
// false) means nothing has been pruned under any snapshot yet and streams
// may start from epoch 0.
func FloorEpoch(dir string) (epoch uint64, ok bool, err error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return 0, false, err
	}
	for i := len(snaps) - 1; i >= 0; i-- { // oldest last
		if e, pok := parseSnapEpoch(snaps[i]); pok {
			return e, true, nil
		}
	}
	return 0, false, nil
}

// RestoreSnapshotBytes decodes an in-memory snapshot image (as fetched from
// a leader) and loads it into an empty graph via the parallel bulk-restore
// paths. It returns the snapshot's epoch.
func RestoreSnapshotBytes(g *graph.Graph, raw []byte) (uint64, error) {
	snap, _, err := decodeSnapshot(raw, "snapshot stream")
	if err != nil {
		return 0, err
	}
	if err := restoreSnapshot(g, snap); err != nil {
		return 0, err
	}
	return snap.Epoch, nil
}
