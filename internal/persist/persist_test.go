package persist

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"nous/internal/graph"
	"nous/internal/temporal"
)

// testOptions flushes every record immediately and disables the background
// checkpointer so tests control exactly what is on disk.
func testOptions() Options {
	return Options{
		GroupCommitBytes:      1,
		FlushInterval:         time.Hour,
		WALSizeBudget:         1 << 30,
		DisableAutoCheckpoint: true,
	}
}

func mustOpen(t *testing.T, dir string, g *graph.Graph, opt Options) *Store {
	t.Helper()
	st, err := Open(dir, g, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st
}

// buildSample drives one of every mutation kind through a durable graph.
func buildSample(t *testing.T, g *graph.Graph) {
	t.Helper()
	a := g.AddVertexWithProps("Company", map[string]string{"name": "Apex"})
	b := g.AddVertexWithProps("Company", map[string]string{"name": "Borealis"})
	c := g.AddVertex("Person")
	g.SetVertexProp(c, "name", "Cora")
	e1, err := g.AddEdgeFull(a, b, "acquired", 0.9, 1700000000, map[string]string{"source": "wsj"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdges([]graph.EdgeSpec{
		{Src: b, Dst: c, Label: "employs", Weight: 0.5, Timestamp: 1700000100},
		{Src: c, Dst: a, Label: "founded", Weight: 1.0, Timestamp: -62135596800}, // zero-time provenance
	}); err != nil {
		t.Fatal(err)
	}
	e2, err := g.AddEdge(a, c, "partnersWith")
	if err != nil {
		t.Fatal(err)
	}
	g.SetEdgeWeight(e1, 0.95)
	g.SetEdgeProp(e1, "sentence", "Apex acquired Borealis.")
	g.RemoveEdge(e2)
}

// assertGraphsEqual compares full graph contents: vertices with props, edges
// with all fields, and the mutation epoch.
func assertGraphsEqual(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if we, ge := want.Epoch(), got.Epoch(); we != ge {
		t.Errorf("epoch: want %d, got %d", we, ge)
	}
	wv, gv := want.VertexIDs(), got.VertexIDs()
	if !reflect.DeepEqual(wv, gv) {
		t.Fatalf("vertex IDs: want %v, got %v", wv, gv)
	}
	for _, id := range wv {
		w, _ := want.Vertex(id)
		g2, _ := got.Vertex(id)
		if !reflect.DeepEqual(w, g2) {
			t.Errorf("vertex %d: want %+v, got %+v", id, w, g2)
		}
	}
	we, ge := want.EdgeIDs(), got.EdgeIDs()
	if !reflect.DeepEqual(we, ge) {
		t.Fatalf("edge IDs: want %v, got %v", we, ge)
	}
	for _, id := range we {
		w, _ := want.Edge(id)
		g2, _ := got.Edge(id)
		if !reflect.DeepEqual(w, g2) {
			t.Errorf("edge %d: want %+v, got %+v", id, w, g2)
		}
	}
}

func TestMutationCodecRoundTrip(t *testing.T) {
	muts := []graph.Mutation{
		{Kind: graph.MutAddVertex, Epoch: 1, Vertex: graph.Vertex{ID: 7, Label: "Company", Props: map[string]string{"name": "Apex", "type": "Company"}}},
		{Kind: graph.MutAddVertex, Epoch: 2, Vertex: graph.Vertex{ID: 8, Label: "Person"}},
		{Kind: graph.MutSetVertexProp, Epoch: 3, VertexID: 7, Key: "aliases", Value: "apex\x1fapex inc"},
		{Kind: graph.MutAddEdges, Epoch: 4, Edges: []graph.Edge{
			{ID: 1, Src: 7, Dst: 8, Label: "employs", Weight: 0.25, Timestamp: -62135596800, Props: map[string]string{"source": ""}},
			{ID: 2, Src: 8, Dst: 7, Label: "founded", Weight: 1, Timestamp: 1700000000},
		}},
		{Kind: graph.MutRemoveEdge, Epoch: 5, EdgeID: 2},
		{Kind: graph.MutSetEdgeProp, Epoch: 6, EdgeID: 1, Key: "sentence", Value: "quoted \"text\""},
		{Kind: graph.MutSetEdgeWeight, Epoch: 7, EdgeID: 1, Weight: 0.125},
	}
	for _, m := range muts {
		b := encodeMutation(m)
		got, err := decodeMutation(b)
		if err != nil {
			t.Fatalf("decode %v: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("kind %d: want %+v, got %+v", m.Kind, m, got)
		}
	}
}

func TestDecodeMutationRejectsGarbage(t *testing.T) {
	if _, err := decodeMutation(nil); err == nil {
		t.Error("empty record: want error")
	}
	if _, err := decodeMutation([]byte{99, 1}); err == nil {
		t.Error("unknown kind: want error")
	}
	// A valid record truncated mid-payload must fail decode, not panic.
	full := encodeMutation(graph.Mutation{Kind: graph.MutAddVertex, Epoch: 1,
		Vertex: graph.Vertex{ID: 1, Label: "Company", Props: map[string]string{"name": "Apex"}}})
	for cut := 1; cut < len(full); cut++ {
		if _, err := decodeMutation(full[:cut]); err == nil {
			t.Errorf("truncated at %d bytes: want error", cut)
		}
	}
}

func TestWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())
	buildSample(t, g)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, testOptions())
	defer st2.Close()
	assertGraphsEqual(t, g, g2)
	if st2.Stats().ReplayedRecords == 0 {
		t.Error("expected WAL records to be replayed")
	}

	// New IDs must not collide with recovered ones.
	id := g2.AddVertex("Company")
	if g.HasVertex(id) {
		t.Errorf("new vertex ID %d collides with recovered ID space", id)
	}
}

func TestSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())
	buildSample(t, g)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().SnapshotEpoch != g.Epoch() {
		t.Errorf("snapshot epoch %d != graph epoch %d", st.Stats().SnapshotEpoch, g.Epoch())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, testOptions())
	defer st2.Close()
	assertGraphsEqual(t, g, g2)
	if n := st2.Stats().ReplayedRecords; n != 0 {
		t.Errorf("recovered from snapshot, yet replayed %d WAL records", n)
	}
}

func TestRecoveryAfterSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())
	buildSample(t, g)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes live only in the WAL tail.
	v := g.AddVertexWithProps("Company", map[string]string{"name": "Delta"})
	g.SetVertexProp(v, "hq", "Reykjavik")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, testOptions())
	defer st2.Close()
	assertGraphsEqual(t, g, g2)
	if st2.Stats().ReplayedRecords != 2 {
		t.Errorf("replayed %d records, want 2", st2.Stats().ReplayedRecords)
	}
}

// lastWAL returns the path of the highest-sequence WAL segment.
func lastWAL(t *testing.T, dir string) string {
	t.Helper()
	wals, err := listWALs(dir)
	if err != nil || len(wals) == 0 {
		t.Fatalf("listWALs: %v (%d segments)", err, len(wals))
	}
	return wals[len(wals)-1]
}

func TestTornWALTailLosesOnlyFinalRecord(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())
	v := g.AddVertexWithProps("Company", map[string]string{"name": "Apex"})
	g.SetVertexProp(v, "status", "before")
	g.SetVertexProp(v, "status", "after") // the record the tear destroys
	preTearEpoch := g.Epoch() - 1
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear: cut into (not at the boundary of) the final record.
	path := lastWAL(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, testOptions())
	defer st2.Close()
	if got, _ := g2.VertexProp(v, "status"); got != "before" {
		t.Errorf("status = %q, want pre-tear value %q", got, "before")
	}
	if g2.Epoch() != preTearEpoch {
		t.Errorf("epoch = %d, want %d", g2.Epoch(), preTearEpoch)
	}
	if st2.Stats().ReplayedRecords != 2 {
		t.Errorf("replayed %d records, want 2", st2.Stats().ReplayedRecords)
	}
	// The tear must have been truncated away: re-recovery sees a clean log.
	if fi2, _ := os.Stat(path); fi2.Size() >= fi.Size()-3 {
		t.Errorf("torn segment not truncated: %d bytes, want < %d", fi2.Size(), fi.Size()-3)
	}
}

func TestBitFlippedWALTailLosesOnlyFinalRecord(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())
	v := g.AddVertexWithProps("Company", map[string]string{"name": "Apex"})
	g.SetVertexProp(v, "status", "before")
	g.SetVertexProp(v, "status", "after")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	path := lastWAL(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40 // flip a bit inside the final record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, testOptions())
	defer st2.Close()
	if got, _ := g2.VertexProp(v, "status"); got != "before" {
		t.Errorf("status = %q, want %q (corrupt record dropped)", got, "before")
	}
	if st2.Stats().ReplayedRecords != 2 {
		t.Errorf("replayed %d records, want 2", st2.Stats().ReplayedRecords)
	}
}

func TestCorruptSnapshotFallsBackToOlderGeneration(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())
	g.AddVertexWithProps("Company", map[string]string{"name": "Apex"})
	if err := st.Checkpoint(); err != nil { // generation 1
		t.Fatal(err)
	}
	g.AddVertexWithProps("Company", map[string]string{"name": "Borealis"})
	if err := st.Checkpoint(); err != nil { // generation 2
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshots, got %d (%v)", len(snaps), err)
	}
	// Corrupt the newest snapshot's first shard payload.
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[60] ^= 0xff
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, testOptions())
	defer st2.Close()
	// The older snapshot plus the surviving WAL tail must still reach the
	// full pre-close state: generation 1 lacks Borealis, but the segment
	// holding Borealis's insertion is at or after generation 1's cut.
	if want, got := g.NumVertices(), g2.NumVertices(); want != got {
		t.Errorf("vertices after fallback: want %d, got %d", want, got)
	}
}

func TestOpenRefusesWhenEverySnapshotIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())
	g.AddVertexWithProps("Company", map[string]string{"name": "Apex"})
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := listSnapshots(dir)
	for _, p := range snaps {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[52] ^= 0xff // inside the first shard frame/payload
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir, graph.New(), testOptions()); err == nil {
		t.Fatal("Open succeeded with every snapshot corrupt; want refusal, not a silently gutted store")
	}
}

func TestCheckpointPrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	opt := testOptions()
	opt.RetainSnapshots = 2
	st := mustOpen(t, dir, g, opt)
	for i := 0; i < 5; i++ {
		g.AddVertex("Company")
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) != 2 {
		t.Errorf("retained %d snapshots, want 2", len(snaps))
	}
	wals, _ := listWALs(dir)
	// Segments older than the oldest retained snapshot's cut are gone:
	// with 5 checkpoints the live segment is seq 5 and the retained cuts
	// are seqs 4 and 5, so at most seqs 4 and 5 remain.
	if len(wals) > 2 {
		t.Errorf("retained %d WAL segments, want <= 2", len(wals))
	}
	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, opt)
	defer st2.Close()
	assertGraphsEqual(t, g, g2)
}

func TestAutoCheckpointOnWALBudget(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	opt := testOptions()
	opt.DisableAutoCheckpoint = false
	opt.WALSizeBudget = 512
	opt.FlushInterval = 5 * time.Millisecond
	st := mustOpen(t, dir, g, opt)
	for i := 0; i < 200; i++ {
		g.AddVertexWithProps("Company", map[string]string{"name": "padding-padding-padding"})
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st.Stats().Checkpoints == 0 {
		t.Error("no automatic checkpoint despite exceeding the WAL budget")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, opt)
	defer st2.Close()
	assertGraphsEqual(t, g, g2)
}

func TestConcurrentIngestWhileCheckpointing(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	opt := testOptions()
	st := mustOpen(t, dir, g, opt)

	const writers, perWriter = 4, 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					a := g.AddVertexWithProps("Company", map[string]string{"name": "x"})
					b := g.AddVertex("Person")
					if _, err := g.AddEdges([]graph.EdgeSpec{{Src: a, Dst: b, Label: "employs", Weight: 1}}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}()
	for {
		select {
		case <-done:
			goto finished
		default:
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
finished:
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.LastError != "" {
		t.Fatalf("background persistence error: %s", s.LastError)
	}

	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, opt)
	defer st2.Close()
	assertGraphsEqual(t, g, g2)
	if g2.NumVertices() != writers*perWriter*2 {
		t.Errorf("vertices = %d, want %d", g2.NumVertices(), writers*perWriter*2)
	}
}

func TestOpenOnFreshDirIsEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())
	defer st.Close()
	if g.NumVertices() != 0 || g.Epoch() != 0 {
		t.Errorf("fresh store: %d vertices, epoch %d", g.NumVertices(), g.Epoch())
	}
	s := st.Stats()
	if s.WALSeq != 0 || s.SnapshotEpoch != 0 {
		t.Errorf("fresh stats = %+v", s)
	}
}

// TestReplayRemoveAndReaddKeepsTimeIndexConsistent mixes edge removals with
// re-added edges across a WAL-only recovery and a snapshot+tail recovery,
// then verifies a temporal index rebuilt from the recovered graph matches
// the recovered edge set exactly — the invariant nous relies on when it
// re-attaches the time index after Open.
func TestReplayRemoveAndReaddKeepsTimeIndexConsistent(t *testing.T) {
	dir := t.TempDir()
	g := graph.New()
	st := mustOpen(t, dir, g, testOptions())

	a := g.AddVertexWithProps("Company", map[string]string{"name": "Apex"})
	b := g.AddVertexWithProps("Company", map[string]string{"name": "Borealis"})
	var ids []graph.EdgeID
	for ts := int64(100); ts < 110; ts++ {
		id, err := g.AddEdgeFull(a, b, "acquired", 1, ts, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Remove a few, then re-add edges at the same timestamps (fresh IDs) —
	// the shape eviction + re-extraction produces.
	for _, id := range []graph.EdgeID{ids[1], ids[4], ids[7]} {
		if !g.RemoveEdge(id) {
			t.Fatalf("RemoveEdge(%d) failed", id)
		}
	}
	if _, err := g.AddEdges([]graph.EdgeSpec{
		{Src: a, Dst: b, Label: "acquired", Weight: 1, Timestamp: 101},
		{Src: b, Dst: a, Label: "partnersWith", Weight: 1, Timestamp: 104},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	verify := func(t *testing.T, g2 *graph.Graph) {
		t.Helper()
		assertGraphsEqual(t, g, g2)
		ix := temporal.NewIndex(g2)
		if ix.Len() != g2.NumEdges() {
			t.Fatalf("index %d edges, graph %d", ix.Len(), g2.NumEdges())
		}
		prev := int64(math.MinInt64)
		for _, id := range ix.EdgesIn(temporal.All()) {
			e, ok := g2.Edge(id)
			if !ok {
				t.Fatalf("index references missing edge %d", id)
			}
			if e.Timestamp < prev {
				t.Fatalf("index out of time order at edge %d", id)
			}
			prev = e.Timestamp
		}
		// The removed timestamps' counts reflect removals and re-adds.
		if n := ix.Count(temporal.Window{Since: 101, Until: 102}); n != 1 {
			t.Fatalf("ts=101 count = %d, want 1 (one removed, one re-added)", n)
		}
		if n := ix.Count(temporal.Window{Since: 107, Until: 108}); n != 0 {
			t.Fatalf("ts=107 count = %d, want 0 (removed)", n)
		}
	}

	// WAL-only recovery.
	g2 := graph.New()
	st2 := mustOpen(t, dir, g2, testOptions())
	verify(t, g2)

	// Roll a snapshot, add one more remove on top, recover snapshot+tail.
	if err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g2.RemoveEdge(ids[0]) // ts=100, logged in the tail segment
	g.RemoveEdge(ids[0])  // mirror on the reference graph
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	g3 := graph.New()
	st3 := mustOpen(t, dir, g3, testOptions())
	defer st3.Close()
	verify(t, g3)
	if ix := temporal.NewIndex(g3); ix.Count(temporal.Window{Since: 100, Until: 101}) != 0 {
		t.Fatal("tail-replayed removal not reflected in time index")
	}
}
