package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nous/internal/graph"
)

// WAL segment layout (version 1):
//
//	magic   [8]byte  "NOUSWAL1"
//	version uint32
//	seq     uint64   segment sequence number
//	then records, back to back:
//	  length uint32  payload byte count
//	  crc    uint32  CRC-32C (Castagnoli) of the payload
//	  payload        one encoded mutation (see record.go)
//
// A record is valid only if its frame fits the file and its CRC matches. The
// first invalid record ends the segment: a torn or bit-flipped tail loses at
// most that final write, and recovery truncates the segment back to its last
// valid record so the damage cannot be misread later.

const (
	walMagic      = "NOUSWAL1"
	walVersion    = 1
	walSuffix     = ".wal"
	walHeaderSize = 8 + 4 + 8
	// maxRecordSize bounds a single record so a corrupt length field cannot
	// drive a multi-gigabyte allocation during replay.
	maxRecordSize = 64 << 20
)

func walName(seq uint64) string { return fmt.Sprintf("wal-%016x%s", seq, walSuffix) }

// parseWALSeq extracts the sequence number from a segment file name.
func parseWALSeq(path string) (uint64, bool) {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(name, "wal-%016x"+walSuffix, &seq)
	return seq, err == nil
}

// listWALs returns the WAL segment paths in dir in ascending sequence order.
func listWALs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if _, ok := parseWALSeq(e.Name()); ok {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out) // zero-padded hex: lexicographic == numeric
	return out, nil
}

// walWriter appends CRC-framed records to one segment with group-commit
// buffering: records accumulate in memory and are written + fsynced once the
// buffer passes the group-commit threshold (or on an explicit Flush), so a
// burst of batch-ingest records costs one fsync, not one per record.
type walWriter struct {
	mu        sync.Mutex
	f         *os.File
	seq       uint64
	pending   []byte // framed records not yet written to the file
	threshold int    // group-commit byte threshold
	records   uint64 // records appended to this segment
	size      int64  // bytes this segment will occupy once flushed
}

// createWAL starts a fresh segment in dir with the given sequence number.
// The header is written and synced immediately so the segment is
// recognizable even if the process dies before the first commit.
func createWAL(dir string, seq uint64, threshold int) (*walWriter, error) {
	path := filepath.Join(dir, walName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	head := make([]byte, 0, walHeaderSize)
	head = append(head, walMagic...)
	head = binary.LittleEndian.AppendUint32(head, walVersion)
	head = binary.LittleEndian.AppendUint64(head, seq)
	if _, err := f.Write(head); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	if threshold <= 0 {
		threshold = 1 // flush every record
	}
	return &walWriter{f: f, seq: seq, threshold: threshold, size: walHeaderSize}, nil
}

// Append frames one record payload and commits the buffer if it crossed the
// group-commit threshold. It returns the segment's size including everything
// buffered, which the store compares against the checkpoint budget.
func (w *walWriter) Append(payload []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	w.pending = append(w.pending, frame[:]...)
	w.pending = append(w.pending, payload...)
	w.records++
	w.size += int64(len(payload) + 8)
	if len(w.pending) >= w.threshold {
		if err := w.flushLocked(); err != nil {
			return w.size, err
		}
	}
	return w.size, nil
}

// Flush writes and fsyncs everything buffered.
func (w *walWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *walWriter) flushLocked() error {
	if len(w.pending) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.pending); err != nil {
		return err
	}
	w.pending = w.pending[:0]
	return w.f.Sync()
}

// Close flushes and closes the segment.
func (w *walWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.flushLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns the segment's record count and size (including buffered
// bytes).
func (w *walWriter) Stats() (records uint64, size int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records, w.size
}

// replayWAL applies every valid record of one segment to the graph. It
// returns the number of records applied and the highest epoch stamp seen.
// On a torn or corrupt tail the segment is truncated back to its last valid
// record; only a malformed-but-CRC-valid record (real corruption of logic,
// not of storage) aborts recovery with an error.
//
// Records are applied in append order, which can differ from epoch order
// when concurrent writers raced on the same record (two unsynchronized
// SetEdgeWeight calls on one edge may log in either order). That is the
// same indeterminacy the racing callers already had in memory — recovery
// lands on one of the outcomes the race could have produced. Causally
// ordered writes (anything sequenced through a caller, like core.KG's
// lock) append in order and replay exactly.
func replayWAL(g *graph.Graph, path string) (applied int, maxEpoch uint64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(raw) < walHeaderSize || string(raw[:8]) != walMagic {
		return 0, 0, fmt.Errorf("persist: %s: not a WAL segment", path)
	}
	if v := binary.LittleEndian.Uint32(raw[8:]); v != walVersion {
		return 0, 0, fmt.Errorf("persist: %s: unsupported WAL version %d", path, v)
	}
	off := walHeaderSize
	for {
		if off == len(raw) {
			return applied, maxEpoch, nil // clean end
		}
		if off+8 > len(raw) {
			truncateWAL(path, int64(off))
			return applied, maxEpoch, nil
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if n > maxRecordSize || off+8+n > len(raw) {
			truncateWAL(path, int64(off))
			return applied, maxEpoch, nil
		}
		payload := raw[off+8 : off+8+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			truncateWAL(path, int64(off))
			return applied, maxEpoch, nil
		}
		m, derr := decodeMutation(payload)
		if derr != nil {
			return applied, maxEpoch, fmt.Errorf("persist: %s: record %d: %w", path, applied, derr)
		}
		if aerr := applyMutation(g, m); aerr != nil {
			return applied, maxEpoch, fmt.Errorf("persist: %s: record %d: %w", path, applied, aerr)
		}
		if m.Epoch > maxEpoch {
			maxEpoch = m.Epoch
		}
		applied++
		off += 8 + n
	}
}

// truncateWAL cuts a segment back to size, discarding a torn tail. Failure
// to truncate is not fatal — replay stops at the tear either way — but a
// successful truncation keeps the damage from being re-scanned (or worse,
// extended) later.
func truncateWAL(path string, size int64) {
	_ = os.Truncate(path, size)
}
