package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nous/internal/graph"
)

// Options tunes a Store. The zero value is usable; DefaultOptions documents
// the effective defaults.
type Options struct {
	// GroupCommitBytes is the WAL group-commit threshold: appended records
	// buffer in memory until this many bytes accumulate, then are written
	// and fsynced together. 0 uses the default (64 KiB); a negative value
	// commits every record individually (slow, maximally durable).
	GroupCommitBytes int
	// FlushInterval bounds how long a buffered record can wait for the
	// group-commit threshold: the background flusher commits the buffer at
	// this cadence regardless of size. <= 0 defaults to 200ms.
	FlushInterval time.Duration
	// WALSizeBudget triggers an automatic checkpoint (snapshot + WAL
	// truncation) once the live segment exceeds this many bytes.
	// <= 0 defaults to 8 MiB.
	WALSizeBudget int64
	// DisableAutoCheckpoint turns the background checkpointer off; only
	// explicit Checkpoint calls roll snapshots.
	DisableAutoCheckpoint bool
	// RetainSnapshots is how many snapshot generations to keep (the newest
	// is the recovery source; older ones are fallbacks if it is damaged).
	// <= 0 defaults to 2.
	RetainSnapshots int
}

// DefaultOptions returns the production defaults.
func DefaultOptions() Options {
	return Options{
		GroupCommitBytes: 64 << 10,
		FlushInterval:    200 * time.Millisecond,
		WALSizeBudget:    8 << 20,
		RetainSnapshots:  2,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.GroupCommitBytes == 0 {
		o.GroupCommitBytes = d.GroupCommitBytes
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = d.FlushInterval
	}
	if o.WALSizeBudget <= 0 {
		o.WALSizeBudget = d.WALSizeBudget
	}
	if o.RetainSnapshots <= 0 {
		o.RetainSnapshots = d.RetainSnapshots
	}
	return o
}

// Stats describes the store's durable state.
type Stats struct {
	// SnapshotEpoch is the graph epoch of the newest on-disk snapshot
	// (0 when no snapshot has been written yet).
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	// WALSeq is the live segment's sequence number.
	WALSeq uint64 `json:"wal_seq"`
	// WALRecords / WALBytes measure the live segment, buffered bytes
	// included.
	WALRecords uint64 `json:"wal_records"`
	WALBytes   int64  `json:"wal_bytes"`
	// Checkpoints counts snapshots rolled by this Store instance.
	Checkpoints uint64 `json:"checkpoints"`
	// ReplayedRecords counts WAL records applied during Open's recovery.
	ReplayedRecords int `json:"replayed_records"`
	// LastError surfaces the most recent background persistence failure.
	LastError string `json:"last_error,omitempty"`
}

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("persist: store is closed")

// Store makes one graph durable under a directory. Open recovers the graph
// from disk (snapshot + WAL tail), then subscribes to the graph's mutation
// hook so every subsequent write is logged. All methods are safe for
// concurrent use.
type Store struct {
	dir string
	g   *graph.Graph
	opt Options

	// mu serializes checkpoints and close against each other. It is NOT
	// held while mutations append, so a checkpoint's snapshot encoding
	// never stalls ingestion.
	mu sync.Mutex

	// walMu guards the live segment pointer: appenders take it shared,
	// rotation takes it exclusive.
	walMu sync.RWMutex
	wal   *walWriter
	seq   uint64

	snapEpoch   atomic.Uint64
	checkpoints atomic.Uint64
	replayed    int
	closed      atomic.Bool

	errMu   sync.Mutex
	lastErr error

	checkpointC chan struct{}
	stop        chan struct{}
	wg          sync.WaitGroup
}

// Open attaches durable storage at dir to g: it restores the newest valid
// snapshot, replays the WAL tail on top (truncating a torn final record),
// starts a fresh WAL segment, installs the mutation hook and (unless
// disabled) a background group-commit flusher + size-budget checkpointer.
//
// The graph must be empty and not yet mutating; Open is the first thing that
// touches it.
func Open(dir string, g *graph.Graph, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{
		dir:         dir,
		g:           g,
		opt:         opt,
		checkpointC: make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}

	// 1. Newest fully-valid snapshot. A snapshot is decoded (and CRC-checked)
	// entirely in memory before any of it touches the graph, so a damaged
	// newest snapshot falls back to an older generation cleanly. If
	// snapshots exist but none is readable, refuse to open: proceeding
	// would replay only the post-cut WAL tail onto an empty graph and
	// present a silently gutted store (which callers would then mistake
	// for a fresh directory and reseed over).
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, err
	}
	var walStart uint64
	loaded := false
	var lastSnapErr error
	for _, path := range snaps {
		snap, seq, rerr := readSnapshot(path)
		if rerr != nil {
			lastSnapErr = rerr
			continue // fall back to the previous generation
		}
		if rerr := restoreSnapshot(g, snap); rerr != nil {
			return nil, fmt.Errorf("persist: restoring %s: %w", path, rerr)
		}
		st.snapEpoch.Store(snap.Epoch)
		walStart = seq
		loaded = true
		break
	}
	if !loaded && len(snaps) > 0 {
		return nil, fmt.Errorf("persist: %s: no readable snapshot among %d candidates: %w",
			dir, len(snaps), lastSnapErr)
	}

	// 2. Replay the WAL tail. Segments older than the snapshot's cut are
	// fully covered by it and skipped.
	wals, err := listWALs(dir)
	if err != nil {
		return nil, err
	}
	maxEpoch := st.snapEpoch.Load()
	var maxSeq uint64
	for _, path := range wals {
		seq, _ := parseWALSeq(path)
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq < walStart {
			continue
		}
		applied, epoch, rerr := replayWAL(g, path)
		if rerr != nil {
			return nil, rerr
		}
		st.replayed += applied
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
	}
	g.SetEpoch(maxEpoch)

	// 3. Fresh live segment (never append to a recovered one: its tail may
	// have been truncated, and a clean boundary keeps recovery simple). The
	// new sequence must exceed both every existing segment and the loaded
	// snapshot's cut, or the next recovery would skip the new segment.
	if walStart > maxSeq {
		maxSeq = walStart
	}
	st.seq = maxSeq + 1
	if len(wals) == 0 && len(snaps) == 0 {
		st.seq = 0
	}
	st.wal, err = createWAL(dir, st.seq, opt.GroupCommitBytes)
	if err != nil {
		return nil, err
	}

	// 4. Subscribe to mutations and start the background loop.
	g.SetMutationHook(st.onMutation)
	st.wg.Add(1)
	go st.background()
	return st, nil
}

// onMutation is the graph's mutation hook: encode, append, and nudge the
// checkpointer if the live segment outgrew its budget.
func (st *Store) onMutation(m graph.Mutation) {
	payload := encodeMutation(m)
	st.walMu.RLock()
	w := st.wal
	size, err := w.Append(payload)
	st.walMu.RUnlock()
	if err != nil {
		st.noteErr(err)
		return
	}
	if !st.opt.DisableAutoCheckpoint && size > st.opt.WALSizeBudget {
		select {
		case st.checkpointC <- struct{}{}:
		default: // one is already queued
		}
	}
}

// background runs the group-commit flusher and the size-budget checkpointer.
func (st *Store) background() {
	defer st.wg.Done()
	ticker := time.NewTicker(st.opt.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-ticker.C:
			st.walMu.RLock()
			w := st.wal
			st.walMu.RUnlock()
			if err := w.Flush(); err != nil {
				st.noteErr(err)
			}
		case <-st.checkpointC:
			if err := st.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				st.noteErr(err)
			}
		}
	}
}

// Checkpoint rolls the durable state forward: it rotates the WAL, writes a
// snapshot of the current graph, and prunes snapshots and WAL segments the
// new snapshot supersedes. Mutations keep flowing during the snapshot write;
// anything that lands mid-checkpoint is in the new segment and replays
// idempotently on top of the snapshot.
func (st *Store) Checkpoint() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed.Load() {
		return ErrClosed
	}

	// Rotate: all appends from here land in the next segment, so every
	// record in the segments being retired is covered by the snapshot below.
	st.walMu.Lock()
	old := st.wal
	// Flush the retiring segment before the next one becomes visible: a
	// replication cursor (WALCursor) treats "clean end + a later segment
	// exists" as proof the segment is finished, so its buffered tail must
	// be on disk before the new segment's directory entry appears.
	if err := old.Flush(); err != nil {
		st.noteErr(err)
	}
	newSeq := st.seq + 1
	nw, err := createWAL(st.dir, newSeq, st.opt.GroupCommitBytes)
	if err != nil {
		st.walMu.Unlock()
		return err
	}
	st.wal = nw
	st.seq = newSeq
	st.walMu.Unlock()
	if err := old.Close(); err != nil {
		// The retired segment's buffered tail is about to be superseded by
		// the snapshot; surface the error but keep checkpointing.
		st.noteErr(err)
	}

	snap := st.g.Snapshot()
	if _, _, err := writeSnapshot(st.dir, snap, newSeq); err != nil {
		return err
	}
	st.snapEpoch.Store(snap.Epoch)
	st.checkpoints.Add(1)
	st.prune()
	return nil
}

// prune removes snapshot generations beyond the retention count and WAL
// segments older than every retained snapshot's cut.
func (st *Store) prune() {
	snaps, err := listSnapshots(st.dir)
	if err != nil {
		st.noteErr(err)
		return
	}
	if len(snaps) > st.opt.RetainSnapshots {
		for _, p := range snaps[st.opt.RetainSnapshots:] {
			if err := os.Remove(p); err != nil {
				st.noteErr(err)
			}
		}
		snaps = snaps[:st.opt.RetainSnapshots]
	}
	if len(snaps) == 0 {
		return
	}
	minSeq := uint64(1<<63 - 1)
	for _, p := range snaps {
		seq, err := snapshotWALSeq(p)
		if err != nil {
			st.noteErr(err)
			return // can't prove any segment is safe to drop
		}
		if seq < minSeq {
			minSeq = seq
		}
	}
	wals, err := listWALs(st.dir)
	if err != nil {
		st.noteErr(err)
		return
	}
	for _, p := range wals {
		if seq, ok := parseWALSeq(p); ok && seq < minSeq {
			if err := os.Remove(p); err != nil {
				st.noteErr(err)
			}
		}
	}
}

// snapshotWALSeq reads just the header of a snapshot file and returns its
// WAL cut sequence.
func snapshotWALSeq(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	head := make([]byte, 48)
	if _, err := f.ReadAt(head, 0); err != nil {
		return 0, err
	}
	if string(head[:8]) != snapMagic {
		return 0, fmt.Errorf("persist: %s: not a snapshot file", path)
	}
	return binary.LittleEndian.Uint64(head[40:]), nil
}

// Sync commits every buffered WAL record to disk.
func (st *Store) Sync() error {
	if st.closed.Load() {
		return ErrClosed
	}
	st.walMu.RLock()
	w := st.wal
	st.walMu.RUnlock()
	return w.Flush()
}

// Close detaches from the graph, stops the background loop and flushes the
// live segment. The caller must have stopped mutating the graph; writes that
// race with Close may not be logged.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed.Swap(true) {
		st.mu.Unlock()
		return nil
	}
	st.g.SetMutationHook(nil)
	close(st.stop)
	st.mu.Unlock()
	st.wg.Wait()
	return st.wal.Close()
}

// Stats reports the store's current durable state.
func (st *Store) Stats() Stats {
	st.walMu.RLock()
	w := st.wal
	seq := st.seq
	st.walMu.RUnlock()
	records, size := w.Stats()
	s := Stats{
		SnapshotEpoch:   st.snapEpoch.Load(),
		WALSeq:          seq,
		WALRecords:      records,
		WALBytes:        size,
		Checkpoints:     st.checkpoints.Load(),
		ReplayedRecords: st.replayed,
	}
	st.errMu.Lock()
	if st.lastErr != nil {
		s.LastError = st.lastErr.Error()
	}
	st.errMu.Unlock()
	return s
}

func (st *Store) noteErr(err error) {
	st.errMu.Lock()
	st.lastErr = err
	st.errMu.Unlock()
}
