package graph

import (
	"reflect"
	"testing"

	"nous/internal/graph/symtab"
)

// TestEmptyPropsExportNil pins the export-path allocation contract: elements
// created with empty (or nil) property maps materialize with Props == nil on
// every read path, never an allocated empty map.
func TestEmptyPropsExportNil(t *testing.T) {
	g := New()
	a := g.AddVertexWithProps("Person", map[string]string{})
	b := g.AddVertex("Person")
	id, err := g.AddEdgeFull(a, b, "knows", 1, 100, map[string]string{})
	if err != nil {
		t.Fatal(err)
	}

	if v, ok := g.Vertex(a); !ok || v.Props != nil {
		t.Errorf("Vertex(a).Props: want nil, got %#v", v.Props)
	}
	if e, ok := g.Edge(id); !ok || e.Props != nil {
		t.Errorf("Edge(id).Props: want nil, got %#v", e.Props)
	}
	for _, e := range g.OutEdges(a) {
		if e.Props != nil {
			t.Errorf("OutEdges props: want nil, got %#v", e.Props)
		}
	}
	for _, e := range g.InEdges(b) {
		if e.Props != nil {
			t.Errorf("InEdges props: want nil, got %#v", e.Props)
		}
	}
	for _, e := range g.Edges(a) {
		if e.Props != nil {
			t.Errorf("Edges props: want nil, got %#v", e.Props)
		}
	}
	snap := g.Snapshot()
	for _, vs := range snap.Vertices {
		for _, v := range vs {
			if v.Props != nil {
				t.Errorf("snapshot vertex props: want nil, got %#v", v.Props)
			}
		}
	}
	for _, es := range snap.Edges {
		for _, e := range es {
			if e.Props != nil {
				t.Errorf("snapshot edge props: want nil, got %#v", e.Props)
			}
		}
	}
	g.ForEachOutScan(a, func(e *EdgeScan) bool {
		if e.HasProps() {
			t.Error("scan HasProps: want false for prop-less edge")
		}
		if m := e.Materialize(); m.Props != nil {
			t.Errorf("Materialize props: want nil, got %#v", m.Props)
		}
		return true
	})
}

// TestExportedPropsAreCopies pins that materialized Props maps are owned by
// the caller: mutating them must not leak back into the graph.
func TestExportedPropsAreCopies(t *testing.T) {
	g := New()
	a := g.AddVertexWithProps("Person", map[string]string{"name": "Ada"})
	b := g.AddVertex("Person")
	id, err := g.AddEdgeFull(a, b, "knows", 1, 100, map[string]string{"source": "s1"})
	if err != nil {
		t.Fatal(err)
	}

	v, _ := g.Vertex(a)
	v.Props["name"] = "clobbered"
	if got, _ := g.VertexProp(a, "name"); got != "Ada" {
		t.Errorf("vertex prop leaked through exported map: got %q", got)
	}
	e, _ := g.Edge(id)
	e.Props["source"] = "clobbered"
	if e2, _ := g.Edge(id); e2.Props["source"] != "s1" {
		t.Errorf("edge prop leaked through exported map: got %q", e2.Props["source"])
	}
}

// TestScanViewsMatchMaterialized cross-checks the zero-copy scan API against
// the materializing one: same edges, same field values, same order.
func TestScanViewsMatchMaterialized(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	if _, err := g.AddEdgeFull(a, b, "x", 0.5, 10, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdgeFull(a, c, "y", 1.5, 20, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdgeFull(c, a, "z", 2.5, 30, nil); err != nil {
		t.Fatal(err)
	}

	var scanned []Edge
	g.ForEachOutScan(a, func(e *EdgeScan) bool {
		scanned = append(scanned, e.Materialize())
		return true
	})
	if want := g.OutEdges(a); !reflect.DeepEqual(scanned, want) {
		t.Errorf("ForEachOutScan: got %+v, want %+v", scanned, want)
	}

	scanned = nil
	g.ForEachIncidentScan(a, func(e *EdgeScan) bool {
		scanned = append(scanned, e.Materialize())
		return true
	})
	if len(scanned) != 3 {
		t.Fatalf("ForEachIncidentScan: want 3 edges, got %d", len(scanned))
	}

	total := 0
	g.ScanEdges(func(e *EdgeScan) bool {
		total++
		if e.LabelName() == "x" {
			if got, ok := e.Prop(symtab.Intern("k")); !ok || got != "v" {
				t.Errorf(`Prop("k"): want "v", got %q (ok=%v)`, got, ok)
			}
			if !e.PropEquals(symtab.Intern("k"), "v") {
				t.Error(`PropEquals("k","v"): want true`)
			}
		}
		return true
	})
	if total != 3 {
		t.Errorf("ScanEdges visited %d edges, want 3", total)
	}
}
