package graph

import (
	"fmt"

	"nous/internal/graph/symtab"
)

// EdgeSpec describes one edge for batch insertion via AddEdges.
type EdgeSpec struct {
	Src, Dst  VertexID
	Label     string
	Weight    float64
	Timestamp int64
	Props     map[string]string
}

// AddEdges inserts a batch of edges, acquiring each involved shard lock once
// for the whole batch instead of once per edge — the bulk-write path for
// streaming ingestion. Edge IDs are assigned contiguously in batch order.
//
// The batch is atomic with respect to validation: if any endpoint is
// missing, an error is returned and no edge is inserted.
func (g *Graph) AddEdges(specs []EdgeSpec) ([]EdgeID, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	// Vertices are never removed, so validating up front holds for the rest
	// of the insertion. Endpoints are grouped by shard and each shard is
	// read-locked once, not twice per spec.
	byShard := make(map[int][]VertexID)
	for i := range specs {
		byShard[shardIdx(uint64(specs[i].Src))] = append(byShard[shardIdx(uint64(specs[i].Src))], specs[i].Src)
		byShard[shardIdx(uint64(specs[i].Dst))] = append(byShard[shardIdx(uint64(specs[i].Dst))], specs[i].Dst)
	}
	for si, vs := range byShard {
		s := &g.shards[si]
		s.mu.RLock()
		for _, v := range vs {
			if _, ok := s.vertices[v]; !ok {
				s.mu.RUnlock()
				return nil, fmt.Errorf("graph: add edges: endpoint vertex %d does not exist", v)
			}
		}
		s.mu.RUnlock()
	}

	n := int64(len(specs))
	base := g.nextEdge.Add(n) - n
	ids := make([]EdgeID, len(specs))
	// Interned labels and props are prepared before the locks are taken —
	// interning may grow the symbol table and must not extend lock hold time.
	syms := make([]symtab.SymID, len(specs))
	props := make([]propMap, len(specs))
	// Hook records are built here, before insertion: once the shard locks
	// drop, the slab slots are reachable by concurrent mutators and may no
	// longer be read without a lock.
	var recs []Edge
	if g.hooked() {
		recs = make([]Edge, len(specs))
	}
	var need [numShards]bool
	for i := range specs {
		sp := &specs[i]
		id := EdgeID(base + int64(i))
		ids[i] = id
		syms[i] = symtab.Intern(sp.Label)
		props[i] = internProps(sp.Props)
		if recs != nil {
			recs[i] = Edge{ID: id, Src: sp.Src, Dst: sp.Dst, Label: sp.Label,
				Weight: sp.Weight, Timestamp: sp.Timestamp, Props: copyProps(sp.Props)}
		}
		need[shardIdx(uint64(sp.Src))] = true
		need[shardIdx(uint64(sp.Dst))] = true
		need[shardIdx(uint64(id))] = true
	}

	// One pass over the shards in ascending order — the same deadlock-free
	// total order single-edge writers use.
	for si := range need {
		if need[si] {
			g.shards[si].mu.Lock()
		}
	}
	for i := range specs {
		sp := &specs[i]
		g.insertEdgeLocked(ids[i], sp.Src, sp.Dst, syms[i], sp.Weight, sp.Timestamp, props[i])
	}
	// Bump and emit before releasing the shard locks (as RemoveEdge does),
	// so no concurrent remover's MutRemoveEdge can reach subscribers ahead
	// of this batch's MutAddEdges for the same edge.
	ep := g.bump()
	if recs != nil {
		g.emit(Mutation{Kind: MutAddEdges, Epoch: ep, Edges: recs})
	}
	for si := numShards - 1; si >= 0; si-- {
		if need[si] {
			g.shards[si].mu.Unlock()
		}
	}
	return ids, nil
}
