package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddVertexAssignsDistinctIDs(t *testing.T) {
	g := New()
	a := g.AddVertex("Person")
	b := g.AddVertex("Org")
	if a == b {
		t.Fatalf("expected distinct IDs, got %d twice", a)
	}
	if g.NumVertices() != 2 {
		t.Fatalf("NumVertices = %d, want 2", g.NumVertices())
	}
	v, ok := g.Vertex(a)
	if !ok || v.Label != "Person" {
		t.Fatalf("Vertex(%d) = %+v, %v; want Person", a, v, ok)
	}
}

func TestAddEdgeRequiresEndpoints(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	if _, err := g.AddEdge(a, 999, "rel"); err == nil {
		t.Fatal("expected error for missing destination")
	}
	if _, err := g.AddEdge(999, a, "rel"); err == nil {
		t.Fatal("expected error for missing source")
	}
}

func TestEdgeLookupAndDegree(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	e1, err := g.AddEdge(a, b, "knows")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a, c, "knows"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, c, "likes"); err != nil {
		t.Fatal(err)
	}

	if got := g.OutDegree(a); got != 2 {
		t.Errorf("OutDegree(a) = %d, want 2", got)
	}
	if got := g.InDegree(c); got != 2 {
		t.Errorf("InDegree(c) = %d, want 2", got)
	}
	if got := g.Degree(b); got != 2 {
		t.Errorf("Degree(b) = %d, want 2", got)
	}
	e, ok := g.Edge(e1)
	if !ok || e.Label != "knows" || e.Src != a || e.Dst != b {
		t.Errorf("Edge(e1) = %+v, %v", e, ok)
	}
	if es := g.EdgesByLabel("knows"); len(es) != 2 {
		t.Errorf("EdgesByLabel(knows) = %d edges, want 2", len(es))
	}
	if labels := g.EdgeLabels(); len(labels) != 2 || labels[0] != "knows" || labels[1] != "likes" {
		t.Errorf("EdgeLabels = %v", labels)
	}
}

func TestRemoveEdgeCleansIndexes(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	id, _ := g.AddEdge(a, b, "rel")
	if !g.RemoveEdge(id) {
		t.Fatal("RemoveEdge returned false for existing edge")
	}
	if g.RemoveEdge(id) {
		t.Fatal("RemoveEdge returned true for already-removed edge")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if g.OutDegree(a) != 0 || g.InDegree(b) != 0 {
		t.Fatal("degrees not cleaned after removal")
	}
	if es := g.EdgesByLabel("rel"); len(es) != 0 {
		t.Fatalf("label index not cleaned: %v", es)
	}
}

func TestFindEdgesFiltersByLabel(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	g.AddEdge(a, b, "x")
	g.AddEdge(a, b, "y")
	if got := len(g.FindEdges(a, b, "x")); got != 1 {
		t.Errorf("FindEdges(x) = %d, want 1", got)
	}
	if got := len(g.FindEdges(a, b, "")); got != 2 {
		t.Errorf("FindEdges(any) = %d, want 2", got)
	}
	if got := len(g.FindEdges(b, a, "")); got != 0 {
		t.Errorf("FindEdges(reverse) = %d, want 0", got)
	}
}

func TestNeighborsUndirectedDistinct(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	g.AddEdge(a, b, "r")
	g.AddEdge(b, a, "r") // both directions: still one neighbor
	g.AddEdge(c, a, "r")
	nbs := g.Neighbors(a)
	if len(nbs) != 2 || nbs[0] != b || nbs[1] != c {
		t.Fatalf("Neighbors(a) = %v, want [%d %d]", nbs, b, c)
	}
}

func TestVertexAndEdgeProps(t *testing.T) {
	g := New()
	a := g.AddVertexWithProps("A", map[string]string{"name": "DJI"})
	if v, _ := g.Vertex(a); v.Props["name"] != "DJI" {
		t.Fatalf("props not stored: %+v", v)
	}
	if !g.SetVertexProp(a, "hq", "Shenzhen") {
		t.Fatal("SetVertexProp failed")
	}
	if got, ok := g.VertexProp(a, "hq"); !ok || got != "Shenzhen" {
		t.Fatalf("VertexProp = %q, %v", got, ok)
	}
	b := g.AddVertex("B")
	id, _ := g.AddEdgeFull(a, b, "rel", 0.5, 1234, map[string]string{"src": "wsj"})
	e, _ := g.Edge(id)
	if e.Weight != 0.5 || e.Timestamp != 1234 || e.Props["src"] != "wsj" {
		t.Fatalf("edge fields lost: %+v", e)
	}
	if !g.SetEdgeWeight(id, 0.9) {
		t.Fatal("SetEdgeWeight failed")
	}
	if e, _ := g.Edge(id); e.Weight != 0.9 {
		t.Fatalf("weight not updated: %v", e.Weight)
	}
}

func TestVertexCopiesAreIsolated(t *testing.T) {
	g := New()
	a := g.AddVertexWithProps("A", map[string]string{"k": "v"})
	v, _ := g.Vertex(a)
	v.Props["k"] = "mutated"
	v2, _ := g.Vertex(a)
	if v2.Props["k"] != "v" {
		t.Fatal("Vertex returned a shared props map")
	}
}

// Property: after any sequence of adds and removes, sum of out-degrees ==
// sum of in-degrees == NumEdges, and no index contains a removed edge.
func TestDegreeInvariantQuick(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var vids []VertexID
		var eids []EdgeID
		for i := 0; i < 8; i++ {
			vids = append(vids, g.AddVertex("T"))
		}
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // add edge
				s := vids[rng.Intn(len(vids))]
				d := vids[rng.Intn(len(vids))]
				id, err := g.AddEdge(s, d, "r")
				if err != nil {
					return false
				}
				eids = append(eids, id)
			case 2: // remove random known edge (may already be gone)
				if len(eids) > 0 {
					g.RemoveEdge(eids[rng.Intn(len(eids))])
				}
			}
		}
		sumOut, sumIn := 0, 0
		for _, v := range vids {
			sumOut += g.OutDegree(v)
			sumIn += g.InDegree(v)
		}
		return sumOut == g.NumEdges() && sumIn == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := New()
	n := 20
	var ids []VertexID
	for i := 0; i < n; i++ {
		ids = append(ids, g.AddVertex("V"))
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		g.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], "r")
	}
	pr := PageRank(g, 0.85, 30)
	sum := 0.0
	for _, r := range pr {
		if r < 0 {
			t.Fatalf("negative rank %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1.0) > 1e-6 {
		t.Fatalf("PageRank sum = %v, want ~1", sum)
	}
}

func TestPageRankFavorsSink(t *testing.T) {
	// star: everyone points at hub; hub should have max rank.
	g := New()
	hub := g.AddVertex("hub")
	for i := 0; i < 10; i++ {
		v := g.AddVertex("leaf")
		g.AddEdge(v, hub, "r")
	}
	pr := PageRank(g, 0.85, 25)
	for id, r := range pr {
		if id != hub && r >= pr[hub] {
			t.Fatalf("leaf %d rank %v >= hub rank %v", id, r, pr[hub])
		}
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	if got := PageRank(New(), 0.85, 10); len(got) != 0 {
		t.Fatalf("PageRank on empty graph = %v", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	d := g.AddVertex("D")
	e := g.AddVertex("E")
	g.AddEdge(a, b, "r")
	g.AddEdge(c, b, "r") // a,b,c one component (undirected)
	g.AddEdge(d, e, "r") // d,e another

	cc := ConnectedComponents(g)
	if cc[a] != cc[b] || cc[b] != cc[c] {
		t.Fatalf("a,b,c should share a component: %v", cc)
	}
	if cc[d] != cc[e] {
		t.Fatalf("d,e should share a component: %v", cc)
	}
	if cc[a] == cc[d] {
		t.Fatalf("a and d should differ: %v", cc)
	}
	if cc[a] != a {
		t.Fatalf("component label should be min ID %d, got %d", a, cc[a])
	}
}

func TestSSSPHopCounts(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	c := g.AddVertex("C")
	d := g.AddVertex("D")
	iso := g.AddVertex("ISO")
	g.AddEdge(a, b, "r")
	g.AddEdge(b, c, "r")
	g.AddEdge(d, c, "r") // reachable via undirected traversal

	dist := SSSP(g, a)
	want := map[VertexID]int{a: 0, b: 1, c: 2, d: 3}
	for v, wd := range want {
		if dist[v] != wd {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], wd)
		}
	}
	if _, ok := dist[iso]; ok {
		t.Error("isolated vertex should be unreachable")
	}
	if got := SSSP(g, 999); len(got) != 0 {
		t.Errorf("SSSP from missing vertex = %v", got)
	}
}

func TestPregelHaltsWithoutMessages(t *testing.T) {
	g := New()
	g.AddVertex("A")
	steps := 0
	p := &Pregel[int, int]{
		MaxSupersteps: 100,
		Init:          func(v Vertex) int { return 0 },
		Compute: func(ctx *PregelContext[int], v Vertex, s int, msgs []int) int {
			steps++
			return s + 1 // never sends: must halt after superstep 0
		},
	}
	states := p.Run(g)
	if steps != 1 {
		t.Fatalf("Compute ran %d times, want 1", steps)
	}
	for _, s := range states {
		if s != 1 {
			t.Fatalf("state = %d, want 1", s)
		}
	}
}

func TestPregelCombinerMergesMessages(t *testing.T) {
	// Two sources send 1 to the same sink with a sum combiner; the sink must
	// observe a single merged message of 2.
	g := New()
	s1 := g.AddVertex("S")
	s2 := g.AddVertex("S")
	sink := g.AddVertex("T")
	g.AddEdge(s1, sink, "r")
	g.AddEdge(s2, sink, "r")

	p := &Pregel[int, int]{
		MaxSupersteps: 3,
		Combine:       func(a, b int) int { return a + b },
		Init:          func(v Vertex) int { return 0 },
		Compute: func(ctx *PregelContext[int], v Vertex, s int, msgs []int) int {
			if ctx.Superstep == 0 && v.Label == "S" {
				g.ForEachOutEdge(v.ID, func(e Edge) bool {
					ctx.Send(e.Dst, 1)
					return true
				})
				return s
			}
			if len(msgs) > 1 {
				t.Errorf("combiner not applied: %d messages", len(msgs))
			}
			for _, m := range msgs {
				s += m
			}
			return s
		},
	}
	states := p.Run(g)
	if states[sink] != 2 {
		t.Fatalf("sink state = %d, want 2", states[sink])
	}
}

func BenchmarkAddEdge(b *testing.B) {
	g := New()
	var ids []VertexID
	for i := 0; i < 1000; i++ {
		ids = append(ids, g.AddVertex("V"))
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], "r")
	}
}

func BenchmarkAddEdgesBatch(b *testing.B) {
	g := New()
	var ids []VertexID
	for i := 0; i < 1000; i++ {
		ids = append(ids, g.AddVertex("V"))
	}
	rng := rand.New(rand.NewSource(1))
	const batch = 64
	specs := make([]EdgeSpec, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		for j := range specs {
			specs[j] = EdgeSpec{Src: ids[rng.Intn(len(ids))], Dst: ids[rng.Intn(len(ids))], Label: "r", Weight: 1}
		}
		if _, err := g.AddEdges(specs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRank1k(b *testing.B) {
	g := New()
	var ids []VertexID
	for i := 0; i < 1000; i++ {
		ids = append(ids, g.AddVertex("V"))
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		g.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], "r")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, 0.85, 10)
	}
}
