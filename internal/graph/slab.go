package graph

import (
	"sync/atomic"

	"nous/internal/graph/symtab"
)

// This file implements the columnar slab that stores edge records. Edges are
// not heap-allocated one by one; each shard appends them into fixed-size
// chunks of parallel arrays (one column per field), so a whole-graph edge
// scan is a sequential walk over dense memory and the per-edge footprint is
// the sum of the column widths (~33 bytes) instead of a pointer-chased
// ~200-byte Edge struct plus allocator overhead.
//
// Concurrency: chunks are fixed-size and never move once published, so a
// slot's address is stable for the graph's lifetime. The chunk directory is
// copy-on-write behind an atomic pointer (appending a chunk publishes a new
// directory; old directories stay valid). Slot cells are written only by
// writers holding the edge's full shard-lock trio (source's, destination's
// and the edge's own shard), and readers reach a slot only through a
// lock-guarded structure (an adjacency list, the seq index, the label index
// or slab.len) protected by one of those same three locks — so the lock
// handoff orders every cell write before any reader's access, and readers
// never need a second lock to touch a slot in another shard's slab.

const (
	// shardBits ties the edge-ID layout to the stripe count: an EdgeID is
	// seq<<shardBits | shard, because IDs are allocated round-robin from one
	// global counter. numShards (graph.go) must equal 1<<shardBits.
	shardBits = 4

	// chunkBits sizes slab chunks at 512 slots (~17KB of columns), small
	// enough that sparsely-used graphs don't overpay and large enough that
	// scans are effectively sequential.
	chunkBits = 9
	chunkSize = 1 << chunkBits
	chunkMask = chunkSize - 1

	// maxSlot bounds slots per shard so an edgeRef packs slot and shard into
	// one uint32: 28 bits of slot, shardBits of shard — ~268M edges per
	// shard, ~4.3B per graph.
	maxSlot = 1<<(32-shardBits) - 1

	// maxSlabVertex bounds vertex IDs representable in the slab's 32-bit
	// src/dst columns.
	maxSlabVertex = 1<<32 - 1
)

// propMap is the interned-key in-memory form of an element's properties.
// Values stay plain strings (they are near-unique provenance payloads —
// sentences, doc IDs — and would bloat an interner).
type propMap map[symtab.SymID]string

// propsArray is one chunk's property column, allocated lazily on the first
// edge in the chunk that actually has props.
type propsArray [chunkSize]propMap

// edgeChunk is one fixed-capacity block of columnar edge storage. A slot's
// live fields are immutable after insertion except weight (SetEdgeWeight),
// the props cell (SetEdgeProp) and the dead flag (RemoveEdge) — all mutated
// under the edge's shard-lock trio.
type edgeChunk struct {
	seq    [chunkSize]uint32       // EdgeID >> shardBits
	src    [chunkSize]uint32       // source VertexID (fits 32 bits, see maxSlabVertex)
	dst    [chunkSize]uint32       // destination VertexID
	label  [chunkSize]symtab.SymID // interned predicate
	weight [chunkSize]float64
	ts     [chunkSize]int64
	dead   [chunkSize]bool // tombstone; dead slots are skipped by scans, reclaimed never (IDs are not reused)
	props  atomic.Pointer[propsArray]
}

// setProps stores an edge's props into the chunk's lazily-allocated property
// column. Caller holds the owning shard's write lock (which serializes the
// allocate-and-publish among writers; the pointer itself is atomic for
// lock-free chunk readers).
func (c *edgeChunk) setProps(off int, p propMap) {
	arr := c.props.Load()
	if arr == nil {
		arr = new(propsArray)
		c.props.Store(arr)
	}
	arr[off] = p
}

// propsAt returns the props map at off, or nil.
func (c *edgeChunk) propsAt(off int) propMap {
	if arr := c.props.Load(); arr != nil {
		return arr[off]
	}
	return nil
}

// edgeSlab is one shard's append-only columnar edge store.
type edgeSlab struct {
	chunks atomic.Pointer[[]*edgeChunk]
	len    uint32 // slots in use; written under the shard's write lock
}

// append claims the next slot, allocating and publishing a fresh chunk when
// the current one fills. Caller holds the owning shard's write lock. The
// returned slot is not yet reachable by readers; the caller wires it into
// the shard's indexes before unlocking.
func (s *edgeSlab) append(seq uint32, src, dst VertexID, label symtab.SymID, weight float64, ts int64) uint32 {
	slot := s.len
	if slot > maxSlot {
		panic("graph: edge slab full (2^28 edges in one shard)")
	}
	ci, off := int(slot>>chunkBits), int(slot&chunkMask)
	var chunks []*edgeChunk
	if p := s.chunks.Load(); p != nil {
		chunks = *p
	}
	if ci == len(chunks) {
		next := make([]*edgeChunk, ci+1)
		copy(next, chunks)
		next[ci] = &edgeChunk{}
		s.chunks.Store(&next)
		chunks = next
	}
	c := chunks[ci]
	c.seq[off] = seq
	c.src[off] = uint32(src)
	c.dst[off] = uint32(dst)
	c.label[off] = label
	c.weight[off] = weight
	c.ts[off] = ts
	c.dead[off] = false
	s.len = slot + 1
	return slot
}

// chunk resolves a slot to its chunk and in-chunk offset.
func (s *edgeSlab) chunk(slot uint32) (*edgeChunk, int) {
	chunks := *s.chunks.Load()
	return chunks[slot>>chunkBits], int(slot & chunkMask)
}

// edgeRef is a compact cross-shard edge reference: the owning shard index in
// the low shardBits, the slab slot above. Adjacency lists hold these 4-byte
// refs instead of *Edge pointers.
type edgeRef uint32

func makeRef(shardIdx int, slot uint32) edgeRef {
	return edgeRef(slot<<shardBits | uint32(shardIdx))
}

func (r edgeRef) shard() int   { return int(r & (numShards - 1)) }
func (r edgeRef) slot() uint32 { return uint32(r) >> shardBits }

// labelSet indexes the live slots of one shard's edges carrying one label.
// Slots are append-only; removal tombstones the slab slot and decrements
// live, and the slice is compacted (dead slots dropped) once they outnumber
// the live ones, so iteration stays O(live) amortized.
type labelSet struct {
	slots []uint32
	live  int
}

// seqOf and idOf convert between an EdgeID and its per-shard dense sequence
// number. The single global allocator hands out IDs round-robin across
// shards, so seq = id >> shardBits is dense within each shard — which is
// what lets the seq→slot index be a flat slice instead of a map.
func seqOf(id EdgeID) uint32 { return uint32(uint64(id) >> shardBits) }
func idOf(si int, seq uint32) EdgeID {
	return EdgeID(uint64(seq)<<shardBits | uint64(si))
}

// edgeFits reports whether an edge's ID and endpoints are representable in
// the slab's packed columns. Always true for allocator-assigned IDs (the
// limits are 2^36 edges and 2^32 vertices); restore paths check it so a
// corrupt snapshot fails loudly instead of truncating.
func edgeFits(e *Edge) bool {
	return uint64(e.ID)>>shardBits <= 1<<32-1 &&
		uint64(e.Src) <= maxSlabVertex && uint64(e.Dst) <= maxSlabVertex &&
		e.Src >= 0 && e.Dst >= 0 && e.ID >= 0
}

// lookup resolves an edge seq to its slab slot. Caller holds the shard lock
// (read or write).
func (s *shard) lookup(seq uint32) (uint32, bool) {
	if int(seq) >= len(s.idx) {
		return 0, false
	}
	v := s.idx[seq]
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// setIdx records seq→slot. Caller holds the shard write lock. The index
// grows in exact chunk-sized steps (not append-doubling) so its footprint
// tracks the slab's instead of overshooting by up to 2×.
func (s *shard) setIdx(seq, slot uint32) {
	if int(seq) >= len(s.idx) {
		want := (int(seq)>>chunkBits + 1) << chunkBits
		next := make([]uint32, want)
		copy(next, s.idx)
		s.idx = next
	}
	s.idx[seq] = slot + 1
}

// clearIdx removes seq from the index. Caller holds the shard write lock.
func (s *shard) clearIdx(seq uint32) {
	if int(seq) < len(s.idx) {
		s.idx[seq] = 0
	}
}

// internProps converts an exported props map to interned form, returning nil
// for empty input.
func internProps(p map[string]string) propMap {
	if len(p) == 0 {
		return nil
	}
	ip := make(propMap, len(p))
	for k, v := range p {
		ip[symtab.Intern(k)] = v
	}
	return ip
}

// exportProps materializes an interned props map for the API boundary,
// returning nil for empty input — exported elements without properties carry
// a nil map, never an allocated empty one.
func exportProps(p propMap) map[string]string {
	if len(p) == 0 {
		return nil
	}
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[symtab.Resolve(k)] = v
	}
	return out
}

// copyPropMap clones an interned props map (so a stored map is never aliased
// by a later mutation), returning nil for empty input.
func copyPropMap(p propMap) propMap {
	if len(p) == 0 {
		return nil
	}
	cp := make(propMap, len(p))
	for k, v := range p {
		cp[k] = v
	}
	return cp
}
