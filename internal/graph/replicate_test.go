package graph

import (
	"reflect"
	"testing"
)

// TestApplyReplicatedBasics replays a leader-shaped mutation sequence and
// checks state, epoch adoption and hook delivery.
func TestApplyReplicatedBasics(t *testing.T) {
	g := New()
	var got []Mutation
	g.AddMutationHook(func(m Mutation) { got = append(got, m) })

	muts := []Mutation{
		{Kind: MutAddVertex, Epoch: 10, Vertex: Vertex{ID: 0, Label: "Org", Props: map[string]string{"name": "acme"}}},
		{Kind: MutAddVertex, Epoch: 11, Vertex: Vertex{ID: 1, Label: "Person", Props: map[string]string{"name": "ada"}}},
		{Kind: MutAddEdges, Epoch: 12, Edges: []Edge{{ID: 0, Src: 0, Dst: 1, Label: "employs", Weight: 0.9, Timestamp: 100}}},
		{Kind: MutSetVertexProp, Epoch: 13, VertexID: 0, Key: "type", Value: "Organization"},
		{Kind: MutSetEdgeWeight, Epoch: 14, EdgeID: 0, Weight: 0.5},
		{Kind: MutSetEdgeProp, Epoch: 15, EdgeID: 0, Key: "doc", Value: "d1"},
	}
	for _, m := range muts {
		if err := g.ApplyReplicated(m); err != nil {
			t.Fatalf("ApplyReplicated(%v): %v", m.Kind, err)
		}
	}

	if e := g.Epoch(); e != 15 {
		t.Fatalf("epoch = %d, want 15 (adopted from the stream)", e)
	}
	if n := g.NumVertices(); n != 2 {
		t.Fatalf("vertices = %d, want 2", n)
	}
	e, ok := g.Edge(0)
	if !ok || e.Weight != 0.5 || e.Props["doc"] != "d1" {
		t.Fatalf("edge 0 = %+v ok=%v, want weight 0.5 doc=d1", e, ok)
	}
	if v, _ := g.VertexProp(0, "type"); v != "Organization" {
		t.Fatalf("vertex prop type = %q", v)
	}
	if len(got) != len(muts) {
		t.Fatalf("hook saw %d mutations, want %d", len(got), len(muts))
	}
	for i, m := range got {
		if m.Epoch != muts[i].Epoch || m.Kind != muts[i].Kind {
			t.Fatalf("hook[%d] = kind %d epoch %d, want kind %d epoch %d", i, m.Kind, m.Epoch, muts[i].Kind, muts[i].Epoch)
		}
	}

	// The allocators must have advanced past the leader-assigned IDs so a
	// promoted follower would not re-mint them.
	if id := g.AddVertex("X"); id != 2 {
		t.Fatalf("next local vertex ID = %d, want 2", id)
	}
}

// TestApplyReplicatedIdempotent re-applies the same records and checks that
// duplicates neither change state nor reach the hooks.
func TestApplyReplicatedIdempotent(t *testing.T) {
	g := New()
	muts := []Mutation{
		{Kind: MutAddVertex, Epoch: 1, Vertex: Vertex{ID: 0, Label: "Org", Props: map[string]string{"name": "acme"}}},
		{Kind: MutAddVertex, Epoch: 2, Vertex: Vertex{ID: 1, Label: "Org", Props: map[string]string{"name": "globex"}}},
		{Kind: MutAddEdges, Epoch: 3, Edges: []Edge{{ID: 0, Src: 0, Dst: 1, Label: "acquired", Weight: 1, Timestamp: 50}}},
		{Kind: MutRemoveEdge, Epoch: 4, EdgeID: 0},
	}
	for _, m := range muts {
		if err := g.ApplyReplicated(m); err != nil {
			t.Fatal(err)
		}
	}
	var dup []Mutation
	g.AddMutationHook(func(m Mutation) { dup = append(dup, m) })
	for _, m := range muts {
		if err := g.ApplyReplicated(m); err != nil {
			t.Fatal(err)
		}
	}
	// Replaying the range re-runs the edge's full lifecycle (the remove made
	// its re-insert "fresh" again), so subscribers may see add+remove again —
	// but always in add-before-remove order, so they converge too.
	var lifecycle []MutationKind
	for _, m := range dup {
		if m.Kind == MutAddEdges || m.Kind == MutRemoveEdge {
			lifecycle = append(lifecycle, m.Kind)
		}
	}
	if !reflect.DeepEqual(lifecycle, []MutationKind{MutAddEdges, MutRemoveEdge}) {
		t.Fatalf("replayed edge lifecycle = %v, want [MutAddEdges MutRemoveEdge]", lifecycle)
	}
	if n := g.NumEdges(); n != 0 {
		t.Fatalf("edges = %d, want 0 after replayed remove", n)
	}
	if e := g.Epoch(); e != 4 {
		t.Fatalf("epoch = %d, want 4", e)
	}
}

// TestApplyReplicatedPartialBatch delivers a batch where one edge already
// exists: only the fresh edges may be emitted.
func TestApplyReplicatedPartialBatch(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		g.ApplyReplicated(Mutation{Kind: MutAddVertex, Epoch: uint64(i + 1), Vertex: Vertex{ID: VertexID(i), Label: "V"}})
	}
	if err := g.ApplyReplicated(Mutation{Kind: MutAddEdges, Epoch: 4, Edges: []Edge{
		{ID: 0, Src: 0, Dst: 1, Label: "a"},
	}}); err != nil {
		t.Fatal(err)
	}
	var got []Mutation
	g.AddMutationHook(func(m Mutation) { got = append(got, m) })
	if err := g.ApplyReplicated(Mutation{Kind: MutAddEdges, Epoch: 5, Edges: []Edge{
		{ID: 0, Src: 0, Dst: 1, Label: "a"}, // duplicate
		{ID: 1, Src: 1, Dst: 2, Label: "b"}, // fresh
	}}); err != nil {
		t.Fatal(err)
	}
	want := []EdgeID{1}
	var ids []EdgeID
	for _, m := range got {
		for _, e := range m.Edges {
			ids = append(ids, e.ID)
		}
	}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("emitted edge IDs = %v, want %v", ids, want)
	}
	if n := g.NumEdges(); n != 2 {
		t.Fatalf("edges = %d, want 2", n)
	}
}

// TestApplyReplicatedMissingTargets: updates and removes whose target is
// absent (it predates the bootstrap snapshot) are silent no-ops.
func TestApplyReplicatedMissingTargets(t *testing.T) {
	g := New()
	var got []Mutation
	g.AddMutationHook(func(m Mutation) { got = append(got, m) })
	for _, m := range []Mutation{
		{Kind: MutSetVertexProp, Epoch: 9, VertexID: 7, Key: "k", Value: "v"},
		{Kind: MutRemoveEdge, Epoch: 10, EdgeID: 7},
		{Kind: MutSetEdgeProp, Epoch: 11, EdgeID: 7, Key: "k", Value: "v"},
		{Kind: MutSetEdgeWeight, Epoch: 12, EdgeID: 7, Weight: 2},
	} {
		if err := g.ApplyReplicated(m); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 0 {
		t.Fatalf("no-op applies reached hooks: %+v", got)
	}
	if e := g.Epoch(); e != 0 {
		t.Fatalf("epoch = %d, want 0 (no-ops adopt nothing)", e)
	}
	// An edge batch referencing a missing endpoint is a hard error: the
	// stream is ordered, so this means the follower lost a record.
	if err := g.ApplyReplicated(Mutation{Kind: MutAddEdges, Epoch: 13, Edges: []Edge{{ID: 0, Src: 0, Dst: 1, Label: "x"}}}); err == nil {
		t.Fatal("expected error for edge with missing endpoints")
	}
}
