package symtab

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestInternResolveIdentity(t *testing.T) {
	tab := NewTable()
	words := []string{"", "a", "acquired", "Organization", "curated", "a", ""}
	ids := make(map[string]SymID)
	for _, w := range words {
		id := tab.Intern(w)
		if prev, ok := ids[w]; ok && prev != id {
			t.Fatalf("Intern(%q) unstable: %d then %d", w, prev, id)
		}
		ids[w] = id
		if got := tab.Resolve(id); got != w {
			t.Fatalf("Resolve(Intern(%q)) = %q", w, got)
		}
	}
	if tab.Len() != 5 {
		t.Fatalf("Len = %d, want 5 distinct symbols", tab.Len())
	}
}

// TestInternResolveProperty drives the interner with arbitrary strings
// (including empty, unicode and binary-ish ones) and checks intern→resolve
// is the identity and IDs are stable and dense.
func TestInternResolveProperty(t *testing.T) {
	tab := NewTable()
	rng := rand.New(rand.NewSource(7))
	seen := make(map[string]SymID)
	for i := 0; i < 2000; i++ {
		n := rng.Intn(24)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		s := string(b)
		id := tab.Intern(s)
		if prev, ok := seen[s]; ok {
			if prev != id {
				t.Fatalf("Intern(%q) unstable: %d then %d", s, prev, id)
			}
		} else {
			if int(id) != len(seen) {
				t.Fatalf("Intern(%q) = %d, want dense %d", s, id, len(seen))
			}
			seen[s] = id
		}
		if got := tab.Resolve(id); got != s {
			t.Fatalf("Resolve(Intern(%q)) = %q", s, got)
		}
		if got, ok := tab.Lookup(s); !ok || got != id {
			t.Fatalf("Lookup(%q) = (%d,%v), want (%d,true)", s, got, ok, id)
		}
	}
	if tab.Len() != len(seen) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(seen))
	}
}

func TestLookupMissing(t *testing.T) {
	tab := NewTable()
	if _, ok := tab.Lookup("nope"); ok {
		t.Fatal("Lookup on empty table reported a hit")
	}
	tab.Intern("present")
	if _, ok := tab.Lookup("absent"); ok {
		t.Fatal("Lookup of never-interned string reported a hit")
	}
	if tab.Resolve(SymID(99)) != "" {
		t.Fatal("Resolve of unassigned ID should return empty string")
	}
}

// TestConcurrentInternLookup hammers one table from many goroutines — run
// under -race this pins the lock-free read paths' memory safety. Every
// goroutine interns from a shared vocabulary (forcing ID-assignment races)
// while also looking up and resolving what others published.
func TestConcurrentInternLookup(t *testing.T) {
	tab := NewTable()
	const goroutines = 8
	const perG = 400
	vocab := make([]string, 64)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("sym-%02d", i)
	}
	results := make([][]SymID, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			ids := make([]SymID, len(vocab))
			for i := range ids {
				ids[i] = ^SymID(0)
			}
			for n := 0; n < perG; n++ {
				w := rng.Intn(len(vocab))
				id := tab.Intern(vocab[w])
				if ids[w] != ^SymID(0) && ids[w] != id {
					t.Errorf("goroutine %d: Intern(%q) unstable: %d then %d", gi, vocab[w], ids[w], id)
					return
				}
				ids[w] = id
				if got := tab.Resolve(id); got != vocab[w] {
					t.Errorf("goroutine %d: Resolve(%d) = %q, want %q", gi, id, got, vocab[w])
					return
				}
				if id2, ok := tab.Lookup(vocab[w]); !ok || id2 != id {
					t.Errorf("goroutine %d: Lookup(%q) = (%d,%v) after Intern returned %d", gi, vocab[w], id2, ok, id)
					return
				}
			}
			results[gi] = ids
		}(gi)
	}
	wg.Wait()
	// Cross-goroutine agreement: every goroutine that interned a word got
	// the same ID for it.
	for w := range vocab {
		assigned := ^SymID(0)
		for gi := range results {
			if results[gi] == nil {
				continue
			}
			id := results[gi][w]
			if id == ^SymID(0) {
				continue
			}
			if assigned == ^SymID(0) {
				assigned = id
			} else if assigned != id {
				t.Fatalf("word %q interned as both %d and %d", vocab[w], assigned, id)
			}
		}
	}
	if tab.Len() > len(vocab) {
		t.Fatalf("Len = %d, want <= %d", tab.Len(), len(vocab))
	}
}

func TestGlobalTable(t *testing.T) {
	id := Intern("symtab-test-global-probe")
	if got, ok := Lookup("symtab-test-global-probe"); !ok || got != id {
		t.Fatalf("global Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
	if Resolve(id) != "symtab-test-global-probe" {
		t.Fatal("global Resolve mismatch")
	}
	if Len() == 0 {
		t.Fatal("global Len = 0 after Intern")
	}
}
