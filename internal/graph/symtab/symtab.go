// Package symtab implements the global string interner backing the graph's
// memory-lean core. Vertex labels, edge predicates and property keys are
// drawn from small, heavily repeated vocabularies; interning maps each
// distinct string to a dense SymID (a uint32) with a single canonical string
// per symbol, so the graph's columnar storage and indexes key off 4-byte IDs
// and never duplicate the strings themselves.
//
// Concurrency model: the hot paths — Intern on an already-known string,
// Lookup, Resolve — are lock-free. The table keeps two copy-on-write views
// behind atomic pointers (string→ID map and ID→string slice); interning a
// new symbol takes a mutex, rebuilds both views and publishes them
// atomically. Published views are never mutated in place, so readers racing
// a publication see either the old or the new complete view. The cost of
// publication is O(table size), which is fine because the symbol vocabulary
// is small and converges quickly (new predicates stop appearing); symbols
// are never removed.
package symtab

import (
	"strings"
	"sync"
	"sync/atomic"
)

// SymID is a dense identifier for one interned string. IDs are assigned
// sequentially from 0 in interning order and are stable for the lifetime of
// the table (symbols are never removed or renumbered).
type SymID uint32

// Table is one interner. The zero value is ready to use.
type Table struct {
	mu   sync.Mutex                       // serializes interning of new symbols
	ids  atomic.Pointer[map[string]SymID] // COW view: string -> ID
	strs atomic.Pointer[[]string]         // COW view: ID -> string
}

// NewTable returns an empty interner.
func NewTable() *Table { return &Table{} }

// Intern returns the SymID for s, assigning a fresh one if s has not been
// seen before. Interning an already-known string is lock-free.
func (t *Table) Intern(s string) SymID {
	if m := t.ids.Load(); m != nil {
		if id, ok := (*m)[s]; ok {
			return id
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.ids.Load()
	if old != nil {
		if id, ok := (*old)[s]; ok {
			return id
		}
	}
	// Clone the string so the table never pins a larger backing array the
	// caller sliced s out of (e.g. a decode buffer).
	s = strings.Clone(s)
	var strs []string
	next := make(map[string]SymID, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
		strs = append(strs, *t.strs.Load()...)
	}
	id := SymID(len(strs))
	next[s] = id
	strs = append(strs, s)
	// Publish the slice first: a reader that wins the map race and resolves
	// the fresh ID must find its string already present.
	t.strs.Store(&strs)
	t.ids.Store(&next)
	return id
}

// Lookup returns the SymID for s without interning it. The second result is
// false when s has never been interned — which also means no stored element
// can carry it, a fact read paths use to answer "no match" without touching
// the table.
func (t *Table) Lookup(s string) (SymID, bool) {
	m := t.ids.Load()
	if m == nil {
		return 0, false
	}
	id, ok := (*m)[s]
	return id, ok
}

// Resolve returns the canonical string for id, or "" when id was never
// assigned. (The empty string itself interns like any other; a table that
// has interned "" resolves its ID to "" indistinguishably, which is the
// correct round-trip.)
func (t *Table) Resolve(id SymID) string {
	p := t.strs.Load()
	if p == nil || int(id) >= len(*p) {
		return ""
	}
	return (*p)[id]
}

// Len returns the number of interned symbols.
func (t *Table) Len() int {
	p := t.strs.Load()
	if p == nil {
		return 0
	}
	return len(*p)
}

// global is the process-wide table the graph package interns through. A
// single shared vocabulary keeps SymIDs comparable across graphs (a restored
// graph and a live one agree on predicate IDs) and costs nothing extra: the
// vocabularies would be near-identical per graph anyway.
var global Table

// Intern interns s in the global table.
func Intern(s string) SymID { return global.Intern(s) }

// Lookup looks s up in the global table without interning it.
func Lookup(s string) (SymID, bool) { return global.Lookup(s) }

// Resolve resolves id in the global table.
func Resolve(id SymID) string { return global.Resolve(id) }

// Len returns the size of the global table.
func Len() int { return global.Len() }
