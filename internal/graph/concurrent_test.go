package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestAddEdgesBatch covers the bulk write path: contiguous IDs, index
// wiring and full-field round trips.
func TestAddEdgesBatch(t *testing.T) {
	g := New()
	var vids []VertexID
	for i := 0; i < 40; i++ {
		vids = append(vids, g.AddVertex("V"))
	}
	specs := make([]EdgeSpec, 0, 100)
	for i := 0; i < 100; i++ {
		specs = append(specs, EdgeSpec{
			Src: vids[i%len(vids)], Dst: vids[(i*7+3)%len(vids)],
			Label: fmt.Sprintf("rel%d", i%3), Weight: float64(i) / 100,
			Timestamp: int64(i), Props: map[string]string{"i": fmt.Sprint(i)},
		})
	}
	ids, err := g.AddEdges(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(specs) {
		t.Fatalf("got %d ids for %d specs", len(ids), len(specs))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("ids not contiguous: %v then %v", ids[i-1], ids[i])
		}
	}
	if g.NumEdges() != 100 {
		t.Fatalf("NumEdges = %d, want 100", g.NumEdges())
	}
	for i, id := range ids {
		e, ok := g.Edge(id)
		if !ok {
			t.Fatalf("edge %d missing", id)
		}
		if e.Src != specs[i].Src || e.Dst != specs[i].Dst || e.Label != specs[i].Label ||
			e.Weight != specs[i].Weight || e.Timestamp != specs[i].Timestamp || e.Props["i"] != fmt.Sprint(i) {
			t.Fatalf("edge %d fields lost: %+v vs spec %+v", id, e, specs[i])
		}
	}
	if got := len(g.EdgesByLabel("rel0")); got != 34 {
		t.Fatalf("EdgesByLabel(rel0) = %d, want 34", got)
	}
	sumOut := 0
	for _, v := range vids {
		sumOut += g.OutDegree(v)
	}
	if sumOut != 100 {
		t.Fatalf("sum of out-degrees = %d, want 100", sumOut)
	}
}

func TestAddEdgesValidatesAtomically(t *testing.T) {
	g := New()
	a := g.AddVertex("A")
	b := g.AddVertex("B")
	_, err := g.AddEdges([]EdgeSpec{
		{Src: a, Dst: b, Label: "ok"},
		{Src: a, Dst: 999, Label: "bad"},
	})
	if err == nil {
		t.Fatal("expected error for missing endpoint")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("batch with invalid spec inserted %d edges, want 0", g.NumEdges())
	}
}

// TestAddVertexWithPropsAtomic verifies the insert-then-attach-props race
// is gone: no reader may observe a vertex created by AddVertexWithProps
// without its properties.
func TestAddVertexWithPropsAtomic(t *testing.T) {
	g := New()
	done := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; i < 2000; i++ {
			g.AddVertexWithProps("P", map[string]string{"name": "x"})
		}
	}()
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, id := range g.VertexIDs() {
					v, ok := g.Vertex(id)
					if !ok {
						continue
					}
					if v.Label == "P" && v.Props["name"] != "x" {
						t.Error("observed vertex without its props")
						return
					}
				}
			}
		}()
	}
	writer.Wait()
	close(done)
	readers.Wait()
}

// TestConcurrentMutationStress hammers the sharded store from many
// goroutines — vertex inserts, single and batch edge inserts, removals,
// edge mutations and a full set of readers — then checks the cross-shard
// index invariants. Run under -race this doubles as the data-race gate for
// the stripe-locking protocol.
func TestConcurrentMutationStress(t *testing.T) {
	g := New()
	const nVerts = 64
	var vids []VertexID
	for i := 0; i < nVerts; i++ {
		vids = append(vids, g.AddVertex("V"))
	}

	var (
		wg      sync.WaitGroup
		idMu    sync.Mutex
		edgeIDs []EdgeID
	)
	record := func(ids ...EdgeID) {
		idMu.Lock()
		edgeIDs = append(edgeIDs, ids...)
		idMu.Unlock()
	}
	randomKnownEdge := func(rng *rand.Rand) (EdgeID, bool) {
		idMu.Lock()
		defer idMu.Unlock()
		if len(edgeIDs) == 0 {
			return 0, false
		}
		return edgeIDs[rng.Intn(len(edgeIDs))], true
	}

	// Single-edge writers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				id, err := g.AddEdge(vids[rng.Intn(nVerts)], vids[rng.Intn(nVerts)], "r")
				if err != nil {
					t.Error(err)
					return
				}
				record(id)
			}
		}(int64(w))
	}
	// Batch writers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 30; i++ {
				specs := make([]EdgeSpec, 10)
				for j := range specs {
					specs[j] = EdgeSpec{Src: vids[rng.Intn(nVerts)], Dst: vids[rng.Intn(nVerts)], Label: "b", Weight: 1}
				}
				ids, err := g.AddEdges(specs)
				if err != nil {
					t.Error(err)
					return
				}
				record(ids...)
			}
		}(int64(w))
	}
	// Removers and edge mutators.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(200 + seed))
			for i := 0; i < 400; i++ {
				if id, ok := randomKnownEdge(rng); ok {
					switch i % 3 {
					case 0:
						g.RemoveEdge(id)
					case 1:
						g.SetEdgeWeight(id, rng.Float64())
					case 2:
						g.SetEdgeProp(id, "k", "v")
					}
				}
			}
		}(int64(w))
	}
	// Vertex writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id := g.AddVertexWithProps("W", map[string]string{"n": fmt.Sprint(i)})
			g.SetVertexProp(id, "extra", "e")
		}
	}()
	// Readers over every access path.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(300 + seed))
			for i := 0; i < 200; i++ {
				v := vids[rng.Intn(nVerts)]
				g.OutEdges(v)
				g.InEdges(v)
				g.Edges(v)
				g.Neighbors(v)
				g.Degree(v)
				g.FindEdges(v, vids[rng.Intn(nVerts)], "")
				g.EdgesByLabel("r")
				g.EdgeLabels()
				g.NumEdges()
				g.NumVertices()
				g.ForEachOutEdge(v, func(e Edge) bool { return true })
				if id, ok := randomKnownEdge(rng); ok {
					g.Edge(id)
				}
			}
		}(int64(w))
	}
	wg.Wait()

	// Quiesced invariants: adjacency, edge map and label indexes agree.
	sumOut, sumIn := 0, 0
	for _, id := range g.VertexIDs() {
		sumOut += g.OutDegree(id)
		sumIn += g.InDegree(id)
	}
	if n := g.NumEdges(); sumOut != n || sumIn != n {
		t.Fatalf("degree sums (out=%d in=%d) disagree with NumEdges=%d", sumOut, sumIn, n)
	}
	byLabel := 0
	for _, l := range g.EdgeLabels() {
		byLabel += len(g.EdgesByLabel(l))
	}
	if n := g.NumEdges(); byLabel != n {
		t.Fatalf("label index holds %d edges, NumEdges=%d", byLabel, n)
	}
	for _, id := range g.EdgeIDs() {
		e, ok := g.Edge(id)
		if !ok {
			t.Fatalf("EdgeIDs lists %d but Edge misses it", id)
		}
		if !g.HasVertex(e.Src) || !g.HasVertex(e.Dst) {
			t.Fatalf("edge %d has dangling endpoint", id)
		}
	}
}

// TestConcurrentReadersDuringPregel runs PageRank concurrently with writers
// to confirm the compute engine's read paths tolerate live mutation.
func TestConcurrentReadersDuringPregel(t *testing.T) {
	g := New()
	var vids []VertexID
	for i := 0; i < 50; i++ {
		vids = append(vids, g.AddVertex("V"))
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		g.AddEdge(vids[rng.Intn(len(vids))], vids[rng.Intn(len(vids))], "r")
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		rng := rand.New(rand.NewSource(10))
		for {
			select {
			case <-stop:
				return
			default:
				g.AddEdge(vids[rng.Intn(len(vids))], vids[rng.Intn(len(vids))], "r")
			}
		}
	}()
	for i := 0; i < 5; i++ {
		pr := PageRank(g, 0.85, 5)
		if len(pr) == 0 {
			t.Fatal("empty PageRank on populated graph")
		}
		ConnectedComponents(g)
	}
	close(stop)
	writer.Wait()
}

// TestConcurrentRemoveEdgeStress mirrors the add-path stress tests for the
// removal path: writers add timestamped edges while removers delete them and
// readers traverse. Under -race this exercises the multi-shard lock ordering
// of RemoveEdge; the final reconciliation asserts no index (adjacency,
// byLabel, edges) retains a removed edge.
func TestConcurrentRemoveEdgeStress(t *testing.T) {
	g := New()
	var verts []VertexID
	for i := 0; i < 10; i++ {
		verts = append(verts, g.AddVertex("Company"))
	}
	const workers, perWorker = 4, 150
	idCh := make(chan EdgeID, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id, err := g.AddEdgeFull(verts[(w+i)%len(verts)], verts[(w+i+1)%len(verts)],
					"acquired", 1, int64(i), nil)
				if err != nil {
					t.Error(err)
					return
				}
				idCh <- id
			}
		}(w)
	}
	var removers sync.WaitGroup
	var removedCount atomic.Int64
	for r := 0; r < 2; r++ {
		removers.Add(1)
		go func() {
			defer removers.Done()
			for id := range idCh {
				// Two removers may race on the same ID stream; exactly one
				// RemoveEdge per ID succeeds.
				if g.RemoveEdge(id) {
					removedCount.Add(1)
				}
				if g.RemoveEdge(id) {
					t.Errorf("edge %d removed twice", id)
				}
			}
		}()
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, v := range verts {
					g.OutEdges(v)
					g.Degree(v)
				}
				g.EdgesByLabel("acquired")
			}
		}
	}()
	wg.Wait()
	close(idCh)
	removers.Wait()
	close(stop)
	readers.Wait()

	if got := int(removedCount.Load()); got != workers*perWorker {
		t.Fatalf("removed %d edges, want %d", got, workers*perWorker)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d after removing everything", g.NumEdges())
	}
	for _, v := range verts {
		if d := g.Degree(v); d != 0 {
			t.Fatalf("vertex %d retains %d adjacency entries", v, d)
		}
	}
	if es := g.EdgesByLabel("acquired"); len(es) != 0 {
		t.Fatalf("label index retains %d edges", len(es))
	}
}

// TestMultipleMutationHooks pins the fan-out contract AddMutationHook adds:
// both subscribers see every mutation, removal detaches only the removed
// subscriber, and SetMutationHook(nil) leaves added hooks alone.
func TestMultipleMutationHooks(t *testing.T) {
	g := New()
	var a, b, primary atomic.Int64
	removeA := g.AddMutationHook(func(Mutation) { a.Add(1) })
	g.AddMutationHook(func(Mutation) { b.Add(1) })
	g.SetMutationHook(func(Mutation) { primary.Add(1) })

	v1 := g.AddVertex("Company")
	v2 := g.AddVertex("Company")
	if _, err := g.AddEdge(v1, v2, "acquired"); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 3 || b.Load() != 3 || primary.Load() != 3 {
		t.Fatalf("hook counts = %d/%d/%d, want 3/3/3", a.Load(), b.Load(), primary.Load())
	}

	removeA()
	g.SetMutationHook(nil) // must not detach b
	g.AddVertex("Company")
	if a.Load() != 3 || primary.Load() != 3 {
		t.Fatal("removed hooks still invoked")
	}
	if b.Load() != 4 {
		t.Fatalf("surviving hook missed a mutation (saw %d)", b.Load())
	}
	// Replacing the primary slot swaps, not stacks.
	var p2 int64
	g.SetMutationHook(func(Mutation) { p2++ })
	g.AddVertex("Company")
	if primary.Load() != 3 || p2 != 1 || b.Load() != 5 {
		t.Fatalf("primary slot swap broken: %d/%d/%d", primary.Load(), p2, b.Load())
	}
}
