// Package graph implements an in-memory directed property graph with
// per-label edge indexes, temporal edges and a Pregel-style bulk-synchronous
// compute engine. It is the substrate NOUS's paper built on Apache Spark
// GraphX; this implementation preserves the same API surface — vertices and
// edges carrying arbitrary properties, neighborhood iteration, and
// message-passing supersteps over hash partitions — at single-process scale.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// VertexID identifies a vertex. IDs are assigned densely by the graph and
// are never reused within one Graph instance.
type VertexID int64

// EdgeID identifies an edge within one Graph instance.
type EdgeID int64

// NilVertex is returned by lookups that find no vertex.
const NilVertex VertexID = -1

// Vertex is a labeled node with arbitrary string properties.
type Vertex struct {
	ID    VertexID
	Label string // entity type, e.g. "Organization"
	Props map[string]string
}

// Edge is a directed, labeled, timestamped edge with a weight and arbitrary
// string properties. Timestamp is seconds since the epoch (0 when the edge is
// not temporal).
type Edge struct {
	ID        EdgeID
	Src, Dst  VertexID
	Label     string // predicate, e.g. "acquired"
	Weight    float64
	Timestamp int64
	Props     map[string]string
}

// Graph is a mutable directed multigraph. All exported methods are safe for
// concurrent use.
type Graph struct {
	mu sync.RWMutex

	vertices map[VertexID]*Vertex
	edges    map[EdgeID]*Edge
	out      map[VertexID][]*Edge
	in       map[VertexID][]*Edge
	byLabel  map[string]map[EdgeID]*Edge // edge label -> edges

	nextVertex VertexID
	nextEdge   EdgeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices: make(map[VertexID]*Vertex),
		edges:    make(map[EdgeID]*Edge),
		out:      make(map[VertexID][]*Edge),
		in:       make(map[VertexID][]*Edge),
		byLabel:  make(map[string]map[EdgeID]*Edge),
	}
}

// AddVertex inserts a vertex with the given label and returns its ID.
func (g *Graph) AddVertex(label string) VertexID {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := g.nextVertex
	g.nextVertex++
	g.vertices[id] = &Vertex{ID: id, Label: label}
	return id
}

// AddVertexWithProps inserts a vertex carrying the given properties.
// The props map is copied.
func (g *Graph) AddVertexWithProps(label string, props map[string]string) VertexID {
	id := g.AddVertex(label)
	g.mu.Lock()
	defer g.mu.Unlock()
	v := g.vertices[id]
	v.Props = copyProps(props)
	return id
}

// SetVertexProp sets one property on a vertex. It reports whether the vertex
// exists.
func (g *Graph) SetVertexProp(id VertexID, key, value string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.vertices[id]
	if !ok {
		return false
	}
	if v.Props == nil {
		v.Props = make(map[string]string)
	}
	v.Props[key] = value
	return true
}

// VertexProp returns a property of a vertex.
func (g *Graph) VertexProp(id VertexID, key string) (string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.vertices[id]
	if !ok || v.Props == nil {
		return "", false
	}
	val, ok := v.Props[key]
	return val, ok
}

// Vertex returns a copy of the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) (Vertex, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.vertices[id]
	if !ok {
		return Vertex{}, false
	}
	cp := *v
	cp.Props = copyProps(v.Props)
	return cp, true
}

// HasVertex reports whether the vertex exists.
func (g *Graph) HasVertex(id VertexID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.vertices[id]
	return ok
}

// AddEdge inserts a directed edge and returns its ID. Both endpoints must
// exist.
func (g *Graph) AddEdge(src, dst VertexID, label string) (EdgeID, error) {
	return g.AddEdgeFull(src, dst, label, 1.0, 0, nil)
}

// AddEdgeFull inserts a directed edge with weight, timestamp and properties.
func (g *Graph) AddEdgeFull(src, dst VertexID, label string, weight float64, ts int64, props map[string]string) (EdgeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.vertices[src]; !ok {
		return 0, fmt.Errorf("graph: add edge %q: source vertex %d does not exist", label, src)
	}
	if _, ok := g.vertices[dst]; !ok {
		return 0, fmt.Errorf("graph: add edge %q: destination vertex %d does not exist", label, dst)
	}
	id := g.nextEdge
	g.nextEdge++
	e := &Edge{ID: id, Src: src, Dst: dst, Label: label, Weight: weight, Timestamp: ts, Props: copyProps(props)}
	g.edges[id] = e
	g.out[src] = append(g.out[src], e)
	g.in[dst] = append(g.in[dst], e)
	idx, ok := g.byLabel[label]
	if !ok {
		idx = make(map[EdgeID]*Edge)
		g.byLabel[label] = idx
	}
	idx[id] = e
	return id, nil
}

// RemoveEdge deletes an edge. It reports whether the edge existed.
func (g *Graph) RemoveEdge(id EdgeID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return false
	}
	delete(g.edges, id)
	g.out[e.Src] = removeEdgeFrom(g.out[e.Src], id)
	g.in[e.Dst] = removeEdgeFrom(g.in[e.Dst], id)
	if idx := g.byLabel[e.Label]; idx != nil {
		delete(idx, id)
		if len(idx) == 0 {
			delete(g.byLabel, e.Label)
		}
	}
	return true
}

// Edge returns a copy of the edge with the given ID.
func (g *Graph) Edge(id EdgeID) (Edge, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.edges[id]
	if !ok {
		return Edge{}, false
	}
	cp := *e
	cp.Props = copyProps(e.Props)
	return cp, true
}

// SetEdgeProp sets one property on an edge. It reports whether the edge
// exists.
func (g *Graph) SetEdgeProp(id EdgeID, key, value string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return false
	}
	if e.Props == nil {
		e.Props = make(map[string]string)
	}
	e.Props[key] = value
	return true
}

// SetEdgeWeight updates an edge's weight. It reports whether the edge exists.
func (g *Graph) SetEdgeWeight(id EdgeID, w float64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return false
	}
	e.Weight = w
	return true
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.vertices)
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// OutDegree returns the number of outgoing edges of a vertex.
func (g *Graph) OutDegree(id VertexID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.out[id])
}

// InDegree returns the number of incoming edges of a vertex.
func (g *Graph) InDegree(id VertexID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.in[id])
}

// Degree returns in-degree + out-degree.
func (g *Graph) Degree(id VertexID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.out[id]) + len(g.in[id])
}

// OutEdges returns copies of the outgoing edges of a vertex.
func (g *Graph) OutEdges(id VertexID) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return copyEdges(g.out[id])
}

// InEdges returns copies of the incoming edges of a vertex.
func (g *Graph) InEdges(id VertexID) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return copyEdges(g.in[id])
}

// Edges returns copies of all edges incident to the vertex (both directions).
func (g *Graph) Edges(id VertexID) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	all := make([]Edge, 0, len(g.out[id])+len(g.in[id]))
	for _, e := range g.out[id] {
		all = append(all, *e)
	}
	for _, e := range g.in[id] {
		all = append(all, *e)
	}
	return all
}

// Neighbors returns the distinct vertices adjacent to id in either direction,
// in ascending order.
func (g *Graph) Neighbors(id VertexID) []VertexID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[VertexID]struct{})
	for _, e := range g.out[id] {
		seen[e.Dst] = struct{}{}
	}
	for _, e := range g.in[id] {
		seen[e.Src] = struct{}{}
	}
	delete(seen, id)
	ids := make([]VertexID, 0, len(seen))
	for v := range seen {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EdgesByLabel returns copies of all edges carrying the given label.
func (g *Graph) EdgesByLabel(label string) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	idx := g.byLabel[label]
	es := make([]Edge, 0, len(idx))
	for _, e := range idx {
		es = append(es, *e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	return es
}

// EdgeLabels returns the distinct edge labels present in the graph, sorted.
func (g *Graph) EdgeLabels() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	labels := make([]string, 0, len(g.byLabel))
	for l := range g.byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// VertexIDs returns all vertex IDs in ascending order.
func (g *Graph) VertexIDs() []VertexID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]VertexID, 0, len(g.vertices))
	for id := range g.vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EdgeIDs returns all edge IDs in ascending order.
func (g *Graph) EdgeIDs() []EdgeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]EdgeID, 0, len(g.edges))
	for id := range g.edges {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FindEdges returns copies of edges from src to dst with the given label.
// An empty label matches any label.
func (g *Graph) FindEdges(src, dst VertexID, label string) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Edge
	for _, e := range g.out[src] {
		if e.Dst == dst && (label == "" || e.Label == label) {
			out = append(out, *e)
		}
	}
	return out
}

// ForEachOutEdge calls fn for each outgoing edge of id while fn returns true.
// fn must not mutate the graph.
func (g *Graph) ForEachOutEdge(id VertexID, fn func(Edge) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, e := range g.out[id] {
		if !fn(*e) {
			return
		}
	}
}

// ForEachInEdge calls fn for each incoming edge of id while fn returns true.
// fn must not mutate the graph.
func (g *Graph) ForEachInEdge(id VertexID, fn func(Edge) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, e := range g.in[id] {
		if !fn(*e) {
			return
		}
	}
}

func removeEdgeFrom(list []*Edge, id EdgeID) []*Edge {
	for i, e := range list {
		if e.ID == id {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

func copyEdges(list []*Edge) []Edge {
	out := make([]Edge, len(list))
	for i, e := range list {
		out[i] = *e
		out[i].Props = copyProps(e.Props)
	}
	return out
}

func copyProps(p map[string]string) map[string]string {
	if p == nil {
		return nil
	}
	cp := make(map[string]string, len(p))
	for k, v := range p {
		cp[k] = v
	}
	return cp
}
