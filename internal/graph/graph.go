// Package graph implements an in-memory directed property graph with
// per-label edge indexes, temporal edges and a Pregel-style bulk-synchronous
// compute engine. It is the substrate NOUS's paper built on Apache Spark
// GraphX; this implementation preserves the same API surface — vertices and
// edges carrying arbitrary properties, neighborhood iteration, and
// message-passing supersteps over hash partitions — at single-process scale.
//
// Storage is partitioned across lock-striped shards so unrelated mutations
// do not contend on one global mutex: a vertex, its adjacency lists and its
// degree counters live in the shard owning the vertex ID, while an edge
// record and its label-index entry live in the shard owning the edge ID.
// Operations spanning several shards (edge insertion touches the source's
// shard, the destination's shard and the edge's shard) acquire the distinct
// shards in ascending index order, which makes multi-shard writers
// deadlock-free.
//
// Memory layout: strings (labels, predicates, prop keys) are interned into
// dense SymIDs (internal/graph/symtab) and edge records live in per-shard
// columnar slabs (slab.go) addressed by compact 4-byte refs, not as
// individually heap-allocated *Edge values. The exported API still traffics
// in Vertex/Edge values with plain strings — they are materialized on demand
// at the API boundary, and scan.go provides slab-native iteration for hot
// consumers that don't want the materialization cost.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nous/internal/graph/symtab"
)

// VertexID identifies a vertex. IDs are assigned densely by the graph and
// are never reused within one Graph instance.
type VertexID int64

// EdgeID identifies an edge within one Graph instance.
type EdgeID int64

// NilVertex is returned by lookups that find no vertex.
const NilVertex VertexID = -1

// Vertex is a labeled node with arbitrary string properties.
type Vertex struct {
	ID    VertexID
	Label string // entity type, e.g. "Organization"
	Props map[string]string
}

// Edge is a directed, labeled, timestamped edge with a weight and arbitrary
// string properties. Timestamp is seconds since the epoch (0 when the edge is
// not temporal).
type Edge struct {
	ID        EdgeID
	Src, Dst  VertexID
	Label     string // predicate, e.g. "acquired"
	Weight    float64
	Timestamp int64
	Props     map[string]string
}

// numShards is the lock-stripe count. A power of two so ID → shard is a
// mask; 16 stripes keep contention low well past the core counts this
// process-local store targets. Must equal 1<<shardBits (slab.go), which ties
// the EdgeID ↔ (shard, seq) split to the stripe count.
const numShards = 1 << shardBits

// vertexRec is a vertex's stored form: interned label, interned-key props.
type vertexRec struct {
	label symtab.SymID
	props propMap
}

// shard is one lock stripe. Vertices (with their adjacency lists) are owned
// by the shard of their VertexID; edge records (slab slots) and the
// per-label index entries are owned by the shard of their EdgeID.
//
// Invariant: an edge is reachable from three shards — its own (slab via idx,
// byLabel), its source's (out) and its destination's (in). Any write to an
// edge's slab cells or to the structures referencing it holds all three
// shard locks, so a reader holding any one of them observes a consistent
// record — including when it dereferences an edgeRef into another shard's
// slab without taking that shard's lock.
type shard struct {
	mu       sync.RWMutex
	vertices map[VertexID]vertexRec
	out      map[VertexID][]edgeRef
	in       map[VertexID][]edgeRef
	slab     edgeSlab
	idx      []uint32 // seq -> slab slot + 1; 0 = absent
	byLabel  map[symtab.SymID]*labelSet
	live     int // edges owned here that are not tombstoned
}

// Graph is a mutable directed multigraph. All exported methods are safe for
// concurrent use.
type Graph struct {
	shards [numShards]shard

	nextVertex atomic.Int64
	nextEdge   atomic.Int64

	// epoch counts completed mutations. It is bumped after every write
	// finishes, so a derived artifact computed against the epoch observed
	// before the computation started is invalidated by any write that lands
	// during or after it.
	epoch atomic.Uint64

	// hooks is the copy-on-write list of mutation subscribers (see
	// AddMutationHook / SetMutationHook). hookMu serializes list updates;
	// primaryHook tracks the entry SetMutationHook owns.
	hookMu      sync.Mutex
	hooks       atomic.Pointer[[]*hookEntry]
	primaryHook *hookEntry
}

// Epoch returns the graph's monotonic mutation counter. It is read
// lock-free; two equal Epoch values bracket a window in which no mutation
// completed, which callers (see internal/analytics) use to memoize derived
// artifacts such as PageRank.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// bump records one completed mutation and returns the new epoch. Called
// after the write's data landed (for edge writes, while the shard locks are
// still held — any reader tagged with the new epoch that touches the
// written shard blocks until the locks drop and therefore observes the
// write), so no artifact can be tagged with an epoch newer than the state
// it was computed from.
func (g *Graph) bump() uint64 { return g.epoch.Add(1) }

// New returns an empty graph.
func New() *Graph {
	g := &Graph{}
	for i := range g.shards {
		s := &g.shards[i]
		s.vertices = make(map[VertexID]vertexRec)
		s.out = make(map[VertexID][]edgeRef)
		s.in = make(map[VertexID][]edgeRef)
		s.byLabel = make(map[symtab.SymID]*labelSet)
	}
	return g
}

func shardIdx(id uint64) int { return int(id & (numShards - 1)) }

func (g *Graph) vshard(id VertexID) *shard { return &g.shards[shardIdx(uint64(id))] }
func (g *Graph) eshard(id EdgeID) *shard   { return &g.shards[shardIdx(uint64(id))] }

// sorted3 orders three shard indexes ascending.
func sorted3(a, b, c int) (int, int, int) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// lockEdgeShards write-locks the distinct shards an edge write touches, in
// ascending index order.
func (g *Graph) lockEdgeShards(src, dst VertexID, id EdgeID) {
	a, b, c := sorted3(shardIdx(uint64(src)), shardIdx(uint64(dst)), shardIdx(uint64(id)))
	g.shards[a].mu.Lock()
	if b != a {
		g.shards[b].mu.Lock()
	}
	if c != b {
		g.shards[c].mu.Lock()
	}
}

func (g *Graph) unlockEdgeShards(src, dst VertexID, id EdgeID) {
	a, b, c := sorted3(shardIdx(uint64(src)), shardIdx(uint64(dst)), shardIdx(uint64(id)))
	if c != b {
		g.shards[c].mu.Unlock()
	}
	if b != a {
		g.shards[b].mu.Unlock()
	}
	g.shards[a].mu.Unlock()
}

// AddVertex inserts a vertex with the given label and returns its ID.
func (g *Graph) AddVertex(label string) VertexID {
	return g.AddVertexWithProps(label, nil)
}

// AddVertexWithProps inserts a vertex carrying the given properties.
// The props map is copied. The vertex and its properties become visible
// atomically: no reader can observe the vertex without them.
func (g *Graph) AddVertexWithProps(label string, props map[string]string) VertexID {
	id := VertexID(g.nextVertex.Add(1) - 1)
	rec := vertexRec{label: symtab.Intern(label), props: internProps(props)}
	s := g.vshard(id)
	s.mu.Lock()
	s.vertices[id] = rec
	s.mu.Unlock()
	ep := g.bump()
	if g.hooked() {
		g.emit(Mutation{Kind: MutAddVertex, Epoch: ep,
			Vertex: Vertex{ID: id, Label: label, Props: copyProps(props)}})
	}
	return id
}

// SetVertexProp sets one property on a vertex. It reports whether the vertex
// exists.
func (g *Graph) SetVertexProp(id VertexID, key, value string) bool {
	sym := symtab.Intern(key)
	s := g.vshard(id)
	s.mu.Lock()
	rec, ok := s.vertices[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if rec.props == nil {
		rec.props = make(propMap, 1)
		s.vertices[id] = rec
	}
	rec.props[sym] = value
	s.mu.Unlock()
	ep := g.bump()
	g.emit(Mutation{Kind: MutSetVertexProp, Epoch: ep, VertexID: id, Key: key, Value: value})
	return true
}

// VertexProp returns a property of a vertex.
func (g *Graph) VertexProp(id VertexID, key string) (string, bool) {
	sym, known := symtab.Lookup(key)
	if !known {
		return "", false // a never-interned key is set on no element
	}
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.vertices[id]
	if !ok || rec.props == nil {
		return "", false
	}
	val, ok := rec.props[sym]
	return val, ok
}

// Vertex returns a copy of the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) (Vertex, bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.vertices[id]
	if !ok {
		return Vertex{}, false
	}
	return Vertex{ID: id, Label: symtab.Resolve(rec.label), Props: exportProps(rec.props)}, true
}

// HasVertex reports whether the vertex exists.
func (g *Graph) HasVertex(id VertexID) bool {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.vertices[id]
	return ok
}

// AddEdge inserts a directed edge and returns its ID. Both endpoints must
// exist.
func (g *Graph) AddEdge(src, dst VertexID, label string) (EdgeID, error) {
	return g.AddEdgeFull(src, dst, label, 1.0, 0, nil)
}

// AddEdgeFull inserts a directed edge with weight, timestamp and properties.
func (g *Graph) AddEdgeFull(src, dst VertexID, label string, weight float64, ts int64, props map[string]string) (EdgeID, error) {
	// Vertices are never removed, so existence checked here holds for the
	// rest of the insertion.
	if !g.HasVertex(src) {
		return 0, fmt.Errorf("graph: add edge %q: source vertex %d does not exist", label, src)
	}
	if !g.HasVertex(dst) {
		return 0, fmt.Errorf("graph: add edge %q: destination vertex %d does not exist", label, dst)
	}
	id := EdgeID(g.nextEdge.Add(1) - 1)
	sym := symtab.Intern(label)
	ip := internProps(props)
	g.lockEdgeShards(src, dst, id)
	g.insertEdgeLocked(id, src, dst, sym, weight, ts, ip)
	// Bump and emit before releasing the shard locks (as RemoveEdge does):
	// once the locks drop, a concurrent remover can find the edge and emit
	// its MutRemoveEdge — subscribers (the WAL, the temporal index) must
	// never observe an edge's removal before its insertion.
	ep := g.bump()
	if g.hooked() {
		g.emit(Mutation{Kind: MutAddEdges, Epoch: ep, Edges: []Edge{
			{ID: id, Src: src, Dst: dst, Label: label, Weight: weight, Timestamp: ts, Props: copyProps(props)},
		}})
	}
	g.unlockEdgeShards(src, dst, id)
	return id, nil
}

// insertEdgeLocked appends an edge into its owning shard's slab and wires it
// into every index. The caller holds the write locks of the source's,
// destination's and edge's shards. props (interned form) is retained, not
// copied — callers pass a private map.
func (g *Graph) insertEdgeLocked(id EdgeID, src, dst VertexID, label symtab.SymID, weight float64, ts int64, props propMap) {
	si := shardIdx(uint64(id))
	es := &g.shards[si]
	seq := seqOf(id)
	slot := es.slab.append(seq, src, dst, label, weight, ts)
	if props != nil {
		c, off := es.slab.chunk(slot)
		c.setProps(off, props)
	}
	es.setIdx(seq, slot)
	ls := es.byLabel[label]
	if ls == nil {
		ls = &labelSet{}
		es.byLabel[label] = ls
	}
	ls.slots = append(ls.slots, slot)
	ls.live++
	es.live++
	ref := makeRef(si, slot)
	ss, ds := g.vshard(src), g.vshard(dst)
	ss.out[src] = append(ss.out[src], ref)
	ds.in[dst] = append(ds.in[dst], ref)
}

// edgeEndpoints resolves an edge's immutable endpoints so the caller can
// take the full shard lock set for a mutation.
func (g *Graph) edgeEndpoints(id EdgeID) (src, dst VertexID, ok bool) {
	es := g.eshard(id)
	es.mu.RLock()
	defer es.mu.RUnlock()
	slot, ok := es.lookup(seqOf(id))
	if !ok {
		return 0, 0, false
	}
	c, off := es.slab.chunk(slot)
	return VertexID(c.src[off]), VertexID(c.dst[off]), true
}

// RemoveEdge deletes an edge. It reports whether the edge existed.
func (g *Graph) RemoveEdge(id EdgeID) bool {
	src, dst, ok := g.edgeEndpoints(id)
	if !ok {
		return false
	}
	g.lockEdgeShards(src, dst, id)
	defer g.unlockEdgeShards(src, dst, id)
	es := g.eshard(id)
	slot, ok := es.lookup(seqOf(id)) // may have raced with another remover
	if !ok {
		return false
	}
	g.dropEdgeLocked(id, src, dst, slot)
	ep := g.bump()
	g.emit(Mutation{Kind: MutRemoveEdge, Epoch: ep, EdgeID: id})
	return true
}

// dropEdgeLocked tombstones an edge's slab slot and unwires it from every
// index and adjacency list. The caller holds the write locks of the source's,
// destination's and edge's shards and has resolved the live slot.
func (g *Graph) dropEdgeLocked(id EdgeID, src, dst VertexID, slot uint32) {
	si := shardIdx(uint64(id))
	es := &g.shards[si]
	c, off := es.slab.chunk(slot)
	label := c.label[off]
	c.dead[off] = true
	if arr := c.props.Load(); arr != nil {
		arr[off] = nil // release the props map; the slot is never reused
	}
	es.clearIdx(seqOf(id))
	es.live--
	if ls := es.byLabel[label]; ls != nil {
		ls.live--
		if ls.live == 0 {
			delete(es.byLabel, label)
		} else if len(ls.slots) >= 2*ls.live+chunkSize {
			es.compactLabelLocked(ls)
		}
	}
	ref := makeRef(si, slot)
	ss, ds := g.vshard(src), g.vshard(dst)
	ss.out[src] = removeRef(ss.out[src], ref)
	ds.in[dst] = removeRef(ds.in[dst], ref)
}

// compactLabelLocked drops tombstoned slots from a label set. Caller holds
// the owning shard's write lock.
func (s *shard) compactLabelLocked(ls *labelSet) {
	kept := ls.slots[:0]
	for _, slot := range ls.slots {
		if c, off := s.slab.chunk(slot); !c.dead[off] {
			kept = append(kept, slot)
		}
	}
	ls.slots = kept
}

// Edge returns a copy of the edge with the given ID.
func (g *Graph) Edge(id EdgeID) (Edge, bool) {
	es := g.eshard(id)
	es.mu.RLock()
	defer es.mu.RUnlock()
	slot, ok := es.lookup(seqOf(id))
	if !ok {
		return Edge{}, false
	}
	c, off := es.slab.chunk(slot)
	return materializeEdge(shardIdx(uint64(id)), c, off), true
}

// materializeEdge builds an exported Edge value from a slab slot. The caller
// holds a lock through which the slot is reachable.
func materializeEdge(si int, c *edgeChunk, off int) Edge {
	return Edge{
		ID:        idOf(si, c.seq[off]),
		Src:       VertexID(c.src[off]),
		Dst:       VertexID(c.dst[off]),
		Label:     symtab.Resolve(c.label[off]),
		Weight:    c.weight[off],
		Timestamp: c.ts[off],
		Props:     exportProps(c.propsAt(off)),
	}
}

// edgeAt materializes the edge an adjacency ref points to. The caller holds
// a shard lock through which ref was read; the target slab's cells are
// consistent under it per the three-shard invariant.
func (g *Graph) edgeAt(ref edgeRef) Edge {
	si := ref.shard()
	c, off := g.shards[si].slab.chunk(ref.slot())
	return materializeEdge(si, c, off)
}

// SetEdgeProp sets one property on an edge. It reports whether the edge
// exists.
func (g *Graph) SetEdgeProp(id EdgeID, key, value string) bool {
	sym := symtab.Intern(key)
	return g.mutateEdge(id, func(c *edgeChunk, off int) {
		p := c.propsAt(off)
		if p == nil {
			c.setProps(off, propMap{sym: value})
			return
		}
		p[sym] = value
	}, Mutation{Kind: MutSetEdgeProp, EdgeID: id, Key: key, Value: value})
}

// SetEdgeWeight updates an edge's weight. It reports whether the edge exists.
func (g *Graph) SetEdgeWeight(id EdgeID, w float64) bool {
	return g.mutateEdge(id, func(c *edgeChunk, off int) { c.weight[off] = w },
		Mutation{Kind: MutSetEdgeWeight, EdgeID: id, Weight: w})
}

// mutateEdge applies fn to an edge's slab cells under every shard lock
// through which the record is reachable, so no concurrent reader can observe
// a half-applied mutation. On success the mutation record m (stamped with the
// new epoch) is delivered to the hook.
func (g *Graph) mutateEdge(id EdgeID, fn func(c *edgeChunk, off int), m Mutation) bool {
	src, dst, ok := g.edgeEndpoints(id)
	if !ok {
		return false
	}
	g.lockEdgeShards(src, dst, id)
	defer g.unlockEdgeShards(src, dst, id)
	es := g.eshard(id)
	slot, ok := es.lookup(seqOf(id))
	if !ok {
		return false
	}
	c, off := es.slab.chunk(slot)
	fn(c, off)
	m.Epoch = g.bump()
	g.emit(m)
	return true
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		n += len(s.vertices)
		s.mu.RUnlock()
	}
	return n
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		n += s.live
		s.mu.RUnlock()
	}
	return n
}

// OutDegree returns the number of outgoing edges of a vertex.
func (g *Graph) OutDegree(id VertexID) int {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.out[id])
}

// InDegree returns the number of incoming edges of a vertex.
func (g *Graph) InDegree(id VertexID) int {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.in[id])
}

// Degree returns in-degree + out-degree.
func (g *Graph) Degree(id VertexID) int {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.out[id]) + len(s.in[id])
}

// OutEdges returns copies of the outgoing edges of a vertex.
func (g *Graph) OutEdges(id VertexID) []Edge {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return g.materializeRefs(s.out[id])
}

// InEdges returns copies of the incoming edges of a vertex.
func (g *Graph) InEdges(id VertexID) []Edge {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return g.materializeRefs(s.in[id])
}

// Edges returns copies of all edges incident to the vertex (both directions).
func (g *Graph) Edges(id VertexID) []Edge {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	all := make([]Edge, 0, len(s.out[id])+len(s.in[id]))
	for _, ref := range s.out[id] {
		all = append(all, g.edgeAt(ref))
	}
	for _, ref := range s.in[id] {
		all = append(all, g.edgeAt(ref))
	}
	return all
}

// Neighbors returns the distinct vertices adjacent to id in either direction,
// in ascending order.
func (g *Graph) Neighbors(id VertexID) []VertexID {
	s := g.vshard(id)
	s.mu.RLock()
	seen := make(map[VertexID]struct{})
	for _, ref := range s.out[id] {
		c, off := g.shards[ref.shard()].slab.chunk(ref.slot())
		seen[VertexID(c.dst[off])] = struct{}{}
	}
	for _, ref := range s.in[id] {
		c, off := g.shards[ref.shard()].slab.chunk(ref.slot())
		seen[VertexID(c.src[off])] = struct{}{}
	}
	s.mu.RUnlock()
	delete(seen, id)
	ids := make([]VertexID, 0, len(seen))
	for v := range seen {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EdgesByLabel returns copies of all edges carrying the given label.
func (g *Graph) EdgesByLabel(label string) []Edge {
	sym, known := symtab.Lookup(label)
	if !known {
		return nil
	}
	var es []Edge
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		if ls := s.byLabel[sym]; ls != nil {
			for _, slot := range ls.slots {
				if c, off := s.slab.chunk(slot); !c.dead[off] {
					es = append(es, materializeEdge(i, c, off))
				}
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	return es
}

// EdgesWithLabel returns the number of live edges carrying the given label,
// summed from the per-stripe label indexes' live counters — no slot is
// visited and no edge is materialized, so the cost is O(shards). It is the
// cardinality source the query planner uses to estimate predicate
// selectivity.
func (g *Graph) EdgesWithLabel(label string) int {
	sym, known := symtab.Lookup(label)
	if !known {
		return 0
	}
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		if ls := s.byLabel[sym]; ls != nil {
			n += ls.live
		}
		s.mu.RUnlock()
	}
	return n
}

// EdgeLabels returns the distinct edge labels present in the graph, sorted.
func (g *Graph) EdgeLabels() []string {
	seen := make(map[symtab.SymID]struct{})
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for sym := range s.byLabel {
			seen[sym] = struct{}{}
		}
		s.mu.RUnlock()
	}
	labels := make([]string, 0, len(seen))
	for sym := range seen {
		labels = append(labels, symtab.Resolve(sym))
	}
	sort.Strings(labels)
	return labels
}

// VertexIDs returns all vertex IDs in ascending order.
func (g *Graph) VertexIDs() []VertexID {
	var ids []VertexID
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for id := range s.vertices {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EdgeIDs returns all edge IDs in ascending order.
func (g *Graph) EdgeIDs() []EdgeID {
	var ids []EdgeID
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for slot := uint32(0); slot < s.slab.len; slot++ {
			if c, off := s.slab.chunk(slot); !c.dead[off] {
				ids = append(ids, idOf(i, c.seq[off]))
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FindEdges returns copies of edges from src to dst with the given label.
// An empty label matches any label.
func (g *Graph) FindEdges(src, dst VertexID, label string) []Edge {
	var sym symtab.SymID
	any := label == ""
	if !any {
		var known bool
		sym, known = symtab.Lookup(label)
		if !known {
			return nil
		}
	}
	s := g.vshard(src)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Edge
	for _, ref := range s.out[src] {
		c, off := g.shards[ref.shard()].slab.chunk(ref.slot())
		if VertexID(c.dst[off]) == dst && (any || c.label[off] == sym) {
			out = append(out, materializeEdge(ref.shard(), c, off))
		}
	}
	return out
}

// ForEachOutEdge calls fn for each outgoing edge of id while fn returns true.
// fn must not mutate the graph.
func (g *Graph) ForEachOutEdge(id VertexID, fn func(Edge) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ref := range s.out[id] {
		if !fn(g.edgeAt(ref)) {
			return
		}
	}
}

// ForEachIncidentEdge calls fn for each edge incident to id — outgoing
// edges first, then incoming, each in insertion order (the same order
// Edges returns) — while fn returns true. fn must not mutate the graph.
func (g *Graph) ForEachIncidentEdge(id VertexID, fn func(Edge) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ref := range s.out[id] {
		if !fn(g.edgeAt(ref)) {
			return
		}
	}
	for _, ref := range s.in[id] {
		if !fn(g.edgeAt(ref)) {
			return
		}
	}
}

// ForEachInEdge calls fn for each incoming edge of id while fn returns true.
// fn must not mutate the graph.
func (g *Graph) ForEachInEdge(id VertexID, fn func(Edge) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, ref := range s.in[id] {
		if !fn(g.edgeAt(ref)) {
			return
		}
	}
}

// materializeRefs copies the edges behind a ref list. Caller holds the shard
// lock the list was read under.
func (g *Graph) materializeRefs(refs []edgeRef) []Edge {
	out := make([]Edge, len(refs))
	for i, ref := range refs {
		out[i] = g.edgeAt(ref)
	}
	return out
}

// removeRef drops one ref from an adjacency list by swap-with-last, the same
// order-destroying removal the pointer-based layout used.
func removeRef(list []edgeRef, ref edgeRef) []edgeRef {
	for i, r := range list {
		if r == ref {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// copyProps clones an exported props map, returning nil when the input is
// nil or empty: prop-less elements carry a nil map at the API boundary, not
// an allocated empty one.
func copyProps(p map[string]string) map[string]string {
	if len(p) == 0 {
		return nil
	}
	cp := make(map[string]string, len(p))
	for k, v := range p {
		cp[k] = v
	}
	return cp
}
