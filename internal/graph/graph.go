// Package graph implements an in-memory directed property graph with
// per-label edge indexes, temporal edges and a Pregel-style bulk-synchronous
// compute engine. It is the substrate NOUS's paper built on Apache Spark
// GraphX; this implementation preserves the same API surface — vertices and
// edges carrying arbitrary properties, neighborhood iteration, and
// message-passing supersteps over hash partitions — at single-process scale.
//
// Storage is partitioned across lock-striped shards so unrelated mutations
// do not contend on one global mutex: a vertex, its adjacency lists and its
// degree counters live in the shard owning the vertex ID, while an edge
// record and its label-index entry live in the shard owning the edge ID.
// Operations spanning several shards (edge insertion touches the source's
// shard, the destination's shard and the edge's shard) acquire the distinct
// shards in ascending index order, which makes multi-shard writers
// deadlock-free.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// VertexID identifies a vertex. IDs are assigned densely by the graph and
// are never reused within one Graph instance.
type VertexID int64

// EdgeID identifies an edge within one Graph instance.
type EdgeID int64

// NilVertex is returned by lookups that find no vertex.
const NilVertex VertexID = -1

// Vertex is a labeled node with arbitrary string properties.
type Vertex struct {
	ID    VertexID
	Label string // entity type, e.g. "Organization"
	Props map[string]string
}

// Edge is a directed, labeled, timestamped edge with a weight and arbitrary
// string properties. Timestamp is seconds since the epoch (0 when the edge is
// not temporal).
type Edge struct {
	ID        EdgeID
	Src, Dst  VertexID
	Label     string // predicate, e.g. "acquired"
	Weight    float64
	Timestamp int64
	Props     map[string]string
}

// numShards is the lock-stripe count. A power of two so ID → shard is a
// mask; 16 stripes keep contention low well past the core counts this
// process-local store targets.
const numShards = 16

// shard is one lock stripe. Vertices (with their adjacency lists) are owned
// by the shard of their VertexID; edge records and the per-label index
// entries are owned by the shard of their EdgeID.
//
// Invariant: an *Edge is reachable from three shards — its own (edges,
// byLabel), its source's (out) and its destination's (in). Any write to an
// edge record or to the lists referencing it holds all three shard locks,
// so a reader holding any one of them observes a consistent record.
type shard struct {
	mu       sync.RWMutex
	vertices map[VertexID]*Vertex
	out      map[VertexID][]*Edge
	in       map[VertexID][]*Edge
	edges    map[EdgeID]*Edge
	byLabel  map[string]map[EdgeID]*Edge // edge label -> edges owned here
}

// Graph is a mutable directed multigraph. All exported methods are safe for
// concurrent use.
type Graph struct {
	shards [numShards]shard

	nextVertex atomic.Int64
	nextEdge   atomic.Int64

	// epoch counts completed mutations. It is bumped after every write
	// finishes, so a derived artifact computed against the epoch observed
	// before the computation started is invalidated by any write that lands
	// during or after it.
	epoch atomic.Uint64

	// hooks is the copy-on-write list of mutation subscribers (see
	// AddMutationHook / SetMutationHook). hookMu serializes list updates;
	// primaryHook tracks the entry SetMutationHook owns.
	hookMu      sync.Mutex
	hooks       atomic.Pointer[[]*hookEntry]
	primaryHook *hookEntry
}

// Epoch returns the graph's monotonic mutation counter. It is read
// lock-free; two equal Epoch values bracket a window in which no mutation
// completed, which callers (see internal/analytics) use to memoize derived
// artifacts such as PageRank.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// bump records one completed mutation and returns the new epoch. Called
// after the write's data landed (for edge writes, while the shard locks are
// still held — any reader tagged with the new epoch that touches the
// written shard blocks until the locks drop and therefore observes the
// write), so no artifact can be tagged with an epoch newer than the state
// it was computed from.
func (g *Graph) bump() uint64 { return g.epoch.Add(1) }

// New returns an empty graph.
func New() *Graph {
	g := &Graph{}
	for i := range g.shards {
		s := &g.shards[i]
		s.vertices = make(map[VertexID]*Vertex)
		s.out = make(map[VertexID][]*Edge)
		s.in = make(map[VertexID][]*Edge)
		s.edges = make(map[EdgeID]*Edge)
		s.byLabel = make(map[string]map[EdgeID]*Edge)
	}
	return g
}

func shardIdx(id uint64) int { return int(id & (numShards - 1)) }

func (g *Graph) vshard(id VertexID) *shard { return &g.shards[shardIdx(uint64(id))] }
func (g *Graph) eshard(id EdgeID) *shard   { return &g.shards[shardIdx(uint64(id))] }

// sorted3 orders three shard indexes ascending.
func sorted3(a, b, c int) (int, int, int) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

// lockEdgeShards write-locks the distinct shards an edge write touches, in
// ascending index order.
func (g *Graph) lockEdgeShards(src, dst VertexID, id EdgeID) {
	a, b, c := sorted3(shardIdx(uint64(src)), shardIdx(uint64(dst)), shardIdx(uint64(id)))
	g.shards[a].mu.Lock()
	if b != a {
		g.shards[b].mu.Lock()
	}
	if c != b {
		g.shards[c].mu.Lock()
	}
}

func (g *Graph) unlockEdgeShards(src, dst VertexID, id EdgeID) {
	a, b, c := sorted3(shardIdx(uint64(src)), shardIdx(uint64(dst)), shardIdx(uint64(id)))
	if c != b {
		g.shards[c].mu.Unlock()
	}
	if b != a {
		g.shards[b].mu.Unlock()
	}
	g.shards[a].mu.Unlock()
}

// AddVertex inserts a vertex with the given label and returns its ID.
func (g *Graph) AddVertex(label string) VertexID {
	return g.AddVertexWithProps(label, nil)
}

// AddVertexWithProps inserts a vertex carrying the given properties.
// The props map is copied. The vertex and its properties become visible
// atomically: no reader can observe the vertex without them.
func (g *Graph) AddVertexWithProps(label string, props map[string]string) VertexID {
	id := VertexID(g.nextVertex.Add(1) - 1)
	s := g.vshard(id)
	s.mu.Lock()
	s.vertices[id] = &Vertex{ID: id, Label: label, Props: copyProps(props)}
	s.mu.Unlock()
	ep := g.bump()
	if g.hooked() {
		g.emit(Mutation{Kind: MutAddVertex, Epoch: ep,
			Vertex: Vertex{ID: id, Label: label, Props: copyProps(props)}})
	}
	return id
}

// SetVertexProp sets one property on a vertex. It reports whether the vertex
// exists.
func (g *Graph) SetVertexProp(id VertexID, key, value string) bool {
	s := g.vshard(id)
	s.mu.Lock()
	v, ok := s.vertices[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if v.Props == nil {
		v.Props = make(map[string]string)
	}
	v.Props[key] = value
	s.mu.Unlock()
	ep := g.bump()
	g.emit(Mutation{Kind: MutSetVertexProp, Epoch: ep, VertexID: id, Key: key, Value: value})
	return true
}

// VertexProp returns a property of a vertex.
func (g *Graph) VertexProp(id VertexID, key string) (string, bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vertices[id]
	if !ok || v.Props == nil {
		return "", false
	}
	val, ok := v.Props[key]
	return val, ok
}

// Vertex returns a copy of the vertex with the given ID.
func (g *Graph) Vertex(id VertexID) (Vertex, bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vertices[id]
	if !ok {
		return Vertex{}, false
	}
	cp := *v
	cp.Props = copyProps(v.Props)
	return cp, true
}

// HasVertex reports whether the vertex exists.
func (g *Graph) HasVertex(id VertexID) bool {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.vertices[id]
	return ok
}

// AddEdge inserts a directed edge and returns its ID. Both endpoints must
// exist.
func (g *Graph) AddEdge(src, dst VertexID, label string) (EdgeID, error) {
	return g.AddEdgeFull(src, dst, label, 1.0, 0, nil)
}

// AddEdgeFull inserts a directed edge with weight, timestamp and properties.
func (g *Graph) AddEdgeFull(src, dst VertexID, label string, weight float64, ts int64, props map[string]string) (EdgeID, error) {
	// Vertices are never removed, so existence checked here holds for the
	// rest of the insertion.
	if !g.HasVertex(src) {
		return 0, fmt.Errorf("graph: add edge %q: source vertex %d does not exist", label, src)
	}
	if !g.HasVertex(dst) {
		return 0, fmt.Errorf("graph: add edge %q: destination vertex %d does not exist", label, dst)
	}
	id := EdgeID(g.nextEdge.Add(1) - 1)
	e := &Edge{ID: id, Src: src, Dst: dst, Label: label, Weight: weight, Timestamp: ts, Props: copyProps(props)}
	g.lockEdgeShards(src, dst, id)
	g.insertEdgeLocked(e)
	// Bump and emit before releasing the shard locks (as RemoveEdge does):
	// once the locks drop, a concurrent remover can find the edge and emit
	// its MutRemoveEdge — subscribers (the WAL, the temporal index) must
	// never observe an edge's removal before its insertion.
	ep := g.bump()
	if g.hooked() {
		g.emit(Mutation{Kind: MutAddEdges, Epoch: ep, Edges: []Edge{
			{ID: id, Src: src, Dst: dst, Label: label, Weight: weight, Timestamp: ts, Props: copyProps(props)},
		}})
	}
	g.unlockEdgeShards(src, dst, id)
	return id, nil
}

// insertEdgeLocked wires an edge into all indexes. The caller holds the
// write locks of the source's, destination's and edge's shards.
func (g *Graph) insertEdgeLocked(e *Edge) {
	es := g.eshard(e.ID)
	es.edges[e.ID] = e
	g.vshard(e.Src).out[e.Src] = append(g.vshard(e.Src).out[e.Src], e)
	g.vshard(e.Dst).in[e.Dst] = append(g.vshard(e.Dst).in[e.Dst], e)
	idx, ok := es.byLabel[e.Label]
	if !ok {
		idx = make(map[EdgeID]*Edge)
		es.byLabel[e.Label] = idx
	}
	idx[e.ID] = e
}

// edgeEndpoints resolves an edge's immutable endpoints so the caller can
// take the full shard lock set for a mutation.
func (g *Graph) edgeEndpoints(id EdgeID) (src, dst VertexID, ok bool) {
	es := g.eshard(id)
	es.mu.RLock()
	defer es.mu.RUnlock()
	e, ok := es.edges[id]
	if !ok {
		return 0, 0, false
	}
	return e.Src, e.Dst, true
}

// RemoveEdge deletes an edge. It reports whether the edge existed.
func (g *Graph) RemoveEdge(id EdgeID) bool {
	src, dst, ok := g.edgeEndpoints(id)
	if !ok {
		return false
	}
	g.lockEdgeShards(src, dst, id)
	defer g.unlockEdgeShards(src, dst, id)
	es := g.eshard(id)
	e, ok := es.edges[id] // may have raced with another remover
	if !ok {
		return false
	}
	delete(es.edges, id)
	ss, ds := g.vshard(e.Src), g.vshard(e.Dst)
	ss.out[e.Src] = removeEdgeFrom(ss.out[e.Src], id)
	ds.in[e.Dst] = removeEdgeFrom(ds.in[e.Dst], id)
	if idx := es.byLabel[e.Label]; idx != nil {
		delete(idx, id)
		if len(idx) == 0 {
			delete(es.byLabel, e.Label)
		}
	}
	ep := g.bump()
	g.emit(Mutation{Kind: MutRemoveEdge, Epoch: ep, EdgeID: id})
	return true
}

// Edge returns a copy of the edge with the given ID.
func (g *Graph) Edge(id EdgeID) (Edge, bool) {
	es := g.eshard(id)
	es.mu.RLock()
	defer es.mu.RUnlock()
	e, ok := es.edges[id]
	if !ok {
		return Edge{}, false
	}
	cp := *e
	cp.Props = copyProps(e.Props)
	return cp, true
}

// SetEdgeProp sets one property on an edge. It reports whether the edge
// exists.
func (g *Graph) SetEdgeProp(id EdgeID, key, value string) bool {
	return g.mutateEdge(id, func(e *Edge) {
		if e.Props == nil {
			e.Props = make(map[string]string)
		}
		e.Props[key] = value
	}, Mutation{Kind: MutSetEdgeProp, EdgeID: id, Key: key, Value: value})
}

// SetEdgeWeight updates an edge's weight. It reports whether the edge exists.
func (g *Graph) SetEdgeWeight(id EdgeID, w float64) bool {
	return g.mutateEdge(id, func(e *Edge) { e.Weight = w },
		Mutation{Kind: MutSetEdgeWeight, EdgeID: id, Weight: w})
}

// mutateEdge applies fn to an edge record under every shard lock through
// which the record is reachable, so no concurrent reader can observe a
// half-applied mutation. On success the mutation record m (stamped with the
// new epoch) is delivered to the hook.
func (g *Graph) mutateEdge(id EdgeID, fn func(*Edge), m Mutation) bool {
	src, dst, ok := g.edgeEndpoints(id)
	if !ok {
		return false
	}
	g.lockEdgeShards(src, dst, id)
	defer g.unlockEdgeShards(src, dst, id)
	e, ok := g.eshard(id).edges[id]
	if !ok {
		return false
	}
	fn(e)
	m.Epoch = g.bump()
	g.emit(m)
	return true
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		n += len(s.vertices)
		s.mu.RUnlock()
	}
	return n
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		n += len(s.edges)
		s.mu.RUnlock()
	}
	return n
}

// OutDegree returns the number of outgoing edges of a vertex.
func (g *Graph) OutDegree(id VertexID) int {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.out[id])
}

// InDegree returns the number of incoming edges of a vertex.
func (g *Graph) InDegree(id VertexID) int {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.in[id])
}

// Degree returns in-degree + out-degree.
func (g *Graph) Degree(id VertexID) int {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.out[id]) + len(s.in[id])
}

// OutEdges returns copies of the outgoing edges of a vertex.
func (g *Graph) OutEdges(id VertexID) []Edge {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return copyEdges(s.out[id])
}

// InEdges returns copies of the incoming edges of a vertex.
func (g *Graph) InEdges(id VertexID) []Edge {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return copyEdges(s.in[id])
}

// Edges returns copies of all edges incident to the vertex (both directions).
func (g *Graph) Edges(id VertexID) []Edge {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	all := make([]Edge, 0, len(s.out[id])+len(s.in[id]))
	for _, e := range s.out[id] {
		all = append(all, copyEdge(e))
	}
	for _, e := range s.in[id] {
		all = append(all, copyEdge(e))
	}
	return all
}

// Neighbors returns the distinct vertices adjacent to id in either direction,
// in ascending order.
func (g *Graph) Neighbors(id VertexID) []VertexID {
	s := g.vshard(id)
	s.mu.RLock()
	seen := make(map[VertexID]struct{})
	for _, e := range s.out[id] {
		seen[e.Dst] = struct{}{}
	}
	for _, e := range s.in[id] {
		seen[e.Src] = struct{}{}
	}
	s.mu.RUnlock()
	delete(seen, id)
	ids := make([]VertexID, 0, len(seen))
	for v := range seen {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EdgesByLabel returns copies of all edges carrying the given label.
func (g *Graph) EdgesByLabel(label string) []Edge {
	var es []Edge
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for _, e := range s.byLabel[label] {
			es = append(es, copyEdge(e))
		}
		s.mu.RUnlock()
	}
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	return es
}

// EdgeLabels returns the distinct edge labels present in the graph, sorted.
func (g *Graph) EdgeLabels() []string {
	seen := make(map[string]struct{})
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for l := range s.byLabel {
			seen[l] = struct{}{}
		}
		s.mu.RUnlock()
	}
	labels := make([]string, 0, len(seen))
	for l := range seen {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// VertexIDs returns all vertex IDs in ascending order.
func (g *Graph) VertexIDs() []VertexID {
	var ids []VertexID
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for id := range s.vertices {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// EdgeIDs returns all edge IDs in ascending order.
func (g *Graph) EdgeIDs() []EdgeID {
	var ids []EdgeID
	for i := range g.shards {
		s := &g.shards[i]
		s.mu.RLock()
		for id := range s.edges {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// FindEdges returns copies of edges from src to dst with the given label.
// An empty label matches any label.
func (g *Graph) FindEdges(src, dst VertexID, label string) []Edge {
	s := g.vshard(src)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Edge
	for _, e := range s.out[src] {
		if e.Dst == dst && (label == "" || e.Label == label) {
			out = append(out, copyEdge(e))
		}
	}
	return out
}

// ForEachOutEdge calls fn for each outgoing edge of id while fn returns true.
// fn must not mutate the graph.
func (g *Graph) ForEachOutEdge(id VertexID, fn func(Edge) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.out[id] {
		if !fn(copyEdge(e)) {
			return
		}
	}
}

// ForEachIncidentEdge calls fn for each edge incident to id — outgoing
// edges first, then incoming, each in insertion order (the same order
// Edges returns) — while fn returns true. fn must not mutate the graph.
func (g *Graph) ForEachIncidentEdge(id VertexID, fn func(Edge) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.out[id] {
		if !fn(copyEdge(e)) {
			return
		}
	}
	for _, e := range s.in[id] {
		if !fn(copyEdge(e)) {
			return
		}
	}
}

// ForEachInEdge calls fn for each incoming edge of id while fn returns true.
// fn must not mutate the graph.
func (g *Graph) ForEachInEdge(id VertexID, fn func(Edge) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.in[id] {
		if !fn(copyEdge(e)) {
			return
		}
	}
}

func removeEdgeFrom(list []*Edge, id EdgeID) []*Edge {
	for i, e := range list {
		if e.ID == id {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

func copyEdges(list []*Edge) []Edge {
	out := make([]Edge, len(list))
	for i, e := range list {
		out[i] = copyEdge(e)
	}
	return out
}

// copyEdge snapshots an edge record, including its props map, so callers
// can use the copy outside the shard lock.
func copyEdge(e *Edge) Edge {
	cp := *e
	cp.Props = copyProps(e.Props)
	return cp
}

func copyProps(p map[string]string) map[string]string {
	if p == nil {
		return nil
	}
	cp := make(map[string]string, len(p))
	for k, v := range p {
		cp[k] = v
	}
	return cp
}
