package graph

import (
	"sync"
	"testing"
)

// TestEpochBumpsOnEveryMutation verifies each write kind advances the
// mutation epoch exactly once, and reads leave it untouched.
func TestEpochBumpsOnEveryMutation(t *testing.T) {
	g := New()
	if g.Epoch() != 0 {
		t.Fatalf("fresh graph epoch = %d", g.Epoch())
	}

	step := func(name string, fn func()) {
		t.Helper()
		before := g.Epoch()
		fn()
		if got := g.Epoch(); got != before+1 {
			t.Fatalf("%s: epoch %d -> %d, want +1", name, before, got)
		}
	}

	var a, b VertexID
	var e EdgeID
	step("AddVertex", func() { a = g.AddVertex("X") })
	step("AddVertexWithProps", func() { b = g.AddVertexWithProps("X", map[string]string{"k": "v"}) })
	step("SetVertexProp", func() { g.SetVertexProp(a, "k", "v") })
	step("AddEdge", func() { e, _ = g.AddEdge(a, b, "r") })
	step("SetEdgeProp", func() { g.SetEdgeProp(e, "k", "v") })
	step("SetEdgeWeight", func() { g.SetEdgeWeight(e, 0.5) })
	step("AddEdges", func() {
		if _, err := g.AddEdges([]EdgeSpec{{Src: a, Dst: b, Label: "r2", Weight: 1}}); err != nil {
			t.Fatal(err)
		}
	})
	step("RemoveEdge", func() { g.RemoveEdge(e) })

	// Reads must not move the epoch.
	before := g.Epoch()
	g.Vertex(a)
	g.Edges(a)
	g.Neighbors(a)
	g.NumVertices()
	g.EdgesByLabel("r2")
	PageRank(g, 0.85, 5)
	if got := g.Epoch(); got != before {
		t.Fatalf("reads moved epoch %d -> %d", before, got)
	}

	// Failed mutations must not move the epoch either.
	if g.SetVertexProp(9999, "k", "v") {
		t.Fatal("SetVertexProp on missing vertex succeeded")
	}
	if g.RemoveEdge(9999) {
		t.Fatal("RemoveEdge on missing edge succeeded")
	}
	if _, err := g.AddEdge(a, 9999, "r"); err == nil {
		t.Fatal("AddEdge to missing vertex succeeded")
	}
	if got := g.Epoch(); got != before {
		t.Fatalf("failed mutations moved epoch %d -> %d", before, got)
	}
}

// TestEpochConcurrentReaders checks Epoch is readable lock-free while
// writers mutate, and ends at the exact mutation count.
func TestEpochConcurrentReaders(t *testing.T) {
	g := New()
	root := g.AddVertex("X")
	const writers, perWriter = 4, 100
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				now := g.Epoch()
				if now < last {
					t.Error("epoch went backwards")
					return
				}
				last = now
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				v := g.AddVertex("Y")
				if _, err := g.AddEdge(root, v, "r"); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	want := uint64(1 + writers*perWriter*2) // root + per loop: vertex + edge
	if got := g.Epoch(); got != want {
		t.Fatalf("final epoch = %d, want %d", got, want)
	}
}
