package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pregel implements a bulk-synchronous-parallel vertex-program engine in the
// style of GraphX's Pregel operator. Vertices are hash-partitioned across
// worker goroutines; each superstep delivers the messages produced in the
// previous superstep, runs the vertex program on every active vertex, and
// halts when no messages remain or MaxSupersteps is reached.
//
// M is the message type; S is the per-vertex state type.
type Pregel[M, S any] struct {
	// Init returns the initial state of a vertex.
	Init func(v Vertex) S
	// Compute consumes the vertex's inbound messages and current state and
	// returns the new state. It runs once per active vertex per superstep
	// (every vertex in superstep 0, or every superstep when AllActive is
	// set). Messages for the next superstep are sent through ctx.
	Compute func(ctx *PregelContext[M], v Vertex, state S, msgs []M) S
	// Combine optionally merges two messages addressed to the same vertex
	// (GraphX's mergeMsg). May be nil, in which case messages accumulate.
	Combine func(a, b M) M
	// MaxSupersteps bounds execution; <=0 means 64.
	MaxSupersteps int
	// Workers is the number of partitions; <=0 means GOMAXPROCS.
	Workers int
	// AllActive runs Compute on every vertex each superstep, regardless of
	// whether it received messages.
	AllActive bool
}

// PregelContext lets a vertex program send messages and inspect the
// superstep index.
type PregelContext[M any] struct {
	Superstep int
	mu        *sync.Mutex
	outbox    map[VertexID][]M
	combine   func(a, b M) M
}

// Send delivers a message to dst at the next superstep.
func (c *PregelContext[M]) Send(dst VertexID, m M) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.combine != nil {
		if cur, ok := c.outbox[dst]; ok && len(cur) == 1 {
			cur[0] = c.combine(cur[0], m)
			return
		}
	}
	c.outbox[dst] = append(c.outbox[dst], m)
}

// Run executes the vertex program over g and returns the final state of
// every vertex.
func (p *Pregel[M, S]) Run(g *Graph) map[VertexID]S {
	maxSteps := p.MaxSupersteps
	if maxSteps <= 0 {
		maxSteps = 64
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ids := g.VertexIDs()
	states := make(map[VertexID]S, len(ids))
	for _, id := range ids {
		v, _ := g.Vertex(id)
		states[id] = p.Init(v)
	}

	// Hash-partition vertices across workers, mirroring GraphX's
	// partition-parallel execution.
	parts := make([][]VertexID, workers)
	for _, id := range ids {
		w := int(uint64(id) % uint64(workers))
		parts[w] = append(parts[w], id)
	}

	var stateMu sync.Mutex
	inbox := make(map[VertexID][]M)
	for step := 0; step < maxSteps; step++ {
		outMu := &sync.Mutex{}
		outbox := make(map[VertexID][]M)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			part := parts[w]
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := &PregelContext[M]{Superstep: step, mu: outMu, outbox: outbox, combine: p.Combine}
				for _, id := range part {
					msgs := inbox[id]
					if step > 0 && len(msgs) == 0 && !p.AllActive {
						continue // vertex halted
					}
					v, ok := g.Vertex(id)
					if !ok {
						continue
					}
					stateMu.Lock()
					cur := states[id]
					stateMu.Unlock()
					next := p.Compute(ctx, v, cur, msgs)
					stateMu.Lock()
					states[id] = next
					stateMu.Unlock()
				}
			}()
		}
		wg.Wait()
		if len(outbox) == 0 && !p.AllActive {
			break
		}
		inbox = outbox
	}
	return states
}

// PageRank computes PageRank over the directed graph with the given damping
// factor and iteration count. Each iteration is one bulk-synchronous
// superstep, the same schedule GraphX's staticPageRank uses, executed as a
// parallel columnar scan over the edge slabs — one worker per stripe, no
// per-edge materialization. Dangling mass is redistributed uniformly, so the
// returned scores sum to ~1.
func PageRank(g *Graph, damping float64, iters int) map[VertexID]float64 {
	return PageRankFiltered(g, damping, iters, nil)
}

// PageRankFiltered computes PageRank over the subgraph induced by the edges
// for which keep returns true (a nil keep means every edge, which is exactly
// PageRank). keep receives a slab view valid only for the duration of the
// call. Vertices are unchanged — a vertex whose outgoing edges are all
// filtered out contributes dangling mass like any sink. This is the substrate
// of time-windowed importance: internal/analytics passes a window-membership
// predicate and memoizes the result per (epoch, window).
//
// The kept out-degrees are computed once per call, so the iterations see one
// consistent edge filter; the per-iteration scans remain best-effort under
// concurrent mutation, as before.
func PageRankFiltered(g *Graph, damping float64, iters int, keep func(*EdgeScan) bool) map[VertexID]float64 {
	n := g.NumVertices()
	if n == 0 {
		return map[VertexID]float64{}
	}
	base := (1 - damping) / float64(n)
	ids := g.VertexIDs()
	outdeg := countKeptOutEdges(g, keep)
	ranks := make(map[VertexID]float64, n)
	for _, id := range ids {
		ranks[id] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		contrib := gatherContributions(g, ranks, outdeg, keep)
		var dangling float64
		for _, id := range ids {
			if outdeg[id] == 0 {
				dangling += ranks[id]
			}
		}
		next := make(map[VertexID]float64, n)
		for _, id := range ids {
			next[id] = base + damping*contrib[id] + damping*dangling/float64(n)
		}
		ranks = next
	}
	return ranks
}

// forEachShardParallel runs f once per stripe index, fanning stripes out
// across up to GOMAXPROCS workers.
func forEachShardParallel(f func(si int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > numShards {
		workers = numShards
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				si := int(next.Add(1)) - 1
				if si >= numShards {
					return
				}
				f(si)
			}
		}()
	}
	wg.Wait()
}

// countKeptOutEdges counts each vertex's outgoing edges passing keep with one
// parallel pass over the edge slabs.
func countKeptOutEdges(g *Graph, keep func(*EdgeScan) bool) map[VertexID]float64 {
	var mu sync.Mutex
	outdeg := make(map[VertexID]float64)
	forEachShardParallel(func(si int) {
		local := make(map[VertexID]float64)
		g.scanShard(si, func(e *EdgeScan) bool {
			if keep == nil || keep(e) {
				local[e.Src]++
			}
			return true
		})
		mu.Lock()
		for k, v := range local {
			outdeg[k] += v
		}
		mu.Unlock()
	})
	return outdeg
}

// gatherContributions computes, for every vertex, the sum of rank shares sent
// to it by its in-neighbors (restricted to edges passing keep when keep is
// non-nil) with one parallel columnar pass: each worker scans whole stripes
// sequentially and accumulates into a local map, merged under one mutex.
func gatherContributions(g *Graph, ranks, outdeg map[VertexID]float64, keep func(*EdgeScan) bool) map[VertexID]float64 {
	var mu sync.Mutex
	contrib := make(map[VertexID]float64, len(ranks))
	forEachShardParallel(func(si int) {
		local := make(map[VertexID]float64)
		g.scanShard(si, func(e *EdgeScan) bool {
			if keep == nil || keep(e) {
				// An edge inserted after the out-degree pass has outdeg 0;
				// skip it rather than divide by zero.
				if d := outdeg[e.Src]; d > 0 {
					local[e.Dst] += ranks[e.Src] / d
				}
			}
			return true
		})
		mu.Lock()
		for k, v := range local {
			contrib[k] += v
		}
		mu.Unlock()
	})
	return contrib
}

// ConnectedComponents labels every vertex with the smallest vertex ID
// reachable from it treating edges as undirected, via Pregel label
// propagation.
func ConnectedComponents(g *Graph) map[VertexID]VertexID {
	p := &Pregel[VertexID, VertexID]{
		MaxSupersteps: 1 + g.NumVertices(),
		Init:          func(v Vertex) VertexID { return v.ID },
		Combine: func(a, b VertexID) VertexID {
			if a < b {
				return a
			}
			return b
		},
		Compute: func(ctx *PregelContext[VertexID], v Vertex, label VertexID, msgs []VertexID) VertexID {
			best := label
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			if ctx.Superstep == 0 || best < label {
				for _, nb := range g.Neighbors(v.ID) {
					ctx.Send(nb, best)
				}
			}
			return best
		},
	}
	return p.Run(g)
}

// SSSP computes single-source shortest hop counts from src treating edges as
// undirected (BFS). Unreachable vertices are absent from the result.
func SSSP(g *Graph, src VertexID) map[VertexID]int {
	if !g.HasVertex(src) {
		return map[VertexID]int{}
	}
	dist := map[VertexID]int{src: 0}
	frontier := []VertexID{src}
	for len(frontier) > 0 {
		var next []VertexID
		for _, u := range frontier {
			for _, nb := range g.Neighbors(u) {
				if _, seen := dist[nb]; !seen {
					dist[nb] = dist[u] + 1
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return dist
}
