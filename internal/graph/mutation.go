package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nous/internal/graph/symtab"
)

// MutationKind names the write operations a Graph can perform. Every exported
// mutator maps onto exactly one kind, so a subscriber that records mutations
// (see internal/persist's write-ahead log) can replay them and reconstruct the
// graph byte for byte.
type MutationKind uint8

// Mutation kinds. Values are part of the on-disk WAL format — append new
// kinds, never renumber.
const (
	MutAddVertex     MutationKind = 1 // one vertex inserted (Vertex)
	MutSetVertexProp MutationKind = 2 // one vertex property set (VertexID, Key, Value)
	MutAddEdges      MutationKind = 3 // a batch of edges inserted (Edges)
	MutRemoveEdge    MutationKind = 4 // one edge removed (EdgeID)
	MutSetEdgeProp   MutationKind = 5 // one edge property set (EdgeID, Key, Value)
	MutSetEdgeWeight MutationKind = 6 // one edge weight updated (EdgeID, Weight)
)

// Mutation describes one completed graph write. Only the fields relevant to
// Kind are populated; Vertex.Props and Edges[i].Props are private copies the
// subscriber may retain.
type Mutation struct {
	Kind MutationKind
	// Epoch is the graph's mutation epoch after this write. Concurrent
	// writers may deliver mutations out of epoch order; epochs are unique
	// per mutation, so a subscriber can still totally order what it saw.
	Epoch uint64

	Vertex   Vertex   // MutAddVertex
	Edges    []Edge   // MutAddEdges (a single AddEdge logs a batch of one)
	VertexID VertexID // MutSetVertexProp
	EdgeID   EdgeID   // MutRemoveEdge, MutSetEdgeProp, MutSetEdgeWeight
	Key      string   // MutSetVertexProp, MutSetEdgeProp
	Value    string   // MutSetVertexProp, MutSetEdgeProp
	Weight   float64  // MutSetEdgeWeight
}

// MutationHook receives every completed mutation. It is invoked synchronously
// after the write landed and its epoch bump completed. Edge mutations (add,
// remove, prop/weight updates) deliver while the write's shard locks are
// still held, which guarantees subscribers observe each edge's lifecycle in
// order (an insertion is always delivered before that edge's removal);
// vertex mutations deliver after the locks drop. That ordering is
// load-bearing: without it a WAL could log remove-before-add for one edge
// and resurrect it on replay. The price is that slow hook work stalls the
// written shards, so a hook must not call back into the graph — not even
// read methods, which would self-deadlock on the held shard locks — and
// should do no more than hand the record off (the WAL's group-commit buffer,
// the time index's per-stripe insert).
type MutationHook func(Mutation)

// hookEntry wraps one subscriber so it has an identity (func values are not
// comparable) and can be removed individually.
type hookEntry struct{ fn MutationHook }

// AddMutationHook registers an additional mutation subscriber and returns a
// function that removes it. Hooks are invoked in registration order.
// Registering is safe while readers run, but the caller must ensure no writer
// is mid-mutation (install before ingestion starts — mutations in flight
// during the swap may be delivered to either hook set).
func (g *Graph) AddMutationHook(h MutationHook) (remove func()) {
	e := &hookEntry{fn: h}
	g.hookMu.Lock()
	g.addHookLocked(e)
	g.hookMu.Unlock()
	return func() {
		g.hookMu.Lock()
		g.removeHookLocked(e)
		g.hookMu.Unlock()
	}
}

// SetMutationHook installs (or, with nil, removes) the primary mutation
// subscriber — the slot internal/persist's write-ahead log owns. It replaces
// only the hook previously installed through SetMutationHook; subscribers
// added via AddMutationHook are unaffected. The same in-flight caveat as
// AddMutationHook applies.
func (g *Graph) SetMutationHook(h MutationHook) {
	g.hookMu.Lock()
	defer g.hookMu.Unlock()
	if g.primaryHook != nil {
		g.removeHookLocked(g.primaryHook)
		g.primaryHook = nil
	}
	if h != nil {
		g.primaryHook = &hookEntry{fn: h}
		g.addHookLocked(g.primaryHook)
	}
}

// addHookLocked/removeHookLocked maintain the copy-on-write hook list; the
// caller holds hookMu. Readers (emit, hooked) load the slice atomically and
// never see a partially-updated list.
func (g *Graph) addHookLocked(e *hookEntry) {
	old := g.hooks.Load()
	var next []*hookEntry
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, e)
	g.hooks.Store(&next)
}

func (g *Graph) removeHookLocked(e *hookEntry) {
	old := g.hooks.Load()
	if old == nil {
		return
	}
	next := make([]*hookEntry, 0, len(*old))
	for _, cur := range *old {
		if cur != e {
			next = append(next, cur)
		}
	}
	g.hooks.Store(&next)
}

// hooked reports whether any mutation subscriber is installed, letting
// mutators skip building Mutation records (and their defensive copies) when
// nobody listens.
func (g *Graph) hooked() bool {
	hs := g.hooks.Load()
	return hs != nil && len(*hs) > 0
}

// emit delivers one mutation to every installed hook, in registration order.
func (g *Graph) emit(m Mutation) {
	if hs := g.hooks.Load(); hs != nil {
		for _, e := range *hs {
			e.fn(m)
		}
	}
}

// --- Restore API -----------------------------------------------------------
//
// The methods below rebuild a graph from persisted state (snapshot sections
// and WAL records). They accept explicit IDs, never bump the epoch and never
// fire the mutation hook: restoring is not a mutation, it is re-establishing
// state that was already logged. They are safe for concurrent use, so a
// loader can fan restore work out across shards.

// RestoreVertex inserts (or overwrites) a vertex with an explicit ID and
// advances the vertex ID allocator past it. Overwriting is what makes WAL
// replay idempotent: re-applying an AddVertex record on top of a snapshot
// that already contains the vertex converges, because every later property
// write is also re-applied from the log.
func (g *Graph) RestoreVertex(v Vertex) {
	rec := vertexRec{label: symtab.Intern(v.Label), props: internProps(v.Props)}
	s := g.vshard(v.ID)
	s.mu.Lock()
	s.vertices[v.ID] = rec
	s.mu.Unlock()
	advancePast(&g.nextVertex, int64(v.ID))
}

// RestoreVertices bulk-loads vertices, grouping them by owning shard so each
// shard lock is taken once per group instead of once per vertex. Semantics
// per vertex match RestoreVertex.
func (g *Graph) RestoreVertices(vs []Vertex) {
	var groups [numShards][]int
	maxID := int64(-1)
	for i := range vs {
		si := shardIdx(uint64(vs[i].ID))
		groups[si] = append(groups[si], i)
		if int64(vs[i].ID) > maxID {
			maxID = int64(vs[i].ID)
		}
	}
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		// Interning may grow the symbol table; do it outside the shard lock.
		recs := make([]vertexRec, len(idxs))
		for j, i := range idxs {
			recs[j] = vertexRec{label: symtab.Intern(vs[i].Label), props: internProps(vs[i].Props)}
		}
		s := &g.shards[si]
		s.mu.Lock()
		for j, i := range idxs {
			s.vertices[vs[i].ID] = recs[j]
		}
		s.mu.Unlock()
	}
	if maxID >= 0 {
		advancePast(&g.nextVertex, maxID)
	}
}

// RestoreEdge inserts an edge with an explicit ID and advances the edge ID
// allocator past it. An edge whose ID already exists is skipped (replay
// idempotence); an edge whose endpoints are missing is an error, because a
// well-formed snapshot + log always restores endpoints first.
func (g *Graph) RestoreEdge(e Edge) error {
	if !edgeFits(&e) {
		return fmt.Errorf("graph: restore edge %d: ID or endpoints exceed storable range", e.ID)
	}
	if !g.HasVertex(e.Src) {
		return fmt.Errorf("graph: restore edge %d: source vertex %d does not exist", e.ID, e.Src)
	}
	if !g.HasVertex(e.Dst) {
		return fmt.Errorf("graph: restore edge %d: destination vertex %d does not exist", e.ID, e.Dst)
	}
	sym := symtab.Intern(e.Label)
	ip := internProps(e.Props)
	g.lockEdgeShards(e.Src, e.Dst, e.ID)
	es := g.eshard(e.ID)
	if _, ok := es.lookup(seqOf(e.ID)); ok {
		g.unlockEdgeShards(e.Src, e.Dst, e.ID)
		return nil
	}
	g.insertEdgeLocked(e.ID, e.Src, e.Dst, sym, e.Weight, e.Timestamp, ip)
	g.unlockEdgeShards(e.Src, e.Dst, e.ID)
	advancePast(&g.nextEdge, int64(e.ID))
	return nil
}

// RestoreEdges bulk-loads a snapshot's edges, rebuilding the columnar slabs
// in parallel per stripe. byOwner must be indexed by owning shard (ShardCount
// groups, edge ID mod ShardCount == group index), the per-shard layout
// snapshots already use. Endpoints must all exist (vertices restore first).
//
// Unlike RestoreEdge, the bulk load is not atomic per edge: it must not run
// concurrently with mutators or with another RestoreEdges call (recovery
// loads before the graph starts serving writes, which is the only caller).
//
// The load runs in two phases so no worker ever holds two shard locks:
// phase one appends each shard's edges into its slab and label index under
// that shard's lock alone; phase two distributes adjacency refs, each worker
// owning one target shard and appending its refs sorted by edge ID — a
// deterministic order regardless of worker scheduling. Edges whose ID is
// already present are skipped (idempotence), matching RestoreEdge.
func (g *Graph) RestoreEdges(byOwner [][]Edge) error {
	if len(byOwner) != numShards {
		return fmt.Errorf("graph: restore edges: got %d shard groups, want %d", len(byOwner), numShards)
	}
	// Validate ownership, ranges and endpoints before touching any shard:
	// workers below hold write locks and must not block on reads.
	maxID := int64(-1)
	for si, es := range byOwner {
		for i := range es {
			e := &es[i]
			if shardIdx(uint64(e.ID)) != si {
				return fmt.Errorf("graph: restore edges: edge %d in shard group %d", e.ID, si)
			}
			if !edgeFits(e) {
				return fmt.Errorf("graph: restore edge %d: ID or endpoints exceed storable range", e.ID)
			}
			if !g.HasVertex(e.Src) {
				return fmt.Errorf("graph: restore edge %d: source vertex %d does not exist", e.ID, e.Src)
			}
			if !g.HasVertex(e.Dst) {
				return fmt.Errorf("graph: restore edge %d: destination vertex %d does not exist", e.ID, e.Dst)
			}
			if int64(e.ID) > maxID {
				maxID = int64(e.ID)
			}
		}
	}

	// Phase one: per owning shard, append slab slots + label-index entries.
	// Each inserted edge's ref is collected for phase two.
	type pendingRef struct {
		id  EdgeID
		ref edgeRef
	}
	inserted := make([][]pendingRef, numShards)
	var wg sync.WaitGroup
	for si := 0; si < numShards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			es := byOwner[si]
			if len(es) == 0 {
				return
			}
			syms := make([]symtab.SymID, len(es))
			props := make([]propMap, len(es))
			for i := range es {
				syms[i] = symtab.Intern(es[i].Label)
				props[i] = internProps(es[i].Props)
			}
			refs := make([]pendingRef, 0, len(es))
			s := &g.shards[si]
			s.mu.Lock()
			for i := range es {
				e := &es[i]
				seq := seqOf(e.ID)
				if _, ok := s.lookup(seq); ok {
					continue // already present: replay idempotence
				}
				slot := s.slab.append(seq, e.Src, e.Dst, syms[i], e.Weight, e.Timestamp)
				if props[i] != nil {
					c, off := s.slab.chunk(slot)
					c.setProps(off, props[i])
				}
				s.setIdx(seq, slot)
				ls := s.byLabel[syms[i]]
				if ls == nil {
					ls = &labelSet{}
					s.byLabel[syms[i]] = ls
				}
				ls.slots = append(ls.slots, slot)
				ls.live++
				s.live++
				refs = append(refs, pendingRef{id: e.ID, ref: makeRef(si, slot)})
			}
			s.mu.Unlock()
			inserted[si] = refs
		}(si)
	}
	wg.Wait()

	// Phase two: distribute adjacency refs. Worker t owns target shard t and
	// appends every inserted edge's out-ref (source owned by t) and in-ref
	// (destination owned by t), sorted by edge ID so adjacency order is
	// deterministic and matches ascending-ID insertion.
	for t := 0; t < numShards; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			type adj struct {
				id   EdgeID
				v    VertexID
				ref  edgeRef
				isIn bool
			}
			var mine []adj
			for si := range inserted {
				for _, pr := range inserted[si] {
					c, off := g.shards[si].slab.chunk(pr.ref.slot())
					src, dst := VertexID(c.src[off]), VertexID(c.dst[off])
					if shardIdx(uint64(src)) == t {
						mine = append(mine, adj{id: pr.id, v: src, ref: pr.ref})
					}
					if shardIdx(uint64(dst)) == t {
						mine = append(mine, adj{id: pr.id, v: dst, ref: pr.ref, isIn: true})
					}
				}
			}
			if len(mine) == 0 {
				return
			}
			sort.Slice(mine, func(i, j int) bool { return mine[i].id < mine[j].id })
			s := &g.shards[t]
			s.mu.Lock()
			for _, a := range mine {
				if a.isIn {
					s.in[a.v] = append(s.in[a.v], a.ref)
				} else {
					s.out[a.v] = append(s.out[a.v], a.ref)
				}
			}
			s.mu.Unlock()
		}(t)
	}
	wg.Wait()
	if maxID >= 0 {
		advancePast(&g.nextEdge, maxID)
	}
	return nil
}

// SetEpoch overwrites the mutation epoch. Called once at the end of recovery
// with the epoch the persisted state had reached.
func (g *Graph) SetEpoch(e uint64) { g.epoch.Store(e) }

// AdvanceIDs moves the ID allocators forward to at least the given values
// (never backward). A snapshot persists the allocators explicitly because a
// crashed batch insert may have reserved IDs it never wrote.
func (g *Graph) AdvanceIDs(nextVertex, nextEdge int64) {
	advancePast(&g.nextVertex, nextVertex-1)
	advancePast(&g.nextEdge, nextEdge-1)
}

// advancePast raises ctr to id+1 unless it is already greater.
func advancePast(ctr *atomic.Int64, id int64) {
	for {
		cur := ctr.Load()
		if id < cur {
			return
		}
		if ctr.CompareAndSwap(cur, id+1) {
			return
		}
	}
}

// --- Snapshot API ----------------------------------------------------------

// ShardCount returns the number of lock stripes. Snapshot files encode each
// stripe's contents independently so encoding and decoding parallelize.
func ShardCount() int { return numShards }

// GraphSnapshot is a point-in-time copy of a graph: per-shard owned vertices
// and edges (sorted by ID for deterministic encoding), the epoch and the ID
// allocators, all captured atomically with respect to mutations.
type GraphSnapshot struct {
	Vertices   [][]Vertex // [shard][...]: vertices owned by that shard
	Edges      [][]Edge   // [shard][...]: edges owned by that shard
	Epoch      uint64
	NextVertex int64
	NextEdge   int64
}

// Snapshot copies the whole graph under a full read barrier: every shard's
// read lock is held simultaneously (acquired in ascending order, the same
// total order writers use), so the copy is a consistent cut — no edge can
// reference a vertex the copy lacks. Writers block for the duration of the
// memory copy only; encoding happens after the locks are released.
func (g *Graph) Snapshot() *GraphSnapshot {
	for i := range g.shards {
		g.shards[i].mu.RLock()
	}
	snap := &GraphSnapshot{
		Vertices:   make([][]Vertex, numShards),
		Edges:      make([][]Edge, numShards),
		Epoch:      g.epoch.Load(),
		NextVertex: g.nextVertex.Load(),
		NextEdge:   g.nextEdge.Load(),
	}
	for i := range g.shards {
		s := &g.shards[i]
		vs := make([]Vertex, 0, len(s.vertices))
		for id, rec := range s.vertices {
			vs = append(vs, Vertex{ID: id, Label: symtab.Resolve(rec.label), Props: exportProps(rec.props)})
		}
		es := make([]Edge, 0, s.live)
		for slot := uint32(0); slot < s.slab.len; slot++ {
			if c, off := s.slab.chunk(slot); !c.dead[off] {
				es = append(es, materializeEdge(i, c, off))
			}
		}
		snap.Vertices[i] = vs
		snap.Edges[i] = es
	}
	for i := numShards - 1; i >= 0; i-- {
		g.shards[i].mu.RUnlock()
	}
	for i := range snap.Vertices {
		vs, es := snap.Vertices[i], snap.Edges[i]
		sort.Slice(vs, func(a, b int) bool { return vs[a].ID < vs[b].ID })
		sort.Slice(es, func(a, b int) bool { return es[a].ID < es[b].ID })
	}
	return snap
}
