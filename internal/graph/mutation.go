package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// MutationKind names the write operations a Graph can perform. Every exported
// mutator maps onto exactly one kind, so a subscriber that records mutations
// (see internal/persist's write-ahead log) can replay them and reconstruct the
// graph byte for byte.
type MutationKind uint8

// Mutation kinds. Values are part of the on-disk WAL format — append new
// kinds, never renumber.
const (
	MutAddVertex     MutationKind = 1 // one vertex inserted (Vertex)
	MutSetVertexProp MutationKind = 2 // one vertex property set (VertexID, Key, Value)
	MutAddEdges      MutationKind = 3 // a batch of edges inserted (Edges)
	MutRemoveEdge    MutationKind = 4 // one edge removed (EdgeID)
	MutSetEdgeProp   MutationKind = 5 // one edge property set (EdgeID, Key, Value)
	MutSetEdgeWeight MutationKind = 6 // one edge weight updated (EdgeID, Weight)
)

// Mutation describes one completed graph write. Only the fields relevant to
// Kind are populated; Vertex.Props and Edges[i].Props are private copies the
// subscriber may retain.
type Mutation struct {
	Kind MutationKind
	// Epoch is the graph's mutation epoch after this write. Concurrent
	// writers may deliver mutations out of epoch order; epochs are unique
	// per mutation, so a subscriber can still totally order what it saw.
	Epoch uint64

	Vertex   Vertex   // MutAddVertex
	Edges    []Edge   // MutAddEdges (a single AddEdge logs a batch of one)
	VertexID VertexID // MutSetVertexProp
	EdgeID   EdgeID   // MutRemoveEdge, MutSetEdgeProp, MutSetEdgeWeight
	Key      string   // MutSetVertexProp, MutSetEdgeProp
	Value    string   // MutSetVertexProp, MutSetEdgeProp
	Weight   float64  // MutSetEdgeWeight
}

// MutationHook receives every completed mutation. It is invoked synchronously
// after the write landed and its epoch bump completed. Edge mutations (add,
// remove, prop/weight updates) deliver while the write's shard locks are
// still held, which guarantees subscribers observe each edge's lifecycle in
// order (an insertion is always delivered before that edge's removal);
// vertex mutations deliver after the locks drop. That ordering is
// load-bearing: without it a WAL could log remove-before-add for one edge
// and resurrect it on replay. The price is that slow hook work stalls the
// written shards, so a hook must not call back into the graph — not even
// read methods, which would self-deadlock on the held shard locks — and
// should do no more than hand the record off (the WAL's group-commit buffer,
// the time index's per-stripe insert).
type MutationHook func(Mutation)

// hookEntry wraps one subscriber so it has an identity (func values are not
// comparable) and can be removed individually.
type hookEntry struct{ fn MutationHook }

// AddMutationHook registers an additional mutation subscriber and returns a
// function that removes it. Hooks are invoked in registration order.
// Registering is safe while readers run, but the caller must ensure no writer
// is mid-mutation (install before ingestion starts — mutations in flight
// during the swap may be delivered to either hook set).
func (g *Graph) AddMutationHook(h MutationHook) (remove func()) {
	e := &hookEntry{fn: h}
	g.hookMu.Lock()
	g.addHookLocked(e)
	g.hookMu.Unlock()
	return func() {
		g.hookMu.Lock()
		g.removeHookLocked(e)
		g.hookMu.Unlock()
	}
}

// SetMutationHook installs (or, with nil, removes) the primary mutation
// subscriber — the slot internal/persist's write-ahead log owns. It replaces
// only the hook previously installed through SetMutationHook; subscribers
// added via AddMutationHook are unaffected. The same in-flight caveat as
// AddMutationHook applies.
func (g *Graph) SetMutationHook(h MutationHook) {
	g.hookMu.Lock()
	defer g.hookMu.Unlock()
	if g.primaryHook != nil {
		g.removeHookLocked(g.primaryHook)
		g.primaryHook = nil
	}
	if h != nil {
		g.primaryHook = &hookEntry{fn: h}
		g.addHookLocked(g.primaryHook)
	}
}

// addHookLocked/removeHookLocked maintain the copy-on-write hook list; the
// caller holds hookMu. Readers (emit, hooked) load the slice atomically and
// never see a partially-updated list.
func (g *Graph) addHookLocked(e *hookEntry) {
	old := g.hooks.Load()
	var next []*hookEntry
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, e)
	g.hooks.Store(&next)
}

func (g *Graph) removeHookLocked(e *hookEntry) {
	old := g.hooks.Load()
	if old == nil {
		return
	}
	next := make([]*hookEntry, 0, len(*old))
	for _, cur := range *old {
		if cur != e {
			next = append(next, cur)
		}
	}
	g.hooks.Store(&next)
}

// hooked reports whether any mutation subscriber is installed, letting
// mutators skip building Mutation records (and their defensive copies) when
// nobody listens.
func (g *Graph) hooked() bool {
	hs := g.hooks.Load()
	return hs != nil && len(*hs) > 0
}

// emit delivers one mutation to every installed hook, in registration order.
func (g *Graph) emit(m Mutation) {
	if hs := g.hooks.Load(); hs != nil {
		for _, e := range *hs {
			e.fn(m)
		}
	}
}

// --- Restore API -----------------------------------------------------------
//
// The methods below rebuild a graph from persisted state (snapshot sections
// and WAL records). They accept explicit IDs, never bump the epoch and never
// fire the mutation hook: restoring is not a mutation, it is re-establishing
// state that was already logged. They are safe for concurrent use, so a
// loader can fan restore work out across shards.

// RestoreVertex inserts (or overwrites) a vertex with an explicit ID and
// advances the vertex ID allocator past it. Overwriting is what makes WAL
// replay idempotent: re-applying an AddVertex record on top of a snapshot
// that already contains the vertex converges, because every later property
// write is also re-applied from the log.
func (g *Graph) RestoreVertex(v Vertex) {
	s := g.vshard(v.ID)
	s.mu.Lock()
	s.vertices[v.ID] = &Vertex{ID: v.ID, Label: v.Label, Props: copyProps(v.Props)}
	s.mu.Unlock()
	advancePast(&g.nextVertex, int64(v.ID))
}

// RestoreEdge inserts an edge with an explicit ID and advances the edge ID
// allocator past it. An edge whose ID already exists is skipped (replay
// idempotence); an edge whose endpoints are missing is an error, because a
// well-formed snapshot + log always restores endpoints first.
func (g *Graph) RestoreEdge(e Edge) error {
	if !g.HasVertex(e.Src) {
		return fmt.Errorf("graph: restore edge %d: source vertex %d does not exist", e.ID, e.Src)
	}
	if !g.HasVertex(e.Dst) {
		return fmt.Errorf("graph: restore edge %d: destination vertex %d does not exist", e.ID, e.Dst)
	}
	g.lockEdgeShards(e.Src, e.Dst, e.ID)
	es := g.eshard(e.ID)
	if _, ok := es.edges[e.ID]; ok {
		g.unlockEdgeShards(e.Src, e.Dst, e.ID)
		return nil
	}
	cp := e
	cp.Props = copyProps(e.Props)
	g.insertEdgeLocked(&cp)
	g.unlockEdgeShards(e.Src, e.Dst, e.ID)
	advancePast(&g.nextEdge, int64(e.ID))
	return nil
}

// SetEpoch overwrites the mutation epoch. Called once at the end of recovery
// with the epoch the persisted state had reached.
func (g *Graph) SetEpoch(e uint64) { g.epoch.Store(e) }

// AdvanceIDs moves the ID allocators forward to at least the given values
// (never backward). A snapshot persists the allocators explicitly because a
// crashed batch insert may have reserved IDs it never wrote.
func (g *Graph) AdvanceIDs(nextVertex, nextEdge int64) {
	advancePast(&g.nextVertex, nextVertex-1)
	advancePast(&g.nextEdge, nextEdge-1)
}

// advancePast raises ctr to id+1 unless it is already greater.
func advancePast(ctr *atomic.Int64, id int64) {
	for {
		cur := ctr.Load()
		if id < cur {
			return
		}
		if ctr.CompareAndSwap(cur, id+1) {
			return
		}
	}
}

// --- Snapshot API ----------------------------------------------------------

// ShardCount returns the number of lock stripes. Snapshot files encode each
// stripe's contents independently so encoding and decoding parallelize.
func ShardCount() int { return numShards }

// GraphSnapshot is a point-in-time copy of a graph: per-shard owned vertices
// and edges (sorted by ID for deterministic encoding), the epoch and the ID
// allocators, all captured atomically with respect to mutations.
type GraphSnapshot struct {
	Vertices   [][]Vertex // [shard][...]: vertices owned by that shard
	Edges      [][]Edge   // [shard][...]: edges owned by that shard
	Epoch      uint64
	NextVertex int64
	NextEdge   int64
}

// Snapshot copies the whole graph under a full read barrier: every shard's
// read lock is held simultaneously (acquired in ascending order, the same
// total order writers use), so the copy is a consistent cut — no edge can
// reference a vertex the copy lacks. Writers block for the duration of the
// memory copy only; encoding happens after the locks are released.
func (g *Graph) Snapshot() *GraphSnapshot {
	for i := range g.shards {
		g.shards[i].mu.RLock()
	}
	snap := &GraphSnapshot{
		Vertices:   make([][]Vertex, numShards),
		Edges:      make([][]Edge, numShards),
		Epoch:      g.epoch.Load(),
		NextVertex: g.nextVertex.Load(),
		NextEdge:   g.nextEdge.Load(),
	}
	for i := range g.shards {
		s := &g.shards[i]
		vs := make([]Vertex, 0, len(s.vertices))
		for _, v := range s.vertices {
			cp := *v
			cp.Props = copyProps(v.Props)
			vs = append(vs, cp)
		}
		es := make([]Edge, 0, len(s.edges))
		for _, e := range s.edges {
			es = append(es, copyEdge(e))
		}
		snap.Vertices[i] = vs
		snap.Edges[i] = es
	}
	for i := numShards - 1; i >= 0; i-- {
		g.shards[i].mu.RUnlock()
	}
	for i := range snap.Vertices {
		vs, es := snap.Vertices[i], snap.Edges[i]
		sort.Slice(vs, func(a, b int) bool { return vs[a].ID < vs[b].ID })
		sort.Slice(es, func(a, b int) bool { return es[a].ID < es[b].ID })
	}
	return snap
}
