package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// MutationKind names the write operations a Graph can perform. Every exported
// mutator maps onto exactly one kind, so a subscriber that records mutations
// (see internal/persist's write-ahead log) can replay them and reconstruct the
// graph byte for byte.
type MutationKind uint8

// Mutation kinds. Values are part of the on-disk WAL format — append new
// kinds, never renumber.
const (
	MutAddVertex     MutationKind = 1 // one vertex inserted (Vertex)
	MutSetVertexProp MutationKind = 2 // one vertex property set (VertexID, Key, Value)
	MutAddEdges      MutationKind = 3 // a batch of edges inserted (Edges)
	MutRemoveEdge    MutationKind = 4 // one edge removed (EdgeID)
	MutSetEdgeProp   MutationKind = 5 // one edge property set (EdgeID, Key, Value)
	MutSetEdgeWeight MutationKind = 6 // one edge weight updated (EdgeID, Weight)
)

// Mutation describes one completed graph write. Only the fields relevant to
// Kind are populated; Vertex.Props and Edges[i].Props are private copies the
// subscriber may retain.
type Mutation struct {
	Kind MutationKind
	// Epoch is the graph's mutation epoch after this write. Concurrent
	// writers may deliver mutations out of epoch order; epochs are unique
	// per mutation, so a subscriber can still totally order what it saw.
	Epoch uint64

	Vertex   Vertex   // MutAddVertex
	Edges    []Edge   // MutAddEdges (a single AddEdge logs a batch of one)
	VertexID VertexID // MutSetVertexProp
	EdgeID   EdgeID   // MutRemoveEdge, MutSetEdgeProp, MutSetEdgeWeight
	Key      string   // MutSetVertexProp, MutSetEdgeProp
	Value    string   // MutSetVertexProp, MutSetEdgeProp
	Weight   float64  // MutSetEdgeWeight
}

// MutationHook receives every completed mutation. It is invoked synchronously
// after the write's shard locks are released and its epoch bump landed; it
// must not mutate the graph.
type MutationHook func(Mutation)

// SetMutationHook installs (or, with nil, removes) the mutation subscriber.
// There is at most one hook; installing is safe while readers run, but the
// caller must ensure no writer is mid-mutation (install before ingestion
// starts — mutations in flight during the swap may be delivered to either
// hook or dropped).
func (g *Graph) SetMutationHook(h MutationHook) {
	if h == nil {
		g.hook.Store(nil)
		return
	}
	g.hook.Store(&h)
}

// hooked reports whether a mutation subscriber is installed, letting mutators
// skip building Mutation records (and their defensive copies) when nobody
// listens.
func (g *Graph) hooked() bool { return g.hook.Load() != nil }

// emit delivers one mutation to the installed hook, if any.
func (g *Graph) emit(m Mutation) {
	if h := g.hook.Load(); h != nil {
		(*h)(m)
	}
}

// hookPtr is the atomic cell SetMutationHook stores into. Declared on its own
// type so Graph's zero value stays usable.
type hookPtr = atomic.Pointer[MutationHook]

// --- Restore API -----------------------------------------------------------
//
// The methods below rebuild a graph from persisted state (snapshot sections
// and WAL records). They accept explicit IDs, never bump the epoch and never
// fire the mutation hook: restoring is not a mutation, it is re-establishing
// state that was already logged. They are safe for concurrent use, so a
// loader can fan restore work out across shards.

// RestoreVertex inserts (or overwrites) a vertex with an explicit ID and
// advances the vertex ID allocator past it. Overwriting is what makes WAL
// replay idempotent: re-applying an AddVertex record on top of a snapshot
// that already contains the vertex converges, because every later property
// write is also re-applied from the log.
func (g *Graph) RestoreVertex(v Vertex) {
	s := g.vshard(v.ID)
	s.mu.Lock()
	s.vertices[v.ID] = &Vertex{ID: v.ID, Label: v.Label, Props: copyProps(v.Props)}
	s.mu.Unlock()
	advancePast(&g.nextVertex, int64(v.ID))
}

// RestoreEdge inserts an edge with an explicit ID and advances the edge ID
// allocator past it. An edge whose ID already exists is skipped (replay
// idempotence); an edge whose endpoints are missing is an error, because a
// well-formed snapshot + log always restores endpoints first.
func (g *Graph) RestoreEdge(e Edge) error {
	if !g.HasVertex(e.Src) {
		return fmt.Errorf("graph: restore edge %d: source vertex %d does not exist", e.ID, e.Src)
	}
	if !g.HasVertex(e.Dst) {
		return fmt.Errorf("graph: restore edge %d: destination vertex %d does not exist", e.ID, e.Dst)
	}
	g.lockEdgeShards(e.Src, e.Dst, e.ID)
	es := g.eshard(e.ID)
	if _, ok := es.edges[e.ID]; ok {
		g.unlockEdgeShards(e.Src, e.Dst, e.ID)
		return nil
	}
	cp := e
	cp.Props = copyProps(e.Props)
	g.insertEdgeLocked(&cp)
	g.unlockEdgeShards(e.Src, e.Dst, e.ID)
	advancePast(&g.nextEdge, int64(e.ID))
	return nil
}

// SetEpoch overwrites the mutation epoch. Called once at the end of recovery
// with the epoch the persisted state had reached.
func (g *Graph) SetEpoch(e uint64) { g.epoch.Store(e) }

// AdvanceIDs moves the ID allocators forward to at least the given values
// (never backward). A snapshot persists the allocators explicitly because a
// crashed batch insert may have reserved IDs it never wrote.
func (g *Graph) AdvanceIDs(nextVertex, nextEdge int64) {
	advancePast(&g.nextVertex, nextVertex-1)
	advancePast(&g.nextEdge, nextEdge-1)
}

// advancePast raises ctr to id+1 unless it is already greater.
func advancePast(ctr *atomic.Int64, id int64) {
	for {
		cur := ctr.Load()
		if id < cur {
			return
		}
		if ctr.CompareAndSwap(cur, id+1) {
			return
		}
	}
}

// --- Snapshot API ----------------------------------------------------------

// ShardCount returns the number of lock stripes. Snapshot files encode each
// stripe's contents independently so encoding and decoding parallelize.
func ShardCount() int { return numShards }

// GraphSnapshot is a point-in-time copy of a graph: per-shard owned vertices
// and edges (sorted by ID for deterministic encoding), the epoch and the ID
// allocators, all captured atomically with respect to mutations.
type GraphSnapshot struct {
	Vertices   [][]Vertex // [shard][...]: vertices owned by that shard
	Edges      [][]Edge   // [shard][...]: edges owned by that shard
	Epoch      uint64
	NextVertex int64
	NextEdge   int64
}

// Snapshot copies the whole graph under a full read barrier: every shard's
// read lock is held simultaneously (acquired in ascending order, the same
// total order writers use), so the copy is a consistent cut — no edge can
// reference a vertex the copy lacks. Writers block for the duration of the
// memory copy only; encoding happens after the locks are released.
func (g *Graph) Snapshot() *GraphSnapshot {
	for i := range g.shards {
		g.shards[i].mu.RLock()
	}
	snap := &GraphSnapshot{
		Vertices:   make([][]Vertex, numShards),
		Edges:      make([][]Edge, numShards),
		Epoch:      g.epoch.Load(),
		NextVertex: g.nextVertex.Load(),
		NextEdge:   g.nextEdge.Load(),
	}
	for i := range g.shards {
		s := &g.shards[i]
		vs := make([]Vertex, 0, len(s.vertices))
		for _, v := range s.vertices {
			cp := *v
			cp.Props = copyProps(v.Props)
			vs = append(vs, cp)
		}
		es := make([]Edge, 0, len(s.edges))
		for _, e := range s.edges {
			es = append(es, copyEdge(e))
		}
		snap.Vertices[i] = vs
		snap.Edges[i] = es
	}
	for i := numShards - 1; i >= 0; i-- {
		g.shards[i].mu.RUnlock()
	}
	for i := range snap.Vertices {
		vs, es := snap.Vertices[i], snap.Edges[i]
		sort.Slice(vs, func(a, b int) bool { return vs[a].ID < vs[b].ID })
		sort.Slice(es, func(a, b int) bool { return es[a].ID < es[b].ID })
	}
	return snap
}
