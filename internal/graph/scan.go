package graph

import "nous/internal/graph/symtab"

// This file is the slab-native read path. The classic iteration API
// (ForEachOutEdge and friends) materializes a full Edge value — resolved
// label string, copied props map — per visited edge, which is exactly the
// allocation the columnar layout exists to avoid. Hot consumers (PageRank,
// pathsearch beam expansion, temporal window scans) iterate EdgeScan views
// instead: a stack-allocated projection of the slab columns, valid only
// inside the callback, with properties readable by interned key without
// copying the map.

// EdgeScan is a read-only view of one edge's slab record. It is valid only
// for the duration of the callback it is passed to: the graph retains
// ownership of the underlying storage, and the view must not be retained or
// leaked past the callback (copy the fields out, or call Materialize).
type EdgeScan struct {
	ID        EdgeID
	Src, Dst  VertexID
	Label     symtab.SymID // interned predicate; resolve via LabelName
	Weight    float64
	Timestamp int64
	props     propMap
}

// LabelName resolves the edge's predicate to its canonical string.
func (e *EdgeScan) LabelName() string { return symtab.Resolve(e.Label) }

// Prop returns one property by interned key without materializing the map.
func (e *EdgeScan) Prop(key symtab.SymID) (string, bool) {
	if e.props == nil {
		return "", false
	}
	v, ok := e.props[key]
	return v, ok
}

// PropEquals reports whether the edge carries key with exactly value.
func (e *EdgeScan) PropEquals(key symtab.SymID, value string) bool {
	if e.props == nil {
		return false
	}
	return e.props[key] == value
}

// HasProps reports whether the edge carries any properties.
func (e *EdgeScan) HasProps() bool { return len(e.props) > 0 }

// Materialize copies the view into an owned Edge value that remains valid
// after the callback returns.
func (e *EdgeScan) Materialize() Edge {
	return Edge{
		ID:        e.ID,
		Src:       e.Src,
		Dst:       e.Dst,
		Label:     symtab.Resolve(e.Label),
		Weight:    e.Weight,
		Timestamp: e.Timestamp,
		Props:     exportProps(e.props),
	}
}

// fill loads a slab slot into the view.
func (e *EdgeScan) fill(si int, c *edgeChunk, off int) {
	e.ID = idOf(si, c.seq[off])
	e.Src = VertexID(c.src[off])
	e.Dst = VertexID(c.dst[off])
	e.Label = c.label[off]
	e.Weight = c.weight[off]
	e.Timestamp = c.ts[off]
	e.props = c.propsAt(off)
}

// scanRefs iterates a ref list into a reused view. Caller holds the shard
// lock the list was read under.
func (g *Graph) scanRefs(refs []edgeRef, ev *EdgeScan, fn func(*EdgeScan) bool) bool {
	for _, ref := range refs {
		si := ref.shard()
		c, off := g.shards[si].slab.chunk(ref.slot())
		ev.fill(si, c, off)
		if !fn(ev) {
			return false
		}
	}
	return true
}

// ForEachOutScan calls fn with a view of each outgoing edge of id while fn
// returns true. fn must not mutate the graph or retain the view.
func (g *Graph) ForEachOutScan(id VertexID, fn func(*EdgeScan) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ev EdgeScan
	g.scanRefs(s.out[id], &ev, fn)
}

// ForEachInScan calls fn with a view of each incoming edge of id while fn
// returns true. fn must not mutate the graph or retain the view.
func (g *Graph) ForEachInScan(id VertexID, fn func(*EdgeScan) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ev EdgeScan
	g.scanRefs(s.in[id], &ev, fn)
}

// ForEachIncidentScan calls fn with a view of each edge incident to id —
// outgoing first, then incoming, each in insertion order (the order
// ForEachIncidentEdge uses) — while fn returns true. fn must not mutate the
// graph or retain the view.
func (g *Graph) ForEachIncidentScan(id VertexID, fn func(*EdgeScan) bool) {
	s := g.vshard(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ev EdgeScan
	if !g.scanRefs(s.out[id], &ev, fn) {
		return
	}
	g.scanRefs(s.in[id], &ev, fn)
}

// ScanEdges calls fn with a view of every live edge while fn returns true —
// shard by shard, in slab (insertion) order within each shard. This is the
// sequential-memory whole-graph scan: one pass over the columnar chunks with
// no per-edge allocation. fn must not mutate the graph or retain the view.
func (g *Graph) ScanEdges(fn func(*EdgeScan) bool) {
	for si := range g.shards {
		if !g.scanShard(si, fn) {
			return
		}
	}
}

// scanShard scans one shard's live slots under its read lock. It reports
// whether the scan should continue into the next shard.
func (g *Graph) scanShard(si int, fn func(*EdgeScan) bool) bool {
	s := &g.shards[si]
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.slab.len
	if n == 0 {
		return true
	}
	chunks := *s.slab.chunks.Load()
	var ev EdgeScan
	for ci := 0; uint32(ci<<chunkBits) < n; ci++ {
		c := chunks[ci]
		end := chunkSize
		if rem := int(n) - ci<<chunkBits; rem < end {
			end = rem
		}
		for off := 0; off < end; off++ {
			if c.dead[off] {
				continue
			}
			ev.fill(si, c, off)
			if !fn(&ev) {
				return false
			}
		}
	}
	return true
}
