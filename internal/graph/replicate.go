package graph

import (
	"fmt"

	"nous/internal/graph/symtab"
)

// Replicated apply
//
// A replication follower tails its leader's WAL and applies each record to
// its own graph. That path needs a hybrid of the two write APIs:
//
//   - like the Restore API, it takes explicit IDs, is idempotent under
//     duplicate delivery (at-least-once streams re-send records), and never
//     mints epochs of its own — the follower adopts the leader's stamps so
//     both sides agree on what "epoch N" means;
//   - like the live mutators, it emits every applied record to the mutation
//     hooks, so the temporal index, epoch-keyed caches and core.KG's
//     secondary indexes stay in sync without a rebuild.
//
// The same ordering contract as the live mutators applies: edge mutations
// are emitted while the write's shard locks are held, and the epoch is
// adopted under those locks, so no subscriber can be tagged with an epoch
// newer than the state it observed. Re-delivered records whose effect is
// already present are skipped without emitting, which keeps duplicate
// delivery invisible to subscribers too.

// adoptEpoch raises the graph's epoch to at least e, never lowering it. It
// is the replicated-path counterpart of bump: instead of minting a fresh
// epoch the follower adopts the leader's stamp, so answers computed on both
// sides at the same applied epoch describe the same graph. Returns the
// resulting epoch.
func (g *Graph) adoptEpoch(e uint64) uint64 {
	for {
		cur := g.epoch.Load()
		if e <= cur {
			return cur
		}
		if g.epoch.CompareAndSwap(cur, e) {
			return e
		}
	}
}

// ApplyReplicated applies one mutation record received from a replication
// leader: restore semantics (explicit IDs, idempotent, tolerant of records
// whose target predates the bootstrap snapshot) with live hook delivery and
// leader-epoch adoption. It is safe for concurrent use with readers; a
// follower must not interleave it with local mutators.
func (g *Graph) ApplyReplicated(m Mutation) error {
	switch m.Kind {
	case MutAddVertex:
		g.applyVertexReplicated(m)
		return nil
	case MutSetVertexProp:
		g.applyVertexPropReplicated(m)
		return nil
	case MutAddEdges:
		return g.applyAddEdgesReplicated(m)
	case MutRemoveEdge:
		g.applyRemoveEdgeReplicated(m)
		return nil
	case MutSetEdgeProp:
		sym := symtab.Intern(m.Key)
		g.applyEdgeUpdateReplicated(m, func(c *edgeChunk, off int) {
			p := c.propsAt(off)
			if p == nil {
				c.setProps(off, propMap{sym: m.Value})
				return
			}
			p[sym] = m.Value
		})
		return nil
	case MutSetEdgeWeight:
		g.applyEdgeUpdateReplicated(m, func(c *edgeChunk, off int) { c.weight[off] = m.Weight })
		return nil
	default:
		return fmt.Errorf("graph: apply replicated: unknown mutation kind %d", m.Kind)
	}
}

// applyVertexReplicated inserts (or overwrites, for re-delivered records) a
// vertex with its leader-assigned ID. Overwriting converges because every
// later property write is also re-applied from the stream.
func (g *Graph) applyVertexReplicated(m Mutation) {
	rec := vertexRec{label: symtab.Intern(m.Vertex.Label), props: internProps(m.Vertex.Props)}
	s := g.vshard(m.Vertex.ID)
	s.mu.Lock()
	s.vertices[m.Vertex.ID] = rec
	s.mu.Unlock()
	g.adoptEpoch(m.Epoch)
	g.emit(Mutation{Kind: MutAddVertex, Epoch: m.Epoch, Vertex: m.Vertex})
	advancePast(&g.nextVertex, int64(m.Vertex.ID))
}

// applyVertexPropReplicated sets one vertex property. A missing vertex is a
// no-op (its insertion may predate what this follower bootstrapped from),
// and no-ops are not emitted.
func (g *Graph) applyVertexPropReplicated(m Mutation) {
	sym := symtab.Intern(m.Key)
	s := g.vshard(m.VertexID)
	s.mu.Lock()
	rec, ok := s.vertices[m.VertexID]
	if !ok {
		s.mu.Unlock()
		return
	}
	if rec.props == nil {
		rec.props = make(propMap, 1)
		s.vertices[m.VertexID] = rec
	}
	rec.props[sym] = m.Value
	s.mu.Unlock()
	g.adoptEpoch(m.Epoch)
	g.emit(Mutation{Kind: MutSetVertexProp, Epoch: m.Epoch, VertexID: m.VertexID, Key: m.Key, Value: m.Value})
}

// applyAddEdgesReplicated inserts a batch of leader-assigned edges, mirroring
// AddEdges' lock discipline: every touched stripe is locked in ascending
// order, and the batch record is emitted (restricted to the edges actually
// inserted — re-delivered ones are skipped) before the locks drop.
func (g *Graph) applyAddEdgesReplicated(m Mutation) error {
	for i := range m.Edges {
		e := &m.Edges[i]
		if !edgeFits(e) {
			return fmt.Errorf("graph: apply replicated edge %d: ID or endpoints exceed storable range", e.ID)
		}
		if !g.HasVertex(e.Src) {
			return fmt.Errorf("graph: apply replicated edge %d: source vertex %d does not exist", e.ID, e.Src)
		}
		if !g.HasVertex(e.Dst) {
			return fmt.Errorf("graph: apply replicated edge %d: destination vertex %d does not exist", e.ID, e.Dst)
		}
	}
	// Interning may grow the symbol table; do it outside the shard locks.
	syms := make([]symtab.SymID, len(m.Edges))
	props := make([]propMap, len(m.Edges))
	var need [numShards]bool
	maxID := int64(-1)
	for i := range m.Edges {
		e := &m.Edges[i]
		syms[i] = symtab.Intern(e.Label)
		props[i] = internProps(e.Props)
		need[shardIdx(uint64(e.Src))] = true
		need[shardIdx(uint64(e.Dst))] = true
		need[shardIdx(uint64(e.ID))] = true
		if int64(e.ID) > maxID {
			maxID = int64(e.ID)
		}
	}
	for i := 0; i < numShards; i++ {
		if need[i] {
			g.shards[i].mu.Lock()
		}
	}
	fresh := make([]Edge, 0, len(m.Edges))
	for i := range m.Edges {
		e := &m.Edges[i]
		if _, ok := g.eshard(e.ID).lookup(seqOf(e.ID)); ok {
			continue // already applied: duplicate delivery converges silently
		}
		g.insertEdgeLocked(e.ID, e.Src, e.Dst, syms[i], e.Weight, e.Timestamp, props[i])
		fresh = append(fresh, *e)
	}
	if len(fresh) > 0 {
		g.adoptEpoch(m.Epoch)
		g.emit(Mutation{Kind: MutAddEdges, Epoch: m.Epoch, Edges: fresh})
	}
	for i := numShards - 1; i >= 0; i-- {
		if need[i] {
			g.shards[i].mu.Unlock()
		}
	}
	if maxID >= 0 {
		advancePast(&g.nextEdge, maxID)
	}
	return nil
}

// applyRemoveEdgeReplicated deletes an edge; a missing edge is a silent
// no-op (already removed, or its insertion predates the bootstrap snapshot).
func (g *Graph) applyRemoveEdgeReplicated(m Mutation) {
	src, dst, ok := g.edgeEndpoints(m.EdgeID)
	if !ok {
		return
	}
	g.lockEdgeShards(src, dst, m.EdgeID)
	defer g.unlockEdgeShards(src, dst, m.EdgeID)
	es := g.eshard(m.EdgeID)
	slot, ok := es.lookup(seqOf(m.EdgeID)) // may have raced with another apply
	if !ok {
		return
	}
	g.dropEdgeLocked(m.EdgeID, src, dst, slot)
	g.adoptEpoch(m.Epoch)
	g.emit(Mutation{Kind: MutRemoveEdge, Epoch: m.Epoch, EdgeID: m.EdgeID})
}

// applyEdgeUpdateReplicated applies fn to an edge's slab cells under the full
// shard lock set, emitting the record with its leader epoch. A missing edge
// is a silent no-op.
func (g *Graph) applyEdgeUpdateReplicated(m Mutation, fn func(c *edgeChunk, off int)) {
	src, dst, ok := g.edgeEndpoints(m.EdgeID)
	if !ok {
		return
	}
	g.lockEdgeShards(src, dst, m.EdgeID)
	defer g.unlockEdgeShards(src, dst, m.EdgeID)
	es := g.eshard(m.EdgeID)
	slot, ok := es.lookup(seqOf(m.EdgeID))
	if !ok {
		return
	}
	c, off := es.slab.chunk(slot)
	fn(c, off)
	g.adoptEpoch(m.Epoch)
	g.emit(m)
}
