// Package disambig implements the entity-disambiguation stage of §3.3: a
// variation of the AIDA algorithm (Hoffart et al., EMNLP'11). Candidate
// entities for each mention are scored by a popularity prior (PageRank over
// the KG), mention-context similarity and entity–entity coherence, then
// jointly resolved on a mention–entity graph by AIDA's greedy dense-subgraph
// heuristic: iteratively remove the entity with the smallest weighted degree
// while every mention keeps at least one candidate.
//
// The paper's adaptation — which this package reproduces — replaces AIDA's
// Wikipedia-article context with the entity's neighborhood in the knowledge
// graph: an entity's context document is built from the names, types and
// predicates around it.
package disambig

import (
	"math"
	"sort"
	"strings"

	"nous/internal/core"
	"nous/internal/graph"
	"nous/internal/nlp"
)

// Mention is a surface form to resolve together with the content words of
// the document around it.
type Mention struct {
	Surface string
	Context []string
}

// Result is the resolution of one mention.
type Result struct {
	Surface string
	Entity  string  // canonical entity name ("" when unresolvable)
	Score   float64 // final combined score of the chosen candidate
	// Ambiguous is set when the mention had more than one candidate.
	Ambiguous bool
}

// Config weights the three AIDA score components.
type Config struct {
	PriorWeight     float64
	ContextWeight   float64
	CoherenceWeight float64
	// MaxCandidates bounds the candidate set per mention.
	MaxCandidates int
}

// DefaultConfig mirrors AIDA's emphasis on context plus coherence: with no
// contextual evidence, coherence with co-mentioned entities must be able to
// override the popularity prior.
func DefaultConfig() Config {
	return Config{PriorWeight: 0.15, ContextWeight: 0.5, CoherenceWeight: 0.6, MaxCandidates: 8}
}

// Linker resolves mentions against a dynamic KG.
type Linker struct {
	kg  *core.KG
	cfg Config

	prior    map[string]float64  // entity name -> normalized popularity
	profiles map[string][]string // entity name -> context profile words
}

// NewLinker builds a linker over the KG. RefreshPrior must be called after
// bulk KG updates to recompute popularity and profiles.
func NewLinker(kg *core.KG, cfg Config) *Linker {
	if cfg.MaxCandidates <= 0 {
		cfg = DefaultConfig()
	}
	l := &Linker{kg: kg, cfg: cfg}
	l.RefreshPrior()
	return l
}

// RefreshPrior recomputes the PageRank popularity prior and clears cached
// entity profiles.
func (l *Linker) RefreshPrior() {
	g := l.kg.Graph()
	pr := graph.PageRank(g, 0.85, 20)
	maxRank := 0.0
	for _, r := range pr {
		if r > maxRank {
			maxRank = r
		}
	}
	l.prior = make(map[string]float64, len(pr))
	for id, r := range pr {
		if name, ok := l.kg.EntityName(id); ok {
			if maxRank > 0 {
				l.prior[name] = r / maxRank
			} else {
				l.prior[name] = 0
			}
		}
	}
	l.profiles = make(map[string][]string)
}

// profile returns (building lazily) the KG-neighborhood context document of
// an entity: its own name tokens, the names and types of its neighbors and
// the predicates on its edges.
func (l *Linker) profile(name string) []string {
	if p, ok := l.profiles[name]; ok {
		return p
	}
	var words []string
	addText := func(s string) {
		for _, w := range strings.Fields(strings.ToLower(s)) {
			w = strings.Trim(w, ".,")
			if w != "" && !nlp.IsStopword(w) {
				words = append(words, w)
			}
		}
	}
	addText(name)
	if typ, ok := l.kg.EntityType(name); ok {
		addText(string(typ))
	}
	for _, f := range l.kg.FactsAbout(name) {
		addText(f.Predicate)
		if f.Subject == name {
			addText(f.Object)
			addText(string(f.ObjectType))
		} else {
			addText(f.Subject)
			addText(string(f.SubjectType))
		}
		if f.Provenance.Sentence != "" {
			addText(f.Provenance.Sentence)
		}
	}
	l.profiles[name] = words
	return words
}

// contextSimilarity is the cosine between the mention's context bag and the
// entity's KG-neighborhood profile.
func (l *Linker) contextSimilarity(context []string, entity string) float64 {
	return cosine(bag(context), bag(l.profile(entity)))
}

// coherence is the Jaccard overlap of the two entities' closed 1-hop KG
// neighborhoods (Milne–Witten relatedness restricted to the KG). Closed
// neighborhoods — each entity is a member of its own set — make directly
// linked entities coherent even when they share no third neighbor.
func (l *Linker) coherence(a, b string) float64 {
	na := append(l.kg.Neighborhood(a, 1), a)
	nb := append(l.kg.Neighborhood(b, 1), b)
	setA := make(map[string]bool, len(na))
	for _, x := range na {
		setA[x] = true
	}
	inter := 0
	for _, x := range nb {
		if setA[x] {
			inter++
		}
	}
	union := len(setA) + len(nb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// candidate is one mention-entity hypothesis in the joint graph.
type candidate struct {
	mention int
	entity  string
	meScore float64 // prior + context part
	alive   bool
}

// Link jointly resolves a document's mentions. Mentions with no KB candidate
// resolve to Entity == "".
func (l *Linker) Link(mentions []Mention) []Result {
	results := make([]Result, len(mentions))
	var cands []candidate
	perMention := make([][]int, len(mentions))

	for i, m := range mentions {
		results[i] = Result{Surface: m.Surface}
		names := l.kg.Candidates(m.Surface)
		if len(names) > l.cfg.MaxCandidates {
			names = names[:l.cfg.MaxCandidates]
		}
		results[i].Ambiguous = len(names) > 1
		for _, name := range names {
			me := l.cfg.PriorWeight*l.prior[name] +
				l.cfg.ContextWeight*l.contextSimilarity(m.Context, name)
			cands = append(cands, candidate{mention: i, entity: name, meScore: me, alive: true})
			perMention[i] = append(perMention[i], len(cands)-1)
		}
	}
	if len(cands) == 0 {
		return results
	}

	// Entity–entity coherence edges between candidates of different
	// mentions (same-entity candidates reinforce each other maximally).
	coh := make([][]float64, len(cands))
	for i := range coh {
		coh[i] = make([]float64, len(cands))
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[i].mention == cands[j].mention {
				continue
			}
			var c float64
			if cands[i].entity == cands[j].entity {
				c = 1
			} else {
				c = l.coherence(cands[i].entity, cands[j].entity)
			}
			coh[i][j] = c
			coh[j][i] = c
		}
	}

	// weightedDegree scores a candidate by its mention-entity score plus,
	// for every *other* mention, the best coherence with that mention's
	// alive candidates (averaged over other mentions so documents with many
	// mentions don't drown the prior and context terms).
	weightedDegree := func(i int) float64 {
		d := cands[i].meScore
		if len(mentions) <= 1 {
			return d
		}
		bestPerMention := make(map[int]float64)
		for j := range cands {
			if j == i || !cands[j].alive || cands[j].mention == cands[i].mention {
				continue
			}
			if c := coh[i][j]; c > bestPerMention[cands[j].mention] {
				bestPerMention[cands[j].mention] = c
			}
		}
		sum := 0.0
		for _, c := range bestPerMention {
			sum += c
		}
		return d + l.cfg.CoherenceWeight*sum/float64(len(mentions)-1)
	}
	aliveCount := make([]int, len(mentions))
	for i := range perMention {
		aliveCount[i] = len(perMention[i])
	}

	// AIDA greedy dense subgraph: repeatedly drop the weakest removable
	// candidate (its mention must retain another candidate).
	for {
		worst, worstDeg := -1, math.Inf(1)
		for i, c := range cands {
			if !c.alive || aliveCount[c.mention] <= 1 {
				continue
			}
			if d := weightedDegree(i); d < worstDeg {
				worst, worstDeg = i, d
			}
		}
		if worst < 0 {
			break
		}
		cands[worst].alive = false
		aliveCount[cands[worst].mention]--
	}

	// Pick the surviving candidate per mention (highest final degree wins
	// if several survive because removal was blocked).
	for mi, idxs := range perMention {
		best, bestScore := -1, math.Inf(-1)
		for _, ci := range idxs {
			if !cands[ci].alive {
				continue
			}
			if d := weightedDegree(ci); d > bestScore {
				best, bestScore = ci, d
			}
		}
		if best >= 0 {
			results[mi].Entity = cands[best].entity
			results[mi].Score = bestScore
		}
	}
	return results
}

// LinkOne resolves a single mention (no joint coherence, prior + context
// only). It is the popularity/context baseline used in the evaluation.
func (l *Linker) LinkOne(m Mention) Result {
	rs := l.Link([]Mention{m})
	return rs[0]
}

// LinkPriorOnly resolves a mention to its most popular candidate — the
// baseline the paper's AIDA variant is measured against.
func (l *Linker) LinkPriorOnly(surface string) Result {
	names := l.kg.Candidates(surface)
	r := Result{Surface: surface, Ambiguous: len(names) > 1}
	best := math.Inf(-1)
	for _, n := range names {
		if p := l.prior[n]; p > best {
			best = p
			r.Entity = n
			r.Score = p
		}
	}
	return r
}

func bag(words []string) map[string]float64 {
	m := make(map[string]float64, len(words))
	for _, w := range words {
		m[strings.ToLower(w)]++
	}
	return m
}

func cosine(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for w, x := range a {
		na += x * x
		if y, ok := b[w]; ok {
			dot += x * y
		}
	}
	for _, y := range b {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// SortResultsByScore orders results descending by score (stable for tests
// and report output).
func SortResultsByScore(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Score > rs[j].Score })
}
