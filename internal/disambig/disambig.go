// Package disambig implements the entity-disambiguation stage of §3.3: a
// variation of the AIDA algorithm (Hoffart et al., EMNLP'11). Candidate
// entities for each mention are scored by a popularity prior (PageRank over
// the KG), mention-context similarity and entity–entity coherence, then
// jointly resolved on a mention–entity graph by AIDA's greedy dense-subgraph
// heuristic: iteratively remove the entity with the smallest weighted degree
// while every mention keeps at least one candidate.
//
// The paper's adaptation — which this package reproduces — replaces AIDA's
// Wikipedia-article context with the entity's neighborhood in the knowledge
// graph: an entity's context document is built from the names, types and
// predicates around it.
package disambig

import (
	"math"
	"sort"
	"strings"
	"sync"

	"nous/internal/analytics"
	"nous/internal/core"
	"nous/internal/nlp"
)

// Mention is a surface form to resolve together with the content words of
// the document around it.
type Mention struct {
	Surface string
	Context []string
}

// Result is the resolution of one mention.
type Result struct {
	Surface string
	Entity  string  // canonical entity name ("" when unresolvable)
	Score   float64 // final combined score of the chosen candidate
	// Ambiguous is set when the mention had more than one candidate.
	Ambiguous bool
}

// Config weights the three AIDA score components.
type Config struct {
	PriorWeight     float64
	ContextWeight   float64
	CoherenceWeight float64
	// MaxCandidates bounds the candidate set per mention.
	MaxCandidates int
}

// DefaultConfig mirrors AIDA's emphasis on context plus coherence: with no
// contextual evidence, coherence with co-mentioned entities must be able to
// override the popularity prior.
func DefaultConfig() Config {
	return Config{PriorWeight: 0.15, ContextWeight: 0.5, CoherenceWeight: 0.6, MaxCandidates: 8}
}

// PriorSource supplies the popularity prior (per entity name, normalized to
// [0,1]). internal/analytics.Cache implements it with an epoch-memoized
// PageRank, so N concurrent linking calls share one computation.
type PriorSource interface {
	PopularityPrior() map[string]float64
}

// Linker resolves mentions against a dynamic KG. All methods are safe for
// concurrent use (queries disambiguate while ingestion links new mentions).
type Linker struct {
	kg     *core.KG
	cfg    Config
	priors PriorSource

	// profiles caches entity context documents. It is keyed by the graph
	// mutation epoch at which it was filled: any KG write invalidates it,
	// since profiles are built from the entity's live neighborhood.
	mu            sync.Mutex
	profiles      map[string][]string
	profilesEpoch uint64
}

// NewLinker builds a linker over the KG with a private analytics cache
// supplying the popularity prior. Use NewLinkerWith to share one cache
// across the whole query engine.
func NewLinker(kg *core.KG, cfg Config) *Linker {
	return NewLinkerWith(kg, cfg, analytics.New(kg))
}

// NewLinkerWith builds a linker whose popularity prior comes from the given
// source (typically the pipeline-wide analytics cache).
func NewLinkerWith(kg *core.KG, cfg Config, priors PriorSource) *Linker {
	if cfg.MaxCandidates <= 0 {
		cfg = DefaultConfig()
	}
	return &Linker{kg: kg, cfg: cfg, priors: priors, profiles: make(map[string][]string)}
}

// RefreshPrior forces the popularity prior to recompute on next use,
// bypassing the analytics cache's staleness budget. Under normal operation
// it is unnecessary: the prior is epoch-versioned and refreshes itself
// lazily after KG mutations.
func (l *Linker) RefreshPrior() {
	if inv, ok := l.priors.(interface{ InvalidatePrior() }); ok {
		inv.InvalidatePrior()
	}
}

// prior returns the current popularity prior map (shared, read-only).
func (l *Linker) prior() map[string]float64 {
	return l.priors.PopularityPrior()
}

// profile returns (building lazily) the KG-neighborhood context document of
// an entity: its own name tokens, the names and types of its neighbors and
// the predicates on its edges. Cached profiles are dropped whenever the
// graph's mutation epoch moves, since any write may have changed a
// neighborhood.
func (l *Linker) profile(name string) []string {
	now := l.kg.Graph().Epoch()
	l.mu.Lock()
	if l.profilesEpoch != now {
		l.profiles = make(map[string][]string)
		l.profilesEpoch = now
	}
	if p, ok := l.profiles[name]; ok {
		l.mu.Unlock()
		return p
	}
	l.mu.Unlock()
	var words []string
	addText := func(s string) {
		for _, w := range strings.Fields(strings.ToLower(s)) {
			w = strings.Trim(w, ".,")
			if w != "" && !nlp.IsStopword(w) {
				words = append(words, w)
			}
		}
	}
	addText(name)
	if typ, ok := l.kg.EntityType(name); ok {
		addText(string(typ))
	}
	for _, f := range l.kg.FactsAbout(name) {
		addText(f.Predicate)
		if f.Subject == name {
			addText(f.Object)
			addText(string(f.ObjectType))
		} else {
			addText(f.Subject)
			addText(string(f.SubjectType))
		}
		if f.Provenance.Sentence != "" {
			addText(f.Provenance.Sentence)
		}
	}
	l.mu.Lock()
	// Don't cache a profile built across a write: the neighborhood walk
	// must have seen a quiescent graph (live epoch unchanged) and the map
	// must still belong to that epoch.
	if l.profilesEpoch == now && l.kg.Graph().Epoch() == now {
		l.profiles[name] = words
	}
	l.mu.Unlock()
	return words
}

// contextSimilarity is the cosine between the mention's context bag and the
// entity's KG-neighborhood profile.
func (l *Linker) contextSimilarity(context []string, entity string) float64 {
	return cosine(bag(context), bag(l.profile(entity)))
}

// coherence is the Jaccard overlap of the two entities' closed 1-hop KG
// neighborhoods (Milne–Witten relatedness restricted to the KG). Closed
// neighborhoods — each entity is a member of its own set — make directly
// linked entities coherent even when they share no third neighbor.
func (l *Linker) coherence(a, b string) float64 {
	na := append(l.kg.Neighborhood(a, 1), a)
	nb := append(l.kg.Neighborhood(b, 1), b)
	setA := make(map[string]bool, len(na))
	for _, x := range na {
		setA[x] = true
	}
	inter := 0
	for _, x := range nb {
		if setA[x] {
			inter++
		}
	}
	union := len(setA) + len(nb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// candidate is one mention-entity hypothesis in the joint graph.
type candidate struct {
	mention int
	entity  string
	meScore float64 // prior + context part
	alive   bool
}

// Link jointly resolves a document's mentions. Mentions with no KB candidate
// resolve to Entity == "".
func (l *Linker) Link(mentions []Mention) []Result {
	results := make([]Result, len(mentions))
	var cands []candidate
	perMention := make([][]int, len(mentions))

	prior := l.prior() // one epoch-fresh snapshot for the whole document
	for i, m := range mentions {
		results[i] = Result{Surface: m.Surface}
		names := l.kg.Candidates(m.Surface)
		if len(names) > l.cfg.MaxCandidates {
			names = names[:l.cfg.MaxCandidates]
		}
		results[i].Ambiguous = len(names) > 1
		for _, name := range names {
			me := l.cfg.PriorWeight*prior[name] +
				l.cfg.ContextWeight*l.contextSimilarity(m.Context, name)
			cands = append(cands, candidate{mention: i, entity: name, meScore: me, alive: true})
			perMention[i] = append(perMention[i], len(cands)-1)
		}
	}
	if len(cands) == 0 {
		return results
	}

	// Entity–entity coherence edges between candidates of different
	// mentions (same-entity candidates reinforce each other maximally).
	coh := make([][]float64, len(cands))
	for i := range coh {
		coh[i] = make([]float64, len(cands))
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[i].mention == cands[j].mention {
				continue
			}
			var c float64
			if cands[i].entity == cands[j].entity {
				c = 1
			} else {
				c = l.coherence(cands[i].entity, cands[j].entity)
			}
			coh[i][j] = c
			coh[j][i] = c
		}
	}

	// weightedDegree scores a candidate by its mention-entity score plus,
	// for every *other* mention, the best coherence with that mention's
	// alive candidates (averaged over other mentions so documents with many
	// mentions don't drown the prior and context terms).
	weightedDegree := func(i int) float64 {
		d := cands[i].meScore
		if len(mentions) <= 1 {
			return d
		}
		bestPerMention := make(map[int]float64)
		for j := range cands {
			if j == i || !cands[j].alive || cands[j].mention == cands[i].mention {
				continue
			}
			if c := coh[i][j]; c > bestPerMention[cands[j].mention] {
				bestPerMention[cands[j].mention] = c
			}
		}
		sum := 0.0
		for _, c := range bestPerMention {
			sum += c
		}
		return d + l.cfg.CoherenceWeight*sum/float64(len(mentions)-1)
	}
	aliveCount := make([]int, len(mentions))
	for i := range perMention {
		aliveCount[i] = len(perMention[i])
	}

	// AIDA greedy dense subgraph: repeatedly drop the weakest removable
	// candidate (its mention must retain another candidate).
	for {
		worst, worstDeg := -1, math.Inf(1)
		for i, c := range cands {
			if !c.alive || aliveCount[c.mention] <= 1 {
				continue
			}
			if d := weightedDegree(i); d < worstDeg {
				worst, worstDeg = i, d
			}
		}
		if worst < 0 {
			break
		}
		cands[worst].alive = false
		aliveCount[cands[worst].mention]--
	}

	// Pick the surviving candidate per mention (highest final degree wins
	// if several survive because removal was blocked).
	for mi, idxs := range perMention {
		best, bestScore := -1, math.Inf(-1)
		for _, ci := range idxs {
			if !cands[ci].alive {
				continue
			}
			if d := weightedDegree(ci); d > bestScore {
				best, bestScore = ci, d
			}
		}
		if best >= 0 {
			results[mi].Entity = cands[best].entity
			results[mi].Score = bestScore
		}
	}
	return results
}

// LinkOne resolves a single mention (no joint coherence, prior + context
// only). It is the popularity/context baseline used in the evaluation.
func (l *Linker) LinkOne(m Mention) Result {
	rs := l.Link([]Mention{m})
	return rs[0]
}

// LinkPriorOnly resolves a mention to its most popular candidate — the
// baseline the paper's AIDA variant is measured against.
func (l *Linker) LinkPriorOnly(surface string) Result {
	names := l.kg.Candidates(surface)
	r := Result{Surface: surface, Ambiguous: len(names) > 1}
	prior := l.prior()
	best := math.Inf(-1)
	for _, n := range names {
		if p := prior[n]; p > best {
			best = p
			r.Entity = n
			r.Score = p
		}
	}
	return r
}

func bag(words []string) map[string]float64 {
	m := make(map[string]float64, len(words))
	for _, w := range words {
		m[strings.ToLower(w)]++
	}
	return m
}

func cosine(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	for w, x := range a {
		na += x * x
		if y, ok := b[w]; ok {
			dot += x * y
		}
	}
	for _, y := range b {
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// SortResultsByScore orders results descending by score (stable for tests
// and report output).
func SortResultsByScore(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].Score > rs[j].Score })
}
