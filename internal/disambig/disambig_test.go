package disambig

import (
	"fmt"
	"testing"

	"nous/internal/core"
	"nous/internal/ontology"
)

// testKG builds a KG with two entities sharing the alias "Apex":
// Apex Robotics (drone world, well connected to DJI) and Apex Media
// (advertising world). A popularity skew favors Apex Media.
func testKG(t *testing.T) *core.KG {
	t.Helper()
	kg := core.NewKG(nil)
	kg.AddEntity("Apex Robotics", ontology.TypeCompany, "Apex")
	kg.AddEntity("Apex Media Group", ontology.TypeCompany, "Apex")
	kg.AddEntity("DJI", ontology.TypeCompany)
	kg.AddEntity("Shenzhen", ontology.TypeCity)
	kg.AddEntity("AdWorld", ontology.TypeCompany)

	facts := []core.Triple{
		{Subject: "Apex Robotics", Predicate: "competesWith", Object: "DJI"},
		{Subject: "Apex Robotics", Predicate: "develops", Object: "Obstacle Avoidance"},
		{Subject: "Apex Robotics", Predicate: "manufactures", Object: "Inspection Drone 1"},
		{Subject: "DJI", Predicate: "headquarteredIn", Object: "Shenzhen"},
		// Apex Media is more popular (more incoming links).
		{Subject: "AdWorld", Predicate: "partnersWith", Object: "Apex Media Group"},
		{Subject: "BroadcastCo", Predicate: "partnersWith", Object: "Apex Media Group"},
		{Subject: "TVNet", Predicate: "partnersWith", Object: "Apex Media Group"},
		{Subject: "PaperCo", Predicate: "partnersWith", Object: "Apex Media Group"},
	}
	for _, f := range facts {
		f.Confidence = 1
		f.Curated = true
		if _, err := kg.AddFact(f); err != nil {
			t.Fatal(err)
		}
	}
	return kg
}

func TestContextBeatsPrior(t *testing.T) {
	kg := testKG(t)
	l := NewLinker(kg, DefaultConfig())

	// Drone-flavored context should pick Apex Robotics even though Apex
	// Media is more popular.
	r := l.LinkOne(Mention{Surface: "Apex", Context: []string{"drone", "inspection", "obstacle", "avoidance", "quadcopter"}})
	if r.Entity != "Apex Robotics" {
		t.Fatalf("drone context resolved to %q", r.Entity)
	}
	if !r.Ambiguous {
		t.Error("mention should be flagged ambiguous")
	}

	// Advertising context picks the media company.
	r = l.LinkOne(Mention{Surface: "Apex", Context: []string{"advertising", "broadcast", "television", "media"}})
	if r.Entity != "Apex Media Group" {
		t.Fatalf("media context resolved to %q", r.Entity)
	}
}

func TestPriorOnlyBaselinePicksPopular(t *testing.T) {
	kg := testKG(t)
	l := NewLinker(kg, DefaultConfig())
	r := l.LinkPriorOnly("Apex")
	if r.Entity != "Apex Media Group" {
		t.Fatalf("prior-only = %q, want the popular entity", r.Entity)
	}
}

func TestJointCoherence(t *testing.T) {
	kg := testKG(t)
	l := NewLinker(kg, DefaultConfig())
	// A document mentioning both DJI and Apex with thin context: coherence
	// with DJI should pull Apex toward Apex Robotics (they share edges).
	rs := l.Link([]Mention{
		{Surface: "DJI", Context: []string{"market"}},
		{Surface: "Apex", Context: []string{"market"}},
	})
	if rs[0].Entity != "DJI" {
		t.Fatalf("DJI resolved to %q", rs[0].Entity)
	}
	if rs[1].Entity != "Apex Robotics" {
		t.Fatalf("coherence failed: Apex resolved to %q", rs[1].Entity)
	}
}

func TestUnknownMention(t *testing.T) {
	kg := testKG(t)
	l := NewLinker(kg, DefaultConfig())
	r := l.LinkOne(Mention{Surface: "Zorblatt Industries", Context: []string{"drone"}})
	if r.Entity != "" {
		t.Fatalf("unknown mention resolved to %q", r.Entity)
	}
}

func TestUnambiguousMention(t *testing.T) {
	kg := testKG(t)
	l := NewLinker(kg, DefaultConfig())
	r := l.LinkOne(Mention{Surface: "DJI", Context: nil})
	if r.Entity != "DJI" || r.Ambiguous {
		t.Fatalf("result = %+v", r)
	}
}

func TestEveryMentionKeepsACandidate(t *testing.T) {
	kg := testKG(t)
	l := NewLinker(kg, DefaultConfig())
	rs := l.Link([]Mention{
		{Surface: "Apex", Context: []string{"drone"}},
		{Surface: "Apex", Context: []string{"media"}},
		{Surface: "DJI"},
	})
	for _, r := range rs {
		if r.Entity == "" {
			t.Fatalf("mention %q lost all candidates: %+v", r.Surface, rs)
		}
	}
}

func TestRefreshPriorAfterUpdates(t *testing.T) {
	kg := testKG(t)
	l := NewLinker(kg, DefaultConfig())
	before := l.LinkPriorOnly("Apex").Entity

	// Massively boost Apex Robotics's popularity with in-links from many
	// distinct sources.
	for i := 0; i < 12; i++ {
		kg.AddFact(core.Triple{
			Subject: fmt.Sprintf("NewCo %d", i), Predicate: "partnersWith",
			Object: "Apex Robotics", Confidence: 1, Curated: true,
		})
	}
	l.RefreshPrior()
	after := l.LinkPriorOnly("Apex").Entity
	if before == after {
		t.Fatalf("prior did not refresh: before=%q after=%q", before, after)
	}
	if after != "Apex Robotics" {
		t.Fatalf("after refresh = %q", after)
	}
}

func TestSortResultsByScore(t *testing.T) {
	rs := []Result{{Entity: "a", Score: 0.1}, {Entity: "b", Score: 0.9}, {Entity: "c", Score: 0.5}}
	SortResultsByScore(rs)
	if rs[0].Entity != "b" || rs[2].Entity != "a" {
		t.Fatalf("sorted = %+v", rs)
	}
}

func BenchmarkLinkJoint(b *testing.B) {
	kg := core.NewKG(nil)
	kg.AddEntity("Apex Robotics", ontology.TypeCompany, "Apex")
	kg.AddEntity("Apex Media Group", ontology.TypeCompany, "Apex")
	for i := 0; i < 50; i++ {
		kg.AddFact(core.Triple{Subject: "Apex Robotics", Predicate: "partnersWith",
			Object: "DJI", Confidence: 1, Curated: true})
	}
	l := NewLinker(kg, DefaultConfig())
	ms := []Mention{
		{Surface: "Apex", Context: []string{"drone", "inspection"}},
		{Surface: "DJI", Context: []string{"drone"}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Link(ms)
	}
}
