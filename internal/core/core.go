package core
