package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"nous/internal/ontology"
	"nous/internal/persist"
)

// durableRoundTrip checkpoints kg's graph into a temp store, recovers it
// into a fresh graph, and rebuilds a KG over it.
func durableRoundTrip(t *testing.T, kg *KG) *KG {
	t.Helper()
	dir := t.TempDir()
	opt := persist.Options{DisableAutoCheckpoint: true, FlushInterval: time.Hour}

	// The store attaches to an already-populated graph here; that skips WAL
	// coverage of the existing state, so take an immediate checkpoint to
	// capture it, exactly like Pipeline.Checkpoint does.
	st, err := persist.Open(dir, kg.Graph(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	fresh := NewKG(kg.Ontology())
	st2, err := persist.Open(dir, fresh.Graph(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	if err := fresh.Rebuild(); err != nil {
		t.Fatal(err)
	}
	return fresh
}

func sampleKG(t *testing.T) *KG {
	t.Helper()
	kg := NewKG(nil)
	kg.AddEntity("DJI Technology Co.", ontology.TypeCompany, "DJI", "dji technology")
	kg.AddEntity("Dow Jones Index", ontology.TypeTopic, "DJI")
	kg.AddEntity("Shenzhen", ontology.TypeCity)
	when := time.Date(2016, 4, 2, 10, 30, 0, 0, time.UTC)
	if _, err := kg.AddFact(Triple{
		Subject: "DJI Technology Co.", Predicate: "headquarteredIn", Object: "Shenzhen",
		Confidence: 1, Curated: true,
		Provenance: Provenance{Source: "yago", DocID: "kb-1"},
	}); err != nil {
		t.Fatal(err)
	}
	id, err := kg.AddFact(Triple{
		Subject: "DJI Technology Co.", Predicate: "acquired", Object: "Dow Jones Index",
		Confidence: 0.4,
		Provenance: Provenance{Source: "wsj", DocID: "a-17", Sentence: "DJI acquired the index.", Time: when},
	})
	if err != nil {
		t.Fatal(err)
	}
	kg.SetConfidence(id, 0.75)
	return kg
}

func TestRebuildRoundTripsEntitiesAliasesAndFacts(t *testing.T) {
	kg := sampleKG(t)
	got := durableRoundTrip(t, kg)

	if want, have := kg.Entities(), got.Entities(); !reflect.DeepEqual(want, have) {
		t.Fatalf("entities: want %v, got %v", want, have)
	}
	if want, have := kg.Graph().Epoch(), got.Graph().Epoch(); want != have {
		t.Errorf("epoch: want %d, got %d", want, have)
	}
	for _, surface := range []string{"dji", "dji technology", "shenzhen", "dow jones index"} {
		if want, have := kg.Candidates(surface), got.Candidates(surface); !reflect.DeepEqual(want, have) {
			t.Errorf("Candidates(%q): want %v, got %v", surface, want, have)
		}
	}
	if typ, ok := got.EntityType("DJI Technology Co."); !ok || typ != ontology.TypeCompany {
		t.Errorf("EntityType = %v, %v", typ, ok)
	}

	wantFacts, gotFacts := kg.AllFacts(), got.AllFacts()
	if len(wantFacts) != len(gotFacts) {
		t.Fatalf("fact count: want %d, got %d", len(wantFacts), len(gotFacts))
	}
	for i := range wantFacts {
		w, g := wantFacts[i], gotFacts[i]
		if w.Subject != g.Subject || w.Predicate != g.Predicate || w.Object != g.Object ||
			w.Confidence != g.Confidence || w.Curated != g.Curated ||
			w.SubjectType != g.SubjectType || w.ObjectType != g.ObjectType ||
			w.Provenance.Source != g.Provenance.Source || w.Provenance.DocID != g.Provenance.DocID ||
			w.Provenance.Sentence != g.Provenance.Sentence ||
			w.Provenance.Time.Unix() != g.Provenance.Time.Unix() {
			t.Errorf("fact %d: want %+v, got %+v", i, w, g)
		}
	}

	var wantJSON, gotJSON bytes.Buffer
	if err := kg.ExportJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := got.ExportJSON(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
		t.Errorf("ExportJSON differs after round trip:\nwant: %s\ngot:  %s", wantJSON.String(), gotJSON.String())
	}
}

func TestRebuildPreservesEvictionTimeline(t *testing.T) {
	kg := NewKG(nil)
	kg.AddEntity("A", ontology.TypeCompany)
	kg.AddEntity("B", ontology.TypeCompany)
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if _, err := kg.AddFact(Triple{
			Subject: "A", Predicate: "acquired", Object: "B", Confidence: 0.9,
			Provenance: Provenance{Source: "wsj", Time: base.AddDate(0, 0, i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	got := durableRoundTrip(t, kg)
	if n := got.EvictBefore(base.AddDate(0, 0, 2)); n != 2 {
		t.Errorf("evicted %d facts, want 2", n)
	}
	if got.NumFacts() != 1 {
		t.Errorf("facts after eviction = %d, want 1", got.NumFacts())
	}
}

func TestRebuildRequiresFreshKG(t *testing.T) {
	kg := sampleKG(t)
	if err := kg.Rebuild(); err == nil {
		t.Error("Rebuild on a populated KG: want error")
	}
}

func TestRebuildZeroProvenanceTimeStaysZero(t *testing.T) {
	kg := NewKG(nil)
	kg.AddEntity("A", ontology.TypeCompany)
	kg.AddEntity("B", ontology.TypeCompany)
	if _, err := kg.AddFact(Triple{Subject: "A", Predicate: "acquired", Object: "B", Confidence: 1, Curated: true}); err != nil {
		t.Fatal(err)
	}
	got := durableRoundTrip(t, kg)
	f := got.AllFacts()[0]
	if !f.Provenance.Time.IsZero() {
		t.Errorf("zero provenance time round-tripped to %v", f.Provenance.Time)
	}
}
