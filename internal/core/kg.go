// Package core implements NOUS's primary contribution: a dynamic knowledge
// graph that fuses curated knowledge-base facts with facts extracted from
// streaming text. Every fact carries provenance (source, document, sentence,
// timestamp), a confidence score and a curated/extracted flag; extracted
// facts can be evicted by a sliding time window while the curated substrate
// persists. Downstream consumers (trend detection, frequent-graph mining)
// subscribe to fact-level change events.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"nous/internal/graph"
	"nous/internal/ontology"
	"nous/internal/temporal"
)

// Provenance records where a fact came from.
type Provenance struct {
	Source   string    // data source, e.g. "yago", "wsj"
	DocID    string    // document identifier within the source
	Sentence string    // supporting sentence (empty for curated facts)
	Time     time.Time // publication / observation time
}

// Triple is one (subject, predicate, object) fact with types, confidence and
// provenance. Confidence is in [0,1]; curated facts conventionally carry 1.
type Triple struct {
	Subject     string
	Predicate   string
	Object      string
	SubjectType ontology.EntityType
	ObjectType  ontology.EntityType
	Confidence  float64
	Curated     bool
	Provenance  Provenance
}

// FactID identifies a fact stored in the KG.
type FactID = graph.EdgeID

// Fact is a stored triple plus its ID and endpoint vertex IDs.
type Fact struct {
	ID       FactID
	Src, Dst graph.VertexID
	Triple
}

// Event is a fact-level change notification.
type Event struct {
	Kind EventKind
	Fact Fact
}

// EventKind distinguishes additions from evictions.
type EventKind int

// Event kinds.
const (
	FactAdded EventKind = iota
	FactEvicted
)

// KG is the dynamic knowledge graph. All methods are safe for concurrent
// use.
type KG struct {
	mu sync.RWMutex

	g   *graph.Graph
	ont *ontology.Ontology

	byName  map[string]graph.VertexID // canonical name -> vertex
	byAlias map[string][]string       // lowercase alias -> canonical names
	names   map[graph.VertexID]string

	facts map[FactID]*Fact
	// tix is the per-shard time-ordered edge index, kept in sync through the
	// graph's mutation stream. It serves windowed reads and drives
	// EvictBefore: eviction reads the index prefix strictly before the
	// cutoff, so the KG needs no separate insertion-order timeline.
	tix *temporal.Index
	// undated holds extracted facts with no provenance time. Their edges
	// carry the timeless sentinel timestamp, which the index's dated reads
	// skip, so EvictBefore sweeps this set separately — undated extracted
	// knowledge counts as infinitely old, exactly as the removed timeline
	// path treated it.
	undated map[FactID]struct{}

	listeners []func(Event)
}

// NewKG returns an empty KG over the given ontology. A nil ontology gets the
// default.
func NewKG(ont *ontology.Ontology) *KG {
	if ont == nil {
		ont = ontology.Default()
	}
	kg := &KG{
		g:       graph.New(),
		ont:     ont,
		undated: make(map[FactID]struct{}),
		byName:  make(map[string]graph.VertexID),
		byAlias: make(map[string][]string),
		names:   make(map[graph.VertexID]string),
		facts:   make(map[FactID]*Fact),
	}
	kg.tix = temporal.Attach(kg.g)
	return kg
}

// Graph exposes the underlying property graph (for algorithms such as
// PageRank and path search). Callers must not remove edges directly.
func (kg *KG) Graph() *graph.Graph { return kg.g }

// TemporalIndex exposes the KG's time-ordered edge index. The index is owned
// by the KG (attached at construction, rebuilt by Rebuild) and shared with
// every windowed consumer.
func (kg *KG) TemporalIndex() *temporal.Index { return kg.tix }

// Ontology returns the KG's ontology.
func (kg *KG) Ontology() *ontology.Ontology { return kg.ont }

// Subscribe registers fn to receive fact change events. fn is invoked
// synchronously; it must not call back into the KG.
func (kg *KG) Subscribe(fn func(Event)) {
	kg.mu.Lock()
	defer kg.mu.Unlock()
	kg.listeners = append(kg.listeners, fn)
}

// AddEntity registers an entity with a canonical name, a type and optional
// aliases, returning its vertex ID. Adding an existing name returns the
// existing vertex (aliases are merged; a more specific type overwrites a
// generic one).
func (kg *KG) AddEntity(name string, typ ontology.EntityType, aliases ...string) graph.VertexID {
	kg.mu.Lock()
	defer kg.mu.Unlock()
	return kg.addEntityLocked(name, typ, aliases...)
}

func (kg *KG) addEntityLocked(name string, typ ontology.EntityType, aliases ...string) graph.VertexID {
	if typ == "" {
		typ = ontology.TypeAny
	}
	id, ok := kg.byName[name]
	if !ok {
		id = kg.g.AddVertexWithProps(string(typ), map[string]string{"name": name})
		kg.byName[name] = id
		kg.names[id] = name
		kg.addAliasLocked(name, name)
	} else if typ != ontology.TypeAny {
		if v, ok := kg.g.Vertex(id); ok && v.Label == string(ontology.TypeAny) {
			// Upgrade a generic placeholder to the specific type by
			// re-labeling through the props API.
			kg.g.SetVertexProp(id, "type", string(typ))
		}
	}
	for _, a := range aliases {
		kg.addAliasLocked(a, name)
	}
	return id
}

func (kg *KG) addAliasLocked(alias, canonical string) {
	key, added := kg.registerAliasLocked(alias, canonical)
	if !added {
		return
	}
	// Mirror the binding onto the canonical entity's vertex so the alias
	// index — which lives only in this KG wrapper — can be rebuilt from a
	// recovered graph (see Rebuild). The entity's own name needs no mirror:
	// rebuilding re-derives the self-alias.
	if key == strings.ToLower(strings.TrimSpace(canonical)) {
		return
	}
	if id, ok := kg.byName[canonical]; ok {
		if cur, _ := kg.g.VertexProp(id, aliasesProp); cur == "" {
			kg.g.SetVertexProp(id, aliasesProp, key)
		} else {
			kg.g.SetVertexProp(id, aliasesProp, cur+aliasesSep+key)
		}
	}
}

// registerAliasLocked adds the binding to the in-memory alias index only,
// reporting the normalized key and whether it was new. Rebuild uses it
// directly: recovered bindings are already mirrored in the graph.
func (kg *KG) registerAliasLocked(alias, canonical string) (key string, added bool) {
	key = strings.ToLower(strings.TrimSpace(alias))
	if key == "" {
		return key, false
	}
	for _, n := range kg.byAlias[key] {
		if n == canonical {
			return key, false
		}
	}
	kg.byAlias[key] = append(kg.byAlias[key], canonical)
	return key, true
}

// aliasesProp is the vertex property mirroring an entity's alias set;
// aliasesSep (US, 0x1f) separates the entries. Both are private to the
// KG ↔ graph mapping.
const (
	aliasesProp = "aliases"
	aliasesSep  = "\x1f"
)

// Entity returns the vertex ID for a canonical name.
func (kg *KG) Entity(name string) (graph.VertexID, bool) {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	id, ok := kg.byName[name]
	return id, ok
}

// EntityName returns the canonical name of a vertex.
func (kg *KG) EntityName(id graph.VertexID) (string, bool) {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	n, ok := kg.names[id]
	return n, ok
}

// EntityType returns the type of an entity by name.
func (kg *KG) EntityType(name string) (ontology.EntityType, bool) {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	id, ok := kg.byName[name]
	if !ok {
		return "", false
	}
	v, ok := kg.g.Vertex(id)
	if !ok {
		return "", false
	}
	if t, ok2 := v.Props["type"]; ok2 {
		return ontology.EntityType(t), true
	}
	return ontology.EntityType(v.Label), true
}

// Candidates returns the canonical names whose alias set contains the given
// surface form (case-insensitive), plus prefix-token fallback matches
// ("DJI" matches alias "dji technology").
func (kg *KG) Candidates(surface string) []string {
	key := strings.ToLower(strings.TrimSpace(surface))
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, n := range kg.byAlias[key] {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	// fallback: alias token-prefix match for multiword aliases
	if len(out) == 0 && key != "" {
		for alias, names := range kg.byAlias {
			if strings.HasPrefix(alias, key+" ") || strings.HasSuffix(alias, " "+key) {
				for _, n := range names {
					if !seen[n] {
						seen[n] = true
						out = append(out, n)
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// ForEachAlias calls fn for every (alias, canonical, type) binding. Used to
// build NER gazetteers from the curated KB.
func (kg *KG) ForEachAlias(fn func(alias, canonical string, typ ontology.EntityType)) {
	kg.mu.RLock()
	type binding struct {
		alias, canonical string
	}
	var all []binding
	for alias, names := range kg.byAlias {
		for _, n := range names {
			all = append(all, binding{alias, n})
		}
	}
	kg.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].alias != all[j].alias {
			return all[i].alias < all[j].alias
		}
		return all[i].canonical < all[j].canonical
	})
	for _, b := range all {
		typ, _ := kg.EntityType(b.canonical)
		fn(b.alias, b.canonical, typ)
	}
}

// Entities returns all canonical entity names, sorted.
func (kg *KG) Entities() []string {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	out := make([]string, 0, len(kg.byName))
	for n := range kg.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NormalizeTriple validates a triple against the ontology, fills default
// endpoint types from the predicate signature and clamps confidence — the
// exact admission rule AddFact applies. It does not touch KG state beyond
// the (immutable) ontology, so it is safe without the KG lock.
func (kg *KG) NormalizeTriple(t Triple) (Triple, error) {
	if t.Subject == "" || t.Object == "" {
		return t, fmt.Errorf("core: fact with empty subject or object: %+v", t)
	}
	p, ok := kg.ont.Predicate(t.Predicate)
	if !ok {
		return t, fmt.Errorf("core: unknown predicate %q", t.Predicate)
	}
	if t.SubjectType == "" {
		t.SubjectType = p.Domain
	}
	if t.ObjectType == "" {
		t.ObjectType = p.Range
	}
	if !kg.ont.Compatible(t.Predicate, t.SubjectType, t.ObjectType) {
		return t, fmt.Errorf("core: triple (%s %s %s) violates %s(%s,%s)",
			t.Subject, t.Predicate, t.Object, t.Predicate, p.Domain, p.Range)
	}
	if t.Confidence < 0 {
		t.Confidence = 0
	}
	if t.Confidence > 1 {
		t.Confidence = 1
	}
	// Provenance time is stored on the edge as unix seconds: that is the
	// granularity that survives a WAL replay, a snapshot restore and
	// replication to a follower. Truncate at admission so the in-memory fact
	// equals its durable round-trip — a leader and its replicas must answer
	// with identical bytes. The zero time (undated) stays exactly zero.
	if !t.Provenance.Time.IsZero() {
		t.Provenance.Time = time.Unix(t.Provenance.Time.Unix(), 0)
	}
	return t, nil
}

// AddFact stores a triple, creating entities as needed, and returns the fact
// ID. Unknown predicates are rejected; type-incompatible triples are
// rejected. Confidence is clamped to [0,1].
func (kg *KG) AddFact(t Triple) (FactID, error) {
	ids, errs := kg.AddFacts([]Triple{t})
	if errs[0] != nil {
		return 0, errs[0]
	}
	return ids[0], nil
}

// AddFacts stores a batch of triples under one KG lock acquisition and one
// bulk write to the sharded graph (each shard lock taken once per batch
// rather than once per fact). It returns parallel slices: ids[i] is valid
// iff errs[i] is nil. Facts are stored, and change events emitted, in batch
// order.
func (kg *KG) AddFacts(ts []Triple) ([]FactID, []error) {
	ids := make([]FactID, len(ts))
	errs := make([]error, len(ts))
	if len(ts) == 0 {
		return ids, errs
	}

	kg.mu.Lock()
	defer kg.mu.Unlock()

	valid := make([]int, 0, len(ts)) // indexes into ts that passed validation
	norm := make([]Triple, 0, len(ts))
	specs := make([]graph.EdgeSpec, 0, len(ts))
	endpoints := make([][2]graph.VertexID, 0, len(ts))
	for i := range ts {
		t, err := kg.NormalizeTriple(ts[i])
		if err != nil {
			errs[i] = err
			continue
		}
		src := kg.addEntityLocked(t.Subject, t.SubjectType)
		dst := kg.addEntityLocked(t.Object, t.ObjectType)
		props := map[string]string{
			"source": t.Provenance.Source,
			"doc":    t.Provenance.DocID,
			// The triple's endpoint types are not derivable from the
			// vertices (a predicate signature can be broader than the
			// entity's registered type), so persist them on the edge for
			// recovery (see Rebuild).
			"stype": string(t.SubjectType),
			"otype": string(t.ObjectType),
		}
		if t.Curated {
			props["curated"] = "true"
		}
		if t.Provenance.Sentence != "" {
			props["sentence"] = t.Provenance.Sentence
		}
		valid = append(valid, i)
		norm = append(norm, t)
		specs = append(specs, graph.EdgeSpec{
			Src: src, Dst: dst, Label: t.Predicate,
			Weight: t.Confidence, Timestamp: t.Provenance.Time.Unix(), Props: props,
		})
		endpoints = append(endpoints, [2]graph.VertexID{src, dst})
	}

	eids, err := kg.g.AddEdges(specs)
	if err != nil {
		// Unreachable in practice: the entities were just created above and
		// vertices are never removed. Surface it per-triple regardless.
		for _, i := range valid {
			errs[i] = err
		}
		return ids, errs
	}
	for j, i := range valid {
		f := &Fact{ID: eids[j], Src: endpoints[j][0], Dst: endpoints[j][1], Triple: norm[j]}
		kg.facts[f.ID] = f
		if undatedFact(f) {
			kg.undated[f.ID] = struct{}{}
		}
		ids[i] = f.ID
		kg.notifyLocked(Event{Kind: FactAdded, Fact: *f})
	}
	return ids, errs
}

// PredicatesBetween returns the distinct predicates of facts from subject to
// object, sorted. It is the lookup distant supervision uses to label raw
// extractions with known KB relations.
func (kg *KG) PredicatesBetween(subject, object string) []string {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	s, ok1 := kg.byName[subject]
	o, ok2 := kg.byName[object]
	if !ok1 || !ok2 {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range kg.g.FindEdges(s, o, "") {
		if !seen[e.Label] {
			seen[e.Label] = true
			out = append(out, e.Label)
		}
	}
	sort.Strings(out)
	return out
}

// HasFact reports whether a (subject, predicate, object) fact exists.
func (kg *KG) HasFact(subject, predicate, object string) bool {
	return kg.HasFactWindow(subject, predicate, object, temporal.All())
}

// HasFactWindow reports whether a (subject, predicate, object) fact exists
// inside the window (curated facts qualify in any window).
func (kg *KG) HasFactWindow(subject, predicate, object string, w temporal.Window) bool {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	s, ok1 := kg.byName[subject]
	o, ok2 := kg.byName[object]
	if !ok1 || !ok2 {
		return false
	}
	edges := kg.g.FindEdges(s, o, predicate)
	if !w.Bounded() {
		return len(edges) > 0
	}
	for _, e := range edges {
		// An edge with no fact record (impossible through AddFacts, but kept
		// for parity with the unwindowed read) counts as present.
		if f, ok := kg.facts[e.ID]; !ok || factInWindow(f, w) {
			return true
		}
	}
	return false
}

// Fact returns the stored fact by ID.
func (kg *KG) Fact(id FactID) (Fact, bool) {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	f, ok := kg.facts[id]
	if !ok {
		return Fact{}, false
	}
	return *f, true
}

// SetConfidence updates a fact's confidence (e.g. after link-prediction
// scoring) and mirrors it onto the edge weight.
func (kg *KG) SetConfidence(id FactID, c float64) bool {
	kg.mu.Lock()
	defer kg.mu.Unlock()
	f, ok := kg.facts[id]
	if !ok {
		return false
	}
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	f.Confidence = c
	return kg.g.SetEdgeWeight(id, c)
}

// RemoveFact deletes a fact (without emitting an eviction event; use
// EvictBefore for windowed eviction).
func (kg *KG) RemoveFact(id FactID) bool {
	kg.mu.Lock()
	defer kg.mu.Unlock()
	return kg.removeLocked(id)
}

// removeLocked deletes the fact record and its edge. The edge removal's
// mutation keeps the temporal index in sync.
func (kg *KG) removeLocked(id FactID) bool {
	if _, ok := kg.facts[id]; !ok {
		return false
	}
	delete(kg.facts, id)
	delete(kg.undated, id)
	return kg.g.RemoveEdge(id)
}

// undatedFact reports whether an extracted fact carries no usable
// provenance time (its edge sits at or before the timeless sentinel, so
// DatedIn never returns it).
func undatedFact(f *Fact) bool {
	return !f.Curated && f.Provenance.Time.Unix() <= temporal.Timeless
}

// EvictBefore removes extracted (non-curated) facts observed strictly before
// cutoff and emits FactEvicted events. It returns the number evicted.
// Curated facts are never evicted: the paper fuses a persistent curated KB
// with a sliding window of extracted knowledge. Eviction candidates come off
// the temporal index — the dated prefix strictly before the cutoff — so no
// parallel insertion-order timeline (or its compaction bookkeeping) is
// needed. DatedIn skips the curated substrate (timeless sentinel
// timestamps) entirely, so the per-call cost scales with the evictable
// facts, not the curated KB; a dated-but-curated fact is skipped by flag.
// Extracted facts with no provenance time count as infinitely old (they sit
// on the sentinel, outside every dated read) and are swept from their own
// set.
func (kg *KG) EvictBefore(cutoff time.Time) int {
	kg.mu.Lock()
	defer kg.mu.Unlock()
	cut := cutoff.Unix()
	n := 0
	for _, id := range kg.tix.DatedIn(temporal.Window{Since: math.MinInt64, Until: cut}) {
		f, ok := kg.facts[id]
		if !ok || f.Curated {
			continue
		}
		kg.removeLocked(id)
		kg.notifyLocked(Event{Kind: FactEvicted, Fact: *f})
		n++
	}
	if temporal.Timeless < cut {
		for id := range kg.undated {
			f, ok := kg.facts[id]
			if !ok {
				delete(kg.undated, id)
				continue
			}
			kg.removeLocked(id)
			kg.notifyLocked(Event{Kind: FactEvicted, Fact: *f})
			n++
		}
	}
	return n
}

// factInWindow is the fact-level read-view rule mirroring
// temporal.Window.ContainsEdge: curated facts are timeless background
// knowledge and always in scope; extracted facts are scoped by provenance
// time. The unbounded window admits everything without touching the fact.
func factInWindow(f *Fact, w temporal.Window) bool {
	if w.IsAll() || f.Curated {
		return true
	}
	return w.Contains(f.Provenance.Time.Unix())
}

// FactsAbout returns all facts in which the named entity is subject or
// object, ordered by descending confidence then ID.
func (kg *KG) FactsAbout(name string) []Fact {
	return kg.FactsAboutWindow(name, temporal.All())
}

// FactsAboutWindow is FactsAbout restricted to the window: curated facts
// always qualify, extracted facts only when their provenance time lies in
// [w.Since, w.Until). The unbounded window returns exactly FactsAbout.
func (kg *KG) FactsAboutWindow(name string, w temporal.Window) []Fact {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	id, ok := kg.byName[name]
	if !ok {
		return nil
	}
	var out []Fact
	for _, e := range kg.g.Edges(id) {
		if f, ok := kg.facts[e.ID]; ok && factInWindow(f, w) {
			out = append(out, *f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// FactsByPredicate returns all facts with the given predicate, ordered by ID.
func (kg *KG) FactsByPredicate(pred string) []Fact {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	var out []Fact
	for _, e := range kg.g.EdgesByLabel(pred) {
		if f, ok := kg.facts[e.ID]; ok {
			out = append(out, *f)
		}
	}
	return out
}

// AllFacts returns every stored fact ordered by ID.
func (kg *KG) AllFacts() []Fact {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	out := make([]Fact, 0, len(kg.facts))
	for _, f := range kg.facts {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumFacts returns the number of stored facts.
func (kg *KG) NumFacts() int {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	return len(kg.facts)
}

// NumEntities returns the number of registered entities.
func (kg *KG) NumEntities() int {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	return len(kg.byName)
}

// ObjectsOf returns the object names of facts (subject, pred, *), with their
// confidences.
func (kg *KG) ObjectsOf(subject, pred string) []ScoredEntity {
	return kg.ObjectsOfWindow(subject, pred, temporal.All())
}

// ObjectsOfWindow is ObjectsOf restricted to the window.
func (kg *KG) ObjectsOfWindow(subject, pred string, w temporal.Window) []ScoredEntity {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	id, ok := kg.byName[subject]
	if !ok {
		return nil
	}
	var out []ScoredEntity
	windowed := w.Bounded() // skip the per-edge fact lookup on the hot path
	kg.g.ForEachOutEdge(id, func(e graph.Edge) bool {
		if pred == "" || e.Label == pred {
			if windowed {
				if f, ok := kg.facts[e.ID]; ok && !factInWindow(f, w) {
					return true
				}
			}
			if n, ok := kg.names[e.Dst]; ok {
				out = append(out, ScoredEntity{Name: n, Score: e.Weight})
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SubjectsOf returns the subject names of facts (*, pred, object).
func (kg *KG) SubjectsOf(pred, object string) []ScoredEntity {
	return kg.SubjectsOfWindow(pred, object, temporal.All())
}

// SubjectsOfWindow is SubjectsOf restricted to the window.
func (kg *KG) SubjectsOfWindow(pred, object string, w temporal.Window) []ScoredEntity {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	id, ok := kg.byName[object]
	if !ok {
		return nil
	}
	var out []ScoredEntity
	windowed := w.Bounded() // skip the per-edge fact lookup on the hot path
	kg.g.ForEachInEdge(id, func(e graph.Edge) bool {
		if pred == "" || e.Label == pred {
			if windowed {
				if f, ok := kg.facts[e.ID]; ok && !factInWindow(f, w) {
					return true
				}
			}
			if n, ok := kg.names[e.Src]; ok {
				out = append(out, ScoredEntity{Name: n, Score: e.Weight})
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ScoredEntity pairs an entity name with a score (confidence, rank, …).
type ScoredEntity struct {
	Name  string
	Score float64
}

// Neighborhood returns the set of entity names within the given number of
// hops of the named entity (excluding itself), treating edges as undirected.
func (kg *KG) Neighborhood(name string, hops int) []string {
	kg.mu.RLock()
	id, ok := kg.byName[name]
	kg.mu.RUnlock()
	if !ok || hops <= 0 {
		return nil
	}
	dist := graph.SSSP(kg.g, id)
	var out []string
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	for v, d := range dist {
		if d > 0 && d <= hops {
			if n, ok := kg.names[v]; ok {
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out
}

func (kg *KG) notifyLocked(ev Event) {
	for _, fn := range kg.listeners {
		fn(ev)
	}
}
