package core

import (
	"fmt"
	"strings"
	"time"

	"nous/internal/graph"
)

// ApplyReplicated applies one leader-authored mutation to a follower KG: the
// graph mutation goes through graph.ApplyReplicated (which adopts the
// leader's epoch stamp and feeds the attached temporal index), then the KG's
// own index layer — entity name maps, alias index, fact records, the undated
// set — is maintained incrementally with the same derivations Rebuild uses
// on a full scan. Fact-level listeners see FactAdded/FactEvicted exactly as
// they would on a leader, so miners and detectors stay live on a replica.
//
// Duplicate delivery (a resumed stream re-sending applied records) converges:
// adds of known facts and removes/updates of unknown ones are no-ops.
func (kg *KG) ApplyReplicated(m graph.Mutation) error {
	kg.mu.Lock()
	defer kg.mu.Unlock()
	if err := kg.g.ApplyReplicated(m); err != nil {
		return err
	}
	switch m.Kind {
	case graph.MutAddVertex:
		kg.replicateVertexLocked(m.Vertex)
	case graph.MutSetVertexProp:
		if m.Key == aliasesProp {
			if name, ok := kg.names[m.VertexID]; ok {
				for _, a := range strings.Split(m.Value, aliasesSep) {
					kg.registerAliasLocked(a, name)
				}
			}
		}
	case graph.MutAddEdges:
		return kg.replicateEdgesLocked(m.Edges)
	case graph.MutRemoveEdge:
		if f, ok := kg.facts[m.EdgeID]; ok {
			ev := *f
			delete(kg.facts, m.EdgeID)
			delete(kg.undated, m.EdgeID)
			kg.notifyLocked(Event{Kind: FactEvicted, Fact: ev})
		}
	case graph.MutSetEdgeWeight:
		if f, ok := kg.facts[m.EdgeID]; ok {
			f.Confidence = m.Weight
		}
	case graph.MutSetEdgeProp:
		if f, ok := kg.facts[m.EdgeID]; ok {
			kg.replicateEdgePropLocked(f, m.Key, m.Value)
		}
	}
	return nil
}

// replicateVertexLocked registers a replicated vertex in the entity indexes.
// A vertex whose name is already bound (duplicate delivery, or the bootstrap
// snapshot already held it) is left alone; a nameless vertex has no entity
// identity and is indexed by the graph layer only.
func (kg *KG) replicateVertexLocked(v graph.Vertex) {
	name := v.Props["name"]
	if name == "" {
		return
	}
	if _, dup := kg.byName[name]; dup {
		return
	}
	kg.byName[name] = v.ID
	kg.names[v.ID] = name
	kg.registerAliasLocked(name, name)
	if aliases := v.Props[aliasesProp]; aliases != "" {
		for _, a := range strings.Split(aliases, aliasesSep) {
			kg.registerAliasLocked(a, name)
		}
	}
}

// replicateEdgesLocked materializes fact records for a replicated edge
// batch, using the same field derivations Rebuild applies to a recovered
// edge. Edges whose fact already exists are skipped without an event.
func (kg *KG) replicateEdgesLocked(edges []graph.Edge) error {
	for _, e := range edges {
		if _, dup := kg.facts[e.ID]; dup {
			continue
		}
		subj, ok1 := kg.names[e.Src]
		obj, ok2 := kg.names[e.Dst]
		if !ok1 || !ok2 {
			return fmt.Errorf("core: replicated edge %d references unnamed vertices (%d -> %d)", e.ID, e.Src, e.Dst)
		}
		f := &Fact{
			ID:  e.ID,
			Src: e.Src,
			Dst: e.Dst,
			Triple: Triple{
				Subject:     subj,
				Predicate:   e.Label,
				Object:      obj,
				SubjectType: kg.factTypeLocked(e.Props["stype"], e.Src),
				ObjectType:  kg.factTypeLocked(e.Props["otype"], e.Dst),
				Confidence:  e.Weight,
				Curated:     e.Props["curated"] == "true",
				Provenance: Provenance{
					Source:   e.Props["source"],
					DocID:    e.Props["doc"],
					Sentence: e.Props["sentence"],
					Time:     time.Unix(e.Timestamp, 0),
				},
			},
		}
		kg.facts[e.ID] = f
		if undatedFact(f) {
			kg.undated[e.ID] = struct{}{}
		}
		kg.notifyLocked(Event{Kind: FactAdded, Fact: *f})
	}
	return nil
}

// replicateEdgePropLocked folds an edge property update into the stored
// fact, mirroring Rebuild's property-to-field mapping. Curated toggles also
// move the fact in or out of the undated set, whose membership depends on
// the flag.
func (kg *KG) replicateEdgePropLocked(f *Fact, key, value string) {
	switch key {
	case "source":
		f.Provenance.Source = value
	case "doc":
		f.Provenance.DocID = value
	case "sentence":
		f.Provenance.Sentence = value
	case "stype":
		f.SubjectType = kg.factTypeLocked(value, f.Src)
	case "otype":
		f.ObjectType = kg.factTypeLocked(value, f.Dst)
	case "curated":
		f.Curated = value == "true"
		if undatedFact(f) {
			kg.undated[f.ID] = struct{}{}
		} else {
			delete(kg.undated, f.ID)
		}
	}
}
