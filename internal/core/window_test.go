package core

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"nous/internal/temporal"
)

// TestRemoveFactKeepsIndexInSync removes every fact one by one and checks
// the temporal index (which now drives eviction) tracks the live fact set
// exactly — no stale entries, no leaks.
func TestRemoveFactKeepsIndexInSync(t *testing.T) {
	kg := NewKG(nil)
	const n = 100
	ids := make([]FactID, n)
	for i := 0; i < n; i++ {
		id, err := kg.AddFact(extracted("DJI", "acquired", fmt.Sprintf("Co %d", i), 0.8, day(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if got := kg.TemporalIndex().Len(); got != n {
		t.Fatalf("index = %d entries, want %d", got, n)
	}
	for i, id := range ids {
		if !kg.RemoveFact(id) {
			t.Fatalf("RemoveFact(%d) = false", id)
		}
		live := n - i - 1
		if got := kg.TemporalIndex().Len(); got != live {
			t.Fatalf("after %d removals index = %d entries, live = %d", i+1, got, live)
		}
	}
	// Eviction after heavy removal still works and stays empty.
	if evicted := kg.EvictBefore(day(200)); evicted != 0 {
		t.Fatalf("evicted %d facts from an empty KG", evicted)
	}
}

// TestEvictAfterPartialRemoval interleaves explicit removals with eviction
// passes: removed facts must not be re-evicted and every survivor stays
// evictable through the index-driven path.
func TestEvictAfterPartialRemoval(t *testing.T) {
	kg := NewKG(nil)
	const n = 10
	ids := make([]FactID, n)
	for i := 0; i < n; i++ {
		id, err := kg.AddFact(extracted("DJI", "acquired", fmt.Sprintf("Co %d", i), 0.8, day(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids[6:] {
		kg.RemoveFact(id)
	}
	if evicted := kg.EvictBefore(day(1)); evicted != 1 {
		t.Fatalf("evicted %d, want 1", evicted)
	}
	if kg.NumFacts() != 5 {
		t.Fatalf("facts = %d, want 5", kg.NumFacts())
	}
	// Every survivor is still evictable.
	if evicted := kg.EvictBefore(day(100)); evicted != 5 {
		t.Fatalf("final eviction removed %d, want 5", evicted)
	}
}

func TestRemoveFactThenEvictDoesNotDoubleCount(t *testing.T) {
	kg := NewKG(nil)
	a, _ := kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.8, day(1)))
	if _, err := kg.AddFact(extracted("DJI", "acquired", "RoboPix", 0.8, day(2))); err != nil {
		t.Fatal(err)
	}
	kg.RemoveFact(a)
	if n := kg.EvictBefore(day(10)); n != 1 {
		t.Fatalf("evicted %d, want 1 (removed fact must not be re-evicted)", n)
	}
}

func TestConcurrentRemoveFactAndAdd(t *testing.T) {
	kg := NewKG(nil)
	const workers, perWorker = 4, 50
	idCh := make(chan FactID, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id, err := kg.AddFact(extracted("DJI", "acquired",
					fmt.Sprintf("Co %d-%d", w, i), 0.8, day(i)))
				if err != nil {
					t.Error(err)
					return
				}
				idCh <- id
			}
		}(w)
	}
	var rg sync.WaitGroup
	removed := 0
	rg.Add(1)
	go func() {
		defer rg.Done()
		for id := range idCh {
			// Remove every other fact while writers keep adding; double
			// removal must report false, not corrupt state.
			if removed%2 == 0 {
				if !kg.RemoveFact(id) {
					t.Errorf("RemoveFact(%d) = false for a live fact", id)
				}
				if kg.RemoveFact(id) {
					t.Errorf("double RemoveFact(%d) = true", id)
				}
			}
			removed++
		}
	}()
	wg.Wait()
	close(idCh)
	rg.Wait()

	if kg.NumFacts() != kg.Graph().NumEdges() {
		t.Fatalf("facts %d != edges %d", kg.NumFacts(), kg.Graph().NumEdges())
	}
	// The eviction index tracks exactly the surviving facts.
	kg.EvictBefore(day(-1))
	if kg.TemporalIndex().Len() != kg.NumFacts() {
		t.Fatalf("index %d entries != %d facts", kg.TemporalIndex().Len(), kg.NumFacts())
	}
}

func TestFactsAboutWindow(t *testing.T) {
	kg := NewKG(nil)
	if _, err := kg.AddFact(curated("DJI", "manufactures", "Phantom 3")); err != nil {
		t.Fatal(err)
	}
	if _, err := kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.9, day(5))); err != nil {
		t.Fatal(err)
	}
	if _, err := kg.AddFact(extracted("DJI", "acquired", "RoboPix", 0.8, day(20))); err != nil {
		t.Fatal(err)
	}

	// Unbounded window == FactsAbout exactly.
	all := kg.FactsAbout("DJI")
	if got := kg.FactsAboutWindow("DJI", temporal.All()); !reflect.DeepEqual(got, all) {
		t.Fatalf("All window diverges: %+v vs %+v", got, all)
	}
	// A window around day 5 keeps the curated fact and the day-5 extraction.
	w := temporal.Between(day(0), day(10))
	got := kg.FactsAboutWindow("DJI", w)
	if len(got) != 2 {
		t.Fatalf("windowed facts = %+v, want curated + day-5", got)
	}
	for _, f := range got {
		if f.Object == "RoboPix" {
			t.Fatal("out-of-window fact leaked")
		}
	}
	// Fact-level windowed lookups agree.
	if !kg.HasFactWindow("DJI", "acquired", "Aeros", w) {
		t.Fatal("in-window fact not found")
	}
	if kg.HasFactWindow("DJI", "acquired", "RoboPix", w) {
		t.Fatal("out-of-window fact reported present")
	}
	if objs := kg.ObjectsOfWindow("DJI", "acquired", w); len(objs) != 1 || objs[0].Name != "Aeros" {
		t.Fatalf("ObjectsOfWindow = %+v", objs)
	}
	if subs := kg.SubjectsOfWindow("acquired", "RoboPix", w); len(subs) != 0 {
		t.Fatalf("SubjectsOfWindow leaked %+v", subs)
	}
	// Curated facts pass any window.
	if !kg.HasFactWindow("DJI", "manufactures", "Phantom 3", temporal.Between(day(100), day(200))) {
		t.Fatal("curated fact filtered by window")
	}
}

func TestExportJSONWindowFullRangeByteIdentical(t *testing.T) {
	kg := NewKG(nil)
	if _, err := kg.AddFact(curated("DJI", "manufactures", "Phantom 3")); err != nil {
		t.Fatal(err)
	}
	if _, err := kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.9, day(5))); err != nil {
		t.Fatal(err)
	}
	var plain, windowed, wide bytes.Buffer
	if err := kg.ExportJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if err := kg.ExportJSONWindow(&windowed, temporal.All()); err != nil {
		t.Fatal(err)
	}
	if err := kg.ExportJSONWindow(&wide, temporal.Window{Since: math.MinInt64 + 1, Until: math.MaxInt64 - 1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), windowed.Bytes()) {
		t.Fatal("full-range export differs from unwindowed export")
	}
	if !bytes.Equal(plain.Bytes(), wide.Bytes()) {
		t.Fatal("bounded all-covering export differs from unwindowed export")
	}
	// A narrow window drops the out-of-window extraction but keeps curated.
	var narrow bytes.Buffer
	if err := kg.ExportJSONWindow(&narrow, temporal.Between(day(100), day(101))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(narrow.Bytes(), []byte("Phantom 3")) || bytes.Contains(narrow.Bytes(), []byte("Aeros")) {
		t.Fatalf("narrow export wrong: %s", narrow.String())
	}
}
