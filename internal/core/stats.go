package core

import (
	"sort"
)

// Stats summarises the quality-related statistics the NOUS demo surfaces
// (demo feature 2: "summarization of quality-related statistics such as
// confidence distributions").
type Stats struct {
	Entities       int
	Facts          int
	CuratedFacts   int
	ExtractedFacts int
	// PredicateCounts maps predicate -> fact count.
	PredicateCounts map[string]int
	// SourceCounts maps provenance source -> fact count.
	SourceCounts map[string]int
	// ConfidenceHistogram has 10 buckets: [0,0.1), [0.1,0.2), … [0.9,1.0].
	ConfidenceHistogram [10]int
	// MeanConfidence over extracted facts (curated facts are pinned at 1).
	MeanConfidence float64
}

// Stats computes the current quality statistics.
func (kg *KG) Stats() Stats {
	kg.mu.RLock()
	defer kg.mu.RUnlock()
	s := Stats{
		Entities:        len(kg.byName),
		Facts:           len(kg.facts),
		PredicateCounts: make(map[string]int),
		SourceCounts:    make(map[string]int),
	}
	sum, n := 0.0, 0
	for _, f := range kg.facts {
		s.PredicateCounts[f.Predicate]++
		s.SourceCounts[f.Provenance.Source]++
		if f.Curated {
			s.CuratedFacts++
		} else {
			s.ExtractedFacts++
			sum += f.Confidence
			n++
		}
		b := int(f.Confidence * 10)
		if b > 9 {
			b = 9
		}
		if b < 0 {
			b = 0
		}
		s.ConfidenceHistogram[b]++
	}
	if n > 0 {
		s.MeanConfidence = sum / float64(n)
	}
	return s
}

// TopPredicates returns the k most frequent predicates with counts.
func (s Stats) TopPredicates(k int) []ScoredEntity {
	out := make([]ScoredEntity, 0, len(s.PredicateCounts))
	for p, c := range s.PredicateCounts {
		out = append(out, ScoredEntity{Name: p, Score: float64(c)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Name < out[j].Name
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
