package core

import (
	"fmt"
	"sync"
	"testing"
)

func TestAddFactsBatch(t *testing.T) {
	kg := NewKG(nil)
	var events []Event
	kg.Subscribe(func(ev Event) { events = append(events, ev) })

	ts := []Triple{
		curated("DJI", "manufactures", "Phantom 3"),
		curated("A", "notapred", "B"), // invalid: unknown predicate
		extracted("DJI", "acquired", "Parrot", 0.8, day(1)),
		curated("", "acquired", "X"), // invalid: empty subject
	}
	ids, errs := kg.AddFacts(ts)
	if len(ids) != 4 || len(errs) != 4 {
		t.Fatalf("parallel slices sized %d/%d, want 4/4", len(ids), len(errs))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("valid triples rejected: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil || errs[3] == nil {
		t.Fatal("invalid triples accepted")
	}
	if kg.NumFacts() != 2 {
		t.Fatalf("NumFacts = %d, want 2", kg.NumFacts())
	}
	f, ok := kg.Fact(ids[2])
	if !ok || f.Subject != "DJI" || f.Object != "Parrot" || f.Curated {
		t.Fatalf("Fact(ids[2]) = %+v, %v", f, ok)
	}
	// Events fire per stored fact, in batch order.
	if len(events) != 2 || events[0].Fact.Object != "Phantom 3" || events[1].Fact.Object != "Parrot" {
		t.Fatalf("events = %+v", events)
	}
	// Only the extracted fact is evictable.
	if n := kg.EvictBefore(day(10)); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
}

func TestAddFactsEmpty(t *testing.T) {
	kg := NewKG(nil)
	ids, errs := kg.AddFacts(nil)
	if len(ids) != 0 || len(errs) != 0 {
		t.Fatalf("nil batch returned %d ids, %d errs", len(ids), len(errs))
	}
}

func TestNormalizeTripleMatchesAddFact(t *testing.T) {
	kg := NewKG(nil)
	cases := []Triple{
		curated("DJI", "manufactures", "Phantom 3"),
		curated("A", "notapred", "B"),
		curated("", "acquired", "X"),
	}
	for i, tr := range cases {
		_, checkErr := kg.NormalizeTriple(tr)
		_, addErr := NewKG(nil).AddFact(tr)
		if (checkErr == nil) != (addErr == nil) {
			t.Errorf("case %d: NormalizeTriple=%v but AddFact=%v", i, checkErr, addErr)
		}
	}
}

// TestKGConcurrentBatchAndEvict drives the dynamic-KG workload —
// batch fact writes, windowed eviction and the read API — from many
// goroutines at once. Under -race this is the concurrency gate for the KG
// layer over the sharded graph store.
func TestKGConcurrentBatchAndEvict(t *testing.T) {
	kg := NewKG(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				batch := make([]Triple, 0, 5)
				for j := 0; j < 5; j++ {
					batch = append(batch, extracted(
						fmt.Sprintf("Co%d-%d", w, i), "acquired", fmt.Sprintf("Co%d-%d-t%d", w, i, j),
						0.9, day(i)))
				}
				if _, errs := kg.AddFacts(batch); errs[0] != nil {
					t.Error(errs[0])
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			kg.EvictBefore(day(i - 20))
		}
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				kg.NumFacts()
				kg.NumEntities()
				kg.FactsAbout(fmt.Sprintf("Co%d-%d", w, i))
				kg.HasFact(fmt.Sprintf("Co%d-%d", w, i), "acquired", fmt.Sprintf("Co%d-%d-t0", w, i))
				kg.Candidates(fmt.Sprintf("co%d-%d", w, i))
				kg.AllFacts()
			}
		}(w)
	}
	wg.Wait()

	// Quiesced: every surviving fact postdates the final eviction horizon.
	if n := kg.EvictBefore(day(19)); n < 0 {
		t.Fatalf("final eviction returned %d", n)
	}
	for _, f := range kg.AllFacts() {
		if !f.Curated && f.Provenance.Time.Before(day(19)) {
			t.Fatalf("stale fact survived eviction: %+v", f)
		}
	}
}
