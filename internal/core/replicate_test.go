package core

import (
	"reflect"
	"testing"
	"time"

	"nous/internal/graph"
)

// captureMutations records every graph-level mutation a leader KG emits, in
// order — the same stream a WAL-shipping follower would receive.
func captureMutations(kg *KG) *[]graph.Mutation {
	var muts []graph.Mutation
	kg.Graph().AddMutationHook(func(m graph.Mutation) {
		// Deep-copy the slices the graph may reuse.
		c := m
		if m.Edges != nil {
			c.Edges = append([]graph.Edge(nil), m.Edges...)
		}
		muts = append(muts, c)
	})
	return &muts
}

// normFacts re-encodes every provenance time through its Unix instant so
// leader facts (original time.Time values) and follower facts (reconstructed
// from edge timestamps) compare equal when they denote the same second.
func normFacts(fs []Fact) []Fact {
	out := append([]Fact(nil), fs...)
	for i := range out {
		out[i].Provenance.Time = time.Unix(out[i].Provenance.Time.Unix(), 0)
	}
	return out
}

func leaderFixture(t *testing.T) (*KG, *[]graph.Mutation) {
	t.Helper()
	kg := NewKG(nil)
	muts := captureMutations(kg)
	kg.AddEntity("acme corp", "company", "acme", "acme inc")
	if _, err := kg.AddFact(Triple{
		Subject: "acme corp", Predicate: "acquired", Object: "globex",
		Confidence: 0.9, Curated: true,
		Provenance: Provenance{Source: "yago", DocID: "d1"},
	}); err != nil {
		t.Fatal(err)
	}
	id, err := kg.AddFact(Triple{
		Subject: "acme corp", Predicate: "partnersWith", Object: "initech",
		Confidence: 0.4,
		Provenance: Provenance{Source: "wsj", DocID: "d2", Sentence: "s", Time: time.Unix(1000, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !kg.SetConfidence(id, 0.7) {
		t.Fatal("SetConfidence failed")
	}
	// An undated extracted fact, later removed: the follower must see the
	// full lifecycle.
	rid, err := kg.AddFact(Triple{
		Subject: "globex", Predicate: "partnersWith", Object: "initech",
		Confidence: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !kg.RemoveFact(rid) {
		t.Fatal("RemoveFact failed")
	}
	return kg, muts
}

// TestKGApplyReplicatedConverges replays a leader's mutation stream into a
// fresh follower and checks every derived index matches the leader.
func TestKGApplyReplicatedConverges(t *testing.T) {
	leader, muts := leaderFixture(t)
	follower := NewKG(nil)
	var events []Event
	follower.Subscribe(func(ev Event) { events = append(events, ev) })
	for _, m := range *muts {
		if err := follower.ApplyReplicated(m); err != nil {
			t.Fatalf("ApplyReplicated(%v): %v", m.Kind, err)
		}
	}

	if got, want := follower.Entities(), leader.Entities(); !reflect.DeepEqual(got, want) {
		t.Fatalf("entities = %v, want %v", got, want)
	}
	if got, want := normFacts(follower.AllFacts()), normFacts(leader.AllFacts()); !reflect.DeepEqual(got, want) {
		t.Fatalf("facts = %+v, want %+v", got, want)
	}
	if got, want := follower.Candidates("acme inc"), leader.Candidates("acme inc"); !reflect.DeepEqual(got, want) {
		t.Fatalf("alias candidates = %v, want %v", got, want)
	}
	if got, want := follower.Graph().Epoch(), leader.Graph().Epoch(); got != want {
		t.Fatalf("epoch = %d, want %d", got, want)
	}
	if got, want := follower.TemporalIndex().Stats(), leader.TemporalIndex().Stats(); got != want {
		t.Fatalf("temporal stats = %+v, want %+v", got, want)
	}
	// The removed fact's lifecycle reached fact subscribers: three adds, one
	// eviction.
	var adds, evicts int
	for _, ev := range events {
		switch ev.Kind {
		case FactAdded:
			adds++
		case FactEvicted:
			evicts++
		}
	}
	if adds != 3 || evicts != 1 {
		t.Fatalf("follower saw %d adds, %d evicts; want 3 and 1", adds, evicts)
	}
}

// TestKGApplyReplicatedIdempotent replays the stream twice; the second pass
// must leave the follower byte-identical to the first.
func TestKGApplyReplicatedIdempotent(t *testing.T) {
	leader, muts := leaderFixture(t)
	follower := NewKG(nil)
	for _, m := range *muts {
		if err := follower.ApplyReplicated(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range *muts {
		if err := follower.ApplyReplicated(m); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := normFacts(follower.AllFacts()), normFacts(leader.AllFacts()); !reflect.DeepEqual(got, want) {
		t.Fatalf("facts after replay = %+v, want %+v", got, want)
	}
	if got, want := follower.NumEntities(), leader.NumEntities(); got != want {
		t.Fatalf("entities = %d, want %d", got, want)
	}
	if got, want := follower.Graph().Epoch(), leader.Graph().Epoch(); got != want {
		t.Fatalf("epoch = %d, want %d", got, want)
	}
}

// TestKGApplyReplicatedAfterBootstrap mirrors the real follower flow: restore
// a snapshot-equivalent prefix via Rebuild, then stream the suffix.
func TestKGApplyReplicatedAfterBootstrap(t *testing.T) {
	leader := NewKG(nil)
	muts := captureMutations(leader)
	if _, err := leader.AddFact(Triple{
		Subject: "acme corp", Predicate: "acquired", Object: "globex",
		Confidence: 1, Curated: true,
	}); err != nil {
		t.Fatal(err)
	}
	prefix := len(*muts)

	// Bootstrap: copy the leader's graph state wholesale, then Rebuild.
	follower := NewKG(nil)
	snap := leader.Graph().Snapshot()
	for _, vs := range snap.Vertices {
		follower.Graph().RestoreVertices(vs)
	}
	if err := follower.Graph().RestoreEdges(snap.Edges); err != nil {
		t.Fatal(err)
	}
	follower.Graph().AdvanceIDs(snap.NextVertex, snap.NextEdge)
	follower.Graph().SetEpoch(snap.Epoch)
	if err := follower.Rebuild(); err != nil {
		t.Fatal(err)
	}

	// Suffix arrives over the stream.
	if _, err := leader.AddFact(Triple{
		Subject: "globex", Predicate: "partnersWith", Object: "initech",
		Confidence: 0.5, Provenance: Provenance{Time: time.Unix(2000, 0)},
	}); err != nil {
		t.Fatal(err)
	}
	for _, m := range (*muts)[prefix:] {
		if err := follower.ApplyReplicated(m); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := normFacts(follower.AllFacts()), normFacts(leader.AllFacts()); !reflect.DeepEqual(got, want) {
		t.Fatalf("facts = %+v, want %+v", got, want)
	}
	if got, want := follower.Graph().Epoch(), leader.Graph().Epoch(); got != want {
		t.Fatalf("epoch = %d, want %d", got, want)
	}
}
