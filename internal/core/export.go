package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"nous/internal/temporal"
)

// ExportDOT writes a Graphviz rendering of the facts touching the given
// entities (or the whole KG when names is empty). Curated facts are drawn in
// red and extracted facts in blue with their confidence, matching the
// paper's Figure 2 color convention.
func (kg *KG) ExportDOT(w io.Writer, names ...string) error {
	facts := kg.selectFacts(names)
	var b strings.Builder
	b.WriteString("digraph nous {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	seen := map[string]bool{}
	for _, f := range facts {
		for _, n := range []string{f.Subject, f.Object} {
			if !seen[n] {
				seen[n] = true
				typ, _ := kg.EntityType(n)
				fmt.Fprintf(&b, "  %q [label=\"%s\\n(%s)\"];\n", n, escapeDOT(n), typ)
			}
		}
	}
	for _, f := range facts {
		color := "blue"
		label := fmt.Sprintf("%s p=%.2f", f.Predicate, f.Confidence)
		if f.Curated {
			color = "red"
			label = f.Predicate
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q, color=%s];\n", f.Subject, f.Object, label, color)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonFact is the wire form of a fact.
type jsonFact struct {
	Subject    string  `json:"subject"`
	Predicate  string  `json:"predicate"`
	Object     string  `json:"object"`
	Confidence float64 `json:"confidence"`
	Curated    bool    `json:"curated"`
	Source     string  `json:"source,omitempty"`
	DocID      string  `json:"doc,omitempty"`
	Sentence   string  `json:"sentence,omitempty"`
	Time       string  `json:"time,omitempty"`
}

// ExportJSON writes the selected facts as a JSON array.
func (kg *KG) ExportJSON(w io.Writer, names ...string) error {
	return kg.ExportJSONWindow(w, temporal.All(), names...)
}

// ExportJSONWindow is ExportJSON restricted to the window: curated facts
// always export, extracted facts only when their provenance time lies in the
// window. The unbounded window produces byte-identical output to ExportJSON.
func (kg *KG) ExportJSONWindow(w io.Writer, win temporal.Window, names ...string) error {
	facts := kg.selectFactsWindow(names, win)
	out := make([]jsonFact, 0, len(facts))
	for _, f := range facts {
		jf := jsonFact{
			Subject:    f.Subject,
			Predicate:  f.Predicate,
			Object:     f.Object,
			Confidence: f.Confidence,
			Curated:    f.Curated,
			Source:     f.Provenance.Source,
			DocID:      f.Provenance.DocID,
			Sentence:   f.Provenance.Sentence,
		}
		if !f.Provenance.Time.IsZero() {
			jf.Time = f.Provenance.Time.UTC().Format("2006-01-02")
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// selectFacts returns all facts when names is empty, otherwise the union of
// facts touching each named entity, de-duplicated and ordered by ID.
func (kg *KG) selectFacts(names []string) []Fact {
	return kg.selectFactsWindow(names, temporal.All())
}

// selectFactsWindow is selectFacts restricted to the window.
func (kg *KG) selectFactsWindow(names []string, win temporal.Window) []Fact {
	if len(names) == 0 {
		all := kg.AllFacts()
		if win.IsAll() {
			return all
		}
		kept := all[:0]
		for i := range all {
			if factInWindow(&all[i], win) {
				kept = append(kept, all[i])
			}
		}
		return kept
	}
	seen := map[FactID]bool{}
	var out []Fact
	for _, n := range names {
		for _, f := range kg.FactsAboutWindow(n, win) {
			if !seen[f.ID] {
				seen[f.ID] = true
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func escapeDOT(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}
