package core

import (
	"fmt"
	"strings"
	"time"

	"nous/internal/graph"
	"nous/internal/ontology"
)

// Rebuild reconstructs the KG's index layer — entity name maps, the alias
// index, fact records and the temporal edge index — from the underlying
// property graph. It is the second half of recovery: internal/persist
// restores the graph bytes, Rebuild re-derives everything this wrapper keeps
// outside the graph. The KG must be freshly constructed (no entities or
// facts); the graph is only read, never written, so rebuilding logs nothing
// to an attached WAL.
//
// Every field of every fact lives in the graph: names and aliases as vertex
// properties, predicate/confidence/provenance as the edge's label, weight,
// timestamp and properties. The temporal index is re-scanned from graph
// state because snapshot loads and WAL replay restore edges without
// emitting the mutations that normally keep it in sync.
func (kg *KG) Rebuild() error {
	kg.mu.Lock()
	defer kg.mu.Unlock()
	if len(kg.byName) != 0 || len(kg.facts) != 0 {
		return fmt.Errorf("core: Rebuild requires a fresh KG (%d entities, %d facts present)",
			len(kg.byName), len(kg.facts))
	}
	for _, id := range kg.g.VertexIDs() {
		v, ok := kg.g.Vertex(id)
		if !ok {
			continue
		}
		name := v.Props["name"]
		if name == "" {
			return fmt.Errorf("core: recovered vertex %d has no name property", id)
		}
		if prev, dup := kg.byName[name]; dup {
			return fmt.Errorf("core: recovered vertices %d and %d share the name %q", prev, id, name)
		}
		kg.byName[name] = id
		kg.names[id] = name
		kg.registerAliasLocked(name, name)
		if aliases := v.Props[aliasesProp]; aliases != "" {
			for _, a := range strings.Split(aliases, aliasesSep) {
				kg.registerAliasLocked(a, name)
			}
		}
	}
	for _, id := range kg.g.EdgeIDs() {
		e, ok := kg.g.Edge(id)
		if !ok {
			continue
		}
		subj, ok1 := kg.names[e.Src]
		obj, ok2 := kg.names[e.Dst]
		if !ok1 || !ok2 {
			return fmt.Errorf("core: recovered edge %d references unnamed vertices (%d -> %d)", id, e.Src, e.Dst)
		}
		f := &Fact{
			ID:  id,
			Src: e.Src,
			Dst: e.Dst,
			Triple: Triple{
				Subject:     subj,
				Predicate:   e.Label,
				Object:      obj,
				SubjectType: kg.factTypeLocked(e.Props["stype"], e.Src),
				ObjectType:  kg.factTypeLocked(e.Props["otype"], e.Dst),
				Confidence:  e.Weight,
				Curated:     e.Props["curated"] == "true",
				Provenance: Provenance{
					Source:   e.Props["source"],
					DocID:    e.Props["doc"],
					Sentence: e.Props["sentence"],
					Time:     time.Unix(e.Timestamp, 0),
				},
			},
		}
		kg.facts[id] = f
		if undatedFact(f) {
			kg.undated[id] = struct{}{}
		}
	}
	kg.tix.Rebuild()
	return nil
}

// factTypeLocked resolves a fact endpoint's type: the type recorded on the
// edge itself wins (a triple's endpoint type can be broader than the
// entity's registered type); the vertex's own type is the fallback.
func (kg *KG) factTypeLocked(recorded string, id graph.VertexID) ontology.EntityType {
	if recorded != "" {
		return ontology.EntityType(recorded)
	}
	v, ok := kg.g.Vertex(id)
	if !ok {
		return ontology.TypeAny
	}
	if t, ok := v.Props["type"]; ok {
		return ontology.EntityType(t)
	}
	return ontology.EntityType(v.Label)
}
