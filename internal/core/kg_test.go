package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"nous/internal/ontology"
)

func day(n int) time.Time {
	return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func curated(s, p, o string) Triple {
	return Triple{Subject: s, Predicate: p, Object: o, Confidence: 1, Curated: true,
		Provenance: Provenance{Source: "yago"}}
}

func extracted(s, p, o string, conf float64, t time.Time) Triple {
	return Triple{Subject: s, Predicate: p, Object: o, Confidence: conf,
		Provenance: Provenance{Source: "wsj", DocID: "d1", Sentence: s + " " + p + " " + o, Time: t}}
}

func TestAddFactCreatesEntities(t *testing.T) {
	kg := NewKG(nil)
	id, err := kg.AddFact(curated("DJI", "manufactures", "Phantom 3"))
	if err != nil {
		t.Fatal(err)
	}
	if kg.NumEntities() != 2 || kg.NumFacts() != 1 {
		t.Fatalf("entities=%d facts=%d", kg.NumEntities(), kg.NumFacts())
	}
	f, ok := kg.Fact(id)
	if !ok || f.Subject != "DJI" || f.Object != "Phantom 3" {
		t.Fatalf("Fact = %+v, %v", f, ok)
	}
	if typ, _ := kg.EntityType("DJI"); typ != ontology.TypeCompany {
		t.Errorf("subject type defaulted to %s, want Company", typ)
	}
	if typ, _ := kg.EntityType("Phantom 3"); typ != ontology.TypeProduct {
		t.Errorf("object type defaulted to %s, want Product", typ)
	}
}

func TestAddFactRejectsBadInput(t *testing.T) {
	kg := NewKG(nil)
	if _, err := kg.AddFact(curated("", "acquired", "X")); err == nil {
		t.Error("empty subject accepted")
	}
	if _, err := kg.AddFact(curated("A", "notapred", "B")); err == nil {
		t.Error("unknown predicate accepted")
	}
	bad := curated("Alice", "acquired", "Bob")
	bad.SubjectType = ontology.TypePerson
	bad.ObjectType = ontology.TypePerson
	if _, err := kg.AddFact(bad); err == nil {
		t.Error("type-incompatible triple accepted")
	}
}

func TestConfidenceClamping(t *testing.T) {
	kg := NewKG(nil)
	tr := extracted("A Corp", "acquired", "B Corp", 1.7, day(0))
	id, err := kg.AddFact(tr)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := kg.Fact(id); f.Confidence != 1 {
		t.Errorf("confidence not clamped: %v", f.Confidence)
	}
	kg.SetConfidence(id, -0.5)
	if f, _ := kg.Fact(id); f.Confidence != 0 {
		t.Errorf("SetConfidence not clamped: %v", f.Confidence)
	}
}

func TestHasFactAndLookups(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(curated("DJI", "headquarteredIn", "Shenzhen"))
	kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.8, day(1)))
	kg.AddFact(extracted("Parrot", "acquired", "Aeros", 0.3, day(2)))

	if !kg.HasFact("DJI", "acquired", "Aeros") {
		t.Error("HasFact missed existing fact")
	}
	if kg.HasFact("DJI", "acquired", "Shenzhen") {
		t.Error("HasFact invented a fact")
	}
	objs := kg.ObjectsOf("DJI", "")
	if len(objs) != 2 {
		t.Fatalf("ObjectsOf(DJI) = %v", objs)
	}
	if objs[0].Name != "Shenzhen" { // confidence 1 beats 0.8
		t.Errorf("expected Shenzhen first by confidence, got %v", objs)
	}
	subs := kg.SubjectsOf("acquired", "Aeros")
	if len(subs) != 2 || subs[0].Name != "DJI" {
		t.Errorf("SubjectsOf = %v", subs)
	}
}

func TestFactsAboutOrdering(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.2, day(1)))
	kg.AddFact(curated("DJI", "headquarteredIn", "Shenzhen"))
	facts := kg.FactsAbout("DJI")
	if len(facts) != 2 {
		t.Fatalf("FactsAbout = %d facts", len(facts))
	}
	if facts[0].Confidence < facts[1].Confidence {
		t.Error("facts not ordered by descending confidence")
	}
}

func TestEvictBeforeKeepsCurated(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(curated("DJI", "headquarteredIn", "Shenzhen"))
	kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.9, day(0)))
	kg.AddFact(extracted("DJI", "acquired", "RoboPix", 0.9, day(10)))

	var evicted []string
	kg.Subscribe(func(ev Event) {
		if ev.Kind == FactEvicted {
			evicted = append(evicted, ev.Fact.Object)
		}
	})
	n := kg.EvictBefore(day(5))
	if n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if len(evicted) != 1 || evicted[0] != "Aeros" {
		t.Fatalf("eviction events = %v", evicted)
	}
	if !kg.HasFact("DJI", "headquarteredIn", "Shenzhen") {
		t.Error("curated fact was evicted")
	}
	if kg.HasFact("DJI", "acquired", "Aeros") {
		t.Error("old extracted fact survived eviction")
	}
	if !kg.HasFact("DJI", "acquired", "RoboPix") {
		t.Error("in-window fact was evicted")
	}
}

func TestEvictBeforeSweepsUndatedExtracted(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(curated("DJI", "headquarteredIn", "Shenzhen"))
	// An extracted fact with no provenance time sits on the timeless
	// sentinel, outside every dated index read; eviction must still treat
	// it as infinitely old rather than leak it forever.
	kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.9, time.Time{}))
	kg.AddFact(extracted("DJI", "acquired", "RoboPix", 0.9, day(10)))

	if n := kg.EvictBefore(day(5)); n != 1 {
		t.Fatalf("evicted %d, want the undated fact only", n)
	}
	if kg.HasFact("DJI", "acquired", "Aeros") {
		t.Error("undated extracted fact survived eviction")
	}
	if !kg.HasFact("DJI", "headquarteredIn", "Shenzhen") {
		t.Error("curated fact was evicted")
	}
	if !kg.HasFact("DJI", "acquired", "RoboPix") {
		t.Error("in-window fact was evicted")
	}
	if n := kg.EvictBefore(day(5)); n != 0 {
		t.Fatalf("second evict = %d, want 0", n)
	}
}

func TestEvictBeforeIdempotent(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(extracted("A Co", "acquired", "B Co", 0.5, day(0)))
	if n := kg.EvictBefore(day(1)); n != 1 {
		t.Fatalf("first evict = %d", n)
	}
	if n := kg.EvictBefore(day(1)); n != 0 {
		t.Fatalf("second evict = %d, want 0", n)
	}
}

func TestSubscribeReceivesAdds(t *testing.T) {
	kg := NewKG(nil)
	var got []string
	kg.Subscribe(func(ev Event) {
		if ev.Kind == FactAdded {
			got = append(got, ev.Fact.Predicate)
		}
	})
	kg.AddFact(curated("DJI", "manufactures", "Phantom 3"))
	if len(got) != 1 || got[0] != "manufactures" {
		t.Fatalf("events = %v", got)
	}
}

func TestCandidatesAliases(t *testing.T) {
	kg := NewKG(nil)
	kg.AddEntity("DJI Technology Co.", ontology.TypeCompany, "DJI", "dji technology")
	kg.AddEntity("Dow Jones Index", ontology.TypeTopic, "DJI")
	cands := kg.Candidates("dji")
	if len(cands) != 2 {
		t.Fatalf("Candidates(dji) = %v, want both entities", cands)
	}
	if got := kg.Candidates("DJI Technology Co."); len(got) != 1 {
		t.Fatalf("exact name lookup = %v", got)
	}
}

func TestEntityTypeUpgrade(t *testing.T) {
	kg := NewKG(nil)
	kg.AddEntity("Windermere", ontology.TypeAny)
	kg.AddEntity("Windermere", ontology.TypeCompany)
	typ, ok := kg.EntityType("Windermere")
	if !ok || typ != ontology.TypeCompany {
		t.Fatalf("type = %v, %v; want Company", typ, ok)
	}
}

func TestNeighborhoodHops(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(curated("A Co", "acquired", "B Co"))
	kg.AddFact(curated("B Co", "acquired", "C Co"))
	kg.AddFact(curated("C Co", "acquired", "D Co"))
	nb1 := kg.Neighborhood("A Co", 1)
	if len(nb1) != 1 || nb1[0] != "B Co" {
		t.Fatalf("1-hop = %v", nb1)
	}
	nb2 := kg.Neighborhood("A Co", 2)
	if len(nb2) != 2 {
		t.Fatalf("2-hop = %v", nb2)
	}
}

func TestStats(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(curated("DJI", "headquarteredIn", "Shenzhen"))
	kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.35, day(1)))
	kg.AddFact(extracted("DJI", "acquired", "RoboPix", 0.95, day(2)))
	s := kg.Stats()
	if s.Facts != 3 || s.CuratedFacts != 1 || s.ExtractedFacts != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PredicateCounts["acquired"] != 2 {
		t.Errorf("predicate counts = %v", s.PredicateCounts)
	}
	if s.SourceCounts["wsj"] != 2 || s.SourceCounts["yago"] != 1 {
		t.Errorf("source counts = %v", s.SourceCounts)
	}
	if s.ConfidenceHistogram[3] != 1 || s.ConfidenceHistogram[9] != 2 {
		t.Errorf("hist = %v", s.ConfidenceHistogram)
	}
	if s.MeanConfidence < 0.64 || s.MeanConfidence > 0.66 {
		t.Errorf("mean confidence = %v", s.MeanConfidence)
	}
	top := s.TopPredicates(1)
	if len(top) != 1 || top[0].Name != "acquired" {
		t.Errorf("TopPredicates = %v", top)
	}
}

func TestExportDOTColors(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(curated("DJI", "headquarteredIn", "Shenzhen"))
	kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.8, day(1)))
	var buf bytes.Buffer
	if err := kg.ExportDOT(&buf, "DJI"); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.Contains(dot, "color=red") {
		t.Error("curated edge not red")
	}
	if !strings.Contains(dot, "color=blue") || !strings.Contains(dot, "p=0.80") {
		t.Error("extracted edge not blue with confidence")
	}
}

func TestExportJSONRoundtrip(t *testing.T) {
	kg := NewKG(nil)
	kg.AddFact(extracted("DJI", "acquired", "Aeros", 0.8, day(1)))
	var buf bytes.Buffer
	if err := kg.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["subject"] != "DJI" || got[0]["time"] != "2015-01-02" {
		t.Fatalf("json = %v", got)
	}
}

// Property: NumFacts always equals the number of edges in the backing graph,
// under random interleavings of adds and evictions.
func TestFactEdgeParityQuick(t *testing.T) {
	subjects := []string{"A Co", "B Co", "C Co", "D Co"}
	f := func(ops []uint8) bool {
		kg := NewKG(nil)
		ts := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1, 2:
				s := subjects[int(op)%len(subjects)]
				o := subjects[(int(op)+1)%len(subjects)]
				kg.AddFact(extracted(s, "acquired", o, 0.5, day(ts)))
				ts++
			case 3:
				kg.EvictBefore(day(ts - 1))
			}
		}
		return kg.NumFacts() == kg.Graph().NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
