// Package plan is the logical query layer between the QA front end and the
// dynamic knowledge graph. Following the declarative-query-layer split of
// Hogan et al.'s Knowledge Graphs survey, every question class lowers into a
// small tree of composable logical operators — Scan, WindowFilter, Diff,
// Rank, Summarize, PathExplain, TrendScan, Predict — and one executor runs
// those trees against the graph store and its derived artifacts (the
// epoch-versioned analytics cache, the temporal index, the trend detector,
// the streaming miner, the coherence path search and the link-prediction
// model).
//
// The split buys composability the old per-class switch could not express:
// temporal diff queries ("what changed about X between 2015 and 2016") are a
// Diff of two WindowFiltered scans, and windowed trend backfill scores
// bursts inside an arbitrary historical window straight off the temporal
// index instead of the live detector's end bucket. Plans also render as
// explain-style trees (Explain/Describe) for GET /api/plan.
package plan

import (
	"fmt"
	"strings"

	"nous/internal/temporal"
)

// Op names one logical operator.
type Op string

// The logical operators.
const (
	OpScan         Op = "Scan"
	OpWindowFilter Op = "WindowFilter"
	OpDiff         Op = "Diff"
	OpRank         Op = "Rank"
	OpSummarize    Op = "Summarize"
	OpPathExplain  Op = "PathExplain"
	OpTrendScan    Op = "TrendScan"
	OpPredict      Op = "Predict"
)

// Node is one operator in a logical plan tree.
type Node interface {
	Op() Op
	// Inputs returns the operator's child nodes (nil for leaves).
	Inputs() []Node
	// args renders the operator's own arguments for explain output.
	args() string
}

// Source names the base relation a Scan reads.
type Source string

// Scan sources.
const (
	// SourceFactsAbout reads every fact in which Subject participates
	// (as subject or object), ordered by descending confidence.
	SourceFactsAbout Source = "facts_about"
	// SourceObjects reads the objects of (Subject, Predicate, ?).
	SourceObjects Source = "objects"
	// SourceSubjects reads the subjects of (?, Predicate, Object).
	SourceSubjects Source = "subjects"
	// SourceFactCheck probes (Subject, Predicate, Object) membership and,
	// when present, the evidence facts around Subject.
	SourceFactCheck Source = "fact_check"
	// SourcePatterns reads the miner's closed frequent patterns.
	SourcePatterns Source = "patterns"
	// SourceStream reads dated facts off the temporal index in (time, id)
	// order — the raw extracted stream, with no curated substrate.
	SourceStream Source = "stream"
)

// Scan reads a base relation. Entity arguments are surface forms; resolution
// (alias lookup, disambiguation) happens at execution time.
type Scan struct {
	Source    Source
	Subject   string
	Object    string
	Predicate string
}

func (s *Scan) Op() Op         { return OpScan }
func (s *Scan) Inputs() []Node { return nil }
func (s *Scan) args() string {
	parts := []string{"source=" + string(s.Source)}
	if s.Subject != "" {
		parts = append(parts, fmt.Sprintf("subject=%q", s.Subject))
	}
	if s.Predicate != "" {
		parts = append(parts, "predicate="+s.Predicate)
	}
	if s.Object != "" {
		parts = append(parts, fmt.Sprintf("object=%q", s.Object))
	}
	return strings.Join(parts, " ")
}

// WindowFilter restricts its input to the time window. At execution the
// filter is pushed down into the scan (the store's windowed reads), so the
// operator is a logical view, not a post-hoc pass over materialized rows.
type WindowFilter struct {
	Window temporal.Window
	Input  Node
}

func (w *WindowFilter) Op() Op         { return OpWindowFilter }
func (w *WindowFilter) Inputs() []Node { return []Node{w.Input} }
func (w *WindowFilter) args() string   { return "window=" + w.Window.String() }

// Rank orders its input by the relation's native ranking (confidence for
// facts, burst score for trends, support for patterns) and keeps the top K.
// K <= 0 keeps everything.
type Rank struct {
	K     int
	Input Node
}

func (r *Rank) Op() Op         { return OpRank }
func (r *Rank) Inputs() []Node { return []Node{r.Input} }
func (r *Rank) args() string   { return fmt.Sprintf("k=%d", r.K) }

// Summarize assembles the Fig-6 entity view over its input facts: type,
// windowed PageRank importance, recent activity sparkline and the fact list.
type Summarize struct {
	Subject string
	Window  temporal.Window
	Input   Node
}

func (s *Summarize) Op() Op         { return OpSummarize }
func (s *Summarize) Inputs() []Node { return []Node{s.Input} }
func (s *Summarize) args() string {
	a := fmt.Sprintf("entity=%q", s.Subject)
	if s.Window.Bounded() {
		a += " window=" + s.Window.String()
	}
	return a
}

// PathExplain searches coherence-ranked paths between two entities,
// optionally constrained to traverse a predicate, inside the window.
type PathExplain struct {
	Subject   string
	Object    string
	Predicate string
	K         int
	Window    temporal.Window
}

func (p *PathExplain) Op() Op         { return OpPathExplain }
func (p *PathExplain) Inputs() []Node { return nil }
func (p *PathExplain) args() string {
	a := fmt.Sprintf("src=%q dst=%q k=%d", p.Subject, p.Object, p.K)
	if p.Predicate != "" {
		a += " via=" + p.Predicate
	}
	if p.Window.Bounded() {
		a += " window=" + p.Window.String()
	}
	return a
}

// TrendScan scores bursting entities and predicates. Unbounded windows read
// the live detector at the query clock; bounded windows with Backfill set
// replay the temporal index and score every bucket inside the window (not
// just the window's end bucket). Without a temporal index the executor
// degrades to the live detector anchored at the window's end.
type TrendScan struct {
	Window   temporal.Window
	Backfill bool
	// SkipScan is set by Optimize when the temporal histogram proves no
	// dated fact can reach a scored bucket: the executor then skips the
	// history materialization and returns the same empty trend set the
	// full backfill would. Purely an execution strategy — excluded from
	// Normalize, invisible to cache keys.
	SkipScan bool
}

func (t *TrendScan) Op() Op         { return OpTrendScan }
func (t *TrendScan) Inputs() []Node { return nil }
func (t *TrendScan) args() string {
	mode := "live"
	if t.Backfill {
		mode = "backfill"
	}
	a := "mode=" + mode
	if t.Window.Bounded() {
		a += " window=" + t.Window.String()
	}
	return a
}

// Predict turns a membership probe into a plausibility judgement: when the
// input fact-check found nothing, the link-prediction model scores the
// candidate triple.
type Predict struct {
	Subject   string
	Predicate string
	Object    string
	Input     Node
}

func (p *Predict) Op() Op         { return OpPredict }
func (p *Predict) Inputs() []Node { return []Node{p.Input} }
func (p *Predict) args() string {
	return fmt.Sprintf("subject=%q predicate=%s object=%q", p.Subject, p.Predicate, p.Object)
}

// Diff is the temporal join "what changed between A and B": the facts
// visible in window B but not A (added) and in A but not B (removed),
// matched by (subject, predicate, object). Curated facts are visible in
// every window, so they always cancel out.
type Diff struct {
	A, B             Node
	WindowA, WindowB temporal.Window
	Entity           string // surface form; empty = the whole stream
	// EvalBFirst is set by Optimize when B's estimated cardinality is the
	// smaller: the executor evaluates the cheap side first and probes the
	// larger. The diff computation is symmetric, so answers are identical
	// either way; excluded from Normalize, invisible to cache keys.
	EvalBFirst bool
}

func (d *Diff) Op() Op         { return OpDiff }
func (d *Diff) Inputs() []Node { return []Node{d.A, d.B} }
func (d *Diff) args() string {
	a := fmt.Sprintf("a=%s b=%s", d.WindowA, d.WindowB)
	if d.Entity != "" {
		a = fmt.Sprintf("entity=%q ", d.Entity) + a
	}
	return a
}

// Plan is one compiled query: the operator tree plus the request parameters
// the answer renderer needs (surface forms for error messages, the window
// for header lines).
type Plan struct {
	Class     string
	Root      Node
	Subject   string
	Object    string
	Predicate string
	K         int
	Window    temporal.Window
	WindowB   temporal.Window // secondary window (diff queries)
}

// windowed wraps a node in a WindowFilter when the window actually
// constrains something; full-range plans keep the bare scan so the
// unwindowed hot path stays visibly untouched.
func windowed(w temporal.Window, n Node) Node {
	if !w.Bounded() {
		return n
	}
	return &WindowFilter{Window: w, Input: n}
}

// TrendingPlan lowers a trending question. Bounded windows request a
// backfill TrendScan — burst scoring across every bucket the window covers.
func TrendingPlan(w temporal.Window, k int) *Plan {
	return &Plan{
		Class:  "trending",
		Root:   &Rank{K: k, Input: &TrendScan{Window: w, Backfill: w.Bounded()}},
		K:      k,
		Window: w,
	}
}

// EntityPlan lowers "tell me about X".
func EntityPlan(subject string, w temporal.Window, k int) *Plan {
	return &Plan{
		Class: "entity",
		Root: &Summarize{Subject: subject, Window: w,
			Input: &Rank{K: k, Input: windowed(w, &Scan{Source: SourceFactsAbout, Subject: subject})}},
		Subject: subject,
		K:       k,
		Window:  w,
	}
}

// RelationshipPlan lowers "how is X related to Y (via p)".
func RelationshipPlan(subject, object, predicate string, k int, w temporal.Window) *Plan {
	return &Plan{
		Class:     "relationship",
		Root:      &PathExplain{Subject: subject, Object: object, Predicate: predicate, K: k, Window: w},
		Subject:   subject,
		Object:    object,
		Predicate: predicate,
		K:         k,
		Window:    w,
	}
}

// PatternsPlan lowers "what patterns are emerging".
func PatternsPlan(k int) *Plan {
	return &Plan{
		Class: "pattern",
		Root:  &Rank{K: k, Input: &Scan{Source: SourcePatterns}},
		K:     k,
	}
}

// FactPlan lowers the three fact-question shapes: did S p O (membership +
// plausibility), what does S p (objects), who p O (subjects).
func FactPlan(subject, predicate, object string, w temporal.Window) (*Plan, error) {
	p := &Plan{Class: "fact", Subject: subject, Object: object, Predicate: predicate, Window: w}
	switch {
	case subject != "" && object != "":
		p.Root = &Predict{Subject: subject, Predicate: predicate, Object: object,
			Input: windowed(w, &Scan{Source: SourceFactCheck, Subject: subject, Predicate: predicate, Object: object})}
	case subject != "":
		p.Root = windowed(w, &Scan{Source: SourceObjects, Subject: subject, Predicate: predicate})
	case object != "":
		p.Root = windowed(w, &Scan{Source: SourceSubjects, Object: object, Predicate: predicate})
	default:
		return nil, fmt.Errorf("qa: fact query without arguments")
	}
	return p, nil
}

// DiffPlan lowers "what changed (about entity) between A and B". An empty
// entity diffs the whole extracted stream off the temporal index.
func DiffPlan(entity string, a, b temporal.Window) *Plan {
	side := func(w temporal.Window) Node {
		if entity == "" {
			return &WindowFilter{Window: w, Input: &Scan{Source: SourceStream}}
		}
		return &WindowFilter{Window: w, Input: &Scan{Source: SourceFactsAbout, Subject: entity}}
	}
	return &Plan{
		Class:   "diff",
		Root:    &Diff{A: side(a), B: side(b), WindowA: a, WindowB: b, Entity: entity},
		Subject: entity,
		Window:  a,
		WindowB: b,
	}
}

// NodeDesc is the JSON-able shape of one plan operator (GET /api/plan).
// EstRows/ActualRows are present only on costed descriptions (an optimized
// plan that was executed with tracing); EstRows is omitted when the
// statistics could not estimate the operator.
type NodeDesc struct {
	Op         string     `json:"op"`
	Args       string     `json:"args,omitempty"`
	EstRows    *float64   `json:"est_rows,omitempty"`
	ActualRows *int       `json:"actual_rows,omitempty"`
	Inputs     []NodeDesc `json:"inputs,omitempty"`
}

func describe(n Node, est map[Node]float64, tr *Trace) NodeDesc {
	d := NodeDesc{Op: string(n.Op()), Args: n.args()}
	if e, ok := est[n]; ok && e >= 0 {
		e = roundEst(e)
		d.EstRows = &e
	}
	if tr != nil {
		if rows, ok := tr.ActualRows(n); ok {
			d.ActualRows = &rows
		}
	}
	for _, in := range n.Inputs() {
		if in != nil {
			d.Inputs = append(d.Inputs, describe(in, est, tr))
		}
	}
	return d
}

// roundEst rounds an estimate to a tenth of a row, so JSON output and
// explain text stay stable across float formatting.
func roundEst(e float64) float64 { return float64(int64(e*10+0.5)) / 10 }

// Describe returns the plan's operator tree in JSON-able form.
func (p *Plan) Describe() NodeDesc {
	if p.Root == nil {
		return NodeDesc{}
	}
	return describe(p.Root, nil, nil)
}

// Describe renders the costed plan's operator tree with est_rows per node
// and, when tr is non-nil (the plan was executed via RunTraced), actual_rows.
func (c *Costed) Describe(tr *Trace) NodeDesc {
	if c.Plan == nil || c.Plan.Root == nil {
		return NodeDesc{}
	}
	return describe(c.Plan.Root, c.Est, tr)
}

// Explain renders the costed plan as an indented tree like Plan.Explain,
// with each operator annotated est_rows=… (when the statistics could
// estimate it) and actual_rows=… (when tr traces an execution):
//
//	plan class=entity
//	  Summarize(entity="DJI") est_rows=10.0 actual_rows=7
//	    ...
func (c *Costed) Explain(tr *Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan class=%s\n", c.Plan.Class)
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		if n == nil {
			return
		}
		fmt.Fprintf(&b, "%s%s(%s)", strings.Repeat("  ", depth+1), n.Op(), n.args())
		if e, ok := c.Est[n]; ok && e >= 0 {
			fmt.Fprintf(&b, " est_rows=%.1f", roundEst(e))
		}
		if tr != nil {
			if rows, ok := tr.ActualRows(n); ok {
				fmt.Fprintf(&b, " actual_rows=%d", rows)
			}
		}
		b.WriteByte('\n')
		for _, in := range n.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(c.Plan.Root, 0)
	return b.String()
}

// Explain renders the plan as an indented explain-style tree:
//
//	plan class=entity
//	  Summarize(entity="DJI" window=[2015-01-01, 2016-01-01))
//	    Rank(k=10)
//	      WindowFilter(window=[2015-01-01, 2016-01-01))
//	        Scan(source=facts_about subject="DJI")
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan class=%s\n", p.Class)
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		if n == nil {
			return
		}
		fmt.Fprintf(&b, "%s%s(%s)\n", strings.Repeat("  ", depth+1), n.Op(), n.args())
		for _, in := range n.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(p.Root, 0)
	return b.String()
}
