package plan

import "sync"

// ExecStats accounts executed plans and operators across an executor's
// lifetime. All methods are safe for concurrent use.
type ExecStats struct {
	mu      sync.Mutex
	plans   uint64
	byClass map[string]uint64
	ops     map[Op]uint64
}

// NewStats returns an empty accounting sink.
func NewStats() *ExecStats {
	return &ExecStats{byClass: make(map[string]uint64), ops: make(map[Op]uint64)}
}

func (s *ExecStats) startPlan(class string) {
	s.mu.Lock()
	s.plans++
	s.byClass[class]++
	s.mu.Unlock()
}

func (s *ExecStats) countOp(op Op) {
	s.mu.Lock()
	s.ops[op]++
	s.mu.Unlock()
}

// CacheStats is a snapshot of the plan-result cache's counters.
type CacheStats struct {
	// Hits counts lookups served from a fresh cached result.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to compute.
	Misses uint64 `json:"misses"`
	// Coalesced counts lookups served by waiting on another caller's
	// in-flight compute (singleflight).
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts LRU evictions at the entry cap.
	Evictions uint64 `json:"evictions"`
	// Entries is the current number of cached results.
	Entries int `json:"entries"`
}

// Stats is a snapshot of planner activity for /api/stats.
type Stats struct {
	// Plans counts executed plans.
	Plans uint64 `json:"plans"`
	// ByClass breaks executed plans down by query class.
	ByClass map[string]uint64 `json:"by_class,omitempty"`
	// Ops counts evaluated logical operators by kind.
	Ops map[string]uint64 `json:"ops,omitempty"`
	// Cache reports the plan-result cache, when one is attached.
	Cache *CacheStats `json:"cache,omitempty"`
}

// Snapshot copies the counters.
func (s *ExecStats) Snapshot() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Plans: s.plans}
	if len(s.byClass) > 0 {
		st.ByClass = make(map[string]uint64, len(s.byClass))
		for k, v := range s.byClass {
			st.ByClass[k] = v
		}
	}
	if len(s.ops) > 0 {
		st.Ops = make(map[string]uint64, len(s.ops))
		for k, v := range s.ops {
			st.Ops[string(k)] = v
		}
	}
	return st
}
