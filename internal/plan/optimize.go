package plan

import (
	"math"

	"nous/internal/temporal"
)

// Costed is an optimized plan plus its per-node row estimates. Est is keyed
// by the nodes of Plan's (cloned) tree; entries of -1 mean "unknown".
type Costed struct {
	Plan *Plan
	Est  map[Node]float64
}

// Optimize returns a costed rewrite of p: the tree is cloned (the input plan
// stays the untouched reference the byte-identity tests execute), window
// filters are normalized below Rank/Summarize, each node is annotated with
// estimated rows from card, and two cost-based decisions are taken —
//
//   - Diff evaluates the smaller-estimate side first and probes the larger;
//   - a backfill TrendScan whose window the temporal histogram proves empty
//     (at trend-bucket granularity) skips the history materialization.
//
// Every rewrite is answer-preserving: the executor's results for the
// optimized tree are byte-identical to the reference tree's, which
// internal/qa's optimizer reference test pins across the question corpus.
// card may be nil, in which case only the structural normalization runs.
func Optimize(p *Plan, card Cardinality) *Costed {
	if p == nil || p.Root == nil {
		return &Costed{Plan: p, Est: map[Node]float64{}}
	}
	q := *p
	q.Root = pushdownFilters(cloneNode(p.Root))
	est := map[Node]float64{}
	if card != nil {
		estimateNode(q.Root, temporal.All(), card, est)
		applyRewrites(q.Root, card, est)
	}
	return &Costed{Plan: &q, Est: est}
}

// cloneNode deep-copies a plan tree so rewrites never mutate the caller's
// (reference) plan.
func cloneNode(n Node) Node {
	switch t := n.(type) {
	case *Scan:
		c := *t
		return &c
	case *WindowFilter:
		c := *t
		c.Input = cloneNode(t.Input)
		return &c
	case *Rank:
		c := *t
		c.Input = cloneNode(t.Input)
		return &c
	case *Summarize:
		c := *t
		c.Input = cloneNode(t.Input)
		return &c
	case *Predict:
		c := *t
		c.Input = cloneNode(t.Input)
		return &c
	case *PathExplain:
		c := *t
		return &c
	case *TrendScan:
		c := *t
		return &c
	case *Diff:
		c := *t
		c.A, c.B = cloneNode(t.A), cloneNode(t.B)
		return &c
	}
	return n
}

// pushdownFilters rewrites WindowFilter(Rank(X)) into Rank(WindowFilter(X))
// and WindowFilter(Summarize(X)) into Summarize(WindowFilter(X)), collapsing
// stacked filters into one intersected filter on the way. In this executor a
// window always threads down to the leaf scans no matter where the filter
// operator sits (eval pushes it through every node), so the rewrite cannot
// change results; what it buys is a tree whose shape matches the actual
// evaluation — the filter sits against the scan it scopes — which is what
// makes the est_rows annotations attach to the right operators.
func pushdownFilters(n Node) Node {
	switch t := n.(type) {
	case *WindowFilter:
		t.Input = pushdownFilters(t.Input)
		switch in := t.Input.(type) {
		case *Rank:
			in.Input = pushdownFilters(&WindowFilter{Window: t.Window, Input: in.Input})
			return in
		case *Summarize:
			in.Input = pushdownFilters(&WindowFilter{Window: t.Window, Input: in.Input})
			return in
		case *WindowFilter:
			in.Window = t.Window.Intersect(in.Window)
			return pushdownFilters(in)
		}
		return t
	case *Rank:
		t.Input = pushdownFilters(t.Input)
		return t
	case *Summarize:
		t.Input = pushdownFilters(t.Input)
		return t
	case *Predict:
		t.Input = pushdownFilters(t.Input)
		return t
	case *Diff:
		t.A, t.B = pushdownFilters(t.A), pushdownFilters(t.B)
		return t
	}
	return n
}

// applyRewrites takes the two cost-based decisions on an annotated tree.
func applyRewrites(n Node, card Cardinality, est map[Node]float64) {
	switch t := n.(type) {
	case *Diff:
		ra, rb := est[t.A], est[t.B]
		if ra >= 0 && rb >= 0 && rb < ra {
			t.EvalBFirst = true
		}
	case *TrendScan:
		if t.Backfill && t.Window.Bounded() && !t.Window.IsEmpty() {
			if w, ok := trendRelevantWindow(t.Window, card.TrendBucketSeconds()); ok && card.WindowFacts(w) == 0 {
				t.SkipScan = true
			}
		}
	}
	for _, in := range n.Inputs() {
		if in != nil {
			applyRewrites(in, card, est)
		}
	}
}

// trendRelevantWindow widens w to cover every dated fact that could
// influence a Backfill over w: any fact in a trend bucket overlapping w and
// before w's end can raise a scored bucket's count, so the skip proof must
// cover [start of w's first overlapped bucket, w.Until). Facts at or past
// Until never count (Backfill drops them before bucketing), and earlier
// history only feeds baselines — baselines alone never create a trend.
// ok is false when the bucket width is unknown, in which case no emptiness
// proof is possible.
func trendRelevantWindow(w temporal.Window, bucketSec int64) (temporal.Window, bool) {
	if bucketSec <= 0 {
		return temporal.Window{}, false
	}
	out := w
	if w.Since != math.MinInt64 {
		b := w.Since / bucketSec
		if w.Since%bucketSec != 0 && w.Since < 0 {
			b--
		}
		out.Since = b * bucketSec
	}
	return out, true
}
