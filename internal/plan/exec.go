package plan

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"nous/internal/analytics"
	"nous/internal/core"
	"nous/internal/disambig"
	"nous/internal/fgm"
	"nous/internal/linkpred"
	"nous/internal/pathsearch"
	"nous/internal/temporal"
	"nous/internal/trends"
)

// EntitySummary is the payload of "Tell me about X" (Fig 6).
type EntitySummary struct {
	Name       string
	Type       string
	Importance float64 // PageRank
	Facts      []core.Fact
	Activity   []int // recent weekly mention counts
}

// ExplainedPath is one relationship explanation.
type ExplainedPath struct {
	Hops      []string // rendered hops: "DJI -[acquired]-> Aeros"
	Coherence float64
}

// FactAnswer answers did/who/what fact queries.
type FactAnswer struct {
	Known      bool
	Plausible  float64 // link-prediction score when not known
	Matches    []core.ScoredEntity
	Provenance []string
}

// DiffAnswer is the payload of a temporal diff query: the facts that appear
// only in window B (added) or only in window A (removed), matched by
// (subject, predicate, object).
type DiffAnswer struct {
	Entity    string          `json:"entity,omitempty"`
	WindowA   temporal.Window `json:"window_a"`
	WindowB   temporal.Window `json:"window_b"`
	Added     []core.Fact     `json:"added"`
	Removed   []core.Fact     `json:"removed"`
	Unchanged int             `json:"unchanged"`
}

// Result is one executed plan's answer: the rendered text plus the payload
// matching the plan's class.
type Result struct {
	Text     string
	Trends   []trends.Trend
	Entity   *EntitySummary
	Paths    []ExplainedPath
	Patterns []fgm.Pattern
	Fact     *FactAnswer
	Diff     *DiffAnswer
}

// Executor runs plans against the graph store and its derived artifacts. Any
// dependency may be nil; the executor degrades gracefully (no miner →
// pattern queries report emptiness, no temporal index → TrendScan falls back
// to the live detector).
type Executor struct {
	KG       *core.KG
	Trends   *trends.Detector
	Miner    *fgm.Miner
	Searcher *pathsearch.Searcher
	Model    *linkpred.Model
	Linker   *disambig.Linker
	// Analytics supplies epoch-memoized whole-graph artifacts (PageRank
	// importance). When nil, entity summaries report zero importance rather
	// than recomputing PageRank per request.
	Analytics *analytics.Cache
	// TIndex is the per-shard time-ordered edge index; TrendScan backfill
	// and whole-stream diffs read it.
	TIndex *temporal.Index
	// Now supplies the query-time clock (defaults to time.Now).
	Now func() time.Time
	// Stats, when set, accounts executed plans and operators.
	Stats *ExecStats
}

// value is the data flowing up a plan tree during evaluation.
type value struct {
	subject, object     string // resolved canonical names
	subjectOK, objectOK bool
	facts               []core.Fact
	scored              []core.ScoredEntity
	patterns            []fgm.Pattern
	trends              []trends.Trend
	paths               []ExplainedPath
	entity              *EntitySummary
	has                 bool
	plausible           float64
	backfilled          bool
	diff                *DiffAnswer
}

// Trace records per-operator actual output row counts for one traced run —
// the "actual" half of est_rows vs actual_rows in costed explain output. A
// Trace belongs to a single RunTraced call and is not safe for concurrent
// use across runs.
type Trace struct {
	rows map[Node]int
}

// ActualRows reports the traced output row count of n.
func (t *Trace) ActualRows(n Node) (int, bool) {
	if t == nil {
		return 0, false
	}
	rows, ok := t.rows[n]
	return rows, ok
}

// rowsOf counts the rows in a node's evaluated value: the payload items the
// operator passed upward. A diff's rows are its changes (added + removed).
func rowsOf(v *value) int {
	if v.diff != nil {
		return len(v.diff.Added) + len(v.diff.Removed)
	}
	return len(v.facts) + len(v.scored) + len(v.patterns) + len(v.trends) + len(v.paths)
}

// Run executes one plan and renders its answer.
func (ex *Executor) Run(p *Plan) (Result, error) {
	r, _, err := ex.run(p, nil)
	return r, err
}

// RunTraced is Run with per-operator row accounting for explain output.
func (ex *Executor) RunTraced(p *Plan) (Result, *Trace, error) {
	return ex.run(p, &Trace{rows: make(map[Node]int)})
}

func (ex *Executor) run(p *Plan, tr *Trace) (Result, *Trace, error) {
	if p == nil || p.Root == nil {
		return Result{}, nil, errors.New("plan: empty plan")
	}
	if ex.Stats != nil {
		ex.Stats.startPlan(p.Class)
	}
	var v value
	if err := ex.eval(p.Root, temporal.All(), &v, tr); err != nil {
		return Result{}, nil, err
	}
	r, err := ex.render(p, &v)
	return r, tr, err
}

func (ex *Executor) now() time.Time {
	if ex.Now != nil {
		return ex.Now()
	}
	return time.Now()
}

// windowRef is the reference instant for activity-style lookups under a
// window: a bounded window anchors at its (inclusive) end — "in 2015" means
// activity as of end-2015 — while an unbounded one uses the clock.
func (ex *Executor) windowRef(w temporal.Window) time.Time {
	if w.Bounded() && w.Until != math.MaxInt64 {
		return time.Unix(w.Until-1, 0)
	}
	return ex.now()
}

// resolve maps a surface form to a canonical entity name.
func (ex *Executor) resolve(surface string) (string, bool) {
	if surface == "" {
		return "", false
	}
	if _, ok := ex.KG.Entity(surface); ok {
		return surface, true
	}
	if ex.Linker != nil {
		if r := ex.Linker.LinkOne(disambig.Mention{Surface: surface}); r.Entity != "" {
			return r.Entity, true
		}
	}
	cands := ex.KG.Candidates(surface)
	if len(cands) > 0 {
		return cands[0], true
	}
	return "", false
}

// eval evaluates one node into v. w is the window pushed down from enclosing
// WindowFilters; leaf scans run the store's windowed reads directly. When tr
// is non-nil, each node's output row count is recorded after it evaluates.
func (ex *Executor) eval(n Node, w temporal.Window, v *value, tr *Trace) error {
	err := ex.evalNode(n, w, v, tr)
	if err == nil && tr != nil {
		tr.rows[n] = rowsOf(v)
	}
	return err
}

func (ex *Executor) evalNode(n Node, w temporal.Window, v *value, tr *Trace) error {
	if ex.Stats != nil {
		ex.Stats.countOp(n.Op())
	}
	switch t := n.(type) {
	case *WindowFilter:
		return ex.eval(t.Input, t.Window.Intersect(w), v, tr)

	case *Scan:
		return ex.evalScan(t, w, v)

	case *Rank:
		if err := ex.eval(t.Input, w, v, tr); err != nil {
			return err
		}
		if t.K > 0 {
			if len(v.facts) > t.K {
				v.facts = v.facts[:t.K]
			}
			if len(v.patterns) > t.K {
				v.patterns = v.patterns[:t.K]
			}
			if len(v.trends) > t.K {
				v.trends = v.trends[:t.K]
			}
		}
		return nil

	case *TrendScan:
		return ex.evalTrendScan(t, v)

	case *Summarize:
		if err := ex.eval(t.Input, w, v, tr); err != nil {
			return err
		}
		if !v.subjectOK {
			return nil
		}
		typ, _ := ex.KG.EntityType(v.subject)
		sum := &EntitySummary{Name: v.subject, Type: string(typ)}
		if id, ok := ex.KG.Entity(v.subject); ok && ex.Analytics != nil {
			sum.Importance = ex.Analytics.WindowedImportance(id, t.Window)
		}
		sum.Facts = v.facts
		if ex.Trends != nil && !t.Window.IsEmpty() {
			// Anchor the sparkline at the window's end, like trending does:
			// "tell me about X in 2015" shows 2015 activity, not today's.
			sum.Activity = ex.Trends.Series(v.subject, ex.windowRef(t.Window), 8)
		}
		v.entity = sum
		return nil

	case *Predict:
		if err := ex.eval(t.Input, w, v, tr); err != nil {
			return err
		}
		if !v.subjectOK || !v.objectOK {
			return nil
		}
		if !v.has {
			v.plausible = 0.5
			if ex.Model != nil {
				v.plausible = ex.Model.Score(v.subject, t.Predicate, v.object)
			}
		}
		return nil

	case *PathExplain:
		return ex.evalPathExplain(t, v)

	case *Diff:
		return ex.evalDiff(t, v, tr)
	}
	return fmt.Errorf("plan: unknown operator %T", n)
}

func (ex *Executor) evalScan(t *Scan, w temporal.Window, v *value) error {
	switch t.Source {
	case SourceFactsAbout:
		name, ok := ex.resolve(t.Subject)
		v.subject, v.subjectOK = name, ok
		if ok {
			v.facts = ex.KG.FactsAboutWindow(name, w)
		}
	case SourceObjects:
		name, ok := ex.resolve(t.Subject)
		v.subject, v.subjectOK = name, ok
		if ok {
			v.scored = ex.KG.ObjectsOfWindow(name, t.Predicate, w)
		}
	case SourceSubjects:
		name, ok := ex.resolve(t.Object)
		v.object, v.objectOK = name, ok
		if ok {
			v.scored = ex.KG.SubjectsOfWindow(t.Predicate, name, w)
		}
	case SourceFactCheck:
		s, ok1 := ex.resolve(t.Subject)
		o, ok2 := ex.resolve(t.Object)
		v.subject, v.subjectOK = s, ok1
		v.object, v.objectOK = o, ok2
		if ok1 && ok2 {
			v.has = ex.KG.HasFactWindow(s, t.Predicate, o, w)
			if v.has {
				// Evidence pool for the provenance listing.
				v.facts = ex.KG.FactsAboutWindow(s, w)
			}
		}
	case SourcePatterns:
		if ex.Miner != nil {
			v.patterns = ex.Miner.ClosedPatterns()
		}
	case SourceStream:
		if ex.TIndex != nil {
			// DatedIn never materializes the curated substrate; the flag
			// check guards the rare dated-but-curated fact, which is
			// timeless background visible in every window (it would
			// otherwise surface as a spurious diff when only one side of
			// the diff covers its timestamp).
			for _, id := range ex.TIndex.DatedIn(w) {
				if f, ok := ex.KG.Fact(id); ok && !f.Curated {
					v.facts = append(v.facts, f)
				}
			}
		}
	default:
		return fmt.Errorf("plan: unknown scan source %q", t.Source)
	}
	return nil
}

func (ex *Executor) evalTrendScan(t *TrendScan, v *value) error {
	w := t.Window
	if w.IsEmpty() {
		return nil
	}
	if t.Backfill && w.Bounded() && ex.TIndex != nil && ex.KG != nil {
		if t.SkipScan {
			// Optimize proved (from the temporal histogram, widened to
			// trend-bucket granularity) that no dated fact can reach a
			// scored bucket; a full Backfill over the materialized history
			// would return nil trends. Return the same nil without touching
			// the index.
			v.backfilled = true
			return nil
		}
		cfg := trends.DefaultConfig()
		if ex.Trends != nil {
			cfg = ex.Trends.Config()
		}
		// Everything up to the window's end: in-window buckets get scored,
		// earlier history feeds their baselines.
		history := temporal.Window{Since: math.MinInt64, Until: w.Until}
		var facts []core.Fact
		for _, id := range ex.TIndex.DatedIn(history) {
			if f, ok := ex.KG.Fact(id); ok {
				facts = append(facts, f)
			}
		}
		v.trends = trends.Backfill(facts, w, cfg, 0)
		v.backfilled = true
		return nil
	}
	if ex.Trends == nil {
		return nil
	}
	v.trends = ex.Trends.Trending(ex.windowRef(w), 0)
	return nil
}

func (ex *Executor) evalPathExplain(t *PathExplain, v *value) error {
	s, ok1 := ex.resolve(t.Subject)
	o, ok2 := ex.resolve(t.Object)
	v.subject, v.subjectOK = s, ok1
	v.object, v.objectOK = o, ok2
	if !ok1 || !ok2 || ex.Searcher == nil {
		return nil
	}
	src, _ := ex.KG.Entity(s)
	dst, _ := ex.KG.Entity(o)
	paths := ex.Searcher.TopK(src, dst, pathsearch.Options{K: t.K, MaxDepth: 4, Predicate: t.Predicate, Window: t.Window})
	for _, p := range paths {
		ep := ExplainedPath{Coherence: p.Coherence}
		for i, e := range p.Edges {
			u := p.Vertices[i]
			vv := p.Vertices[i+1]
			un, _ := ex.KG.EntityName(u)
			vn, _ := ex.KG.EntityName(vv)
			arrow := fmt.Sprintf("%s -[%s]-> %s", un, e.Label, vn)
			if e.Src == vv { // traversed against edge direction
				arrow = fmt.Sprintf("%s <-[%s]- %s", un, e.Label, vn)
			}
			ep.Hops = append(ep.Hops, arrow)
		}
		v.paths = append(v.paths, ep)
	}
	return nil
}

// factKey matches facts across windows by their logical triple, so repeated
// mentions of the same statement in both windows count as unchanged.
func factKey(f core.Fact) string {
	return f.Subject + "\x1f" + f.Predicate + "\x1f" + f.Object
}

// attributable filters a diff side down to facts that can be attributed to
// a window: curated facts stay (visible everywhere, they cancel out across
// the two sides), but undated extracted facts — whose edges sit on the
// timeless sentinel, outside every dated index read — are dropped, matching
// the whole-stream side's DatedIn semantics. Without this, a window
// unbounded below would claim them for its side only and report a fact of
// unknown date as a change.
func attributable(fs []core.Fact) []core.Fact {
	out := make([]core.Fact, 0, len(fs))
	for _, f := range fs {
		if !f.Curated && f.Provenance.Time.Unix() <= temporal.Timeless {
			continue
		}
		out = append(out, f)
	}
	return out
}

func (ex *Executor) evalDiff(t *Diff, v *value, tr *Trace) error {
	var va, vb value
	// Evaluate the side the optimizer estimated smaller first; the diff is
	// symmetric in its computation, so the order changes locality, never
	// the answer.
	first, second, vf, vs := t.A, t.B, &va, &vb
	if t.EvalBFirst {
		first, second, vf, vs = t.B, t.A, &vb, &va
	}
	if err := ex.eval(first, temporal.All(), vf, tr); err != nil {
		return err
	}
	if err := ex.eval(second, temporal.All(), vs, tr); err != nil {
		return err
	}
	// Entity diffs resolve the same surface form in both children; surface
	// the A-side resolution for the renderer's unknown-entity message.
	v.subject, v.subjectOK = va.subject, va.subjectOK
	if t.Entity != "" && !v.subjectOK {
		return nil
	}
	va.facts = attributable(va.facts)
	vb.facts = attributable(vb.facts)

	aKeys := make(map[string]bool, len(va.facts))
	for _, f := range va.facts {
		aKeys[factKey(f)] = true
	}
	bKeys := make(map[string]bool, len(vb.facts))
	for _, f := range vb.facts {
		bKeys[factKey(f)] = true
	}
	d := &DiffAnswer{Entity: v.subject, WindowA: t.WindowA, WindowB: t.WindowB,
		Added: []core.Fact{}, Removed: []core.Fact{}}
	seen := map[string]bool{}
	for _, f := range vb.facts {
		k := factKey(f)
		if aKeys[k] || seen[k] {
			continue
		}
		seen[k] = true
		d.Added = append(d.Added, f)
	}
	seen = map[string]bool{}
	for _, f := range va.facts {
		k := factKey(f)
		if bKeys[k] || seen[k] {
			continue
		}
		seen[k] = true
		d.Removed = append(d.Removed, f)
	}
	for k := range aKeys {
		if bKeys[k] {
			d.Unchanged++
		}
	}
	v.diff = d
	return nil
}

// render turns an evaluated plan into its final answer. The per-class
// renderings reproduce the pre-planner executor byte for byte (pinned by
// internal/qa's planner reference test); diff and backfilled trending are
// new surfaces with their own formats.
func (ex *Executor) render(p *Plan, v *value) (Result, error) {
	switch p.Class {
	case "trending":
		return ex.renderTrending(p, v), nil
	case "entity":
		return ex.renderEntity(p, v), nil
	case "relationship":
		return ex.renderRelationship(p, v), nil
	case "pattern":
		return ex.renderPatterns(v), nil
	case "fact":
		return ex.renderFact(p, v)
	case "diff":
		return ex.renderDiff(p, v), nil
	}
	return Result{}, fmt.Errorf("plan: unknown plan class %q", p.Class)
}

func (ex *Executor) renderTrending(p *Plan, v *value) Result {
	r := Result{Trends: v.trends}
	if ex.Trends == nil && !v.backfilled {
		r.Text = "no trend detector attached"
		return r
	}
	var b strings.Builder
	switch {
	case v.backfilled:
		fmt.Fprintf(&b, "Trending in %s (windowed backfill):\n", p.Window)
	case p.Window.Bounded():
		fmt.Fprintf(&b, "Trending in %s:\n", p.Window)
	default:
		b.WriteString("Trending now:\n")
	}
	if len(r.Trends) == 0 {
		b.WriteString("  (nothing trending)\n")
	}
	for i, t := range r.Trends {
		fmt.Fprintf(&b, "  %2d. %-30s %-9s burst=%.1fx (%d mentions, baseline %.1f)\n",
			i+1, t.Name, t.Kind, t.Score, t.Current, t.Baseline)
	}
	r.Text = b.String()
	return r
}

// writeFactLine renders one fact with the given line prefix — the shared
// format of entity summaries and diff listings.
func writeFactLine(b *strings.Builder, prefix string, f core.Fact) {
	marker := "extracted"
	if f.Curated {
		marker = "curated"
	}
	fmt.Fprintf(b, "%s%s -[%s]-> %s  (p=%.2f, %s", prefix, f.Subject, f.Predicate, f.Object, f.Confidence, marker)
	if f.Provenance.Source != "" {
		fmt.Fprintf(b, ", src=%s", f.Provenance.Source)
	}
	b.WriteString(")\n")
}

func (ex *Executor) renderEntity(p *Plan, v *value) Result {
	var r Result
	if !v.subjectOK {
		r.Text = fmt.Sprintf("I don't know anything about %q.", p.Subject)
		return r
	}
	sum := v.entity
	r.Entity = sum

	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)  importance=%.4f\n", sum.Name, sum.Type, sum.Importance)
	if p.Window.Bounded() {
		fmt.Fprintf(&b, "  window: %s\n", p.Window)
	}
	if len(sum.Activity) > 0 {
		fmt.Fprintf(&b, "  recent activity: %v\n", sum.Activity)
	}
	for _, f := range sum.Facts {
		writeFactLine(&b, "  ", f)
	}
	r.Text = b.String()
	return r
}

func (ex *Executor) renderRelationship(p *Plan, v *value) Result {
	var r Result
	if !v.subjectOK || !v.objectOK {
		r.Text = fmt.Sprintf("cannot resolve %q and/or %q", p.Subject, p.Object)
		return r
	}
	if ex.Searcher == nil {
		r.Text = "no path searcher attached"
		return r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Paths from %s to %s", v.subject, v.object)
	if p.Predicate != "" {
		fmt.Fprintf(&b, " via %s", p.Predicate)
	}
	if p.Window.Bounded() {
		fmt.Fprintf(&b, " within %s", p.Window)
	}
	b.WriteString(":\n")
	if len(v.paths) == 0 {
		b.WriteString("  (no connecting path found)\n")
	}
	for _, ep := range v.paths {
		r.Paths = append(r.Paths, ep)
		fmt.Fprintf(&b, "  coherence=%.4f: %s\n", ep.Coherence, strings.Join(ep.Hops, " ; "))
	}
	r.Text = b.String()
	return r
}

func (ex *Executor) renderPatterns(v *value) Result {
	var r Result
	if ex.Miner == nil {
		r.Text = "no miner attached"
		return r
	}
	r.Patterns = v.patterns
	var b strings.Builder
	b.WriteString("Closed frequent patterns in the current window:\n")
	if len(r.Patterns) == 0 {
		b.WriteString("  (none above support threshold)\n")
	}
	for _, pat := range r.Patterns {
		fmt.Fprintf(&b, "  support=%-4d %s\n", pat.Support, pat)
	}
	r.Text = b.String()
	return r
}

func (ex *Executor) renderFact(p *Plan, v *value) (Result, error) {
	var r Result
	fa := &FactAnswer{}
	r.Fact = fa
	var b strings.Builder

	switch {
	case p.Subject != "" && p.Object != "": // did S p O?
		if !v.subjectOK || !v.objectOK {
			r.Text = fmt.Sprintf("cannot resolve %q / %q", p.Subject, p.Object)
			return r, nil
		}
		fa.Known = v.has
		if fa.Known {
			fmt.Fprintf(&b, "Yes: %s %s %s.\n", v.subject, p.Predicate, v.object)
			for _, f := range v.facts {
				if f.Predicate == p.Predicate && f.Object == v.object {
					src := f.Provenance.Source
					if f.Provenance.Sentence != "" {
						src += ": " + f.Provenance.Sentence
					}
					fa.Provenance = append(fa.Provenance, src)
					fmt.Fprintf(&b, "  evidence (p=%.2f): %s\n", f.Confidence, src)
				}
			}
		} else {
			fa.Plausible = v.plausible
			fmt.Fprintf(&b, "Not in the knowledge graph. Plausibility score: %.2f\n", fa.Plausible)
		}
	case p.Subject != "": // what does S p?
		if !v.subjectOK {
			r.Text = fmt.Sprintf("cannot resolve %q", p.Subject)
			return r, nil
		}
		fa.Matches = v.scored
		fa.Known = len(fa.Matches) > 0
		fmt.Fprintf(&b, "%s %s:\n", v.subject, p.Predicate)
		for _, m := range fa.Matches {
			fmt.Fprintf(&b, "  %s (p=%.2f)\n", m.Name, m.Score)
		}
		if len(fa.Matches) == 0 {
			b.WriteString("  (no known facts)\n")
		}
	case p.Object != "": // who p O?
		if !v.objectOK {
			r.Text = fmt.Sprintf("cannot resolve %q", p.Object)
			return r, nil
		}
		fa.Matches = v.scored
		fa.Known = len(fa.Matches) > 0
		fmt.Fprintf(&b, "%s %s:\n", p.Predicate, v.object)
		for _, m := range fa.Matches {
			fmt.Fprintf(&b, "  %s (p=%.2f)\n", m.Name, m.Score)
		}
		if len(fa.Matches) == 0 {
			b.WriteString("  (no known facts)\n")
		}
	default:
		return r, fmt.Errorf("qa: fact query without arguments")
	}
	r.Text = b.String()
	return r, nil
}

func (ex *Executor) renderDiff(p *Plan, v *value) Result {
	var r Result
	if p.Subject != "" && !v.subjectOK {
		r.Text = fmt.Sprintf("I don't know anything about %q.", p.Subject)
		return r
	}
	if p.Subject == "" && ex.TIndex == nil {
		r.Text = "no temporal index attached"
		return r
	}
	d := v.diff
	r.Diff = d
	var b strings.Builder
	if d.Entity != "" {
		fmt.Fprintf(&b, "Changes about %s between %s and %s:\n", d.Entity, d.WindowA, d.WindowB)
	} else {
		fmt.Fprintf(&b, "Changes between %s and %s:\n", d.WindowA, d.WindowB)
	}
	for _, f := range d.Added {
		writeFactLine(&b, "  + ", f)
	}
	for _, f := range d.Removed {
		writeFactLine(&b, "  - ", f)
	}
	if len(d.Added) == 0 && len(d.Removed) == 0 {
		b.WriteString("  (no changes)\n")
	}
	fmt.Fprintf(&b, "  (%d facts unchanged)\n", d.Unchanged)
	r.Text = b.String()
	return r
}
