package plan

import (
	"math"
	"strings"
	"testing"

	"nous/internal/temporal"
)

func TestNormalizeEqualPlansEqualStrings(t *testing.T) {
	a := DiffPlan("DJI", winDays(0, 10), winDays(10, 20))
	b := DiffPlan("DJI", winDays(0, 10), winDays(10, 20))
	if Normalize(a) != Normalize(b) {
		t.Fatalf("equal plans normalize differently:\n%s\n%s", Normalize(a), Normalize(b))
	}
	c := DiffPlan("GoPro", winDays(0, 10), winDays(10, 20))
	if Normalize(a) == Normalize(c) {
		t.Fatal("different entities share a normalized string")
	}
}

func TestNormalizeDistinguishesSubDayWindows(t *testing.T) {
	// Window.String renders at day granularity; the cache key must not.
	a := TrendingPlan(temporal.Window{Since: 1000, Until: 2000}, 5)
	b := TrendingPlan(temporal.Window{Since: 1000, Until: 2001}, 5)
	if Normalize(a) == Normalize(b) {
		t.Fatal("windows differing by one second share a normalized string")
	}
}

func TestNormalizeNeverCanonicalizesWindows(t *testing.T) {
	// Both are IsAll windows, but DiffAnswer JSON embeds the raw bounds, so
	// collapsing them would alias plans with different rendered answers.
	zero := temporal.Window{}
	full := temporal.Window{Since: math.MinInt64, Until: math.MaxInt64}
	a := DiffPlan("DJI", zero, winDays(0, 10))
	b := DiffPlan("DJI", full, winDays(0, 10))
	if Normalize(a) == Normalize(b) {
		t.Fatal("distinct representations of the unbounded window were collapsed")
	}
}

func TestNormalizeExcludesStrategyFlags(t *testing.T) {
	a := DiffPlan("DJI", winDays(0, 10), winDays(10, 20))
	b := DiffPlan("DJI", winDays(0, 10), winDays(10, 20))
	b.Root.(*Diff).EvalBFirst = true
	if Normalize(a) != Normalize(b) {
		t.Fatal("EvalBFirst leaked into the normalized string")
	}
	ta := TrendingPlan(winDays(0, 10), 5)
	tb := TrendingPlan(winDays(0, 10), 5)
	tb.Root.(*Rank).Input.(*TrendScan).SkipScan = true
	if Normalize(ta) != Normalize(tb) {
		t.Fatal("SkipScan leaked into the normalized string")
	}
}

func TestNormalizeCoversTree(t *testing.T) {
	p, err := FactPlan("DJI", "acquired", "Aeros", winDays(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	s := Normalize(p)
	for _, frag := range []string{"v1|", "class=fact", "Pred(", "WF(", "Scan(", "fact_check"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("normalized %q missing %q", s, frag)
		}
	}
}

func TestCacheable(t *testing.T) {
	bounded := winDays(0, 10)
	cases := []struct {
		name string
		p    *Plan
		tidx bool
		want bool
	}{
		{"diff", DiffPlan("DJI", bounded, winDays(10, 20)), true, true},
		{"diff without index", DiffPlan("DJI", bounded, winDays(10, 20)), false, true},
		{"trending backfill", TrendingPlan(bounded, 5), true, true},
		{"trending backfill no index", TrendingPlan(bounded, 5), false, false},
		{"trending live", TrendingPlan(temporal.All(), 5), true, false},
		{"trending empty window", TrendingPlan(temporal.Empty(), 5), true, false},
		{"entity", EntityPlan("DJI", bounded, 5), true, false},
		{"patterns", PatternsPlan(5), true, false},
		{"nil", nil, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Cacheable(tc.p, tc.tidx); got != tc.want {
				t.Fatalf("Cacheable = %v, want %v", got, tc.want)
			}
		})
	}
}
