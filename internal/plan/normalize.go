package plan

import (
	"fmt"
	"strings"

	"nous/internal/temporal"
)

// Normalize renders a plan as a canonical string: the class, the request
// parameters the renderer reads, and the operator tree with every window as
// raw [since,until) int64 bounds (Window.String's day granularity would
// collide windows that differ by less than a day). Two executions produce
// byte-identical answers whenever their normalized plans and graph epochs
// match, which is what makes (epoch, Normalize(p)) a sound plan-result cache
// key. Optimizer annotations (EvalBFirst, SkipScan) are execution strategy,
// not question identity, and are excluded — but normalization is applied to
// the pre-optimization reference plan anyway, so equal questions yield equal
// keys regardless of what the statistics decided.
func Normalize(p *Plan) string {
	var b strings.Builder
	b.WriteString("v1|class=")
	b.WriteString(p.Class)
	fmt.Fprintf(&b, "|s=%q|o=%q|p=%q|k=%d|w=", p.Subject, p.Object, p.Predicate, p.K)
	normWindow(&b, p.Window)
	b.WriteString("|wb=")
	normWindow(&b, p.WindowB)
	b.WriteString("|root=")
	normNode(&b, p.Root)
	return b.String()
}

// normWindow writes a window's raw bounds. Never canonicalizes: distinct
// representations of equivalent windows (the zero value vs the explicit
// full range, different inverted empties) may only cost a duplicate cache
// entry — collapsing them could alias plans whose rendered answers embed
// the raw bounds.
func normWindow(b *strings.Builder, w temporal.Window) {
	fmt.Fprintf(b, "[%d,%d)", w.Since, w.Until)
}

func normNode(b *strings.Builder, n Node) {
	if n == nil {
		b.WriteString("nil")
		return
	}
	switch t := n.(type) {
	case *Scan:
		fmt.Fprintf(b, "Scan(%s,s=%q,o=%q,p=%q)", t.Source, t.Subject, t.Object, t.Predicate)
	case *WindowFilter:
		b.WriteString("WF(")
		normWindow(b, t.Window)
		b.WriteByte(',')
		normNode(b, t.Input)
		b.WriteByte(')')
	case *Rank:
		fmt.Fprintf(b, "Rank(%d,", t.K)
		normNode(b, t.Input)
		b.WriteByte(')')
	case *Summarize:
		fmt.Fprintf(b, "Sum(s=%q,w=", t.Subject)
		normWindow(b, t.Window)
		b.WriteByte(',')
		normNode(b, t.Input)
		b.WriteByte(')')
	case *Predict:
		fmt.Fprintf(b, "Pred(s=%q,p=%q,o=%q,", t.Subject, t.Predicate, t.Object)
		normNode(b, t.Input)
		b.WriteByte(')')
	case *PathExplain:
		fmt.Fprintf(b, "Path(s=%q,o=%q,p=%q,k=%d,w=", t.Subject, t.Object, t.Predicate, t.K)
		normWindow(b, t.Window)
		b.WriteByte(')')
	case *TrendScan:
		fmt.Fprintf(b, "Trend(backfill=%t,w=", t.Backfill)
		normWindow(b, t.Window)
		b.WriteByte(')')
	case *Diff:
		fmt.Fprintf(b, "Diff(e=%q,wa=", t.Entity)
		normWindow(b, t.WindowA)
		b.WriteString(",wb=")
		normWindow(b, t.WindowB)
		b.WriteByte(',')
		normNode(b, t.A)
		b.WriteByte(',')
		normNode(b, t.B)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "%T", n)
	}
}

// Cacheable reports whether p's result is a pure function of (graph epoch,
// normalized plan) — nothing in its evaluation may read the query clock or
// state outside the graph and its epoch-tracked derivatives. Two classes
// qualify today:
//
//   - diff: both sides read windowed graph/temporal-index state; rendering
//     never consults the clock.
//   - trending, only on the backfill path (bounded window + temporal index
//     present): the replay is a deterministic read of the dated stream. Live
//     trending is anchored at the query clock and detector state, so it is
//     not cacheable; nor are entity summaries, whose activity sparkline is
//     clock-anchored for unbounded-until windows and whose detector series
//     mutate without epoch bumps.
func Cacheable(p *Plan, haveTIndex bool) bool {
	if p == nil || p.Root == nil {
		return false
	}
	switch p.Class {
	case "diff":
		return true
	case "trending":
		cacheable := false
		var walk func(n Node)
		walk = func(n Node) {
			if t, ok := n.(*TrendScan); ok {
				cacheable = t.Backfill && t.Window.Bounded() && !t.Window.IsEmpty() && haveTIndex
			}
			for _, in := range n.Inputs() {
				if in != nil {
					walk(in)
				}
			}
		}
		walk(p.Root)
		return cacheable
	}
	return false
}
