package plan

import (
	"strings"
	"testing"
	"time"

	"nous/internal/core"
	"nous/internal/temporal"
	"nous/internal/trends"
)

func day(n int) time.Time {
	return time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func window(a, b int) temporal.Window {
	return temporal.Between(day(a), day(b))
}

// buildExecutor wires a small KG (with its temporal index) and a detector.
func buildExecutor(t *testing.T) *Executor {
	t.Helper()
	kg := core.NewKG(nil)
	det := trends.NewDetector(trends.Config{Bucket: 7 * 24 * time.Hour, Smoothing: 1, MinCurrent: 2})
	kg.Subscribe(det.OnEvent)
	triples := []core.Triple{
		{Subject: "DJI", Predicate: "manufactures", Object: "Phantom 3", Confidence: 1, Curated: true, Provenance: core.Provenance{Source: "kb"}},
	}
	// Weeks 0..2: quiet baseline for DJI; week 3: a burst.
	for wk := 0; wk < 3; wk++ {
		triples = append(triples, core.Triple{
			Subject: "DJI", Predicate: "acquired", Object: "Tiny Co", Confidence: 0.7,
			Provenance: core.Provenance{Source: "wsj", Time: day(wk * 7)},
		})
	}
	for i := 0; i < 4; i++ {
		triples = append(triples, core.Triple{
			Subject: "DJI", Predicate: "acquired", Object: "Aeros", Confidence: 0.8,
			Provenance: core.Provenance{Source: "wsj", Time: day(21)},
		})
	}
	// Week 6: a different entity so the post-burst stream is not empty.
	triples = append(triples, core.Triple{
		Subject: "GoPro", Predicate: "acquired", Object: "Karma", Confidence: 0.9,
		Provenance: core.Provenance{Source: "wsj", Time: day(42)},
	})
	for _, tr := range triples {
		if _, err := kg.AddFact(tr); err != nil {
			t.Fatal(err)
		}
	}
	return &Executor{
		KG:     kg,
		Trends: det,
		TIndex: kg.TemporalIndex(),
		Now:    func() time.Time { return day(49) },
		Stats:  NewStats(),
	}
}

func TestTrendScanBackfillFindsMidWindowBurst(t *testing.T) {
	ex := buildExecutor(t)
	// Window covering weeks 2..5: the week-3 burst is inside but is NOT the
	// end bucket. The live detector anchored at the window's end would see a
	// quiet bucket; backfill must surface the burst.
	p := TrendingPlan(window(14, 42), 10)
	r, err := ex.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	var dji *trends.Trend
	for i := range r.Trends {
		if r.Trends[i].Name == "DJI" {
			dji = &r.Trends[i]
		}
	}
	if dji == nil || dji.Current != 4 {
		t.Fatalf("backfill missed the mid-window burst: %+v", r.Trends)
	}
	if !strings.Contains(r.Text, "windowed backfill") {
		t.Fatalf("backfill text missing marker:\n%s", r.Text)
	}
}

func TestTrendScanUnboundedStaysLive(t *testing.T) {
	ex := buildExecutor(t)
	r, err := ex.Run(TrendingPlan(temporal.All(), 10))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.Text, "Trending now:") {
		t.Fatalf("unbounded trending must use the live detector:\n%s", r.Text)
	}
}

func TestTrendScanWithoutIndexFallsBackToLiveDetector(t *testing.T) {
	ex := buildExecutor(t)
	ex.TIndex = nil
	r, err := ex.Run(TrendingPlan(window(14, 42), 10))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Text, "backfill") {
		t.Fatalf("fallback still claims backfill:\n%s", r.Text)
	}
	if !strings.HasPrefix(r.Text, "Trending in ") {
		t.Fatalf("fallback text wrong:\n%s", r.Text)
	}
}

func TestStreamDiffOffTemporalIndex(t *testing.T) {
	ex := buildExecutor(t)
	// Week 3 (the burst) vs week 6 (GoPro): everything swaps.
	r, err := ex.Run(DiffPlan("", window(21, 28), window(42, 49)))
	if err != nil {
		t.Fatal(err)
	}
	d := r.Diff
	if d == nil {
		t.Fatalf("no diff payload:\n%s", r.Text)
	}
	if len(d.Added) != 1 || d.Added[0].Subject != "GoPro" {
		t.Fatalf("added = %+v", d.Added)
	}
	if len(d.Removed) != 1 || d.Removed[0].Object != "Aeros" {
		t.Fatalf("removed = %+v (repeated mentions must dedup)", d.Removed)
	}
	if d.Unchanged != 0 {
		t.Fatalf("unchanged = %d", d.Unchanged)
	}
}

func TestStreamDiffUnboundedBelowExcludesCurated(t *testing.T) {
	ex := buildExecutor(t)
	// The "what is new since D" shape: window A is unbounded below and so
	// covers the timeless sentinel timestamp curated edges carry. Curated
	// knowledge is visible in every window and must never surface as a
	// removed change just because only one side of the diff spans its
	// timestamp.
	r, err := ex.Run(DiffPlan("", temporal.UntilTime(day(42)), temporal.SinceTime(day(42))))
	if err != nil {
		t.Fatal(err)
	}
	d := r.Diff
	if d == nil {
		t.Fatalf("no diff payload:\n%s", r.Text)
	}
	if len(d.Added) != 1 || d.Added[0].Subject != "GoPro" {
		t.Fatalf("added = %+v", d.Added)
	}
	for _, f := range append(append([]core.Fact{}, d.Added...), d.Removed...) {
		if f.Curated {
			t.Fatalf("curated fact reported as change: %+v", f)
		}
	}
}

func TestEntityDiffExcludesUndatedExtracted(t *testing.T) {
	ex := buildExecutor(t)
	// An undated extracted fact cannot be attributed to either window; the
	// entity-scoped diff must drop it like the whole-stream side's DatedIn
	// does, not claim it for the unbounded-below window and report it
	// removed.
	if _, err := ex.KG.AddFact(core.Triple{
		Subject: "DJI", Predicate: "acquired", Object: "NoDate Co", Confidence: 0.6,
		Provenance: core.Provenance{Source: "wsj"},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := ex.Run(DiffPlan("DJI", temporal.UntilTime(day(21)), temporal.SinceTime(day(21))))
	if err != nil {
		t.Fatal(err)
	}
	d := r.Diff
	if d == nil {
		t.Fatalf("no diff payload:\n%s", r.Text)
	}
	for _, f := range append(append([]core.Fact{}, d.Added...), d.Removed...) {
		if f.Object == "NoDate Co" {
			t.Fatalf("undated extracted fact reported as change: %+v", f)
		}
	}
}

func TestEntityDiffCuratedCancelsOut(t *testing.T) {
	ex := buildExecutor(t)
	r, err := ex.Run(DiffPlan("DJI", window(0, 7), window(21, 28)))
	if err != nil {
		t.Fatal(err)
	}
	d := r.Diff
	if d == nil || d.Entity != "DJI" {
		t.Fatalf("diff = %+v", d)
	}
	// The curated manufactures fact is visible in both windows → unchanged.
	if d.Unchanged != 1 {
		t.Fatalf("unchanged = %d, want the curated fact", d.Unchanged)
	}
	for _, f := range append(append([]core.Fact{}, d.Added...), d.Removed...) {
		if f.Curated {
			t.Fatalf("curated fact reported as change: %+v", f)
		}
	}
}

func TestExplainRendersOperatorTree(t *testing.T) {
	p := EntityPlan("DJI", window(0, 7), 10)
	out := p.Explain()
	for _, want := range []string{"plan class=entity", "Summarize(", "Rank(k=10)", "WindowFilter(", "Scan(source=facts_about"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
	// Indentation reflects nesting: Scan is the deepest operator.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[len(lines)-1], strings.Repeat("  ", 4)) {
		t.Fatalf("Scan not at depth 4:\n%s", out)
	}

	// Unwindowed plans skip the WindowFilter so the hot path is visible.
	if strings.Contains(EntityPlan("DJI", temporal.All(), 10).Explain(), "WindowFilter") {
		t.Fatal("unbounded plan still wraps a WindowFilter")
	}

	d := DiffPlan("DJI", window(0, 7), window(7, 14)).Describe()
	if d.Op != string(OpDiff) || len(d.Inputs) != 2 {
		t.Fatalf("Describe() = %+v", d)
	}
}

func TestExecStatsCountPlansAndOps(t *testing.T) {
	ex := buildExecutor(t)
	if _, err := ex.Run(EntityPlan("DJI", window(0, 7), 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(TrendingPlan(temporal.All(), 5)); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats.Snapshot()
	if st.Plans != 2 || st.ByClass["entity"] != 1 || st.ByClass["trending"] != 1 {
		t.Fatalf("stats = %+v", st)
	}
	for _, op := range []Op{OpSummarize, OpRank, OpWindowFilter, OpScan, OpTrendScan} {
		if st.Ops[string(op)] == 0 {
			t.Fatalf("op %s not counted: %+v", op, st.Ops)
		}
	}
}

func TestRunRejectsEmptyAndUnknownPlans(t *testing.T) {
	ex := buildExecutor(t)
	if _, err := ex.Run(nil); err == nil {
		t.Fatal("nil plan accepted")
	}
	if _, err := ex.Run(&Plan{Class: "bogus", Root: &Scan{Source: SourcePatterns}}); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := ex.Run(&Plan{Class: "fact", Root: &Scan{Source: Source("bogus")}}); err == nil {
		t.Fatal("unknown scan source accepted")
	}
}
