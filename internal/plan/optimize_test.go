package plan

import (
	"math"
	"testing"

	"nous/internal/temporal"
)

// fakeCard is a scriptable Cardinality for exercising optimizer decisions
// without a graph.
type fakeCard struct {
	total  float64
	pred   map[string]float64
	ent    map[string]float64
	win    func(w temporal.Window) float64
	bucket int64
}

func (f *fakeCard) TotalFacts() float64 { return f.total }
func (f *fakeCard) PredicateFacts(p string) float64 {
	if v, ok := f.pred[p]; ok {
		return v
	}
	return -1
}
func (f *fakeCard) EntityFacts(e string) float64 {
	if v, ok := f.ent[e]; ok {
		return v
	}
	return -1
}
func (f *fakeCard) WindowFacts(w temporal.Window) float64 {
	if f.win == nil {
		return -1
	}
	return f.win(w)
}
func (f *fakeCard) TrendBucketSeconds() int64 { return f.bucket }

func winDays(sinceDay, untilDay int64) temporal.Window {
	const day = 86400
	return temporal.Window{Since: sinceDay * day, Until: untilDay * day}
}

func TestOptimizeDoesNotMutateReference(t *testing.T) {
	p := DiffPlan("", winDays(0, 10), winDays(10, 20))
	before := Normalize(p)
	card := &fakeCard{win: func(w temporal.Window) float64 {
		if w.Since >= 10*86400 {
			return 1 // B side is smaller: the rewrite should fire on the clone
		}
		return 100
	}}
	opt := Optimize(p, card)
	if Normalize(p) != before {
		t.Fatal("Optimize mutated the reference plan")
	}
	if p.Root.(*Diff).EvalBFirst {
		t.Fatal("rewrite flag set on the reference tree")
	}
	if opt.Plan.Root == p.Root {
		t.Fatal("optimized tree aliases the reference tree")
	}
	if !opt.Plan.Root.(*Diff).EvalBFirst {
		t.Fatal("EvalBFirst not set on the optimized clone")
	}
}

func TestOptimizeDiffOrder(t *testing.T) {
	cases := []struct {
		name       string
		win        func(w temporal.Window) float64
		evalBFirst bool
	}{
		{"b smaller", func(w temporal.Window) float64 {
			if w.Since >= 10*86400 {
				return 2
			}
			return 50
		}, true},
		{"a smaller", func(w temporal.Window) float64 {
			if w.Since >= 10*86400 {
				return 50
			}
			return 2
		}, false},
		{"equal", func(temporal.Window) float64 { return 5 }, false},
		{"unknown", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DiffPlan("", winDays(0, 10), winDays(10, 20))
			opt := Optimize(p, &fakeCard{win: tc.win})
			if got := opt.Plan.Root.(*Diff).EvalBFirst; got != tc.evalBFirst {
				t.Fatalf("EvalBFirst = %v, want %v", got, tc.evalBFirst)
			}
		})
	}
}

func TestOptimizePushesFiltersBelowRankAndSummarize(t *testing.T) {
	w := winDays(0, 30)
	p := &Plan{Class: "entity", Root: &WindowFilter{Window: w,
		Input: &Summarize{Subject: "DJI", Window: w,
			Input: &Rank{K: 5, Input: &Scan{Source: SourceFactsAbout, Subject: "DJI"}}}}}
	opt := Optimize(p, nil)
	sum, ok := opt.Plan.Root.(*Summarize)
	if !ok {
		t.Fatalf("root after pushdown = %T, want *Summarize", opt.Plan.Root)
	}
	rank, ok := sum.Input.(*Rank)
	if !ok {
		t.Fatalf("summarize input = %T, want *Rank", sum.Input)
	}
	wf, ok := rank.Input.(*WindowFilter)
	if !ok {
		t.Fatalf("rank input = %T, want *WindowFilter", rank.Input)
	}
	if _, ok := wf.Input.(*Scan); !ok {
		t.Fatalf("filter input = %T, want *Scan", wf.Input)
	}
	if wf.Window != w {
		t.Fatalf("pushed window = %v, want %v", wf.Window, w)
	}
}

func TestOptimizeMergesStackedFilters(t *testing.T) {
	outer, inner := winDays(0, 20), winDays(10, 30)
	p := &Plan{Class: "fact", Root: &WindowFilter{Window: outer,
		Input: &WindowFilter{Window: inner, Input: &Scan{Source: SourceStream}}}}
	opt := Optimize(p, nil)
	wf, ok := opt.Plan.Root.(*WindowFilter)
	if !ok {
		t.Fatalf("root = %T, want *WindowFilter", opt.Plan.Root)
	}
	if want := outer.Intersect(inner); wf.Window != want {
		t.Fatalf("merged window = %v, want %v", wf.Window, want)
	}
	if _, ok := wf.Input.(*Scan); !ok {
		t.Fatalf("merged filter input = %T, want *Scan", wf.Input)
	}
}

func TestOptimizeTrendScanSkip(t *testing.T) {
	const day = int64(86400)
	bucket := 7 * day
	// Window starts mid-bucket: the skip proof must widen Since down to the
	// bucket boundary, because facts earlier in the first overlapped bucket
	// still raise that bucket's count.
	w := temporal.Window{Since: 10*bucket + day, Until: 12 * bucket}

	trendPlan := func() *Plan { return TrendingPlan(w, 5) }
	skipOf := func(p *Plan, card Cardinality) bool {
		opt := Optimize(p, card)
		return opt.Plan.Root.(*Rank).Input.(*TrendScan).SkipScan
	}

	// Provably empty at bucket granularity: skip.
	if !skipOf(trendPlan(), &fakeCard{bucket: bucket, win: func(temporal.Window) float64 { return 0 }}) {
		t.Fatal("provably empty backfill window not skipped")
	}
	// Empty inside w but populated in the widened head of its first bucket:
	// the wider probe must see the facts and refuse the skip.
	headOnly := &fakeCard{bucket: bucket, win: func(q temporal.Window) float64 {
		if q.Since < 10*bucket+day {
			return 3 // the widened probe reaches the bucket head
		}
		return 0
	}}
	if skipOf(trendPlan(), headOnly) {
		t.Fatal("skipped despite facts in the window's first trend bucket")
	}
	// Unknown bucket width: no proof possible.
	if skipOf(trendPlan(), &fakeCard{bucket: 0, win: func(temporal.Window) float64 { return 0 }}) {
		t.Fatal("skipped without knowing the trend bucket width")
	}
	// Unknown selectivity (-1) is not an emptiness proof.
	if skipOf(trendPlan(), &fakeCard{bucket: bucket, win: nil}) {
		t.Fatal("skipped on unknown window statistics")
	}
	// Live (unbounded) trending never skips.
	live := TrendingPlan(temporal.All(), 5)
	if skipOf(live, &fakeCard{bucket: bucket, win: func(temporal.Window) float64 { return 0 }}) {
		t.Fatal("live trend scan skipped")
	}
}

func TestEstimateAnnotations(t *testing.T) {
	w := winDays(0, 10)
	p := EntityPlan("DJI", w, 3)
	card := &fakeCard{
		total: 100,
		ent:   map[string]float64{"DJI": 40},
		win: func(q temporal.Window) float64 {
			if !q.Bounded() {
				return 100
			}
			return 25 // quarter of the stream in any bounded probe
		},
	}
	opt := Optimize(p, card)
	// Scan: degree 40 scaled by 25/100; Rank clamps to K=3.
	var scanEst, rankEst float64 = -2, -2
	var walk func(n Node)
	walk = func(n Node) {
		switch n.(type) {
		case *Scan:
			scanEst = opt.Est[n]
		case *Rank:
			rankEst = opt.Est[n]
		}
		for _, in := range n.Inputs() {
			walk(in)
		}
	}
	walk(opt.Plan.Root)
	if scanEst != 10 {
		t.Fatalf("scan est = %v, want 10 (degree 40 × selectivity 0.25)", scanEst)
	}
	if rankEst != 3 {
		t.Fatalf("rank est = %v, want clamp to k=3", rankEst)
	}
	// Unknown estimates stay -1 and are omitted from descriptions.
	pat := PatternsPlan(5)
	desc := Optimize(pat, card).Describe(nil)
	if desc.EstRows != nil {
		t.Fatalf("pattern rank est_rows = %v, want omitted (unknown)", *desc.EstRows)
	}
}

func TestTrendRelevantWindowNegativeAndUnbounded(t *testing.T) {
	const b = int64(100)
	// Negative Since floors toward -inf, not toward zero.
	w, ok := trendRelevantWindow(temporal.Window{Since: -150, Until: 50}, b)
	if !ok || w.Since != -200 || w.Until != 50 {
		t.Fatalf("negative floor: got %v ok=%v, want [-200,50)", w, ok)
	}
	// Aligned bounds stay put.
	w, _ = trendRelevantWindow(temporal.Window{Since: -200, Until: 50}, b)
	if w.Since != -200 {
		t.Fatalf("aligned floor moved: %v", w)
	}
	// Unbounded Since survives without overflow.
	w, ok = trendRelevantWindow(temporal.Window{Since: math.MinInt64, Until: 50}, b)
	if !ok || w.Since != math.MinInt64 {
		t.Fatalf("unbounded since: got %v ok=%v", w, ok)
	}
}
