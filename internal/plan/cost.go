package plan

import (
	"nous/internal/core"
	"nous/internal/temporal"
)

// Cardinality is the planner's window into the storage layer's statistics:
// cheap counts the optimizer can afford to consult per query. Every method
// is O(shards) or O(histogram buckets) — never a scan. Estimates may return
// -1 ("unknown") when the backing structure is absent; the optimizer then
// leaves the corresponding decision alone.
type Cardinality interface {
	// TotalFacts is the number of live edges in the graph.
	TotalFacts() float64
	// PredicateFacts is the number of live edges carrying the predicate.
	PredicateFacts(predicate string) float64
	// EntityFacts is the degree of the named entity, or -1 when the exact
	// name is unknown (alias resolution is an execution-time concern).
	EntityFacts(entity string) float64
	// WindowFacts estimates the dated facts inside w from the temporal
	// index's time-bucket histogram, or -1 without an index. An answer of
	// exactly 0 is a proof: no dated fact lies in w.
	WindowFacts(w temporal.Window) float64
	// TrendBucketSeconds is the trend detector's bucket width, or 0 when
	// unknown. The TrendScan skip rewrite needs it to expand a window to
	// bucket granularity before asking WindowFacts for an emptiness proof.
	TrendBucketSeconds() int64
}

// GraphStats sources cardinalities from the live graph core: per-stripe
// edge and label counters and the temporal index's selectivity histogram.
type GraphStats struct {
	KG     *core.KG
	TIndex *temporal.Index
	// TrendBucketSec mirrors the trend detector's configured bucket width.
	TrendBucketSec int64
}

func (g *GraphStats) TotalFacts() float64 {
	if g.KG == nil {
		return -1
	}
	return float64(g.KG.Graph().NumEdges())
}

func (g *GraphStats) PredicateFacts(predicate string) float64 {
	if g.KG == nil {
		return -1
	}
	return float64(g.KG.Graph().EdgesWithLabel(predicate))
}

func (g *GraphStats) EntityFacts(entity string) float64 {
	if g.KG == nil || entity == "" {
		return -1
	}
	id, ok := g.KG.Entity(entity)
	if !ok {
		return -1
	}
	return float64(g.KG.Graph().Degree(id))
}

func (g *GraphStats) WindowFacts(w temporal.Window) float64 {
	if g.TIndex == nil {
		return -1
	}
	return g.TIndex.EstimateIn(w)
}

func (g *GraphStats) TrendBucketSeconds() int64 { return g.TrendBucketSec }

// minEst combines two possibly-unknown estimates by the smaller; unknown
// sides are ignored, and two unknowns stay unknown.
func minEst(a, b float64) float64 {
	switch {
	case a < 0:
		return b
	case b < 0:
		return a
	case b < a:
		return b
	}
	return a
}

// windowFraction scales a whole-graph estimate n by the fraction of the
// dated stream inside w. Curated facts pass every window, so this is a
// heuristic, not a bound; unknown inputs pass through unscaled.
func windowFraction(n float64, w temporal.Window, card Cardinality) float64 {
	if n < 0 || !w.Bounded() {
		return n
	}
	in := card.WindowFacts(w)
	//nouslint:allow windowthread -- the unbounded probe is the selectivity denominator (whole-stream count), not a dropped caller window
	all := card.WindowFacts(temporal.All())
	if in < 0 || all <= 0 {
		return n
	}
	sel := in / all
	if sel > 1 {
		sel = 1
	}
	return n * sel
}

// estimateScan estimates one leaf scan's output rows under the effective
// (pushed-down) window w.
func estimateScan(t *Scan, w temporal.Window, card Cardinality) float64 {
	switch t.Source {
	case SourceFactsAbout:
		return windowFraction(card.EntityFacts(t.Subject), w, card)
	case SourceObjects:
		return windowFraction(minEst(card.EntityFacts(t.Subject), card.PredicateFacts(t.Predicate)), w, card)
	case SourceSubjects:
		return windowFraction(minEst(card.EntityFacts(t.Object), card.PredicateFacts(t.Predicate)), w, card)
	case SourceFactCheck:
		// A membership probe emits at most the probed triple (plus its
		// evidence pool, bounded by the subject's degree).
		return 1
	case SourcePatterns:
		return -1 // miner state is not graph state; no statistics
	case SourceStream:
		return card.WindowFacts(w)
	}
	return -1
}

// estimateNode walks the tree bottom-up, threading the window exactly the
// way the executor's eval does (enclosing WindowFilters intersect down to
// the leaves), and records every node's estimated output rows in est.
// Unknown estimates are recorded as -1 and propagate upward.
func estimateNode(n Node, w temporal.Window, card Cardinality, est map[Node]float64) float64 {
	var rows float64
	switch t := n.(type) {
	case *WindowFilter:
		rows = estimateNode(t.Input, t.Window.Intersect(w), card, est)
	case *Scan:
		rows = estimateScan(t, w, card)
	case *Rank:
		rows = estimateNode(t.Input, w, card, est)
		if t.K > 0 && rows > float64(t.K) {
			rows = float64(t.K)
		}
	case *Summarize:
		rows = estimateNode(t.Input, w, card, est)
	case *Predict:
		rows = estimateNode(t.Input, w, card, est)
	case *PathExplain:
		rows = float64(t.K)
	case *TrendScan:
		if t.Backfill && t.Window.Bounded() {
			// For a backfill scan the cost driver is the dated facts it
			// must bucket and score, not the trend count (Rank bounds
			// that); estimate the former.
			rows = card.WindowFacts(t.Window)
		} else {
			rows = -1 // live detector state; no graph-side statistics
		}
	case *Diff:
		// Each side carries its own WindowFilter; the enclosing window does
		// not apply across a Diff (mirrors eval, which resets the window for
		// the two sides).
		//nouslint:allow windowthread -- diff sides scope themselves; the enclosing window deliberately does not thread through
		ra := estimateNode(t.A, temporal.All(), card, est)
		//nouslint:allow windowthread -- diff sides scope themselves; the enclosing window deliberately does not thread through
		rb := estimateNode(t.B, temporal.All(), card, est)
		if ra < 0 || rb < 0 {
			rows = -1
		} else {
			rows = ra + rb // upper bound on added+removed
		}
	default:
		rows = -1
	}
	if rows < 0 {
		rows = -1
	}
	est[n] = rows
	return rows
}
