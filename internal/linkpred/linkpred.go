// Package linkpred implements the confidence-estimation stage of §3.4:
// per-predicate latent-feature embedding models trained with Bayesian
// Personalized Ranking (Zhang et al., "Trust from the past", SDM-MNG 2016).
// For every predicate a model learns subject and object factor vectors such
// that observed (s,p,o) triples score higher than corrupted ones; the
// sigmoid of the factor product yields a confidence in (0,1) used to gate
// noisy extracted facts before they enter the knowledge graph. Frequency
// and common-neighbor baselines are included for the evaluation.
package linkpred

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nous/internal/core"
)

// Config controls BPR training.
type Config struct {
	Dim          int     // latent dimension
	Epochs       int     // passes over the training triples
	LearningRate float64 // SGD step size
	Reg          float64 // L2 regularization
	NegSamples   int     // corrupted samples per positive per epoch
	Seed         int64
}

// DefaultConfig is tuned for KGs in the 10^2–10^5 triple range.
func DefaultConfig() Config {
	return Config{Dim: 16, Epochs: 30, LearningRate: 0.05, Reg: 0.01, NegSamples: 4, Seed: 1}
}

// predModel holds the factors of one predicate.
type predModel struct {
	subj map[string][]float64 // subject factors by entity
	obj  map[string][]float64 // object factors by entity
	// positives are the observed (s,o) pairs, for negative sampling and
	// the frequency baseline; pairs preserves insertion order so training
	// is deterministic under a fixed seed.
	positives map[[2]string]bool
	pairs     [][2]string
	subjects  []string
	objects   []string
}

// Model is a trained collection of per-predicate BPR models.
type Model struct {
	cfg    Config
	preds  map[string]*predModel
	rng    *rand.Rand
	global float64 // global mean score used for unseen predicates
}

// Train fits a model on the given triples (typically the curated KB plus
// high-confidence extractions so far).
func Train(triples []core.Triple, cfg Config) *Model {
	if cfg.Dim <= 0 {
		cfg = DefaultConfig()
	}
	m := &Model{cfg: cfg, preds: make(map[string]*predModel), rng: rand.New(rand.NewSource(cfg.Seed)), global: 0.5}
	for _, t := range triples {
		m.observe(t)
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		m.epoch()
	}
	return m
}

// observe registers a triple with its predicate model, initializing factors
// for unseen entities.
func (m *Model) observe(t core.Triple) {
	pm, ok := m.preds[t.Predicate]
	if !ok {
		pm = &predModel{
			subj:      make(map[string][]float64),
			obj:       make(map[string][]float64),
			positives: make(map[[2]string]bool),
		}
		m.preds[t.Predicate] = pm
	}
	if _, ok := pm.subj[t.Subject]; !ok {
		pm.subj[t.Subject] = m.randVec()
		pm.subjects = append(pm.subjects, t.Subject)
	}
	if _, ok := pm.obj[t.Object]; !ok {
		pm.obj[t.Object] = m.randVec()
		pm.objects = append(pm.objects, t.Object)
	}
	pair := [2]string{t.Subject, t.Object}
	if !pm.positives[pair] {
		pm.positives[pair] = true
		pm.pairs = append(pm.pairs, pair)
	}
}

func (m *Model) randVec() []float64 {
	v := make([]float64, m.cfg.Dim)
	scale := 1.0 / math.Sqrt(float64(m.cfg.Dim))
	for i := range v {
		v[i] = (m.rng.Float64()*2 - 1) * scale
	}
	return v
}

// epoch runs one BPR-SGD pass over all predicates.
func (m *Model) epoch() {
	names := make([]string, 0, len(m.preds))
	for p := range m.preds {
		names = append(names, p)
	}
	sort.Strings(names) // deterministic epoch order
	for _, p := range names {
		pm := m.preds[p]
		for _, pair := range pm.pairs {
			for k := 0; k < m.cfg.NegSamples; k++ {
				m.bprStep(pm, pair[0], pair[1])
			}
		}
	}
}

// bprStep performs one BPR update: positive (s,o) against a corrupted
// object o' (or subject s', alternating).
func (m *Model) bprStep(pm *predModel, s, o string) {
	corruptObject := m.rng.Intn(2) == 0
	var negS, negO string
	if corruptObject && len(pm.objects) > 1 {
		negS = s
		negO = pm.objects[m.rng.Intn(len(pm.objects))]
		if pm.positives[[2]string{negS, negO}] {
			return // sampled a positive; skip this step
		}
	} else if len(pm.subjects) > 1 {
		negO = o
		negS = pm.subjects[m.rng.Intn(len(pm.subjects))]
		if pm.positives[[2]string{negS, negO}] {
			return
		}
	} else {
		return
	}

	us, vo := pm.subj[s], pm.obj[o]
	un, vn := pm.subj[negS], pm.obj[negO]
	xPos := dot(us, vo)
	xNeg := dot(un, vn)
	// d/dθ of -ln σ(xPos - xNeg)
	g := sigmoid(xNeg - xPos) // = 1 - σ(xPos-xNeg)
	lr, reg := m.cfg.LearningRate, m.cfg.Reg

	for i := range us {
		gradUs := g*vo[i] - reg*us[i]
		gradVo := g*us[i] - reg*vo[i]
		gradUn := -g*vn[i] - reg*un[i]
		gradVn := -g*un[i] - reg*vn[i]
		// When the corrupted triple shares a factor vector with the
		// positive (same subject or same object), both gradients apply to
		// the shared vector; applying them sequentially is equivalent for
		// small steps.
		us[i] += lr * gradUs
		vo[i] += lr * gradVo
		un[i] += lr * gradUn
		vn[i] += lr * gradVn
	}
}

// Score returns the model's confidence in (s, p, o) as a sigmoid over the
// factor product. Unseen predicates or entities fall back to neutral 0.5
// scaled by how much of the triple is known.
func (m *Model) Score(s, p, o string) float64 {
	pm, ok := m.preds[p]
	if !ok {
		return m.global
	}
	us, okS := pm.subj[s]
	vo, okO := pm.obj[o]
	if !okS || !okO {
		// Back off: an entity never seen in this role carries no signal.
		return m.global
	}
	return sigmoid(dot(us, vo))
}

// Update performs online training on a new triple: it is registered as a
// positive and receives a few SGD steps, supporting the paper's dynamic-KG
// setting where extraction and scoring interleave.
func (m *Model) Update(t core.Triple, steps int) {
	m.observe(t)
	pm := m.preds[t.Predicate]
	for i := 0; i < steps; i++ {
		m.bprStep(pm, t.Subject, t.Object)
	}
}

// Predicates returns the predicates the model covers, sorted.
func (m *Model) Predicates() []string {
	out := make([]string, 0, len(m.preds))
	for p := range m.preds {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// AUC estimates ranking quality for one predicate: the probability that a
// held-out positive (s,o) outscores a random corrupted (s,o'). Returns 0.5
// for unknown predicates.
func (m *Model) AUC(p string, heldOut [][2]string, samples int, seed int64) float64 {
	pm, ok := m.preds[p]
	if !ok || len(pm.objects) < 2 || len(heldOut) == 0 {
		return 0.5
	}
	rng := rand.New(rand.NewSource(seed))
	wins, total := 0.0, 0.0
	for _, pos := range heldOut {
		for k := 0; k < samples; k++ {
			negO := pm.objects[rng.Intn(len(pm.objects))]
			if pm.positives[[2]string{pos[0], negO}] || negO == pos[1] {
				continue
			}
			ps := m.Score(pos[0], p, pos[1])
			ns := m.Score(pos[0], p, negO)
			switch {
			case ps > ns:
				wins++
			case ps == ns:
				wins += 0.5
			}
			total++
		}
	}
	if total == 0 {
		return 0.5
	}
	return wins / total
}

// String summarises the model.
func (m *Model) String() string {
	n := 0
	for _, pm := range m.preds {
		n += len(pm.positives)
	}
	return fmt.Sprintf("linkpred.Model{predicates: %d, positives: %d, dim: %d}", len(m.preds), n, m.cfg.Dim)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sigmoid(x float64) float64 {
	return 1.0 / (1.0 + math.Exp(-x))
}
