package linkpred

import (
	"math/rand"

	"nous/internal/core"
)

// FrequencyBaseline scores (s,p,o) by the popularity of o as an object of p
// — the naive confidence heuristic the BPR model is compared against.
type FrequencyBaseline struct {
	objCount map[string]map[string]int // predicate -> object -> count
	maxCount map[string]int
}

// NewFrequencyBaseline counts object frequencies per predicate.
func NewFrequencyBaseline(triples []core.Triple) *FrequencyBaseline {
	b := &FrequencyBaseline{
		objCount: make(map[string]map[string]int),
		maxCount: make(map[string]int),
	}
	for _, t := range triples {
		byObj, ok := b.objCount[t.Predicate]
		if !ok {
			byObj = make(map[string]int)
			b.objCount[t.Predicate] = byObj
		}
		byObj[t.Object]++
		if byObj[t.Object] > b.maxCount[t.Predicate] {
			b.maxCount[t.Predicate] = byObj[t.Object]
		}
	}
	return b
}

// Score returns the normalized object popularity in [0,1].
func (b *FrequencyBaseline) Score(s, p, o string) float64 {
	byObj, ok := b.objCount[p]
	if !ok || b.maxCount[p] == 0 {
		return 0.5
	}
	return float64(byObj[o]) / float64(b.maxCount[p])
}

// CommonNeighborBaseline scores (s,p,o) by the Jaccard overlap of s and o's
// KG neighborhoods: a classical topology-only link predictor.
type CommonNeighborBaseline struct {
	kg *core.KG
}

// NewCommonNeighborBaseline wraps a KG.
func NewCommonNeighborBaseline(kg *core.KG) *CommonNeighborBaseline {
	return &CommonNeighborBaseline{kg: kg}
}

// Score returns the neighborhood Jaccard of subject and object.
func (b *CommonNeighborBaseline) Score(s, p, o string) float64 {
	ns := b.kg.Neighborhood(s, 1)
	no := b.kg.Neighborhood(o, 1)
	if len(ns) == 0 || len(no) == 0 {
		return 0
	}
	set := make(map[string]bool, len(ns))
	for _, x := range ns {
		set[x] = true
	}
	inter := 0
	for _, x := range no {
		if set[x] {
			inter++
		}
	}
	union := len(ns) + len(no) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Scorer is the common interface of the BPR model and its baselines.
type Scorer interface {
	Score(s, p, o string) float64
}

// EvalAUC measures any scorer's AUC on one predicate: held-out positives
// versus corruptions drawn from the provided object pool.
func EvalAUC(sc Scorer, p string, heldOut [][2]string, objectPool []string, isPositive func(s, o string) bool, samples int, seed int64) float64 {
	if len(heldOut) == 0 || len(objectPool) < 2 {
		return 0.5
	}
	rng := rand.New(rand.NewSource(seed))
	wins, total := 0.0, 0.0
	for _, pos := range heldOut {
		for k := 0; k < samples; k++ {
			negO := objectPool[rng.Intn(len(objectPool))]
			if negO == pos[1] || isPositive(pos[0], negO) {
				continue
			}
			ps := sc.Score(pos[0], p, pos[1])
			ns := sc.Score(pos[0], p, negO)
			switch {
			case ps > ns:
				wins++
			case ps == ns:
				wins += 0.5
			}
			total++
		}
	}
	if total == 0 {
		return 0.5
	}
	return wins / total
}
