package linkpred

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"nous/internal/core"
)

// blockWorld builds a structured bipartite world for the "acquired"
// predicate: subjects in block A acquire objects in block A', subjects in B
// acquire objects in B'. The block structure is exactly what a latent-factor
// model can learn and a frequency baseline cannot.
func blockWorld(nPerBlock int, seed int64) (train []core.Triple, test [][2]string, isPos func(s, o string) bool) {
	rng := rand.New(rand.NewSource(seed))
	pos := map[[2]string]bool{}
	var all [][2]string
	for block := 0; block < 2; block++ {
		for i := 0; i < nPerBlock; i++ {
			s := fmt.Sprintf("S%d-%d", block, i)
			for j := 0; j < nPerBlock; j++ {
				if rng.Float64() < 0.6 {
					o := fmt.Sprintf("O%d-%d", block, j)
					pos[[2]string{s, o}] = true
					all = append(all, [2]string{s, o})
				}
			}
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	cut := len(all) * 4 / 5
	for _, p := range all[:cut] {
		train = append(train, core.Triple{Subject: p[0], Predicate: "acquired", Object: p[1], Confidence: 1})
	}
	test = all[cut:]
	return train, test, func(s, o string) bool { return pos[[2]string{s, o}] }
}

func TestScoreInUnitInterval(t *testing.T) {
	train, _, _ := blockWorld(6, 1)
	m := Train(train, DefaultConfig())
	for _, tr := range train {
		s := m.Score(tr.Subject, tr.Predicate, tr.Object)
		if s <= 0 || s >= 1 {
			t.Fatalf("score out of (0,1): %v", s)
		}
	}
}

func TestScoreQuickProperty(t *testing.T) {
	train, _, _ := blockWorld(5, 2)
	m := Train(train, DefaultConfig())
	subjects := []string{"S0-0", "S1-1", "nope", "S0-3"}
	objects := []string{"O0-0", "O1-2", "missing", "O1-4"}
	f := func(i, j uint8) bool {
		s := m.Score(subjects[int(i)%len(subjects)], "acquired", objects[int(j)%len(objects)])
		return s > 0 && s < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingBeatsUntrained(t *testing.T) {
	train, test, _ := blockWorld(8, 3)
	cfg := DefaultConfig()
	trained := Train(train, cfg)

	cfg0 := cfg
	cfg0.Epochs = 0
	untrained := Train(train, cfg0)

	aucT := trained.AUC("acquired", test, 20, 99)
	aucU := untrained.AUC("acquired", test, 20, 99)
	if aucT < 0.75 {
		t.Fatalf("trained AUC = %.3f, want >= 0.75", aucT)
	}
	if aucT <= aucU+0.05 {
		t.Fatalf("training did not help: trained %.3f vs untrained %.3f", aucT, aucU)
	}
}

func TestBPRBeatsFrequencyBaseline(t *testing.T) {
	train, test, isPos := blockWorld(8, 4)
	m := Train(train, DefaultConfig())
	freq := NewFrequencyBaseline(train)

	var pool []string
	seen := map[string]bool{}
	for _, tr := range train {
		if !seen[tr.Object] {
			seen[tr.Object] = true
			pool = append(pool, tr.Object)
		}
	}
	aucBPR := EvalAUC(m, "acquired", test, pool, isPos, 20, 7)
	aucFreq := EvalAUC(freq, "acquired", test, pool, isPos, 20, 7)
	if aucBPR <= aucFreq {
		t.Fatalf("BPR %.3f <= frequency baseline %.3f", aucBPR, aucFreq)
	}
}

func TestUnknownFallsBackToNeutral(t *testing.T) {
	train, _, _ := blockWorld(4, 5)
	m := Train(train, DefaultConfig())
	if got := m.Score("S0-0", "nosuchpred", "O0-0"); got != 0.5 {
		t.Errorf("unknown predicate score = %v", got)
	}
	if got := m.Score("martian", "acquired", "O0-0"); got != 0.5 {
		t.Errorf("unknown subject score = %v", got)
	}
}

func TestOnlineUpdateRaisesScore(t *testing.T) {
	train, _, _ := blockWorld(6, 6)
	m := Train(train, DefaultConfig())
	tr := core.Triple{Subject: "NewCo", Predicate: "acquired", Object: "O0-1", Confidence: 1}
	before := m.Score("NewCo", "acquired", "O0-1")
	if before != 0.5 {
		t.Fatalf("unseen subject should be neutral, got %v", before)
	}
	for i := 0; i < 50; i++ {
		m.Update(tr, 4)
	}
	after := m.Score("NewCo", "acquired", "O0-1")
	if after <= 0.55 {
		t.Fatalf("online update did not raise score: %v -> %v", before, after)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	train, _, _ := blockWorld(5, 7)
	a := Train(train, DefaultConfig())
	b := Train(train, DefaultConfig())
	for _, tr := range train[:10] {
		sa := a.Score(tr.Subject, tr.Predicate, tr.Object)
		sb := b.Score(tr.Subject, tr.Predicate, tr.Object)
		if sa != sb {
			t.Fatalf("same seed, different scores: %v vs %v", sa, sb)
		}
	}
}

func TestPredicatesListing(t *testing.T) {
	train := []core.Triple{
		{Subject: "a", Predicate: "p1", Object: "b"},
		{Subject: "a", Predicate: "p0", Object: "b"},
	}
	m := Train(train, DefaultConfig())
	ps := m.Predicates()
	if len(ps) != 2 || ps[0] != "p0" || ps[1] != "p1" {
		t.Fatalf("Predicates = %v", ps)
	}
}

func TestFrequencyBaselineScores(t *testing.T) {
	train := []core.Triple{
		{Subject: "a", Predicate: "p", Object: "x"},
		{Subject: "b", Predicate: "p", Object: "x"},
		{Subject: "c", Predicate: "p", Object: "y"},
	}
	fb := NewFrequencyBaseline(train)
	if got := fb.Score("z", "p", "x"); got != 1.0 {
		t.Errorf("popular object score = %v", got)
	}
	if got := fb.Score("z", "p", "y"); got != 0.5 {
		t.Errorf("less popular object score = %v", got)
	}
	if got := fb.Score("z", "p", "unseen"); got != 0 {
		t.Errorf("unseen object score = %v", got)
	}
	if got := fb.Score("z", "nopred", "x"); got != 0.5 {
		t.Errorf("unknown predicate score = %v", got)
	}
}

func TestCommonNeighborBaseline(t *testing.T) {
	kg := core.NewKG(nil)
	kg.AddFact(core.Triple{Subject: "A Co", Predicate: "partnersWith", Object: "Hub Co", Confidence: 1, Curated: true})
	kg.AddFact(core.Triple{Subject: "B Co", Predicate: "partnersWith", Object: "Hub Co", Confidence: 1, Curated: true})
	kg.AddFact(core.Triple{Subject: "C Co", Predicate: "partnersWith", Object: "Other Co", Confidence: 1, Curated: true})
	cn := NewCommonNeighborBaseline(kg)
	near := cn.Score("A Co", "acquired", "B Co")  // share Hub Co
	far := cn.Score("A Co", "acquired", "C Co")   // no overlap
	none := cn.Score("A Co", "acquired", "Ghost") // unknown entity
	if near <= far {
		t.Errorf("common-neighbor: near %v <= far %v", near, far)
	}
	if none != 0 {
		t.Errorf("unknown entity score = %v", none)
	}
}

func BenchmarkTrain(b *testing.B) {
	train, _, _ := blockWorld(10, 8)
	cfg := DefaultConfig()
	cfg.Epochs = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(train, cfg)
	}
}

func BenchmarkScore(b *testing.B) {
	train, _, _ := blockWorld(10, 9)
	m := Train(train, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score("S0-1", "acquired", "O0-2")
	}
}
