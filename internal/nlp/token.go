// Package nlp provides the natural-language substrate NOUS's extraction
// pipeline needs: tokenization, sentence splitting, a rule/lexicon part-of-
// speech tagger, a lemmatizer and an NP/VP chunker. The paper delegated this
// layer to an OpenIE/SRL toolchain; this package reproduces the same
// contract — token streams with Penn-style tags feeding a verb-centred
// relation extractor — with deterministic, dependency-free rules.
package nlp

import (
	"strings"
	"unicode"
)

// Token is one token of a sentence with its surface form, lowercase form,
// Penn-style part-of-speech tag and lemma.
type Token struct {
	Text  string
	Lower string
	Tag   string
	Lemma string
}

// Sentence is a tagged, lemmatized sentence.
type Sentence struct {
	Text   string
	Tokens []Token
}

// abbreviations that do not end a sentence when followed by a period.
var abbreviations = map[string]bool{
	"inc": true, "corp": true, "co": true, "ltd": true, "llc": true,
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"jr": true, "sr": true, "st": true, "vs": true, "etc": true,
	"jan": true, "feb": true, "mar": true, "apr": true, "jun": true,
	"jul": true, "aug": true, "sep": true, "sept": true, "oct": true,
	"nov": true, "dec": true, "u.s": true, "u.k": true, "no": true,
	"gen": true, "gov": true, "sen": true, "rep": true, "capt": true,
}

// SplitSentences splits text into sentence strings. It breaks on '.', '!'
// and '?' except when the period terminates a known abbreviation, a single
// capital initial ("J."), or sits inside a number ("3.5").
func SplitSentences(text string) []string {
	var out []string
	runes := []rune(text)
	start := 0
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '\n' {
			// Treat blank lines / newlines as hard sentence breaks.
			if s := strings.TrimSpace(string(runes[start : i+1])); s != "" {
				out = append(out, s)
			}
			start = i + 1
			continue
		}
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		if r == '.' {
			if i+1 < len(runes) && unicode.IsDigit(runes[i+1]) && i > 0 && unicode.IsDigit(runes[i-1]) {
				continue // decimal point
			}
			w := lastWord(runes, i)
			lw := strings.ToLower(w)
			if abbreviations[lw] {
				continue
			}
			if len(w) == 1 && unicode.IsUpper([]rune(w)[0]) {
				continue // single initial: "J. Smith"
			}
			// "U.S." style acronyms: previous rune is a letter and the one
			// before is a period.
			if i >= 2 && unicode.IsLetter(runes[i-1]) && runes[i-2] == '.' {
				continue
			}
		}
		// Consume trailing quote/paren after the terminator.
		end := i + 1
		for end < len(runes) && (runes[end] == '"' || runes[end] == '\'' || runes[end] == ')') {
			end++
		}
		if s := strings.TrimSpace(string(runes[start:end])); s != "" {
			out = append(out, s)
		}
		start = end
		i = end - 1
	}
	if s := strings.TrimSpace(string(runes[start:])); s != "" {
		out = append(out, s)
	}
	return out
}

func lastWord(runes []rune, end int) string {
	i := end - 1
	for i >= 0 && (unicode.IsLetter(runes[i]) || runes[i] == '.') {
		i--
	}
	return strings.TrimSuffix(string(runes[i+1:end]), ".")
}

// Tokenize splits a sentence into tokens. Punctuation becomes its own token
// except inside abbreviations ("Inc."), acronyms ("U.S."), decimals ("3.5"),
// hyphenated words ("drone-based") and possessive markers ("DJI's" →
// ["DJI", "'s"]).
func Tokenize(sentence string) []string {
	var toks []string
	runes := []rune(sentence)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '$' || r == '€':
			j := i
			for j < len(runes) {
				c := runes[j]
				if unicode.IsLetter(c) || unicode.IsDigit(c) {
					j++
					continue
				}
				// interior punctuation that stays in-token
				// ("drone-based", "fileserver-03")
				if c == '-' && j+1 < len(runes) && (unicode.IsLetter(runes[j+1]) || unicode.IsDigit(runes[j+1])) {
					j++
					continue
				}
				if (c == '.' || c == ',') && j+1 < len(runes) && unicode.IsDigit(runes[j+1]) && j > i && unicode.IsDigit(runes[j-1]) {
					j++
					continue
				}
				if c == '.' && j+1 < len(runes) && unicode.IsLetter(runes[j+1]) && j > i && unicode.IsLetter(runes[j-1]) {
					// acronym interior: U.S.A
					j++
					continue
				}
				if c == '$' || c == '€' {
					break
				}
				break
			}
			word := string(runes[i:j])
			if r == '$' || r == '€' {
				toks = append(toks, string(r))
				i++
				continue
			}
			// keep trailing period on known abbreviations and acronyms
			if j < len(runes) && runes[j] == '.' {
				lw := strings.ToLower(word)
				if abbreviations[lw] || isAcronymBody(word) || (len(word) == 1 && unicode.IsUpper([]rune(word)[0])) {
					word += "."
					j++
				}
			}
			toks = append(toks, word)
			i = j
		case r == '\'' && i+1 < len(runes) && (runes[i+1] == 's' || runes[i+1] == 'S') &&
			(i+2 >= len(runes) || !unicode.IsLetter(runes[i+2])):
			toks = append(toks, "'s")
			i += 2
		default:
			toks = append(toks, string(r))
			i++
		}
	}
	return toks
}

func isAcronymBody(w string) bool {
	return strings.Contains(w, ".")
}

// Process splits text into sentences and returns them tokenized, tagged and
// lemmatized.
func Process(text string) []Sentence {
	raw := SplitSentences(text)
	out := make([]Sentence, 0, len(raw))
	for _, s := range raw {
		words := Tokenize(s)
		if len(words) == 0 {
			continue
		}
		toks := Tag(words)
		for i := range toks {
			toks[i].Lemma = Lemma(toks[i].Lower, toks[i].Tag)
		}
		out = append(out, Sentence{Text: s, Tokens: toks})
	}
	return out
}
