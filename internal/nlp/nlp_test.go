package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitSentencesBasic(t *testing.T) {
	text := "DJI announced a new drone. The company is based in Shenzhen. Analysts were surprised!"
	got := SplitSentences(text)
	if len(got) != 3 {
		t.Fatalf("got %d sentences %q, want 3", len(got), got)
	}
	if got[0] != "DJI announced a new drone." {
		t.Errorf("first sentence = %q", got[0])
	}
}

func TestSplitSentencesAbbreviations(t *testing.T) {
	cases := []struct {
		text string
		want int
	}{
		{"Parrot Inc. acquired the startup. The deal closed.", 2},
		{"Mr. Smith leads the firm. He joined in 2014.", 2},
		{"Revenue rose 3.5 percent in Q2. Shares jumped.", 2},
		{"The U.S. regulator approved the license. Flights resumed.", 2},
		{"J. Doe founded Windermere.", 1},
	}
	for _, c := range cases {
		got := SplitSentences(c.text)
		if len(got) != c.want {
			t.Errorf("SplitSentences(%q) = %d sentences %q, want %d", c.text, len(got), got, c.want)
		}
	}
}

func TestSplitSentencesNewlineBreaks(t *testing.T) {
	got := SplitSentences("Headline without period\nBody sentence one.")
	if len(got) != 2 {
		t.Fatalf("got %q, want 2 sentences", got)
	}
}

func TestTokenizeBasics(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"DJI announced a drone.", []string{"DJI", "announced", "a", "drone", "."}},
		{"DJI's Phantom", []string{"DJI", "'s", "Phantom"}},
		{"a $1.5 billion deal", []string{"a", "$", "1.5", "billion", "deal"}},
		{"drone-based delivery", []string{"drone-based", "delivery"}},
		{"Parrot Inc. won", []string{"Parrot", "Inc.", "won"}},
		{"the U.S. market", []string{"the", "U.S.", "market"}},
		{"Why, though?", []string{"Why", ",", "though", "?"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTagKnownPatterns(t *testing.T) {
	cases := []struct {
		sentence string
		word     string
		wantTag  string
	}{
		{"DJI acquired the startup", "acquired", "VBD"},
		{"DJI will acquire the startup", "acquire", "VB"},
		{"DJI has acquired the startup", "acquired", "VBN"},
		{"the startup was acquired by DJI", "acquired", "VBN"},
		{"DJI announced the launch", "launch", "NN"},
		{"DJI manufactures drones", "manufactures", "VBZ"},
		{"the leading company", "company", "NN"},
		{"DJI is based in Shenzhen", "Shenzhen", "NNP"},
		{"it plans to expand", "plans", "VBZ"},
		{"the deal closed quickly", "quickly", "RB"},
		{"three new drones", "three", "CD"},
		{"revenue rose 12 percent", "12", "CD"},
	}
	for _, c := range cases {
		toks := Tag(Tokenize(c.sentence))
		found := false
		for _, tok := range toks {
			if tok.Text == c.word {
				found = true
				if tok.Tag != c.wantTag {
					t.Errorf("%q: tag(%q) = %s, want %s (all: %v)", c.sentence, c.word, tok.Tag, c.wantTag, tagsOf(toks))
				}
			}
		}
		if !found {
			t.Errorf("%q: word %q not found in tokens %v", c.sentence, c.word, toks)
		}
	}
}

func tagsOf(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text + "/" + t.Tag
	}
	return out
}

func TestLemmaVerbs(t *testing.T) {
	cases := []struct{ word, tag, want string }{
		{"acquired", "VBD", "acquire"},
		{"acquires", "VBZ", "acquire"},
		{"acquiring", "VBG", "acquire"},
		{"bought", "VBD", "buy"},
		{"manufactures", "VBZ", "manufacture"},
		{"announced", "VBD", "announce"},
		{"planned", "VBD", "plan"},
		{"flies", "VBZ", "fly"},
		{"flew", "VBD", "fly"},
		{"launches", "VBZ", "launch"},
		{"testing", "VBG", "test"},
		{"running", "VBG", "run"},
	}
	for _, c := range cases {
		if got := Lemma(c.word, c.tag); got != c.want {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c.word, c.tag, got, c.want)
		}
	}
}

func TestLemmaNouns(t *testing.T) {
	cases := []struct{ word, want string }{
		{"drones", "drone"},
		{"companies", "company"},
		{"agencies", "agency"},
		{"people", "person"},
		{"analyses", "analysis"},
		{"boxes", "box"},
		{"business", "business"},
		{"aircraft", "aircraft"},
	}
	for _, c := range cases {
		if got := Lemma(c.word, "NNS"); got != c.want {
			t.Errorf("Lemma(%q,NNS) = %q, want %q", c.word, got, c.want)
		}
	}
}

func TestChunkSimpleSVO(t *testing.T) {
	toks := Tag(Tokenize("The Chinese company acquired a small startup"))
	chunks := ChunkSentence(toks)
	var kinds []string
	for _, c := range chunks {
		kinds = append(kinds, c.Kind)
	}
	want := []string{"NP", "VP", "NP"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("chunk kinds = %v (%+v), want %v", kinds, chunks, want)
	}
	if got := chunks[0].Text(toks); got != "The Chinese company" {
		t.Errorf("NP1 = %q", got)
	}
	if got := chunks[2].Text(toks); got != "a small startup" {
		t.Errorf("NP2 = %q", got)
	}
	if chunks[1].Passive {
		t.Error("active VP marked passive")
	}
}

func TestChunkPassive(t *testing.T) {
	toks := Tag(Tokenize("The startup was acquired by DJI"))
	chunks := ChunkSentence(toks)
	foundPassive := false
	for _, c := range chunks {
		if c.Kind == "VP" && c.Passive {
			foundPassive = true
			if lemma := toks[c.Head].Lemma; lemma != "" && lemma != "acquire" {
				t.Errorf("passive head lemma = %q", lemma)
			}
		}
	}
	if !foundPassive {
		t.Fatalf("no passive VP found in %+v", chunks)
	}
}

func TestChunkPossessive(t *testing.T) {
	toks := Tag(Tokenize("DJI 's Phantom division expanded"))
	chunks := ChunkSentence(toks)
	if len(chunks) == 0 || chunks[0].Kind != "NP" {
		t.Fatalf("chunks = %+v", chunks)
	}
	if got := chunks[0].Text(toks); got != "DJI 's Phantom division" {
		t.Errorf("possessive NP = %q", got)
	}
}

func TestProcessEndToEnd(t *testing.T) {
	ss := Process("DJI acquired Aeros in 2015. The company makes drones.")
	if len(ss) != 2 {
		t.Fatalf("got %d sentences", len(ss))
	}
	if len(ss[0].Tokens) == 0 || ss[0].Tokens[0].Text != "DJI" {
		t.Fatalf("first token = %+v", ss[0].Tokens)
	}
	for _, s := range ss {
		for _, tok := range s.Tokens {
			if tok.Lemma == "" {
				t.Errorf("token %q has empty lemma", tok.Text)
			}
		}
	}
}

func TestContentWordsFiltersStopwords(t *testing.T) {
	ss := Process("The company is in the market.")
	words := ContentWords(ss[0])
	for _, w := range words {
		if IsStopword(w) {
			t.Errorf("stopword %q leaked into content words %v", w, words)
		}
	}
	if len(words) != 2 { // company, market
		t.Errorf("content words = %v, want [company market]", words)
	}
}

// Property: tokenization never loses non-space characters for plain ASCII
// sentences built from a safe alphabet.
func TestTokenizePreservesLettersQuick(t *testing.T) {
	alphabet := []rune("abc DEF.gh, ij'k $1.5 x-y")
	f := func(idx []uint8) bool {
		var b strings.Builder
		for _, x := range idx {
			b.WriteRune(alphabet[int(x)%len(alphabet)])
		}
		in := b.String()
		joined := strings.Join(Tokenize(in), "")
		// Compare letter/digit multiset.
		count := func(s string) map[rune]int {
			m := map[rune]int{}
			for _, r := range s {
				if r != ' ' {
					m[r]++
				}
			}
			return m
		}
		return reflect.DeepEqual(count(in), count(joined))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every token gets a non-empty tag.
func TestTagTotalQuick(t *testing.T) {
	words := []string{"DJI", "acquired", "the", "startup", "quickly", "3.5", "$", ",", "drones", "will", "fly"}
	f := func(idx []uint8) bool {
		var ws []string
		for _, x := range idx {
			ws = append(ws, words[int(x)%len(words)])
		}
		for _, tok := range Tag(ws) {
			if tok.Tag == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProcess(b *testing.B) {
	text := "DJI announced that it has acquired a small robotics startup for $75 million. " +
		"The Shenzhen-based company plans to expand its commercial drone business in the U.S. market. " +
		"Analysts said the deal was a signal of consolidation."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Process(text)
	}
}
