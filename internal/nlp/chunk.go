package nlp

import "strings"

// Chunk is a shallow-parse phrase: a contiguous token span of one kind.
type Chunk struct {
	Kind  string // "NP" or "VP"
	Start int    // first token index (inclusive)
	End   int    // last token index (exclusive)
	Head  int    // index of the head token (last noun of an NP, main verb of a VP)
	// Passive is set on VP chunks of the form be + VBN ("was acquired").
	Passive bool
}

// Text renders the chunk's surface text.
func (c Chunk) Text(toks []Token) string {
	out := ""
	for i := c.Start; i < c.End; i++ {
		if i > c.Start {
			out += " "
		}
		out += toks[i].Text
	}
	return out
}

// ChunkSentence performs shallow NP/VP chunking over a tagged sentence.
//
// NP  := (DT|PRP$)? (JJ|JJR|VBN|VBG|CD)* (NN|NNS|NNP)+ (POS NP)?
// VP  := (MD|RB)* (V) (RB|RP)*   with passive detection for be+VBN
//
// Possessives chain into a single NP ("DJI's Phantom division").
func ChunkSentence(toks []Token) []Chunk {
	var chunks []Chunk
	i := 0
	for i < len(toks) {
		if c, next, ok := matchNP(toks, i); ok {
			chunks = append(chunks, c)
			i = next
			continue
		}
		if c, next, ok := matchVP(toks, i); ok {
			chunks = append(chunks, c)
			i = next
			continue
		}
		i++
	}
	return chunks
}

func matchNP(toks []Token, i int) (Chunk, int, bool) {
	start := i
	// optional determiner / possessive pronoun
	if i < len(toks) && (toks[i].Tag == "DT" || toks[i].Tag == "PRP$") {
		i++
	}
	// premodifiers
	for i < len(toks) {
		t := toks[i].Tag
		if t == "JJ" || t == "JJR" || t == "JJS" || t == "CD" || t == "VBN" || t == "VBG" {
			i++
			continue
		}
		break
	}
	// head nouns
	nounStart := i
	for i < len(toks) && IsNounTag(toks[i].Tag) {
		i++
	}
	if i == nounStart {
		// A bare pronoun is an NP on its own (for coref).
		if start == nounStart && nounStart < len(toks) && toks[nounStart].Tag == "PRP" {
			return Chunk{Kind: "NP", Start: nounStart, End: nounStart + 1, Head: nounStart}, nounStart + 1, true
		}
		return Chunk{}, start, false
	}
	head := i - 1
	// Trailing cardinals belong to product-style names: "Phantom 3".
	for i < len(toks) && toks[i].Tag == "CD" && !strings.Contains(toks[i].Text, "$") {
		i++
	}
	// possessive chain: "DJI 's Phantom division"
	if i+1 < len(toks) && toks[i].Tag == "POS" {
		if sub, next, ok := matchNP(toks, i+1); ok {
			return Chunk{Kind: "NP", Start: start, End: sub.End, Head: sub.Head}, next, true
		}
	}
	return Chunk{Kind: "NP", Start: start, End: i, Head: head}, i, true
}

func matchVP(toks []Token, i int) (Chunk, int, bool) {
	start := i
	// leading modals/adverbs
	for i < len(toks) && (toks[i].Tag == "MD" || toks[i].Tag == "RB" || toks[i].Tag == "TO") {
		i++
	}
	verbStart := i
	sawBe := false
	lastVerb := -1
	for i < len(toks) {
		t := toks[i]
		if IsVerbTag(t.Tag) && t.Tag != "MD" {
			if isBeForm(t.Lower) || t.Lower == "have" || t.Lower == "has" || t.Lower == "had" {
				sawBe = sawBe || isBeForm(t.Lower)
				lastVerb = i
				i++
				continue
			}
			lastVerb = i
			i++
			// interleaved adverbs: "quickly acquired"
			for i < len(toks) && (toks[i].Tag == "RB" || toks[i].Tag == "RP") {
				i++
			}
			continue
		}
		if t.Tag == "RB" && lastVerb >= 0 {
			i++
			continue
		}
		break
	}
	if lastVerb < 0 || i == verbStart && start == verbStart {
		return Chunk{}, start, false
	}
	if lastVerb < 0 {
		return Chunk{}, start, false
	}
	passive := sawBe && toks[lastVerb].Tag == "VBN"
	return Chunk{Kind: "VP", Start: start, End: i, Head: lastVerb, Passive: passive}, i, true
}
