package nlp

// Closed-class lexicon and common open-class words used by the tagger.
// Tags follow the Penn Treebank subset the extractor consumes:
// NN NNS NNP CD DT IN JJ RB PRP PRP$ CC MD TO VB VBZ VBD VBG VBN WDT WP
// EX POS UH plus literal punctuation tags.

var lexicon = map[string]string{
	// determiners
	"the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
	"these": "DT", "those": "DT", "each": "DT", "every": "DT", "some": "DT",
	"any": "DT", "no": "DT", "another": "DT", "both": "DT", "all": "DT",
	// prepositions / subordinating conjunctions
	"of": "IN", "in": "IN", "on": "IN", "at": "IN", "by": "IN", "for": "IN",
	"with": "IN", "from": "IN", "into": "IN", "over": "IN", "under": "IN",
	"after": "IN", "before": "IN", "between": "IN", "through": "IN",
	"during": "IN", "about": "IN", "against": "IN", "near": "IN",
	"since": "IN", "until": "IN", "within": "IN", "without": "IN",
	"amid": "IN", "despite": "IN", "per": "IN", "via": "IN", "as": "IN",
	"because": "IN", "while": "IN", "if": "IN", "than": "IN", "across": "IN",
	// pronouns
	"he": "PRP", "she": "PRP", "it": "PRP", "they": "PRP", "we": "PRP",
	"i": "PRP", "you": "PRP", "him": "PRP", "her": "PRP", "them": "PRP",
	"us": "PRP", "itself": "PRP", "himself": "PRP", "herself": "PRP",
	"themselves": "PRP", "who": "WP", "whom": "WP", "which": "WDT",
	"whose": "WP$", "what": "WP",
	"his": "PRP$", "its": "PRP$", "their": "PRP$", "our": "PRP$",
	"my": "PRP$", "your": "PRP$",
	// conjunctions
	"and": "CC", "or": "CC", "but": "CC", "nor": "CC", "yet": "CC",
	// modals
	"will": "MD", "would": "MD", "can": "MD", "could": "MD", "may": "MD",
	"might": "MD", "must": "MD", "shall": "MD", "should": "MD",
	// to
	"to": "TO",
	// existential
	"there": "EX",
	// be / have / do
	"be": "VB", "is": "VBZ", "are": "VBP", "was": "VBD", "were": "VBD",
	"been": "VBN", "being": "VBG", "am": "VBP",
	"have": "VBP", "has": "VBZ", "had": "VBD", "having": "VBG",
	"do": "VBP", "does": "VBZ", "did": "VBD", "done": "VBN", "doing": "VBG",
	// frequent adverbs
	"not": "RB", "n't": "RB", "also": "RB", "now": "RB", "then": "RB",
	"here": "RB", "very": "RB", "just": "RB", "still": "RB", "already": "RB",
	"soon": "RB", "once": "RB", "again": "RB", "never": "RB", "often": "RB",
	"later": "RB", "recently": "RB", "earlier": "RB", "today": "NN",
	"yesterday": "NN", "tomorrow": "NN", "more": "RBR", "most": "RBS",
	"up": "RP", "out": "RP", "down": "RP", "off": "RP",
	// frequent adjectives that suffix rules miss
	"new": "JJ", "big": "JJ", "small": "JJ", "large": "JJ", "early": "JJ",
	"late": "JJ", "high": "JJ", "low": "JJ", "first": "JJ", "last": "JJ",
	"major": "JJ", "top": "JJ", "key": "JJ", "next": "JJ", "own": "JJ",
	"civilian": "JJ", "commercial": "JJ", "federal": "JJ", "leading": "JJ",
	"chief": "JJ", "senior": "JJ", "former": "JJ", "emerging": "JJ",
	"unmanned": "JJ", "aerial": "JJ", "autonomous": "JJ", "non-military": "JJ",
	// frequent plain nouns
	"company": "NN", "drone": "NN", "drones": "NNS", "startup": "NN",
	"technology": "NN", "market": "NN", "deal": "NN", "agency": "NN",
	"maker": "NN", "firm": "NN", "year": "NN", "month": "NN", "week": "NN",
	"people": "NNS", "million": "CD", "billion": "CD", "percent": "NN",
	"analyst": "NN", "regulator": "NN", "quarter": "NN", "share": "NN",
	"shares": "NNS", "stock": "NN", "revenue": "NN", "product": "NN",
	"one": "CD", "two": "CD", "three": "CD", "four": "CD", "five": "CD",
	"six": "CD", "seven": "CD", "eight": "CD", "nine": "CD", "ten": "CD",
	"dozen": "CD", "hundred": "CD", "thousand": "CD",
	"device": "NN", "aircraft": "NN", "operations": "NNS", "ceo": "NN",
	"executive": "NN", "spokesman": "NN", "spokeswoman": "NN",
}

// verbStems lists base forms of verbs common in business / technology news;
// the tagger recognises their inflections. The set matters for relation-
// phrase detection (a ReVerb pattern must start at a verb).
var verbStems = map[string]bool{
	"acquire": true, "buy": true, "purchase": true, "sell": true,
	"announce": true, "launch": true, "release": true, "unveil": true,
	"manufacture": true, "produce": true, "build": true, "make": true,
	"develop": true, "design": true, "create": true, "introduce": true,
	"use": true, "deploy": true, "operate": true, "employ": true,
	"test": true, "fly": true, "deliver": true, "ship": true,
	"partner": true, "collaborate": true, "merge": true, "join": true,
	"invest": true, "fund": true, "raise": true, "back": true,
	"regulate": true, "ban": true, "approve": true, "grant": true,
	"found": true, "start": true, "establish": true, "head": true,
	"lead": true, "run": true, "own": true, "hold": true,
	"hire": true, "appoint": true, "name": true, "promote": true,
	"plan": true, "expect": true, "say": true, "report": true,
	"track": true, "monitor": true, "expand": true, "enter": true,
	"open": true, "close": true, "sign": true, "win": true,
	"compete": true, "supply": true, "provide": true, "offer": true,
	"base": true, "locate": true, "headquarter": true, "work": true,
	"serve": true, "target": true, "seek": true, "consider": true,
	"agree": true, "reach": true, "complete": true, "finish": true,
	"study": true, "hypothesize": true, "reason": true, "identify": true,
	"spin": true, "list": true, "file": true, "sue": true, "fine": true,
	"warn": true, "order": true, "license": true, "certify": true,
	"publish": true, "cite": true, "reference": true, "author": true,
	"access": true, "download": true, "upload": true, "log": true,
	"email": true, "copy": true, "leak": true, "exfiltrate": true,
	"visit": true, "attack": true, "breach": true, "steal": true,
}

// irregularVerbs maps inflected forms to (base, tag).
var irregularVerbs = map[string]struct {
	Base string
	Tag  string
}{
	"is": {"be", "VBZ"}, "are": {"be", "VBP"}, "was": {"be", "VBD"},
	"were": {"be", "VBD"}, "been": {"be", "VBN"}, "being": {"be", "VBG"},
	"am": {"be", "VBP"}, "has": {"have", "VBZ"}, "had": {"have", "VBD"},
	"having": {"have", "VBG"}, "does": {"do", "VBZ"}, "did": {"do", "VBD"},
	"done": {"do", "VBN"}, "doing": {"do", "VBG"},
	"bought": {"buy", "VBD"}, "sold": {"sell", "VBD"},
	"made": {"make", "VBD"}, "built": {"build", "VBD"},
	"flew": {"fly", "VBD"}, "flown": {"fly", "VBN"},
	"held": {"hold", "VBD"}, "led": {"lead", "VBD"},
	"ran": {"run", "VBD"}, "said": {"say", "VBD"},
	"took": {"take", "VBD"}, "taken": {"take", "VBN"},
	"went": {"go", "VBD"}, "gone": {"go", "VBN"},
	"won": {"win", "VBD"}, "found": {"find", "VBD"},
	"founded": {"found", "VBD"}, "sought": {"seek", "VBD"},
	"spun": {"spin", "VBD"}, "stole": {"steal", "VBD"},
	"stolen": {"steal", "VBN"}, "grew": {"grow", "VBD"},
	"grown": {"grow", "VBN"}, "became": {"become", "VBD"},
	"become": {"become", "VB"}, "begun": {"begin", "VBN"},
	"began": {"begin", "VBD"}, "met": {"meet", "VBD"},
	"paid": {"pay", "VBD"}, "kept": {"keep", "VBD"},
	"left": {"leave", "VBD"}, "lost": {"lose", "VBD"},
	"brought": {"bring", "VBD"}, "wrote": {"write", "VBD"},
	"written": {"write", "VBN"}, "saw": {"see", "VBD"},
	"seen": {"see", "VBN"}, "came": {"come", "VBD"},
	"got": {"get", "VBD"}, "gotten": {"get", "VBN"},
	"rose": {"rise", "VBD"}, "risen": {"rise", "VBN"},
	"fell": {"fall", "VBD"}, "fallen": {"fall", "VBN"},
	"hit": {"hit", "VBD"}, "set": {"set", "VBD"},
	"put": {"put", "VBD"}, "cut": {"cut", "VBD"},
}

// irregularNouns maps plural to singular.
var irregularNouns = map[string]string{
	"people": "person", "children": "child", "men": "man", "women": "woman",
	"feet": "foot", "teeth": "tooth", "mice": "mouse", "geese": "goose",
	"criteria": "criterion", "data": "datum", "media": "medium",
	"analyses": "analysis", "crises": "crisis", "theses": "thesis",
	"indices": "index", "aircraft": "aircraft", "series": "series",
	"subsidiaries": "subsidiary", "companies": "company",
	"agencies": "agency", "technologies": "technology",
}

// stopwords is the standard small English stopword list used when building
// bag-of-words contexts for disambiguation and LDA.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "in": true, "on": true,
	"at": true, "by": true, "for": true, "with": true, "from": true,
	"to": true, "and": true, "or": true, "but": true, "is": true,
	"are": true, "was": true, "were": true, "be": true, "been": true,
	"being": true, "have": true, "has": true, "had": true, "do": true,
	"does": true, "did": true, "will": true, "would": true, "can": true,
	"could": true, "may": true, "might": true, "must": true, "shall": true,
	"should": true, "it": true, "its": true, "this": true, "that": true,
	"these": true, "those": true, "he": true, "she": true, "they": true,
	"them": true, "his": true, "her": true, "their": true, "we": true,
	"our": true, "you": true, "your": true, "i": true, "as": true,
	"not": true, "no": true, "so": true, "if": true, "then": true,
	"than": true, "too": true, "very": true, "just": true, "about": true,
	"into": true, "over": true, "after": true, "before": true, "also": true,
	"more": true, "most": true, "other": true, "some": true, "such": true,
	"only": true, "own": true, "same": true, "all": true, "any": true,
	"both": true, "each": true, "few": true, "said": true, "which": true,
	"who": true, "whom": true, "what": true, "when": true, "where": true,
	"why": true, "how": true, "there": true, "here": true, "out": true,
	"up": true, "down": true, "new": true, "one": true, "two": true,
	"s": true, "'s": true, "mr": true, "mrs": true, "ms": true,
}

// IsStopword reports whether the lowercase word is a stopword.
func IsStopword(w string) bool { return stopwords[w] }

// ContentWords returns the lowercase lemmas of the non-stopword, alphabetic
// tokens of a sentence — the bag-of-words form used for contexts and topics.
func ContentWords(s Sentence) []string {
	var out []string
	for _, t := range s.Tokens {
		if IsStopword(t.Lower) || !isAlphaWord(t.Lower) {
			continue
		}
		l := t.Lemma
		if l == "" {
			l = t.Lower
		}
		out = append(out, l)
	}
	return out
}

func isAlphaWord(w string) bool {
	hasLetter := false
	for _, r := range w {
		if 'a' <= r && r <= 'z' {
			hasLetter = true
			continue
		}
		if r != '-' && r != '.' {
			return false
		}
	}
	return hasLetter
}
