package nlp

import "strings"

// Lemma returns the dictionary form of a lowercase word given its tag:
// plural nouns are singularized, inflected verbs reduced to their stem,
// everything else is returned unchanged.
func Lemma(lower, tag string) string {
	switch {
	case tag == "NNS" || tag == "NNPS":
		return singularize(lower)
	case IsVerbTag(tag):
		return verbLemma(lower)
	}
	return lower
}

func singularize(w string) string {
	if s, ok := irregularNouns[w]; ok {
		return s
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "sses") || strings.HasSuffix(w, "shes") || strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "zes"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "oes") && len(w) > 4:
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"), strings.HasSuffix(w, "us"), strings.HasSuffix(w, "is"):
		return w
	case strings.HasSuffix(w, "s") && len(w) > 2:
		return w[:len(w)-1]
	}
	return w
}

func verbLemma(w string) string {
	if v, ok := irregularVerbs[w]; ok {
		return v.Base
	}
	if base, _, ok := verbInflection(w); ok {
		return base
	}
	// generic rules for verbs outside the stem list
	switch {
	case strings.HasSuffix(w, "ying") && len(w) > 5:
		return w[:len(w)-4] + "y"
	case strings.HasSuffix(w, "ing") && len(w) > 4:
		stem := w[:len(w)-3]
		if doubledConsonant(stem) {
			return stem[:len(stem)-1]
		}
		if needsE(stem) {
			return stem + "e"
		}
		return stem
	case strings.HasSuffix(w, "ied") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		stem := w[:len(w)-2]
		if doubledConsonant(stem) {
			return stem[:len(stem)-1]
		}
		if needsE(stem) {
			return stem + "e"
		}
		return stem
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "es") && len(w) > 3 && esTakesFullSuffix(w):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 2:
		return w[:len(w)-1]
	}
	return w
}

func doubledConsonant(stem string) bool {
	if len(stem) < 3 {
		return false
	}
	a, b := stem[len(stem)-1], stem[len(stem)-2]
	if a != b {
		return false
	}
	switch a {
	case 'b', 'd', 'g', 'm', 'n', 'p', 'r', 't', 'l':
		return true
	}
	return false
}

// needsE guesses whether the stem lost a silent 'e' ("announc" → "announce").
func needsE(stem string) bool {
	if len(stem) < 2 {
		return false
	}
	last := stem[len(stem)-1]
	prev := stem[len(stem)-2]
	switch last {
	case 'c', 'g', 'v', 'z', 'u':
		return true
	case 's':
		return prev != 's'
	case 'r':
		return prev == 'i' || prev == 'u' // acquir→acquire, secur→secure
	}
	return false
}

func esTakesFullSuffix(w string) bool {
	stem := w[:len(w)-2]
	return strings.HasSuffix(stem, "sh") || strings.HasSuffix(stem, "ch") ||
		strings.HasSuffix(stem, "ss") || strings.HasSuffix(stem, "x") ||
		strings.HasSuffix(stem, "z") || strings.HasSuffix(stem, "o")
}
