package nlp

import (
	"strings"
	"unicode"
)

// Tag assigns a Penn-style part-of-speech tag to each word of a tokenized
// sentence. It is a two-pass tagger: a lexicon/morphology pass followed by a
// small set of Brill-style contextual repair rules. Accuracy on the synthetic
// news corpus is far above what the downstream ReVerb-style extractor needs
// (which tolerates tagger noise by design).
func Tag(words []string) []Token {
	toks := make([]Token, len(words))
	for i, w := range words {
		toks[i] = Token{Text: w, Lower: strings.ToLower(w)}
		toks[i].Tag = lexicalTag(w, toks[i].Lower, i == 0)
	}
	contextualRepair(toks)
	return toks
}

func lexicalTag(w, lower string, sentenceStart bool) string {
	// punctuation
	if len(w) == 1 && !unicode.IsLetter(rune(w[0])) && !unicode.IsDigit(rune(w[0])) {
		switch w {
		case "$", "€":
			return "$"
		case ",":
			return ","
		case ".", "!", "?":
			return "."
		case ":", ";":
			return ":"
		default:
			return "SYM"
		}
	}
	if w == "'s" {
		return "POS"
	}
	if isNumber(lower) {
		return "CD"
	}
	if t, ok := lexicon[lower]; ok {
		// Capitalized mid-sentence lexicon words are usually still their
		// lexical category ("The" at start vs "Apple" is handled below
		// because "apple" is not in the lexicon).
		return t
	}
	if v, ok := irregularVerbs[lower]; ok {
		return v.Tag
	}
	// verb inflections of known stems
	if base, tag, ok := verbInflection(lower); ok {
		_ = base
		return tag
	}
	// proper noun: capitalized (and not at sentence start, or clearly a name
	// even at start: contains capital beyond first rune, or ends with '.')
	r := []rune(w)
	if unicode.IsUpper(r[0]) {
		if !sentenceStart || looksLikeName(w) {
			return "NNP"
		}
	}
	// morphology
	switch {
	case strings.HasSuffix(lower, "ly") && len(lower) > 3:
		return "RB"
	case strings.HasSuffix(lower, "ing") && len(lower) > 4:
		return "VBG"
	case strings.HasSuffix(lower, "ed") && len(lower) > 3:
		return "VBD"
	case hasAnySuffix(lower, "tion", "sion", "ment", "ness", "ship", "ism", "ure", "ance", "ence"):
		return "NN"
	case hasAnySuffix(lower, "ous", "ful", "ive", "ic", "al", "able", "ible", "ary", "ish"):
		return "JJ"
	case strings.HasSuffix(lower, "er") && len(lower) > 3:
		return "NN" // maker, manufacturer; comparatives repaired contextually
	case strings.HasSuffix(lower, "s") && !strings.HasSuffix(lower, "ss") && len(lower) > 3:
		return "NNS"
	}
	return "NN"
}

// verbInflection recognises -s/-ed/-ing/-es forms of known verb stems.
func verbInflection(lower string) (base, tag string, ok bool) {
	if verbStems[lower] {
		return lower, "VB", true
	}
	try := func(suffix, t string, strip int, addE bool) (string, string, bool) {
		if !strings.HasSuffix(lower, suffix) || len(lower) <= strip {
			return "", "", false
		}
		stem := lower[:len(lower)-strip]
		if verbStems[stem] {
			return stem, t, true
		}
		if addE && verbStems[stem+"e"] {
			return stem + "e", t, true
		}
		// doubled final consonant: planned -> plan
		if len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] && verbStems[stem[:len(stem)-1]] {
			return stem[:len(stem)-1], t, true
		}
		// -ied -> -y : certified -> certify
		if strings.HasSuffix(stem, "i") && verbStems[stem[:len(stem)-1]+"y"] {
			return stem[:len(stem)-1] + "y", t, true
		}
		return "", "", false
	}
	if b, t, ok := try("ing", "VBG", 3, true); ok {
		return b, t, ok
	}
	if b, t, ok := try("ed", "VBD", 2, true); ok {
		return b, t, ok
	}
	if b, t, ok := try("es", "VBZ", 2, false); ok {
		return b, t, ok
	}
	if b, t, ok := try("s", "VBZ", 1, false); ok {
		return b, t, ok
	}
	return "", "", false
}

func looksLikeName(w string) bool {
	if strings.HasSuffix(w, ".") {
		return true // "Inc.", "J."
	}
	rs := []rune(w)
	for _, r := range rs[1:] {
		if unicode.IsUpper(r) {
			return true // "DJI", "GoPro"
		}
	}
	return false
}

func isNumber(w string) bool {
	hasDigit := false
	for _, r := range w {
		if unicode.IsDigit(r) {
			hasDigit = true
			continue
		}
		if r != '.' && r != ',' && r != '-' && r != '%' {
			return false
		}
	}
	return hasDigit
}

func hasAnySuffix(w string, sufs ...string) bool {
	for _, s := range sufs {
		if strings.HasSuffix(w, s) && len(w) > len(s)+1 {
			return true
		}
	}
	return false
}

// contextualRepair applies Brill-style transformation rules in place.
func contextualRepair(toks []Token) {
	// Sentence-initial capitalized word outside the lexicon is a proper noun
	// when a proper noun or a verb follows ("Quadtech Robotics announced…",
	// "Elena joined…").
	if len(toks) > 1 {
		t0 := &toks[0]
		_, inLex := lexicon[t0.Lower]
		if !inLex && isCapitalized(t0.Text) && !isNumber(t0.Lower) && !isVerbish(t0.Lower) &&
			(toks[1].Tag == "NNP" || IsVerbTag(toks[1].Tag)) {
			t0.Tag = "NNP"
		}
	}
	for i := range toks {
		prev, next := "", ""
		if i > 0 {
			prev = toks[i-1].Tag
		}
		if i+1 < len(toks) {
			next = toks[i+1].Tag
		}
		t := &toks[i]
		switch {
		// TO/MD + base verb: "to acquire", "will launch"
		case (prev == "TO" || prev == "MD") && (t.Tag == "NN" || t.Tag == "VBD" || t.Tag == "VBZ" || t.Tag == "VBP"):
			if isVerbish(t.Lower) {
				t.Tag = "VB"
			}
		// have/has/had + VBD → VBN (perfect): "has acquired"
		case t.Tag == "VBD" && (prevLower(toks, i) == "has" || prevLower(toks, i) == "have" || prevLower(toks, i) == "had"):
			t.Tag = "VBN"
		// be-form + VBD → VBN (passive): "was acquired"
		case t.Tag == "VBD" && isBeForm(prevLower(toks, i)):
			t.Tag = "VBN"
		// DT + VB* that should be a noun: "the launch"
		case prev == "DT" && (t.Tag == "VB" || t.Tag == "VBP") && next != "DT" && next != "NNP":
			t.Tag = "NN"
		// VBG after DT is usually adjectival/nominal: "the emerging market"
		case prev == "DT" && t.Tag == "VBG" && (next == "NN" || next == "NNS" || next == "NNP"):
			t.Tag = "JJ"
		// PRP + NN that is a known verb: "it plans"
		case (prev == "PRP" || prev == "NNP" || prev == "NNS") && t.Tag == "NNS":
			if base, _, ok := verbInflection(t.Lower); ok && base != "" {
				t.Tag = "VBZ"
			}
		// comparative -er after be/seems
		case t.Tag == "NN" && strings.HasSuffix(t.Lower, "er") && isBeForm(prevLower(toks, i)):
			t.Tag = "JJR"
		}
	}
}

func prevLower(toks []Token, i int) string {
	if i == 0 {
		return ""
	}
	return toks[i-1].Lower
}

func isBeForm(w string) bool {
	switch w {
	case "is", "are", "was", "were", "be", "been", "being", "am":
		return true
	}
	return false
}

func isVerbish(lower string) bool {
	if verbStems[lower] {
		return true
	}
	if _, ok := irregularVerbs[lower]; ok {
		return true
	}
	_, _, ok := verbInflection(lower)
	return ok
}

func isCapitalized(w string) bool {
	if w == "" {
		return false
	}
	r := []rune(w)[0]
	return unicode.IsUpper(r)
}

// IsVerbTag reports whether a tag denotes a verb form.
func IsVerbTag(tag string) bool {
	switch tag {
	case "VB", "VBD", "VBG", "VBN", "VBP", "VBZ", "MD":
		return true
	}
	return false
}

// IsNounTag reports whether a tag denotes a noun form.
func IsNounTag(tag string) bool {
	switch tag {
	case "NN", "NNS", "NNP", "NNPS":
		return true
	}
	return false
}
