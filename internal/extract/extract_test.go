package extract

import (
	"testing"
	"time"

	"nous/internal/ner"
	"nous/internal/ontology"
)

func testExtractor() *Extractor {
	r := ner.NewRecognizer()
	for surface, typ := range map[string]ontology.EntityType{
		"DJI":       ontology.TypeCompany,
		"Parrot":    ontology.TypeCompany,
		"Aeros":     ontology.TypeCompany,
		"GoPro":     ontology.TypeCompany,
		"Shenzhen":  ontology.TypeCity,
		"Phantom 3": ontology.TypeProduct,
		"FAA":       ontology.TypeAgency,
	} {
		r.AddGazetteer(surface, typ)
	}
	return New(r, nil)
}

func extractOne(t *testing.T, text string) []RawTriple {
	t.Helper()
	doc := Document{ID: "d1", Source: "test", Date: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC), Text: text}
	return testExtractor().Extract(doc)
}

func findTriple(ts []RawTriple, a1, a2 string) (RawTriple, bool) {
	for _, tr := range ts {
		if tr.Arg1 == a1 && tr.Arg2 == a2 {
			return tr, true
		}
	}
	return RawTriple{}, false
}

func TestSimpleSVO(t *testing.T) {
	ts := extractOne(t, "DJI acquired Aeros.")
	tr, ok := findTriple(ts, "DJI", "Aeros")
	if !ok {
		t.Fatalf("no (DJI, Aeros) triple in %+v", ts)
	}
	if tr.RelNorm != "acquire" {
		t.Errorf("RelNorm = %q, want acquire", tr.RelNorm)
	}
	if tr.Arg1Type != ontology.TypeCompany || tr.Arg2Type != ontology.TypeCompany {
		t.Errorf("types = %s/%s", tr.Arg1Type, tr.Arg2Type)
	}
	if tr.Negated || tr.Passive {
		t.Errorf("flags wrong: %+v", tr)
	}
	if tr.Confidence < 0.8 {
		t.Errorf("clean SVO confidence = %v", tr.Confidence)
	}
}

func TestPerfectAspect(t *testing.T) {
	ts := extractOne(t, "DJI has acquired Aeros for $75 million.")
	tr, ok := findTriple(ts, "DJI", "Aeros")
	if !ok {
		t.Fatalf("triples = %+v", ts)
	}
	if tr.RelNorm != "acquire" {
		t.Errorf("RelNorm = %q", tr.RelNorm)
	}
	if len(tr.Extras) == 0 || tr.Extras[0].Prep != "for" {
		t.Errorf("extras = %+v, want for-PP", tr.Extras)
	}
}

func TestPassiveInversion(t *testing.T) {
	ts := extractOne(t, "Aeros was acquired by DJI.")
	tr, ok := findTriple(ts, "DJI", "Aeros")
	if !ok {
		t.Fatalf("passive not inverted: %+v", ts)
	}
	if tr.RelNorm != "acquire" || !tr.Passive {
		t.Errorf("triple = %+v", tr)
	}
}

func TestCopularPassiveNotInverted(t *testing.T) {
	ts := extractOne(t, "DJI is based in Shenzhen.")
	tr, ok := findTriple(ts, "DJI", "Shenzhen")
	if !ok {
		t.Fatalf("triples = %+v", ts)
	}
	if tr.RelNorm != "base in" {
		t.Errorf("RelNorm = %q, want 'base in'", tr.RelNorm)
	}
}

func TestExtendedRelationPhrase(t *testing.T) {
	ts := extractOne(t, "DJI announced a partnership with Parrot.")
	tr, ok := findTriple(ts, "DJI", "Parrot")
	if !ok {
		t.Fatalf("triples = %+v", ts)
	}
	if tr.RelNorm != "announce partnership with" {
		t.Errorf("RelNorm = %q", tr.RelNorm)
	}
}

func TestVerbParticle(t *testing.T) {
	ts := extractOne(t, "DJI snapped up Aeros last week.")
	tr, ok := findTriple(ts, "DJI", "Aeros")
	if !ok {
		t.Fatalf("triples = %+v", ts)
	}
	if tr.RelNorm != "snap up" {
		t.Errorf("RelNorm = %q, want 'snap up'", tr.RelNorm)
	}
}

func TestCopulaWithRoleNoun(t *testing.T) {
	ts := extractOne(t, "Frank Wang is the chief executive of DJI.")
	tr, ok := findTriple(ts, "Frank Wang", "DJI")
	if !ok {
		t.Fatalf("triples = %+v", ts)
	}
	if tr.RelNorm != "be chief executive of" {
		t.Errorf("RelNorm = %q", tr.RelNorm)
	}
}

func TestPronounCoref(t *testing.T) {
	ts := extractOne(t, "DJI acquired Aeros. It also unveiled the Phantom 3.")
	tr, ok := findTriple(ts, "DJI", "Phantom 3")
	if !ok {
		t.Fatalf("pronoun not resolved to subject: %+v", ts)
	}
	if tr.RelNorm != "unveil" {
		t.Errorf("RelNorm = %q", tr.RelNorm)
	}
}

func TestNominalCoref(t *testing.T) {
	ts := extractOne(t, "DJI acquired Aeros. The company also partnered with GoPro.")
	tr, ok := findTriple(ts, "DJI", "GoPro")
	if !ok {
		t.Fatalf("nominal not resolved to subject: %+v", ts)
	}
	if tr.RelNorm != "partner with" {
		t.Errorf("RelNorm = %q", tr.RelNorm)
	}
}

func TestComplementClauseSubject(t *testing.T) {
	ts := extractOne(t, "DJI announced that it has acquired Aeros for $75 million.")
	tr, ok := findTriple(ts, "DJI", "Aeros")
	if !ok {
		t.Fatalf("complement clause missed: %+v", ts)
	}
	if tr.RelNorm != "acquire" {
		t.Errorf("RelNorm = %q", tr.RelNorm)
	}
}

func TestNegationDetected(t *testing.T) {
	ts := extractOne(t, "DJI did not acquire Parrot.")
	tr, ok := findTriple(ts, "DJI", "Parrot")
	if !ok {
		t.Fatalf("triples = %+v", ts)
	}
	if !tr.Negated {
		t.Error("negation missed")
	}
}

func TestNaryExtras(t *testing.T) {
	ts := extractOne(t, "DJI bought Aeros in a deal valued at $300 million.")
	tr, ok := findTriple(ts, "DJI", "Aeros")
	if !ok {
		t.Fatalf("triples = %+v", ts)
	}
	if tr.RelNorm != "buy" {
		t.Errorf("RelNorm = %q", tr.RelNorm)
	}
	if len(tr.Extras) == 0 || tr.Extras[0].Prep != "in" {
		t.Errorf("extras = %+v", tr.Extras)
	}
}

func TestUnknownEntitiesLowerConfidence(t *testing.T) {
	known := extractOne(t, "DJI acquired Aeros.")
	unknown := extractOne(t, "Foo acquired bar equipment.")
	if len(known) == 0 {
		t.Fatal("known extraction failed")
	}
	if len(unknown) == 0 {
		t.Skip("no unknown-arg triple extracted")
	}
	if unknown[0].Confidence >= known[0].Confidence {
		t.Errorf("unknown-arg confidence %v >= known %v", unknown[0].Confidence, known[0].Confidence)
	}
}

func TestProvenanceStamped(t *testing.T) {
	ts := extractOne(t, "DJI acquired Aeros.")
	if len(ts) == 0 {
		t.Fatal("no triples")
	}
	tr := ts[0]
	if tr.DocID != "d1" || tr.Source != "test" || tr.Date.IsZero() || tr.Sentence == "" {
		t.Errorf("provenance missing: %+v", tr)
	}
}

func TestNoTripleFromNoise(t *testing.T) {
	ts := extractOne(t, "Industry observers were surprised by the announcement.")
	for _, tr := range ts {
		if tr.Arg1 == "DJI" {
			t.Errorf("phantom triple %+v", tr)
		}
	}
}

func TestEmptyAndMalformedInput(t *testing.T) {
	if ts := extractOne(t, ""); len(ts) != 0 {
		t.Errorf("empty text produced %+v", ts)
	}
	if ts := extractOne(t, "   \n\t  "); len(ts) != 0 {
		t.Errorf("whitespace text produced %+v", ts)
	}
	// Must not panic on punctuation-only or fragment input.
	extractOne(t, "!!! ??? ...")
	extractOne(t, "acquired by")
	extractOne(t, "The the the.")
}

func BenchmarkExtract(b *testing.B) {
	e := testExtractor()
	doc := Document{ID: "d", Source: "bench", Text: "DJI announced that it has acquired Aeros for $75 million. " +
		"The company also partnered with GoPro. Analysts said the deal signals consolidation. " +
		"Aeros was acquired by DJI after months of talks. The FAA approved the Phantom 3 for commercial flights."}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(doc)
	}
}
