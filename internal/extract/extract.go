// Package extract implements open information extraction over news text:
// the OpenIE stage of NOUS's pipeline (§3.2). Relation phrases follow the
// ReVerb syntactic constraint — a verb phrase, optionally extended by a
// noun-chain-plus-preposition ("announced a partnership with") — between two
// noun-phrase arguments, with passive-voice inversion, negation detection,
// n-ary prepositional extras and per-triple extraction confidence. Pronoun
// and definite-nominal arguments are resolved through the coref tracker.
package extract

import (
	"strings"
	"time"

	"nous/internal/coref"
	"nous/internal/ner"
	"nous/internal/nlp"
	"nous/internal/ontology"
)

// Document is a unit of input text.
type Document struct {
	ID     string
	Source string
	Date   time.Time
	Text   string
}

// PPArg is an n-ary prepositional argument attached to a triple
// ("for $75 million", "in 2015").
type PPArg struct {
	Prep string
	Text string
}

// RawTriple is one extracted relational tuple, before ontology mapping.
type RawTriple struct {
	Arg1, Rel, Arg2    string // surface forms (coref-resolved arguments)
	RelNorm            string // normalized relation phrase for predicate mapping
	Arg1Type, Arg2Type ontology.EntityType
	Extras             []PPArg
	Sentence           string
	DocID              string
	Source             string
	Date               time.Time
	Confidence         float64 // extractor heuristic confidence in (0,1)
	Negated            bool
	Passive            bool
}

// Extractor turns documents into raw triples.
type Extractor struct {
	rec *ner.Recognizer
	ont *ontology.Ontology
}

// New returns an extractor using the given recognizer. A nil ontology gets
// the default.
func New(rec *ner.Recognizer, ont *ontology.Ontology) *Extractor {
	if ont == nil {
		ont = ontology.Default()
	}
	return &Extractor{rec: rec, ont: ont}
}

// Extract processes a document sentence by sentence and returns the raw
// triples found.
func (e *Extractor) Extract(doc Document) []RawTriple {
	sentences := nlp.Process(doc.Text)
	tracker := coref.NewTracker(e.ont)
	var out []RawTriple
	for _, s := range sentences {
		out = append(out, e.extractSentence(s, tracker, doc)...)
	}
	return out
}

// wStarTags may appear between the verb and the closing preposition of an
// extended ReVerb relation phrase ("announced [a partnership] with").
var wStarTags = map[string]bool{
	"DT": true, "JJ": true, "NN": true, "NNS": true, "PRP$": true,
	"RB": true, "CD": true, "$": true, "VBG": true,
}

func (e *Extractor) extractSentence(s nlp.Sentence, tracker *coref.Tracker, doc Document) []RawTriple {
	toks := s.Tokens
	mentions := e.rec.Recognize(s)
	chunks := nlp.ChunkSentence(toks)

	// Index NP chunks by start token for argument lookup.
	npAt := make(map[int]nlp.Chunk)
	var nps []nlp.Chunk
	for _, c := range chunks {
		if c.Kind == "NP" {
			npAt[c.Start] = c
			nps = append(nps, c)
		}
	}

	observedUpTo := 0
	observe := func(limit int) {
		// Push mentions ending at or before limit into the tracker so they
		// become antecedents for later references.
		for _, m := range mentions {
			if m.End <= limit && m.Start >= observedUpTo {
				tracker.Observe(m)
			}
		}
		if limit > observedUpTo {
			observedUpTo = limit
		}
	}

	var out []RawTriple
	for _, vp := range chunks {
		if vp.Kind != "VP" {
			continue
		}
		// arg1: the NP ending exactly at (or one filler token before) the VP.
		arg1np, ok := npEndingNear(nps, vp.Start)
		if !ok {
			continue
		}
		observe(arg1np.Start) // earlier mentions become antecedents

		relEnd := vp.End
		arg2Start := -1
		var closingPrep string

		// ReVerb's extended pattern V W* P NP has priority: "announced a
		// partnership with X" must not stop at the intermediate NP
		// "a partnership".
		j := vp.End
		steps := 0
		for j < len(toks) && wStarTags[toks[j].Tag] && steps < 5 {
			j++
			steps++
		}
		if j < len(toks) && isPrepTag(toks[j].Tag) && toks[j].Lower != "that" {
			if _, ok := npAt[j+1]; ok {
				closingPrep = toks[j].Lower
				relEnd = j + 1
				arg2Start = j + 1
			}
		}
		// Fallback: direct NP right after the verb phrase.
		if arg2Start < 0 {
			if _, ok := npAt[vp.End]; ok {
				arg2Start = vp.End
			}
		}
		if arg2Start < 0 {
			continue
		}
		arg2np := npAt[arg2Start]

		a1, t1, ent1, co1 := e.resolveArg(arg1np, toks, mentions, tracker)
		// The subject of this clause is now the most salient antecedent.
		if m, ok := ner.MentionWithin(mentions, arg1np.Start, arg1np.End); ok {
			tracker.ObserveSubject(m)
			observedUpTo = max(observedUpTo, m.End)
		}
		observe(arg2np.Start)
		a2, t2, ent2, co2 := e.resolveArg(arg2np, toks, mentions, tracker)
		if a1 == "" || a2 == "" || strings.EqualFold(a1, a2) {
			continue
		}

		relToks := toks[vp.Start:relEnd]
		negated := isNegated(relToks)
		passive := vp.Passive

		var tr RawTriple
		if passive && closingPrep == "by" {
			// "O was acquired by S" → (S, acquire, O)
			head := toks[vp.Head]
			tr = RawTriple{
				Arg1: a2, Rel: head.Text, Arg2: a1,
				RelNorm:  lemmaOf(head),
				Arg1Type: t2, Arg2Type: t1,
			}
			ent1, ent2 = ent2, ent1
		} else {
			tr = RawTriple{
				Arg1: a1, Rel: renderTokens(relToks), Arg2: a2,
				RelNorm:  normalizeRelation(relToks),
				Arg1Type: t1, Arg2Type: t2,
			}
		}
		tr.Negated = negated
		tr.Passive = passive
		tr.Sentence = s.Text
		tr.DocID = doc.ID
		tr.Source = doc.Source
		tr.Date = doc.Date
		tr.Extras = collectExtras(toks, arg2np.End)
		tr.Confidence = extractionConfidence(relEnd-vp.Start, ent1, ent2, co1 || co2, len(toks))
		if tr.RelNorm == "" {
			continue
		}
		out = append(out, tr)
	}
	observe(len(toks))
	return out
}

// resolveArg turns an NP chunk into an argument surface plus type. It
// reports whether the argument is a recognised entity and whether
// coreference resolution was applied.
func (e *Extractor) resolveArg(np nlp.Chunk, toks []nlp.Token, mentions []ner.Mention, tracker *coref.Tracker) (surface string, typ ontology.EntityType, isEntity, viaCoref bool) {
	// Bare pronoun.
	if np.End-np.Start == 1 && toks[np.Start].Tag == "PRP" {
		if m, ok := tracker.ResolvePronoun(toks[np.Start].Lower); ok {
			return m.Surface, m.Type, true, true
		}
		return "", ontology.TypeAny, false, false
	}
	// Recognised mention inside the NP.
	if m, ok := ner.MentionWithin(mentions, np.Start, np.End); ok {
		if m.Type == ontology.TypeAny {
			// Document-level alias: "Apex" after "Apex Robotics".
			if ante, ok := tracker.ResolvePartial(m.Surface); ok {
				return ante.Surface, ante.Type, true, true
			}
		}
		return m.Surface, m.Type, true, false
	}
	// Definite nominal: "the company".
	head := toks[np.Head]
	if np.Start < np.End && toks[np.Start].Lower == "the" && coref.IsNominalHead(head.Lemma) {
		if m, ok := tracker.ResolveNominal(head.Lemma); ok {
			return m.Surface, m.Type, true, true
		}
	}
	// Plain NP: strip the leading determiner.
	start := np.Start
	if toks[start].Tag == "DT" || toks[start].Tag == "PRP$" {
		start++
	}
	if start >= np.End {
		return "", ontology.TypeAny, false, false
	}
	return renderTokens(toks[start:np.End]), ontology.TypeAny, false, false
}

// npEndingNear finds the NP chunk whose end is at pos or separated from it
// by at most one adverb/comma.
func npEndingNear(nps []nlp.Chunk, pos int) (nlp.Chunk, bool) {
	for _, np := range nps {
		if np.End == pos {
			return np, true
		}
	}
	// gap-1 fallback: one filler token (adverb, comma) between NP and verb
	for _, np := range nps {
		if np.End == pos-1 {
			return np, true
		}
	}
	return nlp.Chunk{}, false
}

// collectExtras gathers trailing prepositional phrases after the object.
func collectExtras(toks []nlp.Token, from int) []PPArg {
	var out []PPArg
	j := from
	for j < len(toks) {
		if !isPrepTag(toks[j].Tag) {
			break
		}
		prep := toks[j].Lower
		k := j + 1
		for k < len(toks) && !isPrepTag(toks[k].Tag) && toks[k].Tag != "." && toks[k].Tag != "," {
			k++
		}
		if k > j+1 {
			out = append(out, PPArg{Prep: prep, Text: renderTokens(toks[j+1 : k])})
		}
		j = k
		if j < len(toks) && (toks[j].Tag == "." || toks[j].Tag == ",") {
			break
		}
	}
	return out
}

// normalizeRelation reduces a relation phrase to its canonical lemma form:
// auxiliaries (when another verb follows), determiners, possessives,
// numbers and adverbs are dropped; verbs and plural nouns are lemmatized.
// "has quickly acquired" → "acquire"; "announced a partnership with" →
// "announce partnership with"; "is the chief executive of" → "be chief
// executive of".
func normalizeRelation(relToks []nlp.Token) string {
	hasMainVerb := false
	for _, t := range relToks {
		if nlp.IsVerbTag(t.Tag) && t.Tag != "MD" && !isAuxLemma(t.Lemma) {
			hasMainVerb = true
			break
		}
	}
	var parts []string
	for _, t := range relToks {
		switch t.Tag {
		case "DT", "PRP$", "CD", "$", "RB", "MD", ",", ".":
			continue
		}
		if isAuxLemma(t.Lemma) && hasMainVerb {
			continue
		}
		l := t.Lemma
		if l == "" {
			l = t.Lower
		}
		parts = append(parts, l)
	}
	return strings.Join(parts, " ")
}

func isAuxLemma(lemma string) bool {
	switch lemma {
	case "be", "have", "do":
		return true
	}
	return false
}

func isNegated(relToks []nlp.Token) bool {
	for _, t := range relToks {
		switch t.Lower {
		case "not", "never", "n't", "no":
			return true
		}
	}
	return false
}

func isPrepTag(tag string) bool {
	return tag == "IN" || tag == "TO" || tag == "RP"
}

// extractionConfidence mirrors ReVerb's heuristic scoring: shorter relation
// phrases, recognised-entity arguments and direct (non-coref) mentions are
// more reliable.
func extractionConfidence(relLen int, ent1, ent2, viaCoref bool, sentLen int) float64 {
	c := 0.95
	if relLen > 3 {
		c -= 0.15
	}
	if !ent1 {
		c -= 0.20
	}
	if !ent2 {
		c -= 0.20
	}
	if viaCoref {
		c -= 0.10
	}
	if sentLen > 30 {
		c -= 0.10
	}
	if c < 0.05 {
		c = 0.05
	}
	return c
}

func renderTokens(toks []nlp.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

func lemmaOf(t nlp.Token) string {
	if t.Lemma != "" {
		return t.Lemma
	}
	return t.Lower
}
