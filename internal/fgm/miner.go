package fgm

import (
	"runtime"
	"sort"
	"sync"
)

// Config tunes the streaming miner.
type Config struct {
	// MaxEdges bounds pattern size (edges per pattern). Default 3.
	MaxEdges int
	// MinSupport is the frequency threshold (embedding count, or MNI when
	// TrackMNI is set). Default 3.
	MinSupport int
	// WindowSize caps the number of stream edges kept; 0 disables
	// count-based eviction (use EvictBefore for time-based windows).
	WindowSize int
	// Workers parallelizes AddBatch across hash partitions. Default
	// GOMAXPROCS.
	Workers int
	// TrackMNI switches support from embedding count to the
	// minimum-node-image metric.
	TrackMNI bool
}

// DefaultConfig returns the configuration used in the paper-style
// experiments.
func DefaultConfig() Config {
	return Config{MaxEdges: 3, MinSupport: 3, WindowSize: 2000}
}

func (c Config) withDefaults() Config {
	if c.MaxEdges <= 0 {
		c.MaxEdges = 3
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 3
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// windowEdge is a stream edge resident in the window.
type windowEdge struct {
	id int64
	Edge
}

// Miner is the streaming closed-frequent-pattern miner. All exported
// methods are safe for concurrent use (pattern queries run while the
// ingestion path feeds the window); AddBatch additionally parallelizes its
// own enumeration internally.
type Miner struct {
	mu  sync.RWMutex
	cfg Config

	nextID int64
	queue  []*windowEdge              // FIFO arrival order
	adj    map[int64][]*windowEdge    // vertex -> incident window edges
	byID   map[int64]*windowEdge      // edge id -> edge
	counts map[string]int             // pattern code -> embedding count
	images map[string][]map[int64]int // code -> position -> vertex -> count (MNI)

	canon    *canonicalizer
	patterns map[string]Pattern // code -> abstract pattern

	prevFrequent map[string]bool // for Transitions()

	// stats
	embeddingsTouched int64
}

// NewMiner returns an empty miner.
func NewMiner(cfg Config) *Miner {
	cfg = cfg.withDefaults()
	return &Miner{
		cfg:          cfg,
		adj:          make(map[int64][]*windowEdge),
		byID:         make(map[int64]*windowEdge),
		counts:       make(map[string]int),
		images:       make(map[string][]map[int64]int),
		canon:        newCanonicalizer(),
		patterns:     make(map[string]Pattern),
		prevFrequent: make(map[string]bool),
	}
}

// WindowLen returns the number of edges currently in the window.
func (m *Miner) WindowLen() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.queue)
}

// EmbeddingsTouched returns the cumulative number of embeddings enumerated —
// the work metric compared against the from-scratch baseline.
func (m *Miner) EmbeddingsTouched() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.embeddingsTouched
}

// Add inserts one stream edge, incrementally updating pattern counts, and
// evicts the oldest edges if the count-based window overflows.
func (m *Miner) Add(e Edge) {
	m.mu.Lock()
	defer m.mu.Unlock()
	we := &windowEdge{id: m.nextID, Edge: e}
	m.nextID++
	m.insert(we)
	m.applyEmbeddings(we, +1)
	m.enforceWindow()
}

// AddBatch inserts a batch of edges and updates counts in parallel across
// workers. Each new embedding is attributed to exactly one new edge — the
// one with the maximum id it contains — so counts are exact.
func (m *Miner) AddBatch(es []Edge) {
	if len(es) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	batch := make([]*windowEdge, len(es))
	for i, e := range es {
		we := &windowEdge{id: m.nextID, Edge: e}
		m.nextID++
		m.insert(we)
		batch[i] = we
	}
	workers := m.cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		for _, we := range batch {
			m.applyEmbeddings(we, +1)
		}
	} else {
		// Each worker enumerates with a private canonicalizer (the shared
		// memo is not thread-safe); deltas merge under the mutex.
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				local := newDelta()
				canon := newCanonicalizer()
				for i := w; i < len(batch); i += workers {
					m.enumerate(batch[i], func(f *windowEdge) bool { return f.id < batch[i].id },
						func(set []*windowEdge) { local.record(canon, m.cfg.TrackMNI, set) })
				}
				mu.Lock()
				m.applyDelta(local, +1)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
	}
	m.enforceWindow()
}

// EvictBefore removes all window edges with Time < cutoff (time-based
// sliding window), decrementing affected pattern counts. It returns the
// number of evicted edges.
func (m *Miner) EvictBefore(cutoff int64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	kept := m.queue[:0]
	// Evict one at a time: symmetric enumeration keeps counts exact.
	var victims []*windowEdge
	for _, we := range m.queue {
		if we.Time < cutoff {
			victims = append(victims, we)
		} else {
			kept = append(kept, we)
		}
	}
	m.queue = kept
	for _, we := range victims {
		m.applyEmbeddings(we, -1)
		m.remove(we)
		n++
	}
	return n
}

// enforceWindow evicts oldest edges past the count-based capacity.
func (m *Miner) enforceWindow() {
	if m.cfg.WindowSize <= 0 {
		return
	}
	for len(m.queue) > m.cfg.WindowSize {
		we := m.queue[0]
		m.queue = m.queue[1:]
		m.applyEmbeddings(we, -1)
		m.remove(we)
	}
}

func (m *Miner) insert(we *windowEdge) {
	m.queue = append(m.queue, we)
	m.byID[we.id] = we
	m.adj[we.Src] = append(m.adj[we.Src], we)
	if we.Dst != we.Src {
		m.adj[we.Dst] = append(m.adj[we.Dst], we)
	}
}

func (m *Miner) remove(we *windowEdge) {
	delete(m.byID, we.id)
	m.adj[we.Src] = dropEdge(m.adj[we.Src], we.id)
	if len(m.adj[we.Src]) == 0 {
		delete(m.adj, we.Src)
	}
	if we.Dst != we.Src {
		m.adj[we.Dst] = dropEdge(m.adj[we.Dst], we.id)
		if len(m.adj[we.Dst]) == 0 {
			delete(m.adj, we.Dst)
		}
	}
}

func dropEdge(list []*windowEdge, id int64) []*windowEdge {
	for i, e := range list {
		if e.id == id {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// delta accumulates pattern count changes from one worker.
type delta struct {
	counts   map[string]int
	images   map[string][]map[int64]int
	patterns map[string]Pattern
	emb      int64
}

func newDelta() *delta {
	return &delta{
		counts:   make(map[string]int),
		images:   make(map[string][]map[int64]int),
		patterns: make(map[string]Pattern),
	}
}

// applyEmbeddings enumerates the embeddings attributable to we and applies
// sign to their pattern counts. Adds (+1) attribute an embedding to its
// newest edge — edge ids increase monotonically, so a sequential add sees
// exactly the embeddings born with we. Evicts (-1) touch every embedding
// containing we, which by induction removes exactly the embeddings that die
// with it.
func (m *Miner) applyEmbeddings(we *windowEdge, sign int) {
	d := newDelta()
	extendOK := func(f *windowEdge) bool { return f.id < we.id } // add rule
	if sign < 0 {
		extendOK = func(f *windowEdge) bool { return true } // evict rule
	}
	m.enumerate(we, extendOK, func(set []*windowEdge) { d.record(m.canon, m.cfg.TrackMNI, set) })
	m.applyDelta(d, sign)
}

// enumerate runs a DFS over connected edge supersets of {we} up to
// MaxEdges, extending only with edges admitted by extendOK, de-duplicating
// by edge-id set, and yielding each embedding to fn.
func (m *Miner) enumerate(we *windowEdge, extendOK func(*windowEdge) bool, fn func([]*windowEdge)) {
	maxE := m.cfg.MaxEdges
	seen := map[string]bool{}
	set := []*windowEdge{we}
	verts := map[int64]bool{we.Src: true, we.Dst: true}

	var rec func()
	rec = func() {
		key := edgeSetKey(set)
		if seen[key] {
			return
		}
		seen[key] = true
		fn(set)
		if len(set) >= maxE {
			return
		}
		for v := range verts {
			for _, f := range m.adj[v] {
				if f.id == we.id || !extendOK(f) || inSet(set, f.id) {
					continue
				}
				set = append(set, f)
				addedSrc := !verts[f.Src]
				addedDst := !verts[f.Dst]
				verts[f.Src] = true
				verts[f.Dst] = true
				rec()
				set = set[:len(set)-1]
				if addedSrc {
					delete(verts, f.Src)
				}
				if addedDst {
					delete(verts, f.Dst)
				}
			}
		}
	}
	rec()
}

// record canonicalizes one embedding into the delta.
func (d *delta) record(canon *canonicalizer, trackMNI bool, set []*windowEdge) {
	emb := make([]embEdge, len(set))
	for i, we := range set {
		emb[i] = embEdge{src: we.Src, dst: we.Dst, srcLabel: we.SrcLabel, dstLabel: we.DstLabel, label: we.Label}
	}
	code, perm, pattern := canon.canonicalize(emb)
	if _, ok := d.patterns[code]; !ok {
		d.patterns[code] = pattern
	}
	d.counts[code]++
	d.emb++
	if trackMNI {
		imgs := d.images[code]
		if imgs == nil {
			imgs = make([]map[int64]int, len(pattern.VertexLabels))
			for i := range imgs {
				imgs[i] = make(map[int64]int)
			}
			d.images[code] = imgs
		}
		for vid, pos := range perm {
			imgs[pos][vid]++
		}
	}
}

// applyDelta folds a worker delta into the miner with the given sign.
func (m *Miner) applyDelta(d *delta, sign int) {
	m.embeddingsTouched += d.emb
	for code, p := range d.patterns {
		if _, ok := m.patterns[code]; !ok {
			m.patterns[code] = p
		}
	}
	for code, c := range d.counts {
		m.counts[code] += sign * c
		if m.counts[code] <= 0 {
			delete(m.counts, code)
		}
	}
	if !m.cfg.TrackMNI {
		return
	}
	for code, imgs := range d.images {
		cur := m.images[code]
		if cur == nil {
			if sign < 0 {
				continue
			}
			cur = make([]map[int64]int, len(imgs))
			for i := range cur {
				cur[i] = make(map[int64]int)
			}
			m.images[code] = cur
		}
		for pos, byVid := range imgs {
			for vid, c := range byVid {
				cur[pos][vid] += sign * c
				if cur[pos][vid] <= 0 {
					delete(cur[pos], vid)
				}
			}
		}
		if m.counts[code] == 0 {
			delete(m.images, code)
		}
	}
}

// Support returns the current support of a pattern code.
func (m *Miner) Support(code string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.supportLocked(code)
}

func (m *Miner) supportLocked(code string) int {
	if m.cfg.TrackMNI {
		imgs, ok := m.images[code]
		if !ok || len(imgs) == 0 {
			return 0
		}
		minImg := -1
		for _, byVid := range imgs {
			if minImg < 0 || len(byVid) < minImg {
				minImg = len(byVid)
			}
		}
		return minImg
	}
	return m.counts[code]
}

// FrequentPatterns returns all patterns at or above MinSupport, largest
// support first.
func (m *Miner) FrequentPatterns() []Pattern {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.frequentLocked()
}

func (m *Miner) frequentLocked() []Pattern {
	var out []Pattern
	for code := range m.counts {
		if s := m.supportLocked(code); s >= m.cfg.MinSupport {
			p := m.patterns[code]
			p.Support = s
			out = append(out, p)
		}
	}
	sortPatterns(out)
	return out
}

// ClosedPatterns returns the frequent patterns with no frequent
// super-pattern of equal support — the miner's reporting unit per the
// paper.
func (m *Miner) ClosedPatterns() []Pattern {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return closedOf(m.frequentLocked())
}

// Transitions reports which patterns entered and left the frequent set
// since the previous call — the signal used to "reconstruct smaller
// patterns from larger patterns that just turned infrequent".
func (m *Miner) Transitions() (entered, left []Pattern) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := map[string]bool{}
	for _, p := range m.frequentLocked() {
		cur[p.Code] = true
		if !m.prevFrequent[p.Code] {
			entered = append(entered, p)
		}
	}
	for code := range m.prevFrequent {
		if !cur[code] {
			p := m.patterns[code]
			p.Support = m.supportLocked(code)
			left = append(left, p)
		}
	}
	m.prevFrequent = cur
	sortPatterns(entered)
	sortPatterns(left)
	return entered, left
}

// closedOf filters a frequent set down to closed patterns.
func closedOf(freq []Pattern) []Pattern {
	bySize := map[int][]Pattern{}
	for _, p := range freq {
		bySize[len(p.Edges)] = append(bySize[len(p.Edges)], p)
	}
	var out []Pattern
	for _, p := range freq {
		closed := true
		for _, q := range bySize[len(p.Edges)+1] {
			if q.Support == p.Support && subPatternOf(p, q) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, p)
		}
	}
	sortPatterns(out)
	return out
}

func sortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Support != ps[j].Support {
			return ps[i].Support > ps[j].Support
		}
		if len(ps[i].Edges) != len(ps[j].Edges) {
			return len(ps[i].Edges) > len(ps[j].Edges)
		}
		return ps[i].Code < ps[j].Code
	})
}

func edgeSetKey(set []*windowEdge) string {
	ids := make([]int64, len(set))
	for i, e := range set {
		ids[i] = e.id
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	key := make([]byte, 0, len(ids)*8)
	for _, id := range ids {
		for b := 0; b < 8; b++ {
			key = append(key, byte(id>>(8*b)))
		}
	}
	return string(key)
}

func inSet(set []*windowEdge, id int64) bool {
	for _, e := range set {
		if e.id == id {
			return true
		}
	}
	return false
}
