package fgm

import (
	"runtime"
	"sync"
)

// MineWindow is the Arabesque-style baseline: it enumerates every connected
// embedding of up to cfg.MaxEdges edges in the given window from scratch
// and aggregates pattern supports. A streaming system that re-runs this per
// window slide does O(window) work per slide; the incremental Miner does
// O(delta) — that asymmetry is the paper's reported ~3× speedup, reproduced
// by benchmark C1.
func MineWindow(edges []Edge, cfg Config) []Pattern {
	m := minerForWindow(edges, cfg, 1)
	return m.FrequentPatterns()
}

// MineWindowClosed is MineWindow restricted to closed patterns.
func MineWindowClosed(edges []Edge, cfg Config) []Pattern {
	m := minerForWindow(edges, cfg, 1)
	return m.ClosedPatterns()
}

// MineWindowParallel distributes the from-scratch enumeration across
// workers (Arabesque's distributed axis at process scale).
func MineWindowParallel(edges []Edge, cfg Config, workers int) []Pattern {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := minerForWindow(edges, cfg, workers)
	return m.FrequentPatterns()
}

// minerForWindow loads a window into a fresh miner without incremental
// bookkeeping: all edges are inserted first, then embeddings are counted by
// newest-edge attribution, optionally in parallel.
func minerForWindow(edges []Edge, cfg Config, workers int) *Miner {
	cfg.WindowSize = 0 // no eviction inside a snapshot
	m := NewMiner(cfg)
	batch := make([]*windowEdge, len(edges))
	for i, e := range edges {
		we := &windowEdge{id: m.nextID, Edge: e}
		m.nextID++
		m.insert(we)
		batch[i] = we
	}
	if workers <= 1 {
		d := newDelta()
		for _, we := range batch {
			m.enumerate(we, func(f *windowEdge) bool { return f.id < we.id },
				func(set []*windowEdge) { d.record(m.canon, cfg.TrackMNI, set) })
		}
		m.applyDelta(d, +1)
		return m
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := newDelta()
			canon := newCanonicalizer()
			for i := w; i < len(batch); i += workers {
				we := batch[i]
				m.enumerate(we, func(f *windowEdge) bool { return f.id < we.id },
					func(set []*windowEdge) { local.record(canon, cfg.TrackMNI, set) })
			}
			mu.Lock()
			m.applyDelta(local, +1)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return m
}
