package fgm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// e builds a company-acquires-company style edge quickly.
func e(src, dst int64, label string) Edge {
	return Edge{Src: src, Dst: dst, SrcLabel: "C", DstLabel: "C", Label: label}
}

// randomStream draws edges over a small vertex/label alphabet so patterns
// repeat often.
func randomStream(n int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"acquired", "partnersWith", "invests"}
	vlabels := []string{"C", "P"}
	out := make([]Edge, n)
	for i := range out {
		s := int64(rng.Intn(8))
		d := int64(rng.Intn(8))
		for d == s {
			d = int64(rng.Intn(8))
		}
		out[i] = Edge{
			Src: s, Dst: d,
			SrcLabel: vlabels[s%2], DstLabel: vlabels[d%2],
			Label: labels[rng.Intn(len(labels))],
			Time:  int64(i),
		}
	}
	return out
}

func countsOf(m *Miner) map[string]int {
	out := map[string]int{}
	for code, c := range m.counts {
		out[code] = c
	}
	return out
}

func windowEdges(m *Miner) []Edge {
	out := make([]Edge, len(m.queue))
	for i, we := range m.queue {
		out[i] = we.Edge
	}
	return out
}

func TestSingleEdgePattern(t *testing.T) {
	m := NewMiner(Config{MaxEdges: 2, MinSupport: 1})
	m.Add(e(1, 2, "acquired"))
	ps := m.FrequentPatterns()
	if len(ps) != 1 {
		t.Fatalf("patterns = %+v", ps)
	}
	if ps[0].Support != 1 || len(ps[0].Edges) != 1 || ps[0].Edges[0].Label != "acquired" {
		t.Fatalf("pattern = %+v", ps[0])
	}
}

func TestTwoEdgeEmbedding(t *testing.T) {
	m := NewMiner(Config{MaxEdges: 2, MinSupport: 1})
	m.Add(e(1, 2, "acquired"))
	m.Add(e(2, 3, "acquired"))
	// patterns: two single-edge embeddings of the same code, one 2-edge chain
	ps := m.FrequentPatterns()
	if len(ps) != 2 {
		t.Fatalf("want 2 distinct patterns, got %+v", ps)
	}
	var chain *Pattern
	for i := range ps {
		if len(ps[i].Edges) == 2 {
			chain = &ps[i]
		}
	}
	if chain == nil || chain.Support != 1 {
		t.Fatalf("chain pattern missing: %+v", ps)
	}
	for _, p := range ps {
		if len(p.Edges) == 1 && p.Support != 2 {
			t.Fatalf("single-edge support = %d, want 2", p.Support)
		}
	}
}

func TestDisconnectedEdgesDontCombine(t *testing.T) {
	m := NewMiner(Config{MaxEdges: 3, MinSupport: 1})
	m.Add(e(1, 2, "acquired"))
	m.Add(e(10, 20, "acquired"))
	for _, p := range m.FrequentPatterns() {
		if len(p.Edges) > 1 {
			t.Fatalf("disconnected edges formed pattern %+v", p)
		}
	}
}

// The core invariant: incremental counts equal a from-scratch recount of
// the current window, across random streams with window eviction.
func TestStreamingMatchesRecountQuick(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		n := int(nOps)%60 + 10
		stream := randomStream(n, seed)
		cfg := Config{MaxEdges: 3, MinSupport: 1, WindowSize: 15}
		m := NewMiner(cfg)
		for _, ed := range stream {
			m.Add(ed)
		}
		fresh := minerForWindow(windowEdges(m), Config{MaxEdges: 3, MinSupport: 1}, 1)
		return reflect.DeepEqual(countsOf(m), countsOf(fresh))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeEvictionMatchesRecount(t *testing.T) {
	stream := randomStream(80, 11)
	cfg := Config{MaxEdges: 3, MinSupport: 1}
	m := NewMiner(cfg)
	for _, ed := range stream {
		m.Add(ed)
	}
	evicted := m.EvictBefore(40)
	if evicted != 40 {
		t.Fatalf("evicted %d, want 40", evicted)
	}
	fresh := minerForWindow(windowEdges(m), cfg, 1)
	if !reflect.DeepEqual(countsOf(m), countsOf(fresh)) {
		t.Fatal("time-based eviction desynced counts")
	}
	if m.WindowLen() != 40 {
		t.Fatalf("window len = %d", m.WindowLen())
	}
}

func TestAddBatchParallelMatchesSequential(t *testing.T) {
	stream := randomStream(120, 13)
	seq := NewMiner(Config{MaxEdges: 3, MinSupport: 1, Workers: 1})
	for _, ed := range stream {
		seq.Add(ed)
	}
	par := NewMiner(Config{MaxEdges: 3, MinSupport: 1, Workers: 4})
	par.AddBatch(stream)
	if !reflect.DeepEqual(countsOf(seq), countsOf(par)) {
		t.Fatal("parallel AddBatch diverged from sequential Add")
	}
}

func TestMineWindowParallelMatchesSerial(t *testing.T) {
	stream := randomStream(100, 17)
	cfg := Config{MaxEdges: 3, MinSupport: 2}
	serial := MineWindow(stream, cfg)
	parallel := MineWindowParallel(stream, cfg, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d vs parallel %d patterns", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Code != parallel[i].Code || serial[i].Support != parallel[i].Support {
			t.Fatalf("pattern %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestCanonicalCodeInvariantUnderRelabeling(t *testing.T) {
	c := newCanonicalizer()
	// same structure, different concrete ids and edge orders
	emb1 := []embEdge{
		{src: 1, dst: 2, srcLabel: "C", dstLabel: "C", label: "acquired"},
		{src: 2, dst: 3, srcLabel: "C", dstLabel: "P", label: "manufactures"},
	}
	emb2 := []embEdge{
		{src: 30, dst: 10, srcLabel: "C", dstLabel: "P", label: "manufactures"},
		{src: 77, dst: 30, srcLabel: "C", dstLabel: "C", label: "acquired"},
	}
	code1, _, _ := c.canonicalize(emb1)
	code2, _, _ := c.canonicalize(emb2)
	if code1 != code2 {
		t.Fatalf("isomorphic embeddings got different codes:\n%s\n%s", code1, code2)
	}
	// direction matters
	emb3 := []embEdge{
		{src: 2, dst: 1, srcLabel: "C", dstLabel: "C", label: "acquired"},
		{src: 2, dst: 3, srcLabel: "C", dstLabel: "P", label: "manufactures"},
	}
	code3, _, _ := c.canonicalize(emb3)
	if code3 == code1 {
		t.Fatal("direction-reversed embedding got the same code")
	}
}

func TestClosedPatternsFilter(t *testing.T) {
	// Build 3 copies of the chain A-acquired->B-manufactures->P. The
	// 1-edge sub-patterns have the same support (3) as the 2-edge chain,
	// so only the chain is closed.
	m := NewMiner(Config{MaxEdges: 2, MinSupport: 2})
	base := int64(0)
	for i := 0; i < 3; i++ {
		m.Add(Edge{Src: base, Dst: base + 1, SrcLabel: "C", DstLabel: "C", Label: "acquired"})
		m.Add(Edge{Src: base + 1, Dst: base + 2, SrcLabel: "C", DstLabel: "P", Label: "manufactures"})
		base += 10
	}
	freq := m.FrequentPatterns()
	closed := m.ClosedPatterns()
	if len(freq) != 3 {
		t.Fatalf("frequent = %+v", freq)
	}
	if len(closed) != 1 || len(closed[0].Edges) != 2 {
		t.Fatalf("closed = %+v", closed)
	}
	// Add an extra lone "acquired" edge: its 1-edge pattern now has support
	// 4 > chain's 3, so it becomes closed too.
	m.Add(Edge{Src: 100, Dst: 101, SrcLabel: "C", DstLabel: "C", Label: "acquired"})
	closed = m.ClosedPatterns()
	if len(closed) != 2 {
		t.Fatalf("closed after extra edge = %+v", closed)
	}
}

// C2: when a large pattern turns infrequent after eviction, its
// sub-patterns are still counted and re-enter the closed set.
func TestReconstructionAfterInfrequency(t *testing.T) {
	cfg := Config{MaxEdges: 2, MinSupport: 3}
	m := NewMiner(cfg)
	// three chain instances at times 0,1,2 — chain frequent
	for i := int64(0); i < 3; i++ {
		m.Add(Edge{Src: i * 10, Dst: i*10 + 1, SrcLabel: "C", DstLabel: "C", Label: "acquired", Time: i})
		m.Add(Edge{Src: i*10 + 1, Dst: i*10 + 2, SrcLabel: "C", DstLabel: "P", Label: "manufactures", Time: i})
	}
	// plus 2 extra lone acquired edges at later times (so the 1-edge
	// pattern stays frequent after the first chain evicts)
	m.Add(Edge{Src: 200, Dst: 201, SrcLabel: "C", DstLabel: "C", Label: "acquired", Time: 5})
	m.Add(Edge{Src: 300, Dst: 301, SrcLabel: "C", DstLabel: "C", Label: "acquired", Time: 5})

	entered, left := m.Transitions()
	if len(entered) == 0 || len(left) != 0 {
		t.Fatalf("initial transitions: entered=%d left=%d", len(entered), len(left))
	}
	chainClosedBefore := false
	for _, p := range m.ClosedPatterns() {
		if len(p.Edges) == 2 {
			chainClosedBefore = true
		}
	}
	if !chainClosedBefore {
		t.Fatal("chain pattern not closed before eviction")
	}

	// Evict time < 1: first chain instance dies; chain support 2 < 3.
	m.EvictBefore(1)
	entered, left = m.Transitions()
	chainLeft := false
	for _, p := range left {
		if len(p.Edges) == 2 {
			chainLeft = true
		}
	}
	if !chainLeft {
		t.Fatalf("chain should have left the frequent set: left=%+v", left)
	}
	// The 1-edge acquired pattern must now be closed (reconstructed as the
	// maximal frequent pattern).
	foundAcquired := false
	for _, p := range m.ClosedPatterns() {
		if len(p.Edges) == 1 && p.Edges[0].Label == "acquired" {
			foundAcquired = true
			if p.Support < 3 {
				t.Fatalf("reconstructed pattern support = %d", p.Support)
			}
		}
	}
	if !foundAcquired {
		t.Fatal("1-edge acquired pattern not reconstructed into closed set")
	}
}

func TestMNISupportStar(t *testing.T) {
	// hub with 5 spokes: embedding count 5, MNI = min(1 hub, 5 spokes) = 1.
	mkStar := func(cfg Config) *Miner {
		m := NewMiner(cfg)
		for i := int64(1); i <= 5; i++ {
			m.Add(Edge{Src: 0, Dst: i, SrcLabel: "C", DstLabel: "P", Label: "manufactures"})
		}
		return m
	}
	plain := mkStar(Config{MaxEdges: 1, MinSupport: 1})
	mni := mkStar(Config{MaxEdges: 1, MinSupport: 1, TrackMNI: true})
	pPlain := plain.FrequentPatterns()
	if len(pPlain) != 1 || pPlain[0].Support != 5 {
		t.Fatalf("embedding-count support = %+v", pPlain)
	}
	pMNI := mni.FrequentPatterns()
	if len(pMNI) != 1 || pMNI[0].Support != 1 {
		t.Fatalf("MNI support = %+v", pMNI)
	}
}

func TestMNIEvictionConsistency(t *testing.T) {
	cfg := Config{MaxEdges: 2, MinSupport: 1, TrackMNI: true}
	m := NewMiner(cfg)
	stream := randomStream(40, 19)
	for _, ed := range stream {
		m.Add(ed)
	}
	m.EvictBefore(20)
	fresh := minerForWindow(windowEdges(m), cfg, 1)
	for code := range m.counts {
		if m.Support(code) != fresh.Support(code) {
			t.Fatalf("MNI support desync for %s: %d vs %d", code, m.Support(code), fresh.Support(code))
		}
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{
		VertexLabels: []string{"Company", "Company", "Product"},
		Edges: []PatternEdge{
			{Src: 0, Dst: 1, Label: "acquired"},
			{Src: 1, Dst: 2, Label: "manufactures"},
		},
	}
	want := "(Company a)-[acquired]->(Company b); (Company b)-[manufactures]->(Product c)"
	if got := p.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestGSpanKnownDB(t *testing.T) {
	// Two transactions share the chain C-acquired->C-manufactures->P; one
	// has an extra edge.
	mk := func(extra bool) TxGraph {
		tx := TxGraph{
			VertexLabels: []string{"C", "C", "P"},
			Edges: []TxEdge{
				{Src: 0, Dst: 1, Label: "acquired"},
				{Src: 1, Dst: 2, Label: "manufactures"},
			},
		}
		if extra {
			tx.VertexLabels = append(tx.VertexLabels, "C")
			tx.Edges = append(tx.Edges, TxEdge{Src: 0, Dst: 3, Label: "invests"})
		}
		return tx
	}
	db := []TxGraph{mk(false), mk(true)}
	ps, err := GSpan(db, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// expected frequent with support 2: acquired edge, manufactures edge,
	// and the 2-edge chain. The invests edge has support 1.
	if len(ps) != 3 {
		t.Fatalf("gspan found %d patterns: %+v", len(ps), ps)
	}
	for _, p := range ps {
		if p.Support != 2 {
			t.Fatalf("support = %d for %s", p.Support, p)
		}
	}
	closed, err := GSpanClosed(db, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(closed) != 1 || len(closed[0].Edges) != 2 {
		t.Fatalf("gspan closed = %+v", closed)
	}
}

func TestGSpanDirectionality(t *testing.T) {
	// a->b in tx1, b->a in tx2 with identical labels: each direction has
	// support 1 only if the pattern is direction-sensitive... here vertex
	// labels are equal so a->b and b->a are isomorphic; support must be 2.
	db := []TxGraph{
		{VertexLabels: []string{"C", "C"}, Edges: []TxEdge{{0, 1, "acquired"}}},
		{VertexLabels: []string{"C", "C"}, Edges: []TxEdge{{1, 0, "acquired"}}},
	}
	ps, err := GSpan(db, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Support != 2 {
		t.Fatalf("patterns = %+v", ps)
	}
	// With distinct vertex labels direction must separate patterns.
	db2 := []TxGraph{
		{VertexLabels: []string{"C", "P"}, Edges: []TxEdge{{0, 1, "makes"}}},
		{VertexLabels: []string{"C", "P"}, Edges: []TxEdge{{1, 0, "makes"}}},
	}
	ps2, err := GSpan(db2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps2) != 2 {
		t.Fatalf("direction collapsed: %+v", ps2)
	}
}

func TestGSpanSelfLoop(t *testing.T) {
	db := []TxGraph{
		{VertexLabels: []string{"C"}, Edges: []TxEdge{{0, 0, "references"}}},
		{VertexLabels: []string{"C"}, Edges: []TxEdge{{0, 0, "references"}}},
	}
	ps, err := GSpan(db, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || len(ps[0].VertexLabels) != 1 {
		t.Fatalf("self-loop pattern = %+v", ps)
	}
}

func TestGSpanRejectsOversizedTransaction(t *testing.T) {
	tx := TxGraph{VertexLabels: []string{"C", "C"}}
	for i := 0; i < 65; i++ {
		tx.Edges = append(tx.Edges, TxEdge{0, 1, "r"})
	}
	if _, err := GSpan([]TxGraph{tx}, 1, 2); err == nil {
		t.Fatal("oversized transaction accepted")
	}
	bad := TxGraph{VertexLabels: []string{"C"}, Edges: []TxEdge{{0, 5, "r"}}}
	if _, err := GSpan([]TxGraph{bad}, 1, 2); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestGSpanMatchesMineWindowOnPartitionedStream(t *testing.T) {
	// When each transaction is one connected component, embedding-level
	// enumeration and transactional gSpan agree on which patterns exist
	// (supports differ by definition: embeddings vs transactions).
	stream := []Edge{
		e(1, 2, "acquired"), e(2, 3, "partnersWith"),
		e(11, 12, "acquired"), e(12, 13, "partnersWith"),
		e(21, 22, "acquired"), e(22, 23, "partnersWith"),
	}
	emb := MineWindow(stream, Config{MaxEdges: 2, MinSupport: 3})
	var txs []TxGraph
	for i := 0; i < 3; i++ {
		txs = append(txs, TxGraph{
			VertexLabels: []string{"C", "C", "C"},
			Edges:        []TxEdge{{0, 1, "acquired"}, {1, 2, "partnersWith"}},
		})
	}
	gs, err := GSpan(txs, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != len(gs) {
		t.Fatalf("pattern sets differ: stream %d vs gspan %d", len(emb), len(gs))
	}
	embCodes := map[string]bool{}
	for _, p := range emb {
		embCodes[p.Code] = true
	}
	for _, p := range gs {
		if !embCodes[p.Code] {
			t.Fatalf("gspan pattern %s missing from stream miner", p)
		}
	}
}

func TestTransactionsFromEdges(t *testing.T) {
	stream := []Edge{
		e(1, 2, "acquired"),
		e(1, 3, "partnersWith"),
		e(4, 5, "acquired"),
	}
	txs := TransactionsFromEdges(stream, 2)
	if len(txs) != 1 {
		t.Fatalf("transactions = %+v", txs)
	}
	if len(txs[0].Edges) != 2 {
		t.Fatalf("center tx edges = %+v", txs[0].Edges)
	}
}

func TestEmbeddingsTouchedGrows(t *testing.T) {
	m := NewMiner(Config{MaxEdges: 2, MinSupport: 1})
	m.Add(e(1, 2, "acquired"))
	first := m.EmbeddingsTouched()
	m.Add(e(2, 3, "acquired"))
	if m.EmbeddingsTouched() <= first {
		t.Fatal("work counter not growing")
	}
}

// benchStream draws edges over a wide vertex space (realistic KG sparsity;
// the 8-vertex correctness streams would be pathologically dense at
// benchmark window sizes).
func benchStream(n int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"acquired", "partnersWith", "invests", "manufactures"}
	vlabels := []string{"C", "P"}
	out := make([]Edge, n)
	for i := range out {
		s := int64(rng.Intn(300))
		d := int64(rng.Intn(300))
		for d == s {
			d = int64(rng.Intn(300))
		}
		out[i] = Edge{
			Src: s, Dst: d,
			SrcLabel: vlabels[s%2], DstLabel: vlabels[d%2],
			Label: labels[rng.Intn(len(labels))],
			Time:  int64(i),
		}
	}
	return out
}

func BenchmarkStreamingAdd(b *testing.B) {
	stream := benchStream(20000, 3)
	m := NewMiner(Config{MaxEdges: 3, MinSupport: 5, WindowSize: 2000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(stream[i%len(stream)])
	}
}

func BenchmarkMineWindowFromScratch(b *testing.B) {
	stream := benchStream(2000, 4)
	cfg := Config{MaxEdges: 3, MinSupport: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MineWindow(stream, cfg)
	}
}

func BenchmarkGSpan(b *testing.B) {
	stream := benchStream(1000, 5)
	txs := TransactionsFromEdges(stream, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GSpan(txs, 5, 3); err != nil {
			b.Fatal(err)
		}
	}
}
