package fgm

import "sort"

// Instance is one concrete embedding of a pattern in a window: the mapping
// from pattern vertex positions to concrete vertex ids, plus the matched
// edges in pattern-edge order. Figure 7 of the paper shows such instances
// as the validation of a discovered pattern.
type Instance struct {
	Vertices []int64 // pattern position -> concrete vertex id
	Edges    []Edge  // aligned with Pattern.Edges
}

// FindInstances returns up to limit concrete instances of the pattern in
// the miner's current window, found by backtracking subgraph matching.
// limit <= 0 returns all instances.
func (m *Miner) FindInstances(p Pattern, limit int) []Instance {
	edges := make([]Edge, 0, len(m.queue))
	for _, we := range m.queue {
		edges = append(edges, we.Edge)
	}
	return FindInstances(p, edges, limit)
}

// FindInstances matches a pattern against a set of stream edges. Matching
// is exact: vertex labels, edge labels and edge directions must all agree,
// pattern positions map injectively to concrete vertices, and pattern edges
// map to distinct concrete edges.
func FindInstances(p Pattern, edges []Edge, limit int) []Instance {
	if len(p.Edges) == 0 || len(p.VertexLabels) == 0 {
		return nil
	}
	// Index edges by label for candidate lookup.
	byLabel := map[string][]int{}
	for i, e := range edges {
		byLabel[e.Label] = append(byLabel[e.Label], i)
	}

	// Order pattern edges so each one after the first touches an
	// already-bound vertex (connected patterns always admit such an order).
	order := connectedEdgeOrder(p)

	var out []Instance
	binding := make([]int64, len(p.VertexLabels))
	bound := make([]bool, len(p.VertexLabels))
	usedEdge := make([]int, 0, len(p.Edges)) // concrete edge index per pattern edge (ordered)
	usedVertex := map[int64]int{}            // concrete vertex -> pattern position

	var rec func(step int) bool // returns true when the limit is reached
	rec = func(step int) bool {
		if step == len(order) {
			inst := Instance{Vertices: append([]int64{}, binding...), Edges: make([]Edge, len(p.Edges))}
			for k, pe := range order {
				inst.Edges[pe] = edges[usedEdge[k]]
			}
			out = append(out, inst)
			return limit > 0 && len(out) >= limit
		}
		pe := p.Edges[order[step]]
		for _, ei := range byLabel[pe.Label] {
			if containsInt(usedEdge, ei) {
				continue
			}
			e := edges[ei]
			if e.SrcLabel != p.VertexLabels[pe.Src] || e.DstLabel != p.VertexLabels[pe.Dst] {
				continue
			}
			// Check endpoint consistency with current binding.
			okSrc, okDst := checkBind(bound, binding, usedVertex, pe.Src, e.Src), false
			if okSrc {
				okDst = checkBind(bound, binding, usedVertex, pe.Dst, e.Dst)
			}
			if !okSrc || !okDst {
				continue
			}
			// Self-loop patterns need matching self-loop edges.
			if (pe.Src == pe.Dst) != (e.Src == e.Dst) {
				continue
			}
			undoSrc := bind(bound, binding, usedVertex, pe.Src, e.Src)
			undoDst := false
			if pe.Dst != pe.Src {
				undoDst = bind(bound, binding, usedVertex, pe.Dst, e.Dst)
			}
			usedEdge = append(usedEdge, ei)
			if rec(step + 1) {
				return true
			}
			usedEdge = usedEdge[:len(usedEdge)-1]
			if undoDst {
				unbind(bound, usedVertex, pe.Dst, e.Dst)
			}
			if undoSrc {
				unbind(bound, usedVertex, pe.Src, e.Src)
			}
		}
		return false
	}
	rec(0)
	return out
}

// checkBind reports whether pattern position pos may map to concrete
// vertex v under the current partial binding (injectively).
func checkBind(bound []bool, binding []int64, usedVertex map[int64]int, pos int, v int64) bool {
	if bound[pos] {
		return binding[pos] == v
	}
	if other, taken := usedVertex[v]; taken && other != pos {
		return false
	}
	return true
}

// bind maps pos to v, returning true if this call created the binding (and
// so must be undone on backtrack).
func bind(bound []bool, binding []int64, usedVertex map[int64]int, pos int, v int64) bool {
	if bound[pos] {
		return false
	}
	bound[pos] = true
	binding[pos] = v
	usedVertex[v] = pos
	return true
}

func unbind(bound []bool, usedVertex map[int64]int, pos int, v int64) {
	bound[pos] = false
	delete(usedVertex, v)
}

// connectedEdgeOrder returns an ordering of pattern edge indices in which
// every edge after the first shares a vertex with an earlier edge.
func connectedEdgeOrder(p Pattern) []int {
	n := len(p.Edges)
	order := make([]int, 0, n)
	used := make([]bool, n)
	seen := map[int]bool{}

	// deterministic start: lowest edge index
	order = append(order, 0)
	used[0] = true
	seen[p.Edges[0].Src] = true
	seen[p.Edges[0].Dst] = true
	for len(order) < n {
		next := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if seen[p.Edges[i].Src] || seen[p.Edges[i].Dst] {
				next = i
				break
			}
		}
		if next < 0 {
			// Disconnected pattern: append remaining in index order (the
			// matcher still works, just without the adjacency speedup).
			for i := 0; i < n; i++ {
				if !used[i] {
					next = i
					break
				}
			}
		}
		order = append(order, next)
		used[next] = true
		seen[p.Edges[next].Src] = true
		seen[p.Edges[next].Dst] = true
	}
	return order
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// SortInstances orders instances deterministically by their vertex ids.
func SortInstances(ins []Instance) {
	sort.Slice(ins, func(i, j int) bool {
		a, b := ins[i].Vertices, ins[j].Vertices
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
