package fgm

import (
	"fmt"
	"sort"
)

// gSpan (Yan & Han, ICDM'02) is the classical transaction-setting frequent
// subgraph miner the paper contrasts its streaming algorithm with. This
// implementation performs pattern growth over projections (embedding lists
// per transaction), with duplicate search branches pruned by canonical-form
// de-duplication — equivalent in effect to gSpan's minimum-DFS-code test,
// and exact at the small pattern sizes used here. Support is the number of
// transactions containing at least one embedding.

// TxEdge is a directed labeled edge inside one transaction graph.
type TxEdge struct {
	Src, Dst int
	Label    string
}

// TxGraph is one transaction: a small directed labeled graph.
type TxGraph struct {
	VertexLabels []string
	Edges        []TxEdge
}

// gspanEmbedding maps a pattern into a transaction: which transaction,
// which concrete vertex per pattern position, which edges used.
type gspanEmbedding struct {
	tx    int
	verts []int  // pattern position -> tx vertex
	used  uint64 // bitset over tx edge indices (transactions are small)
}

// GSpan mines frequent patterns from a database of transaction graphs.
// Transactions with more than 64 edges are rejected (the projection bitset
// is fixed-width; NOUS transactions are per-entity neighborhoods and stay
// far below that).
func GSpan(db []TxGraph, minSupport, maxEdges int) ([]Pattern, error) {
	for i, tx := range db {
		if len(tx.Edges) > 64 {
			return nil, fmt.Errorf("fgm: transaction %d has %d edges (max 64)", i, len(tx.Edges))
		}
		for _, e := range tx.Edges {
			if e.Src < 0 || e.Src >= len(tx.VertexLabels) || e.Dst < 0 || e.Dst >= len(tx.VertexLabels) {
				return nil, fmt.Errorf("fgm: transaction %d has edge endpoints out of range", i)
			}
		}
	}
	if maxEdges <= 0 {
		maxEdges = 3
	}
	g := &gspanRun{db: db, minSup: minSupport, maxEdges: maxEdges,
		canon: newCanonicalizer(), results: map[string]Pattern{}, visited: map[string]bool{}}

	// Seed: all frequent single-edge patterns. Self-loops are a distinct
	// seed shape even when the endpoint labels match.
	type seedKey struct {
		sl, el, dl string
		self       bool
	}
	seeds := map[seedKey][]gspanEmbedding{}
	for txi, tx := range db {
		for ei, e := range tx.Edges {
			k := seedKey{tx.VertexLabels[e.Src], e.Label, tx.VertexLabels[e.Dst], e.Src == e.Dst}
			var emb gspanEmbedding
			emb.tx = txi
			if k.self {
				emb.verts = []int{e.Src}
			} else {
				emb.verts = []int{e.Src, e.Dst}
			}
			emb.used = 1 << uint(ei)
			seeds[k] = append(seeds[k], emb)
		}
	}
	var keys []seedKey
	for k := range seeds {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.sl != b.sl {
			return a.sl < b.sl
		}
		if a.el != b.el {
			return a.el < b.el
		}
		if a.dl != b.dl {
			return a.dl < b.dl
		}
		return !a.self && b.self
	})
	for _, k := range keys {
		embs := seeds[k]
		if txSupport(embs) < minSupport {
			continue
		}
		var p Pattern
		if k.self {
			p = Pattern{VertexLabels: []string{k.sl}, Edges: []PatternEdge{{0, 0, k.el}}}
		} else {
			p = Pattern{VertexLabels: []string{k.sl, k.dl}, Edges: []PatternEdge{{0, 1, k.el}}}
		}
		g.grow(p, embs)
	}

	out := make([]Pattern, 0, len(g.results))
	for _, p := range g.results {
		out = append(out, p)
	}
	sortPatterns(out)
	return out, nil
}

// GSpanClosed mines and filters to closed patterns.
func GSpanClosed(db []TxGraph, minSupport, maxEdges int) ([]Pattern, error) {
	all, err := GSpan(db, minSupport, maxEdges)
	if err != nil {
		return nil, err
	}
	return closedOf(all), nil
}

type gspanRun struct {
	db       []TxGraph
	minSup   int
	maxEdges int
	canon    *canonicalizer
	results  map[string]Pattern
	visited  map[string]bool // canonical codes already expanded
}

// grow records a frequent pattern and tries all one-edge extensions of its
// embeddings.
func (g *gspanRun) grow(p Pattern, embs []gspanEmbedding) {
	code := canonOfPattern(g.canon, p)
	if g.visited[code] {
		return
	}
	g.visited[code] = true
	sup := txSupport(embs)
	if sup < g.minSup {
		return
	}
	stored := p
	stored.Code = code
	stored.Support = sup
	g.results[code] = stored
	if len(p.Edges) >= g.maxEdges {
		return
	}

	// Extension candidates: for every embedding, every tx edge incident to
	// a mapped vertex and not yet used. Group by (pattern extension shape).
	type extKey struct {
		fromPos int    // pattern position the edge attaches to
		out     bool   // true: edge leaves fromPos
		label   string // edge label
		otherL  string // other endpoint's vertex label
		toPos   int    // existing pattern position of other endpoint, or -1 (new vertex)
	}
	extEmbs := map[extKey][]gspanEmbedding{}
	for _, emb := range embs {
		tx := g.db[emb.tx]
		posOf := map[int]int{}
		for pos, v := range emb.verts {
			posOf[v] = pos
		}
		for ei, e := range tx.Edges {
			if emb.used&(1<<uint(ei)) != 0 {
				continue
			}
			srcPos, hasSrc := posOf[e.Src]
			dstPos, hasDst := posOf[e.Dst]
			if !hasSrc && !hasDst {
				continue // not incident to the embedding
			}
			var k extKey
			var newEmb gspanEmbedding
			newEmb.tx = emb.tx
			newEmb.used = emb.used | 1<<uint(ei)
			switch {
			case hasSrc && hasDst:
				k = extKey{fromPos: srcPos, out: true, label: e.Label, otherL: tx.VertexLabels[e.Dst], toPos: dstPos}
				newEmb.verts = append([]int{}, emb.verts...)
			case hasSrc:
				k = extKey{fromPos: srcPos, out: true, label: e.Label, otherL: tx.VertexLabels[e.Dst], toPos: -1}
				newEmb.verts = append(append([]int{}, emb.verts...), e.Dst)
			default: // hasDst
				k = extKey{fromPos: dstPos, out: false, label: e.Label, otherL: tx.VertexLabels[e.Src], toPos: -1}
				newEmb.verts = append(append([]int{}, emb.verts...), e.Src)
			}
			extEmbs[k] = append(extEmbs[k], newEmb)
		}
	}

	var keys []extKey
	for k := range extEmbs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.fromPos != b.fromPos {
			return a.fromPos < b.fromPos
		}
		if a.toPos != b.toPos {
			return a.toPos < b.toPos
		}
		if a.label != b.label {
			return a.label < b.label
		}
		if a.otherL != b.otherL {
			return a.otherL < b.otherL
		}
		return a.out && !b.out
	})

	for _, k := range keys {
		childEmbs := extEmbs[k]
		if txSupport(childEmbs) < g.minSup {
			continue
		}
		child := Pattern{
			VertexLabels: append([]string{}, p.VertexLabels...),
			Edges:        append([]PatternEdge{}, p.Edges...),
		}
		toPos := k.toPos
		if toPos < 0 {
			child.VertexLabels = append(child.VertexLabels, k.otherL)
			toPos = len(child.VertexLabels) - 1
		}
		if k.out {
			child.Edges = append(child.Edges, PatternEdge{Src: k.fromPos, Dst: toPos, Label: k.label})
		} else {
			child.Edges = append(child.Edges, PatternEdge{Src: toPos, Dst: k.fromPos, Label: k.label})
		}
		g.grow(child, childEmbs)
	}
}

// txSupport counts distinct transactions among embeddings.
func txSupport(embs []gspanEmbedding) int {
	seen := map[int]bool{}
	for _, e := range embs {
		seen[e.tx] = true
	}
	return len(seen)
}

// canonOfPattern canonicalizes an abstract pattern by treating positions as
// concrete vertices.
func canonOfPattern(c *canonicalizer, p Pattern) string {
	emb := make([]embEdge, len(p.Edges))
	for i, e := range p.Edges {
		emb[i] = embEdge{
			src: int64(e.Src), dst: int64(e.Dst),
			srcLabel: p.VertexLabels[e.Src], dstLabel: p.VertexLabels[e.Dst],
			label: e.Label,
		}
	}
	code, _, _ := c.canonicalize(emb)
	return code
}

// TransactionsFromEdges converts a window of stream edges into per-vertex
// neighborhood transactions — the reduction NOUS uses to compare the
// streaming miner with transaction-setting systems. Each vertex with at
// least minDegree incident edges contributes one transaction containing its
// 1-hop neighborhood subgraph.
func TransactionsFromEdges(edges []Edge, minDegree int) []TxGraph {
	adj := map[int64][]Edge{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e)
		if e.Dst != e.Src {
			adj[e.Dst] = append(adj[e.Dst], e)
		}
	}
	var centers []int64
	for v, es := range adj {
		if len(es) >= minDegree {
			centers = append(centers, v)
		}
	}
	sort.Slice(centers, func(i, j int) bool { return centers[i] < centers[j] })

	var out []TxGraph
	for _, c := range centers {
		var tx TxGraph
		idx := map[int64]int{}
		vertexOf := func(v int64, label string) int {
			if i, ok := idx[v]; ok {
				return i
			}
			idx[v] = len(tx.VertexLabels)
			tx.VertexLabels = append(tx.VertexLabels, label)
			return idx[v]
		}
		es := adj[c]
		if len(es) > 64 {
			es = es[:64]
		}
		for _, e := range es {
			s := vertexOf(e.Src, e.SrcLabel)
			d := vertexOf(e.Dst, e.DstLabel)
			tx.Edges = append(tx.Edges, TxEdge{Src: s, Dst: d, Label: e.Label})
		}
		out = append(out, tx)
	}
	return out
}
