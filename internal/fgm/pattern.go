// Package fgm implements NOUS's major research contribution (§3.5): a
// distributed algorithm for frequent graph mining over a stream of triples.
// The streaming miner maintains, incrementally under both edge arrival and
// sliding-window eviction, the embedding counts of every connected pattern
// up to a size bound, and reports the closed frequent patterns of the
// current window. Patterns abstract entities to their types, so the miner
// simultaneously covers the curated KB and extracted knowledge — the
// "combining both structures" property the paper highlights.
//
// Two baselines accompany it: an Arabesque-style from-scratch embedding
// enumerator re-run per window (the system the paper benchmarks against,
// reporting ~3× speedup) and a full transaction-setting gSpan.
package fgm

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is one typed, labeled stream edge: a triple whose endpoints carry
// entity identities (for embedding counting) and type labels (for pattern
// abstraction).
type Edge struct {
	Src, Dst           int64  // entity identities
	SrcLabel, DstLabel string // entity types
	Label              string // predicate
	Time               int64  // event time (used by time-based eviction)
}

// PatternEdge is one edge of an abstract pattern between canonical vertex
// positions.
type PatternEdge struct {
	Src, Dst int
	Label    string
}

// Pattern is a connected, labeled, directed multigraph abstraction with a
// canonical code and its current support.
type Pattern struct {
	VertexLabels []string
	Edges        []PatternEdge
	Support      int
	Code         string
}

// String renders a pattern as the paper's figures do:
// (Company a)-[acquired]->(Company b); (Company b)-[manufactures]->(Product c).
func (p Pattern) String() string {
	varName := func(i int) string { return string(rune('a' + i)) }
	parts := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		parts[i] = fmt.Sprintf("(%s %s)-[%s]->(%s %s)",
			p.VertexLabels[e.Src], varName(e.Src), e.Label, p.VertexLabels[e.Dst], varName(e.Dst))
	}
	return strings.Join(parts, "; ")
}

// canonicalizer computes canonical codes for small embeddings, memoizing on
// the raw (sorted-vertex-order) signature.
type canonicalizer struct {
	memo map[string]canonEntry
}

type canonEntry struct {
	code string
	// permOfRaw maps raw vertex position (by ascending concrete id) to
	// canonical position.
	permOfRaw []int
	pattern   Pattern
}

func newCanonicalizer() *canonicalizer {
	return &canonicalizer{memo: make(map[string]canonEntry)}
}

// embEdge is the abstract view of one embedding edge.
type embEdge struct {
	src, dst           int64
	srcLabel, dstLabel string
	label              string
}

// canonicalize returns the canonical code, the concrete-vertex→canonical-
// position mapping and the abstract pattern of an embedding.
func (c *canonicalizer) canonicalize(emb []embEdge) (string, map[int64]int, Pattern) {
	// Collect distinct vertices in ascending concrete-id order.
	var vids []int64
	seen := map[int64]bool{}
	labels := map[int64]string{}
	for _, e := range emb {
		if !seen[e.src] {
			seen[e.src] = true
			vids = append(vids, e.src)
		}
		if !seen[e.dst] {
			seen[e.dst] = true
			vids = append(vids, e.dst)
		}
		labels[e.src] = e.srcLabel
		labels[e.dst] = e.dstLabel
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	rawPos := make(map[int64]int, len(vids))
	for i, v := range vids {
		rawPos[v] = i
	}

	rawSig := buildSig(emb, rawPos, vids, labels, identityPerm(len(vids)))
	if ent, ok := c.memo[rawSig]; ok {
		perm := make(map[int64]int, len(vids))
		for i, v := range vids {
			perm[v] = ent.permOfRaw[i]
		}
		return ent.code, perm, ent.pattern
	}

	k := len(vids)
	best := ""
	var bestPerm []int
	permute(k, func(p []int) {
		sig := buildSig(emb, rawPos, vids, labels, p)
		if best == "" || sig < best {
			best = sig
			bestPerm = append(bestPerm[:0], p...)
		}
	})

	pattern := patternFromSig(best)
	pattern.Code = best
	c.memo[rawSig] = canonEntry{code: best, permOfRaw: append([]int{}, bestPerm...), pattern: pattern}

	perm := make(map[int64]int, len(vids))
	for i, v := range vids {
		perm[v] = bestPerm[i]
	}
	return best, perm, pattern
}

// buildSig renders an embedding under a raw→position permutation as
// "L0,L1|s>d:label;s>d:label" with edges sorted.
func buildSig(emb []embEdge, rawPos map[int64]int, vids []int64, labels map[int64]string, perm []int) string {
	vlabels := make([]string, len(vids))
	for i, v := range vids {
		vlabels[perm[i]] = labels[v]
	}
	edges := make([]string, len(emb))
	for i, e := range emb {
		edges[i] = fmt.Sprintf("%d>%d:%s", perm[rawPos[e.src]], perm[rawPos[e.dst]], e.label)
	}
	sort.Strings(edges)
	return strings.Join(vlabels, ",") + "|" + strings.Join(edges, ";")
}

// patternFromSig parses a signature back into a Pattern.
func patternFromSig(sig string) Pattern {
	var p Pattern
	parts := strings.SplitN(sig, "|", 2)
	if parts[0] != "" {
		p.VertexLabels = strings.Split(parts[0], ",")
	}
	if len(parts) < 2 || parts[1] == "" {
		return p
	}
	for _, es := range strings.Split(parts[1], ";") {
		var s, d int
		var label string
		if i := strings.IndexByte(es, ':'); i >= 0 {
			label = es[i+1:]
			fmt.Sscanf(es[:i], "%d>%d", &s, &d)
		}
		p.Edges = append(p.Edges, PatternEdge{Src: s, Dst: d, Label: label})
	}
	return p
}

func identityPerm(k int) []int {
	p := make([]int, k)
	for i := range p {
		p[i] = i
	}
	return p
}

// permute calls fn with every permutation of [0,k). fn must copy p if it
// keeps it.
func permute(k int, fn func(p []int)) {
	p := identityPerm(k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			fn(p)
			return
		}
		for j := i; j < k; j++ {
			p[i], p[j] = p[j], p[i]
			rec(i + 1)
			p[i], p[j] = p[j], p[i]
		}
	}
	rec(0)
}

// subPatternOf reports whether p is a subgraph of q (injective vertex
// mapping preserving vertex labels, edge labels and direction).
func subPatternOf(p, q Pattern) bool {
	if len(p.Edges) > len(q.Edges) || len(p.VertexLabels) > len(q.VertexLabels) {
		return false
	}
	n, m := len(p.VertexLabels), len(q.VertexLabels)
	assign := make([]int, n)
	used := make([]bool, m)
	for i := range assign {
		assign[i] = -1
	}
	var match func(i int) bool
	match = func(i int) bool {
		if i == n {
			return edgesContained(p.Edges, q.Edges, assign)
		}
		for j := 0; j < m; j++ {
			if used[j] || p.VertexLabels[i] != q.VertexLabels[j] {
				continue
			}
			assign[i] = j
			used[j] = true
			if match(i + 1) {
				return true
			}
			assign[i] = -1
			used[j] = false
		}
		return false
	}
	return match(0)
}

// edgesContained checks multiset containment of p-edges mapped through
// assign into q-edges.
func edgesContained(pe, qe []PatternEdge, assign []int) bool {
	remaining := make(map[PatternEdge]int, len(qe))
	for _, e := range qe {
		remaining[e]++
	}
	for _, e := range pe {
		mapped := PatternEdge{Src: assign[e.Src], Dst: assign[e.Dst], Label: e.Label}
		if remaining[mapped] == 0 {
			return false
		}
		remaining[mapped]--
	}
	return true
}
