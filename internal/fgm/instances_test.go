package fgm

import "testing"

func chainPattern() Pattern {
	return Pattern{
		VertexLabels: []string{"C", "C", "P"},
		Edges: []PatternEdge{
			{Src: 0, Dst: 1, Label: "acquired"},
			{Src: 1, Dst: 2, Label: "manufactures"},
		},
	}
}

func chainEdges() []Edge {
	return []Edge{
		{Src: 1, Dst: 2, SrcLabel: "C", DstLabel: "C", Label: "acquired"},
		{Src: 2, Dst: 3, SrcLabel: "C", DstLabel: "P", Label: "manufactures"},
		{Src: 10, Dst: 20, SrcLabel: "C", DstLabel: "C", Label: "acquired"},
		{Src: 20, Dst: 30, SrcLabel: "C", DstLabel: "P", Label: "manufactures"},
		// distractors
		{Src: 5, Dst: 6, SrcLabel: "C", DstLabel: "P", Label: "manufactures"},
		{Src: 7, Dst: 8, SrcLabel: "C", DstLabel: "C", Label: "partnersWith"},
	}
}

func TestFindInstancesChain(t *testing.T) {
	ins := FindInstances(chainPattern(), chainEdges(), 0)
	if len(ins) != 2 {
		t.Fatalf("instances = %d, want 2: %+v", len(ins), ins)
	}
	SortInstances(ins)
	if ins[0].Vertices[0] != 1 || ins[0].Vertices[1] != 2 || ins[0].Vertices[2] != 3 {
		t.Fatalf("first instance = %+v", ins[0])
	}
	if ins[0].Edges[0].Label != "acquired" || ins[0].Edges[1].Label != "manufactures" {
		t.Fatalf("edges misaligned: %+v", ins[0].Edges)
	}
}

func TestFindInstancesLimit(t *testing.T) {
	ins := FindInstances(chainPattern(), chainEdges(), 1)
	if len(ins) != 1 {
		t.Fatalf("limit ignored: %d instances", len(ins))
	}
}

func TestFindInstancesInjective(t *testing.T) {
	// Pattern with two distinct C vertices both acquiring the same target
	// must not map both positions onto one concrete vertex.
	p := Pattern{
		VertexLabels: []string{"C", "C", "C"},
		Edges: []PatternEdge{
			{Src: 0, Dst: 2, Label: "acquired"},
			{Src: 1, Dst: 2, Label: "acquired"},
		},
	}
	edges := []Edge{
		{Src: 1, Dst: 9, SrcLabel: "C", DstLabel: "C", Label: "acquired"},
	}
	if ins := FindInstances(p, edges, 0); len(ins) != 0 {
		t.Fatalf("non-injective match accepted: %+v", ins)
	}
	edges = append(edges, Edge{Src: 2, Dst: 9, SrcLabel: "C", DstLabel: "C", Label: "acquired"})
	ins := FindInstances(p, edges, 0)
	if len(ins) != 2 { // (1,2,9) and (2,1,9)
		t.Fatalf("instances = %d, want 2", len(ins))
	}
}

func TestFindInstancesDirectionality(t *testing.T) {
	p := Pattern{
		VertexLabels: []string{"C", "C"},
		Edges:        []PatternEdge{{Src: 0, Dst: 1, Label: "acquired"}},
	}
	edges := []Edge{{Src: 5, Dst: 6, SrcLabel: "C", DstLabel: "C", Label: "acquired"}}
	ins := FindInstances(p, edges, 0)
	if len(ins) != 1 || ins[0].Vertices[0] != 5 {
		t.Fatalf("instances = %+v", ins)
	}
}

func TestFindInstancesSelfLoop(t *testing.T) {
	p := Pattern{
		VertexLabels: []string{"C"},
		Edges:        []PatternEdge{{Src: 0, Dst: 0, Label: "references"}},
	}
	edges := []Edge{
		{Src: 1, Dst: 1, SrcLabel: "C", DstLabel: "C", Label: "references"},
		{Src: 2, Dst: 3, SrcLabel: "C", DstLabel: "C", Label: "references"}, // not a self-loop
	}
	ins := FindInstances(p, edges, 0)
	if len(ins) != 1 || ins[0].Vertices[0] != 1 {
		t.Fatalf("self-loop instances = %+v", ins)
	}
}

func TestMinerFindInstancesAgreesWithSupport(t *testing.T) {
	m := NewMiner(Config{MaxEdges: 2, MinSupport: 1})
	for _, e := range chainEdges() {
		m.Add(e)
	}
	for _, p := range m.FrequentPatterns() {
		ins := m.FindInstances(p, 0)
		if len(ins) != p.Support {
			t.Fatalf("pattern %s: support %d but %d instances", p, p.Support, len(ins))
		}
	}
}

func TestFindInstancesEmptyPattern(t *testing.T) {
	if ins := FindInstances(Pattern{}, chainEdges(), 0); ins != nil {
		t.Fatalf("empty pattern matched: %+v", ins)
	}
}
