package server

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"nous"
)

// smallPipeline builds the same pipeline testServer wraps, for tests that
// need the Server value itself (not just a running httptest server).
func smallPipeline(t *testing.T) *nous.Pipeline {
	t.Helper()
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies = 10
	wcfg.People = 10
	wcfg.Products = 10
	wcfg.Events = 80
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	p.IngestAll(nous.GenerateArticles(w, nous.DefaultArticleConfig(60)))
	return p
}

func getBody(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d (body %s)", url, res.StatusCode, wantStatus, b)
	}
	return string(b)
}

// TestAskExecutorFailureIs500 pins the error mapping: parse failures are the
// client's fault (400), executor failures are the server's (500).
func TestAskExecutorFailureIs500(t *testing.T) {
	srv := New(smallPipeline(t))
	srv.ask = func(q string, w nous.Window) (nous.Answer, error) {
		return nous.Answer{}, errors.New("executor exploded")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := getBody(t, ts.URL+"/api/ask?q=Tell+me+about+DJI", 500)
	if !strings.Contains(body, "executor exploded") {
		t.Fatalf("500 body = %s", body)
	}
}

func TestAskParseFailureIs400(t *testing.T) {
	ts := httptest.NewServer(New(smallPipeline(t)))
	defer ts.Close()
	// Real parse failure through the real pipeline.
	body := getBody(t, ts.URL+"/api/ask?q=flarp+blonk+zibber", 400)
	if !strings.Contains(body, "error") {
		t.Fatalf("400 body = %s", body)
	}
	// Invalid temporal qualifier is also a client error.
	getBody(t, ts.URL+"/api/ask?q=Tell+me+about+DJI+between+2016+and+2015", 400)
}

func TestAskWindowParams(t *testing.T) {
	ts := httptest.NewServer(New(smallPipeline(t)))
	defer ts.Close()
	// Omitted window == unwindowed, byte for byte.
	plain := getBody(t, ts.URL+"/api/ask?q=Tell+me+about+DJI", 200)
	full := getBody(t, ts.URL+"/api/ask?q=Tell+me+about+DJI&since=1900-01-01&until=2100-01-01", 200)
	if plain == full {
		t.Fatal("bounded window answer should carry a window line")
	}
	if !strings.Contains(full, "window:") {
		t.Fatalf("windowed answer lacks window line: %s", full)
	}
	// A window before the corpus keeps only curated facts; the answer still
	// resolves the entity.
	early := getBody(t, ts.URL+"/api/ask?q=Tell+me+about+DJI&until=1990-01-01", 200)
	if !strings.Contains(early, "DJI") {
		t.Fatalf("early-window answer = %s", early)
	}
}

func TestEntityWindowParams(t *testing.T) {
	p := smallPipeline(t)
	// Drop the PageRank artifact the disambiguation prior computed
	// mid-ingest: within the MaxLag staleness budget the unwindowed query
	// would serve it, while the windowed artifact computes fresh at the
	// current epoch — two legitimately different graph states.
	p.Analytics().InvalidatePrior()
	ts := httptest.NewServer(New(p))
	defer ts.Close()
	plain := getJSON(t, ts.URL+"/api/entity?name=DJI", 200)
	full := getJSON(t, ts.URL+"/api/entity?name=DJI&since="+
		"1900-01-01T00:00:00Z&until=2100-01-01T00:00:00Z", 200)
	// Same summary either way: the corpus lies entirely inside the window.
	// Importance goes through the windowed PageRank artifact, whose parallel
	// reduction can differ in float ulps from the cached unwindowed one, so
	// it is compared with a tolerance rather than byte-for-byte.
	if plain["Name"] != full["Name"] || plain["Type"] != full["Type"] {
		t.Fatalf("all-covering window changed identity: %v vs %v", plain, full)
	}
	if !reflect.DeepEqual(plain["Facts"], full["Facts"]) {
		t.Fatalf("all-covering window changed the facts:\n%v\nvs\n%v", plain["Facts"], full["Facts"])
	}
	if math.Abs(plain["Importance"].(float64)-full["Importance"].(float64)) > 1e-9 {
		t.Fatalf("all-covering window changed importance: %v vs %v", plain["Importance"], full["Importance"])
	}
	getBody(t, ts.URL+"/api/entity?name=DJI&since=not-a-date", 400)
	getBody(t, ts.URL+"/api/entity?name=DJI&since=2016-01-01&until=2015-01-01", 400)
	// A bare 4-digit value is a year (matching the question language), not
	// unix seconds: since=2015&until=2016 equals the 2015 calendar window.
	yr := getJSON(t, ts.URL+"/api/entity?name=DJI&since=2015&until=2016", 200)
	day := getJSON(t, ts.URL+"/api/entity?name=DJI&since=2015-01-01&until=2016-01-01", 200)
	if !reflect.DeepEqual(yr["Facts"], day["Facts"]) {
		t.Fatalf("since=2015 diverges from since=2015-01-01:\n%v\nvs\n%v", yr["Facts"], day["Facts"])
	}
	// Signed 4-character tokens are unix seconds, not years: since=-100 is
	// 100 seconds before the epoch and must parse (wide window, 200).
	getBody(t, ts.URL+"/api/entity?name=DJI&since=-100", 200)
}

func TestGraphWindowParams(t *testing.T) {
	ts := httptest.NewServer(New(smallPipeline(t)))
	defer ts.Close()
	plain := getBody(t, ts.URL+"/api/graph?entity=DJI", 200)
	full := getBody(t, ts.URL+"/api/graph?entity=DJI&since=1900-01-01&until=2100-01-01", 200)
	if plain != full {
		t.Fatal("all-covering window changed the export")
	}
	// An empty window keeps only curated facts — a strict subset.
	narrow := getBody(t, ts.URL+"/api/graph?entity=DJI&since=1971-01-01&until=1971-01-02", 200)
	if len(narrow) > len(plain) {
		t.Fatalf("narrow export larger than full export (%d > %d)", len(narrow), len(plain))
	}
	if strings.Contains(narrow, `"curated": false`) {
		t.Fatal("extracted fact leaked into an empty window")
	}
	getBody(t, ts.URL+"/api/graph?since=bogus", 400)
}

func TestRecentEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(smallPipeline(t)))
	defer ts.Close()
	res, err := http.Get(ts.URL + "/api/recent?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var feed []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&feed); err != nil {
		t.Fatal(err)
	}
	if len(feed) == 0 || len(feed) > 5 {
		t.Fatalf("recent feed size = %d, want 1..5", len(feed))
	}
	prev := ""
	for _, f := range feed {
		tm, _ := f["time"].(string)
		if tm < prev {
			t.Fatalf("feed out of time order: %v", feed)
		}
		prev = tm
	}
	// Windowed feed respects the window; malformed params are 400.
	getBody(t, ts.URL+"/api/recent?k=5&since=2100-01-01", 200)
	getBody(t, ts.URL+"/api/recent?k=bogus", 400)
	getBody(t, ts.URL+"/api/recent?since=junk", 400)
}

func TestStatsReportsTemporalIndex(t *testing.T) {
	ts := httptest.NewServer(New(smallPipeline(t)))
	defer ts.Close()
	body := getJSON(t, ts.URL+"/api/stats", 200)
	tmp, ok := body["temporal"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing temporal section: %v", body)
	}
	if tmp["edges"].(float64) == 0 {
		t.Fatal("temporal index empty after ingestion")
	}
	kgStats := body["kg"].(map[string]any)
	if tmp["edges"].(float64) != kgStats["Facts"].(float64) {
		t.Fatalf("index edges %v != kg facts %v", tmp["edges"], kgStats["Facts"])
	}
}
