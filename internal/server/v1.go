package server

import (
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"strconv"
	"time"

	"nous"
	"nous/internal/repl"
)

// The versioned API surface. Every /api/v1/ endpoint wraps its response in
// one envelope:
//
//	{"data": ..., "error": null | {"code": ..., "message": ...},
//	 "meta": {"epoch": ..., "window": null | {"since","until"}, "took_ms": ...}}
//
// data and error are mutually exclusive; all three keys are always present.
// meta.epoch is the KG's mutation epoch at response time — on a replica it
// is the leader epoch the answer reflects, which is what makes answers from
// different replicas comparable.
//
//	GET  /api/v1/ask?q=           any of the query classes
//	GET  /api/v1/entity?entity=   entity summary
//	GET  /api/v1/trending?k=      trending entities/predicates
//	GET  /api/v1/patterns?k=      closed frequent patterns
//	GET  /api/v1/explain?src=&dst=&predicate=&k=  relationship paths
//	GET  /api/v1/diff?entity=&asince=&auntil=&bsince=&buntil=
//	GET  /api/v1/plan?q=          compiled logical plan
//	GET  /api/v1/stats            statistics + replication section
//	GET  /api/v1/graph?entity=    subgraph export
//	GET  /api/v1/recent?k=        newest facts in the window
//	POST /api/v1/facts            append curated/extracted facts (leader only)
//	GET  /api/v1/wal?from=        raw WAL stream for replicas (no envelope)
//	GET  /api/v1/snapshot         newest snapshot blob for bootstrap (no envelope)

// envelope is the uniform v1 response body.
type envelope struct {
	Data  any           `json:"data"`
	Error *apiErrorBody `json:"error"`
	Meta  metaJSON      `json:"meta"`
}

type apiErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type metaJSON struct {
	Epoch  uint64      `json:"epoch"`
	Window *windowJSON `json:"window"`
	TookMS int64       `json:"took_ms"`
}

// respond writes the v1 envelope for one request outcome.
func (s *Server) respond(w http.ResponseWriter, start time.Time, win *windowJSON, data any, e *apiError) {
	env := envelope{Data: data, Meta: metaJSON{
		Epoch:  s.pipeline.KG().Graph().Epoch(),
		Window: win,
		TookMS: time.Since(start).Milliseconds(),
	}}
	status := http.StatusOK
	if e != nil {
		status = e.status
		env.Data = nil
		env.Error = &apiErrorBody{Code: e.code, Message: e.msg}
	}
	writeJSON(w, status, env)
}

// v1 adapts a shared endpoint builder to the versioned surface.
func (s *Server) v1(build func(*http.Request) (any, *windowJSON, *apiError)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		data, win, e := build(r)
		s.respond(w, start, win, data, e)
	}
}

// v1Mux routes the enveloped endpoints (the streaming pair is registered on
// the root mux, outside the timeout wrapper).
func (s *Server) v1Mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /api/v1/ask", s.v1(s.buildAsk))
	m.HandleFunc("GET /api/v1/entity", s.v1(func(r *http.Request) (any, *windowJSON, *apiError) {
		return s.buildEntity(r, "entity")
	}))
	m.HandleFunc("GET /api/v1/trending", s.v1(s.buildTrending))
	m.HandleFunc("GET /api/v1/patterns", s.v1(s.buildPatterns))
	m.HandleFunc("GET /api/v1/explain", s.v1(s.buildExplain))
	m.HandleFunc("GET /api/v1/diff", s.v1(s.buildDiff))
	m.HandleFunc("GET /api/v1/plan", s.v1(s.buildPlan))
	m.HandleFunc("GET /api/v1/recent", s.v1(s.buildRecent))
	m.HandleFunc("GET /api/v1/graph", s.v1(func(r *http.Request) (any, *windowJSON, *apiError) {
		raw, win, e := s.buildGraph(r)
		if e != nil {
			return nil, win, e
		}
		return raw, win, nil
	}))
	m.HandleFunc("GET /api/v1/stats", s.v1Stats)
	m.HandleFunc("POST /api/v1/facts", s.v1Facts)
	m.HandleFunc("/api/v1/", s.v1NotFound)
	return m
}

// v1NotFound keeps unknown v1 paths (and wrong methods) on the envelope
// contract instead of net/http's text/plain 404.
func (s *Server) v1NotFound(w http.ResponseWriter, r *http.Request) {
	s.respond(w, time.Now(), nil, nil, &apiError{
		status: http.StatusNotFound, code: codeBadRequest,
		msg: "unknown endpoint " + r.Method + " " + r.URL.Path,
	})
}

// replicationJSON is the replication section of /api/v1/stats.
type replicationJSON struct {
	// Role is "leader" (durable, serves /api/v1/wal), "follower" (read
	// replica tailing a leader) or "standalone" (in-memory, no replication).
	Role         string `json:"role"`
	LeaderURL    string `json:"leader_url,omitempty"`
	LeaderEpoch  uint64 `json:"leader_epoch"`
	AppliedEpoch uint64 `json:"applied_epoch"`
	Lag          uint64 `json:"lag"`
	Connected    *bool  `json:"connected,omitempty"`
	Reconnects   uint64 `json:"reconnects,omitempty"`
	LastError    string `json:"last_error,omitempty"`
}

func (s *Server) replication() replicationJSON {
	if f := s.pipeline.Follower(); f != nil {
		st := f.Status()
		connected := st.Connected
		return replicationJSON{
			Role: "follower", LeaderURL: st.LeaderURL,
			LeaderEpoch: st.LeaderEpoch, AppliedEpoch: st.AppliedEpoch, Lag: st.Lag,
			Connected: &connected, Reconnects: st.Reconnects, LastError: st.LastError,
		}
	}
	epoch := s.pipeline.KG().Graph().Epoch()
	role := "standalone"
	if s.pipeline.WALSource() != nil {
		role = "leader"
	}
	return replicationJSON{Role: role, LeaderEpoch: epoch, AppliedEpoch: epoch}
}

// statsV1 extends the legacy statistics body with the replication section.
type statsV1 struct {
	statsResponse
	Replication replicationJSON `json:"replication"`
}

func (s *Server) v1Stats(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.respond(w, start, nil, statsV1{statsResponse: s.buildStats(), Replication: s.replication()}, nil)
}

// tripleJSON is the POST /api/v1/facts wire form of one fact.
type tripleJSON struct {
	Subject     string   `json:"subject"`
	Predicate   string   `json:"predicate"`
	Object      string   `json:"object"`
	SubjectType string   `json:"subject_type,omitempty"`
	ObjectType  string   `json:"object_type,omitempty"`
	Confidence  *float64 `json:"confidence,omitempty"` // default 1
	Curated     bool     `json:"curated,omitempty"`
	Source      string   `json:"source,omitempty"`
	Doc         string   `json:"doc,omitempty"`
	Sentence    string   `json:"sentence,omitempty"`
	// Time accepts the same formats as the since/until query parameters.
	Time string `json:"time,omitempty"`
}

func (f tripleJSON) triple() (nous.Triple, error) {
	if f.Subject == "" || f.Predicate == "" || f.Object == "" {
		return nous.Triple{}, errors.New("each fact needs subject, predicate and object")
	}
	conf := 1.0
	if f.Confidence != nil {
		conf = *f.Confidence
	}
	t := nous.Triple{
		Subject: f.Subject, Predicate: f.Predicate, Object: f.Object,
		SubjectType: nous.EntityType(f.SubjectType), ObjectType: nous.EntityType(f.ObjectType),
		Confidence: conf, Curated: f.Curated,
		Provenance: nous.Provenance{Source: f.Source, DocID: f.Doc, Sentence: f.Sentence},
	}
	if f.Time != "" {
		ts, err := timeParam("time", f.Time)
		if err != nil {
			return nous.Triple{}, err
		}
		t.Provenance.Time = time.Unix(ts, 0).UTC()
	}
	return t, nil
}

// factResult reports one submitted fact's outcome, index-aligned with the
// request's facts array.
type factResult struct {
	ID    uint64 `json:"id,omitempty"`
	Error string `json:"error,omitempty"`
}

type factsData struct {
	Added   int          `json:"added"`
	Results []factResult `json:"results"`
}

// v1Facts appends facts through the full mutation path (ontology checks,
// WAL, temporal index, live listeners). Read replicas reject it: their only
// write path is the leader's WAL, and a local write would fork the replica
// from the stream.
func (s *Server) v1Facts(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.pipeline.ReadOnly() {
		s.respond(w, start, nil, nil, &apiError{
			status: http.StatusForbidden, code: codeReadOnly,
			msg: "this node is a read replica; send writes to the leader",
		})
		return
	}
	var req struct {
		Facts []tripleJSON `json:"facts"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		s.respond(w, start, nil, nil, &apiError{
			status: http.StatusBadRequest, code: codeParseError,
			msg: "invalid JSON body: " + err.Error(),
		})
		return
	}
	if len(req.Facts) == 0 {
		s.respond(w, start, nil, nil, badParam(`body must be {"facts": [...]} with at least one fact`))
		return
	}
	triples := make([]nous.Triple, len(req.Facts))
	for i, fj := range req.Facts {
		t, err := fj.triple()
		if err != nil {
			s.respond(w, start, nil, nil, badParam("facts["+strconv.Itoa(i)+"]: "+err.Error()))
			return
		}
		triples[i] = t
	}
	ids, errs := s.pipeline.KG().AddFacts(triples)
	data := factsData{Results: make([]factResult, len(triples))}
	for i := range triples {
		if errs[i] != nil {
			data.Results[i].Error = errs[i].Error()
			continue
		}
		data.Results[i].ID = uint64(ids[i])
		data.Added++
	}
	s.respond(w, start, nil, data, nil)
}

// streamWriter counts bytes so the WAL handler knows whether an error
// surfaced before or after the response started, and forwards Flush so the
// stream's frames leave the server promptly.
type streamWriter struct {
	http.ResponseWriter
	n int64
}

func (sw *streamWriter) Write(p []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(p)
	sw.n += int64(n)
	return n, err
}

func (sw *streamWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleWAL streams WAL records with epoch > from as raw CRC-framed bytes —
// the same framing as the on-disk segments. The stream stays open
// indefinitely (heartbeat progress records while caught up), so it is
// registered outside the timeout wrapper. 410 Gone means the resume point
// predates the retained WAL and the follower must re-bootstrap.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	l := s.pipeline.WALSource()
	if l == nil {
		s.respond(w, start, nil, nil, &apiError{
			status: http.StatusNotFound, code: codeBadRequest,
			msg: "not a replication leader: this server has no durable store (run with -data-dir)",
		})
		return
	}
	var from uint64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.respond(w, start, nil, nil, badParam(`parameter "from" must be an unsigned integer epoch, got `+strconv.Quote(v)))
			return
		}
		from = n
	}
	sw := &streamWriter{ResponseWriter: w}
	sw.Header().Set("Content-Type", "application/octet-stream")
	err := l.StreamWAL(r.Context(), from, sw)
	switch {
	case err == nil:
	case errors.Is(err, repl.ErrBelowFloor):
		// The floor check runs before the first frame, so the envelope can
		// still own the response.
		s.respond(w, start, nil, nil, &apiError{
			status: http.StatusGone, code: codeWALTruncated, msg: err.Error(),
		})
	default:
		if sw.n == 0 {
			s.respond(w, start, nil, nil, &apiError{
				status: http.StatusInternalServerError, code: codeInternal, msg: err.Error(),
			})
			return
		}
		// Mid-stream failure: the status line is long gone, so all we can do
		// is cut the stream and log; the follower's CRC check rejects any
		// torn frame and its reconnect loop recovers.
		log.Printf("server: wal stream ended: %v", err)
	}
}

// handleSnapshot serves the newest snapshot blob for follower bootstrap,
// forcing a checkpoint if the store has never written one. The snapshot's
// epoch rides in the X-Nous-Snapshot-Epoch header.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	l := s.pipeline.WALSource()
	if l == nil {
		s.respond(w, start, nil, nil, &apiError{
			status: http.StatusNotFound, code: codeBadRequest,
			msg: "not a replication leader: this server has no durable store (run with -data-dir)",
		})
		return
	}
	path, epoch, err := l.SnapshotPath()
	if err != nil {
		s.respond(w, start, nil, nil, &apiError{
			status: http.StatusInternalServerError, code: codeInternal, msg: err.Error(),
		})
		return
	}
	w.Header().Set("X-Nous-Snapshot-Epoch", strconv.FormatUint(epoch, 10))
	http.ServeFile(w, r, path)
}
