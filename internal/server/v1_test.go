package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"nous"
)

var update = flag.Bool("update", false, "rewrite the legacy byte-compat golden files")

// TestLegacyByteCompat pins the unversioned /api/ surface byte for byte
// against committed golden files: the v1 redesign routes both surfaces
// through shared builders, and this test is the proof that the legacy wire
// shapes — bodies, indentation, error strings — did not move. Regenerate
// with `go test ./internal/server -run LegacyByteCompat -update` only for a
// deliberate, documented break.
func TestLegacyByteCompat(t *testing.T) {
	ts := testServer(t) // deterministic seeded world + article stream
	cases := []struct {
		name, path string
	}{
		{"ask_entity", "/api/ask?q=Tell+me+about+DJI"},
		{"ask_missing_q", "/api/ask"},
		{"ask_parse_error", "/api/ask?q=flarp+blonk"},
		{"entity", "/api/entity?name=DJI"},
		{"entity_unknown", "/api/entity?name=Zorblatt+Nine"},
		{"entity_missing_name", "/api/entity"},
		{"trending_windowed", "/api/trending?k=3&since=2011&until=2015"},
		{"trending_bad_k", "/api/trending?k=abc"},
		{"patterns", "/api/patterns?k=3"},
		{"plan", "/api/plan?q=Tell+me+about+DJI&since=2014&until=2015"},
		{"recent", "/api/recent?k=5"},
		{"diff", "/api/diff?entity=DJI&asince=2011&auntil=2012&bsince=2014&buntil=2015"},
		{"diff_missing_window", "/api/diff?asince=2011&auntil=2012"},
		{"graph", "/api/graph?entity=DJI"},
		{"graph_unknown", "/api/graph?entity=Zorblatt+Nine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(res.Body)
			res.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "legacy_"+tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, body, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("GET %s drifted from the pinned legacy bytes\ngot:  %s\nwant: %s",
					tc.path, body, want)
			}
		})
	}
}

// envelopeOf decodes a v1 response and checks the envelope invariants: all
// three keys present, data and error mutually exclusive.
func envelopeOf(t *testing.T, res *http.Response) map[string]any {
	t.Helper()
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("v1 Content-Type = %q, want application/json", ct)
	}
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("v1 body is not JSON: %v\n%s", err, raw)
	}
	for _, key := range []string{"data", "error", "meta"} {
		if _, ok := env[key]; !ok {
			t.Fatalf("envelope missing %q: %s", key, raw)
		}
	}
	if env["data"] != nil && env["error"] != nil {
		t.Fatalf("envelope has both data and error: %s", raw)
	}
	meta, ok := env["meta"].(map[string]any)
	if !ok {
		t.Fatalf("meta is not an object: %s", raw)
	}
	for _, key := range []string{"epoch", "window", "took_ms"} {
		if _, ok := meta[key]; !ok {
			t.Fatalf("meta missing %q: %s", key, raw)
		}
	}
	return env
}

func getV1(t *testing.T, url string, wantStatus int, wantCode string) map[string]any {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != wantStatus {
		res.Body.Close()
		t.Fatalf("GET %s = %d, want %d", url, res.StatusCode, wantStatus)
	}
	env := envelopeOf(t, res)
	if wantCode == "" {
		if env["error"] != nil {
			t.Fatalf("GET %s: unexpected error %v", url, env["error"])
		}
	} else {
		e, ok := env["error"].(map[string]any)
		if !ok || e["code"] != wantCode {
			t.Fatalf("GET %s: error = %v, want code %q", url, env["error"], wantCode)
		}
		if e["message"] == "" {
			t.Fatalf("GET %s: empty error message", url)
		}
	}
	return env
}

func TestV1EnvelopeSuccess(t *testing.T) {
	ts := testServer(t)
	env := getV1(t, ts.URL+"/api/v1/ask?q=Tell+me+about+DJI", 200, "")
	data, ok := env["data"].(map[string]any)
	if !ok || data["class"] != "entity" {
		t.Fatalf("data = %v", env["data"])
	}
	if env["meta"].(map[string]any)["epoch"].(float64) == 0 {
		t.Fatal("meta.epoch = 0 after ingestion")
	}

	// A windowed request surfaces its parsed window in meta.
	env = getV1(t, ts.URL+"/api/v1/recent?k=3&since=2011&until=2015", 200, "")
	win, ok := env["meta"].(map[string]any)["window"].(map[string]any)
	if !ok || win["since"] == nil || win["until"] == nil {
		t.Fatalf("meta.window = %v", env["meta"])
	}
	// An unwindowed request keeps the key, as null.
	env = getV1(t, ts.URL+"/api/v1/recent?k=3", 200, "")
	if w := env["meta"].(map[string]any)["window"]; w != nil {
		t.Fatalf("unwindowed meta.window = %v, want null", w)
	}
}

func TestV1ErrorCodes(t *testing.T) {
	ts := testServer(t)
	for _, tc := range []struct {
		path   string
		status int
		code   string
	}{
		{"/api/v1/ask", 400, "bad_request"},
		{"/api/v1/ask?q=flarp+blonk", 400, "parse_error"},
		{"/api/v1/ask?q=Tell+me+about+DJI&since=2015&until=2011", 400, "bad_request"},
		{"/api/v1/entity", 400, "bad_request"},
		{"/api/v1/entity?entity=Zorblatt+Nine", 404, "unknown_entity"},
		{"/api/v1/trending?k=abc", 400, "bad_request"},
		{"/api/v1/graph?entity=Zorblatt+Nine", 404, "unknown_entity"},
		{"/api/v1/diff?asince=2011&auntil=2012", 400, "bad_request"},
		{"/api/v1/plan?q=flarp+blonk", 400, "parse_error"},
		{"/api/v1/nonsuch", 404, "bad_request"},
	} {
		env := getV1(t, ts.URL+tc.path, tc.status, tc.code)
		if env["data"] != nil {
			t.Fatalf("GET %s: error response carries data: %v", tc.path, env["data"])
		}
	}
}

// TestV1EntityParam: the versioned surface names the parameter "entity"
// (consistent with /api/v1/graph); the legacy surface keeps "name".
func TestV1EntityParam(t *testing.T) {
	ts := testServer(t)
	env := getV1(t, ts.URL+"/api/v1/entity?entity=DJI", 200, "")
	if env["data"].(map[string]any)["Name"] != "DJI" {
		t.Fatalf("data = %v", env["data"])
	}
	env = getV1(t, ts.URL+"/api/v1/entity", 400, "bad_request")
	if msg := env["error"].(map[string]any)["message"]; msg != "missing entity parameter" {
		t.Fatalf("message = %v", msg)
	}
}

// TestV1TimeoutEnvelope: a timed-out v1 request must still produce the
// envelope with the timeout code — the error-shape fix this PR pins down.
func TestV1TimeoutEnvelope(t *testing.T) {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies, wcfg.People, wcfg.Products, wcfg.Events = 10, 10, 10, 80
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	p.IngestAll(nous.GenerateArticles(w, nous.DefaultArticleConfig(30)))
	ts := httptest.NewServer(NewWithTimeout(p, time.Nanosecond))
	defer ts.Close()

	res, err := http.Get(ts.URL + "/api/v1/ask?q=Tell+me+about+DJI")
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusServiceUnavailable {
		res.Body.Close()
		t.Fatalf("status = %d, want 503", res.StatusCode)
	}
	env := envelopeOf(t, res)
	e, ok := env["error"].(map[string]any)
	if !ok || e["code"] != "timeout" {
		t.Fatalf("timeout error = %v, want code timeout", env["error"])
	}
}

// TestV1PanicRecoveryEnvelope: a handler panic must become a JSON 500 in
// the correct shape on both surfaces, not a dropped connection.
func TestV1PanicRecoveryEnvelope(t *testing.T) {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies, wcfg.People, wcfg.Products, wcfg.Events = 10, 10, 10, 40
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	s := New(p)
	s.ask = func(string, nous.Window) (nous.Answer, error) { panic("boom") }
	ts := httptest.NewServer(s)
	defer ts.Close()

	res, err := http.Get(ts.URL + "/api/v1/ask?q=Tell+me+about+DJI")
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusInternalServerError {
		res.Body.Close()
		t.Fatalf("v1 panic status = %d, want 500", res.StatusCode)
	}
	env := envelopeOf(t, res)
	if e, ok := env["error"].(map[string]any); !ok || e["code"] != "internal" {
		t.Fatalf("v1 panic error = %v, want code internal", env["error"])
	}

	body := getJSON(t, ts.URL+"/api/ask?q=Tell+me+about+DJI", 500)
	if body["error"] != "internal server error" {
		t.Fatalf("legacy panic body = %v", body)
	}
}

func TestV1StatsReplicationStandalone(t *testing.T) {
	ts := testServer(t)
	env := getV1(t, ts.URL+"/api/v1/stats", 200, "")
	data := env["data"].(map[string]any)
	if data["kg"] == nil || data["plan"] == nil {
		t.Fatalf("v1 stats missing legacy sections: %v", data)
	}
	repl, ok := data["replication"].(map[string]any)
	if !ok {
		t.Fatalf("v1 stats missing replication section: %v", data)
	}
	if repl["role"] != "standalone" || repl["lag"].(float64) != 0 {
		t.Fatalf("standalone replication section = %v", repl)
	}
}

func TestV1FactsWrite(t *testing.T) {
	kg := nous.NewKG(nil) // default ontology
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	ts := httptest.NewServer(New(p))
	defer ts.Close()

	post := func(body string) (*http.Response, error) {
		return http.Post(ts.URL+"/api/v1/facts", "application/json", strings.NewReader(body))
	}

	res, err := post(`{"facts": [
		{"subject": "acme corp", "predicate": "partnersWith", "object": "globex",
		 "confidence": 0.9, "source": "api", "time": "2015-06-12"},
		{"subject": "globex", "predicate": "noSuchPredicate", "object": "initech"}
	]}`)
	if err != nil {
		t.Fatal(err)
	}
	env := envelopeOf(t, res)
	data := env["data"].(map[string]any)
	if data["added"].(float64) != 1 {
		t.Fatalf("added = %v, want 1 (second fact has an unknown predicate)", data["added"])
	}
	results := data["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	if results[1].(map[string]any)["error"] == nil {
		t.Fatal("bad predicate did not surface a per-fact error")
	}
	if kg.NumFacts() != 1 {
		t.Fatalf("kg facts = %d, want 1", kg.NumFacts())
	}

	// The write is live: the entity answers immediately.
	getV1(t, ts.URL+"/api/v1/entity?entity=acme+corp", 200, "")

	// Malformed body → parse_error; empty facts → bad_request; incomplete
	// fact → bad_request.
	for _, tc := range []struct {
		body, code string
	}{
		{`{"facts": [`, "parse_error"},
		{`{"facts": []}`, "bad_request"},
		{`{"facts": [{"subject": "a"}]}`, "bad_request"},
	} {
		res, err := post(tc.body)
		if err != nil {
			t.Fatal(err)
		}
		env := envelopeOf(t, res)
		if e, ok := env["error"].(map[string]any); !ok || e["code"] != tc.code {
			t.Fatalf("POST %s: error = %v, want %s", tc.body, env["error"], tc.code)
		}
	}
}

// TestV1WALRequiresDurable: the replication endpoints on an in-memory
// pipeline answer with the envelope, not a stream.
func TestV1WALRequiresDurable(t *testing.T) {
	ts := testServer(t)
	getV1(t, ts.URL+"/api/v1/wal", 404, "bad_request")
	getV1(t, ts.URL+"/api/v1/snapshot", 404, "bad_request")
	getV1(t, ts.URL+"/api/v1/wal?from=nope", 404, "bad_request")
}

// tookMS strips the one legitimately nondeterministic envelope field so
// leader and follower responses can be compared byte for byte.
var tookMS = regexp.MustCompile(`"took_ms": \d+`)

func normalizeTook(b []byte) []byte {
	return tookMS.ReplaceAll(b, []byte(`"took_ms": 0`))
}

// newReplicaPair stands up a durable leader pipeline behind a real server
// and a follower pipeline bootstrapped and tailing through that server's
// /api/v1/snapshot and /api/v1/wal endpoints, converged at return.
func newReplicaPair(t *testing.T, articles int) (leader, follower *nous.Pipeline, lts, fts *httptest.Server) {
	t.Helper()
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies, wcfg.People, wcfg.Products, wcfg.Events = 10, 10, 10, 80
	w := nous.GenerateWorld(wcfg)
	p, err := nous.OpenWithOptions(t.TempDir(), w.Ontology, nous.DefaultConfig(), nous.PersistOptions{
		FlushInterval:         time.Hour,
		DisableAutoCheckpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := w.SeedKG(p.KG()); err != nil {
		t.Fatal(err)
	}
	p.IngestAll(nous.GenerateArticles(w, nous.DefaultArticleConfig(articles)))
	lts = httptest.NewServer(New(p))
	t.Cleanup(lts.Close)

	src := p.WALSource()
	if src == nil {
		t.Fatal("durable pipeline has no WAL source")
	}
	src.Poll = 5 * time.Millisecond
	src.Heartbeat = 20 * time.Millisecond

	f, err := nous.Follow(context.Background(), lts.URL, w.Ontology, nous.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	fts = httptest.NewServer(New(f))
	t.Cleanup(fts.Close)

	waitReplicaConverged(t, f, p)
	return p, f, lts, fts
}

func waitReplicaConverged(t *testing.T, f, leader *nous.Pipeline) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f.Follower().Status().AppliedEpoch == leader.KG().Graph().Epoch() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica never converged: applied=%d leader=%d",
		f.Follower().Status().AppliedEpoch, leader.KG().Graph().Epoch())
}

// TestReplicaServesIdenticalReads is the tentpole's acceptance check: at
// the same applied epoch, leader and follower answer /api/v1/graph and
// /api/v1/ask byte-identically (modulo took_ms).
func TestReplicaServesIdenticalReads(t *testing.T) {
	_, follower, lts, fts := newReplicaPair(t, 60)

	fetch := func(base, path string) []byte {
		t.Helper()
		res, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != 200 {
			t.Fatalf("GET %s%s = %d", base, path, res.StatusCode)
		}
		b, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return normalizeTook(b)
	}

	for _, path := range []string{
		"/api/v1/graph?entity=DJI",
		"/api/v1/ask?q=Tell+me+about+DJI",
		"/api/v1/entity?entity=DJI",
		"/api/v1/recent?k=10",
	} {
		lb := fetch(lts.URL, path)
		fb := fetch(fts.URL, path)
		if !bytes.Equal(lb, fb) {
			t.Errorf("leader and follower disagree on %s\nleader:   %s\nfollower: %s", path, lb, fb)
		}
	}

	// The replication sections tell the two roles apart.
	env := getV1(t, lts.URL+"/api/v1/stats", 200, "")
	if role := env["data"].(map[string]any)["replication"].(map[string]any)["role"]; role != "leader" {
		t.Fatalf("leader role = %v", role)
	}
	env = getV1(t, fts.URL+"/api/v1/stats", 200, "")
	rs := env["data"].(map[string]any)["replication"].(map[string]any)
	if rs["role"] != "follower" || rs["lag"].(float64) != 0 || rs["connected"] != true {
		t.Fatalf("follower replication section = %v", rs)
	}
	if rs["applied_epoch"].(float64) == 0 {
		t.Fatal("follower applied_epoch = 0 after convergence")
	}

	// The follower keeps tracking live leader writes.
	fp := follower.Follower()
	if fp == nil {
		t.Fatal("follower pipeline lost its follower handle")
	}
}

// TestReplicaRejectsWrites: every write path on a read replica answers 403
// read_only_replica in the envelope.
func TestReplicaRejectsWrites(t *testing.T) {
	_, _, _, fts := newReplicaPair(t, 20)
	res, err := http.Post(fts.URL+"/api/v1/facts", "application/json",
		strings.NewReader(`{"facts": [{"subject": "a", "predicate": "partnersWith", "object": "b"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusForbidden {
		res.Body.Close()
		t.Fatalf("replica write status = %d, want 403", res.StatusCode)
	}
	env := envelopeOf(t, res)
	if e, ok := env["error"].(map[string]any); !ok || e["code"] != "read_only_replica" {
		t.Fatalf("replica write error = %v, want read_only_replica", env["error"])
	}
}

// TestReplicaTracksLiveWrites: writes POSTed to the leader through the API
// propagate to the follower, keeping derived reads in lockstep.
func TestReplicaTracksLiveWrites(t *testing.T) {
	leader, follower, lts, fts := newReplicaPair(t, 20)

	res, err := http.Post(lts.URL+"/api/v1/facts", "application/json",
		strings.NewReader(`{"facts": [{"subject": "DJI", "predicate": "acquired",
			"object": "Windermere", "confidence": 0.95, "source": "newswire", "time": "2015-03-01"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	env := envelopeOf(t, res)
	if env["error"] != nil {
		t.Fatalf("leader write failed: %v", env["error"])
	}
	waitReplicaConverged(t, follower, leader)

	lb := getV1(t, lts.URL+"/api/v1/ask?q=Did+DJI+acquire+Windermere%3F", 200, "")
	fb := getV1(t, fts.URL+"/api/v1/ask?q=Did+DJI+acquire+Windermere%3F", 200, "")
	lt, ft := lb["data"].(map[string]any)["text"], fb["data"].(map[string]any)["text"]
	if lt != ft {
		t.Fatalf("leader and follower disagree on the new fact:\nleader:   %v\nfollower: %v", lt, ft)
	}
	if s, _ := lt.(string); !strings.Contains(strings.ToLower(s), "yes") {
		t.Fatalf("leader does not confirm the written fact: %v", lt)
	}
}
