package server

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"nous"
)

// fuzzServer builds one small pipeline-backed server per process; fuzz
// iterations are request-cheap, world generation is not.
var fuzzServer = sync.OnceValue(func() *Server {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies = 5
	wcfg.People = 5
	wcfg.Products = 5
	wcfg.Events = 20
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		panic(err)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	p.IngestAll(nous.GenerateArticles(w, nous.DefaultArticleConfig(10)))
	return NewWithTimeout(p, 0)
})

// FuzzWindowParams throws arbitrary bytes at the time-window query
// parameters (since/until on the read endpoints, asince/auntil/bsince/buntil
// on /api/diff) and checks the contract: the parsers never panic, and a
// parse failure surfaces as HTTP 400, never a 5xx.
func FuzzWindowParams(f *testing.F) {
	f.Add("2015", "2016")
	f.Add("1735689600", "-100")
	f.Add("2015-06-01", "2015-06-01T10:00:00Z")
	f.Add("", "0100")
	f.Add("999999999999999999999", "not-a-time")
	f.Add("0x41", "1e9")
	f.Add("\x00", "\xff\xfe")

	f.Fuzz(func(t *testing.T, since, until string) {
		q := url.Values{}
		if since != "" {
			q.Set("since", since)
		}
		if until != "" {
			q.Set("until", until)
		}
		r := httptest.NewRequest("GET", "/api/recent?"+q.Encode(), nil)

		// Direct parser contract: never panics, and an absent pair is the
		// unbounded window rather than a half-initialized one.
		w, ok, err := halfWindow(r, "since", "until")
		if err == nil && !ok && w != (nous.Window{}) {
			t.Fatalf("absent pair returned non-zero window %+v", w)
		}

		wantBad := err != nil

		rec := httptest.NewRecorder()
		fuzzServer().ServeHTTP(rec, r)
		if wantBad && rec.Code != http.StatusBadRequest {
			t.Fatalf("since=%q until=%q: parse error %v but status %d, want 400", since, until, err, rec.Code)
		}
		if rec.Code >= 500 {
			t.Fatalf("since=%q until=%q: status %d, want non-5xx", since, until, rec.Code)
		}

		// The diff endpoint reuses the same parser for both window pairs.
		dq := url.Values{}
		dq.Set("asince", since)
		dq.Set("auntil", until)
		dq.Set("bsince", since)
		dq.Set("buntil", until)
		dr := httptest.NewRequest("GET", "/api/diff?"+dq.Encode(), nil)
		drec := httptest.NewRecorder()
		fuzzServer().ServeHTTP(drec, dr)
		if wantBad && drec.Code != http.StatusBadRequest {
			t.Fatalf("diff asince=%q auntil=%q: parse error expected 400, got %d", since, until, drec.Code)
		}
		if drec.Code >= 500 {
			t.Fatalf("diff asince=%q auntil=%q: status %d, want non-5xx", since, until, drec.Code)
		}
	})
}
