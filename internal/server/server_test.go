package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nous"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies = 10
	wcfg.People = 10
	wcfg.Products = 10
	wcfg.Events = 80
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	p.IngestAll(nous.GenerateArticles(w, nous.DefaultArticleConfig(60)))
	ts := httptest.NewServer(New(p))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, res.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return body
}

func TestAskEndpoint(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/ask?q=Tell+me+about+DJI", 200)
	if body["class"] != "entity" {
		t.Fatalf("class = %v", body["class"])
	}
	if !strings.Contains(body["text"].(string), "DJI") {
		t.Fatalf("text = %v", body["text"])
	}
}

func TestAskRequiresQuery(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/ask", 400)
	if body["error"] == "" {
		t.Fatal("missing error message")
	}
}

func TestAskRejectsGibberish(t *testing.T) {
	ts := testServer(t)
	getJSON(t, ts.URL+"/api/ask?q=flarp+blonk", 400)
}

func TestEntityEndpoint(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/entity?name=DJI", 200)
	if body["Name"] != "DJI" {
		t.Fatalf("entity = %v", body)
	}
	getJSON(t, ts.URL+"/api/entity?name=Zorblatt+Nine", 404)
	getJSON(t, ts.URL+"/api/entity", 400)
}

func TestTrendingEndpoint(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/trending?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var trendsBody []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&trendsBody); err != nil {
		t.Fatal(err)
	}
	if len(trendsBody) > 5 {
		t.Fatalf("k ignored: %d trends", len(trendsBody))
	}
}

func TestPatternsEndpoint(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/patterns?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var ps []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&ps); err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatal("no patterns served")
	}
	if ps[0]["pattern"] == "" || ps[0]["support"] == nil {
		t.Fatalf("pattern body = %v", ps[0])
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/explain?src=DJI&dst=Shenzhen")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var paths []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&paths); err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no explanation paths")
	}
	getJSON(t, ts.URL+"/api/explain?src=DJI", 400)
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/stats", 200)
	kg, ok := body["kg"].(map[string]any)
	if !ok || kg["Facts"] == nil {
		t.Fatalf("stats body = %v", body)
	}
}

func TestGraphEndpoint(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/graph?entity=DJI")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var facts []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&facts); err != nil {
		t.Fatal(err)
	}
	if len(facts) == 0 {
		t.Fatal("no facts in DJI subgraph")
	}
	for _, f := range facts {
		if f["subject"] != "DJI" && f["object"] != "DJI" {
			t.Fatalf("fact outside subgraph: %v", f)
		}
	}
}

func TestIndexServesHTML(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(res.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("index: status=%d type=%s", res.StatusCode, res.Header.Get("Content-Type"))
	}
}

func TestMalformedKParamIs400(t *testing.T) {
	ts := testServer(t)
	for _, url := range []string{
		"/api/trending?k=abc",
		"/api/trending?k=-3",
		"/api/trending?k=0",
		"/api/patterns?k=x",
		"/api/patterns?k=-1",
		"/api/explain?src=DJI&dst=Shenzhen&k=nope",
	} {
		body := getJSON(t, ts.URL+url, 400)
		if body["error"] == "" {
			t.Fatalf("%s: missing error message", url)
		}
	}
}

func TestGraphUnknownEntityIs404(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/graph?entity=Zorblatt+Nine", 404)
	if !strings.Contains(body["error"].(string), "Zorblatt Nine") {
		t.Fatalf("error body = %v", body)
	}
	// Mixed known+unknown must fail wholesale, before any bytes stream.
	getJSON(t, ts.URL+"/api/graph?entity=DJI,Zorblatt+Nine", 404)
}

func TestStatsReportsQueryCache(t *testing.T) {
	ts := testServer(t)
	// Prime the cache through an entity query, then read stats.
	getJSON(t, ts.URL+"/api/ask?q=Tell+me+about+DJI", 200)
	body := getJSON(t, ts.URL+"/api/stats", 200)
	q, ok := body["query"].(map[string]any)
	if !ok {
		t.Fatalf("stats body missing query section: %v", body)
	}
	if q["epoch"] == nil || q["hits"] == nil || q["misses"] == nil {
		t.Fatalf("query cache stats incomplete: %v", q)
	}
	if q["epoch"].(float64) == 0 {
		t.Fatal("epoch = 0 after ingestion")
	}
}

func TestRepeatedEntityQueriesHitCache(t *testing.T) {
	ts := testServer(t)
	readQuery := func() map[string]any {
		t.Helper()
		return getJSON(t, ts.URL+"/api/stats", 200)["query"].(map[string]any)
	}
	getJSON(t, ts.URL+"/api/entity?name=DJI", 200) // warm the artifacts
	warm := readQuery()
	for i := 0; i < 5; i++ {
		getJSON(t, ts.URL+"/api/entity?name=DJI", 200)
	}
	after := readQuery()
	if warm["computes"] != after["computes"] {
		t.Fatalf("recomputed at an unchanged epoch: %v -> %v", warm["computes"], after["computes"])
	}
	if after["hits"].(float64) <= warm["hits"].(float64) {
		t.Fatalf("hits did not grow: %v -> %v", warm["hits"], after["hits"])
	}
}

func TestRequestTimeoutReturns503(t *testing.T) {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies, wcfg.People, wcfg.Products, wcfg.Events = 10, 10, 10, 80
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	p.IngestAll(nous.GenerateArticles(w, nous.DefaultArticleConfig(30)))
	ts := httptest.NewServer(NewWithTimeout(p, time.Nanosecond))
	defer ts.Close()
	res, err := http.Get(ts.URL + "/api/ask?q=Tell+me+about+DJI")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 on timeout", res.StatusCode)
	}
	// The timeout body must honor the API's JSON error contract, not be
	// content-sniffed to text/plain.
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("timeout Content-Type = %q, want application/json", ct)
	}
	var body map[string]any
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Fatal("timeout body is not the JSON error")
	}
}

// TestConcurrentAskDuringIngest serves mixed-class queries while IngestAll
// mutates the graph — the paper's core "query while it changes" scenario.
// Run under -race this exercises the whole read layer: epoch cache, linker,
// path search, miner and trends.
func TestConcurrentAskDuringIngest(t *testing.T) {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies, wcfg.People, wcfg.Products, wcfg.Events = 12, 12, 12, 160
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	arts := nous.GenerateArticles(w, nous.DefaultArticleConfig(120))
	p.IngestAll(arts[:20]) // warm start so queries have something to chew on
	ts := httptest.NewServer(New(p))
	defer ts.Close()

	queries := []string{
		"/api/ask?q=Tell+me+about+DJI",
		"/api/ask?q=What+is+trending%3F",
		"/api/ask?q=What+patterns+are+emerging%3F",
		"/api/ask?q=What+does+DJI+manufacture%3F",
		"/api/ask?q=How+is+Windermere+related+to+DJI%3F",
		"/api/stats",
		"/api/trending?k=5",
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		p.IngestAll(arts[20:])
	}()

	const workers = 4
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				url := ts.URL + queries[(wkr+i)%len(queries)]
				res, err := http.Get(url)
				if err != nil {
					errc <- err
					return
				}
				if res.StatusCode != 200 {
					errc <- fmt.Errorf("GET %s = %d during ingest", url, res.StatusCode)
					res.Body.Close()
					return
				}
				res.Body.Close()
			}
		}(wkr)
	}
	wg.Wait()
	<-done
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// The pipeline must still answer correctly after the storm.
	body := getJSON(t, ts.URL+"/api/ask?q=Tell+me+about+DJI", 200)
	if body["class"] != "entity" {
		t.Fatalf("post-ingest ask class = %v", body["class"])
	}
}

func TestUnknownPathIs404(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", res.StatusCode)
	}
}

func TestStatsOmitsPersistForInMemoryPipeline(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/stats", 200)
	if _, present := body["persist"]; present {
		t.Fatalf("in-memory pipeline reports a persist section: %v", body["persist"])
	}
}

func TestStatsReportsPersistState(t *testing.T) {
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies = 10
	wcfg.People = 10
	wcfg.Products = 10
	wcfg.Events = 80
	w := nous.GenerateWorld(wcfg)
	p, err := nous.OpenWithOptions(t.TempDir(), w.Ontology, nous.DefaultConfig(), nous.PersistOptions{
		FlushInterval:         time.Hour,
		DisableAutoCheckpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := w.SeedKG(p.KG()); err != nil {
		t.Fatal(err)
	}
	p.IngestAll(nous.GenerateArticles(w, nous.DefaultArticleConfig(20)))
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(p))
	t.Cleanup(ts.Close)

	body := getJSON(t, ts.URL+"/api/stats", 200)
	ps, ok := body["persist"].(map[string]any)
	if !ok {
		t.Fatalf("stats body missing persist section: %v", body)
	}
	for _, key := range []string{"snapshot_epoch", "wal_seq", "wal_records", "wal_bytes", "checkpoints"} {
		if ps[key] == nil {
			t.Fatalf("persist stats missing %q: %v", key, ps)
		}
	}
	if ps["snapshot_epoch"].(float64) == 0 {
		t.Error("snapshot_epoch = 0 after a checkpoint")
	}
	if ps["checkpoints"].(float64) != 1 {
		t.Errorf("checkpoints = %v, want 1", ps["checkpoints"])
	}
}

func TestDiffEndpoint(t *testing.T) {
	ts := testServer(t)
	// The synthetic drone world spans 2010..2015; compare two in-corpus
	// years over the whole stream.
	body := getJSON(t, ts.URL+"/api/diff?asince=2011&auntil=2012&bsince=2014&buntil=2015", 200)
	if body["class"] != "diff" {
		t.Fatalf("class = %v", body["class"])
	}
	data, ok := body["data"].(map[string]any)
	if !ok {
		t.Fatalf("data = %v", body["data"])
	}
	for _, key := range []string{"added", "removed", "window_a", "window_b"} {
		if _, ok := data[key]; !ok {
			t.Fatalf("diff payload missing %q: %v", key, data)
		}
	}

	// Entity-scoped diff.
	body = getJSON(t, ts.URL+"/api/diff?entity=DJI&asince=2011&auntil=2012&bsince=2014&buntil=2015", 200)
	if data := body["data"].(map[string]any); data["entity"] != "DJI" {
		t.Fatalf("entity diff payload = %v", data)
	}

	// Error mapping: missing windows → 400, unknown entity → 404, malformed
	// bound → 400, inverted window → 400.
	getJSON(t, ts.URL+"/api/diff?asince=2011&auntil=2012", 400)
	getJSON(t, ts.URL+"/api/diff", 400)
	getJSON(t, ts.URL+"/api/diff?entity=Zorblatt+Unheard&asince=2011&auntil=2012&bsince=2014&buntil=2015", 404)
	getJSON(t, ts.URL+"/api/diff?asince=notadate&auntil=2012&bsince=2014&buntil=2015", 400)
	getJSON(t, ts.URL+"/api/diff?asince=2012&auntil=2011&bsince=2014&buntil=2015", 400)
}

func TestPlanEndpoint(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/plan?q=Tell+me+about+DJI&since=2014&until=2015", 200)
	if body["class"] != "entity" {
		t.Fatalf("class = %v", body["class"])
	}
	explain, _ := body["explain"].(string)
	for _, want := range []string{"plan class=entity", "Summarize(", "WindowFilter(", "Scan("} {
		if !strings.Contains(explain, want) {
			t.Fatalf("explain missing %q:\n%s", want, explain)
		}
	}
	root, ok := body["root"].(map[string]any)
	if !ok || root["op"] != "Summarize" {
		t.Fatalf("root = %v", body["root"])
	}
	if _, ok := body["window"]; !ok {
		t.Fatalf("windowed plan response lacks window: %v", body)
	}

	// A diff question compiles to a Diff root with two inputs.
	body = getJSON(t, ts.URL+"/api/plan?q=What+changed+about+DJI+between+2014+and+2015%3F", 200)
	root = body["root"].(map[string]any)
	if root["op"] != "Diff" || len(root["inputs"].([]any)) != 2 {
		t.Fatalf("diff plan root = %v", root)
	}

	// Parse failures are the client's fault.
	getJSON(t, ts.URL+"/api/plan?q=flarp+blonk+quux", 400)
	getJSON(t, ts.URL+"/api/plan", 400)
}

func TestTrendingEndpointWindowedBackfill(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/trending?k=5&since=2011&until=2015")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var trends []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&trends); err != nil {
		t.Fatal(err)
	}
	if len(trends) == 0 {
		t.Fatal("windowed backfill found nothing in a four-year window")
	}
	if len(trends) > 5 {
		t.Fatalf("k ignored: %d trends", len(trends))
	}
	// Malformed window still 400s.
	getJSON(t, ts.URL+"/api/trending?since=2015&until=2011", 400)
}

func TestStatsReportsPlanCounters(t *testing.T) {
	ts := testServer(t)
	getJSON(t, ts.URL+"/api/ask?q=Tell+me+about+DJI", 200)
	getJSON(t, ts.URL+"/api/ask?q=What+is+trending%3F", 200)
	body := getJSON(t, ts.URL+"/api/stats", 200)
	planStats, ok := body["plan"].(map[string]any)
	if !ok {
		t.Fatalf("stats lack plan section: %v", body)
	}
	if n, _ := planStats["plans"].(float64); n < 2 {
		t.Fatalf("plan counter = %v, want >= 2", planStats["plans"])
	}
	byClass, _ := planStats["by_class"].(map[string]any)
	if byClass["entity"] == nil || byClass["trending"] == nil {
		t.Fatalf("by_class = %v", byClass)
	}
	ops, _ := planStats["ops"].(map[string]any)
	if ops["Scan"] == nil || ops["TrendScan"] == nil {
		t.Fatalf("ops = %v", ops)
	}
}

func TestAskEndpointDiffQuestion(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/ask?q=What+changed+about+DJI+between+2011+and+2014%3F", 200)
	if body["class"] != "diff" {
		t.Fatalf("class = %v", body["class"])
	}
	if _, ok := body["data"].(map[string]any); !ok {
		t.Fatalf("diff data = %v", body["data"])
	}
}
