package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nous"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	wcfg := nous.DefaultWorldConfig()
	wcfg.Companies = 10
	wcfg.People = 10
	wcfg.Products = 10
	wcfg.Events = 80
	w := nous.GenerateWorld(wcfg)
	kg, err := w.LoadKG()
	if err != nil {
		t.Fatal(err)
	}
	p := nous.NewPipeline(kg, nous.DefaultConfig())
	p.IngestAll(nous.GenerateArticles(w, nous.DefaultArticleConfig(60)))
	ts := httptest.NewServer(New(p))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, res.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return body
}

func TestAskEndpoint(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/ask?q=Tell+me+about+DJI", 200)
	if body["class"] != "entity" {
		t.Fatalf("class = %v", body["class"])
	}
	if !strings.Contains(body["text"].(string), "DJI") {
		t.Fatalf("text = %v", body["text"])
	}
}

func TestAskRequiresQuery(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/ask", 400)
	if body["error"] == "" {
		t.Fatal("missing error message")
	}
}

func TestAskRejectsGibberish(t *testing.T) {
	ts := testServer(t)
	getJSON(t, ts.URL+"/api/ask?q=flarp+blonk", 400)
}

func TestEntityEndpoint(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/entity?name=DJI", 200)
	if body["Name"] != "DJI" {
		t.Fatalf("entity = %v", body)
	}
	getJSON(t, ts.URL+"/api/entity?name=Zorblatt+Nine", 404)
	getJSON(t, ts.URL+"/api/entity", 400)
}

func TestTrendingEndpoint(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/trending?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var trendsBody []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&trendsBody); err != nil {
		t.Fatal(err)
	}
	if len(trendsBody) > 5 {
		t.Fatalf("k ignored: %d trends", len(trendsBody))
	}
}

func TestPatternsEndpoint(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/patterns?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var ps []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&ps); err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatal("no patterns served")
	}
	if ps[0]["pattern"] == "" || ps[0]["support"] == nil {
		t.Fatalf("pattern body = %v", ps[0])
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/explain?src=DJI&dst=Shenzhen")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status = %d", res.StatusCode)
	}
	var paths []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&paths); err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no explanation paths")
	}
	getJSON(t, ts.URL+"/api/explain?src=DJI", 400)
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	body := getJSON(t, ts.URL+"/api/stats", 200)
	kg, ok := body["kg"].(map[string]any)
	if !ok || kg["Facts"] == nil {
		t.Fatalf("stats body = %v", body)
	}
}

func TestGraphEndpoint(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/graph?entity=DJI")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var facts []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&facts); err != nil {
		t.Fatal(err)
	}
	if len(facts) == 0 {
		t.Fatal("no facts in DJI subgraph")
	}
	for _, f := range facts {
		if f["subject"] != "DJI" && f["object"] != "DJI" {
			t.Fatalf("fact outside subgraph: %v", f)
		}
	}
}

func TestIndexServesHTML(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(res.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("index: status=%d type=%s", res.StatusCode, res.Header.Get("Content-Type"))
	}
}

func TestUnknownPathIs404(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", res.StatusCode)
	}
}
