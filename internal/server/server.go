// Package server provides the web interface of the demo (§4, Fig 6): a
// small HTTP API plus a single-page UI over a built pipeline. Endpoints
// mirror the five query classes and the graph/statistics views the paper
// demonstrates. The server is built for concurrent serving against a live
// (mutating) pipeline: every handler is safe to run while ingestion writes
// to the KG, and each request is bounded by a per-request timeout.
//
//	GET /api/ask?q=...            any of the query classes
//	GET /api/entity?name=...      entity summary (Fig 6)
//	GET /api/trending?k=10        trending entities/predicates
//	GET /api/patterns?k=10        closed frequent patterns (Fig 7)
//	GET /api/explain?src=&dst=&predicate=&k=   relationship paths
//	GET /api/diff?entity=&asince=&auntil=&bsince=&buntil=  temporal diff
//	GET /api/plan?q=...           the compiled logical plan for a question
//	GET /api/stats                KG + stream + query-cache + plan statistics
//	GET /api/graph?entity=A,B     subgraph as JSON
//	GET /api/recent?k=20          newest facts in the window (time-index feed)
//	GET /                         minimal HTML console
//
// /api/ask, /api/entity, /api/explain, /api/graph, /api/recent, /api/plan
// and /api/trending accept since and until parameters (a bare year, unix
// seconds, YYYY-MM-DD or RFC 3339) scoping the answer to the half-open
// window [since, until). Curated facts are always in scope for the query
// endpoints; /api/recent is a pure timestamp feed, so undated curated facts
// never appear in it. Omitting both yields exactly the unwindowed answer.
// A bounded window on /api/trending runs the planner's backfill scan —
// bursts are scored in every bucket the window covers, off the temporal
// index, not just the window's end bucket.
//
// /api/diff compares two windows: A = [asince, auntil), B = [bsince,
// buntil), each end optional (unbounded when omitted, but each window needs
// at least one bound). With entity set it diffs that entity's facts;
// without, the whole extracted stream.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nous"
)

// DefaultRequestTimeout bounds each request's handler run time.
const DefaultRequestTimeout = 15 * time.Second

// Server wraps a pipeline behind HTTP handlers.
type Server struct {
	pipeline *nous.Pipeline
	handler  http.Handler
	// ask answers one windowed question; it defaults to the pipeline's
	// AskWindow and exists as a seam so tests can exercise handleAsk's
	// error mapping (parse failures vs executor failures) directly.
	ask func(question string, w nous.Window) (nous.Answer, error)
}

// New builds a server over an assembled pipeline with the default
// per-request timeout.
func New(p *nous.Pipeline) *Server {
	return NewWithTimeout(p, DefaultRequestTimeout)
}

// NewWithTimeout builds a server whose handlers are cut off after timeout
// (<= 0 disables the limit). Timed-out requests get a 503 JSON error.
func NewWithTimeout(p *nous.Pipeline, timeout time.Duration) *Server {
	s := &Server{pipeline: p, ask: p.AskWindow}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/ask", s.handleAsk)
	mux.HandleFunc("GET /api/entity", s.handleEntity)
	mux.HandleFunc("GET /api/trending", s.handleTrending)
	mux.HandleFunc("GET /api/patterns", s.handlePatterns)
	mux.HandleFunc("GET /api/explain", s.handleExplain)
	mux.HandleFunc("GET /api/diff", s.handleDiff)
	mux.HandleFunc("GET /api/plan", s.handlePlan)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("GET /api/graph", s.handleGraph)
	mux.HandleFunc("GET /api/recent", s.handleRecent)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.handler = mux
	if timeout > 0 {
		th := http.TimeoutHandler(mux, timeout, `{"error":"request timed out"}`)
		s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// http.TimeoutHandler writes its 503 body without a
			// Content-Type, which gets sniffed as text/plain. Pre-set JSON
			// on the real writer so a timeout matches the API's uniform
			// error contract; on the normal path every handler sets its own
			// Content-Type, which TimeoutHandler copies over this one.
			w.Header().Set("Content-Type", "application/json")
			th.ServeHTTP(w, r)
		})
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already written; all we can do is make the
		// truncated response visible in the server log.
		log.Printf("server: encoding %d response: %v", status, err)
	}
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

// askResponse carries a full structured answer.
type askResponse struct {
	Class string      `json:"class"`
	Text  string      `json:"text"`
	Data  interface{} `json:"data,omitempty"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing q parameter; classes: "+strings.Join(nous.QueryClasses(), " | "))
		return
	}
	win, err := windowParam(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	a, err := s.ask(q, win)
	if err != nil {
		// Unparseable questions and invalid temporal qualifiers are the
		// client's fault; anything else is an execution failure and must
		// surface as a server error, not a 400.
		if errors.Is(err, nous.ErrParse) {
			badRequest(w, err.Error())
		} else {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return
	}
	resp := askResponse{Class: string(a.Class), Text: a.Text}
	switch {
	case a.Entity != nil:
		resp.Data = a.Entity
	case a.Diff != nil:
		resp.Data = a.Diff
	case len(a.Trends) > 0:
		resp.Data = a.Trends
	case len(a.Paths) > 0:
		resp.Data = a.Paths
	case len(a.Patterns) > 0:
		resp.Data = patternsJSON(a.Patterns)
	case a.Fact != nil:
		resp.Data = a.Fact
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		badRequest(w, "missing name parameter")
		return
	}
	win, err := windowParam(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	a, err := s.pipeline.AboutWindow(name, win)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	if a.Entity == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown entity " + name})
		return
	}
	writeJSON(w, http.StatusOK, a.Entity)
}

func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 10)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	win, err := windowParam(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	// A bounded window runs the planner's windowed backfill scan; the
	// unwindowed path stays the live detector, byte-for-byte.
	if win.Bounded() {
		a, err := s.pipeline.TrendingWindow(win, k)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		trends := a.Trends
		if trends == nil {
			trends = []nous.Trend{}
		}
		writeJSON(w, http.StatusOK, trends)
		return
	}
	writeJSON(w, http.StatusOK, s.pipeline.Trending(k))
}

// handleDiff serves the temporal join "what changed between A and B".
// Window A is [asince, auntil) and window B is [bsince, buntil); each bound
// accepts the same formats as since/until and may be omitted (unbounded),
// but each window needs at least one bound. entity is optional: empty diffs
// the whole extracted stream.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	a, okA, err := halfWindow(r, "asince", "auntil")
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	b, okB, err := halfWindow(r, "bsince", "buntil")
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	if !okA || !okB {
		badRequest(w, "diff needs both windows: asince/auntil and bsince/buntil (at least one bound each)")
		return
	}
	entity := r.URL.Query().Get("entity")
	ans, err := s.pipeline.Diff(entity, a, b)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	if ans.Diff == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown entity " + entity})
		return
	}
	writeJSON(w, http.StatusOK, askResponse{Class: string(ans.Class), Text: ans.Text, Data: ans.Diff})
}

// planResponse is the /api/plan body: the compiled logical plan for a
// question, as an explain-style rendering plus the operator tree.
type planResponse struct {
	Question string        `json:"question"`
	Class    string        `json:"class"`
	Explain  string        `json:"explain"`
	Root     nous.PlanNode `json:"root"`
	Window   *windowJSON   `json:"window,omitempty"`
	// WindowB is the second window of a diff question (the "after" side).
	WindowB *windowJSON `json:"window_b,omitempty"`
}

type windowJSON struct {
	Since int64 `json:"since"`
	Until int64 `json:"until"`
}

// handlePlan compiles (without executing) the question's logical plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing q parameter; classes: "+strings.Join(nous.QueryClasses(), " | "))
		return
	}
	win, err := windowParam(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	p, err := s.pipeline.PlanFor(q, win)
	if err != nil {
		if errors.Is(err, nous.ErrParse) {
			badRequest(w, err.Error())
		} else {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		}
		return
	}
	resp := planResponse{Question: q, Class: p.Class, Explain: p.Explain(), Root: p.Describe()}
	if p.Window.Bounded() {
		resp.Window = &windowJSON{Since: p.Window.Since, Until: p.Window.Until}
	}
	if p.WindowB.Bounded() {
		resp.WindowB = &windowJSON{Since: p.WindowB.Since, Until: p.WindowB.Until}
	}
	writeJSON(w, http.StatusOK, resp)
}

// patternJSON is the wire form of a mined pattern.
type patternJSON struct {
	Pattern string `json:"pattern"`
	Support int    `json:"support"`
	Code    string `json:"code"`
}

func patternsJSON(ps []nous.Pattern) []patternJSON {
	out := make([]patternJSON, len(ps))
	for i, p := range ps {
		out[i] = patternJSON{Pattern: p.String(), Support: p.Support, Code: p.Code}
	}
	return out
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 10)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, patternsJSON(s.pipeline.Patterns(k)))
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("src")
	dst := r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		badRequest(w, "missing src/dst parameters")
		return
	}
	k, err := intParam(r, "k", 3)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	win, err := windowParam(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	a, err := s.pipeline.ExplainWindow(src, dst, r.URL.Query().Get("predicate"), k, win)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, a.Paths)
}

// statsResponse is the /api/stats body: KG quality, stream counters, the
// epoch-versioned query cache state, the query planner's execution counters
// and — when the pipeline is durable — the persistence layer's snapshot/WAL
// state.
type statsResponse struct {
	KG       nous.KGStats       `json:"kg"`
	Stream   nous.StreamStats   `json:"stream"`
	Query    nous.QueryStats    `json:"query"`
	Temporal nous.TemporalStats `json:"temporal"`
	Plan     nous.PlanStats     `json:"plan"`
	Persist  *nous.PersistStats `json:"persist,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		KG:       s.pipeline.KG().Stats(),
		Stream:   s.pipeline.Stats(),
		Query:    s.pipeline.QueryStats(),
		Temporal: s.pipeline.TemporalStats(),
		Plan:     s.pipeline.PlanStats(),
	}
	if ps, ok := s.pipeline.PersistStats(); ok {
		resp.Persist = &ps
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	// Validate the export target fully before writing any output, so an
	// error can still change the status code: once ExportJSON starts
	// streaming, a late failure would corrupt a 200 response.
	win, err := windowParam(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	var names []string
	if e := r.URL.Query().Get("entity"); e != "" {
		names = strings.Split(e, ",")
		for _, n := range names {
			if _, ok := s.pipeline.KG().Entity(n); !ok {
				writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown entity " + n})
				return
			}
		}
	}
	var buf bytes.Buffer
	if err := s.pipeline.KG().ExportJSONWindow(&buf, win, names...); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("server: writing graph export: %v", err)
	}
}

// recentFact is the wire form of one stream-feed entry.
type recentFact struct {
	Subject    string  `json:"subject"`
	Predicate  string  `json:"predicate"`
	Object     string  `json:"object"`
	Confidence float64 `json:"confidence"`
	Curated    bool    `json:"curated"`
	Source     string  `json:"source,omitempty"`
	Time       string  `json:"time,omitempty"`
}

// handleRecent serves the newest k facts inside the window, oldest first —
// the time index's feed view of the stream.
func (s *Server) handleRecent(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k", 20)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	win, err := windowParam(r)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	facts := s.pipeline.RecentFacts(win, k)
	out := make([]recentFact, len(facts))
	for i, f := range facts {
		out[i] = recentFact{
			Subject: f.Subject, Predicate: f.Predicate, Object: f.Object,
			Confidence: f.Confidence, Curated: f.Curated, Source: f.Provenance.Source,
		}
		if !f.Provenance.Time.IsZero() {
			out[i].Time = f.Provenance.Time.UTC().Format(time.RFC3339)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

// windowParam parses the optional since/until query parameters into a time
// window. Accepted forms per parameter: a bare year ("2015" — Jan 1 of that
// year, matching the question language's "since 2015"), unix seconds
// ("1434067200"), a day ("2015-06-12") or RFC 3339
// ("2015-06-12T00:00:00Z"). until is the window's exclusive end. Omitting
// both yields the unbounded window.
func windowParam(r *http.Request) (nous.Window, error) {
	w, _, err := halfWindow(r, "since", "until")
	return w, err
}

// halfWindow parses one named since/until parameter pair into a window. ok
// reports whether either parameter was present; absent pairs return the
// unbounded window.
func halfWindow(r *http.Request, sinceName, untilName string) (nous.Window, bool, error) {
	sinceStr := r.URL.Query().Get(sinceName)
	untilStr := r.URL.Query().Get(untilName)
	if sinceStr == "" && untilStr == "" {
		return nous.Window{}, false, nil
	}
	w := nous.Window{Since: math.MinInt64, Until: math.MaxInt64}
	if sinceStr != "" {
		ts, err := timeParam(sinceName, sinceStr)
		if err != nil {
			return nous.Window{}, true, err
		}
		w.Since = ts
	}
	if untilStr != "" {
		ts, err := timeParam(untilName, untilStr)
		if err != nil {
			return nous.Window{}, true, err
		}
		w.Until = ts
	}
	if w.Since >= w.Until {
		return nous.Window{}, true, fmt.Errorf("empty window: %s %q is not before %s %q", sinceName, sinceStr, untilName, untilStr)
	}
	return w, true, nil
}

func timeParam(name, v string) (int64, error) {
	if ts, err := strconv.ParseInt(v, 10, 64); err == nil {
		// A bare 4-digit integer is a year, not 2015 seconds past the
		// epoch — the question language ("since 2015") resolves the same
		// token to Jan 1 of that year, and the two surfaces must agree.
		// Signed or zero-padded tokens ("-100", "0100") stay unix seconds.
		if len(v) == 4 && ts >= 1000 {
			return time.Date(int(ts), 1, 1, 0, 0, 0, 0, time.UTC).Unix(), nil
		}
		return ts, nil
	}
	if t, err := time.Parse("2006-01-02", v); err == nil {
		return t.Unix(), nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t.Unix(), nil
	}
	return 0, fmt.Errorf("parameter %q must be a year, unix seconds, YYYY-MM-DD or RFC 3339, got %q", name, v)
}

// intParam parses a positive integer query parameter, returning def when
// absent and an error when malformed or non-positive.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("parameter %q must be a positive integer, got %q", name, v)
	}
	return n, nil
}

const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>NOUS</title>
<style>
 body { font-family: monospace; max-width: 60rem; margin: 2rem auto; }
 input { width: 40rem; padding: .4rem; }
 pre { background: #f4f4f4; padding: 1rem; white-space: pre-wrap; }
</style></head>
<body>
<h1>NOUS — dynamic knowledge graph console</h1>
<p>Five query classes: trending, entity, relationship, pattern, fact.</p>
<form onsubmit="ask(event)">
  <input id="q" placeholder='Tell me about DJI' autofocus>
  <button>Ask</button>
</form>
<pre id="out">Try: "What is trending?", "How is Windermere related to DJI?",
"What patterns are emerging?", "Did Amazon acquire Parrot?"</pre>
<script>
async function ask(ev) {
  ev.preventDefault();
  const q = document.getElementById('q').value;
  const res = await fetch('/api/ask?q=' + encodeURIComponent(q));
  const body = await res.json();
  document.getElementById('out').textContent = body.text || body.error;
}
</script>
</body>
</html>
`
