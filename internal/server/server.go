// Package server provides the web interface of the demo (§4, Fig 6): a
// small HTTP API plus a single-page UI over a built pipeline. Endpoints
// mirror the five query classes and the graph/statistics views the paper
// demonstrates.
//
//	GET /api/ask?q=...            any of the five query classes
//	GET /api/entity?name=...      entity summary (Fig 6)
//	GET /api/trending?k=10        trending entities/predicates
//	GET /api/patterns?k=10        closed frequent patterns (Fig 7)
//	GET /api/explain?src=&dst=&predicate=&k=   relationship paths
//	GET /api/stats                KG quality statistics (demo feature 2)
//	GET /api/graph?entity=A,B     subgraph as JSON
//	GET /                         minimal HTML console
package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"nous"
)

// Server wraps a pipeline behind HTTP handlers.
type Server struct {
	pipeline *nous.Pipeline
	mux      *http.ServeMux
}

// New builds a server over an assembled pipeline.
func New(p *nous.Pipeline) *Server {
	s := &Server{pipeline: p, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/ask", s.handleAsk)
	s.mux.HandleFunc("GET /api/entity", s.handleEntity)
	s.mux.HandleFunc("GET /api/trending", s.handleTrending)
	s.mux.HandleFunc("GET /api/patterns", s.handlePatterns)
	s.mux.HandleFunc("GET /api/explain", s.handleExplain)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/graph", s.handleGraph)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already written; all we can do is make the
		// truncated response visible in the server log.
		log.Printf("server: encoding %d response: %v", status, err)
	}
}

func badRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg})
}

// askResponse carries a full structured answer.
type askResponse struct {
	Class string      `json:"class"`
	Text  string      `json:"text"`
	Data  interface{} `json:"data,omitempty"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing q parameter; classes: "+strings.Join(nous.QueryClasses(), " | "))
		return
	}
	a, err := s.pipeline.Ask(q)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	resp := askResponse{Class: string(a.Class), Text: a.Text}
	switch {
	case a.Entity != nil:
		resp.Data = a.Entity
	case len(a.Trends) > 0:
		resp.Data = a.Trends
	case len(a.Paths) > 0:
		resp.Data = a.Paths
	case len(a.Patterns) > 0:
		resp.Data = patternsJSON(a.Patterns)
	case a.Fact != nil:
		resp.Data = a.Fact
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		badRequest(w, "missing name parameter")
		return
	}
	a, err := s.pipeline.About(name)
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	if a.Entity == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown entity " + name})
		return
	}
	writeJSON(w, http.StatusOK, a.Entity)
}

func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	k := intParam(r, "k", 10)
	writeJSON(w, http.StatusOK, s.pipeline.Trending(k))
}

// patternJSON is the wire form of a mined pattern.
type patternJSON struct {
	Pattern string `json:"pattern"`
	Support int    `json:"support"`
	Code    string `json:"code"`
}

func patternsJSON(ps []nous.Pattern) []patternJSON {
	out := make([]patternJSON, len(ps))
	for i, p := range ps {
		out[i] = patternJSON{Pattern: p.String(), Support: p.Support, Code: p.Code}
	}
	return out
}

func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	k := intParam(r, "k", 10)
	writeJSON(w, http.StatusOK, patternsJSON(s.pipeline.Patterns(k)))
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("src")
	dst := r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		badRequest(w, "missing src/dst parameters")
		return
	}
	a, err := s.pipeline.Explain(src, dst, r.URL.Query().Get("predicate"), intParam(r, "k", 3))
	if err != nil {
		badRequest(w, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, a.Paths)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		KG     nous.KGStats     `json:"kg"`
		Stream nous.StreamStats `json:"stream"`
	}{s.pipeline.KG().Stats(), s.pipeline.Stats()})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	var names []string
	if e := r.URL.Query().Get("entity"); e != "" {
		names = strings.Split(e, ",")
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.pipeline.KG().ExportJSON(w, names...); err != nil {
		badRequest(w, err.Error())
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func intParam(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return def
	}
	return n
}

const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>NOUS</title>
<style>
 body { font-family: monospace; max-width: 60rem; margin: 2rem auto; }
 input { width: 40rem; padding: .4rem; }
 pre { background: #f4f4f4; padding: 1rem; white-space: pre-wrap; }
</style></head>
<body>
<h1>NOUS — dynamic knowledge graph console</h1>
<p>Five query classes: trending, entity, relationship, pattern, fact.</p>
<form onsubmit="ask(event)">
  <input id="q" placeholder='Tell me about DJI' autofocus>
  <button>Ask</button>
</form>
<pre id="out">Try: "What is trending?", "How is Windermere related to DJI?",
"What patterns are emerging?", "Did Amazon acquire Parrot?"</pre>
<script>
async function ask(ev) {
  ev.preventDefault();
  const q = document.getElementById('q').value;
  const res = await fetch('/api/ask?q=' + encodeURIComponent(q));
  const body = await res.json();
  document.getElementById('out').textContent = body.text || body.error;
}
</script>
</body>
</html>
`
