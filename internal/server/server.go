// Package server provides the web interface of the demo (§4, Fig 6): a
// small HTTP API plus a single-page UI over a built pipeline. Endpoints
// mirror the five query classes and the graph/statistics views the paper
// demonstrates. The server is built for concurrent serving against a live
// (mutating) pipeline: every handler is safe to run while ingestion writes
// to the KG, and each request is bounded by a per-request timeout.
//
// Two API surfaces share one set of handlers:
//
// The versioned surface under /api/v1/ wraps every response in a uniform
// envelope — {"data": ..., "error": {"code", "message"} | null, "meta":
// {"epoch", "window", "took_ms"}} — with stable error codes (bad_request,
// parse_error, unknown_entity, read_only_replica, timeout, wal_truncated,
// internal). See v1.go for the endpoint list, which adds the replication
// endpoints (GET /api/v1/wal, GET /api/v1/snapshot) and the write endpoint
// (POST /api/v1/facts).
//
// The original unversioned surface stays byte-compatible for existing
// clients:
//
//	GET /api/ask?q=...            any of the query classes
//	GET /api/entity?name=...      entity summary (Fig 6)
//	GET /api/trending?k=10        trending entities/predicates
//	GET /api/patterns?k=10        closed frequent patterns (Fig 7)
//	GET /api/explain?src=&dst=&predicate=&k=   relationship paths
//	GET /api/diff?entity=&asince=&auntil=&bsince=&buntil=  temporal diff
//	GET /api/plan?q=...           the compiled logical plan for a question
//	GET /api/stats                KG + stream + query-cache + plan statistics
//	GET /api/graph?entity=A,B     subgraph as JSON
//	GET /api/recent?k=20          newest facts in the window (time-index feed)
//	GET /                         minimal HTML console
//
// The query endpoints accept since and until parameters (a bare year, unix
// seconds, YYYY-MM-DD or RFC 3339) scoping the answer to the half-open
// window [since, until). Curated facts are always in scope for the query
// endpoints; /api/recent is a pure timestamp feed, so undated curated facts
// never appear in it. Omitting both yields exactly the unwindowed answer.
// A bounded window on /api/trending runs the planner's backfill scan —
// bursts are scored in every bucket the window covers, off the temporal
// index, not just the window's end bucket.
//
// /api/diff compares two windows: A = [asince, auntil), B = [bsince,
// buntil), each end optional (unbounded when omitted, but each window needs
// at least one bound). With entity set it diffs that entity's facts;
// without, the whole extracted stream.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nous"
)

// DefaultRequestTimeout bounds each request's handler run time.
const DefaultRequestTimeout = 15 * time.Second

// Server wraps a pipeline behind HTTP handlers.
type Server struct {
	pipeline *nous.Pipeline
	handler  http.Handler
	// ask answers one windowed question; it defaults to the pipeline's
	// AskWindow and exists as a seam so tests can exercise the ask
	// endpoint's error mapping (parse failures vs executor failures, and
	// the v1 panic recovery) directly.
	ask func(question string, w nous.Window) (nous.Answer, error)
}

// New builds a server over an assembled pipeline with the default
// per-request timeout.
func New(p *nous.Pipeline) *Server {
	return NewWithTimeout(p, DefaultRequestTimeout)
}

// legacyTimeoutBody is the unversioned surface's 503 payload, pinned by the
// byte-compatibility reference test.
const legacyTimeoutBody = `{"error":"request timed out"}`

// v1TimeoutBody is the versioned surface's 503 payload: the uniform
// envelope. http.TimeoutHandler only takes a static body, so the meta
// section carries zero values.
const v1TimeoutBody = `{"data":null,"error":{"code":"timeout","message":"request timed out"},"meta":{"epoch":0,"window":null,"took_ms":0}}`

// NewWithTimeout builds a server whose handlers are cut off after timeout
// (<= 0 disables the limit). Timed-out requests get a 503 JSON error — the
// legacy error shape under /api/, the envelope under /api/v1/. The
// replication endpoints (/api/v1/wal, /api/v1/snapshot) bypass the timeout:
// a WAL stream is long-lived by design, and http.TimeoutHandler buffers
// responses and hides the flusher both endpoints need.
func NewWithTimeout(p *nous.Pipeline, timeout time.Duration) *Server {
	s := &Server{pipeline: p, ask: p.AskWindow}

	legacy := http.NewServeMux()
	legacy.HandleFunc("GET /api/ask", s.handleAsk)
	legacy.HandleFunc("GET /api/entity", s.handleEntity)
	legacy.HandleFunc("GET /api/trending", s.handleTrending)
	legacy.HandleFunc("GET /api/patterns", s.handlePatterns)
	legacy.HandleFunc("GET /api/explain", s.handleExplain)
	legacy.HandleFunc("GET /api/diff", s.handleDiff)
	legacy.HandleFunc("GET /api/plan", s.handlePlan)
	legacy.HandleFunc("GET /api/stats", s.handleStats)
	legacy.HandleFunc("GET /api/graph", s.handleGraph)
	legacy.HandleFunc("GET /api/recent", s.handleRecent)

	legacyH := recoverPanics(legacy, func(w http.ResponseWriter) {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "internal server error"})
	})
	v1H := recoverPanics(s.v1Mux(), func(w http.ResponseWriter) {
		s.respond(w, time.Now(), nil, nil, &apiError{
			status: http.StatusInternalServerError, code: codeInternal, msg: "internal server error",
		})
	})
	if timeout > 0 {
		legacyH = jsonTimeout(legacyH, timeout, legacyTimeoutBody)
		v1H = jsonTimeout(v1H, timeout, v1TimeoutBody)
	}

	root := http.NewServeMux()
	// The streaming replication endpoints sit outside both the timeout and
	// the v1 mux's envelope-on-panic wrapper's buffered path.
	root.HandleFunc("GET /api/v1/wal", s.handleWAL)
	root.HandleFunc("GET /api/v1/snapshot", s.handleSnapshot)
	root.Handle("/api/v1/", v1H)
	root.Handle("/api/", legacyH)
	root.HandleFunc("GET /{$}", s.handleIndex)
	s.handler = root
	return s
}

// jsonTimeout wraps h in http.TimeoutHandler with a JSON body.
// TimeoutHandler writes its 503 body without a Content-Type, which gets
// sniffed as text/plain; pre-setting JSON on the real writer keeps timeouts
// on the API's uniform error contract, while normal responses overwrite it
// with their own Content-Type (which TimeoutHandler copies over this one).
func jsonTimeout(h http.Handler, timeout time.Duration, body string) http.Handler {
	th := http.TimeoutHandler(h, timeout, body)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		th.ServeHTTP(w, r)
	})
}

// recoverPanics converts a handler panic into a JSON 500 via onPanic
// instead of net/http's default connection drop. http.ErrAbortHandler is
// re-raised: it is the sanctioned way to abort a response mid-write.
func recoverPanics(next http.Handler, onPanic func(http.ResponseWriter)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			log.Printf("server: panic serving %s: %v", r.URL.Path, rec)
			onPanic(w)
		}()
		next.ServeHTTP(w, r)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// apiError carries one endpoint failure across both surfaces: the HTTP
// status, the v1 error code and the human-readable message (the legacy
// surface serializes only the message).
type apiError struct {
	status int
	code   string
	msg    string
}

// The v1 error codes.
const (
	codeBadRequest    = "bad_request"
	codeParseError    = "parse_error"
	codeUnknownEntity = "unknown_entity"
	codeReadOnly      = "read_only_replica"
	codeInternal      = "internal"
	codeWALTruncated  = "wal_truncated"
)

func badParam(msg string) *apiError {
	return &apiError{status: http.StatusBadRequest, code: codeBadRequest, msg: msg}
}

// errorResponse is the legacy surface's uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already written; all we can do is make the
		// truncated response visible in the server log.
		log.Printf("server: encoding %d response: %v", status, err)
	}
}

// legacy adapts a shared endpoint builder to the unversioned surface:
// errors become {"error": msg} with the builder's status, successes the
// bare data value — the original wire shapes, byte for byte.
func (s *Server) legacy(build func(*http.Request) (any, *windowJSON, *apiError)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		data, _, e := build(r)
		if e != nil {
			writeJSON(w, e.status, errorResponse{Error: e.msg})
			return
		}
		writeJSON(w, http.StatusOK, data)
	}
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) { s.legacy(s.buildAsk)(w, r) }
func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	s.legacy(s.buildTrending)(w, r)
}
func (s *Server) handlePatterns(w http.ResponseWriter, r *http.Request) {
	s.legacy(s.buildPatterns)(w, r)
}
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	s.legacy(s.buildExplain)(w, r)
}
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request)   { s.legacy(s.buildDiff)(w, r) }
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request)   { s.legacy(s.buildPlan)(w, r) }
func (s *Server) handleRecent(w http.ResponseWriter, r *http.Request) { s.legacy(s.buildRecent)(w, r) }

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	s.legacy(func(r *http.Request) (any, *windowJSON, *apiError) {
		return s.buildEntity(r, "name")
	})(w, r)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.buildStats())
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	raw, _, e := s.buildGraph(r)
	if e != nil {
		writeJSON(w, e.status, errorResponse{Error: e.msg})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(raw); err != nil {
		log.Printf("server: writing graph export: %v", err)
	}
}

// askResponse carries a full structured answer.
type askResponse struct {
	Class string      `json:"class"`
	Text  string      `json:"text"`
	Data  interface{} `json:"data,omitempty"`
}

func (s *Server) buildAsk(r *http.Request) (any, *windowJSON, *apiError) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return nil, nil, badParam("missing q parameter; classes: " + strings.Join(nous.QueryClasses(), " | "))
	}
	win, err := windowParam(r)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	a, err := s.ask(q, win)
	if err != nil {
		// Unparseable questions and invalid temporal qualifiers are the
		// client's fault; anything else is an execution failure and must
		// surface as a server error, not a 400.
		if errors.Is(err, nous.ErrParse) {
			return nil, winJSON(win), &apiError{status: http.StatusBadRequest, code: codeParseError, msg: err.Error()}
		}
		return nil, winJSON(win), &apiError{status: http.StatusInternalServerError, code: codeInternal, msg: err.Error()}
	}
	resp := askResponse{Class: string(a.Class), Text: a.Text}
	switch {
	case a.Entity != nil:
		resp.Data = a.Entity
	case a.Diff != nil:
		resp.Data = a.Diff
	case len(a.Trends) > 0:
		resp.Data = a.Trends
	case len(a.Paths) > 0:
		resp.Data = a.Paths
	case len(a.Patterns) > 0:
		resp.Data = patternsJSON(a.Patterns)
	case a.Fact != nil:
		resp.Data = a.Fact
	}
	return resp, winJSON(win), nil
}

// buildEntity serves the entity summary; the name arrives as "name" on the
// legacy surface and "entity" on v1 (matching /api/v1/graph's parameter).
func (s *Server) buildEntity(r *http.Request, param string) (any, *windowJSON, *apiError) {
	name := r.URL.Query().Get(param)
	if name == "" {
		return nil, nil, badParam("missing " + param + " parameter")
	}
	win, err := windowParam(r)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	a, err := s.pipeline.AboutWindow(name, win)
	if err != nil {
		return nil, winJSON(win), badParam(err.Error())
	}
	if a.Entity == nil {
		return nil, winJSON(win), &apiError{status: http.StatusNotFound, code: codeUnknownEntity, msg: "unknown entity " + name}
	}
	return a.Entity, winJSON(win), nil
}

func (s *Server) buildTrending(r *http.Request) (any, *windowJSON, *apiError) {
	k, err := intParam(r, "k", 10)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	win, err := windowParam(r)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	// A bounded window runs the planner's windowed backfill scan; the
	// unwindowed path stays the live detector, byte-for-byte.
	if win.Bounded() {
		a, err := s.pipeline.TrendingWindow(win, k)
		if err != nil {
			return nil, winJSON(win), &apiError{status: http.StatusInternalServerError, code: codeInternal, msg: err.Error()}
		}
		trends := a.Trends
		if trends == nil {
			trends = []nous.Trend{}
		}
		return trends, winJSON(win), nil
	}
	return s.pipeline.Trending(k), nil, nil
}

// buildDiff serves the temporal join "what changed between A and B".
// Window A is [asince, auntil) and window B is [bsince, buntil); each bound
// accepts the same formats as since/until and may be omitted (unbounded),
// but each window needs at least one bound. entity is optional: empty diffs
// the whole extracted stream.
func (s *Server) buildDiff(r *http.Request) (any, *windowJSON, *apiError) {
	a, okA, err := halfWindow(r, "asince", "auntil")
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	b, okB, err := halfWindow(r, "bsince", "buntil")
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	if !okA || !okB {
		return nil, nil, badParam("diff needs both windows: asince/auntil and bsince/buntil (at least one bound each)")
	}
	entity := r.URL.Query().Get("entity")
	ans, err := s.pipeline.Diff(entity, a, b)
	if err != nil {
		return nil, nil, &apiError{status: http.StatusInternalServerError, code: codeInternal, msg: err.Error()}
	}
	if ans.Diff == nil {
		return nil, nil, &apiError{status: http.StatusNotFound, code: codeUnknownEntity, msg: "unknown entity " + entity}
	}
	return askResponse{Class: string(ans.Class), Text: ans.Text, Data: ans.Diff}, nil, nil
}

// planResponse is the /api/plan body: the cost-annotated, executed plan for
// a question — an explain-style rendering plus the operator tree, each node
// carrying the optimizer's est_rows and (unless the answer came from the
// plan cache) the executor's actual_rows.
type planResponse struct {
	Question string        `json:"question"`
	Class    string        `json:"class"`
	Explain  string        `json:"explain"`
	Root     nous.PlanNode `json:"root"`
	// Cacheable reports whether the question's plan qualifies for the
	// plan-result cache; Cached whether a fresh result was already cached
	// at the current epoch (in which case nothing executed and the tree
	// carries no actual_rows).
	Cacheable bool        `json:"cacheable"`
	Cached    bool        `json:"cached"`
	Window    *windowJSON `json:"window,omitempty"`
	// WindowB is the second window of a diff question (the "after" side).
	WindowB *windowJSON `json:"window_b,omitempty"`
}

type windowJSON struct {
	Since int64 `json:"since"`
	Until int64 `json:"until"`
}

// winJSON is the meta/window wire form of a parsed window: nil when
// unbounded.
func winJSON(w nous.Window) *windowJSON {
	if !w.Bounded() {
		return nil
	}
	return &windowJSON{Since: w.Since, Until: w.Until}
}

// buildPlan compiles, optimizes and executes the question's logical plan,
// reporting per-operator estimated vs actual rows and the plan cache's view.
func (s *Server) buildPlan(r *http.Request) (any, *windowJSON, *apiError) {
	q := r.URL.Query().Get("q")
	if q == "" {
		return nil, nil, badParam("missing q parameter; classes: " + strings.Join(nous.QueryClasses(), " | "))
	}
	win, err := windowParam(r)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	rep, err := s.pipeline.ExplainPlan(q, win)
	if err != nil {
		if errors.Is(err, nous.ErrParse) {
			return nil, winJSON(win), &apiError{status: http.StatusBadRequest, code: codeParseError, msg: err.Error()}
		}
		return nil, winJSON(win), &apiError{status: http.StatusInternalServerError, code: codeInternal, msg: err.Error()}
	}
	p := rep.Plan
	resp := planResponse{
		Question:  q,
		Class:     p.Class,
		Explain:   rep.Explain(),
		Root:      rep.Describe(),
		Cacheable: rep.Cacheable,
		Cached:    rep.Cached,
	}
	if p.Window.Bounded() {
		resp.Window = &windowJSON{Since: p.Window.Since, Until: p.Window.Until}
	}
	if p.WindowB.Bounded() {
		resp.WindowB = &windowJSON{Since: p.WindowB.Since, Until: p.WindowB.Until}
	}
	return resp, winJSON(win), nil
}

// patternJSON is the wire form of a mined pattern.
type patternJSON struct {
	Pattern string `json:"pattern"`
	Support int    `json:"support"`
	Code    string `json:"code"`
}

func patternsJSON(ps []nous.Pattern) []patternJSON {
	out := make([]patternJSON, len(ps))
	for i, p := range ps {
		out[i] = patternJSON{Pattern: p.String(), Support: p.Support, Code: p.Code}
	}
	return out
}

func (s *Server) buildPatterns(r *http.Request) (any, *windowJSON, *apiError) {
	k, err := intParam(r, "k", 10)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	return patternsJSON(s.pipeline.Patterns(k)), nil, nil
}

func (s *Server) buildExplain(r *http.Request) (any, *windowJSON, *apiError) {
	src := r.URL.Query().Get("src")
	dst := r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		return nil, nil, badParam("missing src/dst parameters")
	}
	k, err := intParam(r, "k", 3)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	win, err := windowParam(r)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	a, err := s.pipeline.ExplainWindow(src, dst, r.URL.Query().Get("predicate"), k, win)
	if err != nil {
		return nil, winJSON(win), badParam(err.Error())
	}
	return a.Paths, winJSON(win), nil
}

// statsResponse is the /api/stats body: KG quality, stream counters, the
// epoch-versioned query cache state, the query planner's execution counters
// and — when the pipeline is durable — the persistence layer's snapshot/WAL
// state. The versioned surface extends it with a replication section.
type statsResponse struct {
	KG       nous.KGStats       `json:"kg"`
	Stream   nous.StreamStats   `json:"stream"`
	Query    nous.QueryStats    `json:"query"`
	Temporal nous.TemporalStats `json:"temporal"`
	Plan     nous.PlanStats     `json:"plan"`
	Persist  *nous.PersistStats `json:"persist,omitempty"`
}

func (s *Server) buildStats() statsResponse {
	resp := statsResponse{
		KG:       s.pipeline.KG().Stats(),
		Stream:   s.pipeline.Stats(),
		Query:    s.pipeline.QueryStats(),
		Temporal: s.pipeline.TemporalStats(),
		Plan:     s.pipeline.PlanStats(),
	}
	if ps, ok := s.pipeline.PersistStats(); ok {
		resp.Persist = &ps
	}
	return resp
}

// buildGraph validates the export target fully before rendering, so an
// error can still change the status code: once the export is streaming, a
// late failure would corrupt a 200 response.
func (s *Server) buildGraph(r *http.Request) (json.RawMessage, *windowJSON, *apiError) {
	win, err := windowParam(r)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	var names []string
	if e := r.URL.Query().Get("entity"); e != "" {
		names = strings.Split(e, ",")
		for _, n := range names {
			if _, ok := s.pipeline.KG().Entity(n); !ok {
				return nil, winJSON(win), &apiError{status: http.StatusNotFound, code: codeUnknownEntity, msg: "unknown entity " + n}
			}
		}
	}
	var buf bytes.Buffer
	if err := s.pipeline.KG().ExportJSONWindow(&buf, win, names...); err != nil {
		return nil, winJSON(win), &apiError{status: http.StatusInternalServerError, code: codeInternal, msg: err.Error()}
	}
	return buf.Bytes(), winJSON(win), nil
}

// recentFact is the wire form of one stream-feed entry.
type recentFact struct {
	Subject    string  `json:"subject"`
	Predicate  string  `json:"predicate"`
	Object     string  `json:"object"`
	Confidence float64 `json:"confidence"`
	Curated    bool    `json:"curated"`
	Source     string  `json:"source,omitempty"`
	Time       string  `json:"time,omitempty"`
}

// buildRecent serves the newest k facts inside the window, oldest first —
// the time index's feed view of the stream.
func (s *Server) buildRecent(r *http.Request) (any, *windowJSON, *apiError) {
	k, err := intParam(r, "k", 20)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	win, err := windowParam(r)
	if err != nil {
		return nil, nil, badParam(err.Error())
	}
	facts := s.pipeline.RecentFacts(win, k)
	out := make([]recentFact, len(facts))
	for i, f := range facts {
		out[i] = recentFact{
			Subject: f.Subject, Predicate: f.Predicate, Object: f.Object,
			Confidence: f.Confidence, Curated: f.Curated, Source: f.Provenance.Source,
		}
		if !f.Provenance.Time.IsZero() {
			out[i].Time = f.Provenance.Time.UTC().Format(time.RFC3339)
		}
	}
	return out, winJSON(win), nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

// windowParam parses the optional since/until query parameters into a time
// window. Accepted forms per parameter: a bare year ("2015" — Jan 1 of that
// year, matching the question language's "since 2015"), unix seconds
// ("1434067200"), a day ("2015-06-12") or RFC 3339
// ("2015-06-12T00:00:00Z"). until is the window's exclusive end. Omitting
// both yields the unbounded window.
func windowParam(r *http.Request) (nous.Window, error) {
	w, _, err := halfWindow(r, "since", "until")
	return w, err
}

// halfWindow parses one named since/until parameter pair into a window. ok
// reports whether either parameter was present; absent pairs return the
// unbounded window.
func halfWindow(r *http.Request, sinceName, untilName string) (nous.Window, bool, error) {
	sinceStr := r.URL.Query().Get(sinceName)
	untilStr := r.URL.Query().Get(untilName)
	if sinceStr == "" && untilStr == "" {
		return nous.Window{}, false, nil
	}
	w := nous.Window{Since: math.MinInt64, Until: math.MaxInt64}
	if sinceStr != "" {
		ts, err := timeParam(sinceName, sinceStr)
		if err != nil {
			return nous.Window{}, true, err
		}
		w.Since = ts
	}
	if untilStr != "" {
		ts, err := timeParam(untilName, untilStr)
		if err != nil {
			return nous.Window{}, true, err
		}
		w.Until = ts
	}
	if w.Since >= w.Until {
		return nous.Window{}, true, fmt.Errorf("empty window: %s %q is not before %s %q", sinceName, sinceStr, untilName, untilStr)
	}
	return w, true, nil
}

func timeParam(name, v string) (int64, error) {
	if ts, err := strconv.ParseInt(v, 10, 64); err == nil {
		// A bare 4-digit integer is a year, not 2015 seconds past the
		// epoch — the question language ("since 2015") resolves the same
		// token to Jan 1 of that year, and the two surfaces must agree.
		// Signed or zero-padded tokens ("-100", "0100") stay unix seconds.
		if len(v) == 4 && ts >= 1000 {
			return time.Date(int(ts), 1, 1, 0, 0, 0, 0, time.UTC).Unix(), nil
		}
		return ts, nil
	}
	if t, err := time.Parse("2006-01-02", v); err == nil {
		return t.Unix(), nil
	}
	if t, err := time.Parse(time.RFC3339, v); err == nil {
		return t.Unix(), nil
	}
	return 0, fmt.Errorf("parameter %q must be a year, unix seconds, YYYY-MM-DD or RFC 3339, got %q", name, v)
}

// intParam parses a positive integer query parameter, returning def when
// absent and an error when malformed or non-positive.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("parameter %q must be a positive integer, got %q", name, v)
	}
	return n, nil
}

const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>NOUS</title>
<style>
 body { font-family: monospace; max-width: 60rem; margin: 2rem auto; }
 input { width: 40rem; padding: .4rem; }
 pre { background: #f4f4f4; padding: 1rem; white-space: pre-wrap; }
</style></head>
<body>
<h1>NOUS — dynamic knowledge graph console</h1>
<p>Five query classes: trending, entity, relationship, pattern, fact.</p>
<form onsubmit="ask(event)">
  <input id="q" placeholder='Tell me about DJI' autofocus>
  <button>Ask</button>
</form>
<pre id="out">Try: "What is trending?", "How is Windermere related to DJI?",
"What patterns are emerging?", "Did Amazon acquire Parrot?"</pre>
<script>
async function ask(ev) {
  ev.preventDefault();
  const q = document.getElementById('q').value;
  const res = await fetch('/api/ask?q=' + encodeURIComponent(q));
  const body = await res.json();
  document.getElementById('out').textContent = body.text || body.error;
}
</script>
</body>
</html>
`
