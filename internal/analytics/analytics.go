// Package analytics is the epoch-versioned read layer between the dynamic
// knowledge graph and its query-time consumers. NOUS's premise is querying
// *while the graph changes*: whole-graph artifacts (PageRank importance, the
// disambiguation popularity prior, per-entity topic vectors) are too
// expensive to recompute per query and too stale to compute once. The cache
// resolves the materialization-vs-recomputation tradeoff by keying every
// artifact on the graph's mutation epoch (see graph.Epoch): a query at an
// unchanged epoch is a lock-cheap map read, the first query after a write
// recomputes, and N concurrent queries at a new epoch trigger exactly one
// recomputation — the rest wait on the in-flight result (singleflight).
package analytics

import (
	"container/list"
	"sync"
	"sync/atomic"

	"nous/internal/core"
	"nous/internal/graph"
	"nous/internal/temporal"
)

// Stats is a snapshot of cache behaviour for /api/stats and QueryStats.
type Stats struct {
	// Epoch is the graph's current mutation epoch.
	Epoch uint64 `json:"epoch"`
	// Hits counts artifact reads served from a fresh cached value.
	Hits uint64 `json:"hits"`
	// Misses counts reads that found no fresh value (the artifact was never
	// built or the epoch moved). Coalesced waiters count as misses too.
	Misses uint64 `json:"misses"`
	// Computes counts actual recomputations — with singleflight dedup this
	// can be far below Misses under concurrent load.
	Computes uint64 `json:"computes"`
	// TopicsEpoch is the epoch at which topic vectors were last built (0
	// when never built).
	TopicsEpoch uint64 `json:"topics_epoch"`
	// TopicsLag is Epoch - TopicsEpoch: how many mutations the topic model
	// is behind the live graph.
	TopicsLag uint64 `json:"topics_lag"`
	// WindowedArtifacts is the number of live windowed-PageRank cache
	// entries (distinct windows seen recently, capped).
	WindowedArtifacts int `json:"windowed_artifacts"`
	// WindowedComputes counts windowed-PageRank recomputations, a subset of
	// Computes.
	WindowedComputes uint64 `json:"windowed_computes"`
}

// memo is one epoch-keyed artifact with singleflight recomputation.
type memo[T any] struct {
	mu     sync.Mutex
	gen    uint64 // bumped by invalidate; an in-flight compute started under an older gen must not store
	epoch  uint64
	valid  bool
	value  T
	flight chan struct{} // non-nil while one goroutine computes
}

// get returns the artifact for epoch now, computing it at most once per
// epoch change no matter how many goroutines ask concurrently. A cached
// value within maxLag mutations of now counts as fresh, so heavy write
// phases amortize recomputation instead of thrashing. hit reports whether a
// cached value was served; computed reports whether this call ran compute
// itself (vs waiting on another goroutine's flight).
func (m *memo[T]) get(now, maxLag uint64, compute func() T) (v T, hit, computed bool) {
	m.mu.Lock()
	for {
		// m.epoch > now happens when another flight stored a newer value
		// while we waited — newer than requested is always fresh enough.
		if m.valid && (m.epoch >= now || now-m.epoch <= maxLag) {
			v = m.value
			m.mu.Unlock()
			return v, true, false
		}
		if m.flight == nil {
			break
		}
		// Someone is already computing; wait and re-check — their result
		// may be for our epoch, or the epoch may have moved again.
		ch := m.flight
		m.mu.Unlock()
		<-ch
		m.mu.Lock()
	}
	ch := make(chan struct{})
	m.flight = ch
	startGen := m.gen
	m.mu.Unlock()

	ok := false
	defer func() {
		// Release waiters even if compute panicked. Store only on success
		// and only if no invalidate() landed while we computed — otherwise
		// a forced refresh (RefreshTopics/RefreshPrior) would be silently
		// satisfied by the stale in-flight build; the waiter re-checks,
		// finds nothing cached, and recomputes fresh.
		m.mu.Lock()
		if ok && m.gen == startGen {
			m.value = v
			m.epoch = now
			m.valid = true
		}
		m.flight = nil
		close(ch)
		m.mu.Unlock()
	}()
	v = compute()
	ok = true
	return v, false, true
}

// peek returns the cached value regardless of freshness.
func (m *memo[T]) peek() (v T, epoch uint64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.value, m.epoch, m.valid
}

// invalidate drops the cached value so the next get recomputes even at an
// unchanged epoch, and prevents any compute already in flight from storing
// its (pre-invalidation) result.
func (m *memo[T]) invalidate() {
	m.mu.Lock()
	m.valid = false
	m.gen++
	m.mu.Unlock()
}

// Cache memoizes derived artifacts over one dynamic KG. All methods are
// safe for concurrent use; returned maps are shared snapshots and must be
// treated as read-only by callers.
type Cache struct {
	kg *core.KG

	// PageRank parameters. The seed's query paths used damping 0.85 with 15
	// iterations (entity summaries) and 20 (disambiguation prior); the
	// shared artifact uses the stricter 20.
	Damping float64
	Iters   int

	// MaxLag is the staleness budget in mutation epochs: a cached PageRank
	// or prior within MaxLag completed mutations of the current epoch is
	// served as-is. 0 means strictly fresh (recompute on any change). At an
	// unchanged epoch reads always hit regardless of MaxLag.
	MaxLag uint64

	pagerank memo[map[graph.VertexID]float64]
	prior    memo[map[string]float64]
	topics   memo[map[graph.VertexID][]float64]

	// MaxWindowed caps the number of distinct windows whose PageRank is
	// cached simultaneously; 0 means the default (maxWindowedArtifacts).
	// Beyond the cap the least-recently-used window is evicted.
	MaxWindowed int

	// windowed memoizes PageRank per bounded time window, keyed by the
	// window and epoch-checked like the main artifacts (so a windowed query
	// repeated at an unchanged epoch is a map read). Entries are LRU-ordered
	// (wlru front = most recently used) and capped at MaxWindowed; evicting
	// an entry mid-compute is safe — the in-flight computation keeps its
	// memo alive through the pointer it holds.
	wmu              sync.Mutex
	windowed         map[temporal.Window]*windowedEntry
	wlru             *list.List // of temporal.Window
	windowedComputes atomic.Uint64

	// topicsFn builds per-entity topic vectors (an LDA fit — expensive).
	// Unlike pagerank/prior, topics do NOT recompute on every epoch bump:
	// they are built lazily once, stay sticky across mutations, and refresh
	// only through RefreshTopics. Stats reports the resulting epoch lag.
	topicsFn atomic.Pointer[func() map[graph.VertexID][]float64]

	hits, misses, computes atomic.Uint64
}

// New returns a cache over kg with the standard PageRank schedule and a
// default staleness budget of 256 mutations — roughly the write volume of a
// few documents, so importance scores stay visibly current while bulk
// ingestion amortizes recomputation.
func New(kg *core.KG) *Cache {
	return &Cache{kg: kg, Damping: 0.85, Iters: 20, MaxLag: 256}
}

// Epoch returns the underlying graph's mutation epoch (lock-free).
func (c *Cache) Epoch() uint64 { return c.kg.Graph().Epoch() }

func (c *Cache) account(hit, computed bool) {
	if hit {
		c.hits.Add(1)
		return
	}
	c.misses.Add(1)
	if computed {
		c.computes.Add(1)
	}
}

// PageRank returns the memoized PageRank vector for the current epoch. The
// returned map is shared; callers must not mutate it.
func (c *Cache) PageRank() map[graph.VertexID]float64 {
	now := c.Epoch()
	v, hit, computed := c.pagerank.get(now, c.MaxLag, func() map[graph.VertexID]float64 {
		return graph.PageRank(c.kg.Graph(), c.Damping, c.Iters)
	})
	c.account(hit, computed)
	return v
}

// Importance returns one vertex's PageRank score at the current epoch.
func (c *Cache) Importance(id graph.VertexID) float64 {
	return c.PageRank()[id]
}

// maxWindowedArtifacts is the default cap on distinct windows whose PageRank
// is cached simultaneously (see Cache.MaxWindowed). Serving workloads repeat
// a handful of windows ("last week", "this year"); anything beyond the cap
// recomputes.
const maxWindowedArtifacts = 8

// windowedEntry is one window's memo plus its position in the LRU list.
type windowedEntry struct {
	memo *memo[map[graph.VertexID]float64]
	elem *list.Element
}

// WindowedPageRank returns the memoized PageRank of the subgraph visible in
// the window (curated edges plus extracted edges whose timestamp lies in
// [Since, Until)), keyed by (epoch, window). The unbounded window delegates
// to PageRank, so the unwindowed hot path is untouched. At the entry cap the
// least-recently-used window is evicted, so a hot window survives churn from
// one-off windows. The returned map is shared; callers must not mutate it.
func (c *Cache) WindowedPageRank(w temporal.Window) map[graph.VertexID]float64 {
	if w.IsAll() {
		return c.PageRank()
	}
	c.wmu.Lock()
	if c.windowed == nil {
		c.windowed = make(map[temporal.Window]*windowedEntry)
		c.wlru = list.New()
	}
	e, ok := c.windowed[w]
	if ok {
		c.wlru.MoveToFront(e.elem)
	} else {
		e = &windowedEntry{memo: &memo[map[graph.VertexID]float64]{}}
		e.elem = c.wlru.PushFront(w)
		c.windowed[w] = e
		limit := c.MaxWindowed
		if limit <= 0 {
			limit = maxWindowedArtifacts
		}
		for c.wlru.Len() > limit {
			back := c.wlru.Back()
			c.wlru.Remove(back)
			delete(c.windowed, back.Value.(temporal.Window))
		}
	}
	c.wmu.Unlock()

	now := c.Epoch()
	v, hit, computed := e.memo.get(now, c.MaxLag, func() map[graph.VertexID]float64 {
		c.windowedComputes.Add(1)
		return graph.PageRankFiltered(c.kg.Graph(), c.Damping, c.Iters, w.ContainsScan)
	})
	c.account(hit, computed)
	return v
}

// WindowedImportance returns one vertex's PageRank score within the window.
func (c *Cache) WindowedImportance(id graph.VertexID, w temporal.Window) float64 {
	return c.WindowedPageRank(w)[id]
}

// PopularityPrior returns the disambiguation popularity prior: per entity
// name, PageRank normalized by the maximum rank (so the most central entity
// scores 1). The returned map is shared; callers must not mutate it.
func (c *Cache) PopularityPrior() map[string]float64 {
	now := c.Epoch()
	v, hit, computed := c.prior.get(now, c.MaxLag, func() map[string]float64 {
		// Compute the rank vector directly instead of reading it through the
		// shared pagerank memo. The prior is an ingest-path heuristic: going
		// through c.PageRank() here would leave a mid-ingest vector in the
		// memo that serves query-path importance, and MaxLag would keep
		// serving it — so two replicas at the same epoch could answer with
		// importance scores from different warming histories. Keeping the
		// served memo warmed only by the query path makes equal epochs give
		// equal answers across a leader and its read replicas.
		pr := graph.PageRank(c.kg.Graph(), c.Damping, c.Iters)
		maxRank := 0.0
		for _, r := range pr {
			if r > maxRank {
				maxRank = r
			}
		}
		prior := make(map[string]float64, len(pr))
		for id, r := range pr {
			if name, ok := c.kg.EntityName(id); ok {
				if maxRank > 0 {
					prior[name] = r / maxRank
				} else {
					prior[name] = 0
				}
			}
		}
		return prior
	})
	c.account(hit, computed)
	return v
}

// InvalidatePrior drops the memoized PageRank and popularity prior so the
// next read recomputes against the live graph regardless of MaxLag.
func (c *Cache) InvalidatePrior() {
	c.pagerank.invalidate()
	c.prior.invalidate()
}

// SetTopicsFn registers the (expensive) topic-vector builder. The pipeline
// installs its LDA fit here; Topics and RefreshTopics run it under
// singleflight.
func (c *Cache) SetTopicsFn(fn func() map[graph.VertexID][]float64) {
	c.topicsFn.Store(&fn)
}

// Topics returns the per-entity topic vectors, building them on first use.
// Built vectors are sticky: mutations do not invalidate them (an LDA refit
// per write would dwarf the write); call RefreshTopics to rebuild. Returns
// nil when no builder is registered.
func (c *Cache) Topics() map[graph.VertexID][]float64 {
	fnp := c.topicsFn.Load()
	if fnp == nil {
		return nil
	}
	if v, _, ok := c.topics.peek(); ok {
		c.hits.Add(1)
		return v
	}
	now := c.Epoch()
	v, hit, computed := c.topics.get(now, ^uint64(0), *fnp)
	c.account(hit, computed)
	return v
}

// RefreshTopics rebuilds the topic vectors against the current graph state.
// Concurrent refreshes coalesce into one build.
func (c *Cache) RefreshTopics() map[graph.VertexID][]float64 {
	fnp := c.topicsFn.Load()
	if fnp == nil {
		return nil
	}
	c.topics.invalidate()
	now := c.Epoch()
	v, hit, computed := c.topics.get(now, ^uint64(0), *fnp)
	c.account(hit, computed)
	return v
}

// Stats snapshots cache counters. Safe to call concurrently with queries.
func (c *Cache) Stats() Stats {
	epoch := c.Epoch()
	st := Stats{
		Epoch:    epoch,
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Computes: c.computes.Load(),
	}
	if _, te, ok := c.topics.peek(); ok {
		st.TopicsEpoch = te
		if epoch > te {
			st.TopicsLag = epoch - te
		}
	}
	c.wmu.Lock()
	st.WindowedArtifacts = len(c.windowed)
	c.wmu.Unlock()
	st.WindowedComputes = c.windowedComputes.Load()
	return st
}
